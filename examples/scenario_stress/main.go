// Scenario stress: what non-stationary traffic does to a fleet that
// serves the smooth diurnal day perfectly. The fleet-routing
// walkthrough (examples/fleet_routing) shows that a state-aware router
// on a correctly-provisioned fleet meets its SLA all day — but real
// at-scale serving is dominated by the days that are not smooth: flash
// crowds, regional failover rotating the arrival mix, racks dying
// mid-morning. This walkthrough replays the same day through
// internal/scenario timelines and shows where the SLA actually breaks,
// how the per-interval p99 series diverges from the baseline, and how
// much of the damage the online autoscaler claws back.
//
//	go run ./examples/scenario_stress
//
// Expected runtime: well under a minute.
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"hercules/internal/cluster"
	"hercules/internal/fleet"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/workload"
)

func main() {
	models := []*model.Model{model.DLRMRMC1(model.Prod), model.DLRMRMC2(model.Prod)}
	fl := hw.Fleet{
		Types:  []hw.Server{hw.ServerType("T2"), hw.ServerType("T3"), hw.ServerType("T7")},
		Counts: []int{60, 12, 4},
	}

	fmt.Fprintln(os.Stderr, "calibrating serving configurations (2 models x 3 server types)...")
	start := time.Now()
	table, err := fleet.CalibrateTable(models, fl.Types, 42)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "calibrated in %v\n\n", time.Since(start).Round(time.Millisecond))

	// The same day fleet_routing replays: synchronized diurnal load,
	// hourly intervals, peaks at ~45% of fleet capacity.
	var ws []cluster.Workload
	for i, m := range models {
		var capQPS float64
		for j, srv := range fl.Types {
			capQPS += table.MustGet(srv.Type, m.Name).QPS * float64(fl.Counts[j])
		}
		cfg := workload.DiurnalConfig{
			Service: m.Name, PeakQPS: capQPS * 0.45 / float64(len(models)),
			ValleyFrac: 0.4, PeakHour: 20, Days: 1, StepMin: 60,
			NoiseStd: 0.02, Seed: 42 + int64(i),
		}
		ws = append(ws, cluster.Workload{Model: m.Name, Trace: workload.Synthesize(cfg)})
	}

	run := func(name string, autoscale bool) fleet.DayResult {
		// The scenario rides in the spec by name; RunDay compiles it
		// against the workloads' trace geometry.
		spec := fleet.DefaultSpec()
		spec.Router = fleet.PowerOfTwo
		spec.Scenario = name
		spec.Options.MaxQueriesPerInterval = 40000
		if !autoscale {
			spec.Scaler = "none"
		}
		eng, err := fleet.NewEngine(spec, fleet.WithTable(table), fleet.WithFleet(fl))
		if err != nil {
			fatal(err)
		}
		day, err := eng.RunDay(ws)
		if err != nil {
			fatal(err)
		}
		return day
	}

	names := []string{"baseline", "flashcrowd", "regionshift", "failure"}
	days := make(map[string]fleet.DayResult, len(names))
	fmt.Println("one day per scenario (p2c router, hercules provisioning, autoscaler on):")
	fmt.Println()
	fmt.Printf("%-12s %13s %9s %11s %12s %10s %12s\n",
		"scenario", "sla_viol_min", "drop_pct", "max_p99_ms", "dead_srv_max", "energy_MJ", "early_reprov")
	for _, name := range names {
		day := run(name, true)
		days[name] = day
		deadMax := 0
		for _, s := range day.Steps {
			deadMax = max(deadMax, s.DeadServers)
		}
		fmt.Printf("%-12s %13.1f %9.2f %11.1f %12d %10.1f %12d\n",
			day.Scenario, day.SLAViolationMin, day.DropFrac*100,
			day.MaxP99MS, deadMax, day.EnergyKJ/1e3, day.EarlyReprovisions)
	}

	// The per-interval p99 series: where each scenario bends the day.
	fmt.Println("\nper-interval p99 (ms) — the divergence the aggregate model cannot see:")
	fmt.Printf("\n%5s", "hour")
	for _, name := range names {
		fmt.Printf(" %11s", name)
	}
	fmt.Println()
	base := days["baseline"]
	for i := range base.Steps {
		fmt.Printf("%5.0f", base.Steps[i].TimeH)
		for _, name := range names {
			d := days[name]
			mark := " "
			if d.Steps[i].ViolationMin > 0 {
				mark = "*" // interval with SLA-violation minutes
			}
			fmt.Printf(" %10.1f%s", d.Steps[i].P99MS, mark)
		}
		fmt.Println()
	}
	fmt.Println("(* = interval with SLA-violation minutes)")

	// Autoscaler ablation: replay the disruptions without it.
	fmt.Println("\nautoscaler value under each disruption (violation minutes):")
	for _, name := range names[1:] {
		off := run(name, false)
		on := days[name]
		saved := off.SLAViolationMin - on.SLAViolationMin
		fmt.Printf("  %-12s %6.0f min without -> %5.0f min with (%.0f min clawed back, %+.0f%% energy)\n",
			name, off.SLAViolationMin, on.SLAViolationMin, saved,
			100*(on.EnergyKJ-off.EnergyKJ)/off.EnergyKJ)
	}

	fmt.Println()
	fmt.Println(strings.TrimSpace(`
the flash crowd outruns the provisioning headroom between scheduled
re-provisions; the regional shift rotates the query-size mix so the
same QPS carries heavier queries; the failure kills 30% of every
server type at hour 9 and the control plane re-provisions the
survivors one interval later. scenarios are plain JSON event lists --
see 'hercules-fleet -list-scenarios' and -scenario @file.json.`))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scenario_stress:", err)
	os.Exit(1)
}
