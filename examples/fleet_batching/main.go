// Fleet batching: the throughput/latency trade-off of dynamic
// per-instance batching, measured instead of assumed. The walkthrough
// calibrates a serving table for RMC1 on T2 (seconds), replays one
// diurnal day on a 24-server fleet with a mid-morning ×2.5 flash crowd
// landing between re-provisioning intervals, and compares the
// unbatched engine against dynamic batching (MaxBatch 16, 2 ms
// formation wait): on the smooth stretches batching costs a few
// milliseconds of tail — the formation wait — while during the
// saturated spike the batches grow toward the cap and the same fleet
// serves measurably more of the at-risk traffic. The engine derives
// the pair's effective batch cap from the simulator's measured
// batch-efficiency curve, so the result is the cost model speaking,
// not a tuning constant.
//
//	go run ./examples/fleet_batching
//
// Expected runtime: well under a minute.
package main

import (
	"fmt"
	"os"
	"time"

	"hercules/internal/cluster"
	"hercules/internal/fleet"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/scenario"
	"hercules/internal/workload"
)

func main() {
	m := model.DLRMRMC1(model.Prod)
	fl := hw.Fleet{Types: []hw.Server{hw.ServerType("T2")}, Counts: []int{24}}

	fmt.Fprintln(os.Stderr, "calibrating the T2/RMC1 serving configuration...")
	start := time.Now()
	table, err := fleet.CalibrateTable([]*model.Model{m}, fl.Types, 42)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "calibrated in %v\n\n", time.Since(start).Round(time.Millisecond))

	entry := table.MustGet("T2", m.Name)
	fmt.Printf("profiled pair: T2/%s at %.0f QPS, SLA %.0f ms\n\n", m.Name, entry.QPS, m.SLATargetMS)

	cfg := workload.DiurnalConfig{
		Service: m.Name, PeakQPS: entry.QPS * float64(fl.Counts[0]) * 0.45,
		ValleyFrac: 0.4, PeakHour: 20, Days: 1, StepMin: 60,
		NoiseStd: 0.02, Seed: 42,
	}
	ws := []cluster.Workload{{Model: m.Name, Trace: workload.Synthesize(cfg)}}
	crowd := scenario.Scenario{Name: "flashcrowd", Events: []scenario.Event{
		{Kind: scenario.Spike, StartH: 9, EndH: 11.5, RampH: 0.5, Factor: 2.5},
	}}

	run := func(maxBatch int, sc scenario.Scenario) fleet.DayResult {
		spec := fleet.DefaultSpec()
		spec.Router = fleet.PowerOfTwo
		spec.Scaler = "none" // equal fleet across batch settings
		spec.Options.MaxQueriesPerInterval = 40000
		spec.Options.MaxBatch = maxBatch
		spec.Options.BatchWaitS = 0.002
		eng, err := fleet.NewEngine(spec, fleet.WithTable(table), fleet.WithFleet(fl))
		if err != nil {
			fatal(err)
		}
		if err := eng.ApplyScenario(sc, ws); err != nil {
			fatal(err)
		}
		day, err := eng.RunDay(ws)
		if err != nil {
			fatal(err)
		}
		return day
	}

	fmt.Printf("%-12s %-6s %14s %9s %12s %11s\n",
		"day", "batch", "sla_viol_min", "drop_pct", "mean_p95_ms", "max_p99_ms")
	for _, sc := range []scenario.Scenario{{Name: "baseline"}, crowd} {
		for _, b := range []int{1, 16} {
			day := run(b, sc)
			fmt.Printf("%-12s %-6d %14.1f %9.3f %12.1f %11.1f\n",
				day.Scenario, b, day.SLAViolationMin, day.DropFrac*100,
				day.MeanP95MS, day.MaxP99MS)
		}
	}

	fmt.Println("\non the smooth day batching only buys latency (the formation wait);")
	fmt.Println("under the flash crowd the same 24 servers drop visibly less traffic —")
	fmt.Println("queue pressure grows the batches toward the cap exactly when the")
	fmt.Println("measured whole-server amortization is worth having.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleet_batching:", err)
	os.Exit(1)
}
