// Cluster diurnal provisioning: the Fig. 8 / Fig. 17 scenario at small
// scale. Two social-media ranking services (DLRM-RMC1, DLRM-RMC2) with
// synchronized diurnal load are served by a heterogeneous cluster of
// CPU-only, CPU+NMP and CPU+GPU servers. The example profiles the six
// workload/server pairs, then provisions one day with each cluster
// scheduling policy and compares activated capacity and provisioned
// power.
//
//	go run ./examples/cluster_diurnal
//
// Expected runtime: one to two minutes (dominated by offline profiling).
package main

import (
	"fmt"
	"os"
	"time"

	"hercules/internal/cluster"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/workload"
)

func main() {
	models := []*model.Model{model.DLRMRMC1(model.Prod), model.DLRMRMC2(model.Prod)}
	fleet := hw.Fleet{
		Types:  []hw.Server{hw.ServerType("T2"), hw.ServerType("T3"), hw.ServerType("T7")},
		Counts: []int{70, 15, 5},
	}

	fmt.Fprintln(os.Stderr, "offline profiling 2 models x 3 server types...")
	start := time.Now()
	table := profiler.BuildTable(models, fleet.Types, profiler.Options{
		Sched: profiler.Hercules, Seed: 42,
	})
	fmt.Fprintf(os.Stderr, "profiled in %v\n\n", time.Since(start).Round(time.Second))

	fmt.Println("efficiency table (Fig. 9b):")
	fmt.Print(table.Format([]string{"DLRM-RMC1", "DLRM-RMC2"}))

	// Diurnal loads sized so the cluster has real allocation choices.
	peak1 := table.MustGet("T2", "DLRM-RMC1").QPS * 25
	peak2 := table.MustGet("T2", "DLRM-RMC2").QPS * 25
	ws := []cluster.Workload{
		{Model: "DLRM-RMC1", Trace: workload.Synthesize(workload.DefaultDiurnal("rmc1", peak1, 1, 7))},
		{Model: "DLRM-RMC2", Trace: workload.Synthesize(workload.DefaultDiurnal("rmc2", peak2, 1, 8))},
	}
	fmt.Printf("\nday of diurnal load: RMC1 peak %.0f QPS, RMC2 peak %.0f QPS\n\n", peak1, peak2)

	fmt.Printf("%-9s %13s %12s %9s %8s %6s\n",
		"policy", "peak_servers", "avg_servers", "peak_kW", "avg_kW", "unsat")
	runs := map[cluster.Policy]cluster.RunResult{}
	for _, pol := range []cluster.Policy{cluster.NH, cluster.Greedy, cluster.Priority, cluster.Hercules} {
		run := cluster.NewProvisioner(fleet, table, pol, 42).Run(ws)
		runs[pol] = run
		fmt.Printf("%-9s %13d %12.1f %9.1f %8.1f %6d\n",
			pol, run.PeakServers, run.AvgServers,
			run.PeakPowerW/1e3, run.AvgPowerW/1e3, run.UnsatSteps)
	}

	peakSave, avgSave := cluster.Saving(runs[cluster.Greedy], runs[cluster.Hercules])
	capPeak, capAvg := cluster.CapacitySaving(runs[cluster.Greedy], runs[cluster.Hercules])
	fmt.Printf("\nhercules vs greedy: %.1f%% peak / %.1f%% avg power saving, "+
		"%.1f%% peak / %.1f%% avg capacity saving\n",
		peakSave*100, avgSave*100, capPeak*100, capAvg*100)
	fmt.Println("(at this toy 27-server scale a single server of integral-rounding")
	fmt.Println("noise is ~3-5%; the Fig. 17 fleet-scale comparison is where the")
	fmt.Println("LP's global optimization separates from greedy)")
}
