// Multi-region failover: what cross-region spill buys when a whole
// region goes dark. The walkthrough builds a two-region fleet — east
// and west, six diurnal hours apart, 60 ms of RTT between them —
// blacks out east for three mid-day hours (its fleet goes to zero and
// the survivors absorb a 1.5x flash crowd), and replays the same day
// under both geo policies: local-only, where east's traffic has
// nowhere to go, and spill, where east evacuates to west's headroom
// and every remotely served query pays the RTT. The comparison is the
// failover trade in miniature: spill converts dropped traffic into a
// latency tax on the survivor.
//
//	go run ./examples/fleet_regions
//
// Expected runtime: well under a minute.
package main

import (
	"fmt"
	"os"

	"hercules/internal/fleet"
)

func main() {
	spec := fleet.DefaultSpec()
	spec.Router = fleet.PowerOfTwo
	spec.Models = []string{"DLRM-RMC1"}
	spec.Scenario = `{"name":"east-blackout","events":[{"kind":"blackout","region":"east","start_h":9,"end_h":12}]}`
	spec.Regions = []fleet.RegionSpec{
		{Name: "east", RTTMS: map[string]float64{"west": 60}},
		{Name: "west", PhaseH: -6},
	}
	spec.Options.MaxQueriesPerInterval = 20000
	spec.Options.Shards = 1

	run := func(geo string) fleet.DayResult {
		spec.Geo = geo
		me, err := fleet.NewMultiEngine(spec)
		if err != nil {
			fatal(err)
		}
		day, err := me.RunDay(me.Workloads())
		if err != nil {
			fatal(err)
		}
		return day
	}

	fmt.Fprintln(os.Stderr, "calibrating and replaying two region-days per policy...")
	local := run(fleet.GeoLocal)
	spill := run(fleet.GeoSpill)

	fmt.Println("east dark 9h-12h, west six hours phase-shifted (p2c router, hercules provisioning):")
	fmt.Println()
	fmt.Printf("%-6s %-7s %9s %9s %13s %13s %11s\n",
		"geo", "region", "queries", "drop_pct", "sla_viol_min", "spill_served", "max_p99_ms")
	for _, day := range []fleet.DayResult{local, spill} {
		for _, reg := range day.Regions {
			fmt.Printf("%-6s %-7s %9d %9.2f %13.1f %13d %11.1f\n",
				day.Geo, reg.Region, reg.TotalQueries, reg.DropFrac*100,
				reg.SLAViolationMin, reg.SpillInServed, reg.MaxP99MS)
		}
		fmt.Printf("%-6s %-7s %9d %9.2f %13.1f %13d %11.1f\n",
			day.Geo, "GLOBAL", day.TotalQueries, day.DropFrac*100,
			day.SLAViolationMin, day.SpillInServed, day.MaxP99MS)
	}

	fmt.Printf("\nthe failover trade: drops %.2f%% -> %.2f%%, SLA violation %.0f -> %.0f min,\n",
		local.DropFrac*100, spill.DropFrac*100, local.SLAViolationMin, spill.SLAViolationMin)
	fmt.Printf("%d queries served remotely at +60 ms RTT each\n", spill.SpillInServed)

	// The outage hour by hour on the spill day: west's spill intake and
	// the latency it pays for it are per-interval observables.
	fmt.Println("\nspill day, west through the blackout window:")
	west := spill.Regions[1]
	for _, ist := range west.Steps {
		if ist.SpillInServed > 0 || ist.SpillInDropped > 0 {
			fmt.Printf("  hour %4.1f: served %5d remote (dropped %4d), p99 %6.1f ms\n",
				ist.TimeH, ist.SpillInServed, ist.SpillInDropped, ist.P99MS)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleet_regions:", err)
	os.Exit(1)
}
