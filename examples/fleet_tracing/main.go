// Fleet tracing: the telemetry layer end to end. The walkthrough
// calibrates a serving table for RMC1 on T2 (seconds), replays one
// diurnal day on a 16-server fleet with the per-query tracer sampling
// 1 in 64 queries, and shows the three faces of the same run: the
// sampled lifecycle trace (written as NDJSON and as Chrome trace-event
// JSON for Perfetto), the metrics-registry snapshot an observer
// accumulates, and the proof that tracing is an observer, not a
// participant — the traced DayResult is bit-identical to an untraced
// replay of the same spec, and a re-run samples exactly the same
// queries.
//
//	go run ./examples/fleet_tracing
//
// Expected runtime: well under a minute (one quick calibration plus
// three replayed days).
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"hercules/internal/cluster"
	"hercules/internal/fleet"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/telemetry"
	"hercules/internal/workload"
)

func main() {
	m := model.DLRMRMC1(model.Prod)
	fl := hw.Fleet{Types: []hw.Server{hw.ServerType("T2")}, Counts: []int{16}}

	fmt.Fprintln(os.Stderr, "calibrating the T2/RMC1 serving configuration...")
	start := time.Now()
	table, err := fleet.CalibrateTable([]*model.Model{m}, fl.Types, 42)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "calibrated in %v\n\n", time.Since(start).Round(time.Millisecond))

	entry := table.MustGet("T2", m.Name)
	cfg := workload.DiurnalConfig{
		Service: m.Name, PeakQPS: entry.QPS * float64(fl.Counts[0]) * 0.45,
		ValleyFrac: 0.4, PeakHour: 20, Days: 1, StepMin: 60,
		NoiseStd: 0.02, Seed: 42,
	}
	ws := []cluster.Workload{{Model: m.Name, Trace: workload.Synthesize(cfg)}}

	spec := fleet.DefaultSpec()
	spec.Router = fleet.PowerOfTwo
	spec.Scaler = "none"
	spec.Options.MaxQueriesPerInterval = 40000
	spec.Options.TraceSample = 64 // trace 1 in 64 queries

	run := func(s fleet.Spec, sinks ...telemetry.Sink) fleet.DayResult {
		eng, engErr := fleet.NewEngine(s, fleet.WithTable(table), fleet.WithFleet(fl))
		if engErr != nil {
			fatal(engErr)
		}
		for _, sink := range sinks {
			eng.Tracer.AddSink(sink)
		}
		day, dayErr := eng.RunDay(ws)
		if dayErr != nil {
			fatal(dayErr)
		}
		if eng.Tracer != nil {
			if closeErr := eng.Tracer.Close(); closeErr != nil {
				fatal(closeErr)
			}
		}
		return day
	}

	// Traced replay: NDJSON + Chrome trace files plus an event counter.
	dir := os.TempDir()
	ndPath := filepath.Join(dir, "fleet_trace.ndjson")
	chPath := filepath.Join(dir, "fleet_trace.json")
	ndFile, err := os.Create(ndPath)
	if err != nil {
		fatal(err)
	}
	chFile, err := os.Create(chPath)
	if err != nil {
		fatal(err)
	}
	counts := &telemetry.CountSink{}
	traced := run(spec,
		telemetry.NewNDJSONWriter(ndFile),
		telemetry.NewChromeWriter(chFile, spec.Options.SliceS),
		counts)

	fmt.Printf("traced day: %d queries, %d sampled trace events\n",
		traced.TotalQueries, counts.Total)
	fmt.Printf("  per kind: %d arrivals, %d routes, %d batches, %d completes, %d drops\n",
		counts.Of(telemetry.KindArrival), counts.Of(telemetry.KindRoute),
		counts.Of(telemetry.KindBatch), counts.Of(telemetry.KindComplete),
		counts.Of(telemetry.KindDrop))
	fmt.Printf("  NDJSON trace:  %s\n", ndPath)
	fmt.Printf("  Chrome trace:  %s (load in Perfetto or chrome://tracing)\n\n", chPath)

	// Tracing is read-only: the untraced replay of the same spec must
	// produce the identical DayResult.
	plain := spec
	plain.Options.TraceSample = 0
	untraced := run(plain)
	fmt.Printf("tracing perturbs the replay: %v\n", !reflect.DeepEqual(traced, untraced))

	// Sampling is deterministic in the seed: a second traced run emits
	// exactly the same events.
	counts2 := &telemetry.CountSink{}
	run(spec, counts2)
	fmt.Printf("re-run samples the same queries: %v\n\n", *counts2 == *counts)

	// The metrics face: an observer folds the interval stream into a
	// registry of counters, gauges and sketch-backed histograms.
	reg := telemetry.NewRegistry()
	eng, err := fleet.NewEngine(plain, fleet.WithTable(table), fleet.WithFleet(fl),
		fleet.WithObserver(fleet.NewMetricsObserver(reg)))
	if err != nil {
		fatal(err)
	}
	if _, err := eng.RunDay(ws); err != nil {
		fatal(err)
	}
	snap := reg.Snapshot()
	fmt.Println("metrics snapshot (same stream the DayResult aggregates):")
	fmt.Printf("  queries   %d\n", snap.Counters["fleet_queries_total"])
	fmt.Printf("  drops     %d\n", snap.Counters["fleet_drops_total"])
	h := snap.Histograms["fleet_interval_p95_ms"]
	fmt.Printf("  interval p95 over the day: mean %.1f ms, p99 %.1f ms, max %.1f ms\n",
		h.Mean, h.P99, h.Max)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleet_tracing:", err)
	os.Exit(1)
}
