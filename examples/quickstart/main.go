// Quickstart: profile one recommendation model on one server type with
// the Hercules gradient-based task-scheduling search (Algorithm 1) and
// print the optimal parallelism configuration it finds.
//
//	go run ./examples/quickstart
//
// Expected runtime: a few seconds.
package main

import (
	"fmt"
	"time"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/sched"
	"hercules/internal/sim"
)

func main() {
	// DLRM-RMC1 (Table I) on server type T2: a 20-core Xeon Gold 6138
	// with 128 GB of DDR4 (Table II).
	m := model.DLRMRMC1(model.Prod)
	srv := hw.ServerType("T2")
	fmt.Printf("model: %s (%s), SLA target %.0f ms, %d embedding tables (%.1f GB)\n",
		m.Name, m.Service, m.SLATargetMS, len(m.Tables),
		float64(m.EmbeddingBytes())/(1<<30))
	fmt.Printf("server: %s — %d cores @ %.1f GHz, %.0f GB/s memory\n\n",
		srv, srv.CPU.PhysicalCores, srv.CPU.FrequencyHz/1e9,
		srv.Memory.BandwidthBps/1e9)

	s := sim.New(srv, m)

	// Baseline: DeepRecSys — one thread per core, batch-size sweep only.
	searcher := sched.NewSearcher(s, sched.Objective{SLAMS: m.SLATargetMS, Seed: 42})
	start := time.Now()
	base := searcher.SearchDeepRecSys()
	fmt.Printf("DeepRecSys baseline: %4.0f QPS  (%d threads x %d cores, batch %d) in %v\n",
		base.QPS(), base.Cfg.Threads, base.Cfg.OpWorkers, base.Cfg.Batch,
		time.Since(start).Round(time.Millisecond))

	// Hercules: the full Psp(M+D+O) exploration across placements.
	start = time.Now()
	best := searcher.SearchHercules()
	fmt.Printf("Hercules:            %4.0f QPS  (placement %v) in %v\n",
		best.QPS(), best.Cfg.Place, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  config: %+v\n", best.Cfg)
	fmt.Printf("  at capacity: p95 = %.1f ms, %.0f W provisioned, %.2f QPS/W\n",
		best.Cap.At.TailMS, best.Cap.At.ProvisionedW, best.Cap.At.QPSPerWatt)
	fmt.Printf("\nspeedup over baseline: %.2fx with %d capacity measurements\n",
		best.QPS()/base.QPS(), searcher.Evals)
}
