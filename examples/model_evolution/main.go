// Model evolution: the Fig. 16 study. Recommendation services evolve —
// DLRM-RMC1/2/3 traffic is gradually replaced by the more complex DIN,
// DIEN and MT-WnD models — and a CPU-only fleet must grow its activated
// capacity and provisioned power to keep up. The example profiles all
// six models on the two CPU server generations, then provisions each
// evolution snapshot and prints the growth curve.
//
//	go run ./examples/model_evolution
//
// Expected runtime: two to four minutes (dominated by offline profiling).
package main

import (
	"fmt"
	"os"
	"time"

	"hercules/internal/cluster"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/workload"
)

func main() {
	servers := []hw.Server{hw.ServerType("T1"), hw.ServerType("T2")}
	fmt.Fprintln(os.Stderr, "offline profiling 6 models x 2 CPU server types...")
	start := time.Now()
	table := profiler.BuildTable(model.Zoo(model.Prod), servers, profiler.Options{
		Sched: profiler.Hercules, Seed: 42,
	})
	fmt.Fprintf(os.Stderr, "profiled in %v\n\n", time.Since(start).Round(time.Second))
	fmt.Print(table.Format(model.ZooNames))

	// Unconstrained CPU fleet: we measure *required* capacity, as the
	// paper's projection does.
	fleet := hw.Fleet{Types: servers, Counts: []int{1 << 20, 1 << 20}}
	totalPeak := table.MustGet("T2", "DLRM-RMC1").QPS * 60
	mix := workload.DefaultEvolution()

	fmt.Printf("\nmodel evolution: %v -> %v, total peak %.0f QPS\n\n",
		mix.OldModels, mix.NewModels, totalPeak)
	fmt.Printf("%-5s %10s %13s %9s %8s\n", "step", "new_share", "peak_servers", "peak_kW", "avg_kW")

	var firstPeakKW, lastPeakKW float64
	var firstPeakSrv, lastPeakSrv int
	for step := 0; step <= mix.Cycle; step++ {
		fr := mix.Fractions(step)
		var ws []cluster.Workload
		for _, name := range model.ZooNames {
			if fr[name] <= 0 {
				continue
			}
			tr := workload.Synthesize(workload.DefaultDiurnal(name, totalPeak*fr[name], 1, 42+int64(step)))
			ws = append(ws, cluster.Workload{Model: name, Trace: tr})
		}
		run := cluster.NewProvisioner(fleet, table, cluster.Hercules, 42).Run(ws)
		newShare := 0.0
		for _, nm := range mix.NewModels {
			newShare += fr[nm]
		}
		fmt.Printf("%-5d %9.0f%% %13d %9.1f %8.1f\n",
			step, newShare*100, run.PeakServers, run.PeakPowerW/1e3, run.AvgPowerW/1e3)
		if step == 0 {
			firstPeakKW, firstPeakSrv = run.PeakPowerW/1e3, run.PeakServers
		}
		if step == mix.Cycle {
			lastPeakKW, lastPeakSrv = run.PeakPowerW/1e3, run.PeakServers
		}
	}
	fmt.Printf("\nfull-evolution growth: capacity %.2fx, provisioned power %.2fx\n",
		float64(lastPeakSrv)/float64(firstPeakSrv), lastPeakKW/firstPeakKW)
	fmt.Println("(the paper projects 5.4x capacity and 3.54x power if only CPU")
	fmt.Println("servers are deployed — deploying accelerated servers, Fig. 17,")
	fmt.Println("is what keeps the curve flat)")
}
