// Server tuning: the workload the paper's introduction motivates — a
// latency-critical ranking service whose SLA and traffic change — tuned
// on three very different server architectures. For each (server, SLA)
// point the example compares the state-of-the-art baseline scheduler
// (DeepRecSys on CPU / Baymax on GPU) against the Hercules task
// scheduler and reports the latency-bounded throughput and energy
// efficiency.
//
//	go run ./examples/server_tuning [-model DLRM-RMC3]
//
// Expected runtime: one to two minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/sched"
	"hercules/internal/sim"
)

func main() {
	name := flag.String("model", "DLRM-RMC3", "Table I model to tune")
	flag.Parse()

	m, err := model.ByName(*name, model.Prod)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	servers := []string{"T2", "T4", "T7"} // CPU, CPU+NMPx4, CPU+V100
	slas := []float64{m.SLATargetMS / 2, m.SLATargetMS, m.SLATargetMS * 2}

	type result struct {
		srv        string
		sla        float64
		base, herc sched.Eval
	}
	results := make([]result, 0, len(servers)*len(slas))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, srvLabel := range servers {
		for _, sla := range slas {
			wg.Add(1)
			go func(srvLabel string, sla float64) {
				defer wg.Done()
				s := sim.New(hw.ServerType(srvLabel), m)
				sr := sched.NewSearcher(s, sched.Objective{SLAMS: sla, Seed: 42})
				r := result{srv: srvLabel, sla: sla,
					base: sr.SearchBaseline(), herc: sr.SearchHercules()}
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}(srvLabel, sla)
		}
	}
	wg.Wait()

	fmt.Printf("tuning %s (%s) across server architectures\n\n", m.Name, m.Service)
	fmt.Printf("%-4s %8s %14s %14s %9s %12s %-12s\n",
		"srv", "sla(ms)", "baseline(QPS)", "hercules(QPS)", "speedup", "QPS/W", "placement")
	for _, srvLabel := range servers {
		for _, sla := range slas {
			for _, r := range results {
				if r.srv != srvLabel || r.sla != sla {
					continue
				}
				speedup := 0.0
				if r.base.QPS() > 0 {
					speedup = r.herc.QPS() / r.base.QPS()
				}
				fmt.Printf("%-4s %8.0f %14.0f %14.0f %8.2fx %12.2f %-12v\n",
					r.srv, r.sla, r.base.QPS(), r.herc.QPS(), speedup,
					r.herc.Cap.At.QPSPerWatt, r.herc.Cfg.Place)
			}
		}
	}
	fmt.Println("\nreading the table: NMP (T4) pays off only for pooled memory-bound")
	fmt.Println("models; the V100 (T7) dominates for compute-bound ones; Hercules'")
	fmt.Println("gain is largest where fusion and S-D pipelining unlock idle hardware.")
}
