// Fleet cache tier: what a result cache in front of routing buys — and
// what it costs the day it empties. The walkthrough calibrates a
// serving table for RMC1+RMC2 (seconds), replays one diurnal day with
// the cache tier at several asymptotic hit rates, and shows both sides
// of the trade the miss-adjusted provisioning makes: at steady state
// the fleet is sized against the cache's *miss* load, so energy falls
// roughly in step with the hit rate — and under the cachestorm
// scenario (a mid-day invalidation storm) the full offered load lands
// on that leaner fleet until the next re-provision, which is where the
// drops and the tail damage come from. The same stampede at hit rate 0
// is a no-op: without the tier there is no warmth to lose.
//
//	go run ./examples/fleet_cache
//
// Expected runtime: well under a minute.
package main

import (
	"fmt"
	"os"
	"time"

	"hercules/internal/cluster"
	"hercules/internal/fleet"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/workload"
)

func main() {
	models := []*model.Model{model.DLRMRMC1(model.Prod), model.DLRMRMC2(model.Prod)}
	fl := hw.Fleet{
		Types:  []hw.Server{hw.ServerType("T2"), hw.ServerType("T3"), hw.ServerType("T7")},
		Counts: []int{60, 12, 4},
	}

	fmt.Fprintln(os.Stderr, "calibrating serving configurations (2 models x 3 server types)...")
	start := time.Now()
	table, err := fleet.CalibrateTable(models, fl.Types, 42)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "calibrated in %v\n\n", time.Since(start).Round(time.Millisecond))

	// The same day the other fleet walkthroughs replay: synchronized
	// diurnal load, hourly intervals, peaks at ~45% of fleet capacity.
	var ws []cluster.Workload
	for i, m := range models {
		var capQPS float64
		for j, srv := range fl.Types {
			capQPS += table.MustGet(srv.Type, m.Name).QPS * float64(fl.Counts[j])
		}
		cfg := workload.DiurnalConfig{
			Service: m.Name, PeakQPS: capQPS * 0.45 / float64(len(models)),
			ValleyFrac: 0.4, PeakHour: 20, Days: 1, StepMin: 60,
			NoiseStd: 0.02, Seed: 42 + int64(i),
		}
		ws = append(ws, cluster.Workload{Model: m.Name, Trace: workload.Synthesize(cfg)})
	}

	run := func(hitRate float64, scenarioName string) fleet.DayResult {
		spec := fleet.DefaultSpec()
		spec.Router = fleet.PowerOfTwo
		spec.Scenario = scenarioName
		spec.Cache = fleet.CacheSpec{HitRate: hitRate}
		spec.Options.MaxQueriesPerInterval = 40000
		eng, err := fleet.NewEngine(spec, fleet.WithTable(table), fleet.WithFleet(fl))
		if err != nil {
			fatal(err)
		}
		day, err := eng.RunDay(ws)
		if err != nil {
			fatal(err)
		}
		return day
	}

	hitRates := []float64{0, 0.5, 0.8}
	fmt.Println("steady state vs cachestorm per hit rate (p2c router, hercules provisioning):")
	fmt.Println()
	fmt.Printf("%-11s %8s %12s %9s %11s %10s\n",
		"scenario", "cfg_hit", "realized_hit", "drop_pct", "max_p99_ms", "energy_MJ")
	days := map[[2]string]fleet.DayResult{}
	for _, scen := range []string{"baseline", "cachestorm"} {
		for _, hr := range hitRates {
			day := run(hr, scen)
			days[[2]string{scen, fmt.Sprint(hr)}] = day
			fmt.Printf("%-11s %8.2f %12.3f %9.2f %11.1f %10.1f\n",
				day.Scenario, hr, day.CacheHitRate, day.DropFrac*100,
				day.MaxP99MS, day.EnergyKJ/1e3)
		}
	}

	// The trade in one line per hit rate: energy saved at steady state
	// against damage taken during the stampede.
	ref := days[[2]string{"baseline", "0"}]
	fmt.Println("\nthe cache trade (vs the cache-less fleet):")
	for _, hr := range hitRates[1:] {
		key := fmt.Sprint(hr)
		base := days[[2]string{"baseline", key}]
		storm := days[[2]string{"cachestorm", key}]
		fmt.Printf("  hit %.2f: %5.1f%% energy saved at steady state; storm adds %.2f%% drops, +%.0f ms max p99\n",
			hr, 100*(ref.EnergyKJ-base.EnergyKJ)/ref.EnergyKJ,
			100*(storm.DropFrac-base.DropFrac), storm.MaxP99MS-base.MaxP99MS)
	}

	// The warmth trajectory under the storm: the cache tier's state is
	// observable per interval, so the stampede and the refill are
	// visible directly.
	storm := days[[2]string{"cachestorm", "0.8"}]
	fmt.Println("\ncachestorm at hit 0.80 — per-interval realized hit rate:")
	for _, ist := range storm.Steps {
		if ist.CacheHitRate < 0.7 || ist.Drops > 0 {
			fmt.Printf("  hour %4.1f: hit %.3f, drops %6d, p99 %6.1f ms\n",
				ist.TimeH, ist.CacheHitRate, ist.Drops, ist.P99MS)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleet_cache:", err)
	os.Exit(1)
}
