// Fleet routing: what happens to individual queries *between* the
// cluster manager's re-provisioning intervals. The cluster layer
// (examples/cluster_diurnal) sizes the fleet from aggregate capacities;
// this walkthrough replays every query of a diurnal day through
// internal/fleet and shows that the routing policy — invisible to the
// aggregate model — decides whether the provisioned fleet actually
// meets its SLA. It calibrates a serving table for RMC1+RMC2 on T2
// (CPU), T3 (NMP) and T7 (GPU) servers (seconds, not the full Fig. 9b
// search), provisions the day with the Hercules LP policy, replays
// ~2.5M queries under each of the four routers, and finally re-runs
// round robin without the autoscaler to isolate the autoscaler's value.
//
//	go run ./examples/fleet_routing
//
// Expected runtime: well under a minute.
package main

import (
	"fmt"
	"os"
	"time"

	"hercules/internal/cluster"
	"hercules/internal/fleet"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/workload"
)

func main() {
	models := []*model.Model{model.DLRMRMC1(model.Prod), model.DLRMRMC2(model.Prod)}
	fl := hw.Fleet{
		Types:  []hw.Server{hw.ServerType("T2"), hw.ServerType("T3"), hw.ServerType("T7")},
		Counts: []int{60, 12, 4},
	}

	fmt.Fprintln(os.Stderr, "calibrating serving configurations (2 models x 3 server types)...")
	start := time.Now()
	table, err := fleet.CalibrateTable(models, fl.Types, 42)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet_routing:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "calibrated in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("serving table (best candidate configuration per pair):")
	fmt.Print(table.Format([]string{"DLRM-RMC1", "DLRM-RMC2"}))

	// One day of synchronized diurnal load, hourly provisioning
	// intervals, peaks at ~45% of each model's fleet-wide capacity.
	var ws []cluster.Workload
	for i, m := range models {
		var capQPS float64
		for j, srv := range fl.Types {
			capQPS += table.MustGet(srv.Type, m.Name).QPS * float64(fl.Counts[j])
		}
		cfg := workload.DiurnalConfig{
			Service: m.Name, PeakQPS: capQPS * 0.45 / float64(len(models)),
			ValleyFrac: 0.4, PeakHour: 20, Days: 1, StepMin: 60,
			NoiseStd: 0.02, Seed: 42 + int64(i),
		}
		ws = append(ws, cluster.Workload{Model: m.Name, Trace: workload.Synthesize(cfg)})
	}

	run := func(router string, autoscale bool) fleet.DayResult {
		// One serializable Spec describes the run; the loaded table and
		// the example's explicit fleet ride along as options.
		spec := fleet.DefaultSpec()
		spec.Router = router
		spec.Options.MaxQueriesPerInterval = 60000
		if !autoscale {
			spec.Scaler = "none"
		}
		eng, err := fleet.NewEngine(spec, fleet.WithTable(table), fleet.WithFleet(fl))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet_routing:", err)
			os.Exit(1)
		}
		day, err := eng.RunDay(ws)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet_routing:", err)
			os.Exit(1)
		}
		return day
	}

	fmt.Printf("\nreplaying one day per router (hercules provisioning, hourly intervals):\n\n")
	fmt.Printf("%-8s %14s %9s %12s %11s %10s %10s\n",
		"router", "sla_viol_min", "drop_pct", "mean_p95_ms", "max_p99_ms", "energy_MJ", "autoscale")
	var rr fleet.DayResult
	for _, k := range fleet.AllRouters {
		day := run(k, true)
		if k == fleet.RoundRobin {
			rr = day
		}
		fmt.Printf("%-8s %14.1f %9.2f %12.1f %11.1f %10.1f %10d\n",
			day.Router, day.SLAViolationMin, day.DropFrac*100,
			day.MeanP95MS, day.MaxP99MS, day.EnergyKJ/1e3, day.AutoscaleEvents)
	}

	fmt.Println("\nstate-aware routers (least/p2c/hetero) see per-server queue depth;")
	fmt.Println("round robin splits load evenly across servers whose capacities differ")
	fmt.Println("by an order of magnitude, so the slowest type sets the fleet tail.")

	noScale := run(fleet.RoundRobin, false)
	fmt.Printf("\nautoscaler value under round robin: %.0f violation min with it, %.0f without\n",
		rr.SLAViolationMin, noScale.SLAViolationMin)
	fmt.Printf("(the autoscaler re-provisioned early %d times to rescue the bad router)\n",
		rr.EarlyReprovisions)
}
