// Command hercules-cluster runs the online serving stage (Fig. 9c): it
// provisions a heterogeneous fleet against diurnal per-workload loads
// with one of the four cluster scheduling policies and prints the
// per-interval activation/power series plus a run summary.
//
// Usage:
//
//	hercules-cluster -table table.json [-policy hercules|greedy|priority|nh]
//	                 [-fleet accelerated|cpu|default] [-days 1]
//	                 [-models RMC1,RMC2] [-peak 20000] [-seed 42] [-steps]
//
// The -table JSON comes from hercules-profile. Without it, a small
// demonstration table is profiled on the fly for RMC1/RMC2 on T2/T3/T7
// (about a minute).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hercules/internal/cluster"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/workload"
)

func main() {
	var (
		tableFlag  = flag.String("table", "", "efficiency-table JSON from hercules-profile")
		policyFlag = flag.String("policy", "hercules", "nh, greedy, priority or hercules")
		fleetFlag  = flag.String("fleet", "default", "fleet: default, cpu or accelerated")
		daysFlag   = flag.Int("days", 1, "days of diurnal load")
		modelsFlag = flag.String("models", "DLRM-RMC1,DLRM-RMC2", "workload models")
		peakFlag   = flag.Float64("peak", 0, "per-workload peak QPS (0 = auto-size to fleet)")
		seedFlag   = flag.Int64("seed", 42, "deterministic seed")
		stepsFlag  = flag.Bool("steps", false, "print every provisioning interval")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "Usage: hercules-cluster [flags]")
		fmt.Fprintln(os.Stderr, "Provisions a heterogeneous fleet against diurnal loads with one cluster policy.")
		fmt.Fprintln(os.Stderr, "Without -table, a small demonstration table is profiled on the fly for")
		fmt.Fprintln(os.Stderr, "RMC1/RMC2 on T2/T3/T7 (about a minute).")
		fmt.Fprintln(os.Stderr, "\nFlags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	policy, err := cluster.ParsePolicy(*policyFlag)
	if err != nil {
		fatal(err)
	}
	fleet, err := parseFleet(*fleetFlag)
	if err != nil {
		fatal(err)
	}
	names := splitModels(*modelsFlag)

	table, err := loadOrBuildTable(*tableFlag, names, fleet, *seedFlag)
	if err != nil {
		fatal(err)
	}

	peak := *peakFlag
	if peak <= 0 {
		peak = autoPeak(table, fleet, names)
		fmt.Fprintf(os.Stderr, "auto-sized per-workload peak: %.0f QPS\n", peak)
	}
	var ws []cluster.Workload
	for i, name := range names {
		tr := workload.Synthesize(workload.DefaultDiurnal(name, peak, *daysFlag, *seedFlag+int64(i)))
		ws = append(ws, cluster.Workload{Model: name, Trace: tr})
	}

	prov := cluster.NewProvisioner(fleet, table, policy, *seedFlag)
	run := prov.Run(ws)

	if *stepsFlag {
		fmt.Println("time_h\tservers\tpower_kW\tsatisfied")
		for _, s := range run.Steps {
			fmt.Printf("%.2f\t%d\t%.1f\t%v\n",
				s.TimeS/3600, s.ActiveServers, s.ProvisionedPowerW/1e3, s.Satisfied)
		}
	}
	fmt.Printf("policy=%s days=%d workloads=%s\n", policy, *daysFlag, strings.Join(names, ","))
	fmt.Printf("peak: %d servers, %.1f kW\n", run.PeakServers, run.PeakPowerW/1e3)
	fmt.Printf("avg:  %.1f servers, %.1f kW\n", run.AvgServers, run.AvgPowerW/1e3)
	fmt.Printf("energy: %.0f kJ over %d intervals, %d unsatisfied\n",
		run.TotalEnergyKJ, len(run.Steps), run.UnsatSteps)
	fmt.Printf("churn: %d activations / %d releases (%.0f s of workload setup)\n",
		run.Activations, run.Releases, run.SetupOverheadS)
}

func parseFleet(s string) (hw.Fleet, error) { return hw.NamedFleet(s) }

func splitModels(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if !strings.HasPrefix(name, "DLRM-") && strings.HasPrefix(name, "RMC") {
			name = "DLRM-" + name
		}
		out = append(out, name)
	}
	return out
}

func loadOrBuildTable(path string, names []string, fleet hw.Fleet, seed int64) (*profiler.Table, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var entries []profiler.Entry
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, err
		}
		return profiler.FromEntries(profiler.Hercules, entries), nil
	}
	fmt.Fprintln(os.Stderr, "no -table given; profiling requested pairs now (slow)...")
	var models []*model.Model
	for _, name := range names {
		m, err := model.ByName(name, model.Prod)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return profiler.BuildTable(models, fleet.Types, profiler.Options{
		Sched: profiler.Hercules, Seed: seed,
	}), nil
}

// autoPeak sizes the per-workload peak to ~40% of the fleet's best-case
// aggregate capacity split across the workloads.
func autoPeak(table *profiler.Table, fleet hw.Fleet, names []string) float64 {
	var total float64
	for i, srv := range fleet.Types {
		best := 0.0
		for _, name := range names {
			if e, ok := table.Get(srv.Type, name); ok && e.QPS > best {
				best = e.QPS
			}
		}
		total += best * float64(fleet.Counts[i])
	}
	return total * 0.4 / float64(len(names))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hercules-cluster:", err)
	os.Exit(1)
}
