// Command hercules-figures regenerates the paper's tables and figures
// on the simulated substrate and prints their data series.
//
// Usage:
//
//	hercules-figures -fig table1,fig2b,fig5     # cheap figures
//	hercules-figures -fig fig14                 # task-scheduler sweep (minutes)
//	hercules-figures -fig all -table table.json # everything, cached profile
//
// Figures needing the Fig. 9b efficiency table (fig8, fig15, fig16,
// fig17, headline, ablation-lp) profile all 60 pairs on first use unless
// -table provides a cache from hercules-profile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hercules/internal/experiments"
	"hercules/internal/profiler"
)

// figures maps figure keys to their runners.
var figures = map[string]func(seed int64) experiments.Renderer{
	"table1": func(int64) experiments.Renderer { return experiments.TableI() },
	"table2": func(int64) experiments.Renderer { return experiments.TableII() },
	"fig1":   func(int64) experiments.Renderer { return experiments.Fig1ModelFootprint() },
	"fig2b":  func(s int64) experiments.Renderer { return experiments.Fig2bQuerySizes(s) },
	"fig2c":  func(s int64) experiments.Renderer { return experiments.Fig2cPoolingFactors(s) },
	"fig2d":  func(s int64) experiments.Renderer { return experiments.Fig2dDiurnalLoad(s) },
	"fig4":   func(s int64) experiments.Renderer { return experiments.Fig4HostParallelism(s) },
	"fig5":   func(int64) experiments.Renderer { return experiments.Fig5OpWorkerIdle() },
	"fig6":   func(s int64) experiments.Renderer { return experiments.Fig6AcceleratorPolicies(s) },
	"fig7":   func(s int64) experiments.Renderer { return experiments.Fig7FusionBreakdown(s) },
	"fig8":   func(s int64) experiments.Renderer { return experiments.Fig8ClusterCharacterization(s) },
	"fig11":  func(s int64) experiments.Renderer { return experiments.Fig11ParallelismSpace(s) },
	"fig12":  func(s int64) experiments.Renderer { return experiments.Fig12SDPipeline(s) },
	"fig14": func(s int64) experiments.Renderer {
		return experiments.Fig14TaskSchedulerSpeedup(s, nil)
	},
	"figcarbon": func(s int64) experiments.Renderer {
		r, err := experiments.FigCarbon(s)
		if err != nil {
			fatal(err)
		}
		return r
	},
	"fig15":    func(int64) experiments.Renderer { return experiments.Fig15ServerArchExploration() },
	"fig16":    func(s int64) experiments.Renderer { return experiments.Fig16ModelEvolution(s) },
	"fig17":    func(s int64) experiments.Renderer { return experiments.Fig17ClusterSchedulers(s) },
	"headline": func(s int64) experiments.Renderer { return experiments.Fig17ClusterSchedulers(s) },
	"ablation-contention": func(s int64) experiments.Renderer {
		return experiments.AblationNoContention(s)
	},
	"ablation-search": func(s int64) experiments.Renderer {
		return experiments.AblationSearchVsExhaustive(s)
	},
	"ablation-hot": func(s int64) experiments.Renderer {
		return experiments.AblationNoHotPartition(s)
	},
	"ablation-lp": func(s int64) experiments.Renderer {
		return experiments.AblationLPRounding(s)
	},
}

// cheap figures run in under a second; "all" runs everything.
var order = []string{
	"table1", "table2", "fig1", "fig2b", "fig2c", "fig2d", "fig5",
	"fig4", "fig7", "fig12", "fig11", "fig6", "fig14", "figcarbon",
	"fig8", "fig15", "fig16", "fig17", "headline",
	"ablation-contention", "ablation-search", "ablation-hot", "ablation-lp",
}

func main() {
	var (
		figFlag   = flag.String("fig", "", "comma-separated figure keys, or 'all' / 'list'")
		seedFlag  = flag.Int64("seed", experiments.Seed, "deterministic seed")
		tableFlag = flag.String("table", "", "efficiency-table JSON cache from hercules-profile")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "Usage: hercules-figures -fig <keys> [flags]")
		fmt.Fprintln(os.Stderr, "Regenerates the paper's tables and figures; -fig list shows the keys.")
		fmt.Fprintln(os.Stderr, "Figures needing the efficiency table profile all 60 pairs on first use")
		fmt.Fprintln(os.Stderr, "unless -table provides a cached hercules-profile run.")
		fmt.Fprintln(os.Stderr, "\nFlags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *figFlag == "" || *figFlag == "list" {
		fmt.Println("available figures:")
		keys := make([]string, 0, len(figures))
		for k := range figures {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Println(" ", k)
		}
		return
	}

	if *tableFlag != "" {
		data, err := os.ReadFile(*tableFlag)
		if err != nil {
			fatal(err)
		}
		var entries []profiler.Entry
		if err := json.Unmarshal(data, &entries); err != nil {
			fatal(err)
		}
		experiments.SetHerculesTable(profiler.FromEntries(profiler.Hercules, entries))
		fmt.Fprintf(os.Stderr, "loaded efficiency table from %s (%d entries)\n",
			*tableFlag, len(entries))
	}

	var keys []string
	if *figFlag == "all" {
		keys = order
	} else {
		for _, k := range strings.Split(*figFlag, ",") {
			keys = append(keys, strings.TrimSpace(strings.ToLower(k)))
		}
	}
	for _, k := range keys {
		run, ok := figures[k]
		if !ok {
			fatal(fmt.Errorf("unknown figure %q (try -fig list)", k))
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", k)
		fmt.Println(run(*seedFlag).Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hercules-figures:", err)
	os.Exit(1)
}
