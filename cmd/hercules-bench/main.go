// Command hercules-bench is the repo's performance harness: it runs a
// named subset of the benchmark suite (bench_test.go) for several
// repetitions, aggregates ns/op, allocs/op and the domain counters
// (queries replayed per second) into a machine-readable JSON report,
// and optionally gates the result against a committed baseline.
//
// Usage:
//
//	hercules-bench [-bench BenchmarkFleetDay] [-pkg .] [-count 3]
//	               [-benchtime 1x] [-timeout 30m] [-out BENCH_fleet.json]
//	               [-input fresh.json] [-compare baseline.json]
//	               [-threshold 15%] [-alloc-threshold 10%] [-quiet]
//
// Typical flows:
//
//	record a baseline:   hercules-bench -count 5 -out BENCH_fleet.json
//	gate a change (CI):  hercules-bench -count 3 -out fresh.json \
//	                         -compare BENCH_fleet.json -threshold 15%
//	re-gate a report:    hercules-bench -input fresh.json -compare BENCH_fleet.json
//
// With -compare, ns/op is gated against -threshold and allocs/op +
// B/op against -alloc-threshold, all on per-repetition minima (the
// first in-process repetition pays one-time cache fills; minima are
// the steady state). "off" disables either gate. Exit status: 0 pass, 1 regression,
// 2 harness error.
package main

import (
	"flag"
	"fmt"
	"os"

	"hercules/internal/perfbench"
)

func main() {
	var (
		bench     = flag.String("bench", "BenchmarkFleetDay", "benchmark regexp handed to go test -bench")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		count     = flag.Int("count", 3, "repetitions (go test -count)")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime")
		timeout   = flag.String("timeout", "30m", "go test -timeout")
		out       = flag.String("out", "", "write the aggregated JSON report here")
		input     = flag.String("input", "", "load a prior report instead of running benchmarks")
		compare   = flag.String("compare", "", "baseline JSON report to gate against")
		threshold = flag.String("threshold", "15%", "allowed ns/op growth over baseline (\"off\" disables)")
		allocThr  = flag.String("alloc-threshold", "10%", "allowed allocs/op and B/op growth (\"off\" disables)")
		quiet     = flag.Bool("quiet", false, "suppress go test output passthrough")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "Usage: hercules-bench [flags]")
		fmt.Fprintln(os.Stderr, "Runs the benchmark suite, writes a machine-readable report, and gates")
		fmt.Fprintln(os.Stderr, "regressions against a committed baseline (exit 1 on regression).")
		fmt.Fprintln(os.Stderr, "\nFlags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	os.Exit(run(*bench, *pkg, *count, *benchtime, *timeout, *out, *input, *compare, *threshold, *allocThr, *quiet))
}

func run(bench, pkg string, count int, benchtime, timeout, out, input, compare, threshold, allocThr string, quiet bool) int {
	timeFrac, err := perfbench.ParseFraction(threshold)
	if err != nil {
		return fail(err)
	}
	allocFrac, err := perfbench.ParseFraction(allocThr)
	if err != nil {
		return fail(err)
	}

	var fresh *perfbench.Report
	if input != "" {
		if fresh, err = perfbench.Load(input); err != nil {
			return fail(err)
		}
	} else {
		cfg := perfbench.RunConfig{Pkg: pkg, Bench: bench, BenchTime: benchtime, Count: count, Timeout: timeout}
		if !quiet {
			cfg.Stdout = os.Stderr
		}
		if fresh, err = perfbench.Run(cfg); err != nil {
			return fail(err)
		}
	}
	for _, b := range fresh.Benchmarks {
		ns := b.Metrics["ns/op"]
		fmt.Printf("%s: %d reps, best %.0f ns/op, mean %.0f allocs/op", b.Name, b.Reps, ns.Min, b.Metrics["allocs/op"].Mean)
		if qps, ok := b.Metrics["queries_per_sec"]; ok {
			fmt.Printf(", %.3g queries/sec", qps.Max)
		}
		fmt.Println()
	}
	if out != "" {
		if err := fresh.WriteFile(out); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", out, len(fresh.Benchmarks))
	}
	if compare == "" {
		return 0
	}

	base, err := perfbench.Load(compare)
	if err != nil {
		return fail(err)
	}
	deltas := perfbench.Compare(base, fresh, perfbench.Thresholds{Time: timeFrac, Alloc: allocFrac})
	fmt.Printf("\ncomparison against %s:\n%s", compare, perfbench.FormatDeltas(deltas))
	if regs := perfbench.Regressions(deltas); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "hercules-bench: %d regression(s) past threshold\n", len(regs))
		return 1
	}
	fmt.Println("no regressions")
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "hercules-bench:", err)
	return 2
}
