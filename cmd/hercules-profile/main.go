// Command hercules-profile runs the offline profiling stage (Fig. 9a):
// it explores the task-scheduling space for every requested
// workload/server pair and emits the efficiency-tuple table that the
// online cluster provisioner consumes.
//
// Usage:
//
//	hercules-profile [-models RMC1,DIN] [-servers T2,T3,T7] \
//	                 [-sched hercules|baseline] [-seed 42] [-out table.json]
//
// Without flags it profiles all six Table I models on all ten Table II
// server types with the Hercules task scheduler (this takes minutes).
// The JSON written by -out can be fed to hercules-cluster and
// hercules-figures via their -table flag to skip re-profiling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
)

func main() {
	var (
		modelsFlag  = flag.String("models", "", "comma-separated model names (default: all six)")
		serversFlag = flag.String("servers", "", "comma-separated server types (default: T1-T10)")
		schedFlag   = flag.String("sched", "hercules", "task scheduler: hercules or baseline")
		seedFlag    = flag.Int64("seed", 42, "deterministic seed")
		outFlag     = flag.String("out", "", "write the table as JSON to this path")
		parFlag     = flag.Int("par", 8, "concurrent pair profiling")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "Usage: hercules-profile [flags]")
		fmt.Fprintln(os.Stderr, "Builds the Fig. 9b efficiency table with the full Algorithm 1 search (minutes).")
		fmt.Fprintln(os.Stderr, "Feed the -out JSON to hercules-cluster, hercules-fleet and hercules-figures via")
		fmt.Fprintln(os.Stderr, "-table; without one, hercules-fleet quick-calibrates in seconds while the")
		fmt.Fprintln(os.Stderr, "other two fall back to profiling the pairs they need (minutes).")
		fmt.Fprintln(os.Stderr, "\nFlags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	models, err := parseModels(*modelsFlag)
	if err != nil {
		fatal(err)
	}
	servers, err := parseServers(*serversFlag)
	if err != nil {
		fatal(err)
	}
	sched := profiler.Hercules
	switch *schedFlag {
	case "hercules":
	case "baseline":
		sched = profiler.Baseline
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *schedFlag))
	}

	fmt.Fprintf(os.Stderr, "profiling %d models x %d server types with the %s scheduler...\n",
		len(models), len(servers), sched)
	table := profiler.BuildTable(models, servers, profiler.Options{
		Sched: sched, Seed: *seedFlag, Parallelism: *parFlag,
	})

	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	fmt.Print(table.Format(names))

	if *outFlag != "" {
		data, err := json.MarshalIndent(table.Entries(), "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outFlag, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outFlag)
	}
}

func parseModels(s string) ([]*model.Model, error) {
	if s == "" {
		return model.Zoo(model.Prod), nil
	}
	var out []*model.Model
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		// Accept both full names and RMC shorthands.
		if !strings.HasPrefix(name, "DLRM-") && strings.HasPrefix(name, "RMC") {
			name = "DLRM-" + name
		}
		m, err := model.ByName(name, model.Prod)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func parseServers(s string) ([]hw.Server, error) {
	if s == "" {
		return hw.AllServerTypes(), nil
	}
	var out []hw.Server
	for _, label := range strings.Split(s, ",") {
		label = strings.TrimSpace(label)
		found := false
		for _, srv := range hw.AllServerTypes() {
			if srv.Type == label {
				out = append(out, srv)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown server type %q", label)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hercules-profile:", err)
	os.Exit(1)
}
