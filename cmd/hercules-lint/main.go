// Command hercules-lint runs the repo's static determinism and
// hot-path invariant analyzers (internal/lintcheck) over the packages
// matched by the given patterns and exits non-zero on any diagnostic.
//
//	hercules-lint ./...
//	hercules-lint -only wallclock,maporder ./internal/fleet
//
// Diagnostics are suppressed per-statement with a reasoned directive:
//
//	//lint:allow <analyzer> <reason>
//
// See internal/lintcheck for the contracts each analyzer enforces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hercules/internal/lintcheck"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: hercules-lint [flags] [packages]\n\nRuns the hercules static-analysis suite (default patterns: ./...).\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lintcheck.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*lintcheck.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "hercules-lint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lintcheck.Load("", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hercules-lint: %v\n", err)
		os.Exit(2)
	}

	total := 0
	for _, pkg := range pkgs {
		findings, err := lintcheck.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hercules-lint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "hercules-lint: %d issue(s) in %d package(s); suppress a legitimate use with //lint:allow <analyzer> <reason>\n",
			total, len(pkgs))
		os.Exit(1)
	}
}
