// Command hercules-fleet replays full days of request-level traffic
// against a provisioned heterogeneous fleet (internal/fleet) and emits
// a JSON report: for every router × provisioning-policy combination,
// per-interval p50/p95/p99 latency, SLA-violation minutes, queue
// drops, energy, and autoscaler activity.
//
// Usage:
//
//	hercules-fleet [-spec run.json] [-table table.json] [-models RMC1,RMC2]
//	               [-fleet small|cpu|default|accelerated]
//	               [-routers rr,least,p2c,hetero] [-policies greedy,hercules]
//	               [-scaler breach|prop|none] [-admission none|deadline]
//	               [-scenario name|@file.json|'[...]'] [-list-scenarios]
//	               [-grid duck|coal|hydro|@grid.json|'{...}']
//	               [-geo local|spill]
//	               [-trace arrivals.ndjson] [-record arrivals.ndjson]
//	               [-cache-hit 0.8] [-cache-latency 0.3] [-cache-fill 2000]
//	               [-cache-cold]
//	               [-days 1] [-step-min 60] [-peak 0] [-headroom 0.15]
//	               [-queue 32] [-slice 8] [-window 1] [-max-queries 150000]
//	               [-batch 1] [-batch-wait 2] [-shards 0] [-sequential]
//	               [-seed 42] [-ndjson] [-summary] [-pretty]
//	               [-trace-out trace.ndjson] [-trace-chrome trace.json]
//	               [-trace-sample 1024] [-sketch-tails]
//	               [-metrics-out metrics.json] [-pprof localhost:6060]
//
// Every run is described by a fleet.Spec: -spec loads one from JSON,
// the other flags override individual fields (an unset flag defers to
// the spec file, which defers to fleet.DefaultSpec), and the emitted
// report embeds the resolved spec so a run can be reproduced with
// -spec alone. Policies are resolved by name through the fleet policy
// registries — a router, autoscaler or admission policy registered by
// any package is selectable here without touching this command.
//
// The -table JSON comes from hercules-profile (full Fig. 9b search).
// Without -table, each (model, server type) pair is quick-calibrated on
// the fly over a small serving-configuration ladder — seconds, not
// minutes — which is the recommended way to start.
//
// -scenario injects a non-stationary scenario (internal/scenario): a
// built-in name (flashcrowd, regionshift, failure, degrade, shed), a
// JSON spec file (@events.json), or an inline JSON event array. Every
// disruption run is paired with a baseline replay of the same router ×
// policy so the report shows the divergence directly.
//
// A spec file with a "regions" list replays multi-region
// (fleet.NewMultiEngine): every region runs its own fleet with its
// own diurnal phase, and the -geo policy (or the spec's "geo" field)
// moves load between them each interval — "local" keeps every region
// on its own traffic, "spill" routes overflow and blackout
// evacuations to remote regions with headroom, adding the
// inter-region RTT to every remotely served query's latency. The
// report's runs carry per-region results under "regions" next to the
// global aggregate; -ndjson lines and metrics names are labelled with
// the region. scenario "blackout" events (whole region offline,
// survivors spiked by the flash-crowd factor) need a multi-region
// spec. -record and -trace are single-region features and refuse a
// regions spec.
//
// -grid attaches a grid carbon-intensity timeline (internal/grid) to
// the replay: each interval's measured joules are priced at the grid's
// gCO2/kWh for that hour, the report carries total gCO2 and gCO2/query
// next to the energy numbers, and the carbon-aware policies (-scaler
// carbon, -admission carbon) read the timeline to shift headroom and
// deferrable-class work into the cleaner hours. scenario "powercap"
// events hold a server type to a total watt budget (derating it like a
// thermal throttle) whether or not a grid is attached. Without -grid
// (and no "grid" field in the spec) nothing changes: replays are
// byte-identical to a grid-less build.
//
// -record captures the run's arrival stream (every query plus each
// interval's offered-load metadata) as an NDJSON trace; -trace feeds a
// recorded file back in, replaying exactly those arrivals instead of
// synthesizing load — byte-identical to the recorded run under the
// same spec, at any shard count, which is how live traffic captured
// once gets replayed against candidate configurations. -cache-hit puts
// a warmth-tracking cache tier in front of routing: hits return at
// -cache-latency, misses route normally, and the fleet is provisioned
// against the miss load — scenario cache-flush events (cachestorm)
// then show the stampede cost of that leaner sizing.
//
// -ndjson streams every replayed interval as one JSON line on stdout
// while the day runs — the engine's Observer hook, the same stream the
// final report aggregates — and trims the per-interval series from the
// closing report.
//
// -trace-out / -trace-chrome enable the per-query tracer
// (internal/telemetry): lifecycle events for 1 in -trace-sample
// queries (default 1024 when a trace output is requested), exported as
// NDJSON and/or Chrome trace-event JSON (load the latter in Perfetto
// or chrome://tracing). Sampling is deterministic in the seed, so two
// runs of the same spec trace the same queries. When the sweep replays
// several router × policy runs, their traces append to the same file
// in execution order. -metrics-out writes a point-in-time snapshot of
// the telemetry metrics registry (counters, gauges, sketch-backed
// histograms) accumulated across the sweep. -pprof serves
// net/http/pprof on the given address for live CPU/heap profiling of
// long replays.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"hercules/internal/cluster"
	"hercules/internal/fleet"
	"hercules/internal/grid"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/scenario"
	"hercules/internal/telemetry"
)

// ndjsonInterval is one -ndjson stream line: an interval's stats
// labeled with the run that produced them.
type ndjsonInterval struct {
	Router   string `json:"router"`
	Policy   string `json:"policy"`
	Scenario string `json:"scenario"`
	Region   string `json:"region,omitempty"`
	fleet.IntervalStats
}

type report struct {
	// Spec is the resolved base spec of the sweep (router/policy vary
	// per run); feed it back via -spec to reproduce the report.
	Spec     fleet.Spec        `json:"spec"`
	Routers  []string          `json:"routers"`
	Policies []string          `json:"policies"`
	ElapsedS float64           `json:"elapsed_s"`
	Runs     []fleet.DayResult `json:"runs"`
}

// cliFlags holds the flag destinations; defaults come from
// fleet.DefaultSpec() so the CLI can never drift from the library
// defaults (TestFlagDefaultsMatchDefaultSpec pins this).
type cliFlags struct {
	spec      *string
	table     *string
	models    *string
	fleetName *string
	routers   *string
	policies  *string
	scaler    *string
	admission *string
	geo       *string
	scen      *string
	gridArg   *string
	listScen  *bool
	trace     *string
	record    *string
	cacheHit  *float64
	cacheLat  *float64
	cacheFill *float64
	cacheCold *bool
	days      *int
	stepMin   *float64
	peak      *float64
	headroom  *float64
	queue     *int
	slice     *float64
	window    *float64
	maxQ      *int
	batch     *int
	batchWait *float64
	shards    *int
	seq       *bool
	seed      *int64
	ndjson    *bool
	summary   *bool
	pretty    *bool

	traceOut    *string
	traceChrome *string
	traceSample *int
	sketchTails *bool
	metricsOut  *string
	pprofAddr   *string
}

// registerFlags wires the flag set; every default is read off
// fleet.DefaultSpec, and the policy flag usage strings list the
// registered names straight from the registries.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	def := fleet.DefaultSpec()
	return &cliFlags{
		spec:      fs.String("spec", "", "run-spec JSON file (fleet.Spec); other flags override its fields"),
		table:     fs.String("table", "", "efficiency-table JSON from hercules-profile (default: quick calibration)"),
		models:    fs.String("models", strings.Join(def.Models, ","), "workload models"),
		fleetName: fs.String("fleet", def.Fleet, "fleet: "+strings.Join(hw.FleetNames, ", ")),
		routers: fs.String("routers", strings.Join(fleet.AllRouters, ","),
			"routing policies to replay (registered: "+strings.Join(fleet.RouterNames(), ", ")+")"),
		policies: fs.String("policies", "greedy,hercules",
			"provisioning policies to replay ("+strings.Join(cluster.PolicyNames, ", ")+")"),
		scaler: fs.String("scaler", def.Scaler,
			"online autoscaler: none or a registered name ("+strings.Join(fleet.ScalerNames(), ", ")+")"),
		admission: fs.String("admission", def.Admission,
			"admission shedding: none or a registered name ("+strings.Join(fleet.AdmissionNames(), ", ")+")"),
		geo: fs.String("geo", def.Geo,
			"geo-routing policy for a multi-region spec ("+strings.Join(fleet.GeoPolicyNames(), ", ")+"; empty = local)"),
		scen: fs.String("scenario", def.Scenario,
			"non-stationary scenario: a built-in name, @spec.json, or an inline JSON event array"),
		gridArg: fs.String("grid", "",
			"grid carbon-intensity timeline: a preset ("+strings.Join(grid.Presets(), ", ")+"), @spec.json, or inline JSON (empty = no carbon accounting)"),
		listScen: fs.Bool("list-scenarios", false, "list the built-in scenarios and exit"),
		trace: fs.String("trace", def.Trace,
			"replay recorded arrivals from this NDJSON trace instead of synthesizing load (see -record)"),
		record: fs.String("record", "",
			"record the run's arrival trace as NDJSON to this file (- = stdout); forces -trace-sample 1 and a single router x policy run"),
		cacheHit: fs.Float64("cache-hit", def.Cache.HitRate,
			"cache tier: asymptotic hit rate in [0,1) (0 = no cache tier)"),
		cacheLat: fs.Float64("cache-latency", def.Cache.LatencyMS,
			"cache tier: hit latency in milliseconds (0 = 0.3)"),
		cacheFill: fs.Float64("cache-fill", def.Cache.FillQueries,
			"cache tier: misses to refill an empty cache to ~63% warmth (0 = 2000)"),
		cacheCold: fs.Bool("cache-cold", def.Cache.ColdStart,
			"cache tier: start the day with cold caches (warmth 0) instead of warm"),
		days:      fs.Int("days", def.Days, "days of diurnal load"),
		stepMin:   fs.Float64("step-min", def.StepMin, "trace interval in minutes (>= 24 intervals per day at 60)"),
		peak:      fs.Float64("peak", def.PeakQPS, "per-workload peak QPS (0 = auto-size to fleet)"),
		headroom:  fs.Float64("headroom", def.HeadroomR, "provisioning over-provision rate R"),
		queue:     fs.Int("queue", def.Options.QueueCap, "per-server bounded queue slots"),
		slice:     fs.Float64("slice", def.Options.SliceS, "sampled traffic slice per interval (seconds)"),
		window:    fs.Float64("window", def.Options.WindowS, "tail observation window (seconds)"),
		maxQ:      fs.Int("max-queries", def.Options.MaxQueriesPerInterval, "replayed-query budget per interval"),
		batch:     fs.Int("batch", def.Options.MaxBatch, "dynamic batching: max queries coalesced per dispatch (1 = off)"),
		batchWait: fs.Float64("batch-wait", def.Options.BatchWaitS*1e3, "max batch-formation wait in milliseconds"),
		shards:    fs.Int("shards", def.Options.Shards, "per-model shard fan-out (0 = NumCPU)"),
		seq:       fs.Bool("sequential", false, "disable the parallel worker pool"),
		seed:      fs.Int64("seed", def.Options.Seed, "deterministic seed"),
		ndjson:    fs.Bool("ndjson", false, "stream per-interval stats as JSON lines while replaying"),
		summary:   fs.Bool("summary", false, "omit per-interval series from the JSON"),
		pretty:    fs.Bool("pretty", false, "indent the JSON output"),

		traceOut:    fs.String("trace-out", "", "write sampled per-query trace as NDJSON to this file (- = stdout)"),
		traceChrome: fs.String("trace-chrome", "", "write sampled per-query trace as Chrome trace-event JSON (Perfetto)"),
		traceSample: fs.Int("trace-sample", def.Options.TraceSample,
			"trace 1 in N queries (0 = off; defaults to 1024 when a trace output is set)"),
		sketchTails: fs.Bool("sketch-tails", def.Options.SketchTails,
			"compute tail percentiles from mergeable quantile sketches (1% relative error) instead of exact buffers"),
		metricsOut: fs.String("metrics-out", "", "write a JSON snapshot of the telemetry metrics registry (- = stdout)"),
		pprofAddr:  fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)"),
	}
}

// buildSpec resolves the run's base spec: the -spec file (or
// DefaultSpec) overlaid with every flag the user explicitly set.
// Flag defaults are themselves DefaultSpec values, so with no spec
// file the overlay of unset flags is the identity.
func buildSpec(cf *cliFlags, fs *flag.FlagSet) (fleet.Spec, error) {
	spec := fleet.DefaultSpec()
	if *cf.spec != "" {
		data, err := os.ReadFile(*cf.spec)
		if err != nil {
			return spec, err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return spec, fmt.Errorf("%s: %w", *cf.spec, err)
		}
	}
	// One overlay per flag; a field missing here is a field the CLI
	// cannot override, so keep the table in sync with cliFlags.
	// -routers/-policies are the sweep axes, applied in main.
	overlays := map[string]func(*fleet.Spec){
		"models":        func(s *fleet.Spec) { s.Models = splitModels(*cf.models) },
		"fleet":         func(s *fleet.Spec) { s.Fleet = *cf.fleetName },
		"scaler":        func(s *fleet.Spec) { s.Scaler = *cf.scaler },
		"admission":     func(s *fleet.Spec) { s.Admission = *cf.admission },
		"geo":           func(s *fleet.Spec) { s.Geo = *cf.geo },
		"scenario":      func(s *fleet.Spec) { s.Scenario = *cf.scen },
		"trace":         func(s *fleet.Spec) { s.Trace = *cf.trace },
		"cache-hit":     func(s *fleet.Spec) { s.Cache.HitRate = *cf.cacheHit },
		"cache-latency": func(s *fleet.Spec) { s.Cache.LatencyMS = *cf.cacheLat },
		"cache-fill":    func(s *fleet.Spec) { s.Cache.FillQueries = *cf.cacheFill },
		"cache-cold":    func(s *fleet.Spec) { s.Cache.ColdStart = *cf.cacheCold },
		"days":          func(s *fleet.Spec) { s.Days = *cf.days },
		"step-min":      func(s *fleet.Spec) { s.StepMin = *cf.stepMin },
		"peak":          func(s *fleet.Spec) { s.PeakQPS = *cf.peak },
		"headroom":      func(s *fleet.Spec) { s.HeadroomR = *cf.headroom },
		"queue":         func(s *fleet.Spec) { s.Options.QueueCap = *cf.queue },
		"slice":         func(s *fleet.Spec) { s.Options.SliceS = *cf.slice },
		"window":        func(s *fleet.Spec) { s.Options.WindowS = *cf.window },
		"max-queries":   func(s *fleet.Spec) { s.Options.MaxQueriesPerInterval = *cf.maxQ },
		"batch":         func(s *fleet.Spec) { s.Options.MaxBatch = *cf.batch },
		"batch-wait":    func(s *fleet.Spec) { s.Options.BatchWaitS = *cf.batchWait / 1e3 },
		"shards":        func(s *fleet.Spec) { s.Options.Shards = *cf.shards },
		"sequential":    func(s *fleet.Spec) { s.Options.Sequential = *cf.seq },
		"seed":          func(s *fleet.Spec) { s.Options.Seed = *cf.seed },
		"trace-sample":  func(s *fleet.Spec) { s.Options.TraceSample = *cf.traceSample },
		"sketch-tails":  func(s *fleet.Spec) { s.Options.SketchTails = *cf.sketchTails },
	}
	// -grid resolves through grid.Parse (preset name, @file, or inline
	// JSON) and so lives outside the overlays table: parsing can fail.
	// The flag wins over a spec file's grid when explicitly set, and an
	// explicit -grid "" clears it (grid.Parse of "" is the zero spec).
	if *cf.spec == "" || flagWasSet(fs, "grid") {
		g, err := grid.Parse(*cf.gridArg)
		if err != nil {
			return spec, err
		}
		spec.Grid = g
	}
	if *cf.spec == "" {
		for _, apply := range overlays {
			apply(&spec)
		}
		return spec, nil
	}
	fs.Visit(func(f *flag.Flag) {
		if apply, ok := overlays[f.Name]; ok {
			apply(&spec)
		}
	})
	return spec, nil
}

// flagWasSet reports whether the user set the named flag explicitly.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// flushOnExit collects buffered writers that must be flushed before
// the process exits, on the success path and in fatal().
var flushOnExit []*bufio.Writer

func flushAll() {
	for _, w := range flushOnExit {
		w.Flush()
	}
}

// nopCloser shields os.Stdout from the trace sinks' Close (which
// closes io.Closer destinations — wanted for files, not for stdout).
type nopCloser struct{ io.Writer }

// openOut opens a trace/metrics destination: "-" is stdout (never
// closed), anything else a created file.
func openOut(path string) (io.Writer, error) {
	if path == "-" {
		return nopCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

func main() {
	cf := registerFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "Usage: hercules-fleet [flags]")
		fmt.Fprintln(os.Stderr, "Replays diurnal days of request-level traffic for every router x policy combination.")
		fmt.Fprintln(os.Stderr, "Runs are described by a fleet.Spec (-spec run.json); flags override its fields.")
		fmt.Fprintln(os.Stderr, "Without -table, serving configurations are quick-calibrated on the fly (seconds);")
		fmt.Fprintln(os.Stderr, "pass a hercules-profile table for the full Fig. 9b search results.")
		fmt.Fprintln(os.Stderr, "\nFlags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *cf.listScen {
		for _, name := range scenario.Names() {
			sc, _ := scenario.Named(name)
			fmt.Print(sc.Summary())
		}
		return
	}

	spec, err := buildSpec(cf, flag.CommandLine)
	if err != nil {
		fatal(err)
	}
	// The sweep axes: -routers/-policies flags, except that a spec
	// file's single router/policy wins when the flag is not set — so
	// feeding a report's embedded spec back reproduces exactly its run.
	routersArg, policiesArg := *cf.routers, *cf.policies
	if *cf.spec != "" && !flagWasSet(flag.CommandLine, "routers") {
		routersArg = spec.Router
	}
	if *cf.spec != "" && !flagWasSet(flag.CommandLine, "policies") {
		policiesArg = spec.Policy
	}
	routers, err := parseRouters(routersArg)
	if err != nil {
		fatal(err)
	}
	policies, err := parsePolicies(policiesArg)
	if err != nil {
		fatal(err)
	}
	scen, err := scenario.Parse(spec.Scenario)
	if err != nil {
		fatal(err)
	}
	// A multi-region spec replays through NewMultiEngine; the features
	// that are inherently single-region fail fast here with a message
	// naming the conflict rather than deep in the engine.
	multiRegion := len(spec.Regions) > 1
	if multiRegion {
		if *cf.record != "" {
			fatal(fmt.Errorf("-record captures a single region's arrivals; drop the regions or record per region"))
		}
		if spec.Trace != "" {
			fatal(fmt.Errorf("recorded traces replay single-region; drop the regions or the trace"))
		}
	}
	// A recorded trace replaces workload synthesis; its models drive
	// the run (and the calibration below) unless -models pins them.
	var traceSrc *fleet.TraceSource
	if spec.Trace != "" {
		traceSrc, err = fleet.LoadTrace(spec.Trace)
		if err != nil {
			fatal(err)
		}
		if !flagWasSet(flag.CommandLine, "models") {
			spec.Models = traceSrc.Models()
		}
		fmt.Fprintf(os.Stderr, "replaying %s: %d interval(s), models %s\n",
			spec.Trace, traceSrc.Steps(), strings.Join(traceSrc.Models(), ","))
	}
	table, err := loadOrCalibrateTable(*cf.table, spec, spec.Options.Seed)
	if err != nil {
		fatal(err)
	}

	if *cf.pprofAddr != "" {
		go func(addr string) {
			fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", addr)
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}(*cf.pprofAddr)
	}

	// Trace sinks are opened once and shared by every run in the sweep;
	// a requested trace output turns sampling on at 1/1024 if the user
	// did not pick a rate.
	var traceSinks []telemetry.Sink
	if *cf.traceOut != "" {
		w, err := openOut(*cf.traceOut)
		if err != nil {
			fatal(err)
		}
		traceSinks = append(traceSinks, telemetry.NewNDJSONWriter(w))
	}
	if *cf.traceChrome != "" {
		w, err := openOut(*cf.traceChrome)
		if err != nil {
			fatal(err)
		}
		traceSinks = append(traceSinks, telemetry.NewChromeWriter(w, spec.Options.SliceS))
	}
	if *cf.record != "" {
		if len(routers) > 1 || len(policies) > 1 {
			fatal(fmt.Errorf("-record captures one run's arrivals; pick a single -routers and -policies value"))
		}
		w, err := openOut(*cf.record)
		if err != nil {
			fatal(err)
		}
		// Arrival capture must see every query, and the file carries only
		// the arrival + offer events the -trace replay path re-ingests.
		traceSinks = append(traceSinks,
			telemetry.NewNDJSONWriter(w).Restrict(telemetry.KindArrival, telemetry.KindOffer))
		spec.Options.TraceSample = 1
	}
	if len(traceSinks) > 0 && spec.Options.TraceSample == 0 {
		spec.Options.TraceSample = 1024
	}
	var metricsReg *telemetry.Registry
	if *cf.metricsOut != "" {
		metricsReg = telemetry.NewRegistry()
	}

	rep := report{Spec: spec, Routers: routers, Policies: policies}
	// A disruption run is always paired with a baseline replay of the
	// same router × policy so the report carries the divergence.
	runScens := []string{spec.Scenario}
	if scen.Active() {
		fmt.Fprint(os.Stderr, scen.Summary())
		// Pair the disruption with a baseline replay — unless recording,
		// where the file must carry exactly one run's arrivals.
		if *cf.record == "" {
			runScens = []string{"baseline", spec.Scenario}
		}
	}
	// The -ndjson stream goes through one buffered writer for the whole
	// sweep: per-interval lines are small and frequent, and an
	// unbuffered stdout pays a syscall per interval. The buffer is
	// flushed after the sweep and on every fatal() exit.
	ndjsonBuf := bufio.NewWriterSize(os.Stdout, 1<<16)
	flushOnExit = append(flushOnExit, ndjsonBuf)
	ndjsonEnc := json.NewEncoder(ndjsonBuf)
	start := time.Now()
	for _, pol := range policies {
		for _, router := range routers {
			for _, sc := range runScens {
				run := spec
				run.Policy = pol
				run.Router = router
				run.Scenario = sc
				engOpts := []fleet.Option{fleet.WithTable(table)}
				if traceSrc != nil {
					// Share the loaded trace across the sweep instead of
					// re-reading the file per run.
					engOpts = append(engOpts, fleet.WithTraceSource(traceSrc))
				}
				// The stream label is the run's resolved scenario name, not
				// the raw argument (which may be @file.json or inline JSON)
				// — and not the region engines' own scenario, which is
				// always baseline (multi-region timelines come from
				// CompileRegions, not the per-region spec).
				runScen, err := scenario.Parse(run.Scenario)
				if err != nil {
					fatal(err)
				}
				// decorate attaches the per-run sinks to one engine; the
				// multi-region path applies it per region with the region's
				// name, the single path once with no label.
				decorate := func(eng *fleet.Engine, region string) {
					if eng.Tracer != nil {
						for _, s := range traceSinks {
							eng.Tracer.AddSink(s)
						}
					}
					if metricsReg != nil {
						eng.Observers = append(eng.Observers, fleet.NewRegionMetricsObserver(metricsReg, region))
					}
					if *cf.ndjson {
						// Each line carries its run's identity — the sweep
						// multiplexes every run onto one stream. The line is
						// built per callback so the observer retains nothing
						// across intervals.
						scen := runScen.Name
						eng.Observers = append(eng.Observers, fleet.ObserverFunc(func(ist fleet.IntervalStats) {
							ndjsonEnc.Encode(ndjsonInterval{
								Router: router, Policy: pol, Scenario: scen, Region: region,
								IntervalStats: ist,
							})
						}))
					}
				}
				var day fleet.DayResult
				if multiRegion {
					me, err := fleet.NewMultiEngine(run, engOpts...)
					if err != nil {
						fatal(err)
					}
					for i, eng := range me.Engines {
						decorate(eng, me.Spec.Regions[i].Name)
					}
					if day, err = me.RunDay(me.Workloads()); err != nil {
						fatal(err)
					}
				} else {
					eng, err := fleet.NewEngine(run, engOpts...)
					if err != nil {
						fatal(err)
					}
					decorate(eng, "")
					if day, err = eng.RunDay(eng.Workloads()); err != nil {
						fatal(err)
					}
				}
				if *cf.summary || *cf.ndjson {
					day.Steps = nil
					for i := range day.Regions {
						day.Regions[i].Steps = nil
					}
				}
				rep.Runs = append(rep.Runs, day)
				fmt.Fprintf(os.Stderr, "%s/%s [%s]: %.1f violation min, %.2f%% drops, %.1f MJ\n",
					pol, router, day.Scenario, day.SLAViolationMin, day.DropFrac*100, day.EnergyKJ/1e3)
			}
		}
	}
	rep.ElapsedS = time.Since(start).Seconds()

	// Terminate the trace documents and drain every buffered stream
	// before the report goes to (possibly the same) stdout.
	for _, s := range traceSinks {
		if err := s.Close(); err != nil {
			fatal(err)
		}
	}
	if metricsReg != nil {
		if err := writeMetrics(*cf.metricsOut, metricsReg); err != nil {
			fatal(err)
		}
	}
	flushAll()

	enc := json.NewEncoder(os.Stdout)
	if *cf.pretty {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// writeMetrics dumps the registry snapshot accumulated across the
// sweep as indented JSON.
func writeMetrics(path string, reg *telemetry.Registry) error {
	w, err := openOut(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reg.Snapshot()); err != nil {
		return err
	}
	if c, ok := w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

func splitModels(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if !strings.HasPrefix(name, "DLRM-") && strings.HasPrefix(name, "RMC") {
			name = "DLRM-" + name
		}
		out = append(out, name)
	}
	return out
}

// parseRouters validates each router name against the policy registry;
// an unknown name fails with the registered names listed.
func parseRouters(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		name, err := fleet.ParseRouter(part)
		if err != nil {
			return nil, err
		}
		out = append(out, name)
	}
	return out, nil
}

func parsePolicies(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		pol, err := cluster.ParsePolicy(part)
		if err != nil {
			return nil, err
		}
		out = append(out, pol.String())
	}
	return out, nil
}

func loadOrCalibrateTable(path string, spec fleet.Spec, seed int64) (*profiler.Table, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var entries []profiler.Entry
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, err
		}
		return profiler.FromEntries(profiler.Hercules, entries), nil
	}
	// Calibrate over the union of server types across every fleet the
	// spec names — the top-level one plus each region's — so a
	// multi-region run resolves every (model, type) pair it can route
	// to from one shared table.
	names := []string{spec.Fleet}
	for _, r := range spec.Regions {
		if r.Fleet != "" {
			names = append(names, r.Fleet)
		}
	}
	seen := make(map[string]bool)
	var types []hw.Server
	for _, fn := range names {
		fl, err := hw.NamedFleet(fn)
		if err != nil {
			return nil, err
		}
		for _, st := range fl.Types {
			if !seen[st.Type] {
				seen[st.Type] = true
				types = append(types, st)
			}
		}
	}
	fmt.Fprintln(os.Stderr, "no -table given; calibrating serving configurations (seconds)...")
	var models []*model.Model
	for _, name := range spec.Models {
		m, err := model.ByName(name, model.Prod)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return fleet.CalibrateTable(models, types, seed)
}

func fatal(err error) {
	flushAll()
	fmt.Fprintln(os.Stderr, "hercules-fleet:", err)
	os.Exit(1)
}
