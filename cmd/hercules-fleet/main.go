// Command hercules-fleet replays full days of request-level traffic
// against a provisioned heterogeneous fleet (internal/fleet) and emits
// a JSON report: for every router × provisioning-policy combination,
// per-interval p50/p95/p99 latency, SLA-violation minutes, queue
// drops, energy, and autoscaler activity.
//
// Usage:
//
//	hercules-fleet [-table table.json] [-models RMC1,RMC2]
//	               [-fleet small|cpu|default|accelerated]
//	               [-routers rr,least,p2c,hetero] [-policies greedy,hercules]
//	               [-scenario name|@file.json|'[...]'] [-list-scenarios]
//	               [-days 1] [-step-min 60] [-peak 0] [-headroom 0.15]
//	               [-queue 32] [-slice 8] [-window 1] [-max-queries 150000]
//	               [-batch 1] [-batch-wait 2] [-shards 0] [-sequential]
//	               [-no-autoscale] [-seed 42] [-summary] [-pretty]
//
// The -table JSON comes from hercules-profile (full Fig. 9b search).
// Without -table, each (model, server type) pair is quick-calibrated on
// the fly over a small serving-configuration ladder — seconds, not
// minutes — which is the recommended way to start.
//
// -scenario injects a non-stationary scenario (internal/scenario): a
// built-in name (flashcrowd, regionshift, failure, degrade, shed), a
// JSON spec file (@events.json), or an inline JSON event array. Every
// disruption run is paired with a baseline replay of the same router ×
// policy so the report shows the divergence directly.
//
// -batch enables dynamic per-instance batching: each server coalesces
// up to that many queued queries into one dispatch (waiting at most
// -batch-wait milliseconds for companions), priced by the simulator's
// measured batch-efficiency curves; the engine derives each (server
// type, model) pair's effective cap from its curve and SLA budget, so
// pairs where batching loses keep serving unbatched. -batch 1 (the
// default) replays exactly the unbatched engine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hercules/internal/cluster"
	"hercules/internal/experiments"
	"hercules/internal/fleet"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/scenario"
	"hercules/internal/workload"
)

type report struct {
	Models   []string           `json:"models"`
	Fleet    string             `json:"fleet"`
	Days     int                `json:"days"`
	StepMin  float64            `json:"step_min"`
	PeakQPS  map[string]float64 `json:"peak_qps"`
	Scenario string             `json:"scenario,omitempty"`
	Seed     int64              `json:"seed"`
	ElapsedS float64            `json:"elapsed_s"`
	Runs     []fleet.DayResult  `json:"runs"`
}

func main() {
	var (
		tableFlag    = flag.String("table", "", "efficiency-table JSON from hercules-profile (default: quick calibration)")
		modelsFlag   = flag.String("models", "DLRM-RMC1,DLRM-RMC2", "workload models")
		fleetFlag    = flag.String("fleet", "small", "fleet: small (T2/T3/T7), cpu, default or accelerated")
		routersFlag  = flag.String("routers", "rr,least,p2c,hetero", "routing policies to replay")
		policiesFlag = flag.String("policies", "greedy,hercules", "provisioning policies to replay")
		daysFlag     = flag.Int("days", 1, "days of diurnal load")
		stepMinFlag  = flag.Float64("step-min", 60, "trace interval in minutes (>= 24 intervals per day at 60)")
		peakFlag     = flag.Float64("peak", 0, "per-workload peak QPS (0 = auto-size to fleet)")
		headroomFlag = flag.Float64("headroom", 0.15, "provisioning over-provision rate R")
		queueFlag    = flag.Int("queue", 32, "per-server bounded queue slots")
		sliceFlag    = flag.Float64("slice", 8, "sampled traffic slice per interval (seconds)")
		windowFlag   = flag.Float64("window", 1, "tail observation window (seconds)")
		maxQFlag     = flag.Int("max-queries", 150000, "replayed-query budget per interval")
		batchFlag    = flag.Int("batch", 1, "dynamic batching: max queries coalesced per dispatch (1 = off)")
		batchWaitMS  = flag.Float64("batch-wait", 2, "max batch-formation wait in milliseconds")
		shardsFlag   = flag.Int("shards", 0, "per-model shard fan-out (0 = NumCPU)")
		seqFlag      = flag.Bool("sequential", false, "disable the parallel worker pool")
		noScaleFlag  = flag.Bool("no-autoscale", false, "disable the online autoscaler")
		seedFlag     = flag.Int64("seed", 42, "deterministic seed")
		summaryFlag  = flag.Bool("summary", false, "omit per-interval series from the JSON")
		prettyFlag   = flag.Bool("pretty", false, "indent the JSON output")
		scenFlag     = flag.String("scenario", "baseline",
			"non-stationary scenario: a built-in name, @spec.json, or an inline JSON event array")
		listScenFlag = flag.Bool("list-scenarios", false, "list the built-in scenarios and exit")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "Usage: hercules-fleet [flags]")
		fmt.Fprintln(os.Stderr, "Replays diurnal days of request-level traffic for every router x policy combination.")
		fmt.Fprintln(os.Stderr, "Without -table, serving configurations are quick-calibrated on the fly (seconds);")
		fmt.Fprintln(os.Stderr, "pass a hercules-profile table for the full Fig. 9b search results.")
		fmt.Fprintln(os.Stderr, "\nFlags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listScenFlag {
		for _, name := range scenario.Names() {
			sc, _ := scenario.Named(name)
			fmt.Print(sc.Summary())
		}
		return
	}
	scen, err := parseScenario(*scenFlag)
	if err != nil {
		fatal(err)
	}

	fl, err := parseFleet(*fleetFlag)
	if err != nil {
		fatal(err)
	}
	names := splitModels(*modelsFlag)
	routers, err := parseRouters(*routersFlag)
	if err != nil {
		fatal(err)
	}
	policies, err := parsePolicies(*policiesFlag)
	if err != nil {
		fatal(err)
	}

	table, err := loadOrCalibrateTable(*tableFlag, names, fl, *seedFlag)
	if err != nil {
		fatal(err)
	}

	// Build the diurnal day per workload.
	peaks := make(map[string]float64, len(names))
	var ws []cluster.Workload
	for i, name := range names {
		peak := *peakFlag
		if peak <= 0 {
			peak = autoPeak(table, fl, name, len(names))
		}
		peaks[name] = peak
		cfg := workload.DiurnalConfig{
			Service:    name,
			PeakQPS:    peak,
			ValleyFrac: 0.4,
			PeakHour:   20,
			Days:       *daysFlag,
			StepMin:    *stepMinFlag,
			NoiseStd:   0.02,
			Seed:       *seedFlag + int64(i),
		}
		ws = append(ws, cluster.Workload{Model: name, Trace: workload.Synthesize(cfg)})
	}

	opts := fleet.DefaultOptions()
	opts.QueueCap = *queueFlag
	opts.SliceS = *sliceFlag
	opts.WindowS = *windowFlag
	opts.MaxQueriesPerInterval = *maxQFlag
	opts.MaxBatch = *batchFlag
	opts.BatchWaitS = *batchWaitMS / 1e3
	opts.Shards = *shardsFlag
	opts.Sequential = *seqFlag
	opts.Seed = *seedFlag

	rep := report{
		Models:   names,
		Fleet:    *fleetFlag,
		Days:     *daysFlag,
		StepMin:  *stepMinFlag,
		PeakQPS:  peaks,
		Scenario: scen.Name,
		Seed:     *seedFlag,
	}
	// A disruption run is always paired with a baseline replay of the
	// same router × policy so the report carries the divergence.
	runScens := []scenario.Scenario{scen}
	if scen.Active() {
		fmt.Fprint(os.Stderr, scen.Summary())
		base, _ := scenario.Named("baseline")
		runScens = []scenario.Scenario{base, scen}
	}
	start := time.Now()
	for _, pol := range policies {
		for _, router := range routers {
			for _, sc := range runScens {
				eng := fleet.NewEngine(fl, table, pol, router, opts)
				eng.Provisioner.OverProvisionR = *headroomFlag
				if *noScaleFlag {
					eng.Scaler = nil
				}
				if err := eng.ApplyScenario(sc, ws); err != nil {
					fatal(err)
				}
				day, err := eng.RunDay(ws)
				if err != nil {
					fatal(err)
				}
				if *summaryFlag {
					day.Steps = nil
				}
				rep.Runs = append(rep.Runs, day)
				fmt.Fprintf(os.Stderr, "%s/%s [%s]: %.1f violation min, %.2f%% drops, %.1f MJ\n",
					pol, router, day.Scenario, day.SLAViolationMin, day.DropFrac*100, day.EnergyKJ/1e3)
			}
		}
	}
	rep.ElapsedS = time.Since(start).Seconds()

	enc := json.NewEncoder(os.Stdout)
	if *prettyFlag {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// parseScenario resolves the -scenario argument: a built-in name, a
// JSON spec file (@path), or an inline JSON event array / spec object.
func parseScenario(s string) (scenario.Scenario, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "@"):
		data, err := os.ReadFile(strings.TrimPrefix(s, "@"))
		if err != nil {
			return scenario.Scenario{}, err
		}
		return scenario.FromJSON(data)
	case strings.HasPrefix(s, "[") || strings.HasPrefix(s, "{"):
		return scenario.FromJSON([]byte(s))
	default:
		return scenario.Named(s)
	}
}

func parseFleet(s string) (hw.Fleet, error) {
	switch strings.ToLower(s) {
	case "small":
		// The Fig. 13-online replay fleet — shared with the experiments
		// driver so CLI runs stay comparable to the benchmark record.
		return experiments.FleetFleet(), nil
	case "default":
		return hw.DefaultFleet(), nil
	case "cpu":
		return hw.CPUOnlyFleet(), nil
	case "accelerated":
		return hw.AcceleratedFleet(), nil
	}
	return hw.Fleet{}, fmt.Errorf("unknown fleet %q", s)
}

func splitModels(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if !strings.HasPrefix(name, "DLRM-") && strings.HasPrefix(name, "RMC") {
			name = "DLRM-" + name
		}
		out = append(out, name)
	}
	return out
}

func parseRouters(s string) ([]fleet.RouterKind, error) {
	var out []fleet.RouterKind
	for _, part := range strings.Split(s, ",") {
		k, err := fleet.ParseRouter(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func parsePolicies(s string) ([]cluster.Policy, error) {
	var out []cluster.Policy
	for _, part := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "nh":
			out = append(out, cluster.NH)
		case "greedy":
			out = append(out, cluster.Greedy)
		case "priority":
			out = append(out, cluster.Priority)
		case "hercules":
			out = append(out, cluster.Hercules)
		default:
			return nil, fmt.Errorf("unknown policy %q", part)
		}
	}
	return out, nil
}

func loadOrCalibrateTable(path string, names []string, fl hw.Fleet, seed int64) (*profiler.Table, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var entries []profiler.Entry
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, err
		}
		return profiler.FromEntries(profiler.Hercules, entries), nil
	}
	fmt.Fprintln(os.Stderr, "no -table given; calibrating serving configurations (seconds)...")
	var models []*model.Model
	for _, name := range names {
		m, err := model.ByName(name, model.Prod)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return fleet.CalibrateTable(models, fl.Types, seed)
}

// autoPeak sizes one workload's diurnal peak to ~45% of the fleet's
// best-case capacity for it, split across the workloads — high enough
// that stale allocations hurt at the peak, low enough that the fleet
// is never simply exhausted.
func autoPeak(table *profiler.Table, fl hw.Fleet, name string, nModels int) float64 {
	var total float64
	for i, srv := range fl.Types {
		if e, ok := table.Get(srv.Type, name); ok && e.QPS > 0 {
			total += e.QPS * float64(fl.Counts[i])
		}
	}
	return total * 0.45 / float64(nModels)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hercules-fleet:", err)
	os.Exit(1)
}
