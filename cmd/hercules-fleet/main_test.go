package main

import (
	"encoding/json"
	"flag"
	"os"
	"reflect"
	"strings"
	"testing"

	"hercules/internal/fleet"
)

// TestFlagDefaultsMatchDefaultSpec is the drift guard for the CLI: a
// bare `hercules-fleet` run (no flags, no -spec) must build exactly
// fleet.DefaultSpec() — flag defaults are derived from it, never
// hand-copied, so a default changed in the library cannot silently
// diverge from the command line.
func TestFlagDefaultsMatchDefaultSpec(t *testing.T) {
	fs := flag.NewFlagSet("hercules-fleet", flag.ContinueOnError)
	cf := registerFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	spec, err := buildSpec(cf, fs)
	if err != nil {
		t.Fatal(err)
	}
	if want := fleet.DefaultSpec(); !reflect.DeepEqual(spec, want) {
		t.Errorf("bare CLI spec = %+v\nwant DefaultSpec  %+v", spec, want)
	}
	if got, want := spec.Options, fleet.DefaultOptions(); got != want {
		t.Errorf("bare CLI options = %+v, want DefaultOptions %+v", got, want)
	}
}

// TestSpecFileFlagsOverride: -spec loads the file, explicitly set
// flags win over it, unset flags defer to it.
func TestSpecFileFlagsOverride(t *testing.T) {
	spec := fleet.DefaultSpec()
	spec.Router = fleet.WeightedHetero
	spec.Options.MaxBatch = 8
	spec.Options.QueueCap = 7
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/run.json"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("hercules-fleet", flag.ContinueOnError)
	cf := registerFlags(fs)
	if err := fs.Parse([]string{"-spec", path, "-batch", "16"}); err != nil {
		t.Fatal(err)
	}
	got, err := buildSpec(cf, fs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Options.MaxBatch != 16 {
		t.Errorf("explicit -batch must override the spec file, got %d", got.Options.MaxBatch)
	}
	if got.Options.QueueCap != 7 || got.Router != fleet.WeightedHetero {
		t.Errorf("unset flags must defer to the spec file, got %+v", got)
	}
}

// TestRouterErrorListsRegistered: a bad -routers value must name every
// registered router, sourced from the registry.
func TestRouterErrorListsRegistered(t *testing.T) {
	_, err := parseRouters("rr,warp-drive")
	if err == nil {
		t.Fatal("unknown router accepted")
	}
	for _, name := range fleet.RouterNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q must list registered router %q", err, name)
		}
	}
}
