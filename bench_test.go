// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (plus the DESIGN.md ablations). Each benchmark runs the
// experiment end-to-end on the simulated substrate, prints the same rows
// or series the paper reports, and exposes the headline quantities as
// benchmark metrics.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// For machine-readable reports and regression gating against the
// committed BENCH_fleet.json baseline, run the suite through the
// harness instead: `go run ./cmd/hercules-bench` (see
// internal/perfbench and the Performance section of EXPERIMENTS.md).
//
// Individual figures: go test -bench=BenchmarkFig14 etc. The expensive
// shared artifact (the Fig. 9b efficiency table over 6 models × 10
// server types) is built once per process and reused by the Fig. 8 /
// 15 / 16 / 17 and headline benchmarks.
package hercules_test

import (
	"fmt"
	"testing"

	"hercules/internal/experiments"
	"hercules/internal/fleet"
)

// printOnce renders the experiment output on the first iteration only.
func printOnce(b *testing.B, i int, r experiments.Renderer) {
	b.Helper()
	if i == 0 {
		fmt.Println(r.Render())
	}
}

func BenchmarkTableI_ModelZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableI()
		printOnce(b, i, r)
		b.ReportMetric(float64(len(r.Rows)), "models")
	}
}

func BenchmarkTableII_ServerTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableII()
		printOnce(b, i, r)
		b.ReportMetric(float64(len(r.Rows)), "server_types")
	}
}

func BenchmarkFig1_ModelFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1ModelFootprint()
		printOnce(b, i, r)
		var memDom int
		for _, row := range r.Rows {
			if row.Region == "memory-dominated" {
				memDom++
			}
		}
		b.ReportMetric(float64(memDom), "memory_dominated_models")
	}
}

func BenchmarkFig2b_QuerySizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2bQuerySizes(experiments.Seed)
		printOnce(b, i, r)
		b.ReportMetric(r.P99, "p99_items")
		b.ReportMetric(r.TailHeavyRatio, "p99_over_p50")
	}
}

func BenchmarkFig2c_PoolingFactors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2cPoolingFactors(experiments.Seed)
		printOnce(b, i, r)
		b.ReportMetric(float64(len(r.Rows)), "tables")
	}
}

func BenchmarkFig2d_DiurnalLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2dDiurnalLoad(experiments.Seed)
		printOnce(b, i, r)
		b.ReportMetric(r.Fluctuation*100, "fluctuation_pct")
	}
}

func BenchmarkFig4_HostParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4HostParallelism(experiments.Seed)
		printOnce(b, i, r)
		// Report the tight-SLA advantage of 10×2 over 20×1 (paper: ≤1.35×).
		var q20, q10 float64
		for _, row := range r.Rows {
			if row.SLAMS <= 15 {
				if row.Config == "10x2" {
					q10 += row.QPS
				} else {
					q20 += row.QPS
				}
			}
		}
		if q20 > 0 {
			b.ReportMetric(q10/q20, "tight_sla_gain_x")
		}
	}
}

func BenchmarkFig5_OpWorkerIdle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5OpWorkerIdle()
		printOnce(b, i, r)
		var maxIdle float64
		for _, row := range r.Rows {
			if row.IdleFrac > maxIdle {
				maxIdle = row.IdleFrac
			}
		}
		b.ReportMetric(maxIdle*100, "max_idle_pct")
	}
}

func BenchmarkFig6_AcceleratorPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6AcceleratorPolicies(experiments.Seed)
		printOnce(b, i, r)
		// Fusion gain over Baymax (paper: up to 2.95×/7.87×/6.0×).
		best := map[string]map[string]float64{}
		for _, row := range r.Rows {
			if best[row.Model] == nil {
				best[row.Model] = map[string]float64{}
			}
			if row.QPS > best[row.Model][row.Policy] {
				best[row.Model][row.Policy] = row.QPS
			}
		}
		var maxGain float64
		for _, m := range best {
			if m["Baymax"] > 0 && m["CoLoc+Fusion"]/m["Baymax"] > maxGain {
				maxGain = m["CoLoc+Fusion"] / m["Baymax"]
			}
		}
		b.ReportMetric(maxGain, "max_fusion_gain_x")
	}
}

func BenchmarkFig7_FusionBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7FusionBreakdown(experiments.Seed)
		printOnce(b, i, r)
		// RMC3's data-loading share at the largest fusion point.
		for _, row := range r.Rows {
			if row.Model == "DLRM-RMC3" && row.FusionLimit == 6000 {
				b.ReportMetric(row.LoadFrac*100, "rmc3_load_pct")
			}
		}
	}
}

func BenchmarkFig8_ClusterCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8ClusterCharacterization(experiments.Seed)
		printOnce(b, i, r)
		b.ReportMetric(r.GreedyVsNHPeak*100, "greedy_vs_nh_peak_pct")
		b.ReportMetric(r.PriorityVsGreedyPeak*100, "priority_vs_greedy_peak_pct")
	}
}

func BenchmarkFig11_ParallelismSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11ParallelismSpace(experiments.Seed)
		printOnce(b, i, r)
		b.ReportMetric(float64(r.PathEval), "gradient_evals")
		b.ReportMetric(float64(r.GridEval), "grid_points")
	}
}

func BenchmarkFig12_SDPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12SDPipeline(experiments.Seed)
		printOnce(b, i, r)
		var peak float64
		for _, row := range r.CPURows {
			if row.QPS > peak {
				peak = row.QPS
			}
		}
		b.ReportMetric(peak, "cpu_sd_peak_qps")
	}
}

func BenchmarkFig14_TaskSchedulerSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14TaskSchedulerSpeedup(experiments.Seed, nil)
		printOnce(b, i, r)
		_, max := r.MaxSpeedup()
		b.ReportMetric(max, "max_speedup_x")
		b.ReportMetric(r.MinSpeedup(), "min_speedup_x")
	}
}

func BenchmarkFig15_ServerArchExploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15ServerArchExploration()
		printOnce(b, i, r)
		b.ReportMetric(float64(len(r.Rows)), "pairs")
	}
}

func BenchmarkFig16_ModelEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16ModelEvolution(experiments.Seed)
		printOnce(b, i, r)
		b.ReportMetric(r.CapacityGrowth, "d2_over_d1_capacity_x")
		b.ReportMetric(r.PowerGrowth, "d2_over_d1_power_x")
	}
}

func BenchmarkFig17_ClusterSchedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig17ClusterSchedulers(experiments.Seed)
		printOnce(b, i, r)
		b.ReportMetric(r.CapSavePeak*100, "capacity_saving_peak_pct")
		b.ReportMetric(r.PowerSavePeak*100, "power_saving_peak_pct")
	}
}

func BenchmarkHeadline_HerculesVsGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig17ClusterSchedulers(experiments.Seed)
		printOnce(b, i, r)
		b.ReportMetric(r.CapSavePeak*100, "capacity_peak_pct_paper_47.7")
		b.ReportMetric(r.CapSaveAvg*100, "capacity_avg_pct_paper_22.8")
		b.ReportMetric(r.PowerSavePeak*100, "power_peak_pct_paper_23.7")
		b.ReportMetric(r.PowerSaveAvg*100, "power_avg_pct_paper_9.1")
	}
}

// BenchmarkFleetDay locks in the fleet engine's performance target: a
// single-router replay of a full diurnal day (24 hourly intervals,
// ~1M routed queries) at cluster scale must complete in a few hundred
// milliseconds. The one-time serving-table calibration runs outside
// the timer; the first iteration additionally fills the shared
// service-time grids, which is why hercules-bench gates on
// per-repetition minima. CI compares this benchmark's report against
// BENCH_fleet.json via `hercules-bench -compare` on every push.
func BenchmarkFleetDay(b *testing.B) {
	if _, err := experiments.FleetTable(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day, err := experiments.FleetDay(fleet.PowerOfTwo, "hercules", experiments.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("fleet day: %d queries, %.1f violation min, %.2f%% drops, %.1f MJ\n",
				day.TotalQueries, day.SLAViolationMin, day.DropFrac*100, day.EnergyKJ/1e3)
		}
		b.ReportMetric(float64(day.TotalQueries), "queries")
		b.ReportMetric(day.SLAViolationMin, "sla_violation_min")
		b.ReportMetric(day.DropFrac*100, "drop_pct")
	}
}

// BenchmarkFleetDayTraced is BenchmarkFleetDay with the per-query
// tracer sampling 1 in 1024 queries into a counting sink: the CI gate
// holds the sampled tracer's cost close to the untraced baseline — the
// low-overhead claim the telemetry layer makes. Every query pays the
// sampling test; only sampled ones pay event staging.
func BenchmarkFleetDayTraced(b *testing.B) {
	if _, err := experiments.FleetTable(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day, events, err := experiments.FleetDayTraced(fleet.PowerOfTwo, "hercules", 1024, experiments.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("traced fleet day: %d queries, %d trace events, %.1f violation min\n",
				day.TotalQueries, events, day.SLAViolationMin)
		}
		b.ReportMetric(float64(day.TotalQueries), "queries")
		b.ReportMetric(float64(events), "trace_events")
		b.ReportMetric(day.DropFrac*100, "drop_pct")
	}
}

// BenchmarkFleetDayBatched is BenchmarkFleetDay with dynamic batching
// enabled (MaxBatch 16, 2 ms formation wait): the engine derives
// per-pair batch caps from the measured efficiency curves, so this
// exercises batch formation, window-expiry flushes and full-batch
// dispatches on the hot path. CI gates it against BENCH_fleet.json
// alongside the unbatched baseline — the batcher must stay inside the
// same allocation envelope.
func BenchmarkFleetDayBatched(b *testing.B) {
	if _, err := experiments.FleetTable(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day, err := experiments.FleetDayBatched(fleet.PowerOfTwo, "hercules", 16, experiments.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("batched fleet day: %d queries, %.1f violation min, %.2f%% drops\n",
				day.TotalQueries, day.SLAViolationMin, day.DropFrac*100)
		}
		b.ReportMetric(float64(day.TotalQueries), "queries")
		b.ReportMetric(day.SLAViolationMin, "sla_violation_min")
		b.ReportMetric(day.DropFrac*100, "drop_pct")
	}
}

// BenchmarkFleetDayCarbon is BenchmarkFleetDay with the duck-curve
// grid timeline attached and the carbon scaler + admission pair
// selected: every interval prices its measured joules into gCO2 at the
// hour's intensity, feeds the scaler its grid forecast and evaluates
// the deferral ramp at admission. CI gates it against BENCH_fleet.json
// alongside the other fleet benchmarks — carbon accounting must stay a
// negligible overlay on the replay cost.
func BenchmarkFleetDayCarbon(b *testing.B) {
	if _, err := experiments.FleetTable(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day, err := experiments.CarbonDay(experiments.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("carbon fleet day: %d queries, %.2f kg CO2, %.3f g/query, %.1f violation min\n",
				day.TotalQueries, day.TotalCarbonG/1e3, day.CarbonPerQueryG, day.SLAViolationMin)
		}
		b.ReportMetric(float64(day.TotalQueries), "queries")
		b.ReportMetric(day.TotalCarbonG/1e3, "co2_kg")
		b.ReportMetric(day.SLAViolationMin, "sla_violation_min")
	}
}

// BenchmarkFleetRegions replays the two-region blackout day under the
// spill geo policy: two engines stepped in lockstep, the geo router
// moving overflow at every interval boundary, east dark for three
// mid-day hours while west absorbs the evacuated traffic at +60 ms
// RTT. CI gates it against BENCH_fleet.json alongside the
// single-region fleet benchmarks — the lockstep orchestration and
// per-interval routing must stay a thin layer over the per-region
// replay cost they compose.
func BenchmarkFleetRegions(b *testing.B) {
	table, err := experiments.FleetTable()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		me, err := fleet.NewMultiEngine(
			experiments.RegionsSpec(fleet.GeoSpill, experiments.Seed), fleet.WithTable(table))
		if err != nil {
			b.Fatal(err)
		}
		day, err := me.RunDay(me.Workloads())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("regions fleet day: %d queries, %.2f%% drops, %d served remotely, %.1f violation min\n",
				day.TotalQueries, day.DropFrac*100, day.SpillInServed, day.SLAViolationMin)
		}
		b.ReportMetric(float64(day.TotalQueries), "queries")
		b.ReportMetric(float64(day.SpillInServed), "spill_served")
		b.ReportMetric(day.DropFrac*100, "drop_pct")
	}
}

func BenchmarkFig13Online_FleetReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13Online(experiments.Seed)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r)
		best := r.Best()
		b.ReportMetric(best.SLAViolationMin, "best_sla_violation_min")
		b.ReportMetric(float64(len(r.Rows)), "router_policy_combos")
	}
}

// BenchmarkFigScenarios_NonStationary sweeps the named non-stationary
// scenarios (flash crowd, regional shift, server failure) against the
// baseline diurnal replay for every scenario router, with and without
// the online autoscaler.
func BenchmarkFigScenarios_NonStationary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.FigScenarios(experiments.Seed)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, r)
		var worst float64
		for _, row := range r.Rows {
			if base, ok := r.Baseline(row); ok {
				worst = max(worst, row.Day.SLAViolationMin-base.Day.SLAViolationMin)
			}
		}
		b.ReportMetric(worst, "worst_added_violation_min")
		b.ReportMetric(float64(len(r.Rows)), "scenario_router_combos")
	}
}

func BenchmarkAblation_NoContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationNoContention(experiments.Seed)
		printOnce(b, i, r)
		b.ReportMetric(r.With10x2/r.With20x1, "gain_with_contention_x")
		b.ReportMetric(r.Without10x2/r.Without20x1, "gain_without_contention_x")
	}
}

func BenchmarkAblation_SearchVsExhaustive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationSearchVsExhaustive(experiments.Seed)
		printOnce(b, i, r)
		b.ReportMetric(r.GradientQPS/r.ExhaustiveQPS*100, "optimality_pct")
		b.ReportMetric(float64(r.ExhaustiveEvals)/float64(r.GradientEvals), "eval_savings_x")
	}
}

func BenchmarkAblation_NoHotPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationNoHotPartition(experiments.Seed)
		printOnce(b, i, r)
		b.ReportMetric(r.HotMass*100, "hot_mass_pct")
	}
}

func BenchmarkAblation_LPRounding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationLPRounding(experiments.Seed)
		printOnce(b, i, r)
		if r.RepairPowerKW > 0 {
			b.ReportMetric((r.CeilPowerKW/r.RepairPowerKW-1)*100, "ceiling_overhead_pct")
		}
	}
}
