package sched

import (
	"fmt"

	"hercules/internal/sim"
)

// Objective is the constraint set of one search: the SLA tail-latency
// target and an optional provisioned-power budget (0 = unconstrained).
type Objective struct {
	SLAMS        float64
	PowerBudgetW float64
	Seed         int64
}

// Eval is one scored configuration.
type Eval struct {
	Cfg sim.Config
	Cap sim.Capacity
}

// QPS returns the evaluation's latency-bounded throughput.
func (e Eval) QPS() float64 { return e.Cap.QPS }

// Searcher scores configurations against one server/model pair.
type Searcher struct {
	S   *sim.Server
	Obj Objective

	memo  map[string]sim.Capacity
	Evals int // number of non-memoized capacity measurements
	// Trace records visited configurations in evaluation order
	// (Fig. 11's search-path overlay). Nil unless CollectTrace is set.
	Trace        []Eval
	CollectTrace bool
	lastQPS      float64 // warm-start hint
}

// NewSearcher builds a searcher for the server/model pair held by s.
func NewSearcher(s *sim.Server, obj Objective) *Searcher {
	return &Searcher{S: s, Obj: obj, memo: make(map[string]sim.Capacity)}
}

func cfgKey(c sim.Config) string {
	return fmt.Sprintf("%d/%d/%d/%d/%d/%d/%d/%d/%v", int(c.Place), c.Threads,
		c.OpWorkers, c.SparseThreads, c.SparseWorkers, c.Batch, c.AccelThreads,
		c.FusionLimit, c.UseNMP)
}

// Score returns the latency- and power-bounded capacity of a
// configuration. Invalid configurations and those whose provisioned
// power exceeds the budget score zero.
func (sr *Searcher) Score(cfg sim.Config) Eval {
	key := cfgKey(cfg)
	if cap0, ok := sr.memo[key]; ok {
		return Eval{cfg, cap0}
	}
	if err := cfg.Validate(sr.S.HW); err != nil {
		sr.memo[key] = sim.Capacity{}
		return Eval{cfg, sim.Capacity{}}
	}
	cap0, err := sr.S.FindCapacityHint(cfg, sr.Obj.SLAMS, sr.Obj.Seed, sr.lastQPS)
	if err != nil {
		cap0 = sim.Capacity{}
	}
	sr.Evals++
	if sr.Obj.PowerBudgetW > 0 && cap0.At.ProvisionedW > sr.Obj.PowerBudgetW {
		cap0 = sim.Capacity{} // power constraint violated (Algorithm 1)
	}
	sr.memo[key] = cap0
	if cap0.QPS > 0 {
		sr.lastQPS = cap0.QPS
	}
	if sr.CollectTrace {
		sr.Trace = append(sr.Trace, Eval{cfg, cap0})
	}
	return Eval{cfg, cap0}
}

// BatchLadder is the discrete data-parallelism dimension on CPUs.
var BatchLadder = []int{16, 32, 64, 128, 256, 512, 1024}

// FusionLadder is the discrete query-fusion dimension on accelerators
// (0 = no fusion; values are max fused items, Fig. 7's x-axis).
var FusionLadder = []int{0, 256, 512, 1000, 2000, 4000, 6000, 8000}

// gradientWalk performs the inner Psp(M+D) exploration of Algorithm 1:
// starting from minimal co-location and minimal batch, evaluate the
// three forward candidates — (m+1, d), (m, d+1), (m+1, d+1) — and move
// to the best improving one; terminate when no candidate improves (the
// space is convex, §IV-B) or when all candidates are infeasible.
//
// mk builds the configuration for (threadIdx, batchIdx); mMax and dMax
// bound the dimensions.
func (sr *Searcher) gradientWalk(mk func(m, d int) sim.Config, mMax, dMax int) Eval {
	m, d := 1, 0
	best := sr.Score(mk(m, d))
	for {
		type cand struct{ m, d int }
		cands := []cand{{m + 1, d}, {m, d + 1}, {m + 1, d + 1}}
		improved := false
		bestCand := best
		bm, bd := m, d
		for _, c := range cands {
			if c.m > mMax || c.d > dMax {
				continue
			}
			e := sr.Score(mk(c.m, c.d))
			if e.QPS() > bestCand.QPS() {
				bestCand, bm, bd = e, c.m, c.d
				improved = true
			}
		}
		if !improved {
			return best
		}
		best, m, d = bestCand, bm, bd
	}
}

// SearchCPUModel runs Algorithm 1 for model-based scheduling on the CPU:
// the outer loop sweeps op-parallelism Psp(O); the inner gradient walk
// explores Psp(M+D). The outer loop terminates when the per-o peak
// decreases (convexity across Psp(O)).
func (sr *Searcher) SearchCPUModel(useNMP bool) Eval {
	cores := sr.S.HW.CPU.PhysicalCores
	var best Eval
	prevPeak := -1.0
	for o := 1; o <= cores; o++ {
		mk := func(m, d int) sim.Config {
			return sim.Config{
				Place:     sim.PlaceCPUModel,
				Threads:   m,
				OpWorkers: o,
				Batch:     BatchLadder[d],
				UseNMP:    useNMP,
			}
		}
		peak := sr.gradientWalk(mk, cores/o, len(BatchLadder)-1)
		if peak.QPS() > best.QPS() {
			best = peak
		}
		if prevPeak >= 0 && peak.QPS() < prevPeak {
			break // Psp(O) peak is past its maximum
		}
		prevPeak = peak.QPS()
	}
	return best
}

// SearchCPUSD explores the sparse–dense pipeline space of Fig. 12(a):
// the outer loop sweeps sparse op-parallelism; the inner walk balances
// the SparseNet thread count against batch size, with DenseNet threads
// taking the remaining cores (single worker each, per Fig. 10b).
func (sr *Searcher) SearchCPUSD(useNMP bool) Eval {
	cores := sr.S.HW.CPU.PhysicalCores
	var best Eval
	prevPeak := -1.0
	for so := 1; so <= 4 && so < cores; so++ {
		mk := func(m, d int) sim.Config {
			denseThreads := cores - m*so
			if denseThreads < 1 {
				denseThreads = 0 // invalid; Score rejects it
			}
			return sim.Config{
				Place:         sim.PlaceCPUSD,
				SparseThreads: m,
				SparseWorkers: so,
				Threads:       denseThreads,
				OpWorkers:     1,
				Batch:         BatchLadder[d],
				UseNMP:        useNMP,
			}
		}
		peak := sr.gradientWalk(mk, (cores-1)/so, len(BatchLadder)-1)
		if peak.QPS() > best.QPS() {
			best = peak
		}
		if prevPeak >= 0 && peak.QPS() < prevPeak {
			break
		}
		prevPeak = peak.QPS()
	}
	return best
}

// hostStageLadder enumerates host SparseNet stage sizes for accelerator
// placements (threads × 1 worker), bounded by the core count.
func hostStageLadder(cores int) []int {
	ladder := []int{1, 2, 4, 8, 12, 16, 20}
	out := make([]int, 0, len(ladder))
	for _, v := range ladder {
		if v <= cores {
			out = append(out, v)
		}
	}
	return out
}

// SearchAccel explores the accelerator placements (Fig. 10c/d): model
// co-location × query fusion on the GPU (the Psp(M+D) walk), with an
// outer sweep over the host SparseNet stage size, mirroring Fig. 12(b)'s
// host-bounded search. Placement must be PlaceAccelModel or PlaceAccelSD.
func (sr *Searcher) SearchAccel(place sim.Placement, useNMP bool) Eval {
	if !place.OnAccel() || sr.S.HW.GPU == nil {
		return Eval{}
	}
	cores := sr.S.HW.CPU.PhysicalCores
	var best Eval
	prevPeak := -1.0
	for _, st := range hostStageLadder(cores) {
		mk := func(m, d int) sim.Config {
			return sim.Config{
				Place:         place,
				SparseThreads: st,
				SparseWorkers: 1,
				Batch:         1024,
				AccelThreads:  m,
				FusionLimit:   FusionLadder[d],
				UseNMP:        useNMP,
			}
		}
		peak := sr.gradientWalk(mk, 8, len(FusionLadder)-1)
		if peak.QPS() > best.QPS() {
			best = peak
		}
		if prevPeak >= 0 && peak.QPS() < prevPeak {
			break
		}
		prevPeak = peak.QPS()
	}
	return best
}

// SearchHercules runs the full Hercules task-scheduling exploration for
// the server: every applicable placement (model-based and S-D pipeline,
// CPU and accelerator) with NMP enabled where present, returning the
// best configuration found.
func (sr *Searcher) SearchHercules() Eval {
	useNMP := sr.S.HW.HasNMP()
	best := sr.SearchCPUModel(useNMP)
	if e := sr.SearchCPUSD(useNMP); e.QPS() > best.QPS() {
		best = e
	}
	if sr.S.HW.GPU != nil {
		if e := sr.SearchAccel(sim.PlaceAccelModel, useNMP); e.QPS() > best.QPS() {
			best = e
		}
		if e := sr.SearchAccel(sim.PlaceAccelSD, useNMP); e.QPS() > best.QPS() {
			best = e
		}
	}
	return best
}

// SearchDeepRecSys runs the baseline of [37]: model-based scheduling
// with one thread per physical core, hill-climbing over batch size only
// (the Psp(D) space).
func (sr *Searcher) SearchDeepRecSys() Eval {
	var best Eval
	for _, b := range BatchLadder {
		e := sr.Score(sim.DeepRecSysCPU(sr.S.HW, b))
		if e.QPS() > best.QPS() {
			best = e
		}
	}
	return best
}

// SearchBaymax runs the accelerator baseline of [32]: model co-location
// without query fusion, sweeping the co-location degree.
func (sr *Searcher) SearchBaymax() Eval {
	if sr.S.HW.GPU == nil {
		return Eval{}
	}
	var best Eval
	for m := 1; m <= 8; m++ {
		cfg := sim.BaymaxAccel(m, 1024)
		cfg.SparseThreads = hostStageLadder(sr.S.HW.CPU.PhysicalCores)[len(hostStageLadder(sr.S.HW.CPU.PhysicalCores))-1] / 2
		if cfg.SparseThreads < 1 {
			cfg.SparseThreads = 1
		}
		e := sr.Score(cfg)
		if e.QPS() > best.QPS() {
			best = e
		}
	}
	return best
}

// SearchBaseline runs the combined state-of-the-art baseline used in
// Fig. 14: DeepRecSys on the CPU and Baymax on the accelerator; the
// server serves on whichever engine performs better.
func (sr *Searcher) SearchBaseline() Eval {
	best := sr.SearchDeepRecSys()
	if e := sr.SearchBaymax(); e.QPS() > best.QPS() {
		best = e
	}
	return best
}

// ExhaustiveCPUModel sweeps the full Psp(M+D+O) grid for model-based CPU
// scheduling. It is exponentially larger than the gradient search's
// visit set and exists to verify that Algorithm 1 finds the same
// optimum on convex spaces (DESIGN.md ablation #2).
func (sr *Searcher) ExhaustiveCPUModel(useNMP bool) Eval {
	cores := sr.S.HW.CPU.PhysicalCores
	var best Eval
	for o := 1; o <= cores; o++ {
		for m := 1; m*o <= cores; m++ {
			for _, b := range BatchLadder {
				e := sr.Score(sim.Config{
					Place: sim.PlaceCPUModel, Threads: m, OpWorkers: o,
					Batch: b, UseNMP: useNMP,
				})
				if e.QPS() > best.QPS() {
					best = e
				}
			}
		}
	}
	return best
}
