package sched

import (
	"testing"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/sim"
)

func searcher(t *testing.T, modelName, srvLabel string, v model.Variant) *Searcher {
	t.Helper()
	m, err := model.ByName(modelName, v)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(hw.ServerType(srvLabel), m)
	return NewSearcher(s, Objective{SLAMS: m.SLATargetMS, Seed: 42})
}

func TestScoreMemoizes(t *testing.T) {
	sr := searcher(t, "DLRM-RMC1", "T2", model.Prod)
	cfg := sim.Config{Place: sim.PlaceCPUModel, Threads: 10, OpWorkers: 2, Batch: 128}
	a := sr.Score(cfg)
	evals := sr.Evals
	b := sr.Score(cfg)
	if sr.Evals != evals {
		t.Fatal("second Score must hit the memo")
	}
	if a.QPS() != b.QPS() {
		t.Fatal("memoized score differs")
	}
}

func TestScoreRejectsInvalid(t *testing.T) {
	sr := searcher(t, "DLRM-RMC1", "T2", model.Prod)
	e := sr.Score(sim.Config{Place: sim.PlaceCPUModel, Threads: 40, OpWorkers: 1, Batch: 64})
	if e.QPS() != 0 {
		t.Fatal("invalid config must score zero")
	}
}

func TestPowerBudgetConstrains(t *testing.T) {
	t.Parallel()
	m := model.DLRMRMC1(model.Prod)
	s := sim.New(hw.ServerType("T2"), m)
	unbounded := NewSearcher(s, Objective{SLAMS: 20, Seed: 42})
	tight := NewSearcher(s, Objective{SLAMS: 20, PowerBudgetW: s.HW.IdleWatts() + 1, Seed: 42})
	cfg := sim.Config{Place: sim.PlaceCPUModel, Threads: 10, OpWorkers: 2, Batch: 128}
	if unbounded.Score(cfg).QPS() <= 0 {
		t.Fatal("unbounded must find capacity")
	}
	if tight.Score(cfg).QPS() != 0 {
		t.Fatal("near-idle power budget must zero the score")
	}
}

func TestSearchDeepRecSysFindsCapacity(t *testing.T) {
	t.Parallel()
	sr := searcher(t, "DLRM-RMC1", "T2", model.Prod)
	e := sr.SearchDeepRecSys()
	if e.QPS() <= 0 {
		t.Fatal("baseline must find positive capacity")
	}
	if e.Cfg.Threads != 20 || e.Cfg.OpWorkers != 1 {
		t.Fatalf("baseline must keep 20×1: %+v", e.Cfg)
	}
}

func TestGradientSearchBeatsOrMatchesBaselineCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	t.Parallel()
	for _, name := range []string{"DLRM-RMC1", "DLRM-RMC3"} {
		sr := searcher(t, name, "T2", model.Prod)
		base := sr.SearchDeepRecSys()
		herc := sr.SearchCPUModel(false)
		if sd := sr.SearchCPUSD(false); sd.QPS() > herc.QPS() {
			herc = sd
		}
		if herc.QPS() < base.QPS() {
			t.Errorf("%s: Hercules CPU (%.0f) below baseline (%.0f)",
				name, herc.QPS(), base.QPS())
		}
	}
}

func TestGradientMatchesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	t.Parallel()
	// DESIGN.md ablation #2: on the convex Psp(M+D+O) space the gradient
	// search must land within a few percent of the exhaustive optimum
	// while visiting far fewer configurations.
	sr := searcher(t, "DLRM-RMC1", "T2", model.Prod)
	grad := sr.SearchCPUModel(false)
	gradEvals := sr.Evals

	sr2 := searcher(t, "DLRM-RMC1", "T2", model.Prod)
	exh := sr2.ExhaustiveCPUModel(false)
	if grad.QPS() < 0.9*exh.QPS() {
		t.Errorf("gradient %.0f QPS vs exhaustive %.0f: search missed the optimum",
			grad.QPS(), exh.QPS())
	}
	if gradEvals >= sr2.Evals {
		t.Errorf("gradient used %d evals, exhaustive %d: no search savings",
			gradEvals, sr2.Evals)
	}
}

func TestSearchAccelUsesFusion(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	t.Parallel()
	sr := searcher(t, "MT-WnD", "T7", model.Prod)
	e := sr.SearchAccel(sim.PlaceAccelModel, false)
	if e.QPS() <= 0 {
		t.Fatal("accel search must find capacity")
	}
	if e.Cfg.FusionLimit == 0 {
		t.Error("compute-bound MT-WnD should choose query fusion")
	}
}

func TestSearchAccelRejectsCPUOnlyServer(t *testing.T) {
	sr := searcher(t, "MT-WnD", "T2", model.Prod)
	if e := sr.SearchAccel(sim.PlaceAccelModel, false); e.QPS() != 0 {
		t.Fatal("accel search must return zero without a GPU")
	}
	if e := sr.SearchBaymax(); e.QPS() != 0 {
		t.Fatal("Baymax needs a GPU")
	}
}

func TestHerculesBeatsBaselineOnAccelServer(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	t.Parallel()
	// Fig. 14(T7): compute-dominated models gain multiples from
	// co-location + fusion.
	sr := searcher(t, "DIN", "T7", model.Prod)
	base := sr.SearchBaseline()
	herc := sr.SearchHercules()
	if herc.QPS() <= base.QPS() {
		t.Fatalf("Hercules (%.0f QPS) must beat baseline (%.0f QPS) on T7",
			herc.QPS(), base.QPS())
	}
	speedup := herc.QPS() / base.QPS()
	if speedup < 1.2 {
		t.Errorf("DIN on T7 speedup %.2f×, paper reports multiples", speedup)
	}
}

func TestHerculesUsesNMPOnNMPServers(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	t.Parallel()
	sr := searcher(t, "DLRM-RMC1", "T4", model.Prod)
	e := sr.SearchHercules()
	if e.QPS() <= 0 {
		t.Fatal("search must find capacity on T4")
	}
	if !e.Cfg.UseNMP {
		t.Error("Hercules on an NMP server must enable NMP for pooled models")
	}
}

func TestSearchTraceCollected(t *testing.T) {
	sr := searcher(t, "DLRM-RMC1", "T2", model.Prod)
	sr.CollectTrace = true
	sr.SearchDeepRecSys()
	if len(sr.Trace) == 0 {
		t.Fatal("trace must record visited configs")
	}
}

func TestSDPipelineCompetitiveForMemoryBound(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	t.Parallel()
	// §VI-A: S-D pipelining + full Psp exploration accelerates the
	// multi-hot DLRM models; at minimum it must be close to model-based
	// (it wins in the paper's setting).
	sr := searcher(t, "DLRM-RMC2", "T2", model.Prod)
	mb := sr.SearchCPUModel(false)
	sd := sr.SearchCPUSD(false)
	if sd.QPS() < 0.7*mb.QPS() {
		t.Errorf("S-D pipeline (%.0f) far below model-based (%.0f)", sd.QPS(), mb.QPS())
	}
}

func TestBaselineOrderingSane(t *testing.T) {
	t.Parallel()
	// The combined baseline is the max of its two components.
	sr := searcher(t, "DLRM-RMC3", "T7", model.Prod)
	cpu := sr.SearchDeepRecSys()
	gpu := sr.SearchBaymax()
	both := sr.SearchBaseline()
	want := cpu.QPS()
	if gpu.QPS() > want {
		want = gpu.QPS()
	}
	if both.QPS() != want {
		t.Fatalf("baseline %.0f ≠ max(cpu %.0f, gpu %.0f)", both.QPS(), cpu.QPS(), gpu.QPS())
	}
}
