// Package sched implements Hercules' SLA- and power-aware task-scheduling
// exploration (§IV-B): the gradient-based search of Algorithm 1 over the
// parallelism space Psp(M+D+O), the sparse–dense pipeline equilibrium
// search (Fig. 12), and the baseline schedulers it is compared against —
// DeepRecSys [37] (data-parallelism only on CPUs) and Baymax [32] (model
// co-location only on accelerators).
//
// Every candidate configuration is scored by its latency-bounded
// throughput (internal/sim.FindCapacity) subject to the SLA latency
// target and, optionally, a provisioned power budget. Evaluations are
// memoized; neighbouring configurations warm-start each other's capacity
// bracket.
//
// The surface: NewSearcher binds one simulated server and model to an
// Objective (SLA target, optional power budget); its search methods
// return the best sim.Config plus the Eval trace the Fig. 11 and
// Fig. 14 experiments analyze. The profiler (internal/profiler) is the
// only production consumer — this package finds the configurations the
// efficiency table records.
package sched
