package workload_test

import (
	"fmt"

	"hercules/internal/workload"
)

// ExampleSynthesize builds one day of the synchronized diurnal load
// trace (Fig. 2d) and verifies its shape: 15-minute sampling, the peak
// at the configured hour, and the >50% peak-to-valley fluctuation the
// paper reports.
func ExampleSynthesize() {
	cfg := workload.DefaultDiurnal("ranking", 10000, 1, 42)
	trace := workload.Synthesize(cfg)
	fmt.Printf("steps: %d (every %.0f min)\n", trace.Steps(), trace.StepS/60)
	fmt.Printf("fluctuation > 50%%: %v\n", (trace.Peak()-trace.Valley())/trace.Peak() > 0.5)
	fmt.Printf("peak within 5%% of configured: %v\n", trace.Peak() > 9500 && trace.Peak() < 10500)
	// Output:
	// steps: 96 (every 15 min)
	// fluctuation > 50%: true
	// peak within 5% of configured: true
}
