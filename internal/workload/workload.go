package workload

import (
	"math"
	"math/rand"

	"hercules/internal/model"
	"hercules/internal/stats"
)

// QuerySizeDist describes the distribution of query sizes (number of
// items to rank per query). Production sizes are heavy-tailed between
// ~10 and ~1000 with p75≪p95≪p99 (Fig. 2b); a clamped lognormal
// reproduces that shape.
type QuerySizeDist struct {
	Mu    float64 // location of underlying normal
	Sigma float64 // scale (tail heaviness)
	Min   int
	Max   int
}

// DefaultQuerySizes matches the paper's histogram: median near 100,
// p99 approaching 1000, support [10, 1000].
func DefaultQuerySizes() QuerySizeDist {
	return QuerySizeDist{Mu: math.Log(110), Sigma: 0.75, Min: 10, Max: 1000}
}

// Draw samples one query size.
func (d QuerySizeDist) Draw(r *rand.Rand) int {
	x := stats.Lognormal(r, d.Mu, d.Sigma)
	return stats.ClampInt(int(math.Round(x)), d.Min, d.Max)
}

// Mean returns the analytical mean of the clamped lognormal,
// approximated by the unclamped mean (clamping is mild at the defaults).
func (d QuerySizeDist) Mean() float64 {
	return math.Exp(d.Mu + d.Sigma*d.Sigma/2)
}

// Query is one inference request: rank Size items for one user.
// SparseScale captures the query's deviation from the model's mean
// pooling factors (Fig. 2c variance): the cost model multiplies embedding
// bytes by it.
type Query struct {
	ID          int64
	ArrivalS    float64 // arrival time, seconds since epoch of the run
	Size        int     // items to rank
	SparseScale float64 // per-query pooling multiplier (mean 1.0)
}

// Items returns the query's item count as float64.
func (q Query) Items() float64 { return float64(q.Size) }

// Generator produces a Poisson query stream for one model.
type Generator struct {
	Model     *model.Model
	Sizes     QuerySizeDist
	RateQPS   float64 // arrival rate (queries per second)
	rng       *rand.Rand
	nextID    int64
	clockS    float64
	poolSigma float64
}

// NewGenerator returns a generator with the given arrival rate and seed.
func NewGenerator(m *model.Model, rateQPS float64, seed int64) *Generator {
	return &Generator{
		Model:     m,
		Sizes:     DefaultQuerySizes(),
		RateQPS:   rateQPS,
		rng:       stats.NewRand(seed),
		poolSigma: 0.3,
	}
}

// Next returns the next query in arrival order. The inter-arrival gap is
// exponential (Poisson process).
func (g *Generator) Next() Query {
	g.clockS += stats.Exponential(g.rng, g.RateQPS)
	g.nextID++
	// Lognormal multiplier with mean 1: exp(N(-s²/2, s)).
	scale := stats.Lognormal(g.rng, -g.poolSigma*g.poolSigma/2, g.poolSigma)
	return Query{
		ID:          g.nextID,
		ArrivalS:    g.clockS,
		Size:        g.Sizes.Draw(g.rng),
		SparseScale: scale,
	}
}

// Until generates queries until the given virtual time (seconds).
func (g *Generator) Until(tS float64) []Query {
	return g.AppendUntil(nil, tS)
}

// AppendUntil generates queries until the given virtual time (seconds),
// appending to buf and returning the extended slice. Callers replaying
// many intervals reuse one buffer (buf[:0]) so generation stops
// allocating after the first interval.
func (g *Generator) AppendUntil(buf []Query, tS float64) []Query {
	for {
		q := g.Next()
		if q.ArrivalS > tS {
			// Push the clock back so the overshoot query is not lost if
			// the caller continues; simplest is to keep it for next call.
			g.clockS = q.ArrivalS
			g.nextID--
			return buf
		}
		buf = append(buf, q)
	}
}

// PoolingFactors draws per-table pooling factors for one query of the
// given model (Fig. 2c: large variance across 15 tables, clamped to each
// table's [min,max]).
func PoolingFactors(r *rand.Rand, m *model.Model, sparseScale float64) []int {
	out := make([]int, len(m.Tables))
	for i, t := range m.Tables {
		if t.PoolingMax == t.PoolingMin {
			out[i] = t.PoolingMin
			continue
		}
		mean := t.MeanPooling() * sparseScale
		// Lognormal around the (scaled) mean with moderate dispersion.
		x := stats.Lognormal(r, math.Log(math.Max(mean, 1))-0.08, 0.4)
		out[i] = stats.ClampInt(int(math.Round(x)), t.PoolingMin, t.PoolingMax)
	}
	return out
}

// DiurnalTrace is a per-service cluster load trace: load (QPS) sampled
// at fixed intervals over one or more days (Fig. 2d).
type DiurnalTrace struct {
	Service  string
	StepS    float64   // sampling interval in seconds
	LoadsQPS []float64 // samples
}

// DiurnalConfig parameterizes the synthesizer.
type DiurnalConfig struct {
	Service string
	PeakQPS float64
	// ValleyFrac is the trough-to-peak ratio; the paper reports >50%
	// fluctuation, so the default is 0.4 (valley = 40% of peak).
	ValleyFrac float64
	// PeakHour is the local hour of daily peak (synchronous across
	// services and datacenters per Fig. 2d).
	PeakHour float64
	Days     int
	StepMin  float64 // sample step in minutes
	NoiseStd float64 // multiplicative noise std (e.g. 0.02)
	Seed     int64
}

// DefaultDiurnal returns the synthesizer config used by the cluster
// experiments: peak at hour 20, 40% valley, 15-minute steps.
func DefaultDiurnal(service string, peakQPS float64, days int, seed int64) DiurnalConfig {
	return DiurnalConfig{
		Service:    service,
		PeakQPS:    peakQPS,
		ValleyFrac: 0.4,
		PeakHour:   20,
		Days:       days,
		StepMin:    15,
		NoiseStd:   0.02,
		Seed:       seed,
	}
}

// Synthesize builds the diurnal trace: a raised cosine fundamental plus a
// weak second harmonic (morning shoulder), with multiplicative noise.
func Synthesize(cfg DiurnalConfig) DiurnalTrace {
	r := stats.NewRand(cfg.Seed)
	stepS := cfg.StepMin * 60
	n := int(float64(cfg.Days) * 24 * 60 / cfg.StepMin)
	loads := make([]float64, n)
	mid := (1 + cfg.ValleyFrac) / 2
	amp := (1 - cfg.ValleyFrac) / 2
	for i := 0; i < n; i++ {
		hour := math.Mod(float64(i)*cfg.StepMin/60, 24)
		phase := 2 * math.Pi * (hour - cfg.PeakHour) / 24
		base := mid + amp*(0.85*math.Cos(phase)+0.15*math.Cos(2*phase))
		noise := 1 + r.NormFloat64()*cfg.NoiseStd
		loads[i] = stats.Clamp(cfg.PeakQPS*base*noise, 0, cfg.PeakQPS*1.05)
	}
	return DiurnalTrace{Service: cfg.Service, StepS: stepS, LoadsQPS: loads}
}

// Peak returns the maximum load in the trace.
func (t DiurnalTrace) Peak() float64 {
	var max float64
	for _, l := range t.LoadsQPS {
		if l > max {
			max = l
		}
	}
	return max
}

// Valley returns the minimum load in the trace.
func (t DiurnalTrace) Valley() float64 {
	if len(t.LoadsQPS) == 0 {
		return 0
	}
	min := t.LoadsQPS[0]
	for _, l := range t.LoadsQPS {
		if l < min {
			min = l
		}
	}
	return min
}

// Mean returns the average load.
func (t DiurnalTrace) Mean() float64 {
	if len(t.LoadsQPS) == 0 {
		return 0
	}
	var sum float64
	for _, l := range t.LoadsQPS {
		sum += l
	}
	return sum / float64(len(t.LoadsQPS))
}

// At returns the load at the given time offset (seconds), clamping to
// the trace bounds.
func (t DiurnalTrace) At(tS float64) float64 {
	if len(t.LoadsQPS) == 0 {
		return 0
	}
	i := int(tS / t.StepS)
	i = stats.ClampInt(i, 0, len(t.LoadsQPS)-1)
	return t.LoadsQPS[i]
}

// Steps returns the number of samples.
func (t DiurnalTrace) Steps() int { return len(t.LoadsQPS) }

// EstimateOverProvisionR implements §IV-C's headroom estimation: the
// over-provision rate R must cover the load increase that can occur
// within one re-provisioning interval (tens of minutes), and is
// estimated by profiling historical load changes over that horizon.
// It returns the 99th percentile of the relative per-interval load
// increase, as a fraction (e.g. 0.05 = provision 5% above current load).
func EstimateOverProvisionR(t DiurnalTrace, intervalS float64) float64 {
	if len(t.LoadsQPS) < 2 || t.StepS <= 0 {
		return 0
	}
	stride := int(intervalS / t.StepS)
	if stride < 1 {
		stride = 1
	}
	inc := stats.NewSample(len(t.LoadsQPS))
	for i := 0; i+stride < len(t.LoadsQPS); i++ {
		cur := t.LoadsQPS[i]
		if cur <= 0 {
			continue
		}
		next := t.LoadsQPS[i+stride]
		rel := (next - cur) / cur
		if rel < 0 {
			rel = 0 // decreases need no headroom
		}
		inc.Add(rel)
	}
	return inc.P99()
}

// EvolutionMix describes the model-evolution experiment (Fig. 16a): the
// fraction of total load served by each model shifts linearly from the
// old set (DLRM-RMC1/2/3) to the new set (DIN, DIEN, MT-WnD) over the
// update cycle.
type EvolutionMix struct {
	OldModels []string
	NewModels []string
	// Cycle is the number of evolution snapshots (Day-D1 = snapshot 0).
	Cycle int
}

// DefaultEvolution matches Fig. 16a: loads of RMC1/2/3 gradually replaced
// by DIN/DIEN/MT-WnD.
func DefaultEvolution() EvolutionMix {
	return EvolutionMix{
		OldModels: []string{"DLRM-RMC1", "DLRM-RMC2", "DLRM-RMC3"},
		NewModels: []string{"DIN", "DIEN", "MT-WnD"},
		Cycle:     6,
	}
}

// Fractions returns the per-model load fractions at evolution snapshot
// step (0..Cycle). At step 0 the old models carry all the load; at step
// Cycle the new models carry all of it. Within each set, load splits
// evenly.
func (e EvolutionMix) Fractions(step int) map[string]float64 {
	step = stats.ClampInt(step, 0, e.Cycle)
	newShare := float64(step) / float64(e.Cycle)
	out := make(map[string]float64, len(e.OldModels)+len(e.NewModels))
	for _, m := range e.OldModels {
		out[m] = (1 - newShare) / float64(len(e.OldModels))
	}
	for _, m := range e.NewModels {
		out[m] = newShare / float64(len(e.NewModels))
	}
	return out
}
