// Package workload synthesizes the load that drives the Hercules
// simulators: per-query working-set sizes with the production heavy tail
// (Fig. 2b), per-table pooling factors (Fig. 2c), Poisson query arrivals
// (§I), and the synchronous diurnal cluster load traces (Fig. 2d).
//
// The paper uses production Meta traces; we substitute parameterized
// distributions with the same shape (see DESIGN.md §2). All draws are
// deterministic given the generator's seed.
//
// The surface:
//
//   - Query / Generator — one inference request (items to rank, arrival
//     instant, pooling multiplier) and the seeded Poisson stream that
//     produces them;
//   - QuerySizeDist — the clamped-lognormal size distribution whose
//     heavy tail makes per-query cost variance matter (the fleet
//     engine's scenario mix-shift events rescale exactly this);
//   - DiurnalTrace / Synthesize — the day-scale load curve the cluster
//     provisioner and fleet engine replay, plus EstimateOverProvisionR
//     for §IV-C's history-profiled headroom;
//   - PoolingFactors — per-table pooling draws for the cost model;
//   - EvolutionMix — the Fig. 16 model-evolution load rotation.
package workload
