package workload

import (
	"math"
	"testing"
	"testing/quick"

	"hercules/internal/model"
	"hercules/internal/stats"
)

func TestQuerySizeBounds(t *testing.T) {
	d := DefaultQuerySizes()
	r := stats.NewRand(1)
	for i := 0; i < 10000; i++ {
		s := d.Draw(r)
		if s < d.Min || s > d.Max {
			t.Fatalf("size %d outside [%d,%d]", s, d.Min, d.Max)
		}
	}
}

func TestQuerySizeHeavyTail(t *testing.T) {
	// Fig. 2b: distinct heavy tail with p75 ≪ p95 ≪ p99.
	d := DefaultQuerySizes()
	r := stats.NewRand(2)
	s := stats.NewSample(20000)
	for i := 0; i < 20000; i++ {
		s.Add(float64(d.Draw(r)))
	}
	p50, p75, p95, p99 := s.P50(), s.P75(), s.P95(), s.P99()
	if !(p50 < p75 && p75 < p95 && p95 < p99) {
		t.Fatalf("percentiles not increasing: %v %v %v %v", p50, p75, p95, p99)
	}
	if p99/p50 < 3 {
		t.Errorf("tail ratio p99/p50 = %.2f, want heavy (≥3)", p99/p50)
	}
	if p50 < 50 || p50 > 250 {
		t.Errorf("median %v outside the production 10–1000 band's center", p50)
	}
}

func TestGeneratorPoissonRate(t *testing.T) {
	g := NewGenerator(model.DLRMRMC1(model.Prod), 500, 3)
	qs := g.Until(20) // 20 simulated seconds
	got := float64(len(qs)) / 20
	if math.Abs(got-500)/500 > 0.1 {
		t.Errorf("arrival rate = %.1f QPS, want ≈500", got)
	}
	// Arrival times must be strictly increasing with unique IDs.
	for i := 1; i < len(qs); i++ {
		if qs[i].ArrivalS <= qs[i-1].ArrivalS {
			t.Fatalf("arrivals not increasing at %d", i)
		}
		if qs[i].ID == qs[i-1].ID {
			t.Fatalf("duplicate query ID at %d", i)
		}
	}
}

func TestGeneratorSparseScaleMeanOne(t *testing.T) {
	g := NewGenerator(model.DLRMRMC1(model.Prod), 100, 4)
	var w stats.Welford
	for i := 0; i < 5000; i++ {
		w.Add(g.Next().SparseScale)
	}
	if math.Abs(w.Mean()-1) > 0.05 {
		t.Errorf("sparse scale mean = %v, want ≈1", w.Mean())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(model.DIN(model.Prod), 100, 42)
	b := NewGenerator(model.DIN(model.Prod), 100, 42)
	for i := 0; i < 100; i++ {
		qa, qb := a.Next(), b.Next()
		if qa != qb {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, qa, qb)
		}
	}
}

func TestPoolingFactorsWithinTableBounds(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	r := stats.NewRand(5)
	for i := 0; i < 1000; i++ {
		pf := PoolingFactors(r, m, 1.0)
		if len(pf) != len(m.Tables) {
			t.Fatalf("pooling factor count mismatch")
		}
		for j, p := range pf {
			if p < m.Tables[j].PoolingMin || p > m.Tables[j].PoolingMax {
				t.Fatalf("table %d factor %d outside [%d,%d]",
					j, p, m.Tables[j].PoolingMin, m.Tables[j].PoolingMax)
			}
		}
	}
}

func TestPoolingFactorsOneHot(t *testing.T) {
	m := model.MTWnD(model.Prod)
	r := stats.NewRand(6)
	pf := PoolingFactors(r, m, 1.3)
	for _, p := range pf {
		if p != 1 {
			t.Fatalf("one-hot table drew pooling %d", p)
		}
	}
}

func TestPoolingFactorVariance(t *testing.T) {
	// Fig. 2c: pooling factors exhibit large variance.
	m := model.DLRMRMC2(model.Prod)
	r := stats.NewRand(7)
	var w stats.Welford
	for i := 0; i < 500; i++ {
		for _, p := range PoolingFactors(r, m, 1.0) {
			w.Add(float64(p))
		}
	}
	if w.StdDev() < 10 {
		t.Errorf("pooling stddev = %.1f, want large variance", w.StdDev())
	}
}

func TestDiurnalShape(t *testing.T) {
	tr := Synthesize(DefaultDiurnal("svc1", 50000, 1, 8))
	if tr.Steps() != 96 {
		t.Fatalf("1 day at 15-min steps = %d samples, want 96", tr.Steps())
	}
	peak, valley := tr.Peak(), tr.Valley()
	if peak > 50000*1.06 {
		t.Errorf("peak %v exceeds configured bound", peak)
	}
	// Paper: >50% fluctuation between peak and off-peak.
	if (peak-valley)/peak < 0.5 {
		t.Errorf("fluctuation = %.2f, want >0.5", (peak-valley)/peak)
	}
	if tr.Mean() <= valley || tr.Mean() >= peak {
		t.Error("mean must lie between valley and peak")
	}
}

func TestDiurnalSynchronousPeaks(t *testing.T) {
	// Fig. 2d: different services peak at similar times.
	a := Synthesize(DefaultDiurnal("rmc1", 50000, 1, 9))
	b := Synthesize(DefaultDiurnal("rmc2", 50000, 1, 10))
	peakIdx := func(tr DiurnalTrace) int {
		best, idx := 0.0, 0
		for i, l := range tr.LoadsQPS {
			if l > best {
				best, idx = l, i
			}
		}
		return idx
	}
	ia, ib := peakIdx(a), peakIdx(b)
	if diff := math.Abs(float64(ia - ib)); diff > 8 { // within 2 hours
		t.Errorf("peaks misaligned by %v steps", diff)
	}
}

func TestDiurnalAt(t *testing.T) {
	tr := Synthesize(DefaultDiurnal("svc", 1000, 1, 11))
	if tr.At(-5) != tr.LoadsQPS[0] {
		t.Error("At before start must clamp")
	}
	if tr.At(1e12) != tr.LoadsQPS[len(tr.LoadsQPS)-1] {
		t.Error("At after end must clamp")
	}
	if tr.At(0) != tr.LoadsQPS[0] || tr.At(tr.StepS*3.5) != tr.LoadsQPS[3] {
		t.Error("At indexing wrong")
	}
	var empty DiurnalTrace
	if empty.At(0) != 0 || empty.Mean() != 0 || empty.Valley() != 0 {
		t.Error("empty trace must answer zeros")
	}
}

func TestDiurnalMultiDay(t *testing.T) {
	tr := Synthesize(DefaultDiurnal("svc", 1000, 7, 12))
	if tr.Steps() != 96*7 {
		t.Fatalf("7-day trace = %d steps", tr.Steps())
	}
	// Day-over-day peaks should be similar (same diurnal pattern).
	day := func(d int) float64 {
		var max float64
		for i := d * 96; i < (d+1)*96; i++ {
			if tr.LoadsQPS[i] > max {
				max = tr.LoadsQPS[i]
			}
		}
		return max
	}
	if math.Abs(day(0)-day(6))/day(0) > 0.15 {
		t.Error("daily peaks vary too much across the week")
	}
}

func TestEvolutionFractions(t *testing.T) {
	e := DefaultEvolution()
	f0 := e.Fractions(0)
	if math.Abs(f0["DLRM-RMC1"]-1.0/3) > 1e-9 || f0["DIN"] != 0 {
		t.Errorf("step 0 fractions wrong: %v", f0)
	}
	fEnd := e.Fractions(e.Cycle)
	if fEnd["DLRM-RMC1"] != 0 || math.Abs(fEnd["DIN"]-1.0/3) > 1e-9 {
		t.Errorf("final fractions wrong: %v", fEnd)
	}
	// Fig. 16: Day-D2 routes 20% of loads to the new models vs Day-D1.
	mid := e.Fractions(e.Cycle / 2)
	var newSum float64
	for _, m := range e.NewModels {
		newSum += mid[m]
	}
	if math.Abs(newSum-0.5) > 1e-9 {
		t.Errorf("mid-cycle new-model share = %v", newSum)
	}
}

func TestEvolutionFractionsSumToOne(t *testing.T) {
	e := DefaultEvolution()
	f := func(step int8) bool {
		fr := e.Fractions(int(step))
		var sum float64
		for _, v := range fr {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUntilResumable(t *testing.T) {
	g := NewGenerator(model.DLRMRMC1(model.Prod), 100, 13)
	a := g.Until(5)
	b := g.Until(10)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("expected queries in both windows")
	}
	if b[0].ArrivalS <= a[len(a)-1].ArrivalS {
		t.Error("second window must continue after the first")
	}
	for _, q := range b {
		if q.ArrivalS > 10 || q.ArrivalS < 5 {
			t.Errorf("query at %v outside (5,10]", q.ArrivalS)
		}
	}
}

func TestEstimateOverProvisionR(t *testing.T) {
	tr := Synthesize(DefaultDiurnal("svc", 50000, 3, 21))
	r15 := EstimateOverProvisionR(tr, 15*60)
	r60 := EstimateOverProvisionR(tr, 60*60)
	if r15 <= 0 {
		t.Fatal("diurnal ramps must need positive headroom")
	}
	if r60 <= r15 {
		t.Errorf("longer intervals need more headroom: 15min=%v 60min=%v", r15, r60)
	}
	// Headroom should be modest — the diurnal ramp is a few percent per
	// 15 minutes, not a doubling.
	if r15 > 0.3 {
		t.Errorf("15-min headroom %v implausibly large", r15)
	}
}

func TestEstimateOverProvisionRDegenerate(t *testing.T) {
	if EstimateOverProvisionR(DiurnalTrace{}, 900) != 0 {
		t.Fatal("empty trace needs no headroom")
	}
	flat := DiurnalTrace{StepS: 900, LoadsQPS: []float64{100, 100, 100, 100}}
	if EstimateOverProvisionR(flat, 900) != 0 {
		t.Fatal("flat load needs no headroom")
	}
	falling := DiurnalTrace{StepS: 900, LoadsQPS: []float64{400, 300, 200, 100}}
	if EstimateOverProvisionR(falling, 900) != 0 {
		t.Fatal("falling load needs no headroom")
	}
}
