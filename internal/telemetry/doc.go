// Package telemetry provides the fleet engine's observability plane:
// a deterministically-sampled per-query tracer and a streaming metrics
// registry, both built to cost nothing measurable when disabled and to
// preserve the replay's byte-identity guarantee when enabled.
//
// # Tracing
//
// Tracer records lifecycle events (arrival, shed, route, enqueue,
// batch, start, end, complete, drop — see Kind) for a deterministic
// 1-in-N sample of queries. Sample membership is a seeded hash of the
// query's (interval, model, index) identity, never of shard layout or
// scheduling order, so sequential and parallel replays of the same
// spec trace exactly the same queries. Shard workers stage events in
// single-writer ShardBufs; the engine drains them into the Tracer's
// fixed ring in deterministic shard order and flushes to the attached
// Sinks once per interval. NDJSONWriter emits a byte-stable
// newline-delimited JSON stream, ChromeWriter emits Chrome trace-event
// JSON for Perfetto / chrome://tracing, and CountSink counts without
// I/O (what benchmarks use).
//
// # Metrics
//
// Registry names three metric types: Counter (monotonic),
// Gauge (last value), and HistogramMetric — a streaming distribution
// backed by stats.Sketch, the mergeable relative-error quantile sketch,
// so any percentile is available at any time without buffering samples.
// Snapshot produces a JSON-serializable point-in-time view.
package telemetry
