package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// NDJSONWriter exports trace events as newline-delimited JSON, one
// event per line — the per-query inverse of the fleet CLI's -ndjson
// per-interval stream. Field order and float formatting are fixed by
// hand (shortest round-trip representation), so the same replay always
// produces byte-identical output: the property the committed
// golden_trace.ndjson pins across sequential and parallel replays.
//
// Line shape (kind-irrelevant fields omitted):
//
//	{"i":3,"k":"route","m":"DLRM-RMC1","q":81,"t":0.01153,"inst":4,"cand":[2,4],"n":2}
//	{"i":3,"k":"complete","m":"DLRM-RMC1","q":81,"t":0.01153,"inst":4,"v":0.0061}
type NDJSONWriter struct {
	w    *bufio.Writer
	c    io.Closer // closed by Close when the destination is a file
	buf  []byte
	only uint32 // kind bitmask; 0 = every kind (see Restrict)
}

// Restrict limits the writer to the given kinds; other events are
// skipped. The fleet CLI's -record output uses it to write replayable
// arrival traces (arrival + offer lines only) without paying for the
// full lifecycle stream.
func (nw *NDJSONWriter) Restrict(kinds ...Kind) *NDJSONWriter {
	nw.only = 0
	for _, k := range kinds {
		nw.only |= 1 << uint(k)
	}
	return nw
}

// NewNDJSONWriter returns an NDJSON sink over w. If w is an io.Closer
// (a file), Close closes it after flushing.
func NewNDJSONWriter(w io.Writer) *NDJSONWriter {
	nw := &NDJSONWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		nw.c = c
	}
	return nw
}

// appendFloat appends the shortest round-trip decimal form of f.
func appendFloat(b []byte, f float64) []byte {
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// WriteEvents implements Sink.
func (nw *NDJSONWriter) WriteEvents(evs []Event) error {
	for i := range evs {
		ev := &evs[i]
		if nw.only != 0 && nw.only&(1<<uint(ev.Kind)) == 0 {
			continue
		}
		b := nw.buf[:0]
		b = append(b, `{"i":`...)
		b = strconv.AppendInt(b, int64(ev.Interval), 10)
		b = append(b, `,"k":"`...)
		b = append(b, ev.Kind.String()...)
		b = append(b, `","m":`...)
		b = strconv.AppendQuote(b, ev.Model)
		if ev.Region != "" {
			// Only multi-region replays stamp a region, so single-region
			// trace bytes (and the committed golden) are unchanged.
			b = append(b, `,"r":`...)
			b = strconv.AppendQuote(b, ev.Region)
		}
		b = append(b, `,"q":`...)
		b = strconv.AppendInt(b, ev.Query, 10)
		b = append(b, `,"t":`...)
		b = appendFloat(b, ev.TimeS)
		if ev.Instance >= 0 {
			b = append(b, `,"inst":`...)
			b = strconv.AppendInt(b, int64(ev.Instance), 10)
		}
		if ev.Kind != KindRoute && ev.Kind != KindDrop {
			b = append(b, `,"v":`...)
			b = appendFloat(b, ev.Value)
		}
		if ev.Kind == KindArrival || ev.Kind == KindOffer {
			b = append(b, `,"aux":`...)
			b = appendFloat(b, ev.Aux)
		}
		if ev.Kind == KindRoute {
			b = append(b, `,"cand":[`...)
			for j := 0; j < int(ev.NCand) && j < MaxCandidates; j++ {
				if j > 0 {
					b = append(b, ',')
				}
				b = strconv.AppendInt(b, int64(ev.Cand[j]), 10)
			}
			b = append(b, `],"n":`...)
			b = strconv.AppendInt(b, int64(ev.NCand), 10)
		}
		b = append(b, '}', '\n')
		nw.buf = b[:0]
		if _, err := nw.w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Sink.
func (nw *NDJSONWriter) Close() error {
	err := nw.w.Flush()
	if nw.c != nil {
		if cerr := nw.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ChromeWriter exports the trace in Chrome trace-event JSON (the
// format Perfetto and chrome://tracing load): every traced service
// span becomes a complete ("X") slice on its instance's track, drops
// and sheds become instant events, so a day of routed queries reads as
// a timeline — which server types run hot, where batches form, when a
// shedder starts rejecting.
//
// Replayed intervals each simulate a slice starting at virtual time 0;
// the writer lays interval i down at offset i × SpacingS so the day
// reads left to right.
type ChromeWriter struct {
	// SpacingS is the timeline offset between consecutive intervals
	// (normally the engine's slice length).
	SpacingS float64

	w     *bufio.Writer
	c     io.Closer
	first bool
}

// NewChromeWriter returns a Chrome trace-event sink over w with the
// given inter-interval spacing in seconds (<= 0 defaults to 10).
func NewChromeWriter(w io.Writer, spacingS float64) *ChromeWriter {
	if spacingS <= 0 {
		spacingS = 10
	}
	cw := &ChromeWriter{SpacingS: spacingS, w: bufio.NewWriterSize(w, 1<<16), first: true}
	if c, ok := w.(io.Closer); ok {
		cw.c = c
	}
	return cw
}

// tsUS maps an event to its absolute timeline instant in microseconds.
func (cw *ChromeWriter) tsUS(interval int32, timeS float64) float64 {
	return (float64(interval)*cw.SpacingS + timeS) * 1e6
}

func (cw *ChromeWriter) emit(format string, args ...any) error {
	if cw.first {
		if _, err := cw.w.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
			return err
		}
		cw.first = false
	} else {
		if _, err := cw.w.WriteString(",\n"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(cw.w, format, args...)
	return err
}

// WriteEvents implements Sink. Only the kinds with timeline meaning
// are rendered: End carries the service span (ts = end − dur), Drop
// and Shed become instants on their instance's (or the front door's)
// track.
func (cw *ChromeWriter) WriteEvents(evs []Event) error {
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case KindEnd:
			if err := cw.emit(`{"name":%q,"cat":"service","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"query":%d,"interval":%d}}`,
				ev.Model, cw.tsUS(ev.Interval, ev.TimeS-ev.Value), ev.Value*1e6,
				ev.Instance, ev.Query, ev.Interval); err != nil {
				return err
			}
		case KindDrop:
			tid := ev.Instance
			if tid < 0 {
				tid = 0
			}
			if err := cw.emit(`{"name":"drop %s","cat":"loss","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":%d,"args":{"query":%d}}`,
				ev.Model, cw.tsUS(ev.Interval, ev.TimeS), tid, ev.Query); err != nil {
				return err
			}
		case KindShed:
			if err := cw.emit(`{"name":"shed %s","cat":"loss","ph":"i","s":"p","ts":%.3f,"pid":0,"tid":0,"args":{"query":%d,"frac":%.4f}}`,
				ev.Model, cw.tsUS(ev.Interval, ev.TimeS), ev.Query, ev.Value); err != nil {
				return err
			}
		case KindHit:
			if err := cw.emit(`{"name":"hit %s","cat":"cache","ph":"i","s":"p","ts":%.3f,"pid":0,"tid":0,"args":{"query":%d}}`,
				ev.Model, cw.tsUS(ev.Interval, ev.TimeS), ev.Query); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close terminates the JSON document and flushes.
func (cw *ChromeWriter) Close() error {
	var err error
	if cw.first {
		_, err = cw.w.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
		cw.first = false
	}
	if _, werr := cw.w.WriteString("\n]}\n"); err == nil {
		err = werr
	}
	if ferr := cw.w.Flush(); err == nil {
		err = ferr
	}
	if cw.c != nil {
		if cerr := cw.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CountSink counts events per kind without any I/O — the sink the
// traced benchmark uses so measured overhead is tracing, not disk, and
// the cheapest way for tests to assert on trace volume.
type CountSink struct {
	Total   uint64
	PerKind [numKinds]uint64
}

// WriteEvents implements Sink.
func (cs *CountSink) WriteEvents(evs []Event) error {
	cs.Total += uint64(len(evs))
	for i := range evs {
		if k := evs[i].Kind; int(k) < len(cs.PerKind) {
			cs.PerKind[k]++
		}
	}
	return nil
}

// Close implements Sink.
func (cs *CountSink) Close() error { return nil }

// Of returns the count of one kind.
func (cs *CountSink) Of(k Kind) uint64 {
	if int(k) < len(cs.PerKind) {
		return cs.PerKind[k]
	}
	return 0
}
