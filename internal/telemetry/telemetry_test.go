package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestSamplingDeterministic: sample membership must be a pure function
// of (seed, interval, model, query index) — two tracers with the same
// seed agree on every query, and a different seed picks a different
// (but similarly sized) subset.
func TestSamplingDeterministic(t *testing.T) {
	a := NewTracer(42, 64, 0)
	b := NewTracer(42, 64, 0)
	c := NewTracer(43, 64, 0)

	var bufA, bufB, bufC ShardBuf
	sameAC := 0
	const n = 100000
	for interval := 0; interval < 4; interval++ {
		bufA.Arm(a, interval, "m", 7)
		bufB.Arm(b, interval, "m", 7)
		bufC.Arm(c, interval, "m", 7)
		hits := 0
		for id := int64(1); id <= n; id++ {
			sa, sb, sc := bufA.Sampled(id), bufB.Sampled(id), bufC.Sampled(id)
			if sa != sb {
				t.Fatalf("interval %d query %d: same seed disagrees", interval, id)
			}
			if sa {
				hits++
			}
			if sa == sc {
				sameAC++
			}
		}
		// 1-in-64 of 100k queries: expect ~1562, allow a wide band.
		if hits < 1000 || hits > 2300 {
			t.Errorf("interval %d: %d sampled of %d at 1/64, outside [1000, 2300]", interval, hits, n)
		}
	}
	if sameAC == 4*n {
		t.Error("different seeds produced identical sample sets")
	}
}

// TestSamplingStreamsIndependent: query IDs restart at 1 for every
// (interval, model) stream, so the sampled-ID sets of two intervals
// must not be copies of each other.
func TestSamplingStreamsIndependent(t *testing.T) {
	tr := NewTracer(1, 32, 0)
	pick := func(interval int, modelHash int64) map[int64]bool {
		var b ShardBuf
		b.Arm(tr, interval, "m", modelHash)
		ids := map[int64]bool{}
		for id := int64(1); id <= 10000; id++ {
			if b.Sampled(id) {
				ids[id] = true
			}
		}
		return ids
	}
	i0, i1 := pick(0, 7), pick(1, 7)
	m0, m1 := pick(0, 7), pick(0, 8)
	equal := func(a, b map[int64]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	if !equal(i0, m0) {
		t.Error("same (interval, model) stream not reproducible")
	}
	if equal(i0, i1) {
		t.Error("intervals 0 and 1 sampled identical ID sets")
	}
	if equal(m0, m1) {
		t.Error("two models in one interval sampled identical ID sets")
	}
}

// TestSampleNOne: period 1 traces everything.
func TestSampleNOne(t *testing.T) {
	tr := NewTracer(9, 1, 0)
	var b ShardBuf
	b.Arm(tr, 0, "m", 1)
	for id := int64(1); id <= 1000; id++ {
		if !b.Sampled(id) {
			t.Fatalf("query %d not sampled at period 1", id)
		}
	}
}

// TestRingOverflow: a ring smaller than the ingest volume must drop the
// oldest events (counted), keep the newest, and deliver them in FIFO
// order.
func TestRingOverflow(t *testing.T) {
	tr := NewTracer(0, 1, 8)
	evs := make([]Event, 20)
	for i := range evs {
		evs[i] = Event{Kind: KindArrival, Query: int64(i)}
	}
	tr.Ingest(evs)
	if got, want := tr.Dropped(), uint64(12); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	var got []int64
	tr.AddSink(sinkFunc(func(seg []Event) error {
		for i := range seg {
			got = append(got, seg[i].Query)
		}
		return nil
	}))
	tr.Flush()
	want := []int64{12, 13, 14, 15, 16, 17, 18, 19}
	if len(got) != len(want) {
		t.Fatalf("flushed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flush order %v, want %v", got, want)
		}
	}
	if tr.Written() != 8 {
		t.Errorf("Written = %d, want 8", tr.Written())
	}
}

// TestRingFlushThrough: with a sink attached, a full ring drains
// mid-ingest instead of dropping — every event is delivered, in order.
func TestRingFlushThrough(t *testing.T) {
	tr := NewTracer(0, 1, 8)
	var got []int64
	tr.AddSink(sinkFunc(func(seg []Event) error {
		for i := range seg {
			got = append(got, seg[i].Query)
		}
		return nil
	}))
	evs := make([]Event, 20)
	for i := range evs {
		evs[i].Query = int64(i)
	}
	tr.Ingest(evs)
	tr.Flush()
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0 with a sink attached", tr.Dropped())
	}
	if len(got) != 20 {
		t.Fatalf("delivered %d events, want 20", len(got))
	}
	for i := range got {
		if got[i] != int64(i) {
			t.Fatalf("delivery order broken at %d: %v", i, got)
		}
	}
}

type sinkFunc func([]Event) error

func (f sinkFunc) WriteEvents(evs []Event) error { return f(evs) }
func (f sinkFunc) Close() error                  { return nil }

// TestNDJSONByteStable: the NDJSON encoding is hand-rolled; pin the
// exact bytes for one event of each shape so an accidental formatting
// change breaks loudly here rather than silently invalidating the
// committed golden trace.
func TestNDJSONByteStable(t *testing.T) {
	var out bytes.Buffer
	w := NewNDJSONWriter(&out)
	evs := []Event{
		{Interval: 3, Kind: KindArrival, Instance: -1, Query: 81, TimeS: 0.0115, Value: 100, Aux: 1.5, Model: "DLRM-RMC1"},
		{Interval: 3, Kind: KindRoute, Instance: 4, Query: 81, TimeS: 0.0115, NCand: 2, Cand: [MaxCandidates]int32{2, 4}, Model: "DLRM-RMC1"},
		{Interval: 3, Kind: KindComplete, Instance: 4, Query: 81, TimeS: 0.0176, Value: 0.0061, Model: "DLRM-RMC1"},
		{Interval: 5, Kind: KindDrop, Instance: -1, Query: 9, TimeS: 1.25, Model: "NCF"},
	}
	if err := w.WriteEvents(evs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"i":3,"k":"arrival","m":"DLRM-RMC1","q":81,"t":0.0115,"v":100,"aux":1.5}
{"i":3,"k":"route","m":"DLRM-RMC1","q":81,"t":0.0115,"inst":4,"cand":[2,4],"n":2}
{"i":3,"k":"complete","m":"DLRM-RMC1","q":81,"t":0.0176,"inst":4,"v":0.0061}
{"i":5,"k":"drop","m":"NCF","q":9,"t":1.25}
`
	if out.String() != want {
		t.Errorf("NDJSON bytes changed:\ngot:\n%swant:\n%s", out.String(), want)
	}
	// Every line must also be valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Errorf("line %q is not valid JSON: %v", line, err)
		}
	}
}

// TestChromeWriterValidJSON: the Chrome trace document must parse as
// JSON and place events at interval-offset timestamps.
func TestChromeWriterValidJSON(t *testing.T) {
	var out bytes.Buffer
	w := NewChromeWriter(&out, 10)
	evs := []Event{
		{Interval: 0, Kind: KindEnd, Instance: 2, Query: 1, TimeS: 0.5, Value: 0.02, Model: "NCF"},
		{Interval: 1, Kind: KindDrop, Instance: -1, Query: 2, TimeS: 0.1, Model: "NCF"},
		{Interval: 1, Kind: KindShed, Query: 3, TimeS: 0.0, Value: 0.25, Model: "NCF"},
		{Interval: 1, Kind: KindArrival, Query: 4, TimeS: 0.2, Model: "NCF"}, // not rendered
	}
	if err := w.WriteEvents(evs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Ts  float64 `json:"ts"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("rendered %d events, want 3", len(doc.TraceEvents))
	}
	// End event: span [0.48s, 0.5s] -> ts 480000us, dur 20000us.
	if doc.TraceEvents[0].Ph != "X" || doc.TraceEvents[0].Ts != 480000 || doc.TraceEvents[0].Dur != 20000 {
		t.Errorf("End event = %+v, want X at ts=480000 dur=20000", doc.TraceEvents[0])
	}
	// Drop in interval 1 at 0.1s with 10s spacing -> 10.1s.
	if doc.TraceEvents[1].Ts != 10.1e6 {
		t.Errorf("Drop ts = %g, want 10.1e6", doc.TraceEvents[1].Ts)
	}
}

// TestChromeWriterEmptyClose: closing with no events must still emit a
// valid document.
func TestChromeWriterEmptyClose(t *testing.T) {
	var out bytes.Buffer
	w := NewChromeWriter(&out, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(out.Bytes(), &v); err != nil {
		t.Fatalf("empty-close doc invalid: %v\n%s", err, out.String())
	}
}

// TestCountSink covers the benchmark sink's per-kind accounting.
func TestCountSink(t *testing.T) {
	var cs CountSink
	_ = cs.WriteEvents([]Event{{Kind: KindArrival}, {Kind: KindArrival}, {Kind: KindComplete}})
	if cs.Total != 3 || cs.Of(KindArrival) != 2 || cs.Of(KindComplete) != 1 || cs.Of(KindDrop) != 0 {
		t.Errorf("counts wrong: total=%d arrival=%d complete=%d", cs.Total, cs.Of(KindArrival), cs.Of(KindComplete))
	}
}

// TestRegistry exercises the metrics registry: handle stability,
// concurrent updates, and a deterministic snapshot.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter handle not stable")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge handle not stable")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram handle not stable")
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("a")
			h := r.Histogram("h")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(10)
			}
		}()
	}
	wg.Wait()
	r.Gauge("g").Set(3.5)

	snap := r.Snapshot()
	if snap.Counters["a"] != 8000 {
		t.Errorf("counter a = %d, want 8000", snap.Counters["a"])
	}
	if snap.Gauges["g"] != 3.5 {
		t.Errorf("gauge g = %g, want 3.5", snap.Gauges["g"])
	}
	hs := snap.Histograms["h"]
	if hs.Count != 8000 || hs.P50 < 9.8 || hs.P50 > 10.2 {
		t.Errorf("histogram h = %+v, want count 8000 p50 ~10", hs)
	}
	if got := snap.Names(); len(got) != 3 || got[0] != "a" || got[1] != "g" || got[2] != "h" {
		t.Errorf("Names() = %v, want [a g h]", got)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot not JSON-serializable: %v", err)
	}
}
