package telemetry

// Kind identifies one lifecycle point in a traced query's path through
// the fleet engine.
type Kind uint8

// The event taxonomy, in pipeline order. A sampled query emits Arrival
// first, then either Shed (rejected at the front door before any router
// saw it), Hit (served from the cache tier at cache latency — never
// routed), or Route (the routing decision, with the candidate set) and
// from there Enqueue and either Drop (bounded queue full / unservable)
// or the service path: Batch (joined a forming batch; batched pools
// only), Start and End (the service span) and Complete (with the
// arrival-to-completion latency). Offer is per-(interval, model)
// metadata rather than a query event: the offered load the interval
// replayed, which is what lets an exported arrival trace re-provision
// (and therefore replay) byte-identically on re-ingestion
// (fleet.TraceSource).
const (
	KindArrival Kind = iota
	KindShed
	KindRoute
	KindEnqueue
	KindBatch
	KindStart
	KindEnd
	KindComplete
	KindDrop
	KindOffer
	KindHit
	numKinds
)

var kindNames = [numKinds]string{
	"arrival", "shed", "route", "enqueue", "batch", "start", "end", "complete", "drop",
	"offer", "hit",
}

// KindByName resolves a stable wire name ("arrival", "offer", ...)
// back to its Kind — the inverse of Kind.String, used by trace readers
// to validate the "k" field of re-ingested NDJSON lines.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// String returns the kind's stable wire name (the "k" field of the
// NDJSON trace format).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// MaxCandidates caps how many routing candidates one Route event
// records inline. Full-scan routers (least, hetero) consider the whole
// pool; the event stores the first MaxCandidates instance IDs plus the
// true total in NCand, keeping the record pointer-free and poolable.
const MaxCandidates = 8

// Event is one pooled trace record: a flat, pointer-free struct (the
// model name is an interned string shared with the engine) so ring
// slots and shard buffers recycle without allocator traffic.
//
// Field use by kind — TimeS is always the event's virtual-time instant
// within the interval's replayed slice:
//
//	Arrival   Value = query size (items); Aux = sparse scale
//	Shed      Value = shed fraction in force
//	Route     Instance = chosen; Cand[:NCand] = candidate IDs considered
//	          (first MaxCandidates), NCand = total considered
//	Enqueue   Instance; Value = queue wait seconds (start − arrival)
//	Batch     Instance; Value = position in the forming batch (1-based)
//	Start     Instance; Value = batch size dispatched with (1 unbatched)
//	End       Instance; Value = service span seconds
//	Complete  Instance; Value = total latency seconds
//	Drop      Instance = rejecting instance (−1 for an empty pool)
//	Offer     Query = −1 (interval metadata, not a query); Value =
//	          offered QPS of (interval, model); Aux = replayed slice
//	          seconds
//	Hit       Value = cache latency seconds (served from the cache
//	          tier, never routed)
type Event struct {
	Interval int32
	Kind     Kind
	NCand    uint8
	Instance int32
	Query    int64
	TimeS    float64
	Value    float64
	Aux      float64
	Model    string
	// Region labels which region's engine emitted the event in a
	// multi-region replay (interned, stamped by the tracer at Ingest);
	// empty for single-region runs.
	Region string
	Cand   [MaxCandidates]int32
}

// Sink receives flushed trace events in deterministic order. Writes
// happen on the replay goroutine (between intervals), so a slow sink
// slows the replay — file sinks should buffer.
type Sink interface {
	// WriteEvents consumes one flushed batch; the slice is only valid
	// during the call (ring slots are recycled).
	WriteEvents(evs []Event) error
	// Close flushes and releases the sink at end of run.
	Close() error
}

// Tracer is the deterministically-sampled per-query tracer of the
// fleet engine. It decides sample membership by a seeded hash of the
// query's (interval, model, index) identity — a pure function of the
// query, never of shard layout or scheduling — so sequential and
// parallel replays sample the same queries and emit byte-identical
// traces. Events flow from per-shard buffers (ShardBuf, single-writer,
// no locks) into a fixed ring buffer, and from there to the attached
// sinks at every interval flush.
//
// SampleN is the sampling period: 1 traces every query, 1024 one in
// 1024. The Tracer itself is driven from the replay goroutine only;
// ShardBufs are written by shard workers but each is owned by exactly
// one shard.
type Tracer struct {
	// SampleN is the 1-in-N sampling period (min 1).
	SampleN int

	seed    int64
	region  string
	ring    []Event
	head    int // next write slot
	size    int // occupied slots
	dropped uint64
	written uint64
	sinks   []Sink
	err     error
}

// DefaultRingCap bounds the tracer's in-flight event memory: one
// interval of sampled events rarely approaches it, and overflow drops
// the oldest events (counted in Dropped) rather than growing.
const DefaultRingCap = 1 << 16

// NewTracer returns a tracer with the given sampling seed and period.
// ringCap <= 0 selects DefaultRingCap.
func NewTracer(seed int64, sampleN, ringCap int) *Tracer {
	if sampleN < 1 {
		sampleN = 1
	}
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Tracer{SampleN: sampleN, seed: seed, ring: make([]Event, ringCap)}
}

// AddSink attaches an export sink; repeat for several.
func (t *Tracer) AddSink(s Sink) { t.sinks = append(t.sinks, s) }

// SetRegion labels every event this tracer ingests from now on with
// the given region name (one interned string — no per-event
// allocation). Multi-region replays give each region's tracer its
// region; single-region runs leave it empty, and their trace bytes are
// unchanged.
func (t *Tracer) SetRegion(region string) { t.region = region }

// splitmix64 is the avalanche mixer behind the sampling hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// streamSeed derives the per-(interval, model) sampling stream a
// ShardBuf is armed with.
func (t *Tracer) streamSeed(interval int, modelHash int64) uint64 {
	return splitmix64(splitmix64(uint64(t.seed)^uint64(interval)) ^ uint64(modelHash))
}

// sampledIn reports whether the query with the given per-stream index
// is traced. Membership is a pure function of (seed, interval, model,
// index): every replay of the same spec samples the same queries, and
// no shard layout can change the set.
func sampledIn(stream uint64, queryID int64, n int) bool {
	if n <= 1 {
		return true
	}
	return splitmix64(stream^uint64(queryID))%uint64(n) == 0
}

// Ingest moves one shard buffer's events into the ring. Called on the
// replay goroutine in deterministic shard order. A full ring drains to
// the sinks mid-ingest (order-preserving — everything runs on the
// replay goroutine), so no event is lost as long as a sink is
// attached; with no sinks the oldest events are overwritten (and
// counted in Dropped), never the newest — a truncated trace keeps its
// most recent window.
func (t *Tracer) Ingest(evs []Event) {
	for i := range evs {
		if t.size == len(t.ring) {
			if len(t.sinks) > 0 {
				t.Flush()
			} else {
				// Overwrite the oldest slot.
				t.dropped++
				t.size--
			}
		}
		t.ring[t.head] = evs[i]
		if t.region != "" {
			t.ring[t.head].Region = t.region
		}
		t.head = (t.head + 1) % len(t.ring)
		t.size++
	}
}

// Flush drains the ring to every sink in FIFO order. The engine calls
// it once per replayed interval, so sinks see a live stream rather
// than an end-of-run dump.
func (t *Tracer) Flush() {
	if t.size == 0 {
		return
	}
	start := (t.head - t.size + len(t.ring)) % len(t.ring)
	flushSeg := func(seg []Event) {
		for _, s := range t.sinks {
			if err := s.WriteEvents(seg); err != nil && t.err == nil {
				t.err = err
			}
		}
		t.written += uint64(len(seg))
	}
	if start+t.size <= len(t.ring) {
		flushSeg(t.ring[start : start+t.size])
	} else {
		flushSeg(t.ring[start:])
		flushSeg(t.ring[:t.head])
	}
	t.size = 0
}

// Close flushes the ring and closes every sink, returning the first
// error any write or close produced.
func (t *Tracer) Close() error {
	t.Flush()
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// Dropped returns how many events the ring overwrote before they
// reached a sink (0 in any healthy run; non-zero means the ring is
// undersized for the sampling rate).
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Written returns how many events reached the sinks.
func (t *Tracer) Written() uint64 { return t.written }

// ShardBuf is the per-shard staging buffer: exactly one replay shard
// appends to it during an interval (no locks, backing array reused
// across intervals), and the engine drains every shard's buffer into
// the tracer in deterministic shard order afterwards. Arm binds the
// buffer to its (interval, model) sampling stream; Sampled answers the
// per-query membership test in a few arithmetic operations, which is
// what keeps the sampling-off and unsampled-query cost negligible on
// the replay hot path.
type ShardBuf struct {
	evs      []Event
	stream   uint64
	sampleN  int
	interval int32
	model    string
}

// Arm re-binds the buffer for one interval's shard: the sampling
// stream, the interval tag and the model label stamped on every event.
func (b *ShardBuf) Arm(t *Tracer, interval int, model string, modelHash int64) {
	b.evs = b.evs[:0]
	b.stream = t.streamSeed(interval, modelHash)
	b.sampleN = t.SampleN
	b.interval = int32(interval)
	b.model = model
}

// Sampled reports whether the query is in the trace sample.
func (b *ShardBuf) Sampled(queryID int64) bool {
	return sampledIn(b.stream, queryID, b.sampleN)
}

// Emit appends one event, stamping the buffer's interval and model.
// The returned pointer is valid until the next Emit or Arm — callers
// fill kind-specific fields in place (pooled records, no copies).
func (b *ShardBuf) Emit(kind Kind, queryID int64, timeS float64) *Event {
	b.evs = append(b.evs, Event{
		Interval: b.interval,
		Kind:     kind,
		Instance: -1,
		Query:    queryID,
		TimeS:    timeS,
		Model:    b.model,
	})
	return &b.evs[len(b.evs)-1]
}

// Events returns the staged events for draining.
func (b *ShardBuf) Events() []Event { return b.evs }

// Len returns the number of staged events.
func (b *ShardBuf) Len() int { return len(b.evs) }
