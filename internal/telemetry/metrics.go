package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"hercules/internal/stats"
)

// Counter is a monotonically increasing metric (queries routed, events
// traced). Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric (active servers, provisioned kW). Safe
// for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Value returns the most recently set value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramMetric is a streaming distribution metric backed by a
// mergeable relative-error quantile sketch (stats.Sketch): constant
// memory per dynamic-range decade, any quantile on demand, never a
// buffered sample. Safe for concurrent use.
type HistogramMetric struct {
	mu sync.Mutex
	sk stats.Sketch
}

// Observe records one observation.
func (h *HistogramMetric) Observe(x float64) {
	h.mu.Lock()
	h.sk.Add(x)
	h.mu.Unlock()
}

// Quantile returns the p-th percentile (p in [0, 100]) within the
// sketch's relative-error bound.
func (h *HistogramMetric) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sk.Quantile(p)
}

// Count returns the number of observations.
func (h *HistogramMetric) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sk.Count()
}

// Merge folds another sketch into the histogram (per-shard sketches
// folding into a run-wide metric).
func (h *HistogramMetric) Merge(sk *stats.Sketch) {
	h.mu.Lock()
	h.sk.Merge(sk)
	h.mu.Unlock()
}

// snapshot summarizes the distribution under the registry lock.
func (h *HistogramMetric) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count: h.sk.Count(),
		Mean:  h.sk.Mean(),
		P50:   h.sk.Quantile(50),
		P95:   h.sk.Quantile(95),
		P99:   h.sk.Quantile(99),
		Max:   h.sk.Quantile(100),
	}
}

// Registry is the process's streaming metrics namespace: counters,
// gauges and sketch-backed histograms created (or found) by name.
// Handles are stable — look up once, update on the hot path with no
// map access. Safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	hists map[string]*HistogramMetric
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		gaugs: make(map[string]*Gauge),
		hists: make(map[string]*HistogramMetric),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaugs[name]
	if !ok {
		g = &Gauge{}
		r.gaugs[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the default sketch accuracy (stats.DefaultSketchAlpha).
func (r *Registry) Histogram(name string) *HistogramMetric {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &HistogramMetric{}
		h.sk.Init(stats.DefaultSketchAlpha)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's summary in a Snapshot.
type HistogramSnapshot struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot is a point-in-time, JSON-serializable view of every metric,
// with deterministically ordered names.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Names returns every metric name in the snapshot, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{}
	if len(r.ctrs) > 0 {
		snap.Counters = make(map[string]int64, len(r.ctrs))
		for n, c := range r.ctrs {
			snap.Counters[n] = c.Value()
		}
	}
	if len(r.gaugs) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gaugs))
		for n, g := range r.gaugs {
			snap.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			snap.Histograms[n] = h.snapshot()
		}
	}
	return snap
}
