package fleet

import (
	"math"
	"sort"
)

// RegionSignal is what a geo policy sees of one region at an interval
// boundary: its name, the load its home users offer, an optimistic
// capacity estimate of its current fleet (full fleet at calibrated
// QPS, net of scenario kills and derates), and whether the region is
// blacked out this interval.
type RegionSignal struct {
	Name        string
	OfferedQPS  float64
	CapacityQPS float64
	Blackout    bool
}

// GeoSignal is the fleet-wide snapshot a geo policy routes on: one
// RegionSignal per region (in Spec.Regions order) and the symmetric
// inter-region RTT matrix in seconds (RTTS[i][j] is the extra latency
// a query from region i's users pays when served by region j).
type GeoSignal struct {
	Interval int
	Regions  []RegionSignal
	RTTS     [][]float64
}

// GeoPolicy decides, once per interval, what fraction of each region's
// home load to route to each other region. Route returns a square
// matrix out[src][dst]: the fraction of src's offered load sent to
// dst (diagonal entries are ignored; the engine clamps rows to [0, 1]
// total and keeps the remainder local). Policies are registered by
// name via RegisterGeoPolicy and selected by Spec.Geo.
type GeoPolicy interface {
	Name() string
	Route(sig GeoSignal) [][]float64
}

// GeoLocal is the local-only policy: every region serves (or drops)
// its own traffic. With it, a multi-region day replays each region
// byte-identically to that region running alone.
const GeoLocal = "local"

// GeoSpill is the overflow-spill policy: a region whose offered load
// exceeds spillTriggerFrac of its capacity — or that is blacked out
// entirely — sends the excess to remote regions with headroom,
// nearest (lowest RTT) first.
const GeoSpill = "spill"

// spillTriggerFrac is the utilization above which a region starts
// spilling, and spillHeadroomFrac the utilization up to which a
// region accepts spill. The gap keeps the exchange from oscillating:
// a region only exports load it demonstrably cannot serve, and only
// imports what leaves it safely below its own trigger.
const (
	spillTriggerFrac  = 0.9
	spillHeadroomFrac = 0.85
)

func init() {
	RegisterGeoPolicy(GeoLocal, func() GeoPolicy { return localGeo{} })
	RegisterGeoPolicy(GeoSpill, func() GeoPolicy { return spillGeo{} })
}

type localGeo struct{}

func (localGeo) Name() string { return GeoLocal }

func (localGeo) Route(sig GeoSignal) [][]float64 {
	out := make([][]float64, len(sig.Regions))
	for i := range out {
		out[i] = make([]float64, len(sig.Regions))
	}
	return out
}

type spillGeo struct{}

func (spillGeo) Name() string { return GeoSpill }

func (spillGeo) Route(sig GeoSignal) [][]float64 {
	n := len(sig.Regions)
	out := make([][]float64, n)
	head := make([]float64, n)
	for j, r := range sig.Regions {
		out[j] = make([]float64, n)
		if r.Blackout {
			continue // a dead region accepts nothing
		}
		head[j] = math.Max(0, r.CapacityQPS*spillHeadroomFrac-r.OfferedQPS)
	}
	order := make([]int, n)
	for src, r := range sig.Regions {
		if r.OfferedQPS <= 0 {
			continue
		}
		excess := r.OfferedQPS - r.CapacityQPS*spillTriggerFrac
		if r.Blackout {
			excess = r.OfferedQPS // evacuate everything
		}
		if excess <= 0 {
			continue
		}
		// Fill nearest survivors first (ties broken by region order, so
		// the routing is deterministic).
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return sig.RTTS[src][order[a]] < sig.RTTS[src][order[b]]
		})
		for _, dst := range order {
			if dst == src || head[dst] <= 0 || excess <= 0 {
				continue
			}
			take := math.Min(excess, head[dst])
			out[src][dst] = take / r.OfferedQPS
			head[dst] -= take
			excess -= take
		}
	}
	return out
}

// remoteStreamSeed derives the per-(interval, model) remote-origin
// decision stream, the geo analogue of cacheStreamSeed: which queries
// of a region's replayed slice are the spilled-in remote ones is a
// pure function of (seed, interval, model, query ID), independent of
// shard layout and scheduling.
func remoteStreamSeed(seed int64, interval int, modelHash int64) uint64 {
	return splitmix64(splitmix64(uint64(seed)^0x6E00B177^uint64(interval)) ^ uint64(modelHash))
}
