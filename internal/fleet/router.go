package fleet

import (
	"math/rand"
	"strings"

	"hercules/internal/telemetry"
)

// Names of the built-in routing policies. A router is selected by its
// registered name (Spec.Router, ParseRouter, RouterFactory); these
// constants exist so in-repo callers don't scatter string literals.
const (
	// RoundRobin cycles through the model's instances regardless of
	// state — the heterogeneity- and load-oblivious baseline.
	RoundRobin = "rr"
	// LeastOutstanding picks the instance with the fewest outstanding
	// queries (full scan; the classic least-connections balancer).
	LeastOutstanding = "least"
	// PowerOfTwo samples two random instances and keeps the one with
	// fewer outstanding queries (Mitzenmacher's power of two choices):
	// nearly least-outstanding tails at O(1) cost.
	PowerOfTwo = "p2c"
	// WeightedHetero is the heterogeneity-aware policy: it minimizes
	// (outstanding+1)/weight where weight is the profiled capacity QPS
	// of the instance's (server type, model) pair — scaled by the
	// batched saturation gain when dynamic batching is enabled, so that
	// types whose batches amortize well (accelerators) absorb more
	// in-flight queries — and a V100 server legitimately holds many
	// more outstanding queries than a small CPU node before it is
	// considered loaded.
	WeightedHetero = "hetero"
)

// AllRouters lists the built-in routing policies in presentation
// order. RouterNames() is the full registry (sorted), including any
// policies registered outside this package.
var AllRouters = []string{RoundRobin, LeastOutstanding, PowerOfTwo, WeightedHetero}

func init() {
	RegisterRouter(RoundRobin, func() Router { return &roundRobin{} })
	RegisterRouter(LeastOutstanding, func() Router { return leastOutstanding{} })
	RegisterRouter(PowerOfTwo, func() Router { return powerOfTwo{} })
	RegisterRouter(WeightedHetero, func() Router { return weightedHetero{} })
}

// routerAliases maps accepted long spellings to registered names.
var routerAliases = map[string]string{
	"round-robin":         RoundRobin,
	"roundrobin":          RoundRobin,
	"least-outstanding":   LeastOutstanding,
	"lor":                 LeastOutstanding,
	"power-of-two":        PowerOfTwo,
	"poweroftwo":          PowerOfTwo,
	"weighted":            WeightedHetero,
	"heterogeneity-aware": WeightedHetero,
}

// ParseRouter normalizes a router name (case, whitespace, the long
// aliases of the built-ins) and validates it against the registry,
// returning the canonical registered name. The error on an unknown
// name lists every registered router.
func ParseRouter(s string) (string, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	if canon, ok := routerAliases[name]; ok {
		name = canon
	}
	if _, err := RouterFactory(name); err != nil {
		return "", err
	}
	return name, nil
}

// Router picks a destination among a model's instances for each query.
// Implementations may keep per-shard state (e.g. a round-robin cursor)
// and are not safe for concurrent use: the engine instantiates a fresh
// Router per replay shard through the registered factory.
type Router interface {
	Name() string
	// Pick returns the index of the chosen instance. The slice is
	// non-empty and all instances serve the query's model.
	Pick(insts []*Instance, now float64, rng *rand.Rand) int
}

// TracedRouter is the optional tracing extension of Router: PickTraced
// must choose exactly the instance Pick would — same RNG draws, same
// state reads in the same order, same cursor advances — while filling
// the route event's candidate fields (Cand, NCand). The engine calls
// it only for queries in the trace sample, so recording costs nothing
// on the untraced path; routers that do not implement it still trace,
// with only the chosen instance recorded as a candidate.
//
// All four built-in routers implement TracedRouter. The byte-identity
// guarantee (traced replay == untraced replay, parallel == sequential)
// rests on the "identical decision" contract, which
// TestTracedRoutersMatchUntraced pins per router.
type TracedRouter interface {
	Router
	// PickTraced is Pick plus candidate recording into ev.
	PickTraced(insts []*Instance, now float64, rng *rand.Rand, ev *telemetry.Event) int
}

// recordScan fills a route event's candidate fields for a full-scan
// router: the first MaxCandidates instance IDs, with NCand reporting
// the total considered (saturating at 255).
func recordScan(insts []*Instance, ev *telemetry.Event) {
	n := len(insts)
	for j := 0; j < n && j < telemetry.MaxCandidates; j++ {
		ev.Cand[j] = int32(insts[j].ID)
	}
	if n > 255 {
		n = 255
	}
	ev.NCand = uint8(n)
}

type roundRobin struct{ next int }

func (r *roundRobin) Name() string { return RoundRobin }

func (r *roundRobin) Pick(insts []*Instance, now float64, rng *rand.Rand) int {
	i := r.next % len(insts)
	r.next++
	return i
}

// PickTraced implements TracedRouter: round robin considers exactly
// the instance the cursor lands on.
func (r *roundRobin) PickTraced(insts []*Instance, now float64, rng *rand.Rand, ev *telemetry.Event) int {
	i := r.Pick(insts, now, rng)
	ev.Cand[0] = int32(insts[i].ID)
	ev.NCand = 1
	return i
}

type leastOutstanding struct{}

func (leastOutstanding) Name() string { return LeastOutstanding }

func (leastOutstanding) Pick(insts []*Instance, now float64, rng *rand.Rand) int {
	best, bestOut := 0, insts[0].Outstanding(now)
	for i := 1; i < len(insts); i++ {
		if out := insts[i].Outstanding(now); out < bestOut {
			best, bestOut = i, out
		}
	}
	return best
}

// PickTraced implements TracedRouter. Candidate recording reads only
// instance IDs, so the Outstanding scan below happens exactly as in
// Pick (Outstanding can launch a due batch — the inspection order is
// part of the replay's determinism contract).
func (r leastOutstanding) PickTraced(insts []*Instance, now float64, rng *rand.Rand, ev *telemetry.Event) int {
	recordScan(insts, ev)
	return r.Pick(insts, now, rng)
}

type powerOfTwo struct{}

func (powerOfTwo) Name() string { return PowerOfTwo }

func (powerOfTwo) Pick(insts []*Instance, now float64, rng *rand.Rand) int {
	n := len(insts)
	if n == 1 {
		return 0
	}
	i := rng.Intn(n)
	j := rng.Intn(n - 1)
	if j >= i {
		j++
	}
	if insts[j].Outstanding(now) < insts[i].Outstanding(now) {
		return j
	}
	return i
}

// PickTraced implements TracedRouter: the same two RNG draws and the
// same Outstanding inspection order (j before i, matching Pick's
// left-to-right comparison) as the untraced decision, with both
// sampled candidates recorded.
func (powerOfTwo) PickTraced(insts []*Instance, now float64, rng *rand.Rand, ev *telemetry.Event) int {
	n := len(insts)
	if n == 1 {
		ev.Cand[0] = int32(insts[0].ID)
		ev.NCand = 1
		return 0
	}
	i := rng.Intn(n)
	j := rng.Intn(n - 1)
	if j >= i {
		j++
	}
	ev.Cand[0] = int32(insts[i].ID)
	ev.Cand[1] = int32(insts[j].ID)
	ev.NCand = 2
	if insts[j].Outstanding(now) < insts[i].Outstanding(now) {
		return j
	}
	return i
}

type weightedHetero struct{}

func (weightedHetero) Name() string { return WeightedHetero }

func (weightedHetero) Pick(insts []*Instance, now float64, rng *rand.Rand) int {
	best, bestLoad := 0, heteroLoad(insts[0], now)
	for i := 1; i < len(insts); i++ {
		if l := heteroLoad(insts[i], now); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// PickTraced implements TracedRouter (see leastOutstanding.PickTraced
// for the inspection-order caveat).
func (r weightedHetero) PickTraced(insts []*Instance, now float64, rng *rand.Rand, ev *telemetry.Event) int {
	recordScan(insts, ev)
	return r.Pick(insts, now, rng)
}

// heteroLoad is the capacity-normalized congestion of an instance: how
// many "capacity units" the next query would wait behind (Outstanding
// counts a forming batch's members too, so a batching instance's
// queued-but-undispatched work is visible to every state-aware
// policy). Instances without a positive profiled weight fall back to
// weight 1.
func heteroLoad(in *Instance, now float64) float64 {
	w := in.Weight
	if w <= 0 {
		w = 1
	}
	return float64(in.Outstanding(now)+1) / w
}
