package fleet

import (
	"fmt"
	"math/rand"
	"strings"
)

// RouterKind selects a per-query routing policy. A fresh Router (with
// its own mutable state) is instantiated per replay shard via New.
type RouterKind int

// Routing policies.
const (
	// RoundRobin cycles through the model's instances regardless of
	// state — the heterogeneity- and load-oblivious baseline.
	RoundRobin RouterKind = iota
	// LeastOutstanding picks the instance with the fewest outstanding
	// queries (full scan; the classic least-connections balancer).
	LeastOutstanding
	// PowerOfTwo samples two random instances and keeps the one with
	// fewer outstanding queries (Mitzenmacher's power of two choices):
	// nearly least-outstanding tails at O(1) cost.
	PowerOfTwo
	// WeightedHetero is the heterogeneity-aware policy: it minimizes
	// (outstanding+1)/weight where weight is the profiled capacity QPS
	// of the instance's (server type, model) pair — scaled by the
	// batched saturation gain when dynamic batching is enabled, so that
	// types whose batches amortize well (accelerators) absorb more
	// in-flight queries — and a V100 server legitimately holds many
	// more outstanding queries than a small CPU node before it is
	// considered loaded.
	WeightedHetero
)

// AllRouters lists every routing policy in presentation order.
var AllRouters = []RouterKind{RoundRobin, LeastOutstanding, PowerOfTwo, WeightedHetero}

// String implements fmt.Stringer.
func (k RouterKind) String() string {
	switch k {
	case RoundRobin:
		return "rr"
	case LeastOutstanding:
		return "least"
	case PowerOfTwo:
		return "p2c"
	case WeightedHetero:
		return "hetero"
	}
	return fmt.Sprintf("RouterKind(%d)", int(k))
}

// ParseRouter maps a policy name to its kind.
func ParseRouter(s string) (RouterKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "rr", "round-robin", "roundrobin":
		return RoundRobin, nil
	case "least", "least-outstanding", "lor":
		return LeastOutstanding, nil
	case "p2c", "power-of-two", "poweroftwo":
		return PowerOfTwo, nil
	case "hetero", "weighted", "heterogeneity-aware":
		return WeightedHetero, nil
	}
	return 0, fmt.Errorf("fleet: unknown router %q", s)
}

// Router picks a destination among a model's instances for each query.
// Implementations may keep per-shard state (e.g. a round-robin cursor)
// and are not safe for concurrent use.
type Router interface {
	Name() string
	// Pick returns the index of the chosen instance. The slice is
	// non-empty and all instances serve the query's model.
	Pick(insts []*Instance, now float64, rng *rand.Rand) int
}

// New instantiates a fresh router of this kind.
func (k RouterKind) New() Router {
	switch k {
	case LeastOutstanding:
		return &leastOutstanding{}
	case PowerOfTwo:
		return &powerOfTwo{}
	case WeightedHetero:
		return &weightedHetero{}
	default:
		return &roundRobin{}
	}
}

type roundRobin struct{ next int }

func (r *roundRobin) Name() string { return RoundRobin.String() }

func (r *roundRobin) Pick(insts []*Instance, now float64, rng *rand.Rand) int {
	i := r.next % len(insts)
	r.next++
	return i
}

type leastOutstanding struct{}

func (leastOutstanding) Name() string { return LeastOutstanding.String() }

func (leastOutstanding) Pick(insts []*Instance, now float64, rng *rand.Rand) int {
	best, bestOut := 0, insts[0].Outstanding(now)
	for i := 1; i < len(insts); i++ {
		if out := insts[i].Outstanding(now); out < bestOut {
			best, bestOut = i, out
		}
	}
	return best
}

type powerOfTwo struct{}

func (powerOfTwo) Name() string { return PowerOfTwo.String() }

func (powerOfTwo) Pick(insts []*Instance, now float64, rng *rand.Rand) int {
	n := len(insts)
	if n == 1 {
		return 0
	}
	i := rng.Intn(n)
	j := rng.Intn(n - 1)
	if j >= i {
		j++
	}
	if insts[j].Outstanding(now) < insts[i].Outstanding(now) {
		return j
	}
	return i
}

type weightedHetero struct{}

func (weightedHetero) Name() string { return WeightedHetero.String() }

func (weightedHetero) Pick(insts []*Instance, now float64, rng *rand.Rand) int {
	best, bestLoad := 0, heteroLoad(insts[0], now)
	for i := 1; i < len(insts); i++ {
		if l := heteroLoad(insts[i], now); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// heteroLoad is the capacity-normalized congestion of an instance: how
// many "capacity units" the next query would wait behind (Outstanding
// counts a forming batch's members too, so a batching instance's
// queued-but-undispatched work is visible to every state-aware
// policy). Instances without a positive profiled weight fall back to
// weight 1.
func heteroLoad(in *Instance, now float64) float64 {
	w := in.Weight
	if w <= 0 {
		w = 1
	}
	return float64(in.Outstanding(now)+1) / w
}
