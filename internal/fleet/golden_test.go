package fleet

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"hercules/internal/cluster"
)

// The golden replays in testdata/ were recorded by the pre-redesign
// engine — the enum-based RouterKind path, before the policy registry,
// Spec construction and Observer hooks existed. These tests are the
// refactor's safety net: a registry-constructed engine must reproduce
// those replays bit for bit (sequential and parallel, unbatched and
// batched), proving the API redesign moved only the wiring, never the
// simulation. Regenerate the goldens only when the replay semantics
// change deliberately (document why in the commit).

// constBatchSource is a batching-capable stub: constant 5 ms solo
// service with an amortization curve steep enough that the engine
// derives batch cap 4 under RMC1's 20 ms SLA.
type constBatchSource struct{}

func (constBatchSource) ServiceS(st, m string, size int, scale float64) float64 { return 0.005 }

func (constBatchSource) PairBatchEff(st, m string, maxBatch int) []float64 {
	eff := []float64{1, 1, 0.6, 0.45, 0.35}
	if maxBatch+1 < len(eff) {
		return eff[:maxBatch+1]
	}
	return eff
}

// goldenWorkloads is the day both goldens replay.
func goldenWorkloads() []cluster.Workload {
	return []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(800, 1200, 1600, 2000, 1600, 1200, 800, 600),
	}}
}

// loadGolden reads a recorded pre-redesign DayResult.
func loadGolden(t *testing.T, path string) DayResult {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want DayResult
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// stripPostRedesign zeroes the DayResult fields that did not exist
// when the goldens were recorded (the policy names the redesign added
// to the report, and the boosted-interval count the multi-region
// merge added). Everything the replay computes must still match.
func stripPostRedesign(res DayResult) DayResult {
	res.Scaler, res.Admission = "", ""
	res.BoostedIntervals = 0
	return res
}

// TestGoldenReplayUnbatched: a registry-constructed engine (Spec →
// NewEngine → registry router + "breach" scaler) must replay the
// golden day byte-identically to the pre-redesign enum engine, on the
// sequential path and on genuinely sharded parallel paths.
func TestGoldenReplayUnbatched(t *testing.T) {
	want := loadGolden(t, "testdata/golden_day.json")
	for _, cfg := range []struct {
		name       string
		shards     int
		sequential bool
	}{
		{"seq-4", 4, true},
		{"par-4", 4, false},
		{"par-8", 8, false},
	} {
		opts := testOpts()
		opts.Shards = cfg.shards
		opts.Sequential = cfg.sequential
		got, err := testEngine(PowerOfTwo, opts).RunDay(goldenWorkloads())
		if err != nil {
			t.Fatal(err)
		}
		if cfg.shards == 8 {
			// The golden was recorded at 4 shards; 8 shards legitimately
			// redistributes queries. Only the determinism claim applies:
			// parallel must equal sequential at the same shard count.
			optsSeq := opts
			optsSeq.Sequential = true
			seq, err := testEngine(PowerOfTwo, optsSeq).RunDay(goldenWorkloads())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, seq) {
				t.Errorf("%s: parallel diverged from sequential", cfg.name)
			}
			continue
		}
		if !reflect.DeepEqual(stripPostRedesign(got), want) {
			t.Errorf("%s: registry-built engine diverged from the pre-redesign golden replay", cfg.name)
		}
	}
}

// TestGoldenReplayBatched extends the byte-identity claim to the
// dynamic-batching replay loop (hetero router, batch cap 4).
func TestGoldenReplayBatched(t *testing.T) {
	want := loadGolden(t, "testdata/golden_day_batched.json")
	for _, sequential := range []bool{true, false} {
		opts := testOpts()
		opts.Shards = 4
		opts.MaxBatch = 4
		opts.BatchWaitS = 0.004
		opts.Sequential = sequential
		e := testEngine(WeightedHetero, opts)
		e.Service = constBatchSource{}
		got, err := e.RunDay(goldenWorkloads())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripPostRedesign(got), want) {
			t.Errorf("sequential=%v: batched registry-built engine diverged from the pre-redesign golden",
				sequential)
		}
	}
}

// TestGoldenSpecJSONRoundTrip: marshalling the run's Spec to JSON and
// rebuilding the engine from the decoded bytes must reproduce the same
// replay — the guarantee that a saved spec file replays what the
// in-process run measured.
func TestGoldenSpecJSONRoundTrip(t *testing.T) {
	opts := testOpts()
	opts.Shards = 4
	// HeadroomR 0.05: the cluster-layer headroom the golden was
	// recorded at (see testEngine).
	spec := Spec{Router: PowerOfTwo, Policy: "greedy", Models: []string{"DLRM-RMC1"},
		HeadroomR: 0.05, Options: opts}
	build := func(s Spec) *Engine {
		e, err := NewEngine(s, WithFleet(testFleet()), WithTable(testTable()),
			WithService(svcFunc(func(st, m string, size int, scale float64) float64 { return 0.005 })))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	direct, err := build(spec).RunDay(goldenWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Spec
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := build(decoded).RunDay(goldenWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, rebuilt) {
		t.Fatal("spec JSON round trip changed the replay")
	}
	if !reflect.DeepEqual(stripPostRedesign(direct), loadGolden(t, "testdata/golden_day.json")) {
		t.Fatal("spec-driven replay diverged from the pre-redesign golden")
	}
}
