package fleet

import (
	"math"
	"reflect"
	"testing"

	"hercules/internal/cluster"
)

// cacheDay is a flat six-interval day (1 hour at 10-minute steps): the
// cache tests need room for a mid-day flush storm between scheduled
// re-provisions (every 4 intervals → boundaries at 0 and 4).
func cacheDay() []cluster.Workload {
	return []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(800, 800, 800, 800, 800, 800),
	}}
}

func runCacheDay(t *testing.T, cache CacheSpec, scenarioJSON string, mutate func(*Options)) DayResult {
	t.Helper()
	opts := testOpts()
	opts.Shards = 4
	if mutate != nil {
		mutate(&opts)
	}
	spec := replaySpec(PowerOfTwo, opts)
	spec.Cache = cache
	if scenarioJSON != "" {
		spec.Scenario = scenarioJSON
	}
	res, err := newReplayEngine(t, spec).RunDay(cacheDay())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCacheDisabledIsZeroCost: the zero CacheSpec is off — no hit
// accounting, no warmth state in the interval stream, and a DayResult
// identical to an engine that never heard of the tier (the committed
// golden_day.json, replayed by the golden tests with Cache zero,
// already pins this bit for bit).
func TestCacheDisabledIsZeroCost(t *testing.T) {
	if (CacheSpec{}).Enabled() {
		t.Fatal("zero CacheSpec must be disabled")
	}
	if (CacheSpec{PerModel: map[string]float64{"M": 0}}).Enabled() {
		t.Fatal("all-zero per-model rates must stay disabled")
	}
	if !(CacheSpec{PerModel: map[string]float64{"M": 0.5}}).Enabled() {
		t.Fatal("per-model rate alone must enable the tier")
	}
	res := runCacheDay(t, CacheSpec{}, "", nil)
	if res.TotalCacheHits != 0 || res.CacheHitRate != 0 {
		t.Errorf("disabled cache recorded hits: %d (rate %g)", res.TotalCacheHits, res.CacheHitRate)
	}
	for _, ist := range res.Steps {
		if ist.CacheWarmth != nil || ist.CacheHits != 0 {
			t.Fatalf("interval %d carries cache state with the tier disabled", ist.Index)
		}
	}
}

// TestCacheParallelMatchesSequential: the hit decision is a pure
// function of (seed, interval, model, query ID) — shard layout and
// scheduling must not move a single query across the hit/miss line.
func TestCacheParallelMatchesSequential(t *testing.T) {
	seq := runCacheDay(t, CacheSpec{HitRate: 0.8}, "", func(o *Options) { o.Sequential = true })
	par := runCacheDay(t, CacheSpec{HitRate: 0.8}, "", nil)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("cache-enabled parallel replay diverged from sequential")
	}
	par8 := runCacheDay(t, CacheSpec{HitRate: 0.8}, "", func(o *Options) { o.Shards = 8 })
	if par8.TotalCacheHits != par.TotalCacheHits {
		t.Errorf("shard cap changed the hit set: %d vs %d hits",
			par8.TotalCacheHits, par.TotalCacheHits)
	}
}

// TestCacheSteadyStateHitRate: a warm cache realizes its configured
// asymptotic hit rate (Bernoulli draws over thousands of queries), the
// hits complete at cache latency (pulling the median far below the 5 ms
// service floor), and the backends are provisioned net of the hit rate
// (fewer servers than the cache-less fleet).
func TestCacheSteadyStateHitRate(t *testing.T) {
	base := runCacheDay(t, CacheSpec{}, "", nil)
	res := runCacheDay(t, CacheSpec{HitRate: 0.8}, "", nil)
	if math.Abs(res.CacheHitRate-0.8) > 0.03 {
		t.Errorf("realized hit rate %.3f, want ~0.80", res.CacheHitRate)
	}
	for _, ist := range res.Steps {
		if w := ist.CacheWarmth["DLRM-RMC1"]; w < 0.99 {
			t.Errorf("interval %d: steady-state warmth %.3f, want ~1", ist.Index, w)
		}
		if ist.P50MS >= 5 {
			t.Errorf("interval %d: p50 %.2f ms — cache hits (0.3 ms) should dominate the median", ist.Index, ist.P50MS)
		}
		if ist.ActiveServers >= base.Steps[ist.Index].ActiveServers {
			t.Errorf("interval %d: cached fleet %d servers, cache-less %d — misses should provision leaner",
				ist.Index, ist.ActiveServers, base.Steps[ist.Index].ActiveServers)
		}
	}
	if res.TotalDrops > 0 {
		t.Errorf("steady-state cached day dropped %d queries", res.TotalDrops)
	}
}

// TestCacheFlushStorm: a scenario flush mid-window guts the hit rate,
// and because the backends were provisioned against the lagged
// warm-cache miss rate, the miss flood lands on a fleet a fraction of
// the needed size — drops and tail latency must move, measurably,
// until re-provisioning catches up. This is the cache-stampede
// experiment FigCache sweeps.
func TestCacheFlushStorm(t *testing.T) {
	// Flush 90% of warmth every interval across intervals 2-4
	// (midpoints 0.417h-0.75h); re-provisions happen at 0 and 4.
	const storm = `{"name":"flushstorm","events":[
		{"kind":"flush","start_h":0.35,"end_h":0.8,"frac":0.9}]}`
	base := runCacheDay(t, CacheSpec{HitRate: 0.8}, "", nil)
	res := runCacheDay(t, CacheSpec{HitRate: 0.8}, storm, nil)
	if res.Scenario != "flushstorm" {
		t.Fatalf("scenario = %q", res.Scenario)
	}
	if res.CacheHitRate > base.CacheHitRate-0.1 {
		t.Errorf("storm hit rate %.3f vs baseline %.3f — flush did not move it",
			res.CacheHitRate, base.CacheHitRate)
	}
	stormIst, calmIst := res.Steps[2], res.Steps[1]
	if stormIst.CacheHitRate > calmIst.CacheHitRate-0.3 {
		t.Errorf("flushed interval hit rate %.3f vs calm %.3f",
			stormIst.CacheHitRate, calmIst.CacheHitRate)
	}
	if res.TotalDrops <= base.TotalDrops {
		t.Errorf("storm drops %d vs baseline %d — miss flood on the lean fleet must drop",
			res.TotalDrops, base.TotalDrops)
	}
	if res.MaxP99MS <= base.MaxP99MS {
		t.Errorf("storm max p99 %.2f ms vs baseline %.2f ms — tails must move",
			res.MaxP99MS, base.MaxP99MS)
	}
}

// TestCacheColdStart: ColdStart begins the day with empty caches — the
// first interval serves (almost) everything from the backends, and
// warmth (FillQueries-paced) climbs until the realized hit rate
// reaches the asymptote.
func TestCacheColdStart(t *testing.T) {
	res := runCacheDay(t, CacheSpec{HitRate: 0.8, ColdStart: true, FillQueries: 3e5}, "", nil)
	first, last := res.Steps[0], res.Steps[len(res.Steps)-1]
	if first.CacheHitRate != 0 {
		t.Errorf("cold first interval hit rate %.3f, want 0", first.CacheHitRate)
	}
	if last.CacheHitRate < 0.7 {
		t.Errorf("warmed-up hit rate %.3f, want near 0.8", last.CacheHitRate)
	}
	prev := -1.0
	for _, ist := range res.Steps {
		w := ist.CacheWarmth["DLRM-RMC1"]
		if w < prev {
			t.Errorf("interval %d: warmth %.3f fell below previous %.3f during warm-up", ist.Index, w, prev)
		}
		prev = w
	}
}

// TestCacheMixShiftRotatesWorkingSet: a scenario mix shift rotates the
// key population under the cache — only MixRetention of the warmth
// survives, so the shifted interval's hit rate dips even though no
// flush fired.
func TestCacheMixShiftRotatesWorkingSet(t *testing.T) {
	const shift = `{"name":"rotate","events":[
		{"kind":"mixshift","start_h":0.35,"end_h":0.8,"factor":1.5}]}`
	res := runCacheDay(t, CacheSpec{HitRate: 0.8, FillQueries: 3e5, MixRetention: 0.2}, shift, nil)
	calm, shifted := res.Steps[1], res.Steps[2]
	if shifted.CacheHitRate > calm.CacheHitRate-0.2 {
		t.Errorf("mix-shifted interval hit rate %.3f vs calm %.3f — rotation did not bite",
			shifted.CacheHitRate, calm.CacheHitRate)
	}
}

// TestCacheSpecDefaults pins the derived tuning: latency, fill,
// retention and curve defaults, the 0.99 asymptote clamp, and the
// per-model override.
func TestCacheSpecDefaults(t *testing.T) {
	var c CacheSpec
	if got := c.latencyS(); got != 0.3e-3 {
		t.Errorf("default latency %g s", got)
	}
	if got := c.fillQueries(); got != 2000 {
		t.Errorf("default fill %g", got)
	}
	if got := c.mixRetention(); got != 0.3 {
		t.Errorf("default retention %g", got)
	}
	c = CacheSpec{HitRate: 1.5, PerModel: map[string]float64{"B": 0.4}}
	if got := c.maxRate("A"); got != 0.99 {
		t.Errorf("asymptote clamp: %g", got)
	}
	if got := c.maxRate("B"); got != 0.4 {
		t.Errorf("per-model override: %g", got)
	}
	if got := (CacheSpec{HitRate: 0.8, Curve: 2}).rateFor("A", 0.5); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("curve 2 at warmth 0.5: %g, want 0.2", got)
	}
	if got := (CacheSpec{HitRate: 0.8, ColdStart: true}).initialWarmth(); got != 0 {
		t.Errorf("cold start warmth %g", got)
	}
}
