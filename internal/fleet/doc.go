// Package fleet is the request-level serving layer between the
// per-server simulator (internal/sim) and interval-level provisioning
// (internal/cluster): a discrete-event fleet engine that replays a
// diurnal day of Poisson query arrivals against the heterogeneous
// server fleet a cluster policy activates, with per-query routing,
// bounded per-server queues, windowed tail-latency tracking and an
// online autoscaler.
//
// The cluster layer answers "how many servers of each type does each
// workload need this interval?" from aggregate capacities; this
// package answers what actually happens to individual queries between
// re-provisioning decisions — queueing, load imbalance across a
// heterogeneous fleet, drops, and SLA-violation minutes — which
// aggregate-capacity models systematically hide. It extends the
// paper's Fig. 13 evaluation below the provisioning interval.
//
// The surface:
//
//   - Spec / NewEngine — a JSON-serializable run description (fleet,
//     models, policies by registered name, scenario, tuning) plus
//     functional options (WithTable, WithFleet, WithService,
//     WithObserver, …) for the process-local pieces a spec cannot
//     carry. Every CLI, experiment driver and example builds engines
//     this way, so a run is reproducible from one JSON document;
//   - the policy registries — RegisterRouter / RegisterScaler /
//     RegisterAdmission / RegisterGeoPolicy make routing, autoscaling,
//     admission and geo-routing policies constructible by name (one
//     generic registry underneath, so all four axes share semantics);
//     the built-ins (routers rr, least, p2c, hetero; scalers breach,
//     prop; admission deadline; geo local, spill) register themselves
//     here, and a policy registered by any other package is
//     immediately selectable by every Spec and CLI flag;
//   - Engine / RunDay — replay a day of cluster.Workload traces and
//     return per-interval and aggregate DayResult metrics;
//   - Observer — the per-interval streaming hook: RunDay pushes each
//     finalized IntervalStats through every registered observer, and
//     DayResult itself is just the built-in aggregation over the same
//     stream (hercules-fleet -ndjson is a plain observer);
//   - Router — per-query routing over a model's instance pool;
//   - Instance — one activated server as an M/G/c/(c+K) queue, with
//     optional dynamic batching (EnableBatching / Options.MaxBatch);
//   - Scaler — online autoscaling: the breach-driven Autoscaler and
//     the target-utilization ProportionalScaler ship built in;
//   - Admission — SLA-aware load shedding at the front door
//     (DeadlineAdmission sheds on the previous interval's deadline
//     overshoot); nil admits everything;
//   - CalibrateTable — a seconds-scale serving table when the full
//     Fig. 9b profiling run is too slow;
//   - ApplyScenario / Engine.Timeline — inject an internal/scenario
//     timeline (flash crowds, failures, derates, shedding, cache
//     flushes) into the replay (Spec.Scenario names one and RunDay
//     compiles it);
//   - TraceSource / LoadTrace — replay a recorded NDJSON arrival
//     trace (Spec.Trace, or WithTraceSource for an in-memory one) in
//     place of the synthetic generator; re-ingesting a day recorded
//     at trace sample 1 reproduces its DayResult byte for byte at any
//     shard count (TestRecordReplayRoundTrip pins it, FuzzTraceParse
//     holds the parser to errors-never-panics);
//   - CacheSpec (Spec.Cache) — an embedding-cache tier in front of
//     the fleet: hits resolve at the cache latency without touching a
//     router, misses route normally, and the realized hit rate tracks
//     per-model warmth state that scenario flush/mixshift events
//     degrade and misses re-warm. Provisioning sizes for the miss
//     stream using the previous interval's realized hit rate, which
//     is exactly why a flush storm hurts a warm-provisioned fleet;
//   - RegionSpec / NewMultiEngine — a Spec with a regions list becomes
//     a multi-region fleet: one engine per region (own fleet, diurnal
//     phase offset, RTT matrix), replayed in lockstep while the
//     registered GeoPolicy redistributes each interval's offered load.
//     The spill policy keeps traffic home until offered load nears
//     capacity, sheds overflow to the nearest survivor with headroom,
//     and evacuates blacked-out regions entirely; remotely served
//     queries pay the inter-region RTT and are accounted separately
//     (SpillInServed / SpillInDropped). Per-region DayResults merge
//     into the global aggregate via MergeDays (sums, max-of-max tails,
//     query-weighted mean tails — associative up to float rounding).
//     Spec.Normalize gives legacy specs one implicit region named
//     "local", and a one-region run delegates to the plain engine,
//     byte-identical to the committed goldens.
//
// Dynamic batching (Options.MaxBatch > 1) turns each instance into a
// batcher: queued queries coalesce into batches that launch when full,
// or at the formation-wait deadline once a channel frees, so batches
// grow toward the cap exactly when queues build. Batch service times
// come from a batch-dimension extension of the simulator grids: each
// pair's batching-efficiency curve is measured by simulating
// representative whole-server batch sizes (BatchSource /
// SimService.PairBatchEff), and a dispatched batch occupies min(n, c)
// channels for that makespan. The engine derives every (server type,
// model) pair's effective batch cap from its measured curve and SLA
// budget — pairs where batching loses (contended models, tight SLAs)
// keep serving unbatched — and scales the heterogeneity-aware router's
// weight to the batched saturation throughput. MaxBatch 1 preserves
// the original per-query replay bit for bit.
//
// Observability rides the replay without participating in it
// (internal/telemetry): Options.TraceSample enables the per-query
// tracer — lifecycle events (arrival, shed, route with the inspected
// candidate set, enqueue, batch, start, end, complete, drop) for a
// deterministically sampled 1-in-N of the query stream, staged in
// per-shard buffers and drained in deterministic order, so sequential
// and parallel replays emit byte-identical traces and the DayResult is
// unchanged traced or untraced. Routers expose their decision through
// TracedRouter.PickTraced, contractually identical to Pick.
// NewMetricsObserver folds the Observer stream into a
// telemetry.Registry of counters, gauges and sketch-backed histograms,
// and Options.SketchTails swaps the exact per-window latency buffers
// for mergeable quantile sketches (stats.Sketch) when days get long.
//
// Per-query service times come from the existing internal/sim cost
// model via SimService; nothing here re-implements server timing. Each
// activated server is an M/G/c/(c+K) queue whose concurrency c is
// calibrated so saturation throughput matches the profiled
// latency-bounded QPS of its (server type, model) pair.
//
// Replay is sampled: each trace interval simulates a slice of traffic
// at the interval's full arrival rate (long enough for stable tail
// estimates, capped by Options.MaxQueriesPerInterval) and extrapolates
// interval metrics from the slice. The parallel path shards each
// model's instances and query stream across a runtime.NumCPU()-sized
// worker pool; shard assignment is drawn deterministically, so
// parallel and sequential replays produce identical results.
//
// The replay loop is engineered to stay off the allocator and the
// garbage collector: instance queues are index-based float64 min-heaps
// over preallocated slices, per-pair service times are precomputed on
// a dense grid shared process-wide (SharedSimService) and resolved to
// a direct sampler per instance, and shard tasks plus merge buffers
// are pooled across intervals. Route decisions and admissions are
// zero-alloc (guarded by alloc_test.go); BENCH_fleet.json at the repo
// root records the benchmarked baseline cmd/hercules-bench gates CI
// against.
package fleet
