package fleet

import "math"

// MergeDays combines per-engine DayResults into one aggregate — the
// global view of a multi-region replay. Each field merges by its own
// algebra, audited for cross-engine correctness before the regional
// merge was built on it:
//
//   - counts, energies, carbon grams and violation minutes sum;
//   - MaxP95/MaxP99 take the max (a max of maxes is the global max);
//   - MeanP95/MeanP99 merge as query-weighted means — a plain mean of
//     per-region means would let an idle region's quiet tail dilute a
//     loaded region's, and would not be associative under uneven
//     splits;
//   - DropFrac, CacheHitRate and CarbonPerQueryG are recomputed from
//     the merged totals (never averaged: ratios of different
//     denominators);
//   - Boosted survives as BoostedIntervals (a per-interval bool has no
//     cross-engine sum; a count does);
//   - cache warmth stays per-region interval state (IntervalStats
//     .CacheWarmth): regions cache independently, so a merged scalar
//     would be fiction — the global result only aggregates hit
//     totals.
//
// String labels (router, policies, scenario) come from the first
// part; Steps are not concatenated (interval indexes would collide —
// read per-region Steps from DayResult.Regions instead). The merge is
// associative up to float rounding: MergeDays(a, b, c) equals
// MergeDays(MergeDays(a, b), c) within tolerance, which the merge
// test pins.
func MergeDays(parts ...DayResult) DayResult {
	var out DayResult
	if len(parts) == 0 {
		return out
	}
	out = parts[0]
	out.Steps = nil
	out.Regions = nil
	out.Region = "" // the merge spans regions; per-region labels live in Regions
	var wMeanP95, wMeanP99 float64
	totalQ := 0
	for i, p := range parts {
		w := float64(p.TotalQueries)
		wMeanP95 += p.MeanP95MS * w
		wMeanP99 += p.MeanP99MS * w
		totalQ += p.TotalQueries
		if i == 0 {
			continue
		}
		out.TotalQueries += p.TotalQueries
		out.TotalDrops += p.TotalDrops
		out.TotalShed += p.TotalShed
		out.TotalCacheHits += p.TotalCacheHits
		out.SLAViolationMin += p.SLAViolationMin
		out.EnergyKJ += p.EnergyKJ
		out.ProvisionedEnergyKJ += p.ProvisionedEnergyKJ
		out.TotalCarbonG += p.TotalCarbonG
		out.Reprovisions += p.Reprovisions
		out.EarlyReprovisions += p.EarlyReprovisions
		out.AutoscaleEvents += p.AutoscaleEvents
		out.BoostedIntervals += p.BoostedIntervals
		out.SpillInServed += p.SpillInServed
		out.SpillInDropped += p.SpillInDropped
		out.MaxP95MS = math.Max(out.MaxP95MS, p.MaxP95MS)
		out.MaxP99MS = math.Max(out.MaxP99MS, p.MaxP99MS)
	}
	if totalQ > 0 {
		out.MeanP95MS = wMeanP95 / float64(totalQ)
		out.MeanP99MS = wMeanP99 / float64(totalQ)
	} else {
		// No traffic anywhere: fall back to an unweighted mean so an
		// all-idle merge still reports the parts' (zero) tails.
		out.MeanP95MS, out.MeanP99MS = 0, 0
		for _, p := range parts {
			out.MeanP95MS += p.MeanP95MS / float64(len(parts))
			out.MeanP99MS += p.MeanP99MS / float64(len(parts))
		}
	}
	out.DropFrac, out.CacheHitRate = 0, 0
	if out.TotalQueries > 0 {
		out.DropFrac = float64(out.TotalDrops) / float64(out.TotalQueries)
		out.CacheHitRate = float64(out.TotalCacheHits) / float64(out.TotalQueries)
	}
	out.CarbonPerQueryG = 0
	if served := out.TotalQueries - out.TotalDrops; served > 0 {
		out.CarbonPerQueryG = out.TotalCarbonG / float64(served)
	}
	return out
}
