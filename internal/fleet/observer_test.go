package fleet

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"hercules/internal/cluster"
	"hercules/internal/telemetry"
)

// Observer contract tests: the engine delivers every interval to every
// registered observer, synchronously, in registration order, from the
// replay goroutine — so N observers see byte-identical ordered streams
// and none of them needs its own locking against the engine. The suite
// runs under -race in CI, which is what makes the "single delivering
// goroutine" claim checkable rather than aspirational.

func observerWorkloads() []cluster.Workload {
	return []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(400, 900, 1400, 900),
	}}
}

// TestObserversSeeIdenticalStreams: every registered observer receives
// the same intervals in the same order, and within one interval the
// observers fire in registration order.
func TestObserversSeeIdenticalStreams(t *testing.T) {
	const n = 4
	streams := make([][]IntervalStats, n)
	order := make([]int, 0, n*8)
	e := testEngine(PowerOfTwo, testOpts())
	for i := 0; i < n; i++ {
		i := i
		e.Observers = append(e.Observers, ObserverFunc(func(ist IntervalStats) {
			streams[i] = append(streams[i], ist)
			order = append(order, i)
		}))
	}
	res, err := e.RunDay(observerWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(streams[i], streams[0]) {
			t.Fatalf("observer %d saw a different stream than observer 0", i)
		}
	}
	if !reflect.DeepEqual(streams[0], res.Steps) {
		t.Fatal("observer stream must equal DayResult.Steps")
	}
	// Registration order within each interval: 0,1,2,3 repeating.
	for k, id := range order {
		if id != k%n {
			t.Fatalf("delivery order broke at call %d: observer %d fired, want %d", k, id, k%n)
		}
	}
}

// TestObserverDeliveryIsSynchronous documents the contract that
// observers run on the replay goroutine, blocking it: an observer that
// sleeps must stall the interval loop, so no later interval can be
// delivered while an earlier delivery is still in flight. The inFlight
// counter would trip (and -race would flag the unsynchronized appends)
// if the engine ever moved delivery onto concurrent goroutines.
func TestObserverDeliveryIsSynchronous(t *testing.T) {
	var inFlight atomic.Int32
	var seen []int32
	e := testEngine(PowerOfTwo, testOpts())
	e.Observers = append(e.Observers, ObserverFunc(func(ist IntervalStats) {
		if c := inFlight.Add(1); c != 1 {
			t.Errorf("interval %d delivered while %d deliveries in flight", ist.Index, c-1)
		}
		time.Sleep(2 * time.Millisecond) // widen the race window
		seen = append(seen, int32(ist.Index))
		inFlight.Add(-1)
	}))
	if _, err := e.RunDay(observerWorkloads()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("intervals delivered out of order: %v", seen)
		}
	}
}

// TestMetricsObserverSnapshot: the registry-backed observer folds the
// interval stream into counters/gauges/histograms that agree with the
// DayResult computed from the same stream.
func TestMetricsObserverSnapshot(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := testEngine(PowerOfTwo, testOpts())
	e.Observers = append(e.Observers, NewMetricsObserver(reg))
	res, err := e.RunDay(observerWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["fleet_intervals_total"]; got != int64(len(res.Steps)) {
		t.Errorf("intervals counter = %d, want %d", got, len(res.Steps))
	}
	if got := snap.Counters["fleet_queries_total"]; got != int64(res.TotalQueries) {
		t.Errorf("queries counter = %d, want %d", got, res.TotalQueries)
	}
	if got := snap.Counters["fleet_drops_total"]; got != int64(res.TotalDrops) {
		t.Errorf("drops counter = %d, want %d", got, res.TotalDrops)
	}
	last := res.Steps[len(res.Steps)-1]
	if got := snap.Gauges["fleet_active_servers"]; got != float64(last.ActiveServers) {
		t.Errorf("servers gauge = %v, want %v (last interval)", got, last.ActiveServers)
	}
	h, ok := snap.Histograms["fleet_interval_p95_ms"]
	if !ok || h.Count != len(res.Steps) {
		t.Errorf("p95 histogram count = %d, want %d", h.Count, len(res.Steps))
	}
	if h.Max < res.MaxP95MS*0.99 || h.Max > res.MaxP95MS*1.01 {
		t.Errorf("p95 histogram max %v, want ~%v", h.Max, res.MaxP95MS)
	}
}
