package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The policy registries: routers, autoscalers and admission policies
// are constructed by name, so new policies drop in from anywhere —
// including other packages — without touching the engine. The built-in
// policies register themselves in this package's init functions; a
// custom policy registers once (typically from its own init) and is
// immediately selectable by every Spec, CLI flag and experiment driver:
//
//	fleet.RegisterRouter("sticky", func() fleet.Router { return &sticky{} })
//
// Registration is write-once: a duplicate name panics (two policies
// silently shadowing each other under one name is a configuration bug,
// not a recoverable condition), and lookups are safe for concurrent
// use (the parallel replay and t.Parallel tests resolve policies from
// many goroutines).
type registry[T any] struct {
	kind string // "router", "autoscaler", "admission" — for messages

	mu        sync.RWMutex
	factories map[string]func() T
}

// register installs a factory under a name. Empty names, nil factories
// and duplicate registrations panic: all three are programming errors
// at package-init time, never user input.
func (r *registry[T]) register(name string, factory func() T) {
	if strings.TrimSpace(name) == "" {
		panic(fmt.Sprintf("fleet: empty %s name", r.kind))
	}
	if factory == nil {
		panic(fmt.Sprintf("fleet: nil %s factory for %q", r.kind, name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.factories == nil {
		r.factories = make(map[string]func() T)
	}
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("fleet: %s %q registered twice", r.kind, name))
	}
	r.factories[name] = factory
}

// lookup resolves a registered factory; the error lists every
// registered name so CLI users see what they can ask for.
func (r *registry[T]) lookup(name string) (func() T, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown %s %q (registered: %s)",
			r.kind, name, strings.Join(r.names(), ", "))
	}
	return f, nil
}

// names returns the registered names, sorted.
func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

var (
	routers    = &registry[Router]{kind: "router"}
	scalers    = &registry[Scaler]{kind: "autoscaler"}
	admissions = &registry[Admission]{kind: "admission policy"}
	geos       = &registry[GeoPolicy]{kind: "geo policy"}
)

// RegisterRouter installs a routing-policy factory under a name,
// making it selectable by Spec.Router, hercules-fleet -routers and the
// experiment sweeps. The factory is invoked once per replay shard (a
// Router may keep per-shard mutable state). It panics on a duplicate
// name.
func RegisterRouter(name string, factory func() Router) { routers.register(name, factory) }

// NewRouter instantiates a registered router by name.
func NewRouter(name string) (Router, error) {
	f, err := routers.lookup(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// RouterFactory resolves a registered router's factory by name.
func RouterFactory(name string) (func() Router, error) { return routers.lookup(name) }

// RouterNames returns every registered router name, sorted — the
// source of truth for CLI error messages and usage strings.
func RouterNames() []string { return routers.names() }

// RegisterScaler installs an autoscaler factory under a name, making
// it selectable by Spec.Scaler. It panics on a duplicate name.
func RegisterScaler(name string, factory func() Scaler) { scalers.register(name, factory) }

// NewScaler instantiates a registered autoscaler by name.
func NewScaler(name string) (Scaler, error) {
	f, err := scalers.lookup(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// ScalerNames returns every registered autoscaler name, sorted.
func ScalerNames() []string { return scalers.names() }

// RegisterAdmission installs an admission-policy factory under a name,
// making it selectable by Spec.Admission. It panics on a duplicate
// name.
func RegisterAdmission(name string, factory func() Admission) { admissions.register(name, factory) }

// NewAdmission instantiates a registered admission policy by name.
func NewAdmission(name string) (Admission, error) {
	f, err := admissions.lookup(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// AdmissionNames returns every registered admission-policy name,
// sorted.
func AdmissionNames() []string { return admissions.names() }

// RegisterGeoPolicy installs a geo-routing-policy factory under a
// name, making it selectable by Spec.Geo and hercules-fleet -geo. It
// panics on a duplicate name.
func RegisterGeoPolicy(name string, factory func() GeoPolicy) { geos.register(name, factory) }

// NewGeoPolicy instantiates a registered geo policy by name.
func NewGeoPolicy(name string) (GeoPolicy, error) {
	f, err := geos.lookup(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// GeoPolicyNames returns every registered geo-policy name, sorted.
func GeoPolicyNames() []string { return geos.names() }
