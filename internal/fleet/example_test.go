package fleet_test

import (
	"fmt"

	"hercules/internal/fleet"
	"hercules/internal/workload"
)

// ExampleReplaySlice routes a burst of simultaneous queries over a
// two-server pool and shows the bounded-queue admission arithmetic:
// each server works on one query at a time (concurrency 1) with one
// waiting slot, so a burst of six admits four and drops two.
func ExampleReplaySlice() {
	svc := func(size int, scale float64) float64 { return 0.010 } // 10 ms
	insts := []*fleet.Instance{
		fleet.NewInstance(0, "T2", "DLRM-RMC1", 100, 1, 1, svc),
		fleet.NewInstance(1, "T2", "DLRM-RMC1", 100, 1, 1, svc),
	}
	queries := make([]workload.Query, 6)
	for i := range queries {
		queries[i] = workload.Query{ID: int64(i), ArrivalS: 0, Size: 100, SparseScale: 1}
	}
	res := fleet.ReplaySlice(fleet.RoundRobin, insts, queries, 42)
	fmt.Printf("served: %d dropped: %d\n", res.Served, res.Dropped)
	fmt.Printf("latencies (ms):")
	for _, l := range res.LatS {
		fmt.Printf(" %.0f", l*1e3)
	}
	fmt.Println()
	// Output:
	// served: 4 dropped: 2
	// latencies (ms): 10 10 20 20
}

// ExampleParseRouter shows the routing policies the replay engine
// accepts.
func ExampleParseRouter() {
	for _, name := range []string{"rr", "least", "p2c", "hetero"} {
		k, err := fleet.ParseRouter(name)
		fmt.Println(k, err == nil)
	}
	// Output:
	// rr true
	// least true
	// p2c true
	// hetero true
}
