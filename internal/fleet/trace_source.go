package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"hercules/internal/cluster"
	"hercules/internal/telemetry"
	"hercules/internal/workload"
)

// maxTraceIntervals bounds the interval index a trace line may carry
// (~45 days of 1-minute steps). The cap keeps a corrupt or adversarial
// line from sizing day-long allocations off one integer.
const maxTraceIntervals = 1 << 16

// TraceSource replays a recorded arrival trace instead of synthesizing
// one: the inverse of the telemetry NDJSON exporter. It consumes the
// arrival ("k":"arrival") and offer ("k":"offer") lines of a trace the
// fleet CLI recorded (-record, or any tracer export at sample 1) and
// reconstructs, per (interval, model), exactly the query stream the
// recording run generated — same IDs, arrival instants, sizes and
// sparse scales — plus the offered load and replayed slice length the
// engine needs to re-provision identically. Re-ingesting a recorded
// day therefore reproduces the original DayResult byte for byte, at
// any shard count: arrivals are canonically ordered (query IDs are
// assigned in arrival order), and every downstream random decision
// (shedding, shard splitting, routing, cache hits) draws from streams
// seeded by the query's identity, not by how it was read back in.
//
// Lifecycle events other than arrival and offer are skipped, so a full
// trace (routes, service spans, completions) re-ingests as readily as
// a Restrict()-ed arrival-only recording. Malformed lines — unknown
// kinds, non-finite or negative fields, duplicate query IDs,
// timestamps that run backwards within a stream — are errors with line
// positions, never panics (the contract the package fuzz targets pin).
type TraceSource struct {
	models   []string // sorted
	steps    int
	arrivals map[traceKey][]workload.Query
	offers   map[traceKey]traceOffer
}

type traceKey struct {
	interval int
	model    string
}

type traceOffer struct {
	qps    float64
	sliceS float64
}

// traceLine is the decoded wire form of one NDJSON trace event.
// Required fields are pointers so a missing key is distinguishable
// from a zero value; fields this reader never uses (inst, cand, n) are
// simply ignored.
type traceLine struct {
	I   *int     `json:"i"`
	K   *string  `json:"k"`
	M   *string  `json:"m"`
	Q   *int64   `json:"q"`
	T   *float64 `json:"t"`
	V   float64  `json:"v"`
	Aux float64  `json:"aux"`
}

// LoadTrace reads an NDJSON arrival trace from a file.
func LoadTrace(path string) (*TraceSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: trace: %w", err)
	}
	defer f.Close()
	ts, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("fleet: trace %s: %w", path, err)
	}
	return ts, nil
}

// ReadTrace parses an NDJSON arrival trace from r. See TraceSource for
// the accepted format and the validation contract.
func ReadTrace(r io.Reader) (*TraceSource, error) {
	ts := &TraceSource{
		arrivals: make(map[traceKey][]workload.Query),
		offers:   make(map[traceKey]traceOffer),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ln traceLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		if ln.I == nil || ln.K == nil || ln.M == nil || ln.Q == nil || ln.T == nil {
			return nil, fmt.Errorf("trace line %d: missing required field (want i, k, m, q, t)", lineNo)
		}
		kind, ok := telemetry.KindByName(*ln.K)
		if !ok {
			return nil, fmt.Errorf("trace line %d: unknown event kind %q", lineNo, *ln.K)
		}
		if *ln.I < 0 || *ln.I >= maxTraceIntervals {
			return nil, fmt.Errorf("trace line %d: interval %d out of range [0, %d)", lineNo, *ln.I, maxTraceIntervals)
		}
		if *ln.M == "" {
			return nil, fmt.Errorf("trace line %d: empty model name", lineNo)
		}
		key := traceKey{*ln.I, *ln.M}
		switch kind {
		case telemetry.KindArrival:
			if err := validArrival(ln); err != nil {
				return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
			}
			ts.arrivals[key] = append(ts.arrivals[key], workload.Query{
				ID:          *ln.Q,
				ArrivalS:    *ln.T,
				Size:        int(ln.V),
				SparseScale: ln.Aux,
			})
		case telemetry.KindOffer:
			if !isFinite(ln.V) || ln.V < 0 {
				return nil, fmt.Errorf("trace line %d: offer qps %g must be finite and >= 0", lineNo, ln.V)
			}
			if !isFinite(ln.Aux) || ln.Aux <= 0 {
				return nil, fmt.Errorf("trace line %d: offer slice %g must be finite and > 0", lineNo, ln.Aux)
			}
			if _, dup := ts.offers[key]; dup {
				return nil, fmt.Errorf("trace line %d: duplicate offer for interval %d model %s", lineNo, *ln.I, *ln.M)
			}
			ts.offers[key] = traceOffer{qps: ln.V, sliceS: ln.Aux}
		default:
			// A full lifecycle trace re-ingests: only arrivals and offers
			// carry replay state.
			continue
		}
		if *ln.I+1 > ts.steps {
			ts.steps = *ln.I + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace line %d: %w", lineNo+1, err)
	}
	if len(ts.arrivals) == 0 && len(ts.offers) == 0 {
		return nil, fmt.Errorf("empty trace: no arrival or offer events")
	}

	// Canonicalize: per-(interval, model) streams in query-ID order —
	// the generation order of the recording run (IDs are assigned as
	// queries arrive), restored regardless of how shard interleaving
	// ordered the exported lines. The sorted stream is where duplicate
	// IDs and backwards timestamps become detectable.
	seen := make(map[string]bool)
	for key, qs := range ts.arrivals {
		sort.Slice(qs, func(a, b int) bool { return qs[a].ID < qs[b].ID })
		for j := 1; j < len(qs); j++ {
			if qs[j].ID == qs[j-1].ID {
				return nil, fmt.Errorf("duplicate query id %d in interval %d model %s", qs[j].ID, key.interval, key.model)
			}
			if qs[j].ArrivalS < qs[j-1].ArrivalS {
				return nil, fmt.Errorf("out-of-order timestamps in interval %d model %s: query %d at %gs after query %d at %gs",
					key.interval, key.model, qs[j].ID, qs[j].ArrivalS, qs[j-1].ID, qs[j-1].ArrivalS)
			}
		}
		seen[key.model] = true
	}
	for key := range ts.offers {
		seen[key.model] = true
	}
	for m := range seen {
		ts.models = append(ts.models, m)
	}
	sort.Strings(ts.models)
	return ts, nil
}

// validArrival checks one arrival line's payload: a positive query ID,
// a finite non-negative arrival instant, an integral size >= 1, and a
// finite positive sparse scale.
func validArrival(ln traceLine) error {
	if *ln.Q <= 0 {
		return fmt.Errorf("arrival query id %d must be >= 1", *ln.Q)
	}
	if !isFinite(*ln.T) || *ln.T < 0 {
		return fmt.Errorf("arrival time %g must be finite and >= 0", *ln.T)
	}
	if !isFinite(ln.V) || ln.V < 1 || ln.V != math.Trunc(ln.V) || ln.V > math.MaxInt32 {
		return fmt.Errorf("arrival size %g must be an integer >= 1", ln.V)
	}
	if !isFinite(ln.Aux) || ln.Aux <= 0 {
		return fmt.Errorf("arrival sparse scale %g must be finite and > 0", ln.Aux)
	}
	return nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Models lists the trace's workload models in sorted order.
func (ts *TraceSource) Models() []string { return ts.models }

// Steps returns the trace's interval count (highest interval + 1).
func (ts *TraceSource) Steps() int { return ts.steps }

// Queries returns one (interval, model) arrival stream in query-ID
// (= arrival) order. The returned slice is the source's own — callers
// that mutate (the engine's shed thinning does) must copy first.
func (ts *TraceSource) Queries(interval int, model string) []workload.Query {
	return ts.arrivals[traceKey{interval, model}]
}

// Slice returns the interval's recorded replay-slice length in
// seconds, or 0 when the trace carries no offer for it. All models of
// one interval share a slice, so the first (in sorted model order) is
// authoritative.
func (ts *TraceSource) Slice(interval int) float64 {
	for _, m := range ts.models {
		if off, ok := ts.offers[traceKey{interval, m}]; ok {
			return off.sliceS
		}
	}
	return 0
}

// Workloads reconstructs the per-model load traces the engine
// provisions against: each interval's offered QPS verbatim from the
// recorded offer (the exact float the recording run provisioned with),
// falling back to arrivals ÷ slice for traces without offers
// (hand-written or third-party). stepS is the interval length of the
// replayed day; fallbackSliceS prices the no-offer fallback (normally
// the engine's Options.SliceS).
func (ts *TraceSource) Workloads(stepS, fallbackSliceS float64) []cluster.Workload {
	if stepS <= 0 {
		stepS = 900
	}
	ws := make([]cluster.Workload, 0, len(ts.models))
	for _, m := range ts.models {
		loads := make([]float64, ts.steps)
		for i := 0; i < ts.steps; i++ {
			key := traceKey{i, m}
			if off, ok := ts.offers[key]; ok {
				loads[i] = off.qps
				continue
			}
			if n := len(ts.arrivals[key]); n > 0 {
				sliceS := ts.Slice(i)
				if sliceS <= 0 {
					sliceS = fallbackSliceS
				}
				if sliceS > 0 {
					loads[i] = float64(n) / sliceS
				}
			}
		}
		ws = append(ws, cluster.Workload{
			Model: m,
			Trace: workload.DiurnalTrace{Service: m, StepS: stepS, LoadsQPS: loads},
		})
	}
	return ws
}
