package fleet

import "math"

// Observer receives each interval's finalized IntervalStats as the
// replay produces them — the streaming counterpart of DayResult, which
// is itself just an aggregation built on this hook. Engines call every
// observer in registration order, synchronously, from the replay
// goroutine; an observer that must not block the replay should buffer
// internally. The CLI's live NDJSON output and the DayResult
// aggregation ride the same hook, so the two can never disagree.
type Observer interface {
	ObserveInterval(ist IntervalStats)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ist IntervalStats)

// ObserveInterval implements Observer.
func (f ObserverFunc) ObserveInterval(ist IntervalStats) { f(ist) }

// dayAggregator folds the per-interval stream into a DayResult: the
// internal observer RunDay installs ahead of any caller-registered
// ones. Accumulation order matches the interval stream exactly, so the
// aggregate is a pure function of the IntervalStats sequence — what
// any external observer could recompute for itself.
type dayAggregator struct {
	res *DayResult
}

// ObserveInterval implements Observer.
func (d *dayAggregator) ObserveInterval(ist IntervalStats) {
	res := d.res
	res.Steps = append(res.Steps, ist)
	if ist.Reprovisioned {
		res.Reprovisions++
	}
	if ist.EarlyReprovision {
		res.EarlyReprovisions++
	}
	res.TotalQueries += ist.Queries
	res.TotalDrops += ist.Drops
	res.TotalShed += ist.Shed
	res.SLAViolationMin += ist.ViolationMin
	res.EnergyKJ += ist.EnergyKJ
	res.ProvisionedEnergyKJ += ist.ProvisionedEnergyKJ
	res.MeanP95MS += ist.P95MS
	res.MeanP99MS += ist.P99MS
	res.MaxP95MS = math.Max(res.MaxP95MS, ist.P95MS)
	res.MaxP99MS = math.Max(res.MaxP99MS, ist.P99MS)
}

// finish converts the accumulated sums into the day's means and
// fractions.
func (d *dayAggregator) finish(steps int) {
	res := d.res
	res.MeanP95MS /= float64(steps)
	res.MeanP99MS /= float64(steps)
	if res.TotalQueries > 0 {
		res.DropFrac = float64(res.TotalDrops) / float64(res.TotalQueries)
	}
}
