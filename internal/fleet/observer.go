package fleet

import (
	"math"

	"hercules/internal/telemetry"
)

// Observer receives each interval's finalized IntervalStats as the
// replay produces them — the streaming counterpart of DayResult, which
// is itself just an aggregation built on this hook. Engines call every
// observer in registration order, synchronously, from the replay
// goroutine; an observer that must not block the replay should buffer
// internally. The CLI's live NDJSON output and the DayResult
// aggregation ride the same hook, so the two can never disagree.
type Observer interface {
	ObserveInterval(ist IntervalStats)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ist IntervalStats)

// ObserveInterval implements Observer.
func (f ObserverFunc) ObserveInterval(ist IntervalStats) { f(ist) }

// NewMetricsObserver folds the interval stream into a telemetry
// metrics registry: counters for cumulative totals (queries, drops,
// shed, breached windows), gauges for the latest control-plane state
// (offered load, fleet size, provisioned power), and sketch-backed
// histograms over the per-interval tail latencies — the
// metrics-snapshot face of the same stream the NDJSON observer and the
// DayResult aggregation consume. Handles are resolved once here, so
// the per-interval update never touches the registry's maps.
func NewMetricsObserver(reg *telemetry.Registry) Observer {
	return NewRegionMetricsObserver(reg, "")
}

// NewRegionMetricsObserver is NewMetricsObserver with every metric
// name suffixed by a {region="..."} label, so the regions of a
// multi-region replay share one registry without colliding. An empty
// region is the unlabelled single-region namespace.
func NewRegionMetricsObserver(reg *telemetry.Registry, region string) Observer {
	name := func(base string) string {
		if region == "" {
			return base
		}
		return base + `{region="` + region + `"}`
	}
	intervals := reg.Counter(name("fleet_intervals_total"))
	queries := reg.Counter(name("fleet_queries_total"))
	drops := reg.Counter(name("fleet_drops_total"))
	shed := reg.Counter(name("fleet_shed_total"))
	hits := reg.Counter(name("fleet_cache_hits_total"))
	breached := reg.Counter(name("fleet_windows_breached_total"))
	offered := reg.Gauge(name("fleet_offered_qps"))
	servers := reg.Gauge(name("fleet_active_servers"))
	kw := reg.Gauge(name("fleet_provisioned_kw"))
	carbonMG := reg.Counter(name("fleet_carbon_mg_total"))
	intensity := reg.Gauge(name("fleet_grid_g_per_kwh"))
	p50 := reg.Histogram(name("fleet_interval_p50_ms"))
	p95 := reg.Histogram(name("fleet_interval_p95_ms"))
	p99 := reg.Histogram(name("fleet_interval_p99_ms"))
	return ObserverFunc(func(ist IntervalStats) {
		intervals.Inc()
		queries.Add(int64(ist.Queries))
		drops.Add(int64(ist.Drops))
		shed.Add(int64(ist.Shed))
		hits.Add(int64(ist.CacheHits))
		breached.Add(int64(ist.WindowsBreached))
		offered.Set(ist.OfferedQPS)
		servers.Set(float64(ist.ActiveServers))
		kw.Set(ist.ProvisionedKW)
		// Counters are integral; carbon accumulates in milligrams so
		// sub-gram intervals don't round away.
		carbonMG.Add(int64(ist.CarbonG * 1e3))
		intensity.Set(ist.GridGPerKWh)
		p50.Observe(ist.P50MS)
		p95.Observe(ist.P95MS)
		p99.Observe(ist.P99MS)
	})
}

// dayAggregator folds the per-interval stream into a DayResult: the
// internal observer RunDay installs ahead of any caller-registered
// ones. Accumulation order matches the interval stream exactly, so the
// aggregate is a pure function of the IntervalStats sequence — what
// any external observer could recompute for itself.
type dayAggregator struct {
	res *DayResult
}

// ObserveInterval implements Observer.
func (d *dayAggregator) ObserveInterval(ist IntervalStats) {
	res := d.res
	//lint:allow obscontract DayResult.Steps is the documented owner of the interval stream; the engine hands over each IntervalStats by value
	res.Steps = append(res.Steps, ist)
	if ist.Reprovisioned {
		res.Reprovisions++
	}
	if ist.EarlyReprovision {
		res.EarlyReprovisions++
	}
	if ist.Boosted {
		res.BoostedIntervals++
	}
	res.SpillInServed += ist.SpillInServed
	res.SpillInDropped += ist.SpillInDropped
	res.TotalQueries += ist.Queries
	res.TotalDrops += ist.Drops
	res.TotalShed += ist.Shed
	res.TotalCacheHits += ist.CacheHits
	res.SLAViolationMin += ist.ViolationMin
	res.EnergyKJ += ist.EnergyKJ
	res.ProvisionedEnergyKJ += ist.ProvisionedEnergyKJ
	res.TotalCarbonG += ist.CarbonG
	res.MeanP95MS += ist.P95MS
	res.MeanP99MS += ist.P99MS
	res.MaxP95MS = math.Max(res.MaxP95MS, ist.P95MS)
	res.MaxP99MS = math.Max(res.MaxP99MS, ist.P99MS)
}

// finish converts the accumulated sums into the day's means and
// fractions.
func (d *dayAggregator) finish(steps int) {
	res := d.res
	res.MeanP95MS /= float64(steps)
	res.MeanP99MS /= float64(steps)
	if res.TotalQueries > 0 {
		res.DropFrac = float64(res.TotalDrops) / float64(res.TotalQueries)
		res.CacheHitRate = float64(res.TotalCacheHits) / float64(res.TotalQueries)
	}
	if served := res.TotalQueries - res.TotalDrops; served > 0 {
		res.CarbonPerQueryG = res.TotalCarbonG / float64(served)
	}
}
