package fleet

import (
	"fmt"
	"math"
	"sort"

	"hercules/internal/cluster"
	"hercules/internal/scenario"
)

// MultiEngine replays a multi-region day: one Engine per RegionSpec,
// stepped in lockstep so the spec's geo policy can move load between
// regions at every interval boundary. Each region synthesizes its own
// phase-shifted diurnal population and runs its existing shard-
// parallel replay unchanged; the geo layer only adjusts the offered
// loads going in (spilled-out traffic leaves, spilled-in traffic
// arrives carrying its inter-region RTT) and reads the interval
// signals coming out.
type MultiEngine struct {
	// Spec is the normalized multi-region spec the engines were built
	// from.
	Spec Spec
	// Engines holds one fully assembled Engine per Spec.Regions entry,
	// in order. Exported for tests and tools that decorate individual
	// regions (observers, tracers) before RunDay.
	Engines []*Engine
	// Geo is the instantiated geo-routing policy.
	Geo GeoPolicy

	sc   scenario.Scenario
	rttS [][]float64
}

// NewMultiEngine assembles a multi-region replay from a Spec with
// regions. Every region resolves through NewEngine with its own fleet
// and a region-salted seed (regions draw independent traffic noise);
// the scenario compiles per region through scenario.CompileRegions at
// RunDay, so blackout and region-scoped events land only where they
// should. Options apply to every region's engine — per-region
// decoration goes through MultiEngine.Engines.
//
// A single-region spec (including a normalized legacy spec) is valid:
// RunDay then delegates to the one engine and its result is
// byte-identical to NewEngine + RunDay on the same spec.
func NewMultiEngine(spec Spec, opts ...Option) (*MultiEngine, error) {
	nspec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if nspec.Trace != "" {
		return nil, fmt.Errorf("fleet: recorded traces replay single-region (trace %q); drop the regions or the trace", nspec.Trace)
	}
	geo, err := NewGeoPolicy(nspec.Geo)
	if err != nil {
		return nil, err
	}
	sc, err := scenario.Parse(nspec.Scenario)
	if err != nil {
		return nil, err
	}
	if nspec.Grid.Enabled() {
		// Validate against the full region list here: each engine only
		// sees its own region's (ForRegion-filtered) grid, so an
		// override naming a region that exists nowhere must be caught
		// before the split.
		if err := nspec.Grid.Validate(); err != nil {
			return nil, err
		}
		known := make([]string, len(nspec.Regions))
		for i, r := range nspec.Regions {
			known[i] = r.Name
		}
		if err := nspec.Grid.CheckRegions(known); err != nil {
			return nil, err
		}
	}

	me := &MultiEngine{Spec: nspec, Geo: geo, sc: sc}
	multi := len(nspec.Regions) > 1
	for _, r := range nspec.Regions {
		rs := nspec
		rs.Fleet = r.Fleet
		rs.Regions = []RegionSpec{r}
		rs.Geo = ""
		rs.Grid = nspec.Grid.ForRegion(r.Name)
		if multi {
			// The region engines replay the scenario's per-region
			// timelines (CompileRegions), installed by RunDay — not the
			// whole scenario each.
			rs.Scenario = ""
			// Salt each region's seed: two regions are different
			// populations, not mirrored replicas of one noise stream.
			rs.Options.Seed = mixSeed(nspec.Options.Seed, 0x9e0, hashString(r.Name))
		}
		eng, err := NewEngine(rs, opts...)
		if err != nil {
			return nil, fmt.Errorf("fleet: region %q: %w", r.Name, err)
		}
		if eng.Tracer != nil {
			eng.Tracer.SetRegion(r.Name)
		}
		me.Engines = append(me.Engines, eng)
	}

	// Resolve the RTT matrix once: explicit entry, symmetric fallback,
	// then DefaultRTTMS; zero on the diagonal.
	n := len(nspec.Regions)
	me.rttS = make([][]float64, n)
	for i := range me.rttS {
		me.rttS[i] = make([]float64, n)
		for j := range me.rttS[i] {
			if i == j {
				continue
			}
			ms := DefaultRTTMS
			if v, ok := nspec.Regions[i].RTTMS[nspec.Regions[j].Name]; ok {
				ms = v
			} else if v, ok := nspec.Regions[j].RTTMS[nspec.Regions[i].Name]; ok {
				ms = v
			}
			me.rttS[i][j] = ms / 1e3
		}
	}
	return me, nil
}

// Workloads synthesizes each region's phase-shifted diurnal day, in
// region order.
func (me *MultiEngine) Workloads() [][]cluster.Workload {
	out := make([][]cluster.Workload, len(me.Engines))
	for i, eng := range me.Engines {
		out[i] = eng.workloadsAt(me.Spec.Regions[i].PhaseH)
	}
	return out
}

// RunDay replays every region's day in lockstep and returns the
// global merge (MergeDays), with the per-region results in
// DayResult.Regions. wss is one workload slice per region, in region
// order (Workloads' shape); the replay spans the shortest region's
// trace.
func (me *MultiEngine) RunDay(wss [][]cluster.Workload) (DayResult, error) {
	if len(wss) != len(me.Engines) {
		return DayResult{}, fmt.Errorf("fleet: %d workload sets for %d regions", len(wss), len(me.Engines))
	}
	if len(me.Engines) == 1 {
		// Single region: delegate outright — byte-identical to the
		// engine running alone, just with the region labels attached.
		res, err := me.Engines[0].RunDay(wss[0])
		res.Region = me.Spec.Regions[0].Name
		res.Geo = me.Spec.Geo
		if err != nil {
			return res, err
		}
		global := MergeDays(res)
		global.Geo = me.Spec.Geo
		global.Regions = []DayResult{res}
		return global, nil
	}

	names := make([]string, len(me.Spec.Regions))
	for i, r := range me.Spec.Regions {
		names[i] = r.Name
	}
	fleetCounts := make(map[string]map[string]int, len(names))
	for i, eng := range me.Engines {
		fleetCounts[names[i]] = eng.fleetCounts()
	}

	// beginDay every region before stepping any: each engine validates
	// its workloads and starts its own worker pool; a failure tears
	// down the pools already started.
	began := 0
	fail := func(i int, err error) (DayResult, error) {
		res := me.Engines[i].run.res
		for k := 0; k < began; k++ {
			me.Engines[k].endDay()
		}
		return res, fmt.Errorf("fleet: region %q: %w", names[i], err)
	}
	steps := 0
	for i, eng := range me.Engines {
		if err := eng.beginDay(wss[i]); err != nil {
			return fail(i, err)
		}
		began++
		if steps == 0 || eng.run.steps < steps {
			steps = eng.run.steps
		}
	}
	// Compile the scenario per region against the common horizon and
	// install the timelines (blackouts expand to victim kills plus
	// survivor spikes here).
	tls, err := scenario.CompileRegions(me.sc, steps, me.Engines[0].run.stepS, names, fleetCounts)
	if err != nil {
		return fail(0, err)
	}
	for i, eng := range me.Engines {
		eng.Timeline = tls[names[i]]
		eng.run.steps = steps
		if tls[names[i]].Name != "" {
			eng.run.res.Scenario = tls[names[i]].Name
		}
	}

	sig := GeoSignal{RTTS: me.rttS, Regions: make([]RegionSignal, len(me.Engines))}
	offered := make([]map[string]float64, len(me.Engines))
	adjs := make([]geoAdjust, len(me.Engines))
	for i := 0; i < steps; i++ {
		// Snapshot each region at the boundary: offered home load,
		// optimistic capacity of the fleet as scenario effects leave it,
		// and the blackout flag.
		sig.Interval = i
		for r, eng := range me.Engines {
			eff := eng.Timeline.At(i)
			offered[r] = eng.offeredLoads(i, eff)
			var total float64
			ms := make([]string, 0, len(offered[r]))
			for m := range offered[r] {
				ms = append(ms, m)
			}
			sort.Strings(ms)
			for _, m := range ms {
				total += offered[r][m]
			}
			sig.Regions[r] = RegionSignal{
				Name:        names[r],
				OfferedQPS:  total,
				CapacityQPS: eng.capacityQPS(eff),
				Blackout:    eff.Blackout,
			}
		}
		spill := me.Geo.Route(sig)
		me.buildAdjusts(spill, offered, sig.Regions, adjs)
		for r, eng := range me.Engines {
			adj := &adjs[r]
			if adj.keep == 1 && len(adj.inbound) == 0 {
				adj = nil // untouched interval: replay exactly as single-region
			}
			eng.stepInterval(i, adj)
		}
	}

	days := make([]DayResult, len(me.Engines))
	for r, eng := range me.Engines {
		days[r] = eng.endDay()
		days[r].Region = names[r]
		days[r].Geo = me.Spec.Geo
	}
	global := MergeDays(days...)
	global.Geo = me.Spec.Geo
	global.Regions = days
	return global, nil
}

// buildAdjusts turns a geo policy's routing matrix into per-region
// load adjustments: clamp each source row to a sane simplex (entries
// in [0, 1], row total at most 1, nothing routed to self), then
// accumulate what each destination receives per model and the
// inbound-weighted mean RTT its remote queries pay.
func (me *MultiEngine) buildAdjusts(spill [][]float64, offered []map[string]float64, regs []RegionSignal, adjs []geoAdjust) {
	n := len(me.Engines)
	for r := range adjs {
		adjs[r] = geoAdjust{keep: 1}
	}
	if len(spill) != n {
		return // malformed policy output: route nothing
	}
	for src := 0; src < n; src++ {
		row := spill[src]
		if len(row) != n || regs[src].OfferedQPS <= 0 {
			continue
		}
		rowTotal := 0.0
		for dst := 0; dst < n; dst++ {
			f := row[dst]
			if dst == src || f <= 0 {
				continue
			}
			f = math.Min(f, 1-rowTotal)
			if f <= 0 {
				continue
			}
			rowTotal += f
			srcQPS := regs[src].OfferedQPS * f
			adjs[src].outQPS += srcQPS
			dst := dst
			a := &adjs[dst]
			if a.inbound == nil {
				a.inbound = make(map[string]float64)
			}
			for m, l := range offered[src] {
				a.inbound[m] += l * f
			}
			// rttS accumulates as a weighted sum here; normalized below.
			a.rttS += me.rttS[src][dst] * srcQPS
		}
		adjs[src].keep = 1 - rowTotal
	}
	for r := range adjs {
		a := &adjs[r]
		var in float64
		for _, l := range a.inbound {
			in += l
		}
		if in > 0 {
			a.rttS /= in
		} else {
			a.rttS = 0
		}
	}
}

// capacityQPS estimates the fleet's best-case serving capacity under
// the interval's scenario effects: every live server of each type at
// its best calibrated per-model QPS, derated as the scenario derates
// it. Optimistic by construction (no queueing, no mix) — the spill
// policy's trigger and headroom margins are what absorb the gap.
func (e *Engine) capacityQPS(eff scenario.Effects) float64 {
	counts := e.fleetCounts()
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Strings(types)
	capFrac := e.powercapFrac(eff)
	models := e.Spec.withDefaults().Models
	var total float64
	for _, t := range types {
		alive := counts[t] - min(eff.KilledOf(t), counts[t])
		if alive <= 0 {
			continue
		}
		slow := eff.DerateOf(t)
		if cf, ok := capFrac[t]; ok {
			// Powercapped servers serve slower; the spill policy sees
			// the throttled capacity and can route around a capped
			// region exactly as it routes around a derated one.
			slow *= cf
		}
		best := 0.0
		for _, m := range models {
			if entry, ok := e.Table.Get(t, m); ok && entry.QPS > 0 {
				best = math.Max(best, entry.QPS*slow)
			}
		}
		total += best * float64(alive)
	}
	return total
}
