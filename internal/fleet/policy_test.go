package fleet

import (
	"math"
	"testing"
)

// TestDeadlineAdmissionEdgeCases pins the ShedFrac decision surface at
// its boundaries: no SLA means no shedding, a p99 exactly AT the SLA is
// inside it (zero overshoot, zero shed), and a zero-drop interval sheds
// purely on overshoot.
func TestDeadlineAdmissionEdgeCases(t *testing.T) {
	d := NewDeadlineAdmission()
	if d.Gain != 0.5 || d.MaxShed != 0.5 {
		t.Fatalf("default tuning changed: gain=%g maxShed=%g", d.Gain, d.MaxShed)
	}
	if d.Name() != "deadline" {
		t.Fatalf("name %q", d.Name())
	}
	cases := []struct {
		name string
		sig  AdmissionSignal
		want float64
	}{
		{"no SLA admits everything even under collapse",
			AdmissionSignal{SLATargetMS: 0, PrevP99MS: 500, PrevDropFrac: 0.9}, 0},
		{"negative SLA treated as unset",
			AdmissionSignal{SLATargetMS: -20, PrevP99MS: 500, PrevDropFrac: 0.9}, 0},
		{"first interval (zero signal) sheds nothing",
			AdmissionSignal{SLATargetMS: 20}, 0},
		{"p99 under SLA, zero drops",
			AdmissionSignal{SLATargetMS: 20, PrevP99MS: 12}, 0},
		{"p99 exactly at SLA is inside it",
			AdmissionSignal{SLATargetMS: 20, PrevP99MS: 20}, 0},
		{"p99 exactly at SLA with drops sheds only the drop term",
			AdmissionSignal{SLATargetMS: 20, PrevP99MS: 20, PrevDropFrac: 0.1}, 0.1},
		{"zero-drop interval sheds on overshoot alone",
			AdmissionSignal{SLATargetMS: 20, PrevP99MS: 30}, 0.25},
		{"overshoot and drops add",
			AdmissionSignal{SLATargetMS: 20, PrevP99MS: 30, PrevDropFrac: 0.1}, 0.35},
		{"p99 at 2x SLA reaches the cap exactly",
			AdmissionSignal{SLATargetMS: 20, PrevP99MS: 40}, 0.5},
		{"cap binds past 2x SLA",
			AdmissionSignal{SLATargetMS: 20, PrevP99MS: 400, PrevDropFrac: 0.8}, 0.5},
		{"p99 under SLA never offsets the drop term",
			AdmissionSignal{SLATargetMS: 20, PrevP99MS: 1, PrevDropFrac: 0.2}, 0.2},
	}
	for _, tc := range cases {
		if got := d.ShedFrac(tc.sig); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: ShedFrac = %g, want %g", tc.name, got, tc.want)
		}
	}
}

// TestDeadlineAdmissionCustomTuning: Gain scales the overshoot term and
// MaxShed caps the sum, independent of the defaults.
func TestDeadlineAdmissionCustomTuning(t *testing.T) {
	d := &DeadlineAdmission{Gain: 2, MaxShed: 0.9}
	sig := AdmissionSignal{SLATargetMS: 10, PrevP99MS: 12.5} // 25% overshoot
	if got := d.ShedFrac(sig); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("gain 2 at 25%% overshoot: %g, want 0.5", got)
	}
	sig.PrevDropFrac = 0.6
	if got := d.ShedFrac(sig); got != 0.9 {
		t.Errorf("custom cap: %g, want 0.9", got)
	}
}

// propScaler returns a scaler with dyadic tuning so the hysteresis
// comparisons in the test are exact in float64: want = (util-0.5)/0.5,
// and utilizations chosen as multiples of 1/16 give exact wants.
func propScaler() *ProportionalScaler {
	return &ProportionalScaler{TargetUtil: 0.5, Gain: 1, MaxBoostR: 0.5, Hysteresis: 0.25}
}

// TestProportionalScalerHysteresisBoundary pins the hold-window edge:
// a desired-headroom move of exactly Hysteresis holds the applied value
// (<=, not <), one step beyond it re-provisions.
func TestProportionalScalerHysteresisBoundary(t *testing.T) {
	p := propScaler()
	// want = 0.25 == Hysteresis exactly: hold, keep applied 0, no event.
	p.ObserveUtilization(0.625)
	if early, extra := p.IntervalEnd(); early || extra != 0 {
		t.Fatalf("move == hysteresis must hold: early=%v extra=%g", early, extra)
	}
	if p.TriggerCount() != 0 {
		t.Fatalf("hold counted as a trigger")
	}
	// want = 0.375: |0.375-0| > 0.25 → re-provision with the new headroom.
	p.ObserveUtilization(0.6875)
	if early, extra := p.IntervalEnd(); !early || extra != 0.375 {
		t.Fatalf("move past hysteresis must trigger: early=%v extra=%g", early, extra)
	}
	if p.TriggerCount() != 1 {
		t.Fatalf("trigger count %d, want 1", p.TriggerCount())
	}
	// Same utilization again: zero move, hold at the applied 0.375.
	p.ObserveUtilization(0.6875)
	if early, extra := p.IntervalEnd(); early || extra != 0.375 {
		t.Fatalf("steady state must hold applied headroom: early=%v extra=%g", early, extra)
	}
	// Decay within the band: want falls to 0.25, |0.25-0.375| <= 0.25 →
	// the applied headroom persists (no flapping on small drifts).
	p.ObserveUtilization(0.625)
	if early, extra := p.IntervalEnd(); early || extra != 0.375 {
		t.Fatalf("in-band decay must hold: early=%v extra=%g", early, extra)
	}
	// Full decay: want 0, move 0.375 > band → re-provision back down.
	p.ObserveUtilization(0.5)
	if early, extra := p.IntervalEnd(); !early || extra != 0 {
		t.Fatalf("out-of-band decay must trigger: early=%v extra=%g", early, extra)
	}
	if p.TriggerCount() != 2 {
		t.Fatalf("trigger count %d, want 2", p.TriggerCount())
	}
}

// TestProportionalScalerClampsAndDefaults: negative overshoot clamps to
// zero headroom, MaxBoostR caps runaway overshoot, a non-positive
// target falls back to 0.70, and the breach-verdict surface stays at
// the engine defaults.
func TestProportionalScalerClampsAndDefaults(t *testing.T) {
	p := propScaler()
	p.ObserveUtilization(0.1) // far under target: want clamps to 0
	if early, extra := p.IntervalEnd(); early || extra != 0 {
		t.Errorf("underload: early=%v extra=%g, want hold at 0", early, extra)
	}
	p.ObserveUtilization(2.0) // want = 3, capped at MaxBoostR
	if early, extra := p.IntervalEnd(); !early || extra != 0.5 {
		t.Errorf("overload: early=%v extra=%g, want trigger at cap 0.5", early, extra)
	}
	zero := &ProportionalScaler{Gain: 1, MaxBoostR: 0.5, Hysteresis: 0.05}
	zero.ObserveUtilization(0.70) // at the fallback target → want 0
	if early, extra := zero.IntervalEnd(); early || extra != 0 {
		t.Errorf("zero target must fall back to 0.70: early=%v extra=%g", early, extra)
	}
	d := NewProportionalScaler()
	if d.TargetUtil != 0.70 || d.Gain != 1.0 || d.MaxBoostR != 0.5 || d.Hysteresis != 0.05 {
		t.Errorf("default tuning changed: %+v", d)
	}
	if tail, factor := d.Thresholds(); tail != 95 || factor != 1.0 {
		t.Errorf("thresholds (%g, %g), want (95, 1)", tail, factor)
	}
	if d.Name() != "prop" {
		t.Errorf("name %q", d.Name())
	}
	d.ObserveWindow(true) // breach-agnostic: must not disturb state
	if early, extra := d.IntervalEnd(); early && extra != 0 {
		t.Errorf("ObserveWindow leaked into proportional state")
	}
}
