package fleet

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

type noopRouter struct{}

func (noopRouter) Name() string                                            { return "noop" }
func (noopRouter) Pick(insts []*Instance, now float64, rng *rand.Rand) int { return 0 }

func TestRegistryRegisterAndLookup(t *testing.T) {
	RegisterRouter("registry-test-noop", func() Router { return noopRouter{} })
	r, err := NewRouter("registry-test-noop")
	if err != nil || r == nil {
		t.Fatalf("registered router not constructible: %v", err)
	}
	found := false
	for _, name := range RouterNames() {
		if name == "registry-test-noop" {
			found = true
		}
	}
	if !found {
		t.Error("RouterNames must include the new registration")
	}
	// A registered router is immediately parseable and usable by the
	// engine surface.
	if name, err := ParseRouter("registry-test-noop"); err != nil || name != "registry-test-noop" {
		t.Errorf("ParseRouter(new) = %q, %v", name, err)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	RegisterRouter("registry-test-dup", func() Router { return noopRouter{} })
	RegisterRouter("registry-test-dup", func() Router { return noopRouter{} })
}

func TestRegistryUnknownNameErrorListsRegistered(t *testing.T) {
	_, err := NewRouter("no-such-router")
	if err == nil {
		t.Fatal("unknown router must error")
	}
	// The error is the CLI's help text: it must list what IS registered.
	for _, name := range AllRouters {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q must list registered router %q", err, name)
		}
	}
	if _, err := NewScaler("no-such-scaler"); err == nil ||
		!strings.Contains(err.Error(), "breach") || !strings.Contains(err.Error(), "prop") {
		t.Errorf("scaler error must list registrations, got %v", err)
	}
	if _, err := NewAdmission("no-such-admission"); err == nil ||
		!strings.Contains(err.Error(), "deadline") {
		t.Errorf("admission error must list registrations, got %v", err)
	}
}

func TestRegistryConcurrentLookup(t *testing.T) {
	// Lookups race against a registration; the race CI job runs this
	// under -race, which is the real assertion.
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 200; j++ {
				if _, err := NewRouter(PowerOfTwo); err != nil {
					t.Error(err)
					return
				}
				RouterNames()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		RegisterRouter("registry-test-concurrent", func() Router { return noopRouter{} })
	}()
	close(start)
	wg.Wait()
}

func TestBuiltinPoliciesRegistered(t *testing.T) {
	for _, name := range AllRouters {
		if _, err := NewRouter(name); err != nil {
			t.Errorf("built-in router %q not registered: %v", name, err)
		}
	}
	for _, name := range []string{"breach", "prop"} {
		s, err := NewScaler(name)
		if err != nil {
			t.Errorf("built-in scaler %q not registered: %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("scaler %q reports name %q", name, s.Name())
		}
	}
	a, err := NewAdmission("deadline")
	if err != nil || a.Name() != "deadline" {
		t.Errorf("deadline admission: %v (%v)", a, err)
	}
}
