package fleet

import "math"

// Instance is one activated server in the fleet: an M/G/c/(c+K) queue
// whose per-query service times come from a ServiceSource. Concurrency
// c models the server's co-located inference threads (calibrated so
// saturation throughput matches the profiled latency-bounded QPS), and
// K is the bounded dispatch queue; arrivals beyond c+K outstanding
// queries are dropped.
//
// Instances are not safe for concurrent use; the engine gives each
// replay shard exclusive ownership of its instances.
type Instance struct {
	ID    int
	Type  string // server type label ("T1".."T10")
	Model string // model the server is provisioned for
	// Weight is the profiled latency-bounded capacity (QPS) of this
	// (type, model) pair — the heterogeneity-aware router's signal.
	Weight float64
	// Concurrency is the number of queries the server works on at once.
	Concurrency int
	// QueueCap is the number of waiting slots behind the in-service
	// queries; 0 means no waiting room (pure loss system).
	QueueCap int

	svc func(size int, scale float64) float64

	// Virtual-time state for one replay slice. Both heaps are plain
	// float64 min-heaps maintained by the sift helpers below —
	// container/heap would box every completion instant into an
	// interface and turn the replay's innermost loop into an allocation
	// per query.
	free  []float64 // min-heap of per-channel next-free instants
	comps []float64 // min-heap of outstanding completion times, cap c+K
	busyS float64   // accumulated channel-seconds of service
	// Served/Dropped count this slice's admissions and rejections.
	Served, Dropped int
}

// NewInstance builds an instance with the given service-time function.
func NewInstance(id int, serverType, modelName string, weight float64, concurrency, queueCap int, svc func(size int, scale float64) float64) *Instance {
	if concurrency < 1 {
		concurrency = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	return &Instance{
		ID:          id,
		Type:        serverType,
		Model:       modelName,
		Weight:      weight,
		Concurrency: concurrency,
		QueueCap:    queueCap,
		svc:         svc,
		free:        make([]float64, concurrency),
		comps:       make([]float64, 0, concurrency+queueCap),
	}
}

// Slowed returns a fresh instance identical to in except that every
// service time is multiplied by k (k > 1 models a derated server:
// thermal throttling, a sick disk). Weight is deliberately unchanged —
// the control plane and the heterogeneity-aware router keep believing
// the profiled capacity, which is exactly what makes derates dangerous.
func (in *Instance) Slowed(k float64) *Instance {
	base := in.svc
	return NewInstance(in.ID, in.Type, in.Model, in.Weight, in.Concurrency, in.QueueCap,
		func(size int, scale float64) float64 { return base(size, scale) * k })
}

// Reset clears the virtual-time state for a new replay slice.
func (in *Instance) Reset() {
	for i := range in.free {
		in.free[i] = 0
	}
	in.comps = in.comps[:0]
	in.busyS = 0
	in.Served, in.Dropped = 0, 0
}

// Outstanding returns the number of admitted queries not yet complete
// at the given instant.
func (in *Instance) Outstanding(now float64) int {
	h := in.comps
	for len(h) > 0 && h[0] <= now {
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		siftDown(h, 0)
	}
	in.comps = h
	return len(h)
}

// Utilization returns the mean busy fraction of the instance's service
// channels over a slice of the given length.
func (in *Instance) Utilization(sliceS float64) float64 {
	if sliceS <= 0 || in.Concurrency == 0 {
		return 0
	}
	return math.Min(in.busyS/(float64(in.Concurrency)*sliceS), 1)
}

// Arrive offers one query (service keyed by size and scale) at time
// now. It returns the query's completion time and false, or 0 and true
// when the bounded queue rejects it.
func (in *Instance) Arrive(now float64, size int, scale float64) (doneAt float64, dropped bool) {
	if in.Outstanding(now) >= in.Concurrency+in.QueueCap {
		in.Dropped++
		return 0, true
	}
	s := in.svc(size, scale)
	if math.IsInf(s, 0) || s <= 0 {
		in.Dropped++
		return 0, true
	}
	// Earliest-free channel, non-preemptive FCFS: the heap root is the
	// channel that frees first. Which tied channel wins is irrelevant —
	// only the multiset of free instants feeds back into the replay.
	start := now
	if in.free[0] > now {
		start = in.free[0]
	}
	done := start + s
	in.free[0] = done
	siftDown(in.free, 0)
	in.busyS += s
	in.comps = append(in.comps, done)
	siftUp(in.comps, len(in.comps)-1)
	in.Served++
	return done, false
}

// siftUp restores the min-heap property after appending at index i.
func siftUp(h []float64, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// siftDown restores the min-heap property after replacing index i.
func siftDown(h []float64, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && h[r] < h[l] {
			least = r
		}
		if h[i] <= h[least] {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
