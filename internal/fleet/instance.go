package fleet

import "math"

// Instance is one activated server in the fleet: an M/G/c/(c+K) queue
// whose per-query service times come from a ServiceSource. Concurrency
// c models the server's co-located inference threads (calibrated so
// saturation throughput matches the profiled latency-bounded QPS), and
// K is the bounded dispatch queue; arrivals beyond c+K (batched:
// max(c, MaxBatch)+K) outstanding queries are dropped.
//
// With EnableBatching, the instance becomes a dynamic batcher: queued
// queries coalesce into batches of up to MaxBatch, and a batch of n
// occupies min(n, c) service channels for the whole-batch makespan the
// pair's batching-efficiency curve prices. The channel-group occupancy
// keeps the model continuous with the unbatched queue — single-query
// batches pipeline across the c channels exactly like unbatched
// queries, while a full batch engages the whole server and collects
// the amortization the curve measured. A forming batch launches when
// it fills, or at its wait-window deadline once a channel is free —
// while the server is busy the batch keeps collecting, which is what
// lets batches grow toward MaxBatch under overload instead of
// splintering at the window. MaxBatch 1 (the default) preserves the
// original per-query replay bit for bit.
//
// Instances are not safe for concurrent use; the engine gives each
// replay shard exclusive ownership of its instances.
type Instance struct {
	ID    int
	Type  string // server type label ("T1".."T10")
	Model string // model the server is provisioned for
	// Weight is the router's capacity signal (QPS): the profiled
	// latency-bounded capacity of this (type, model) pair, scaled by the
	// batched saturation gain when dynamic batching is enabled.
	Weight float64
	// Concurrency is the number of query slots (or batch slots, when
	// batching) the server works on at once.
	Concurrency int
	// QueueCap is the number of waiting slots behind the in-service
	// queries; 0 means no waiting room (pure loss system).
	QueueCap int
	// MaxBatch is the dynamic-batching cap: how many queued queries one
	// dispatch may coalesce (1 = no batching). BatchWaitS is the longest
	// a forming batch waits for companions before dispatching anyway.
	MaxBatch   int
	BatchWaitS float64

	svc func(size int, scale float64) float64
	// batchEff[n] prices an n-query batch as a fraction of the sum of
	// its members' solo service times (eff[1] = 1; amortized dispatch,
	// weight-streaming and kernel-launch costs push larger batches below
	// 1). nil means pure coalescing (eff ≡ 1).
	batchEff []float64

	// Virtual-time state for one replay slice. Both heaps are plain
	// float64 min-heaps maintained by the sift helpers below —
	// container/heap would box every completion instant into an
	// interface and turn the replay's innermost loop into an allocation
	// per query.
	free  []float64 // min-heap of per-channel next-free instants
	comps []float64 // min-heap of outstanding completion times
	busyS float64   // accumulated channel-seconds of service
	// horizon clips busy-second accounting to the replay slice: service
	// that extends past the slice end must not count toward this slice's
	// utilization (and hence its energy). +Inf disables clipping.
	horizon float64

	// Forming batch: member IDs, arrival instants and solo service
	// times, preallocated to MaxBatch by EnableBatching. pendOpen is the
	// oldest member's arrival (the wait window opens there).
	pendID   []int64
	pendArr  []float64
	pendSvc  []float64
	pendOpen float64
	// emitted buffers completions of batches launched by Outstanding
	// (router inspections observe virtual time too — a due batch must
	// stop counting as pending load the moment its launch instant
	// passes); the next ArriveBatched or FlushPending drains it.
	emitted []Completion

	// Served/Dropped count this slice's admissions and rejections.
	Served, Dropped int
}

// Completion records one batched query's full service timeline: its
// identity, arrival, the batch's dispatch instant and size, and the
// completion instant. The batched replay emits completions when a
// batch dispatches — possibly several queries at once, possibly none
// for a given arrival — instead of returning a completion per Arrive;
// ID and StartS exist so the tracer can reconstruct per-query enqueue,
// service-start and service-end events at that deferred point.
type Completion struct {
	ID       int64
	ArrivalS float64
	StartS   float64
	DoneS    float64
	// Batch is the size of the dispatch this query rode in.
	Batch int
}

// NewInstance builds an unbatched instance with the given service-time
// function.
func NewInstance(id int, serverType, modelName string, weight float64, concurrency, queueCap int, svc func(size int, scale float64) float64) *Instance {
	if concurrency < 1 {
		concurrency = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	return &Instance{
		ID:          id,
		Type:        serverType,
		Model:       modelName,
		Weight:      weight,
		Concurrency: concurrency,
		QueueCap:    queueCap,
		MaxBatch:    1,
		svc:         svc,
		horizon:     math.Inf(1),
		free:        make([]float64, concurrency),
		comps:       make([]float64, 0, concurrency+queueCap),
	}
}

// EnableBatching turns the instance into a dynamic batcher with the
// given batch cap, wait window and batching-efficiency curve (eff[n]
// for n in 0..maxBatch; nil prices batches as pure coalescing). All
// per-batch buffers are preallocated here so the per-query replay path
// stays off the allocator.
func (in *Instance) EnableBatching(maxBatch int, waitS float64, eff []float64) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	in.MaxBatch = maxBatch
	in.BatchWaitS = math.Max(waitS, 0)
	in.batchEff = eff
	in.pendID = make([]int64, 0, maxBatch)
	in.pendArr = make([]float64, 0, maxBatch)
	in.pendSvc = make([]float64, 0, maxBatch)
	in.emitted = make([]Completion, 0, maxBatch)
	// Admissions are bounded by the in-service capacity plus QueueCap
	// waiting; size the completion heap once so dispatch appends never
	// grow it.
	in.comps = make([]float64, 0, max(in.Concurrency, maxBatch)+in.QueueCap+maxBatch)
}

// Slowed returns a fresh instance identical to in except that every
// service time is multiplied by k (k > 1 models a derated server:
// thermal throttling, a sick disk). Weight is deliberately unchanged —
// the control plane and the heterogeneity-aware router keep believing
// the profiled capacity, which is exactly what makes derates dangerous.
func (in *Instance) Slowed(k float64) *Instance {
	base := in.svc
	out := NewInstance(in.ID, in.Type, in.Model, in.Weight, in.Concurrency, in.QueueCap,
		func(size int, scale float64) float64 { return base(size, scale) * k })
	if in.MaxBatch > 1 {
		out.EnableBatching(in.MaxBatch, in.BatchWaitS, in.batchEff)
	}
	return out
}

// Reset clears the virtual-time state for a new replay slice with an
// unbounded busy-accounting horizon.
func (in *Instance) Reset() { in.ResetSlice(math.Inf(1)) }

// ResetSlice clears the virtual-time state for a new replay slice of
// the given length: busy-seconds accrued by Arrive are clipped to
// [0, horizonS], so a long query admitted near the slice boundary
// contributes only the portion it actually serves inside the slice.
// horizonS <= 0 disables clipping.
func (in *Instance) ResetSlice(horizonS float64) {
	for i := range in.free {
		in.free[i] = 0
	}
	in.comps = in.comps[:0]
	in.busyS = 0
	in.pendID = in.pendID[:0]
	in.pendArr = in.pendArr[:0]
	in.pendSvc = in.pendSvc[:0]
	in.emitted = in.emitted[:0]
	if horizonS <= 0 {
		horizonS = math.Inf(1)
	}
	in.horizon = horizonS
	in.Served, in.Dropped = 0, 0
}

// Outstanding returns the number of admitted queries not yet complete
// at the given instant, including the members of a forming batch. A
// forming batch whose launch instant has passed is dispatched here
// (its completions buffer in emitted until the next ArriveBatched or
// FlushPending drains them), so router inspections never see phantom
// load from a batch that has virtually launched — the launch instant
// is a function of instance state alone, never of who observes it.
func (in *Instance) Outstanding(now float64) int {
	if len(in.pendArr) > 0 {
		if launch := math.Max(in.pendOpen+in.BatchWaitS, in.free[0]); launch <= now {
			in.emitted = in.dispatchPending(launch, in.emitted)
		}
	}
	h := in.comps
	for len(h) > 0 && h[0] <= now {
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		siftDown(h, 0)
	}
	in.comps = h
	return len(h) + len(in.pendArr)
}

// Utilization returns the mean busy fraction of the instance's service
// channels over a slice of the given length.
func (in *Instance) Utilization(sliceS float64) float64 {
	if sliceS <= 0 || in.Concurrency == 0 {
		return 0
	}
	return math.Min(in.busyS/(float64(in.Concurrency)*sliceS), 1)
}

// addBusy accrues one service span's channel-seconds, clipped to the
// slice horizon.
func (in *Instance) addBusy(start, done float64) {
	if done > in.horizon {
		done = in.horizon
	}
	if done > start {
		in.busyS += done - start
	}
}

// Arrive offers one query (service keyed by size and scale) at time
// now. It returns the query's completion time and false, or 0 and true
// when the bounded queue rejects it. This is the unbatched path
// (MaxBatch 1); batching engines call ArriveBatched instead.
func (in *Instance) Arrive(now float64, size int, scale float64) (doneAt float64, dropped bool) {
	_, doneAt, dropped = in.arrive(now, size, scale)
	return doneAt, dropped
}

// arrive is Arrive's core, additionally exposing the service start
// instant (what separates queue wait from service span) so the traced
// replay can emit enqueue/start/end events without re-deriving queue
// state.
func (in *Instance) arrive(now float64, size int, scale float64) (startAt, doneAt float64, dropped bool) {
	if in.Outstanding(now) >= in.Concurrency+in.QueueCap {
		in.Dropped++
		return 0, 0, true
	}
	s := in.svc(size, scale)
	if math.IsInf(s, 0) || s <= 0 {
		in.Dropped++
		return 0, 0, true
	}
	// Earliest-free channel, non-preemptive FCFS: the heap root is the
	// channel that frees first. Which tied channel wins is irrelevant —
	// only the multiset of free instants feeds back into the replay.
	start := now
	if in.free[0] > now {
		start = in.free[0]
	}
	done := start + s
	in.free[0] = done
	siftDown(in.free, 0)
	in.addBusy(start, done)
	in.comps = append(in.comps, done)
	siftUp(in.comps, len(in.comps)-1)
	in.Served++
	return start, done, false
}

// ArriveBatched offers one query (identified by id, for the emitted
// Completions) to a batching instance at time now. A forming batch
// whose launch instant has passed dispatches first — a batch launches
// at its wait-window deadline or when the server frees, whichever is
// later, so batches keep collecting members while the server is busy
// and the launch instant never depends on when the replay happens to
// observe it. Then the query joins the forming batch, and a batch that
// reaches MaxBatch dispatches immediately. Completions emitted by
// either dispatch are appended to out; the second return reports
// whether this query was rejected by the bounded queue
// (max(Concurrency, MaxBatch) in service plus QueueCap waiting).
func (in *Instance) ArriveBatched(id int64, now float64, size int, scale float64, out []Completion) ([]Completion, bool) {
	out = in.drainEmitted(out)
	if len(in.pendArr) > 0 {
		if launch := math.Max(in.pendOpen+in.BatchWaitS, in.free[0]); launch <= now {
			out = in.dispatchPending(launch, out)
		}
	}
	if in.Outstanding(now) >= max(in.Concurrency, in.MaxBatch)+in.QueueCap {
		in.Dropped++
		return out, true
	}
	s := in.svc(size, scale)
	if math.IsInf(s, 0) || s <= 0 {
		in.Dropped++
		return out, true
	}
	if len(in.pendArr) == 0 {
		in.pendOpen = now
	}
	in.pendID = append(in.pendID, id)
	in.pendArr = append(in.pendArr, now)
	in.pendSvc = append(in.pendSvc, s)
	if len(in.pendArr) >= in.MaxBatch {
		out = in.dispatchPending(now, out)
	}
	return out, false
}

// Pending returns the size of the forming (not yet dispatched) batch.
func (in *Instance) Pending() int { return len(in.pendArr) }

// FlushPending drains buffered completions and dispatches the forming
// batch, if any, at its scheduled launch instant — the end-of-slice
// drain, so queries admitted late in a slice still complete and report
// latencies.
func (in *Instance) FlushPending(out []Completion) []Completion {
	out = in.drainEmitted(out)
	if len(in.pendArr) == 0 {
		return out
	}
	return in.dispatchPending(math.Max(in.pendOpen+in.BatchWaitS, in.free[0]), out)
}

// drainEmitted moves completions buffered by Outstanding-triggered
// dispatches into the caller's sink.
func (in *Instance) drainEmitted(out []Completion) []Completion {
	if len(in.emitted) > 0 {
		out = append(out, in.emitted...)
		in.emitted = in.emitted[:0]
	}
	return out
}

// dispatchPending launches the forming batch at time at on the
// min(n, c) earliest-free channels: the group barrier models the batch
// engaging that share of the server's parallelism for the whole-batch
// makespan — the members' solo service times summed and scaled by the
// batching-efficiency curve. Every member completes when the batch
// does, and one Completion per member is appended to out.
func (in *Instance) dispatchPending(at float64, out []Completion) []Completion {
	n := len(in.pendArr)
	var s float64
	for _, v := range in.pendSvc {
		s += v
	}
	if in.batchEff != nil && n < len(in.batchEff) {
		s *= in.batchEff[n]
	}
	// Claim the k earliest-free channels; the batch starts when the
	// last of them frees (or at the launch instant, if later).
	k := min(n, len(in.free))
	start := at
	h := in.free
	m := len(h)
	for i := 0; i < k; i++ {
		if h[0] > start {
			start = h[0]
		}
		m--
		h[0] = h[m]
		h = h[:m]
		siftDown(h, 0)
	}
	done := start + s
	for i := 0; i < k; i++ {
		h = append(h, done)
		siftUp(h, len(h)-1)
	}
	in.free = h
	clip := done
	if clip > in.horizon {
		clip = in.horizon
	}
	if clip > start {
		in.busyS += float64(k) * (clip - start)
	}
	for i, arr := range in.pendArr {
		in.comps = append(in.comps, done)
		siftUp(in.comps, len(in.comps)-1)
		out = append(out, Completion{ID: in.pendID[i], ArrivalS: arr, StartS: start, DoneS: done, Batch: n})
	}
	in.Served += n
	in.pendID = in.pendID[:0]
	in.pendArr = in.pendArr[:0]
	in.pendSvc = in.pendSvc[:0]
	return out
}

// siftUp restores the min-heap property after appending at index i.
func siftUp(h []float64, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// siftDown restores the min-heap property after replacing index i.
func siftDown(h []float64, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && h[r] < h[l] {
			least = r
		}
		if h[i] <= h[least] {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
