package fleet

import (
	"container/heap"
	"math"
)

// Instance is one activated server in the fleet: an M/G/c/(c+K) queue
// whose per-query service times come from a ServiceSource. Concurrency
// c models the server's co-located inference threads (calibrated so
// saturation throughput matches the profiled latency-bounded QPS), and
// K is the bounded dispatch queue; arrivals beyond c+K outstanding
// queries are dropped.
//
// Instances are not safe for concurrent use; the engine gives each
// replay shard exclusive ownership of its instances.
type Instance struct {
	ID    int
	Type  string // server type label ("T1".."T10")
	Model string // model the server is provisioned for
	// Weight is the profiled latency-bounded capacity (QPS) of this
	// (type, model) pair — the heterogeneity-aware router's signal.
	Weight float64
	// Concurrency is the number of queries the server works on at once.
	Concurrency int
	// QueueCap is the number of waiting slots behind the in-service
	// queries; 0 means no waiting room (pure loss system).
	QueueCap int

	svc func(size int, scale float64) float64

	// Virtual-time state for one replay slice.
	free  []float64 // per-channel next-free instants
	comps compHeap  // completion times of outstanding queries
	busyS float64   // accumulated channel-seconds of service
	// Served/Dropped count this slice's admissions and rejections.
	Served, Dropped int
}

// NewInstance builds an instance with the given service-time function.
func NewInstance(id int, serverType, modelName string, weight float64, concurrency, queueCap int, svc func(size int, scale float64) float64) *Instance {
	if concurrency < 1 {
		concurrency = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	return &Instance{
		ID:          id,
		Type:        serverType,
		Model:       modelName,
		Weight:      weight,
		Concurrency: concurrency,
		QueueCap:    queueCap,
		svc:         svc,
		free:        make([]float64, concurrency),
	}
}

// Slowed returns a fresh instance identical to in except that every
// service time is multiplied by k (k > 1 models a derated server:
// thermal throttling, a sick disk). Weight is deliberately unchanged —
// the control plane and the heterogeneity-aware router keep believing
// the profiled capacity, which is exactly what makes derates dangerous.
func (in *Instance) Slowed(k float64) *Instance {
	base := in.svc
	return NewInstance(in.ID, in.Type, in.Model, in.Weight, in.Concurrency, in.QueueCap,
		func(size int, scale float64) float64 { return base(size, scale) * k })
}

// Reset clears the virtual-time state for a new replay slice.
func (in *Instance) Reset() {
	for i := range in.free {
		in.free[i] = 0
	}
	in.comps = in.comps[:0]
	in.busyS = 0
	in.Served, in.Dropped = 0, 0
}

// Outstanding returns the number of admitted queries not yet complete
// at the given instant.
func (in *Instance) Outstanding(now float64) int {
	for len(in.comps) > 0 && in.comps[0] <= now {
		heap.Pop(&in.comps)
	}
	return len(in.comps)
}

// Utilization returns the mean busy fraction of the instance's service
// channels over a slice of the given length.
func (in *Instance) Utilization(sliceS float64) float64 {
	if sliceS <= 0 || in.Concurrency == 0 {
		return 0
	}
	return math.Min(in.busyS/(float64(in.Concurrency)*sliceS), 1)
}

// Arrive offers one query (service keyed by size and scale) at time
// now. It returns the query's completion time and false, or 0 and true
// when the bounded queue rejects it.
func (in *Instance) Arrive(now float64, size int, scale float64) (doneAt float64, dropped bool) {
	if in.Outstanding(now) >= in.Concurrency+in.QueueCap {
		in.Dropped++
		return 0, true
	}
	s := in.svc(size, scale)
	if math.IsInf(s, 0) || s <= 0 {
		in.Dropped++
		return 0, true
	}
	// Earliest-free channel, non-preemptive FCFS.
	ch := 0
	for i := 1; i < len(in.free); i++ {
		if in.free[i] < in.free[ch] {
			ch = i
		}
	}
	start := math.Max(now, in.free[ch])
	done := start + s
	in.free[ch] = done
	in.busyS += s
	heap.Push(&in.comps, done)
	in.Served++
	return done, false
}

// compHeap is a min-heap of completion instants.
type compHeap []float64

func (h compHeap) Len() int           { return len(h) }
func (h compHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h compHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *compHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *compHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
