package fleet

import "math"

// Admission is the SLA-aware load-shedding policy consulted at the
// fleet's front door: once per trace interval and workload, it decides
// what fraction of the model's offered arrivals to reject at admission
// — before any router sees them — from what the previous interval
// observed. Shed queries are counted in IntervalStats.Shed (the same
// accounting as scenario shedding drills), never as queue drops or SLA
// breaches: the whole point of shedding is that a rejected query is
// cheaper than a query served past its deadline.
//
// Admission policies registered by name (RegisterAdmission) are
// selectable via Spec.Admission; a nil Engine.Admission admits
// everything, which is the default and replays bit-identically to the
// pre-admission engine.
type Admission interface {
	Name() string
	// ShedFrac returns the fraction in [0, 1) of the model's arrivals
	// to reject at admission this interval. The engine clamps returns
	// to [0, 0.95] — an admission policy may starve a workload, but
	// never silence it completely.
	ShedFrac(sig AdmissionSignal) float64
}

// AdmissionSignal is what an admission policy may condition on: the
// interval's offered load plus the previous interval's observed tail
// and drop rate for the model (zero values for the first interval —
// admission control has nothing to react to yet).
type AdmissionSignal struct {
	Model       string
	SLATargetMS float64
	OfferedQPS  float64
	// PrevP99MS is the model's p99 over the previous interval's
	// replayed slice; PrevDropFrac its queue-drop fraction.
	PrevP99MS    float64
	PrevDropFrac float64
	// GridGPerKWh is the interval's grid carbon intensity and
	// GridMeanGPerKWh the day's mean; DeferrableFrac is the share of
	// the stream in the deferrable query class — the ceiling a
	// carbon-aware policy may defer to cleaner hours (the realtime
	// remainder is never its to shed). All zero when no grid is
	// configured.
	GridGPerKWh     float64
	GridMeanGPerKWh float64
	DeferrableFrac  float64
}

func init() {
	RegisterAdmission("deadline", func() Admission { return NewDeadlineAdmission() })
}

// DeadlineAdmission is the deadline-aware shedding policy (registered
// as "deadline"): when the previous interval's p99 overshot the
// model's SLA — meaning the marginal query was already being served
// past its deadline — it sheds a fraction proportional to the relative
// overshoot, plus whatever fraction the bounded queues were already
// dropping (those queries queued, aged, and died anyway; rejecting
// them at the door frees their service time for queries that can still
// make the deadline). A fleet inside its SLA sheds nothing.
type DeadlineAdmission struct {
	// Gain converts relative p99 overshoot into shed fraction
	// (default 0.5: a p99 at 2× the SLA sheds half the stream, before
	// the drop-fraction term).
	Gain float64
	// MaxShed caps the shed fraction (default 0.5).
	MaxShed float64
}

// NewDeadlineAdmission returns a deadline-aware shedder with the
// default tuning.
func NewDeadlineAdmission() *DeadlineAdmission {
	return &DeadlineAdmission{Gain: 0.5, MaxShed: 0.5}
}

// Name implements Admission.
func (d *DeadlineAdmission) Name() string { return "deadline" }

// ShedFrac implements Admission.
func (d *DeadlineAdmission) ShedFrac(sig AdmissionSignal) float64 {
	if sig.SLATargetMS <= 0 {
		return 0
	}
	over := (sig.PrevP99MS - sig.SLATargetMS) / sig.SLATargetMS
	if over < 0 {
		over = 0
	}
	frac := d.Gain*over + sig.PrevDropFrac
	return math.Min(math.Max(frac, 0), d.MaxShed)
}
