package fleet

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"hercules/internal/cluster"
	"hercules/internal/stats"
	"hercules/internal/telemetry"
)

// The tracing tests pin the tentpole claims of the telemetry layer:
// tracing never perturbs the replay (identical DayResult traced vs
// untraced), the emitted trace is a pure function of the spec (byte
// identity across sequential and parallel execution at any shard cap
// whose decomposition coincides), and every traced router makes
// exactly the decisions its untraced Pick would.

// tracedRun replays goldenTraceWorkloads on a testEngine with the given
// shard geometry, 1-in-64 sampling, and an NDJSON sink; it returns the
// trace bytes and the DayResult.
func tracedRun(t *testing.T, shards int, sequential bool) ([]byte, DayResult) {
	t.Helper()
	opts := testOpts()
	opts.Shards = shards
	opts.Sequential = sequential
	opts.TraceSample = 64
	e := testEngine(PowerOfTwo, opts)
	var buf bytes.Buffer
	e.Tracer.AddSink(telemetry.NewNDJSONWriter(&buf))
	res, err := e.RunDay(goldenTraceWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// goldenTraceWorkloads is a deliberately small day: at 200/400/600
// QPS the greedy provisioner never allocates more than 4 T2 servers
// per interval, so Shards=4 and Shards=8 produce identical shard
// decompositions (n = min(shardCap, pool)) — the strongest trace
// byte-identity claim available across shard caps.
func goldenTraceWorkloads() []cluster.Workload {
	return []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(200, 400, 600),
	}}
}

// TestGoldenTraceByteIdentity: the sampled trace must be byte-for-byte
// identical across sequential and parallel replays and across shard
// caps with coinciding decompositions, and must match the committed
// golden — the proof that trace emission is deterministic, not merely
// "deterministic up to goroutine scheduling".
func TestGoldenTraceByteIdentity(t *testing.T) {
	if os.Getenv("REGEN_GOLDEN_TRACE") != "" {
		got, _ := tracedRun(t, 4, true)
		if err := os.WriteFile("testdata/golden_trace.ndjson", got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated golden trace: %d bytes", len(got))
	}
	want, err := os.ReadFile("testdata/golden_trace.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		name       string
		shards     int
		sequential bool
	}{
		{"seq-4", 4, true},
		{"par-4", 4, false},
		{"par-8", 8, false},
	} {
		got, _ := tracedRun(t, cfg.shards, cfg.sequential)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: trace diverged from golden (%d vs %d bytes)",
				cfg.name, len(got), len(want))
		}
	}
}

// TestTracingDoesNotPerturbReplay: enabling the tracer — even at full
// sampling — must leave the DayResult bit-identical to the untraced
// replay. Tracing reads the replay; it never participates in it.
func TestTracingDoesNotPerturbReplay(t *testing.T) {
	base := testOpts()
	base.Shards = 4
	untraced, err := testEngine(PowerOfTwo, base).RunDay(goldenTraceWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	for _, sample := range []int{1, 16} {
		opts := base
		opts.TraceSample = sample
		e := testEngine(PowerOfTwo, opts)
		sink := &telemetry.CountSink{}
		e.Tracer.AddSink(sink)
		traced, err := e.RunDay(goldenTraceWorkloads())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(traced, untraced) {
			t.Errorf("sample 1/%d: tracing changed the DayResult", sample)
		}
		if sink.Total == 0 {
			t.Errorf("sample 1/%d: no events emitted", sample)
		}
	}
}

// TestTracedBatchedReplayDeterministic extends both claims to the
// dynamic-batching loop: parallel batched trace == sequential batched
// trace, and the traced batched DayResult equals the untraced one.
func TestTracedBatchedReplayDeterministic(t *testing.T) {
	run := func(sequential bool, sample int) ([]byte, DayResult) {
		opts := testOpts()
		opts.Shards = 4
		opts.MaxBatch = 4
		opts.BatchWaitS = 0.004
		opts.Sequential = sequential
		opts.TraceSample = sample
		e := testEngine(WeightedHetero, opts)
		e.Service = constBatchSource{}
		var buf bytes.Buffer
		if e.Tracer != nil {
			e.Tracer.AddSink(telemetry.NewNDJSONWriter(&buf))
		}
		res, err := e.RunDay(goldenTraceWorkloads())
		if err != nil {
			t.Fatal(err)
		}
		if e.Tracer != nil {
			if err := e.Tracer.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes(), res
	}
	seqTrace, seqRes := run(true, 8)
	parTrace, parRes := run(false, 8)
	if !bytes.Equal(seqTrace, parTrace) {
		t.Error("batched parallel trace diverged from sequential")
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Error("batched parallel DayResult diverged from sequential")
	}
	_, untraced := run(false, 0)
	if !reflect.DeepEqual(parRes, untraced) {
		t.Error("tracing changed the batched DayResult")
	}
}

// TestTracedRoutersMatchUntraced: for every registered router,
// PickTraced must make the identical decision sequence Pick makes —
// same picks, same RNG draws, same instance-state evolution — while
// filling in the routing event. Two mirrored simulations with shared
// seeds catch any divergence in draw count or Outstanding() order.
func TestTracedRoutersMatchUntraced(t *testing.T) {
	for _, kind := range AllRouters {
		plain, err := NewRouter(kind)
		if err != nil {
			t.Fatal(err)
		}
		tracedR, err := NewRouter(kind)
		if err != nil {
			t.Fatal(err)
		}
		tr, ok := tracedR.(TracedRouter)
		if !ok {
			t.Fatalf("%s does not implement TracedRouter", kind)
		}
		instsA := constInstances(5, "T2", 0.008, 100, 16)
		instsB := constInstances(5, "T2", 0.008, 100, 16)
		rngA := stats.NewRand(99)
		rngB := stats.NewRand(99)
		now := 0.0
		var ev telemetry.Event
		for i := 0; i < 400; i++ {
			pa := plain.Pick(instsA, now, rngA)
			ev = telemetry.Event{}
			pb := tr.PickTraced(instsB, now, rngB, &ev)
			if pa != pb {
				t.Fatalf("%s: decision %d diverged: Pick=%d PickTraced=%d", kind, i, pa, pb)
			}
			if ev.NCand == 0 {
				t.Fatalf("%s: no candidates recorded", kind)
			}
			// The chosen instance must be among the recorded candidates
			// (the engine stamps ev.Instance itself after PickTraced).
			found := false
			for c := 0; c < int(ev.NCand) && c < telemetry.MaxCandidates; c++ {
				if int(ev.Cand[c]) == instsB[pb].ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: picked instance %d not among %d recorded candidates",
					kind, instsB[pb].ID, ev.NCand)
			}
			instsA[pa].Arrive(now, 100, 1)
			instsB[pb].Arrive(now, 100, 1)
			now += 0.0007
		}
		for i := range instsA {
			if instsA[i].Served != instsB[i].Served || instsA[i].Dropped != instsB[i].Dropped {
				t.Fatalf("%s: instance %d state diverged (%d/%d vs %d/%d)", kind, i,
					instsA[i].Served, instsA[i].Dropped, instsB[i].Served, instsB[i].Dropped)
			}
		}
	}
}

// TestSketchTailsDeterministicAndClose: the sketch-based tail path
// must stay deterministic across parallel and sequential replays
// (bucket-wise merges are order-independent), and its percentiles must
// track the exact path within the sketch's relative-error bound.
func TestSketchTailsDeterministicAndClose(t *testing.T) {
	run := func(sequential, sketch bool) DayResult {
		opts := testOpts()
		opts.Shards = 4
		opts.Sequential = sequential
		opts.SketchTails = sketch
		res, err := testEngine(PowerOfTwo, opts).RunDay(goldenWorkloads())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(true, true)
	par := run(false, true)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("sketch-tails parallel replay diverged from sequential")
	}
	exact := run(true, false)
	if len(seq.Steps) != len(exact.Steps) {
		t.Fatal("step count diverged")
	}
	// DefaultSketchAlpha is 1% relative error; allow 3% to absorb the
	// rank interpolation difference between PercentileSelect and the
	// sketch's bucket midpoint.
	const tol = 0.03
	for i := range seq.Steps {
		for _, pair := range [][2]float64{
			{seq.Steps[i].P95MS, exact.Steps[i].P95MS},
			{seq.Steps[i].P99MS, exact.Steps[i].P99MS},
		} {
			got, want := pair[0], pair[1]
			if want == 0 {
				continue
			}
			if diff := (got - want) / want; diff > tol || diff < -tol {
				t.Errorf("interval %d: sketch tail %.4f vs exact %.4f (%.2f%% off)",
					i, got, want, diff*100)
			}
		}
	}
	if seq.TotalQueries != exact.TotalQueries || seq.TotalDrops != exact.TotalDrops {
		t.Error("sketch path changed query accounting")
	}
}
