package fleet

import (
	"fmt"

	"hercules/internal/cluster"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/scenario"
	"hercules/internal/telemetry"
	"hercules/internal/workload"
)

// Spec is the one JSON-serializable description of a fleet replay run:
// the named fleet, the workload models, every policy by its registered
// name, the scenario, the trace geometry and the engine tuning. CLIs,
// experiment drivers and examples all construct engines from a Spec
// (NewEngine), so a run can be saved, diffed, and replayed from a
// single JSON document — `hercules-fleet -spec run.json` — instead of
// a per-caller pile of options plumbing.
//
// Zero values defer to DefaultSpec: an empty Fleet means "small", an
// empty Router "p2c", and an all-zero Options means DefaultOptions().
// The explicit string "none" disables the autoscaler or admission
// policy (an empty string selects the default).
type Spec struct {
	// Fleet names the cluster (hw.NamedFleet): small, cpu, default or
	// accelerated. WithFleet overrides it for unnamed fleets.
	Fleet string `json:"fleet,omitempty"`
	// Models are the workload models replayed against the fleet.
	Models []string `json:"models,omitempty"`
	// Router, Policy, Scaler and Admission select policies by
	// registered name (RouterNames, cluster.PolicyNames, ScalerNames,
	// AdmissionNames).
	Router    string `json:"router,omitempty"`
	Policy    string `json:"policy,omitempty"`
	Scaler    string `json:"scaler,omitempty"`
	Admission string `json:"admission,omitempty"`
	// Scenario injects a non-stationary timeline: a built-in name, a
	// @file.json reference, or inline JSON (scenario.Parse).
	Scenario string `json:"scenario,omitempty"`
	// Trace replays a recorded NDJSON arrival trace (the fleet CLI's
	// -record output, or any tracer export at sample 1) instead of
	// synthesizing the diurnal day: the path is loaded with LoadTrace
	// and installed as Engine.TraceSrc. When Models is empty the
	// trace's models are adopted.
	Trace string `json:"trace,omitempty"`
	// Cache models a request cache tier in front of routing (hit-rate
	// curves keyed by tracked warmth; see CacheSpec). The zero value
	// disables it.
	Cache CacheSpec `json:"cache,omitempty"`
	// HeadroomR is the provisioner's over-provision rate R; 0 defers
	// to DefaultSpec's serving headroom (0.15).
	HeadroomR float64 `json:"headroom_r,omitempty"`
	// Days, StepMin and PeakQPS shape the synthesized diurnal day
	// (Engine.Workloads); PeakQPS 0 auto-sizes each workload's peak to
	// ~45% of the fleet's capacity for it.
	Days    int     `json:"days,omitempty"`
	StepMin float64 `json:"step_min,omitempty"`
	PeakQPS float64 `json:"peak_qps,omitempty"`
	// Options is the engine tuning (batching, slice geometry, seed).
	Options Options `json:"options"`
}

// DefaultSpec returns the canonical run: the small characterization
// fleet serving RMC1+RMC2 for one diurnal day, p2c routing, Hercules
// provisioning at 15% headroom, the breach autoscaler, no admission
// shedding, and DefaultOptions tuning.
func DefaultSpec() Spec {
	return Spec{
		Fleet:     "small",
		Models:    []string{"DLRM-RMC1", "DLRM-RMC2"},
		Router:    PowerOfTwo,
		Policy:    "hercules",
		Scaler:    "breach",
		Admission: "none",
		Scenario:  "baseline",
		HeadroomR: 0.15,
		Days:      1,
		StepMin:   60,
		Options:   DefaultOptions(),
	}
}

// withDefaults fills a spec's zero values from DefaultSpec.
func (s Spec) withDefaults() Spec {
	def := DefaultSpec()
	if s.Fleet == "" {
		s.Fleet = def.Fleet
	}
	if len(s.Models) == 0 {
		s.Models = def.Models
	}
	if s.Router == "" {
		s.Router = def.Router
	}
	if s.Policy == "" {
		s.Policy = def.Policy
	}
	if s.Scaler == "" {
		s.Scaler = def.Scaler
	}
	if s.Admission == "" {
		s.Admission = def.Admission
	}
	if s.Scenario == "" {
		s.Scenario = def.Scenario
	}
	if s.HeadroomR <= 0 {
		s.HeadroomR = def.HeadroomR
	}
	if s.Days <= 0 {
		s.Days = def.Days
	}
	if s.StepMin <= 0 {
		s.StepMin = def.StepMin
	}
	if s.Options == (Options{}) {
		s.Options = def.Options
	}
	return s
}

// Option customizes NewEngine beyond what a serializable Spec can
// carry: process-local objects like a loaded profiler table, a stubbed
// service source, a custom fleet, or observer hooks.
type Option func(*engineConfig)

type engineConfig struct {
	fleet        *hw.Fleet
	table        *profiler.Table
	service      ServiceSource
	scaler       Scaler
	scalerSet    bool
	admission    Admission
	admissionSet bool
	observers    []Observer
	tracer       *telemetry.Tracer
	traceSrc     *TraceSource
}

// WithFleet overrides the spec's named fleet with an explicit one —
// for clusters that have no name (synthetic test fleets, experiment
// pools).
func WithFleet(fl hw.Fleet) Option { return func(c *engineConfig) { c.fleet = &fl } }

// WithTable supplies the profiled efficiency table. Without it,
// NewEngine quick-calibrates the spec's (model, server type) pairs on
// the fly (seconds — CalibrateTable), which is convenient but
// recalibrates per engine.
func WithTable(t *profiler.Table) Option { return func(c *engineConfig) { c.table = t } }

// WithService overrides the per-query service-time source (default:
// the process-wide shared SimService over the engine's table).
func WithService(src ServiceSource) Option { return func(c *engineConfig) { c.service = src } }

// WithScaler overrides the spec's named autoscaler with a constructed
// one (custom tuning); WithScaler(nil) disables autoscaling.
func WithScaler(s Scaler) Option {
	return func(c *engineConfig) { c.scaler, c.scalerSet = s, true }
}

// WithAdmission overrides the spec's named admission policy with a
// constructed one; WithAdmission(nil) admits everything.
func WithAdmission(a Admission) Option {
	return func(c *engineConfig) { c.admission, c.admissionSet = a, true }
}

// WithObserver registers a per-interval stats sink (Observer) on the
// engine; repeat for several sinks.
func WithObserver(o Observer) Option {
	return func(c *engineConfig) { c.observers = append(c.observers, o) }
}

// WithTraceSource installs an already-loaded arrival trace, taking
// precedence over Spec.Trace — for callers that parsed or built the
// trace themselves (tests, in-memory record→replay round trips).
func WithTraceSource(ts *TraceSource) Option {
	return func(c *engineConfig) { c.traceSrc = ts }
}

// WithTracer installs a pre-configured per-query tracer (its SampleN
// takes precedence over Spec.Options.TraceSample); without it,
// NewEngine creates a sink-less tracer whenever Options.TraceSample
// > 0 — callers attach export sinks via Engine.Tracer.AddSink before
// RunDay and Close it after the run.
func WithTracer(t *telemetry.Tracer) Option {
	return func(c *engineConfig) { c.tracer = t }
}

// NewEngine assembles a replay engine from a serializable Spec plus
// process-local options: policies are resolved through the registries
// by name, the fleet through hw.NamedFleet, the scenario through
// scenario.Parse, and the provisioner is built fresh so runs with
// different policies never share arbitration RNG state. An unknown
// name of any kind is an error (listing what is registered), never a
// silent fallback.
func NewEngine(spec Spec, opts ...Option) (*Engine, error) {
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}

	// Load the arrival trace before defaulting: a trace-driven run with
	// no explicit models adopts the trace's model set, not DefaultSpec's.
	traceSrc := cfg.traceSrc
	if traceSrc == nil && spec.Trace != "" {
		var err error
		if traceSrc, err = LoadTrace(spec.Trace); err != nil {
			return nil, err
		}
	}
	if traceSrc != nil && len(spec.Models) == 0 {
		spec.Models = traceSrc.Models()
	}
	spec = spec.withDefaults()

	router, err := ParseRouter(spec.Router)
	if err != nil {
		return nil, err
	}
	spec.Router = router
	pol, err := cluster.ParsePolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	sc, err := scenario.Parse(spec.Scenario)
	if err != nil {
		return nil, err
	}

	fl, err := hw.NamedFleet(spec.Fleet)
	if cfg.fleet != nil {
		fl, err = *cfg.fleet, nil
	}
	if err != nil {
		return nil, err
	}

	scaler, err := specScaler(spec.Scaler)
	if cfg.scalerSet {
		scaler, err = cfg.scaler, nil
	}
	if err != nil {
		return nil, err
	}
	admission, err := specAdmission(spec.Admission)
	if cfg.admissionSet {
		admission, err = cfg.admission, nil
	}
	if err != nil {
		return nil, err
	}

	table := cfg.table
	if table == nil {
		models := make([]*model.Model, 0, len(spec.Models))
		for _, name := range spec.Models {
			m, err := model.ByName(name, model.Prod)
			if err != nil {
				return nil, fmt.Errorf("fleet: %w", err)
			}
			models = append(models, m)
		}
		if table, err = CalibrateTable(models, fl.Types, spec.Options.Seed); err != nil {
			return nil, err
		}
	}
	service := cfg.service
	if service == nil {
		service = SharedSimService(table)
	}

	prov := cluster.NewProvisioner(fl, table, pol, spec.Options.Seed)
	prov.OverProvisionR = spec.HeadroomR
	eng := &Engine{
		Spec:        spec,
		Fleet:       fl,
		Table:       table,
		Provisioner: prov,
		Router:      router,
		Service:     service,
		Scaler:      scaler,
		Admission:   admission,
		Scenario:    sc,
		Observers:   cfg.observers,
		TraceSrc:    traceSrc,
		Cache:       spec.Cache,
		Opts:        spec.Options,
	}
	if cfg.tracer != nil {
		eng.Tracer = cfg.tracer
	} else if spec.Options.TraceSample > 0 {
		eng.Tracer = telemetry.NewTracer(spec.Options.Seed, spec.Options.TraceSample, 0)
	}
	return eng, nil
}

// specScaler resolves a spec's autoscaler name ("none" disables).
func specScaler(name string) (Scaler, error) {
	if name == "none" {
		return nil, nil
	}
	return NewScaler(name)
}

// specAdmission resolves a spec's admission-policy name ("none"
// admits everything).
func specAdmission(name string) (Admission, error) {
	if name == "none" {
		return nil, nil
	}
	return NewAdmission(name)
}

// Workloads synthesizes the engine's diurnal day from its spec: one
// trace per model over Spec.Days days at Spec.StepMin-minute
// intervals, peaks at Spec.PeakQPS — or, when 0, auto-sized so each
// workload peaks at ~45% of the fleet's best-case capacity for it,
// split across the workloads: high enough that stale allocations hurt
// at the peak, low enough that the fleet is never simply exhausted.
func (e *Engine) Workloads() []cluster.Workload {
	spec := e.Spec.withDefaults()
	if e.TraceSrc != nil {
		// A recorded day is its own workload description: per-model
		// offered loads verbatim from the trace's offer records.
		return e.TraceSrc.Workloads(spec.StepMin*60, spec.Options.SliceS)
	}
	ws := make([]cluster.Workload, 0, len(spec.Models))
	for i, name := range spec.Models {
		peak := spec.PeakQPS
		if peak <= 0 {
			var total float64
			for j, srv := range e.Fleet.Types {
				if entry, ok := e.Table.Get(srv.Type, name); ok && entry.QPS > 0 {
					total += entry.QPS * float64(e.Fleet.Counts[j])
				}
			}
			peak = total * 0.45 / float64(len(spec.Models))
		}
		cfg := workload.DiurnalConfig{
			Service:    name,
			PeakQPS:    peak,
			ValleyFrac: 0.4,
			PeakHour:   20,
			Days:       spec.Days,
			StepMin:    spec.StepMin,
			NoiseStd:   0.02,
			Seed:       spec.Options.Seed + int64(i),
		}
		ws = append(ws, cluster.Workload{Model: name, Trace: workload.Synthesize(cfg)})
	}
	return ws
}
