package fleet

import (
	"fmt"
	"math"

	"hercules/internal/cluster"
	"hercules/internal/grid"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/scenario"
	"hercules/internal/telemetry"
	"hercules/internal/workload"
)

// Spec is the one JSON-serializable description of a fleet replay run:
// the named fleet, the workload models, every policy by its registered
// name, the scenario, the trace geometry and the engine tuning. CLIs,
// experiment drivers and examples all construct engines from a Spec
// (NewEngine), so a run can be saved, diffed, and replayed from a
// single JSON document — `hercules-fleet -spec run.json` — instead of
// a per-caller pile of options plumbing.
//
// Zero values defer to DefaultSpec: an empty Fleet means "small", an
// empty Router "p2c", and an all-zero Options means DefaultOptions().
// The explicit string "none" disables the autoscaler or admission
// policy (an empty string selects the default).
type Spec struct {
	// SpecVersion versions the document shape: 0 (absent) or 1 is the
	// legacy single-fleet form, 2 adds Regions and Geo. Normalize
	// upgrades legacy specs in place and stamps SpecVersionCurrent; a
	// version newer than this build supports is an error, never a
	// silent misread.
	SpecVersion int `json:"spec_version,omitempty"`
	// Fleet names the cluster (hw.NamedFleet): small, cpu, default or
	// accelerated. WithFleet overrides it for unnamed fleets. In a
	// multi-region spec it is the default fleet of regions that name
	// none.
	Fleet string `json:"fleet,omitempty"`
	// Regions lists the regional fleets of a multi-region replay
	// (NewMultiEngine). Empty means the legacy single-fleet run —
	// Normalize canonicalizes it to one implicit region named "local".
	Regions []RegionSpec `json:"regions,omitempty"`
	// Geo names the registered geo-routing policy (GeoPolicyNames)
	// that moves load between regions each interval; empty defaults to
	// "local" (no cross-region routing).
	Geo string `json:"geo,omitempty"`
	// Models are the workload models replayed against the fleet.
	Models []string `json:"models,omitempty"`
	// Router, Policy, Scaler and Admission select policies by
	// registered name (RouterNames, cluster.PolicyNames, ScalerNames,
	// AdmissionNames).
	Router    string `json:"router,omitempty"`
	Policy    string `json:"policy,omitempty"`
	Scaler    string `json:"scaler,omitempty"`
	Admission string `json:"admission,omitempty"`
	// Scenario injects a non-stationary timeline: a built-in name, a
	// @file.json reference, or inline JSON (scenario.Parse).
	Scenario string `json:"scenario,omitempty"`
	// Trace replays a recorded NDJSON arrival trace (the fleet CLI's
	// -record output, or any tracer export at sample 1) instead of
	// synthesizing the diurnal day: the path is loaded with LoadTrace
	// and installed as Engine.TraceSrc. When Models is empty the
	// trace's models are adopted.
	Trace string `json:"trace,omitempty"`
	// Cache models a request cache tier in front of routing (hit-rate
	// curves keyed by tracked warmth; see CacheSpec). The zero value
	// disables it.
	Cache CacheSpec `json:"cache,omitempty"`
	// Grid prices the replay's measured energy against a grid
	// carbon-intensity timeline (gCO2/kWh curves, optionally per
	// region; see grid.Spec) and declares the deferrable query-class
	// share the carbon admission policy may shed. The zero value
	// disables carbon accounting entirely — results stay byte-identical
	// to a grid-less build.
	Grid grid.Spec `json:"grid,omitempty"`
	// HeadroomR is the provisioner's over-provision rate R; 0 defers
	// to DefaultSpec's serving headroom (0.15).
	HeadroomR float64 `json:"headroom_r,omitempty"`
	// Days, StepMin and PeakQPS shape the synthesized diurnal day
	// (Engine.Workloads); PeakQPS 0 auto-sizes each workload's peak to
	// ~45% of the fleet's capacity for it.
	Days    int     `json:"days,omitempty"`
	StepMin float64 `json:"step_min,omitempty"`
	PeakQPS float64 `json:"peak_qps,omitempty"`
	// Options is the engine tuning (batching, slice geometry, seed).
	Options Options `json:"options"`
}

// RegionSpec describes one region of a multi-region Spec: a named
// fleet serving its own diurnal population, phase-shifted against the
// other regions, with an RTT matrix entry per remote region.
type RegionSpec struct {
	// Name identifies the region (unique and non-empty).
	Name string `json:"name"`
	// Fleet names the region's cluster (hw.NamedFleet); empty inherits
	// the Spec's top-level Fleet.
	Fleet string `json:"fleet,omitempty"`
	// PhaseH shifts the region's diurnal peak by this many hours
	// (negative = earlier): a region at PhaseH -8 peaks eight hours
	// before the reference region, which is what makes follow-the-sun
	// spill work — one region's peak lands in another's valley.
	PhaseH float64 `json:"phase_h,omitempty"`
	// RTTMS maps destination region names to the round-trip time in
	// milliseconds a spilled query pays when served there. Missing
	// entries fall back to the destination's entry for this region
	// (RTT is symmetric), then to DefaultRTTMS.
	RTTMS map[string]float64 `json:"rtt_ms,omitempty"`
}

// SpecVersionCurrent is the spec-document version this build writes:
// 2, the multi-region form.
const SpecVersionCurrent = 2

// DefaultRTTMS is the inter-region RTT assumed between regions whose
// spec names no entry in either direction (a conservative
// cross-continent 80 ms).
const DefaultRTTMS = 80.0

// Normalize canonicalizes a spec to the current multi-region form:
// zero values fill from DefaultSpec, a legacy region-less spec
// becomes one implicit region named "local" on the spec's fleet,
// regions without a fleet inherit the top-level one, Geo defaults to
// "local", and SpecVersion is stamped. It validates what it
// canonicalizes — missing or duplicate region names, an RTT entry
// naming an unknown region, or a spec version newer than this build
// are errors. Normalizing an already-normal spec is the identity.
func (s Spec) Normalize() (Spec, error) {
	if s.SpecVersion > SpecVersionCurrent {
		return s, fmt.Errorf("fleet: spec version %d is newer than this build supports (max %d)",
			s.SpecVersion, SpecVersionCurrent)
	}
	s = s.withDefaults()
	regions := make([]RegionSpec, len(s.Regions))
	copy(regions, s.Regions)
	if len(regions) == 0 {
		regions = []RegionSpec{{Name: "local"}}
	}
	known := make(map[string]bool, len(regions))
	for i := range regions {
		if regions[i].Name == "" {
			return s, fmt.Errorf("fleet: region %d has no name", i)
		}
		if known[regions[i].Name] {
			return s, fmt.Errorf("fleet: duplicate region %q", regions[i].Name)
		}
		known[regions[i].Name] = true
		if regions[i].Fleet == "" {
			regions[i].Fleet = s.Fleet
		}
	}
	for _, r := range regions {
		for dst := range r.RTTMS {
			if !known[dst] {
				return s, fmt.Errorf("fleet: region %q rtt_ms names unknown region %q", r.Name, dst)
			}
		}
	}
	s.Regions = regions
	if s.Geo == "" {
		s.Geo = GeoLocal
	}
	s.SpecVersion = SpecVersionCurrent
	return s, nil
}

// DefaultSpec returns the canonical run: the small characterization
// fleet serving RMC1+RMC2 for one diurnal day, p2c routing, Hercules
// provisioning at 15% headroom, the breach autoscaler, no admission
// shedding, and DefaultOptions tuning.
func DefaultSpec() Spec {
	return Spec{
		Fleet:     "small",
		Models:    []string{"DLRM-RMC1", "DLRM-RMC2"},
		Router:    PowerOfTwo,
		Policy:    "hercules",
		Scaler:    "breach",
		Admission: "none",
		Scenario:  "baseline",
		HeadroomR: 0.15,
		Days:      1,
		StepMin:   60,
		Options:   DefaultOptions(),
	}
}

// withDefaults fills a spec's zero values from DefaultSpec.
func (s Spec) withDefaults() Spec {
	def := DefaultSpec()
	if s.Fleet == "" {
		s.Fleet = def.Fleet
	}
	if len(s.Models) == 0 {
		s.Models = def.Models
	}
	if s.Router == "" {
		s.Router = def.Router
	}
	if s.Policy == "" {
		s.Policy = def.Policy
	}
	if s.Scaler == "" {
		s.Scaler = def.Scaler
	}
	if s.Admission == "" {
		s.Admission = def.Admission
	}
	if s.Scenario == "" {
		s.Scenario = def.Scenario
	}
	if s.HeadroomR <= 0 {
		s.HeadroomR = def.HeadroomR
	}
	if s.Days <= 0 {
		s.Days = def.Days
	}
	if s.StepMin <= 0 {
		s.StepMin = def.StepMin
	}
	if s.Options == (Options{}) {
		s.Options = def.Options
	}
	return s
}

// Option customizes NewEngine beyond what a serializable Spec can
// carry: process-local objects like a loaded profiler table, a stubbed
// service source, a custom fleet, or observer hooks.
type Option func(*engineConfig)

type engineConfig struct {
	fleet        *hw.Fleet
	table        *profiler.Table
	service      ServiceSource
	scaler       Scaler
	scalerSet    bool
	admission    Admission
	admissionSet bool
	observers    []Observer
	tracer       *telemetry.Tracer
	traceSrc     *TraceSource
}

// WithFleet overrides the spec's named fleet with an explicit one —
// for clusters that have no name (synthetic test fleets, experiment
// pools).
func WithFleet(fl hw.Fleet) Option { return func(c *engineConfig) { c.fleet = &fl } }

// WithTable supplies the profiled efficiency table. Without it,
// NewEngine quick-calibrates the spec's (model, server type) pairs on
// the fly (seconds — CalibrateTable), which is convenient but
// recalibrates per engine.
func WithTable(t *profiler.Table) Option { return func(c *engineConfig) { c.table = t } }

// WithService overrides the per-query service-time source (default:
// the process-wide shared SimService over the engine's table).
func WithService(src ServiceSource) Option { return func(c *engineConfig) { c.service = src } }

// WithScaler overrides the spec's named autoscaler with a constructed
// one (custom tuning); WithScaler(nil) disables autoscaling.
func WithScaler(s Scaler) Option {
	return func(c *engineConfig) { c.scaler, c.scalerSet = s, true }
}

// WithAdmission overrides the spec's named admission policy with a
// constructed one; WithAdmission(nil) admits everything.
func WithAdmission(a Admission) Option {
	return func(c *engineConfig) { c.admission, c.admissionSet = a, true }
}

// WithObserver registers a per-interval stats sink (Observer) on the
// engine; repeat for several sinks.
func WithObserver(o Observer) Option {
	return func(c *engineConfig) { c.observers = append(c.observers, o) }
}

// WithTraceSource installs an already-loaded arrival trace, taking
// precedence over Spec.Trace — for callers that parsed or built the
// trace themselves (tests, in-memory record→replay round trips).
func WithTraceSource(ts *TraceSource) Option {
	return func(c *engineConfig) { c.traceSrc = ts }
}

// WithTracer installs a pre-configured per-query tracer (its SampleN
// takes precedence over Spec.Options.TraceSample); without it,
// NewEngine creates a sink-less tracer whenever Options.TraceSample
// > 0 — callers attach export sinks via Engine.Tracer.AddSink before
// RunDay and Close it after the run.
func WithTracer(t *telemetry.Tracer) Option {
	return func(c *engineConfig) { c.tracer = t }
}

// NewEngine assembles a replay engine from a serializable Spec plus
// process-local options: policies are resolved through the registries
// by name, the fleet through hw.NamedFleet, the scenario through
// scenario.Parse, and the provisioner is built fresh so runs with
// different policies never share arbitration RNG state. An unknown
// name of any kind is an error (listing what is registered), never a
// silent fallback.
func NewEngine(spec Spec, opts ...Option) (*Engine, error) {
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}

	// Load the arrival trace before defaulting: a trace-driven run with
	// no explicit models adopts the trace's model set, not DefaultSpec's.
	traceSrc := cfg.traceSrc
	if traceSrc == nil && spec.Trace != "" {
		var err error
		if traceSrc, err = LoadTrace(spec.Trace); err != nil {
			return nil, err
		}
	}
	if traceSrc != nil && len(spec.Models) == 0 {
		spec.Models = traceSrc.Models()
	}
	spec = spec.withDefaults()
	if len(spec.Regions) > 1 {
		return nil, fmt.Errorf("fleet: spec has %d regions; use NewMultiEngine for multi-region replays", len(spec.Regions))
	}
	if len(spec.Regions) == 1 && spec.Regions[0].Fleet != "" {
		spec.Fleet = spec.Regions[0].Fleet
	}
	if spec.Geo != "" {
		if _, err := geos.lookup(spec.Geo); err != nil {
			return nil, err
		}
	}

	router, err := ParseRouter(spec.Router)
	if err != nil {
		return nil, err
	}
	spec.Router = router
	pol, err := cluster.ParsePolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	sc, err := scenario.Parse(spec.Scenario)
	if err != nil {
		return nil, err
	}
	if spec.Grid.Enabled() {
		if err := spec.Grid.Validate(); err != nil {
			return nil, err
		}
		known := []string{"local"}
		if len(spec.Regions) == 1 {
			known = []string{spec.Regions[0].Name}
		}
		if err := spec.Grid.CheckRegions(known); err != nil {
			return nil, err
		}
	}

	fl, err := hw.NamedFleet(spec.Fleet)
	if cfg.fleet != nil {
		fl, err = *cfg.fleet, nil
	}
	if err != nil {
		return nil, err
	}

	scaler, err := specScaler(spec.Scaler)
	if cfg.scalerSet {
		scaler, err = cfg.scaler, nil
	}
	if err != nil {
		return nil, err
	}
	admission, err := specAdmission(spec.Admission)
	if cfg.admissionSet {
		admission, err = cfg.admission, nil
	}
	if err != nil {
		return nil, err
	}

	table := cfg.table
	if table == nil {
		models := make([]*model.Model, 0, len(spec.Models))
		for _, name := range spec.Models {
			m, lookupErr := model.ByName(name, model.Prod)
			if lookupErr != nil {
				return nil, fmt.Errorf("fleet: %w", lookupErr)
			}
			models = append(models, m)
		}
		if table, err = CalibrateTable(models, fl.Types, spec.Options.Seed); err != nil {
			return nil, err
		}
	}
	service := cfg.service
	if service == nil {
		service = SharedSimService(table)
	}

	prov := cluster.NewProvisioner(fl, table, pol, spec.Options.Seed)
	prov.OverProvisionR = spec.HeadroomR
	eng := &Engine{
		Spec:        spec,
		Fleet:       fl,
		Table:       table,
		Provisioner: prov,
		Router:      router,
		Service:     service,
		Scaler:      scaler,
		Admission:   admission,
		Scenario:    sc,
		Observers:   cfg.observers,
		TraceSrc:    traceSrc,
		Cache:       spec.Cache,
		Grid:        spec.Grid,
		Opts:        spec.Options,
	}
	if cfg.tracer != nil {
		eng.Tracer = cfg.tracer
	} else if spec.Options.TraceSample > 0 {
		eng.Tracer = telemetry.NewTracer(spec.Options.Seed, spec.Options.TraceSample, 0)
	}
	return eng, nil
}

// specScaler resolves a spec's autoscaler name ("none" disables).
func specScaler(name string) (Scaler, error) {
	if name == "none" {
		return nil, nil
	}
	return NewScaler(name)
}

// specAdmission resolves a spec's admission-policy name ("none"
// admits everything).
func specAdmission(name string) (Admission, error) {
	if name == "none" {
		return nil, nil
	}
	return NewAdmission(name)
}

// Workloads synthesizes the engine's diurnal day from its spec: one
// trace per model over Spec.Days days at Spec.StepMin-minute
// intervals, peaks at Spec.PeakQPS — or, when 0, auto-sized so each
// workload peaks at ~45% of the fleet's best-case capacity for it,
// split across the workloads: high enough that stale allocations hurt
// at the peak, low enough that the fleet is never simply exhausted.
func (e *Engine) Workloads() []cluster.Workload {
	phaseH := 0.0
	if len(e.Spec.Regions) == 1 {
		phaseH = e.Spec.Regions[0].PhaseH
	}
	return e.workloadsAt(phaseH)
}

// defaultPeakHour is the reference diurnal peak (the paper's Fig. 2d
// synchronized evening peak); a region's PhaseH shifts it.
const defaultPeakHour = 20.0

// workloadsAt is Workloads with the diurnal peak shifted by phaseH
// hours — the per-region day of a multi-region replay.
func (e *Engine) workloadsAt(phaseH float64) []cluster.Workload {
	spec := e.Spec.withDefaults()
	if e.TraceSrc != nil {
		// A recorded day is its own workload description: per-model
		// offered loads verbatim from the trace's offer records.
		return e.TraceSrc.Workloads(spec.StepMin*60, spec.Options.SliceS)
	}
	peakHour := defaultPeakHour
	if phaseH != 0 {
		peakHour = math.Mod(defaultPeakHour+phaseH, 24)
		if peakHour < 0 {
			peakHour += 24
		}
	}
	ws := make([]cluster.Workload, 0, len(spec.Models))
	for i, name := range spec.Models {
		peak := spec.PeakQPS
		if peak <= 0 {
			var total float64
			for j, srv := range e.Fleet.Types {
				if entry, ok := e.Table.Get(srv.Type, name); ok && entry.QPS > 0 {
					total += entry.QPS * float64(e.Fleet.Counts[j])
				}
			}
			peak = total * 0.45 / float64(len(spec.Models))
		}
		cfg := workload.DiurnalConfig{
			Service:    name,
			PeakQPS:    peak,
			ValleyFrac: 0.4,
			PeakHour:   peakHour,
			Days:       spec.Days,
			StepMin:    spec.StepMin,
			NoiseStd:   0.02,
			Seed:       spec.Options.Seed + int64(i),
		}
		ws = append(ws, cluster.Workload{Model: name, Trace: workload.Synthesize(cfg)})
	}
	return ws
}
