package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"hercules/internal/cluster"
	"hercules/internal/grid"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/power"
	"hercules/internal/profiler"
	"hercules/internal/scenario"
	"hercules/internal/stats"
	"hercules/internal/telemetry"
	"hercules/internal/workload"
)

// Options tunes the replay engine. It is embedded in Spec, so the
// field tags define the "options" object of the run-spec JSON.
type Options struct {
	// QueueCap is the bounded per-instance dispatch queue (waiting
	// slots behind the in-service queries).
	QueueCap int `json:"queue_cap"`
	// SliceS is the sampled traffic slice simulated per trace interval.
	SliceS float64 `json:"slice_s"`
	// WindowS is the tail-observation window within a slice (the
	// autoscaler's and the SLA-violation metric's granularity).
	WindowS float64 `json:"window_s"`
	// ReprovisionEvery is the scheduled re-provisioning period in trace
	// intervals (the paper re-provisions at coarse intervals to
	// amortize workload setup).
	ReprovisionEvery int `json:"reprovision_every"`
	// MaxQueriesPerInterval bounds one interval's replayed queries; the
	// slice shrinks when the offered load would exceed it.
	MaxQueriesPerInterval int `json:"max_queries_per_interval"`
	// MaxBatch enables dynamic per-instance batching: each instance
	// coalesces up to MaxBatch queued queries into one dispatch, priced
	// by the service source's batching-efficiency curve (BatchSource).
	// 1 disables batching and preserves the per-query replay bit for
	// bit; values below 1 are treated as 1.
	MaxBatch int `json:"max_batch"`
	// BatchWaitS is the longest a forming batch waits for companions
	// before dispatching anyway — the latency the throughput gain is
	// bought with. Only meaningful when MaxBatch > 1.
	BatchWaitS float64 `json:"batch_wait_s"`
	// Shards caps the per-model shard fan-out (0 = runtime.NumCPU()).
	Shards int `json:"shards,omitempty"`
	// Sequential disables the worker pool (results are identical; the
	// flag exists for debugging and benchmarking the parallel path).
	Sequential bool `json:"sequential,omitempty"`
	// TraceSample enables the deterministically-sampled per-query
	// tracer: N traces 1 in N queries (1 traces every query), 0
	// disables tracing. Sample membership is a seeded hash of each
	// query's (interval, model, index) identity, so parallel and
	// sequential replays of the same spec trace the same queries and
	// emit byte-identical event streams. NewEngine materializes the
	// tracer as Engine.Tracer; attach export sinks there.
	TraceSample int `json:"trace_sample,omitempty"`
	// SketchTails replaces the exact per-window latency buffers with
	// mergeable quantile sketches (stats.Sketch, 1% relative error):
	// constant memory per window regardless of sample count, at the
	// cost of tail values that differ from the exact percentiles by up
	// to the sketch's error bound. Off by default — the golden replays
	// pin the exact path bit for bit.
	SketchTails bool `json:"sketch_tails,omitempty"`
	// Seed drives all replay randomness.
	Seed int64 `json:"seed"`
}

// DefaultOptions returns the tuning used by the experiments: 8-second
// slices observed in 1-second windows, hourly scheduled re-provisioning
// on 15-minute traces.
func DefaultOptions() Options {
	return Options{
		QueueCap:              32,
		SliceS:                8,
		WindowS:               1,
		ReprovisionEvery:      4,
		MaxQueriesPerInterval: 150000,
		MaxBatch:              1,
		BatchWaitS:            0.002,
		Seed:                  42,
	}
}

// Engine replays days of traffic against a provisioned fleet.
// NewEngine assembles one from a serializable Spec; the exported
// fields remain assignable for tests and tools that compose an engine
// by hand.
type Engine struct {
	// Spec is the normalized run description the engine was built from
	// (Workloads synthesizes the day it describes). Hand-assembled
	// engines may leave it zero.
	Spec        Spec
	Fleet       hw.Fleet
	Table       *profiler.Table
	Provisioner *cluster.Provisioner
	// Router is the registered name of the per-query routing policy;
	// RunDay resolves it through the registry, once, and instantiates
	// a fresh Router per replay shard.
	Router  string
	Service ServiceSource
	// Scaler is the online autoscaling policy; nil disables early
	// re-provisioning (scheduled intervals only).
	Scaler Scaler
	// Admission is the SLA-aware load-shedding policy consulted per
	// interval and workload before routing; nil admits everything.
	Admission Admission
	// Scenario is the parsed scenario of the spec; RunDay compiles it
	// into Timeline against the workloads' trace geometry when
	// Timeline is nil and the scenario is active.
	Scenario scenario.Scenario
	// Timeline injects a compiled non-stationary scenario
	// (internal/scenario): per-interval load spikes, query-mix shifts,
	// admission shedding, server kills and derates. nil replays the
	// unperturbed diurnal baseline.
	Timeline *scenario.Timeline
	// Observers receive every interval's finalized stats as the replay
	// produces them, in order — the streaming hook the DayResult
	// aggregation itself is built on.
	Observers []Observer
	// Tracer collects sampled per-query lifecycle events
	// (telemetry.Kind) when non-nil: shard workers stage events in
	// per-shard buffers, the replay goroutine drains them in
	// deterministic shard order after each interval and flushes the
	// tracer's sinks. NewEngine creates one automatically when
	// Options.TraceSample > 0; hand-assembled engines set it directly.
	Tracer *telemetry.Tracer
	// TraceSrc replays a recorded arrival trace instead of generating
	// queries: each interval's stream comes verbatim from the trace
	// (IDs, arrival instants, sizes, sparse scales), offered loads from
	// its offer records, and the scenario's traffic-shaping effects
	// (spikes, mix shifts) are skipped — they are already baked into
	// the recorded arrivals. Shedding, admission, fleet effects and the
	// cache tier re-apply as live policy. NewEngine sets it from
	// Spec.Trace or WithTraceSource.
	TraceSrc *TraceSource
	// Cache models the request cache tier in front of routing (see
	// CacheSpec); the zero value disables it and replays bit-identically
	// to the cache-less engine. NewEngine copies it from Spec.Cache.
	Cache CacheSpec
	// Grid prices the replay's measured energy against a carbon-
	// intensity timeline (grid.Spec); beginDay compiles it against the
	// day's geometry. The zero value disables carbon accounting and
	// replays bit-identically to the grid-less engine. NewEngine copies
	// it from Spec.Grid.
	Grid grid.Spec
	Opts Options

	newRouter func() Router
	models    map[string]*model.Model
	meanSvc   map[pairKey]float64
	batchEff  map[pairKey][]float64
	idleW     map[string]float64
	prevObs   map[string]modelObs
	instSeq   int
	baseOverR float64
	// gridTL is the day's compiled carbon-intensity timeline (nil reads
	// as zero intensity — the no-grid replay); tdpW caches per-type
	// server TDP for the powercap watt→derate conversion.
	gridTL  *grid.Timeline
	tdpW    map[string]float64
	scratch replayScratch
	// run is the in-flight day's cross-interval state (beginDay sets
	// it, endDay clears it); an Engine replays one day at a time.
	run *dayRun

	// cacheActive gates every cache branch for one RunDay; the maps are
	// the tier's per-model state (see cache.go).
	cacheActive   bool
	cacheWarmth   map[string]float64
	cachePrevSize map[string]float64
	cacheHitPrev  map[string]float64
}

// modelObs is the per-model observation admission policies condition
// on: what the previous interval's replayed slice recorded.
type modelObs struct {
	p99MS    float64
	dropFrac float64
}

// replayScratch holds the buffers one RunDay reuses across intervals so
// the replay loop stops allocating after the first interval: the query
// generation buffer, the shard task pool, and the latency merge
// buffers. An Engine must not run concurrent RunDays (it never could —
// the provisioner and autoscaler are also per-engine state).
type replayScratch struct {
	queries  []workload.Query
	shards   []*shardWork // grown on demand, reused each interval
	used     int
	tasks    []*shardWork
	winBuf   []float64
	modelBuf []float64
	allBuf   []float64
	breached []bool

	// shedBuf stages engine-level trace events (arrival + shed for
	// sampled queries rejected at admission) per model; winSk, modelSk
	// and allSk are the reused merge targets of the SketchTails path.
	shedBuf telemetry.ShardBuf
	winSk   stats.Sketch
	modelSk stats.Sketch
	allSk   stats.Sketch

	// Bounded worker pool for one RunDay: workers drain work and tick
	// wg once per completed shard.
	work chan *shardWork
	wg   sync.WaitGroup
}

// shard hands out the next pooled shardWork, growing the pool on first
// use of each slot.
func (sc *replayScratch) shard() *shardWork {
	if sc.used == len(sc.shards) {
		sc.shards = append(sc.shards, &shardWork{})
	}
	sw := sc.shards[sc.used]
	sc.used++
	return sw
}

// ApplyScenario compiles the scenario against the workloads' aligned
// trace geometry and the engine's fleet, and installs the resulting
// timeline for the next RunDay.
func (e *Engine) ApplyScenario(sc scenario.Scenario, ws []cluster.Workload) error {
	if len(ws) == 0 {
		return fmt.Errorf("fleet: no workloads to scope the scenario against")
	}
	steps := ws[0].Trace.Steps()
	for _, w := range ws[1:] {
		steps = min(steps, w.Trace.Steps())
	}
	tl, err := scenario.Compile(sc, steps, ws[0].Trace.StepS, e.fleetCounts())
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	e.Timeline = tl
	return nil
}

// IntervalStats records one trace interval of the replay.
type IntervalStats struct {
	Index      int     `json:"index"`
	TimeH      float64 `json:"time_h"`
	OfferedQPS float64 `json:"offered_qps"`
	Queries    int     `json:"queries"`
	Drops      int     `json:"drops"`
	// Shed counts queries rejected at admission by a load-shedding
	// scenario event (never offered to a server, not an SLA breach).
	Shed int `json:"shed,omitempty"`
	// DeadServers is how many fleet servers a scenario failure event
	// holds down during this interval.
	DeadServers int `json:"dead_servers,omitempty"`
	// CacheHits counts queries the cache tier served (at cache latency,
	// never routed); CacheHitRate is hits over admitted queries and
	// CacheWarmth the per-model warmth state after this interval's
	// flush/refill. All zero (and omitted) when the tier is disabled.
	CacheHits    int                `json:"cache_hits,omitempty"`
	CacheHitRate float64            `json:"cache_hit_rate,omitempty"`
	CacheWarmth  map[string]float64 `json:"cache_warmth,omitempty"`
	P50MS        float64            `json:"p50_ms"`
	P95MS        float64            `json:"p95_ms"`
	P99MS        float64            `json:"p99_ms"`
	// ModelP95MS / ModelP99MS are per-model windowless tails.
	ModelP95MS map[string]float64 `json:"model_p95_ms"`
	ModelP99MS map[string]float64 `json:"model_p99_ms"`
	// ViolationMin extrapolates breached observation windows to
	// wall-clock minutes of SLA violation in this interval.
	ViolationMin    float64 `json:"violation_min"`
	WindowsBreached int     `json:"windows_breached"`
	Windows         int     `json:"windows"`
	ActiveServers   int     `json:"active_servers"`
	ProvisionedKW   float64 `json:"provisioned_kw"`
	// EnergyKJ is measured energy (idle + utilization-proportional
	// dynamic power over the interval); ProvisionedEnergyKJ integrates
	// the provisioned budget the cluster layer reports.
	EnergyKJ            float64 `json:"energy_kj"`
	ProvisionedEnergyKJ float64 `json:"provisioned_energy_kj"`
	// GridGPerKWh is the grid carbon intensity this interval's energy
	// was priced at, and CarbonG the resulting emissions in grams of
	// CO2. Both zero (and omitted) when no grid is configured.
	GridGPerKWh float64 `json:"grid_g_per_kwh,omitempty"`
	CarbonG     float64 `json:"carbon_g,omitempty"`
	// PowerCappedTypes counts server types a powercap scenario event
	// holds under a watt budget this interval.
	PowerCappedTypes int  `json:"power_capped_types,omitempty"`
	Reprovisioned    bool `json:"reprovisioned"`
	EarlyReprovision bool `json:"early_reprovision"`
	Boosted          bool `json:"boosted"`
	// SpillInServed / SpillInDropped count the remote-origin queries a
	// geo-router spilled into this region's fleet (served with their
	// inter-region RTT added to latency, or dropped here); SpillOutQPS
	// is the offered load the geo-router sent away to other regions
	// this interval. All zero (and omitted) outside multi-region runs.
	SpillInServed  int     `json:"spill_in_served,omitempty"`
	SpillInDropped int     `json:"spill_in_dropped,omitempty"`
	SpillOutQPS    float64 `json:"spill_out_qps,omitempty"`
}

// DayResult aggregates a full replay: the fold of the per-interval
// Observer stream RunDay also hands to caller-registered observers.
type DayResult struct {
	Router string `json:"router"`
	Policy string `json:"policy"`
	// Scaler and Admission name the run's autoscaling and admission
	// policies (empty when disabled).
	Scaler    string `json:"scaler,omitempty"`
	Admission string `json:"admission,omitempty"`
	// Scenario names the injected scenario timeline ("baseline" when
	// the engine replayed the unperturbed diurnal day).
	Scenario string `json:"scenario"`
	// Region names the regional fleet this result replayed (empty for
	// single-region runs); Geo names the geo-routing policy of the
	// multi-region run it belongs to.
	Region string          `json:"region,omitempty"`
	Geo    string          `json:"geo,omitempty"`
	Steps  []IntervalStats `json:"intervals"`

	TotalQueries int `json:"total_queries"`
	TotalDrops   int `json:"total_drops"`
	TotalShed    int `json:"total_shed,omitempty"`
	// TotalCacheHits and CacheHitRate aggregate the cache tier's serves
	// (zero and omitted when the tier is disabled).
	TotalCacheHits      int     `json:"total_cache_hits,omitempty"`
	CacheHitRate        float64 `json:"cache_hit_rate,omitempty"`
	DropFrac            float64 `json:"drop_frac"`
	SLAViolationMin     float64 `json:"sla_violation_min"`
	MeanP95MS           float64 `json:"mean_p95_ms"`
	MaxP95MS            float64 `json:"max_p95_ms"`
	MeanP99MS           float64 `json:"mean_p99_ms"`
	MaxP99MS            float64 `json:"max_p99_ms"`
	EnergyKJ            float64 `json:"energy_kj"`
	ProvisionedEnergyKJ float64 `json:"provisioned_energy_kj"`
	// TotalCarbonG prices the day's measured energy against the grid
	// carbon-intensity timeline, and CarbonPerQueryG is that total over
	// served queries — gCO2/query next to J/query. Both zero (and
	// omitted) when no grid is configured.
	TotalCarbonG      float64 `json:"total_carbon_g,omitempty"`
	CarbonPerQueryG   float64 `json:"carbon_per_query_g,omitempty"`
	Reprovisions      int     `json:"reprovisions"`
	EarlyReprovisions int     `json:"early_reprovisions"`
	AutoscaleEvents   int     `json:"autoscale_events"`
	// BoostedIntervals counts intervals replayed with autoscaler boost
	// headroom in force — the day-level view of IntervalStats.Boosted
	// (per-interval flags don't survive a cross-engine merge; a count
	// does).
	BoostedIntervals int `json:"boosted_intervals,omitempty"`
	// SpillInServed / SpillInDropped aggregate the remote-origin
	// queries geo-routing spilled into this result's fleet.
	SpillInServed  int `json:"spill_in_served,omitempty"`
	SpillInDropped int `json:"spill_in_dropped,omitempty"`
	// Regions holds the per-region results of a multi-region replay
	// (MultiEngine.RunDay); the enclosing DayResult is their global
	// merge. Empty for single-region runs.
	Regions []DayResult `json:"regions,omitempty"`
}

// RunDay replays the workloads' aligned diurnal traces end to end and
// returns per-interval and aggregate serving metrics.
//
// With a Timeline set, each interval first applies the scenario's
// traffic effects (load scaling, query-mix shifts, admission shedding)
// and fleet effects (kills, derates). Kills bite immediately — the
// affected instances vanish from the serving pools mid-replay — but the
// control plane only learns of them at the interval's end, triggering
// an early re-provision at the next boundary against the degraded
// availability. Derates are never reported to the control plane: only
// tail latency (and hence the autoscaler) can see them.
func (e *Engine) RunDay(ws []cluster.Workload) (DayResult, error) {
	if err := e.beginDay(ws); err != nil {
		res := e.run.res
		e.run = nil
		return res, err
	}
	for i := 0; i < e.run.steps; i++ {
		e.stepInterval(i, nil)
	}
	return e.endDay(), nil
}

// dayRun is one in-flight RunDay's cross-interval state. Factoring it
// out of the loop lets the replay be driven two ways: RunDay's own
// beginDay → stepInterval × steps → endDay sequence, or interval-by-
// interval by MultiEngine, which interleaves the regions' engines so a
// geo-router can move load between them at every step.
type dayRun struct {
	ws    []cluster.Workload
	res   DayResult
	agg   *dayAggregator
	sinks []Observer
	steps int
	stepS float64
	every int

	insts        map[string][]*Instance
	active       cluster.StepResult
	earlyPending bool
	extraR       float64
	// knownFleet is the control plane's (detection-lagged) view of
	// scenario fleet health: kills observed up to the previous interval.
	knownFleet scenario.Effects
}

// beginDay validates the workloads, resolves policies, compiles the
// scenario, seeds the per-day state and starts the worker pool. Every
// error path leaves e.run set (its res carries the run's labels) and
// the pool unstarted; on success the caller owns a stepInterval ×
// steps → endDay obligation.
func (e *Engine) beginDay(ws []cluster.Workload) error {
	e.run = &dayRun{ws: ws}
	r := e.run
	r.res = DayResult{Router: e.Router, Policy: e.Provisioner.Kind.String(), Scenario: "baseline"}
	if e.Scaler != nil {
		r.res.Scaler = e.Scaler.Name()
	}
	if e.Admission != nil {
		r.res.Admission = e.Admission.Name()
	}
	if len(ws) == 0 {
		return fmt.Errorf("fleet: no workloads")
	}
	if e.Timeline == nil && e.Scenario.Active() {
		if err := e.ApplyScenario(e.Scenario, ws); err != nil {
			return err
		}
	}
	if e.Timeline != nil && e.Timeline.Name != "" {
		r.res.Scenario = e.Timeline.Name
	}
	var err error
	if e.newRouter, err = RouterFactory(e.Router); err != nil {
		return err
	}
	if e.Service == nil {
		e.Service = NewSimService(e.Table)
	}
	e.models = make(map[string]*model.Model, len(ws))
	for _, w := range ws {
		m, err := model.ByName(w.Model, model.Prod)
		if err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		e.models[w.Model] = m
	}
	e.meanSvc = make(map[pairKey]float64)
	e.batchEff = make(map[pairKey][]float64)
	e.idleW = make(map[string]float64)
	e.prevObs = make(map[string]modelObs, len(ws))
	e.baseOverR = e.Provisioner.OverProvisionR
	e.cacheActive = e.Cache.Enabled()
	if e.cacheActive {
		names := make([]string, 0, len(ws))
		for _, w := range ws {
			names = append(names, w.Model)
		}
		e.cacheInit(names)
	}

	steps := ws[0].Trace.Steps()
	for _, w := range ws[1:] {
		steps = min(steps, w.Trace.Steps())
	}
	if steps == 0 {
		return fmt.Errorf("fleet: empty traces")
	}
	if e.TraceSrc != nil && e.TraceSrc.Steps() < steps {
		return fmt.Errorf("fleet: trace has %d intervals, workloads span %d",
			e.TraceSrc.Steps(), steps)
	}
	r.steps = steps
	r.stepS = ws[0].Trace.StepS
	r.every = max(e.Opts.ReprovisionEvery, 1)

	// Compile the grid intensity timeline against the day's geometry,
	// folding the region's diurnal phase so a phase-shifted region's
	// grid tracks its local clock. No grid → nil timeline → every
	// carbon branch below is dead and the replay is byte-identical to a
	// grid-less build.
	e.gridTL = nil
	if e.Grid.Enabled() {
		region, phaseH := "local", 0.0
		if len(e.Spec.Regions) == 1 {
			region, phaseH = e.Spec.Regions[0].Name, e.Spec.Regions[0].PhaseH
		}
		tl, err := e.Grid.Compile(region, steps, r.stepS, phaseH)
		if err != nil {
			return err
		}
		e.gridTL = tl
	}

	// One bounded worker pool serves the whole day: started here, fed a
	// batch of independent shards per interval, drained by endDay. Shard
	// RNG streams are seeded per (interval, model, shard), so scheduling
	// order cannot leak into results.
	if !e.Opts.Sequential {
		// Capped at 16: shard counts rarely exceed Shards × models, and
		// an unbounded pool would make the replay's (small, gated)
		// allocation profile scale with the host's core count.
		workers := min(runtime.NumCPU(), 16)
		e.scratch.work = make(chan *shardWork, workers)
		for w := 0; w < workers; w++ {
			go func(work <-chan *shardWork) {
				for t := range work {
					t.run()
					e.scratch.wg.Done()
				}
			}(e.scratch.work)
		}
	}

	// The DayResult aggregation is itself an Observer on the interval
	// stream — the first in line, ahead of any caller-registered sinks,
	// so external observers see exactly what the aggregate is built
	// from.
	r.agg = &dayAggregator{res: &r.res}
	r.sinks = append([]Observer{r.agg}, e.Observers...)
	return nil
}

// offeredLoads sums interval i's offered QPS per model, with the
// scenario's traffic scaling applied (replayed traces carry
// post-scenario loads — their offers were recorded after spike
// scaling — so only synthesized days scale here).
func (e *Engine) offeredLoads(i int, eff scenario.Effects) map[string]float64 {
	loads := make(map[string]float64, len(e.run.ws))
	for _, w := range e.run.ws {
		loads[w.Model] += w.Trace.LoadsQPS[i]
	}
	if e.TraceSrc == nil {
		for m := range loads {
			loads[m] *= eff.Load(m)
		}
	}
	return loads
}

// geoAdjust is one region's geo-routing outcome for one interval: the
// fraction of home load kept local, the remote-origin load arriving
// per model, the inbound-weighted mean inter-region RTT those remote
// queries pay on top of serving latency, and the home load routed
// away. nil means no geo layer — the interval replays exactly as a
// single-region day.
type geoAdjust struct {
	keep    float64
	inbound map[string]float64
	rttS    float64
	outQPS  float64
}

// stepInterval replays one trace interval against the current fleet
// state: re-provision if due, apply scenario fleet effects, replay the
// slice, decorate and publish the interval, and latch the autoscaler
// and fleet-health signals for the next boundary. Must be called with
// consecutive i after beginDay.
func (e *Engine) stepInterval(i int, adj *geoAdjust) IntervalStats {
	r := e.run
	eff := e.Timeline.At(i)
	loads := e.offeredLoads(i, eff)
	if adj != nil {
		for m := range loads {
			loads[m] *= adj.keep
		}
		for m, add := range adj.inbound {
			loads[m] += add
		}
	}
	scheduled := i%r.every == 0
	reprovision := i == 0 || scheduled || r.earlyPending
	if reprovision {
		// A carbon-aware scaler may return negative extraR to run lean
		// in dirty hours; headroom never goes below zero.
		e.Provisioner.OverProvisionR = math.Max(e.baseOverR+r.extraR, 0)
		e.Provisioner.Unavailable = r.knownFleet.Killed
		provLoads := loads
		if e.cacheActive {
			// The control plane provisions for the backend (miss)
			// load: offered load net of each model's lagged measured
			// hit rate. The lag is what turns a cache flush into a
			// storm — the fleet stays sized for the warm-cache miss
			// rate until the next re-provision learns otherwise.
			provLoads = e.cacheMissLoads(loads)
		}
		r.active = e.Provisioner.Step(provLoads)
		r.insts = e.buildInstances(r.active.Alloc)
	}

	pools, dead := e.effectiveInstances(r.insts, eff)
	ist := e.replayInterval(i, r.stepS, loads, pools, eff, adj)
	ist.Reprovisioned = reprovision
	ist.EarlyReprovision = reprovision && r.earlyPending && !scheduled
	// extraR still holds the previous IntervalEnd's return — the
	// boost headroom in force for exactly this interval. (Consulting
	// Scaler.Boosted() here would read boostLeft one step ahead of
	// the interval being reported.)
	ist.Boosted = r.extraR > 0
	ist.ActiveServers = r.active.ActiveServers
	ist.DeadServers = dead
	ist.PowerCappedTypes = len(eff.PowerCapW)
	ist.ProvisionedKW = r.active.ProvisionedPowerW / 1e3
	ist.ProvisionedEnergyKJ = r.active.ProvisionedPowerW * r.stepS / 1e3
	if e.gridTL != nil {
		ist.GridGPerKWh = e.gridTL.At(i)
		ist.CarbonG = power.CarbonG(ist.EnergyKJ, ist.GridGPerKWh)
	}
	if adj != nil {
		ist.SpillOutQPS = adj.outQPS
	}
	for _, o := range r.sinks {
		o.ObserveInterval(ist)
	}

	r.earlyPending, r.extraR = false, 0
	if e.Scaler != nil {
		if g, ok := e.Scaler.(GridObserver); ok && e.gridTL != nil {
			// The next interval's intensity plays the role of the
			// day-ahead forecast a grid operator publishes (At wraps at
			// the day boundary), judged against the day's mean.
			g.ObserveGrid(e.gridTL.At(i+1), e.gridTL.MeanG())
		}
		r.earlyPending, r.extraR = e.Scaler.IntervalEnd()
	}
	if !eff.SameFleetState(r.knownFleet) {
		// Health checks noticed servers dying or returning during
		// this interval: re-provision at the next boundary against
		// the new availability.
		r.knownFleet = eff
		r.earlyPending = true
	}
	return ist
}

// endDay closes the worker pool, finalizes the aggregation and
// restores the provisioner, returning the day's result.
func (e *Engine) endDay() DayResult {
	r := e.run
	if e.scratch.work != nil {
		close(e.scratch.work)
		e.scratch.work = nil
	}
	r.agg.finish(r.steps)
	if e.Scaler != nil {
		r.res.AutoscaleEvents = e.Scaler.TriggerCount()
	}
	e.Provisioner.OverProvisionR = e.baseOverR
	e.Provisioner.Unavailable = nil
	e.run = nil
	return r.res
}

// effectiveInstances applies a scenario's fleet effects to the
// provisioned pools: killed servers disappear (highest instance IDs of
// the affected type first — one failure domain), derated servers are
// replaced by slowed clones. It returns the pools to replay against
// plus the fleet-wide count of down servers. With no fleet effects the
// input pools are returned untouched.
func (e *Engine) effectiveInstances(insts map[string][]*Instance, eff scenario.Effects) (map[string][]*Instance, int) {
	capFrac := e.powercapFrac(eff)
	if len(eff.Killed) == 0 && len(eff.DerateFrac) == 0 && len(capFrac) == 0 {
		return insts, 0
	}
	fleetCount := e.fleetCounts()
	builtOfType := make(map[string]int)
	for _, pool := range insts {
		for _, in := range pool {
			builtOfType[in.Type]++
		}
	}
	// A type's pools can keep at most (fleet - killed) live servers;
	// anything the current allocation holds beyond that is dead. When
	// the allocation was computed against the degraded availability,
	// the budget is zero and nothing is filtered.
	deadIDs := make(map[int]bool)
	deadServers := 0
	types := make([]string, 0, len(eff.Killed))
	for t := range eff.Killed {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		killed := min(eff.Killed[t], fleetCount[t])
		deadServers += killed
		budget := builtOfType[t] - (fleetCount[t] - killed)
		if budget <= 0 {
			continue
		}
		var ids []int
		for _, pool := range insts {
			for _, in := range pool {
				if in.Type == t {
					ids = append(ids, in.ID)
				}
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(ids)))
		for _, id := range ids[:budget] {
			deadIDs[id] = true
		}
	}
	out := make(map[string][]*Instance, len(insts))
	for m, pool := range insts {
		kept := make([]*Instance, 0, len(pool))
		for _, in := range pool {
			if deadIDs[in.ID] {
				continue
			}
			// A derate and a powercap on the same type never coexist
			// (scenario validation rejects the overlap), but a powercap
			// composes with the type's survivors of a kill.
			f := eff.DerateOf(in.Type)
			if cf, ok := capFrac[in.Type]; ok {
				f *= cf
			}
			if f < 1 {
				in = in.Slowed(1 / f)
			}
			kept = append(kept, in)
		}
		out[m] = kept
	}
	return out, deadServers
}

// fleetCounts aggregates the fleet's availability by server type.
func (e *Engine) fleetCounts() map[string]int {
	counts := make(map[string]int, len(e.Fleet.Types))
	for i, srv := range e.Fleet.Types {
		counts[srv.Type] += e.Fleet.Counts[i]
	}
	return counts
}

// powercapPerServerW splits each powercapped type's total watt budget
// across the type's surviving servers this interval — the per-server
// power ceiling the energy sweep enforces. nil when no cap is active.
func (e *Engine) powercapPerServerW(eff scenario.Effects) map[string]float64 {
	if len(eff.PowerCapW) == 0 {
		return nil
	}
	counts := e.fleetCounts()
	out := make(map[string]float64, len(eff.PowerCapW))
	for t, w := range eff.PowerCapW {
		alive := min(eff.KilledOf(t), counts[t])
		alive = counts[t] - alive
		if alive <= 0 {
			continue
		}
		out[t] = w / float64(alive)
	}
	return out
}

// powercapFrac converts the interval's per-server watt ceilings into
// service-rate multipliers: a server held at a fraction of its TDP
// runs at (to first order) that fraction of its service rate, floored
// at 5% so a starvation-level budget slows servers instead of
// dividing by zero. Types whose budget covers full TDP are absent
// (no throttle).
func (e *Engine) powercapFrac(eff scenario.Effects) map[string]float64 {
	per := e.powercapPerServerW(eff)
	if per == nil {
		return nil
	}
	out := make(map[string]float64, len(per))
	for t, w := range per {
		tdp := e.tdpWatts(t)
		if tdp <= 0 {
			continue
		}
		if f := math.Min(math.Max(w/tdp, 0.05), 1); f < 1 {
			out[t] = f
		}
	}
	return out
}

// tdpWatts resolves (and caches) a server type's TDP.
func (e *Engine) tdpWatts(t string) float64 {
	if w, ok := e.tdpW[t]; ok {
		return w
	}
	var w float64
	if srv, err := serverByType(t); err == nil {
		w = srv.TDPWatts()
	}
	if e.tdpW == nil {
		e.tdpW = make(map[string]float64)
	}
	e.tdpW[t] = w
	return w
}

// buildInstances turns an allocation into per-model instance pools
// with deterministic IDs (types and models visited in sorted order).
func (e *Engine) buildInstances(alloc cluster.Allocation) map[string][]*Instance {
	out := make(map[string][]*Instance)
	types := make([]string, 0, len(alloc))
	for h := range alloc {
		types = append(types, h)
	}
	sort.Strings(types)
	e.instSeq = 0
	for _, h := range types {
		row := alloc[h]
		names := make([]string, 0, len(row))
		for m := range row {
			names = append(names, m)
		}
		sort.Strings(names)
		for _, m := range names {
			entry, ok := e.Table.Get(h, m)
			if !ok || entry.QPS <= 0 || row[m] <= 0 {
				continue
			}
			conc := e.concurrency(h, m, entry.QPS)
			svc := e.pairService(h, m)
			weight := entry.QPS
			batchCap, eff := 1, []float64(nil)
			if e.Opts.MaxBatch > 1 {
				eff = e.pairBatchEff(h, m, e.Opts.MaxBatch)
				mean := e.meanSvc[pairKey{h, m}] // populated by concurrency()
				batchCap = batchCapFor(eff, mean, entry.QPS, e.models[m].SLATargetMS, e.Opts.MaxBatch)
				if batchCap > 1 {
					// The router's capacity signal tracks the batched
					// saturation throughput cap / batch makespan =
					// 1 / (eff × E[solo]): pairs whose batches amortize
					// well (accelerators, NMP) legitimately absorb more
					// in-flight queries under the heterogeneity-aware
					// policy.
					weight = math.Max(entry.QPS, 1/(eff[batchCap]*mean))
				}
			}
			for k := 0; k < row[m]; k++ {
				in := NewInstance(e.instSeq, h, m, weight, conc, e.Opts.QueueCap, svc)
				if batchCap > 1 {
					in.EnableBatching(batchCap, e.Opts.BatchWaitS, eff[:batchCap+1])
				}
				out[m] = append(out[m], in)
				e.instSeq++
			}
		}
	}
	return out
}

// pairService resolves the per-query service-time function for a
// (server type, model) pair once, at instance-build time. Sources that
// implement PairSource hand back their precomputed sampler directly —
// the replay loop then never pays a per-query pair lookup; other
// sources fall back to a closure over the generic ServiceS path.
func (e *Engine) pairService(serverType, modelName string) func(size int, scale float64) float64 {
	if ps, ok := e.Service.(PairSource); ok {
		if f := ps.PairService(serverType, modelName); f != nil {
			return f
		}
	}
	return func(size int, scale float64) float64 {
		return e.Service.ServiceS(serverType, modelName, size, scale)
	}
}

// batchSLABudgetFrac is the share of a model's SLA a full batch's
// makespan may occupy; the remainder is left for queueing and the
// batch-formation wait. 0.35 keeps batched tails inside the SLA at the
// ~87% utilization the provisioner targets — a makespan at half the
// SLA leaves too little queueing room there.
const batchSLABudgetFrac = 0.35

// batchCapFor derives a pair's effective dynamic-batching cap from its
// measured efficiency curve: the largest batch size (up to the global
// MaxBatch) whose batched saturation throughput 1/(eff[n]·E[solo])
// beats the pair's calibrated unbatched capacity AND whose full-batch
// makespan eff[n]·n·E[solo] fits inside the SLA budget. Pairs whose
// batches never win — heavily contended models, or SLAs too tight for
// any batch makespan — keep cap 1 and replay unbatched: dynamic
// batching must be an optimization the measurements justify, never a
// blanket policy.
func batchCapFor(eff []float64, meanSvcS, qps, slaMS float64, maxBatch int) int {
	if len(eff) <= maxBatch || meanSvcS <= 0 || math.IsInf(meanSvcS, 0) || qps <= 0 {
		return 1
	}
	budgetS := slaMS / 1e3 * batchSLABudgetFrac
	for n := maxBatch; n >= 2; n-- {
		if eff[n] <= 0 {
			continue
		}
		sat := 1 / (eff[n] * meanSvcS)
		makespan := eff[n] * float64(n) * meanSvcS
		if sat >= qps && (slaMS <= 0 || makespan <= budgetS) {
			return n
		}
	}
	return 1
}

// pairBatchEff resolves (and caches per RunDay) the batching-efficiency
// curve for a pair. Sources that do not implement BatchSource — or
// cannot price the pair — yield nil, and batchCapFor then keeps the
// pair unbatched: the engine never batches on an unmeasured curve.
// (Instance.EnableBatching itself accepts a nil curve as pure
// coalescing, for tests and tools that construct pools directly.)
func (e *Engine) pairBatchEff(serverType, modelName string, maxBatch int) []float64 {
	k := pairKey{serverType, modelName}
	if eff, ok := e.batchEff[k]; ok {
		return eff
	}
	var eff []float64
	if bs, ok := e.Service.(BatchSource); ok {
		eff = bs.PairBatchEff(serverType, modelName, maxBatch)
	}
	e.batchEff[k] = eff
	return eff
}

// concurrency calibrates an instance's service channels so that its
// saturation throughput (c / E[service]) matches the profiled
// latency-bounded capacity of the pair.
func (e *Engine) concurrency(serverType, modelName string, qps float64) int {
	k := pairKey{serverType, modelName}
	mean, ok := e.meanSvc[k]
	if !ok {
		// Seed from the pair's identity, not discovery order: the same
		// (type, model) must calibrate identically regardless of which
		// allocation introduced it first.
		mean = meanServiceS(e.Service, serverType, modelName,
			mixSeed(e.Opts.Seed, 0x5eed, hashString(serverType), hashString(modelName)))
		e.meanSvc[k] = mean
	}
	if math.IsInf(mean, 0) || mean <= 0 || qps <= 0 {
		return 1
	}
	// Ceil, not round: the profiler certified the pair sustains qps
	// under its SLA, so the queue model must not undershoot it — with
	// small channel counts, rounding down would hide up to 1/(2c) of
	// certified capacity and fabricate breaches.
	return stats.ClampInt(int(math.Ceil(qps*mean)), 1, 256)
}

// idleWatts caches the idle power of a server type.
func (e *Engine) idleWatts(serverType string) float64 {
	if w, ok := e.idleW[serverType]; ok {
		return w
	}
	w := 0.0
	if srv, err := serverByType(serverType); err == nil {
		w = srv.IdleWatts()
	}
	e.idleW[serverType] = w
	return w
}

// shardWork is one (model, shard) replay task: a disjoint slice of the
// model's instances plus the queries deterministically thinned onto it.
// Shard tasks are pooled by replayScratch and reused across intervals;
// reset re-arms one, keeping its backing arrays.
type shardWork struct {
	modelName string
	slaMS     float64
	insts     []*Instance
	queries   []workload.Query

	newRouter func() Router
	seed      int64
	windowW   float64
	windows   int
	sliceS    float64 // busy-accounting horizon for this interval's slice
	maxBatch  int     // > 1 selects the dynamic-batching replay loop

	// comps is the per-arrival completions scratch of the batched loop,
	// reused across queries and intervals.
	comps []Completion

	// Cache tier: cacheHR > 0 enables the hit test — a deterministic
	// Bernoulli draw on cacheStream hashed with the query ID, so the
	// set of hits is a pure function of the query's identity, never of
	// shard layout. Hits complete at cacheLatS and skip routing.
	cacheHR     float64
	cacheLatS   float64
	cacheStream uint64

	// Geo spill: remoteFrac > 0 marks that fraction of the stream as
	// remote-origin queries a geo-router spilled into this region. Like
	// cache hits, membership is a deterministic Bernoulli draw (on
	// remoteStream) hashed from the query's identity, so shard layout
	// can never change which queries are remote. Remote queries pay
	// remoteRTTS on top of serving (or cache-hit) latency and are
	// counted separately served/dropped.
	remoteFrac    float64
	remoteRTTS    float64
	remoteStream  uint64
	remoteServed  int
	remoteDropped int

	// trace stages this shard's sampled lifecycle events (single
	// writer: exactly this shard during the interval); the engine
	// drains it in deterministic shard order afterwards. traceOn gates
	// every tracing branch so the untraced replay pays one boolean test
	// per query.
	trace   telemetry.ShardBuf
	traceOn bool

	// useSketch selects the sketch-based tail path: latencies stream
	// into per-window quantile sketches instead of the exact sample
	// buffers.
	useSketch bool

	// outputs
	winLatS  [][]float64    // per-window latency samples (seconds)
	winSk    []stats.Sketch // per-window sketches (ms), when useSketch
	winDrops []int
	dropped  int
	hits     int // queries the cache tier served
}

// reset re-arms a pooled shard for an interval with the given window
// count, reusing every backing array. Tracing is re-armed separately
// (the engine arms trace/traceOn per model).
func (w *shardWork) reset(windows int, useSketch bool) {
	w.insts = w.insts[:0]
	w.queries = w.queries[:0]
	w.dropped = 0
	w.hits = 0
	w.cacheHR = 0
	w.remoteFrac, w.remoteRTTS = 0, 0
	w.remoteServed, w.remoteDropped = 0, 0
	w.windows = windows
	w.traceOn = false
	w.useSketch = useSketch
	for cap(w.winLatS) < windows {
		w.winLatS = append(w.winLatS[:cap(w.winLatS)], nil)
	}
	w.winLatS = w.winLatS[:windows]
	for i := range w.winLatS {
		w.winLatS[i] = w.winLatS[i][:0]
	}
	if useSketch {
		for cap(w.winSk) < windows {
			w.winSk = append(w.winSk[:cap(w.winSk)], stats.Sketch{})
		}
		w.winSk = w.winSk[:windows]
		for i := range w.winSk {
			armSketch(&w.winSk[i])
		}
	}
	if cap(w.winDrops) < windows {
		w.winDrops = make([]int, windows)
	}
	w.winDrops = w.winDrops[:windows]
	for i := range w.winDrops {
		w.winDrops[i] = 0
	}
}

// armSketch readies a pooled value sketch: first use initializes it at
// the engine's tail accuracy, reuse just clears the observations.
func armSketch(s *stats.Sketch) {
	if s.Alpha == 0 {
		s.Init(stats.DefaultSketchAlpha)
	} else {
		s.Reset()
	}
}

// observe records one served query's latency into its observation
// window — the exact sample buffer, or the window's quantile sketch
// (in milliseconds, the unit every tail threshold uses) on the sketch
// path.
func (w *shardWork) observe(wi int, latS float64) {
	if w.useSketch {
		w.winSk[wi].Add(latS * 1e3)
		return
	}
	w.winLatS[wi] = append(w.winLatS[wi], latS)
}

// cacheServe runs one query through the cache tier: a hit completes at
// cache latency (plus the query's inter-region RTT when it arrived by
// geo spill), counts as served, and never reaches a router (nor a
// drop — the tier sits ahead of the pool-empty check). Returns whether
// the query was served there.
func (w *shardWork) cacheServe(q workload.Query, wi int, sampled bool, rttS float64) bool {
	if w.cacheHR <= 0 || !cacheHit(w.cacheStream, q.ID, w.cacheHR) {
		return false
	}
	w.hits++
	w.observe(wi, w.cacheLatS+rttS)
	if sampled {
		ev := w.trace.Emit(telemetry.KindHit, q.ID, q.ArrivalS)
		ev.Value = w.cacheLatS + rttS
	}
	return true
}

// traceServed emits the service-side events of one sampled query:
// enqueue (queue wait), start (with batch size), end (service span)
// and complete (total latency).
func (w *shardWork) traceServed(qid int64, instID int, arrS, startS, doneS float64, batch int) {
	ev := w.trace.Emit(telemetry.KindEnqueue, qid, startS)
	ev.Instance = int32(instID)
	ev.Value = startS - arrS
	ev = w.trace.Emit(telemetry.KindStart, qid, startS)
	ev.Instance = int32(instID)
	ev.Value = float64(batch)
	ev = w.trace.Emit(telemetry.KindEnd, qid, doneS)
	ev.Instance = int32(instID)
	ev.Value = doneS - startS
	ev = w.trace.Emit(telemetry.KindComplete, qid, doneS)
	ev.Instance = int32(instID)
	ev.Value = doneS - arrS
}

func (w *shardWork) run() {
	router := w.newRouter()
	rng := stats.NewRand(w.seed)
	for _, in := range w.insts {
		in.ResetSlice(w.sliceS)
	}
	if w.maxBatch > 1 {
		w.runBatched(router, rng)
		return
	}
	trouter, _ := router.(TracedRouter)
	for _, q := range w.queries {
		wi := stats.ClampInt(int(q.ArrivalS/w.windowW), 0, w.windows-1)
		remote := w.remoteFrac > 0 && cacheHit(w.remoteStream, q.ID, w.remoteFrac)
		rtt := 0.0
		if remote {
			rtt = w.remoteRTTS
		}
		sampled := w.traceOn && w.trace.Sampled(q.ID)
		if sampled {
			ev := w.trace.Emit(telemetry.KindArrival, q.ID, q.ArrivalS)
			ev.Value = float64(q.Size)
			ev.Aux = q.SparseScale
		}
		if w.cacheServe(q, wi, sampled, rtt) {
			if remote {
				w.remoteServed++
			}
			continue
		}
		if len(w.insts) == 0 {
			w.dropped++
			w.winDrops[wi]++
			if remote {
				w.remoteDropped++
			}
			if sampled {
				w.trace.Emit(telemetry.KindDrop, q.ID, q.ArrivalS)
			}
			continue
		}
		var pick int
		if sampled {
			ev := w.trace.Emit(telemetry.KindRoute, q.ID, q.ArrivalS)
			if trouter != nil {
				pick = trouter.PickTraced(w.insts, q.ArrivalS, rng, ev)
			} else {
				pick = router.Pick(w.insts, q.ArrivalS, rng)
			}
			ev.Instance = int32(w.insts[pick].ID)
			if trouter == nil {
				ev.Cand[0] = ev.Instance
				ev.NCand = 1
			}
		} else {
			pick = router.Pick(w.insts, q.ArrivalS, rng)
		}
		in := w.insts[pick]
		start, done, drop := in.arrive(q.ArrivalS, q.Size, q.SparseScale)
		if drop {
			w.dropped++
			w.winDrops[wi]++
			if remote {
				w.remoteDropped++
			}
			if sampled {
				ev := w.trace.Emit(telemetry.KindDrop, q.ID, q.ArrivalS)
				ev.Instance = int32(in.ID)
			}
			continue
		}
		if sampled {
			w.traceServed(q.ID, in.ID, q.ArrivalS, start, done, 1)
		}
		if remote {
			w.remoteServed++
		}
		w.observe(wi, done-q.ArrivalS+rtt)
	}
}

// runBatched is the dynamic-batching replay loop: latencies are
// emitted when batches dispatch (window expiry, a full batch, or the
// end-of-slice drain) rather than per arrival, and are bucketed into
// observation windows by each query's own arrival instant — the same
// accounting as the unbatched loop, just deferred. Pools mix batched
// and unbatched instances (each pair derives its own batch cap from
// the measured efficiency curve), so the loop branches per pick.
func (w *shardWork) runBatched(router Router, rng *rand.Rand) {
	if cap(w.comps) < 2*w.maxBatch {
		// One arrival can trigger at most an expiry dispatch of the
		// forming batch plus a full-batch dispatch including itself.
		w.comps = make([]Completion, 0, 2*w.maxBatch)
	}
	trouter, _ := router.(TracedRouter)
	for _, q := range w.queries {
		wi := stats.ClampInt(int(q.ArrivalS/w.windowW), 0, w.windows-1)
		remote := w.remoteFrac > 0 && cacheHit(w.remoteStream, q.ID, w.remoteFrac)
		rtt := 0.0
		if remote {
			rtt = w.remoteRTTS
		}
		sampled := w.traceOn && w.trace.Sampled(q.ID)
		if sampled {
			ev := w.trace.Emit(telemetry.KindArrival, q.ID, q.ArrivalS)
			ev.Value = float64(q.Size)
			ev.Aux = q.SparseScale
		}
		if w.cacheServe(q, wi, sampled, rtt) {
			if remote {
				w.remoteServed++
			}
			continue
		}
		if len(w.insts) == 0 {
			w.dropped++
			w.winDrops[wi]++
			if remote {
				w.remoteDropped++
			}
			if sampled {
				w.trace.Emit(telemetry.KindDrop, q.ID, q.ArrivalS)
			}
			continue
		}
		var pick int
		if sampled {
			ev := w.trace.Emit(telemetry.KindRoute, q.ID, q.ArrivalS)
			if trouter != nil {
				pick = trouter.PickTraced(w.insts, q.ArrivalS, rng, ev)
			} else {
				pick = router.Pick(w.insts, q.ArrivalS, rng)
			}
			ev.Instance = int32(w.insts[pick].ID)
			if trouter == nil {
				ev.Cand[0] = ev.Instance
				ev.NCand = 1
			}
		} else {
			pick = router.Pick(w.insts, q.ArrivalS, rng)
		}
		in := w.insts[pick]
		if in.MaxBatch <= 1 {
			start, done, drop := in.arrive(q.ArrivalS, q.Size, q.SparseScale)
			if drop {
				w.dropped++
				w.winDrops[wi]++
				if remote {
					w.remoteDropped++
				}
				if sampled {
					ev := w.trace.Emit(telemetry.KindDrop, q.ID, q.ArrivalS)
					ev.Instance = int32(in.ID)
				}
				continue
			}
			if sampled {
				w.traceServed(q.ID, in.ID, q.ArrivalS, start, done, 1)
			}
			if remote {
				w.remoteServed++
			}
			w.observe(wi, done-q.ArrivalS+rtt)
			continue
		}
		comps, drop := in.ArriveBatched(q.ID, q.ArrivalS, q.Size, q.SparseScale, w.comps[:0])
		w.comps = comps[:0]
		if drop {
			w.dropped++
			w.winDrops[wi]++
			if remote {
				w.remoteDropped++
			}
			if sampled {
				ev := w.trace.Emit(telemetry.KindDrop, q.ID, q.ArrivalS)
				ev.Instance = int32(in.ID)
			}
		} else if sampled {
			// The query joined a forming batch (its Start/End events
			// surface with the dispatch's completions); record its
			// 1-based position — a full batch dispatched immediately, so
			// an empty forming batch means it rode out at MaxBatch.
			pos := in.Pending()
			if pos == 0 {
				pos = in.MaxBatch
			}
			ev := w.trace.Emit(telemetry.KindBatch, q.ID, q.ArrivalS)
			ev.Instance = int32(in.ID)
			ev.Value = float64(pos)
		}
		w.record(in.ID, comps)
	}
	for _, in := range w.insts {
		if in.MaxBatch <= 1 {
			continue
		}
		comps := in.FlushPending(w.comps[:0])
		w.comps = comps[:0]
		w.record(in.ID, comps)
	}
}

// record buckets a dispatch's completions into observation windows by
// arrival instant, and emits the deferred service events of sampled
// members (all completions in one drain come from the same instance).
// A completion's remote-origin verdict re-draws on its query ID — the
// same draw its arrival made — so deferred dispatch cannot change
// which queries pay RTT.
func (w *shardWork) record(instID int, comps []Completion) {
	for _, c := range comps {
		wi := stats.ClampInt(int(c.ArrivalS/w.windowW), 0, w.windows-1)
		rtt := 0.0
		if w.remoteFrac > 0 && cacheHit(w.remoteStream, c.ID, w.remoteFrac) {
			rtt = w.remoteRTTS
			w.remoteServed++
		}
		w.observe(wi, c.DoneS-c.ArrivalS+rtt)
		if w.traceOn && w.trace.Sampled(c.ID) {
			w.traceServed(c.ID, instID, c.ArrivalS, c.StartS, c.DoneS, c.Batch)
		}
	}
}

// replayInterval simulates one interval's sampled slice and
// extrapolates interval metrics. eff carries the interval's scenario
// traffic effects: query-size mix shifts rescale each generator's size
// distribution, and shed fractions thin the admitted stream before
// routing (loads arrive already scaled by the caller; fleet effects are
// already baked into insts). A non-nil adj marks the inbound share of
// each model's load as remote-origin geo spill paying adj.rttS.
func (e *Engine) replayInterval(idx int, stepS float64, loads map[string]float64, insts map[string][]*Instance, eff scenario.Effects, adj *geoAdjust) IntervalStats {
	ist := IntervalStats{
		Index:      idx,
		TimeH:      float64(idx) * stepS / 3600,
		ModelP95MS: make(map[string]float64),
		ModelP99MS: make(map[string]float64),
	}
	names := make([]string, 0, len(loads))
	for m := range loads {
		names = append(names, m)
	}
	sort.Strings(names)
	// Sum in sorted-name order: float addition is not associative, so a
	// map-range sum would make the slice budget (and everything seeded
	// off it) depend on iteration order once three models share a day.
	var totalLoad float64
	for _, m := range names {
		totalLoad += loads[m]
	}
	ist.OfferedQPS = totalLoad
	if totalLoad <= 0 {
		return ist
	}

	// Size the slice: full offered rate, bounded total queries. A
	// replayed trace's recorded slice is authoritative — the recording
	// run already sized it, and re-deriving would couple byte identity
	// to matching engine tuning.
	sliceS := e.Opts.SliceS
	if budget := float64(e.Opts.MaxQueriesPerInterval); budget > 0 && totalLoad*sliceS > budget {
		sliceS = budget / totalLoad
	}
	if e.TraceSrc != nil {
		if rec := e.TraceSrc.Slice(idx); rec > 0 {
			sliceS = rec
		}
	}
	windows := stats.ClampInt(int(sliceS/e.Opts.WindowS), 2, 600)
	windowW := sliceS / float64(windows)
	ist.Windows = windows

	// Build shard tasks: queries are generated sequentially per model
	// and thinned onto shards by deterministic draws, which preserves
	// the Poisson property per shard and makes parallel replay
	// bit-identical to sequential replay. Shard structs, query slices
	// and window buckets all come from the engine's scratch pool.
	shardCap := e.Opts.Shards
	if shardCap <= 0 {
		shardCap = runtime.NumCPU()
	}
	tr := e.Tracer
	useSketch := e.Opts.SketchTails
	scr := &e.scratch
	scr.used = 0
	scr.tasks = scr.tasks[:0]
	cacheLatS := e.Cache.latencyS()
	starts := make([]int, len(names)+1)
	for mi, m := range names {
		pool := insts[m]
		sla := e.models[m].SLATargetMS
		mh := hashString(m)
		cacheHR := 0.0
		if e.cacheActive {
			cacheHR = e.cacheAdvance(m, eff)
		}
		remoteFrac, remoteRTTS := 0.0, 0.0
		var remoteStream uint64
		if adj != nil && adj.inbound[m] > 0 && loads[m] > 0 {
			remoteFrac = math.Min(adj.inbound[m]/loads[m], 1)
			remoteRTTS = adj.rttS
			remoteStream = remoteStreamSeed(e.Opts.Seed, idx, mh)
		}
		n := max(min(shardCap, len(pool)), 1)
		starts[mi] = len(scr.tasks)
		for s := 0; s < n; s++ {
			sh := scr.shard()
			sh.reset(windows, useSketch)
			sh.modelName = m
			sh.slaMS = sla
			sh.newRouter = e.newRouter
			sh.seed = mixSeed(e.Opts.Seed, int64(idx), int64(mi)<<8|int64(s))
			sh.windowW = windowW
			sh.sliceS = sliceS
			sh.maxBatch = max(e.Opts.MaxBatch, 1)
			sh.cacheHR = cacheHR
			sh.cacheLatS = cacheLatS
			sh.cacheStream = cacheStreamSeed(e.Opts.Seed, idx, mh)
			sh.remoteFrac = remoteFrac
			sh.remoteRTTS = remoteRTTS
			sh.remoteStream = remoteStream
			if tr != nil {
				sh.trace.Arm(tr, idx, m, mh)
				sh.traceOn = true
			}
			scr.tasks = append(scr.tasks, sh)
		}
		shards := scr.tasks[starts[mi]:]
		for j, in := range pool {
			shards[j%n].insts = append(shards[j%n].insts, in)
		}
		var queries []workload.Query
		if e.TraceSrc != nil {
			// Recorded arrivals, copied before the in-place shed thinning
			// below. Mix shifts are skipped along with load scaling — both
			// are already baked into the recorded stream.
			queries = append(scr.queries[:0], e.TraceSrc.Queries(idx, m)...)
		} else {
			gen := workload.NewGenerator(e.models[m], loads[m], mixSeed(e.Opts.Seed, 0x9e37+int64(idx), int64(mi)))
			if sc := eff.Size(m); sc != 1 {
				// Shift the lognormal's median: the mix rotation makes every
				// query sc× heavier without touching the arrival process.
				gen.Sizes.Mu += math.Log(sc)
			}
			queries = gen.AppendUntil(scr.queries[:0], sliceS)
		}
		scr.queries = queries[:0]
		// The model's engine-level trace stream: the interval's offer
		// record (the offered load and slice the replay provisioned with
		// — what lets a recorded trace re-provision identically on
		// re-ingestion), then arrival+shed pairs of sampled shed queries.
		// Staged per model and ingested ahead of the shard events, all on
		// the replay goroutine, so the order is deterministic.
		var shedBuf *telemetry.ShardBuf
		if tr != nil {
			scr.shedBuf.Arm(tr, idx, m, mh)
			shedBuf = &scr.shedBuf
			ev := shedBuf.Emit(telemetry.KindOffer, -1, 0)
			ev.Value = loads[m]
			ev.Aux = sliceS
		}
		// Two shedding sources compose at the door: the scenario's
		// load-shedding drills and the engine's admission policy (which
		// conditions on what the previous interval observed). Independent
		// Bernoulli thinnings compose multiplicatively.
		frac := eff.Shed(m)
		if e.Admission != nil {
			prev := e.prevObs[m]
			sig := AdmissionSignal{
				Model:        m,
				SLATargetMS:  sla,
				OfferedQPS:   loads[m],
				PrevP99MS:    prev.p99MS,
				PrevDropFrac: prev.dropFrac,
			}
			if e.gridTL != nil {
				sig.GridGPerKWh = e.gridTL.At(idx)
				sig.GridMeanGPerKWh = e.gridTL.MeanG()
				sig.DeferrableFrac = e.Grid.Deferrable()
			}
			af := e.Admission.ShedFrac(sig)
			af = math.Min(math.Max(af, 0), 0.95)
			frac = 1 - (1-frac)*(1-af)
		}
		if frac > 0 {
			// Admission control drops a deterministic Bernoulli thinning
			// of the stream (in place); shed queries never reach a router.
			shedR := stats.NewRand(mixSeed(e.Opts.Seed, 0x5ed0+int64(idx), int64(mi)))
			kept := queries[:0]
			for _, q := range queries {
				if shedR.Float64() < frac {
					ist.Shed++
					if shedBuf != nil && shedBuf.Sampled(q.ID) {
						ev := shedBuf.Emit(telemetry.KindArrival, q.ID, q.ArrivalS)
						ev.Value = float64(q.Size)
						ev.Aux = q.SparseScale
						ev = shedBuf.Emit(telemetry.KindShed, q.ID, q.ArrivalS)
						ev.Value = frac
					}
					continue
				}
				kept = append(kept, q)
			}
			queries = kept
		}
		if shedBuf != nil {
			tr.Ingest(shedBuf.Events())
		}
		split := stats.NewRand(mixSeed(e.Opts.Seed, 0x517+int64(idx), int64(mi)))
		for _, q := range queries {
			s := 0
			if n > 1 {
				s = split.Intn(n)
			}
			shards[s].queries = append(shards[s].queries, q)
		}
	}
	starts[len(names)] = len(scr.tasks)

	// Execute: the day's bounded worker pool, or in place when
	// sequential (results are bit-identical either way).
	if scr.work == nil || len(scr.tasks) == 1 {
		for _, t := range scr.tasks {
			t.run()
		}
	} else {
		scr.wg.Add(len(scr.tasks))
		for _, t := range scr.tasks {
			scr.work <- t
		}
		scr.wg.Wait()
	}

	// Drain staged trace events in deterministic task order — the same
	// order sequential execution produced them in — and flush the
	// interval to the sinks, so exports stream per interval instead of
	// accumulating a day.
	if tr != nil {
		for _, t := range scr.tasks {
			tr.Ingest(t.trace.Events())
		}
		tr.Flush()
	}

	// Merge: per-model windowed tails drive breach verdicts; the
	// aggregate distribution drives the interval percentiles. Latencies
	// flow through reused flat buffers — window, model, interval — each
	// sorted once for its percentile reads.
	tailPct, slaFactor := 95.0, 1.0
	if e.Scaler != nil {
		tp, sf := e.Scaler.Thresholds()
		if tp > 0 {
			tailPct = tp
		}
		if sf > 0 {
			slaFactor = sf
		}
	}
	for cap(scr.breached) < windows {
		scr.breached = append(scr.breached[:cap(scr.breached)], false)
	}
	breached := scr.breached[:windows]
	for i := range breached {
		breached[i] = false
	}
	if useSketch {
		// Sketch path: per-window shard sketches merge (bucket-wise,
		// order-independent — parallel keeps byte identity) into a
		// window sketch for the breach verdict, fold into the model
		// sketch for per-model tails, and the model sketches fold into
		// the interval sketch. No latency sample is ever buffered.
		armSketch(&scr.allSk)
		for mi, m := range names {
			shards := scr.tasks[starts[mi]:starts[mi+1]]
			sla := e.models[m].SLATargetMS
			armSketch(&scr.modelSk)
			for w := 0; w < windows; w++ {
				armSketch(&scr.winSk)
				drops := 0
				for _, sh := range shards {
					scr.winSk.Merge(&sh.winSk[w])
					drops += sh.winDrops[w]
				}
				if drops > 0 || (scr.winSk.Count() > 0 && scr.winSk.Quantile(tailPct) > sla*slaFactor) {
					breached[w] = true
				}
				scr.modelSk.Merge(&scr.winSk)
			}
			mQueries, mDrops, mHits := 0, 0, 0
			for _, sh := range shards {
				mQueries += len(sh.queries)
				mDrops += sh.dropped
				mHits += sh.hits
				ist.SpillInServed += sh.remoteServed
				ist.SpillInDropped += sh.remoteDropped
			}
			ist.Queries += mQueries
			ist.Drops += mDrops
			ist.CacheHits += mHits
			if e.cacheActive {
				e.cacheFill(m, mQueries-mDrops-mHits, mHits, mQueries, stepS/sliceS)
			}
			ist.ModelP95MS[m] = scr.modelSk.Quantile(95)
			ist.ModelP99MS[m] = scr.modelSk.Quantile(99)
			obs := modelObs{p99MS: ist.ModelP99MS[m]}
			if mQueries > 0 {
				obs.dropFrac = float64(mDrops) / float64(mQueries)
			}
			e.prevObs[m] = obs
			scr.allSk.Merge(&scr.modelSk)
		}
		ist.P50MS = scr.allSk.Quantile(50)
		ist.P95MS = scr.allSk.Quantile(95)
		ist.P99MS = scr.allSk.Quantile(99)
	} else {
		allBuf := scr.allBuf[:0]
		for mi, m := range names {
			shards := scr.tasks[starts[mi]:starts[mi+1]]
			sla := e.models[m].SLATargetMS
			mBuf := scr.modelBuf[:0]
			for w := 0; w < windows; w++ {
				winBuf := scr.winBuf[:0]
				drops := 0
				for _, sh := range shards {
					for _, l := range sh.winLatS[w] {
						winBuf = append(winBuf, l*1e3)
					}
					drops += sh.winDrops[w]
				}
				mBuf = append(mBuf, winBuf...)
				if drops > 0 || (len(winBuf) > 0 && stats.PercentileSelect(winBuf, tailPct) > sla*slaFactor) {
					breached[w] = true
				}
				scr.winBuf = winBuf[:0]
			}
			mQueries, mDrops, mHits := 0, 0, 0
			for _, sh := range shards {
				mQueries += len(sh.queries)
				mDrops += sh.dropped
				mHits += sh.hits
				ist.SpillInServed += sh.remoteServed
				ist.SpillInDropped += sh.remoteDropped
			}
			ist.Queries += mQueries
			ist.Drops += mDrops
			ist.CacheHits += mHits
			if e.cacheActive {
				e.cacheFill(m, mQueries-mDrops-mHits, mHits, mQueries, stepS/sliceS)
			}
			allBuf = append(allBuf, mBuf...)
			ist.ModelP95MS[m] = stats.PercentileSelect(mBuf, 95)
			ist.ModelP99MS[m] = stats.PercentileSelect(mBuf, 99)
			// Record what admission policies may condition on next interval.
			obs := modelObs{p99MS: ist.ModelP99MS[m]}
			if mQueries > 0 {
				obs.dropFrac = float64(mDrops) / float64(mQueries)
			}
			e.prevObs[m] = obs
			scr.modelBuf = mBuf[:0]
		}
		ist.P50MS = stats.PercentileSelect(allBuf, 50)
		ist.P95MS = stats.PercentileSelect(allBuf, 95)
		ist.P99MS = stats.PercentileSelect(allBuf, 99)
		scr.allBuf = allBuf[:0]
	}
	if e.cacheActive {
		if ist.Queries > 0 {
			ist.CacheHitRate = float64(ist.CacheHits) / float64(ist.Queries)
		}
		ist.CacheWarmth = make(map[string]float64, len(names))
		for _, m := range names {
			ist.CacheWarmth[m] = e.cacheWarmth[m]
		}
	}
	for _, b := range breached {
		if b {
			ist.WindowsBreached++
		}
		if e.Scaler != nil {
			e.Scaler.ObserveWindow(b)
		}
	}
	ist.ViolationMin = stepS / 60 * float64(ist.WindowsBreached) / float64(windows)

	// Energy: every activated instance idles for the whole interval and
	// adds utilization-proportional dynamic power up to its profiled
	// provisioned budget. The same sweep yields the fleet's mean
	// channel utilization for utilization-driven scalers.
	var watts, utilSum float64
	nInsts := 0
	capW := e.powercapPerServerW(eff)
	for _, m := range names {
		for _, in := range insts[m] {
			idle := e.idleWatts(in.Type)
			peak := idle
			if entry, ok := e.Table.Get(in.Type, in.Model); ok {
				peak = math.Max(entry.PowerW, idle)
			}
			u := in.Utilization(sliceS)
			w := idle + (peak-idle)*u
			if cw, ok := capW[in.Type]; ok && w > cw {
				// The powercap is physical: whatever the workload wants,
				// the server never draws past its share of the budget.
				w = cw
			}
			watts += w
			utilSum += u
			nInsts++
		}
	}
	ist.EnergyKJ = watts * stepS / 1e3
	if uo, ok := e.Scaler.(UtilizationObserver); ok && nInsts > 0 {
		uo.ObserveUtilization(utilSum / float64(nInsts))
	}
	return ist
}

// SliceResult is ReplaySlice's accounting. LatS holds one latency per
// admitted query — in arrival order for unbatched pools, in dispatch
// order for batching pools (a batch emits its members' latencies when
// it launches).
type SliceResult struct {
	LatS    []float64
	Served  int
	Dropped int
}

// ReplaySlice routes one query stream (in arrival order) over the
// given instances with a fresh router of the given registered name —
// the single-shard building block RunDay composes, exported for tests
// and tools that want router behavior without provisioning. Batching
// instances (EnableBatching) are served through the dynamic-batching
// path, including the end-of-slice drain of forming batches. An
// unregistered router name panics: callers pass compile-time policy
// names, never user input (route user input through ParseRouter).
func ReplaySlice(routerName string, insts []*Instance, queries []workload.Query, seed int64) SliceResult {
	router, err := NewRouter(routerName)
	if err != nil {
		panic(err)
	}
	rng := stats.NewRand(seed)
	var res SliceResult
	var comps []Completion
	for _, in := range insts {
		in.Reset()
	}
	for _, q := range queries {
		if len(insts) == 0 {
			res.Dropped++
			continue
		}
		in := insts[router.Pick(insts, q.ArrivalS, rng)]
		if in.MaxBatch <= 1 {
			done, drop := in.Arrive(q.ArrivalS, q.Size, q.SparseScale)
			if drop {
				res.Dropped++
				continue
			}
			res.Served++
			res.LatS = append(res.LatS, done-q.ArrivalS)
			continue
		}
		var drop bool
		comps, drop = in.ArriveBatched(q.ID, q.ArrivalS, q.Size, q.SparseScale, comps[:0])
		if drop {
			res.Dropped++
		} else {
			res.Served++
		}
		for _, c := range comps {
			res.LatS = append(res.LatS, c.DoneS-c.ArrivalS)
		}
	}
	for _, in := range insts {
		if in.MaxBatch <= 1 {
			continue
		}
		comps = in.FlushPending(comps[:0])
		for _, c := range comps {
			res.LatS = append(res.LatS, c.DoneS-c.ArrivalS)
		}
	}
	return res
}

// hashString folds a string into a seed component (FNV-1a).
func hashString(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h >> 1)
}

// mixSeed derives a deterministic sub-seed (splitmix64-style) so
// intervals, models and shards draw from independent streams.
func mixSeed(seed int64, vals ...int64) int64 {
	h := uint64(seed) ^ 0x9E3779B97F4A7C15
	for _, v := range vals {
		h ^= uint64(v) + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
	}
	return int64(h >> 1)
}
