package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzTraceParse hammers the NDJSON trace reader with arbitrary bytes:
// it must never panic, and when it does accept an input the result must
// satisfy the reader's own invariants — sorted models, per-(interval,
// model) queries in strictly increasing ID order with non-decreasing
// timestamps, and every interval inside [0, Steps).
func FuzzTraceParse(f *testing.F) {
	// A well-formed two-interval recording.
	f.Add([]byte(`{"i":0,"k":"offer","m":"A","v":10,"aux":4}
{"i":0,"k":"arrival","m":"A","q":1,"t":0.1,"v":3,"aux":4}
{"i":0,"k":"arrival","m":"A","q":2,"t":0.2,"v":1,"aux":4}
{"i":1,"k":"offer","m":"A","v":12,"aux":4}
{"i":1,"k":"arrival","m":"A","q":9,"t":0.05,"v":2,"aux":4}
`))
	// Lines the reader must reject without panicking.
	f.Add([]byte(`{"i":0,"k":"arrival","m":"A","q":2,"t":0.2,"v":1,"aux":4}
{"i":0,"k":"arrival","m":"A","q":2,"t":0.3,"v":1,"aux":4}
`)) // duplicate query id
	f.Add([]byte(`{"i":0,"k":"arrival","m":"A","q":5,"t":0.9,"v":1,"aux":4}
{"i":0,"k":"arrival","m":"A","q":7,"t":0.1,"v":1,"aux":4}
`)) // out-of-order timestamps
	f.Add([]byte(`{"i":0,"k":"warp","m":"A","q":1,"t":0,"v":1,"aux":4}`)) // unknown kind
	f.Add([]byte(`{"i":-3,"k":"arrival","m":"A","q":1,"t":0,"v":1,"aux":4}`))
	f.Add([]byte(`{"i":0,"k":"arrival","m":"A","q":1,"t":1e999,"v":1,"aux":4}`))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"i":0,"k":"hit","m":"A","q":1,"t":0,"v":0.0003}` + "\n" +
		`{"i":0,"k":"arrival","m":"A","q":1,"t":0,"v":1,"aux":4}`)) // skipped kinds interleaved
	f.Add([]byte(`{"i":0,"k":"offer","m":"A","v":10,"aux":4}
{"i":0,"k":"offer","m":"A","v":11,"aux":4}
`)) // duplicate offer

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			if ts != nil {
				t.Fatal("non-nil TraceSource alongside error")
			}
			return
		}
		steps := ts.Steps()
		if steps <= 0 || steps > maxTraceIntervals {
			t.Fatalf("accepted trace with %d steps", steps)
		}
		models := ts.Models()
		if len(models) == 0 {
			t.Fatal("accepted trace with no models")
		}
		for i := 1; i < len(models); i++ {
			if models[i-1] >= models[i] {
				t.Fatalf("models not sorted: %v", models)
			}
		}
		for i := 0; i < steps; i++ {
			if s := ts.Slice(i); s < 0 {
				t.Fatalf("interval %d: negative slice %g", i, s)
			}
			for _, m := range models {
				qs := ts.Queries(i, m)
				for j := 1; j < len(qs); j++ {
					if qs[j-1].ID >= qs[j].ID {
						t.Fatalf("interval %d model %s: query IDs not strictly increasing", i, m)
					}
					if qs[j-1].ArrivalS > qs[j].ArrivalS {
						t.Fatalf("interval %d model %s: timestamps regress", i, m)
					}
				}
			}
		}
		// The accepted trace must produce a replayable workload set.
		ws := ts.Workloads(600, 4)
		if len(ws) != len(models) {
			t.Fatalf("Workloads returned %d entries for %d models", len(ws), len(models))
		}
	})
}

// FuzzSpecDecode throws arbitrary JSON at the fleet Spec decoder and
// the defaulting pass behind it: decode, default, re-encode must never
// panic, and a defaulted spec must survive a decode round trip.
func FuzzSpecDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"router":"p2c","policy":"greedy","models":["DLRM-RMC1"]}`))
	f.Add([]byte(`{"cache":{"hit_rate":0.8,"latency_ms":0.2,"per_model":{"A":0.5}}}`))
	f.Add([]byte(`{"trace":"/dev/null","scenario":"cachestorm","headroom_r":-3}`))
	f.Add([]byte(`{"options":{"slice_s":1e308,"shards":-9,"seed":null}}`))
	f.Add([]byte(`{"sweep":{"routers":["p2c","rand"]},"admission":{"kind":"deadline","gain":1e309}}`))
	f.Add([]byte(`{"models":[""],"cache":{"hit_rate":"NaN"}}`))
	f.Add([]byte(`{"grid":{"curve":"duck","deferrable_frac":0.4},"scaler":"carbon","admission":"carbon"}`))
	f.Add([]byte(`{"grid":{"hourly_g":[1,2,3],"regions":{"east":{"phase_h":-99}}}}`))
	f.Add([]byte(`{"scenario":"{\"name\":\"c\",\"events\":[{\"kind\":\"powercap\",\"type\":\"T2\",\"watts\":-5}]}"}`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var spec Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		def := spec.withDefaults()
		out, err := json.Marshal(def)
		if err != nil {
			// Spec holds only JSON-representable scalars, maps and
			// slices; a decode that succeeded must re-encode.
			t.Fatalf("defaulted spec failed to marshal: %v", err)
		}
		var back Spec
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("defaulted spec did not round-trip: %v\n%s", err, out)
		}
		if def.Router == "" || def.Policy == "" {
			t.Fatalf("withDefaults left router/policy empty: %q %q", def.Router, def.Policy)
		}
	})
}

// TestFuzzSeedsAreCommitted keeps an on-disk corpus alongside the
// inline f.Add seeds: short CI fuzz passes start from these files, and
// any crasher minimized locally lands here as a regression input.
func TestFuzzSeedsAreCommitted(t *testing.T) {
	for _, target := range []string{"FuzzTraceParse", "FuzzSpecDecode"} {
		dir := filepath.Join("testdata", "fuzz", target)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s corpus missing: %v", target, err)
		}
		n := 0
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(string(raw), "go test fuzz v1\n") {
				t.Errorf("%s/%s: not in go-fuzz corpus format", target, e.Name())
			}
			n++
		}
		if n == 0 {
			t.Fatalf("%s corpus is empty", target)
		}
	}
}
