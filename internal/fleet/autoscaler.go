package fleet

import "math"

// Scaler is the online autoscaling policy the engine consults during a
// replay. The engine feeds it every observation window's SLA breach
// verdict (in virtual-time order) and, at each trace-interval
// boundary, asks whether to re-provision early and with how much extra
// over-provision headroom. Scalers registered by name
// (RegisterScaler) are selectable via Spec.Scaler; a nil Engine.Scaler
// disables early re-provisioning entirely (scheduled intervals only).
type Scaler interface {
	Name() string
	// Thresholds returns the tail point (e.g. 95 or 99) and the SLA
	// multiplier the engine's breach verdicts use. Non-positive values
	// fall back to the defaults (95, 1.0).
	Thresholds() (tailPct, slaFactor float64)
	// ObserveWindow feeds one observation window's breach verdict.
	ObserveWindow(breached bool)
	// IntervalEnd advances the scaler one trace interval and reports
	// whether the engine must re-provision early at the next boundary,
	// plus the extra over-provision headroom currently in force.
	IntervalEnd() (early bool, extraR float64)
	// TriggerCount is the number of scaling events so far this run.
	TriggerCount() int
}

// UtilizationObserver is an optional Scaler extension: the engine
// feeds it the fleet's mean service-channel utilization once per
// interval, after the interval's replay. Utilization-driven policies
// (ProportionalScaler) implement it; breach-driven policies ignore it.
type UtilizationObserver interface {
	ObserveUtilization(util float64)
}

func init() {
	RegisterScaler("breach", func() Scaler { return NewAutoscaler() })
	RegisterScaler("prop", func() Scaler { return NewProportionalScaler() })
}

// Autoscaler is the breach-driven scaler (registered as "breach"): it
// watches windowed tail latency during the replay and triggers early
// re-provisioning when the fleet falls behind. Hercules re-provisions
// on a coarse schedule (tens of minutes) to amortize workload setup;
// the autoscaler closes the gap the paper leaves open: load that
// outruns the over-provision headroom *between* scheduled intervals.
// When Patience consecutive observation windows breach the SLA (tail >
// SLAFactor × the model's target, or any query dropped), the engine
// re-provisions at the next interval boundary with the over-provision
// rate boosted by BoostR; the boost stays in force for exactly
// HoldIntervals intervals (the triggered re-provision plus
// HoldIntervals−1 quiet ones), then decays.
type Autoscaler struct {
	// TailPct selects the observed tail point (95 or 99; default 95,
	// matching the paper's latency-bounded-throughput SLA tail).
	TailPct float64
	// SLAFactor scales the model SLA into the breach threshold
	// (default 1.0: any windowed tail above the SLA counts).
	SLAFactor float64
	// Patience is the number of consecutive breached windows required
	// to trigger (default 2 — one bad window can be sampling noise).
	Patience int
	// BoostR is the extra over-provision headroom applied while
	// boosted (default 0.25).
	BoostR float64
	// HoldIntervals is how many intervals a boost lasts, counting the
	// triggered re-provision itself (default 4).
	HoldIntervals int

	streak    int
	boostLeft int
	pending   bool
	// Events counts trigger firings over the run.
	Events int
}

// NewAutoscaler returns a breach-driven autoscaler with the default
// tuning.
func NewAutoscaler() *Autoscaler {
	return &Autoscaler{TailPct: 95, SLAFactor: 1.0, Patience: 2, BoostR: 0.25, HoldIntervals: 4}
}

// Name implements Scaler.
func (a *Autoscaler) Name() string { return "breach" }

// Thresholds implements Scaler.
func (a *Autoscaler) Thresholds() (tailPct, slaFactor float64) {
	return a.TailPct, a.SLAFactor
}

// TriggerCount implements Scaler.
func (a *Autoscaler) TriggerCount() int { return a.Events }

// ObserveWindow feeds one observation window's breach verdict, in
// virtual-time order.
func (a *Autoscaler) ObserveWindow(breached bool) {
	if a == nil {
		return
	}
	if !breached {
		a.streak = 0
		return
	}
	a.streak++
	if a.streak >= a.Patience && !a.pending {
		a.pending = true
		a.Events++
	}
}

// IntervalEnd advances the autoscaler one re-provisioning interval and
// reports whether the engine must re-provision early at the next
// boundary, plus the extra over-provision headroom currently in force.
func (a *Autoscaler) IntervalEnd() (early bool, extraR float64) {
	if a == nil {
		return false, 0
	}
	if a.pending {
		a.pending = false
		a.streak = 0
		// The triggered re-provision is the first of the HoldIntervals
		// boosted intervals; boostLeft counts the remaining ones.
		a.boostLeft = max(a.HoldIntervals-1, 0)
		return true, a.BoostR
	}
	if a.boostLeft > 0 {
		a.boostLeft--
		return false, a.BoostR
	}
	return false, 0
}

// Boosted reports whether boost headroom remains in force beyond the
// interval whose IntervalEnd most recently ran. The per-interval
// boosted flag in DayResult comes from IntervalEnd's extraR return —
// the headroom actually applied to the interval's re-provision — not
// from this lookahead.
func (a *Autoscaler) Boosted() bool { return a != nil && a.boostLeft > 0 }

// ProportionalScaler is the target-utilization scaler (registered as
// "prop"): instead of waiting for tails to breach, it holds the
// fleet's mean service-channel utilization near TargetUtil by scaling
// the over-provision headroom proportionally to the overshoot —
// classic proportional control, re-provisioning early whenever the
// desired headroom moves by more than the hysteresis band. It reacts
// one interval before a breach-driven scaler would (utilization climbs
// before tails collapse) at the cost of chasing load the fleet could
// have absorbed.
type ProportionalScaler struct {
	// TargetUtil is the mean busy fraction the scaler steers toward
	// (default 0.70 — M/G/c tails stay flat below it and take off
	// beyond it).
	TargetUtil float64
	// Gain converts relative overshoot into extra over-provision
	// headroom: extraR = Gain × (util − target)/target (default 1.0).
	Gain float64
	// MaxBoostR caps the extra headroom (default 0.5).
	MaxBoostR float64
	// Hysteresis is the smallest change in desired headroom that
	// forces an early re-provision (default 0.05); smaller drifts keep
	// the currently applied headroom.
	Hysteresis float64

	util    float64
	applied float64
	events  int
}

// NewProportionalScaler returns a target-utilization scaler with the
// default tuning.
func NewProportionalScaler() *ProportionalScaler {
	return &ProportionalScaler{TargetUtil: 0.70, Gain: 1.0, MaxBoostR: 0.5, Hysteresis: 0.05}
}

// Name implements Scaler.
func (p *ProportionalScaler) Name() string { return "prop" }

// Thresholds implements Scaler: the breach-verdict thresholds stay at
// the defaults — this scaler does not act on them, but the engine's
// SLA-violation accounting still uses them.
func (p *ProportionalScaler) Thresholds() (tailPct, slaFactor float64) { return 95, 1.0 }

// ObserveWindow implements Scaler; the proportional policy is
// breach-agnostic.
func (p *ProportionalScaler) ObserveWindow(bool) {}

// ObserveUtilization implements UtilizationObserver.
func (p *ProportionalScaler) ObserveUtilization(util float64) { p.util = util }

// TriggerCount implements Scaler.
func (p *ProportionalScaler) TriggerCount() int { return p.events }

// IntervalEnd implements Scaler: proportional control on the last
// observed mean utilization.
func (p *ProportionalScaler) IntervalEnd() (early bool, extraR float64) {
	target := p.TargetUtil
	if target <= 0 {
		target = 0.70
	}
	want := p.Gain * (p.util - target) / target
	want = math.Min(math.Max(want, 0), p.MaxBoostR)
	if math.Abs(want-p.applied) <= p.Hysteresis {
		return false, p.applied
	}
	p.applied = want
	p.events++
	return true, want
}
