package fleet

// Autoscaler watches windowed tail latency during the replay and
// triggers early re-provisioning when the fleet falls behind. Hercules
// re-provisions on a coarse schedule (tens of minutes) to amortize
// workload setup; the autoscaler closes the gap the paper leaves open:
// load that outruns the over-provision headroom *between* scheduled
// intervals. When Patience consecutive observation windows breach the
// SLA (tail > SLAFactor × the model's target, or any query dropped),
// the engine re-provisions at the next interval boundary with the
// over-provision rate boosted by BoostR; the boost stays in force for
// exactly HoldIntervals intervals (the triggered re-provision plus
// HoldIntervals−1 quiet ones), then decays.
type Autoscaler struct {
	// TailPct selects the observed tail point (95 or 99; default 95,
	// matching the paper's latency-bounded-throughput SLA tail).
	TailPct float64
	// SLAFactor scales the model SLA into the breach threshold
	// (default 1.0: any windowed tail above the SLA counts).
	SLAFactor float64
	// Patience is the number of consecutive breached windows required
	// to trigger (default 2 — one bad window can be sampling noise).
	Patience int
	// BoostR is the extra over-provision headroom applied while
	// boosted (default 0.25).
	BoostR float64
	// HoldIntervals is how many intervals a boost lasts, counting the
	// triggered re-provision itself (default 4).
	HoldIntervals int

	streak    int
	boostLeft int
	pending   bool
	// Events counts trigger firings over the run.
	Events int
}

// NewAutoscaler returns an autoscaler with the default tuning.
func NewAutoscaler() *Autoscaler {
	return &Autoscaler{TailPct: 95, SLAFactor: 1.0, Patience: 2, BoostR: 0.25, HoldIntervals: 4}
}

// ObserveWindow feeds one observation window's breach verdict, in
// virtual-time order.
func (a *Autoscaler) ObserveWindow(breached bool) {
	if a == nil {
		return
	}
	if !breached {
		a.streak = 0
		return
	}
	a.streak++
	if a.streak >= a.Patience && !a.pending {
		a.pending = true
		a.Events++
	}
}

// IntervalEnd advances the autoscaler one re-provisioning interval and
// reports whether the engine must re-provision early at the next
// boundary, plus the extra over-provision headroom currently in force.
func (a *Autoscaler) IntervalEnd() (early bool, extraR float64) {
	if a == nil {
		return false, 0
	}
	if a.pending {
		a.pending = false
		a.streak = 0
		// The triggered re-provision is the first of the HoldIntervals
		// boosted intervals; boostLeft counts the remaining ones.
		a.boostLeft = max(a.HoldIntervals-1, 0)
		return true, a.BoostR
	}
	if a.boostLeft > 0 {
		a.boostLeft--
		return false, a.BoostR
	}
	return false, 0
}

// Boosted reports whether boost headroom remains in force beyond the
// interval whose IntervalEnd most recently ran. The per-interval
// boosted flag in DayResult comes from IntervalEnd's extraR return —
// the headroom actually applied to the interval's re-provision — not
// from this lookahead.
func (a *Autoscaler) Boosted() bool { return a != nil && a.boostLeft > 0 }
