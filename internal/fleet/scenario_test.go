package fleet

import (
	"reflect"
	"testing"

	"hercules/internal/cluster"
	"hercules/internal/scenario"
)

// flatTrace is a steady load the test fleet serves comfortably, so any
// divergence from the baseline replay is attributable to the scenario.
// 10-minute intervals: interval i spans hours [i/6, (i+1)/6).
func flatTrace(qps float64, steps int) []cluster.Workload {
	loads := make([]float64, steps)
	for i := range loads {
		loads[i] = qps
	}
	return []cluster.Workload{{Model: "DLRM-RMC1", Trace: stepTrace(loads...)}}
}

func withScenario(t *testing.T, e *Engine, ws []cluster.Workload, sc scenario.Scenario) *Engine {
	t.Helper()
	if err := e.ApplyScenario(sc, ws); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestScenarioSpikeDivergesFromBaseline(t *testing.T) {
	ws := flatTrace(1000, 8)
	base, err := testEngine(PowerOfTwo, testOpts()).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario.Scenario{Name: "burst", Events: []scenario.Event{
		// Intervals 3-5 (midpoints 0.583h, 0.75h, 0.917h): a 6x spike
		// between the scheduled re-provisions at intervals 0 and 4.
		{Kind: scenario.Spike, StartH: 0.5, EndH: 1.0, Factor: 6},
	}}
	spiked, err := withScenario(t, testEngine(PowerOfTwo, testOpts()), ws, sc).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if spiked.Scenario != "burst" || base.Scenario != "baseline" {
		t.Fatalf("scenario labels %q / %q", spiked.Scenario, base.Scenario)
	}
	if base.SLAViolationMin > 0 {
		t.Fatalf("baseline must serve the flat day clean, got %.1f violation min", base.SLAViolationMin)
	}
	if spiked.SLAViolationMin <= base.SLAViolationMin {
		t.Fatalf("spike must add violation minutes: %.1f vs %.1f",
			spiked.SLAViolationMin, base.SLAViolationMin)
	}
	// The p99 series must visibly diverge inside the spike window and
	// agree before it (same seed, same traffic up to the event).
	if spiked.Steps[3].P99MS <= base.Steps[3].P99MS {
		t.Errorf("interval 3 p99 %.2f must exceed baseline %.2f",
			spiked.Steps[3].P99MS, base.Steps[3].P99MS)
	}
	if spiked.Steps[1].P99MS != base.Steps[1].P99MS {
		t.Errorf("pre-event interval 1 p99 %.2f must equal baseline %.2f",
			spiked.Steps[1].P99MS, base.Steps[1].P99MS)
	}
	if spiked.Steps[3].OfferedQPS <= base.Steps[3].OfferedQPS*5 {
		t.Errorf("offered load must reflect the spike: %.0f vs %.0f",
			spiked.Steps[3].OfferedQPS, base.Steps[3].OfferedQPS)
	}
}

func TestScenarioKillDegradesThenReprovisions(t *testing.T) {
	ws := flatTrace(2000, 8)
	sc := scenario.Scenario{Name: "rack-down", Events: []scenario.Event{
		// 55 of the 60 T2 servers die during intervals 3-5.
		{Kind: scenario.Kill, StartH: 0.5, EndH: 1.0, Type: "T2", Count: 55},
	}}
	res, err := withScenario(t, testEngine(PowerOfTwo, testOpts()), ws, sc).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[3].DeadServers != 55 || res.Steps[2].DeadServers != 0 {
		t.Fatalf("dead servers %d/%d, want 55 during and 0 before the event",
			res.Steps[3].DeadServers, res.Steps[2].DeadServers)
	}
	// Only 5 servers (1000 QPS capacity) survive a 2000-QPS load: the
	// kill interval must breach and drop.
	if res.Steps[3].ViolationMin == 0 || res.Steps[3].Drops == 0 {
		t.Errorf("kill interval must breach and drop (viol %.1f, drops %d)",
			res.Steps[3].ViolationMin, res.Steps[3].Drops)
	}
	// Health checks notice at the interval's end: interval 4 (a
	// scheduled boundary here) must re-provision against the degraded
	// availability and activate at most the 5 live servers.
	if !res.Steps[4].Reprovisioned {
		t.Fatal("interval 4 must re-provision")
	}
	if res.Steps[4].ActiveServers > 5 {
		t.Errorf("degraded re-provision activated %d servers, only 5 are alive",
			res.Steps[4].ActiveServers)
	}
	// After the restore (interval 6), the next re-provision must see
	// the full fleet again; by interval 7 at the latest the scenario's
	// recovery re-provision has run.
	last := res.Steps[7]
	if last.DeadServers != 0 {
		t.Errorf("servers must be restored by interval 7, %d still dead", last.DeadServers)
	}
	if last.ActiveServers <= 5 {
		t.Errorf("restored fleet must re-provision above the degraded size, got %d", last.ActiveServers)
	}
}

func TestScenarioDerateRaisesTailsSilently(t *testing.T) {
	ws := flatTrace(1000, 6)
	base, err := testEngine(LeastOutstanding, testOpts()).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario.Scenario{Name: "throttle", Events: []scenario.Event{
		{Kind: scenario.Derate, StartH: 0, EndH: 1, Factor: 0.5},
	}}
	slow, err := withScenario(t, testEngine(LeastOutstanding, testOpts()), ws, sc).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	// Half the service rate doubles the no-queueing latency floor.
	if slow.MeanP95MS < base.MeanP95MS*1.5 {
		t.Errorf("derated p95 %.2f must be well above baseline %.2f",
			slow.MeanP95MS, base.MeanP95MS)
	}
	// Derates are invisible to the control plane: same provisioning.
	for i, s := range slow.Steps {
		if s.DeadServers != 0 {
			t.Errorf("interval %d: derate must not report dead servers", i)
		}
		if s.ActiveServers != base.Steps[i].ActiveServers && !s.EarlyReprovision && !base.Steps[i].EarlyReprovision {
			t.Errorf("interval %d: derate changed scheduled provisioning %d -> %d",
				i, base.Steps[i].ActiveServers, s.ActiveServers)
		}
	}
}

func TestScenarioShedAccounting(t *testing.T) {
	ws := flatTrace(1200, 6)
	base, err := testEngine(RoundRobin, testOpts()).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario.Scenario{Name: "drill", Events: []scenario.Event{
		{Kind: scenario.Shed, StartH: 0, EndH: 1, Factor: 0.5},
	}}
	shed, err := withScenario(t, testEngine(RoundRobin, testOpts()), ws, sc).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if shed.TotalShed == 0 {
		t.Fatal("shed scenario recorded no shed queries")
	}
	if base.TotalShed != 0 {
		t.Fatal("baseline must not shed")
	}
	// A 50% Bernoulli thinning keeps roughly half the stream.
	frac := float64(shed.TotalShed) / float64(shed.TotalShed+shed.TotalQueries)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("shed fraction %.3f, want ~0.5", frac)
	}
	// Shed queries are not queue drops.
	if shed.TotalDrops > base.TotalDrops {
		t.Errorf("shedding must not increase queue drops: %d vs %d",
			shed.TotalDrops, base.TotalDrops)
	}
	var sumShed int
	for _, s := range shed.Steps {
		sumShed += s.Shed
	}
	if sumShed != shed.TotalShed {
		t.Errorf("per-interval shed sum %d != total %d", sumShed, shed.TotalShed)
	}
}

func TestScenarioMixShiftStressesCapacity(t *testing.T) {
	// Size-dependent service: 25 µs per ranked item, so a mix shift
	// toward bigger queries slows every server without moving QPS.
	sized := func(e *Engine) *Engine {
		e.Service = svcFunc(func(st, m string, size int, scale float64) float64 {
			return float64(size) * 25e-6
		})
		return e
	}
	ws := flatTrace(800, 6)
	base, err := sized(testEngine(PowerOfTwo, testOpts())).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario.Scenario{Name: "failover", Events: []scenario.Event{
		{Kind: scenario.MixShift, StartH: 0.5, EndH: 1, Factor: 2.5},
	}}
	shifted, err := withScenario(t, sized(testEngine(PowerOfTwo, testOpts())), ws, sc).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	// Same arrivals, heavier queries: offered QPS unchanged, tails up.
	if shifted.Steps[3].OfferedQPS != base.Steps[3].OfferedQPS {
		t.Errorf("mix shift must not change offered load: %.0f vs %.0f",
			shifted.Steps[3].OfferedQPS, base.Steps[3].OfferedQPS)
	}
	if shifted.Steps[3].P99MS < base.Steps[3].P99MS*1.5 {
		t.Errorf("shifted p99 %.2f must be well above baseline %.2f",
			shifted.Steps[3].P99MS, base.Steps[3].P99MS)
	}
}

func TestScenarioReplayDeterministic(t *testing.T) {
	ws := flatTrace(1500, 8)
	sc, err := scenario.Named("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	run := func(sequential bool) DayResult {
		opts := testOpts()
		opts.Shards = 4
		opts.Sequential = sequential
		res, err := withScenario(t, testEngine(WeightedHetero, opts), ws, sc).RunDay(ws)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(false)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed + scenario must replay bit-identically")
	}
	seq := run(true)
	if !reflect.DeepEqual(a, seq) {
		t.Fatal("parallel scenario replay must match sequential")
	}
}

func TestApplyScenarioRejectsInvalid(t *testing.T) {
	ws := flatTrace(100, 4)
	e := testEngine(RoundRobin, testOpts())
	bad := scenario.Scenario{Events: []scenario.Event{{Kind: "nope", StartH: 0, EndH: 1}}}
	if err := e.ApplyScenario(bad, ws); err == nil {
		t.Error("invalid scenario accepted")
	}
	if err := e.ApplyScenario(scenario.Scenario{}, nil); err == nil {
		t.Error("empty workloads accepted")
	}
}
