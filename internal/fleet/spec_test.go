package fleet

import (
	"reflect"
	"strings"
	"testing"

	"hercules/internal/cluster"
)

// TestDefaultSpecCarriesDefaultOptions is the drift guard: every
// consumer (CLIs, experiments, examples) derives engine tuning from
// DefaultSpec, and DefaultSpec must carry exactly DefaultOptions —
// one place to change a default, nowhere for copies to rot.
func TestDefaultSpecCarriesDefaultOptions(t *testing.T) {
	if got, want := DefaultSpec().Options, DefaultOptions(); got != want {
		t.Errorf("DefaultSpec().Options = %+v, want DefaultOptions() %+v", got, want)
	}
}

func TestSpecZeroValuesDeferToDefaults(t *testing.T) {
	e, err := NewEngine(Spec{}, WithTable(testTable()),
		WithService(svcFunc(func(st, m string, size int, scale float64) float64 { return 0.005 })))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultSpec()
	if e.Spec.Fleet != def.Fleet || e.Spec.Router != def.Router || e.Spec.Policy != def.Policy {
		t.Errorf("zero spec normalized to %+v, want the DefaultSpec names", e.Spec)
	}
	if e.Opts != def.Options {
		t.Errorf("zero Options must become DefaultOptions, got %+v", e.Opts)
	}
	if e.Scaler == nil || e.Scaler.Name() != "breach" {
		t.Error("default scaler must be the breach autoscaler")
	}
	if e.Admission != nil {
		t.Error("default admission must be nil (admit everything)")
	}
	if e.Provisioner.OverProvisionR != def.HeadroomR {
		t.Errorf("headroom %v, want the default %v", e.Provisioner.OverProvisionR, def.HeadroomR)
	}
}

func TestNewEngineRejectsUnknownNames(t *testing.T) {
	base := Spec{Models: []string{"DLRM-RMC1"}}
	for _, tc := range []struct {
		mutate func(*Spec)
		frag   string
	}{
		{func(s *Spec) { s.Router = "warp" }, "unknown router"},
		{func(s *Spec) { s.Policy = "anarchy" }, "unknown policy"},
		{func(s *Spec) { s.Scaler = "vertical" }, "unknown autoscaler"},
		{func(s *Spec) { s.Admission = "vip" }, "unknown admission"},
		{func(s *Spec) { s.Fleet = "armada" }, "unknown fleet"},
		{func(s *Spec) { s.Scenario = "ragnarok" }, "unknown scenario"},
	} {
		spec := base
		tc.mutate(&spec)
		_, err := NewEngine(spec, WithTable(testTable()))
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("NewEngine(%+v) error %v, want %q", spec, err, tc.frag)
		}
	}
}

// TestScalerSelectableBySpec: the spec's scaler name decides the
// engine's autoscaling policy; "none" disables it.
func TestScalerSelectableBySpec(t *testing.T) {
	mk := func(name string) *Engine {
		e, err := NewEngine(Spec{Scaler: name, Models: []string{"DLRM-RMC1"}},
			WithFleet(testFleet()), WithTable(testTable()),
			WithService(svcFunc(func(st, m string, size int, scale float64) float64 { return 0.005 })))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if s := mk("prop").Scaler; s == nil || s.Name() != "prop" {
		t.Error("spec must select the proportional scaler by name")
	}
	if s := mk("none").Scaler; s != nil {
		t.Error("scaler \"none\" must disable autoscaling")
	}
	if _, ok := mk("prop").Scaler.(UtilizationObserver); !ok {
		t.Error("proportional scaler must observe utilization")
	}
}

// TestProportionalScalerReprovisions: under sustained overload the
// target-utilization scaler must trigger early re-provisions with
// extra headroom, like the breach scaler but from the utilization
// signal alone.
func TestProportionalScalerReprovisions(t *testing.T) {
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(200, 2400, 2400, 2400, 2400, 2400, 2400, 2400),
	}}
	e := testEngine(PowerOfTwo, testOpts())
	e.Scaler = NewProportionalScaler()
	res, err := e.RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scaler != "prop" {
		t.Errorf("day result records scaler %q, want prop", res.Scaler)
	}
	if res.AutoscaleEvents == 0 {
		t.Error("sustained overload must trigger the proportional scaler")
	}
	if res.EarlyReprovisions == 0 {
		t.Error("proportional trigger must cause early re-provisions")
	}
	// And the utilization boost must actually grow the fleet versus the
	// same day with no scaler at all.
	eOff := testEngine(PowerOfTwo, testOpts())
	eOff.Scaler = nil
	off, err := eOff.RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLAViolationMin >= off.SLAViolationMin {
		t.Errorf("prop scaler must claw back violation minutes: %v with vs %v without",
			res.SLAViolationMin, off.SLAViolationMin)
	}
}

// TestDeadlineAdmissionShedsUnderOverload: with the previous interval
// past its SLA, the deadline policy must shed at the door — and the
// shed traffic must show up as Shed accounting while relieving queue
// drops. The autoscaler is off in both runs so the stale allocation
// stays overloaded and admission control is the only defense (with it
// on, both policies rescue the fleet at the same boundary and the
// comparison shows nothing).
func TestDeadlineAdmissionShedsUnderOverload(t *testing.T) {
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(200, 2400, 2400, 2400, 2400, 2400),
	}}
	eBase := testEngine(PowerOfTwo, testOpts())
	eBase.Scaler = nil
	base, err := eBase.RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	e := testEngine(PowerOfTwo, testOpts())
	e.Scaler = nil
	e.Admission = NewDeadlineAdmission()
	res, err := e.RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admission != "deadline" {
		t.Errorf("day result records admission %q, want deadline", res.Admission)
	}
	if base.TotalShed != 0 {
		t.Fatal("baseline must not shed")
	}
	if res.TotalShed == 0 {
		t.Fatal("deadline admission must shed during the overload")
	}
	if res.Steps[1].Shed != 0 {
		t.Error("admission has no signal before the first overloaded interval completes")
	}
	if res.TotalDrops >= base.TotalDrops {
		t.Errorf("shedding at the door must relieve queue drops: %d vs %d without admission",
			res.TotalDrops, base.TotalDrops)
	}
}

// TestObserverSeesTheAggregatedStream: caller observers receive
// exactly the intervals DayResult aggregates, in order.
func TestObserverSeesTheAggregatedStream(t *testing.T) {
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(500, 1000, 1500, 1000),
	}}
	var streamed []IntervalStats
	e := testEngine(WeightedHetero, testOpts())
	e.Observers = append(e.Observers, ObserverFunc(func(ist IntervalStats) {
		streamed = append(streamed, ist)
	}))
	res, err := e.RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, res.Steps) {
		t.Fatal("observer stream must equal DayResult.Steps")
	}
	// The aggregate is a pure fold of the stream: recompute a few
	// fields from what the observer saw.
	var q int
	var viol float64
	for _, ist := range streamed {
		q += ist.Queries
		viol += ist.ViolationMin
	}
	if q != res.TotalQueries || viol != res.SLAViolationMin {
		t.Errorf("fold of the stream (%d, %v) disagrees with the aggregate (%d, %v)",
			q, viol, res.TotalQueries, res.SLAViolationMin)
	}
}

// TestEngineWorkloadsFollowSpec: the synthesized day follows the
// spec's geometry and is deterministic in the seed.
func TestEngineWorkloadsFollowSpec(t *testing.T) {
	spec := Spec{Models: []string{"DLRM-RMC1"}, Days: 2, StepMin: 30, PeakQPS: 500}
	e, err := NewEngine(spec, WithFleet(testFleet()), WithTable(testTable()))
	if err != nil {
		t.Fatal(err)
	}
	ws := e.Workloads()
	if len(ws) != 1 {
		t.Fatalf("workloads = %d, want 1", len(ws))
	}
	if got := ws[0].Trace.Steps(); got != 2*48 {
		t.Errorf("2 days at 30-minute steps = %d intervals, want 96", got)
	}
	var peak float64
	for _, l := range ws[0].Trace.LoadsQPS {
		peak = max(peak, l)
	}
	if peak < 400 || peak > 600 {
		t.Errorf("peak %v far from the requested 500 QPS", peak)
	}
	if !reflect.DeepEqual(ws, e.Workloads()) {
		t.Error("Workloads must be deterministic")
	}
	// PeakQPS 0 auto-sizes from the table.
	spec.PeakQPS = 0
	eAuto, err := NewEngine(spec, WithFleet(testFleet()), WithTable(testTable()))
	if err != nil {
		t.Fatal(err)
	}
	wsAuto := eAuto.Workloads()
	var autoPeak float64
	for _, l := range wsAuto[0].Trace.LoadsQPS {
		autoPeak = max(autoPeak, l)
	}
	// 60 T2 servers at 200 QPS, 45% target: ~5400 QPS.
	if autoPeak < 3000 || autoPeak > 7000 {
		t.Errorf("auto-sized peak %v implausible for the test fleet", autoPeak)
	}
}
