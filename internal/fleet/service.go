package fleet

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/sim"
	"hercules/internal/stats"
	"hercules/internal/workload"
)

// serverByType is hw.ServerType without the panic: the fleet layer
// consumes allocations that may name types outside T1–T10 (tests build
// synthetic fleets), and an unknown type must surface as an error, not
// a crash.
func serverByType(label string) (srv hw.Server, err error) {
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("fleet: unknown server type %q", label)
		}
	}()
	return hw.ServerType(label), nil
}

// ServiceSource supplies per-query service times for the fleet engine:
// the time one server of the given type needs to serve one query of the
// given model with the server otherwise idle. Implementations must be
// safe for concurrent use (the parallel replay path calls from many
// shard workers).
type ServiceSource interface {
	ServiceS(serverType, modelName string, size int, scale float64) float64
}

// PairSource is an optional fast path a ServiceSource may implement:
// PairService resolves the (server type, model) pair once and returns a
// sampler the engine installs directly on each instance, so the replay
// loop never pays a per-query pair lookup. A nil return (unknown pair)
// sends the engine back to the generic ServiceS path.
type PairSource interface {
	PairService(serverType, modelName string) func(size int, scale float64) float64
}

// BatchSource is the optional batching extension of a ServiceSource:
// PairBatchEff returns the pair's batching-efficiency curve, a dense
// slice eff[0..maxBatch] where eff[n] is the service time of an
// n-query batch divided by the sum of its members' solo service times.
// eff[1] is 1 by construction; amortized dispatch overheads, weight
// streaming and kernel launches push larger batches below 1. The curve
// is resolved once per (pair, engine) at instance-build time — the
// per-query replay path never consults the source. A nil return means
// the source cannot price batches for the pair, and the engine serves
// that pair unbatched (unmeasured batching is never enabled).
type BatchSource interface {
	PairBatchEff(serverType, modelName string, maxBatch int) []float64
}

// SimService derives service times from the existing per-server
// simulator (internal/sim): each (server type, model) pair is served
// under the task-scheduling configuration recorded in the profiler
// efficiency table, and a query's service time is the latency the
// simulator reports for that single query on an idle server.
//
// Service times are precomputed on a dense (size bucket × scale bucket)
// grid per pair — filled lazily, read lock-free — so a full day of
// millions of queries costs only a few hundred cost-model evaluations
// per pair and the replay hot path is two table indexes.
type SimService struct {
	table *profiler.Table

	mu    sync.Mutex
	pairs map[pairKey]*pairSim
}

type pairKey struct {
	server string
	model  string
}

// The query-size ladder: geometric ~12%-wide buckets keep the sampler
// grid small (≈74 buckets up to ladderMaxSize) while staying within the
// cost model's accuracy. sizeIdxTab maps a raw size to its ladder
// index, sizeRepTab maps a ladder index to the representative size the
// simulator is evaluated at — both precomputed once so the per-query
// path does no log/pow math.
const (
	sizeLadder    = 1.12
	ladderMaxSize = 4096
	scaleBuckets  = 32
	// scaleCells is the per-size grid width: buckets 1..scaleBuckets for
	// positive scales plus a dedicated bucket 0 for scale-0 (dense-only)
	// queries, which must not be silently priced at scale 0.125.
	scaleCells = scaleBuckets + 1
)

var (
	sizeIdxTab [ladderMaxSize + 1]int16
	sizeRepTab []int
	ladderLen  int
)

func init() {
	ladderLen = ladderIdx(ladderMaxSize) + 1
	sizeRepTab = make([]int, ladderLen)
	for b := 0; b < ladderLen; b++ {
		sizeRepTab[b] = max(int(math.Round(math.Pow(sizeLadder, float64(b)))), 1)
	}
	for s := 0; s <= ladderMaxSize; s++ {
		sizeIdxTab[s] = int16(ladderIdx(s))
	}
}

// ladderIdx computes a size's ladder index the slow way (used to build
// the tables and for out-of-range sizes).
func ladderIdx(size int) int {
	if size <= 1 {
		return 0
	}
	return int(math.Round(math.Log(float64(size)) / math.Log(sizeLadder)))
}

func sizeBucket(size int) int {
	if size >= 0 && size <= ladderMaxSize {
		return sizeRepTab[sizeIdxTab[size]]
	}
	return max(int(math.Round(math.Pow(sizeLadder, float64(ladderIdx(size))))), 1)
}

// scaleBucket quantizes sparse scales to eighths, like internal/sim's
// cost memo. Zero (a dense model, or a query with no pooled work) gets
// its own bucket rather than being clamped up to 0.125.
func scaleBucket(scale float64) int {
	return stats.ClampInt(int(math.Round(scale*8)), 0, scaleBuckets)
}

// pairSim is the per-(server type, model) simulator with its
// precomputed service-time grid. vals[idx*scaleCells+sb] holds the
// service time for ladder index idx and scale bucket sb; ready flags
// gate lock-free reads (the value is published before its flag, so an
// acquire-load of the flag makes the value visible).
type pairSim struct {
	srv *sim.Server
	cfg sim.Config

	mu    sync.Mutex
	vals  []float64
	ready []atomic.Bool

	// overflow memoizes sizes beyond the ladder (never produced by the
	// workload generators, but ReplaySlice accepts arbitrary queries).
	overflow map[int64]float64
	// effs memoizes batching-efficiency curves by batch cap (built under
	// mu, read-only afterwards: callers share the returned slices).
	effs map[int][]float64
}

// NewSimService builds a service source over the given efficiency
// table. The table's entries must carry the task-scheduling Config the
// profiler found (entries hand-built without a Config fall back to a
// conservative default serving configuration).
func NewSimService(table *profiler.Table) *SimService {
	return &SimService{table: table, pairs: make(map[pairKey]*pairSim)}
}

// sharedServices caches one SimService per efficiency table, so every
// engine replaying against the same table shares the precomputed
// service-time grids instead of re-simulating them. Grid entries are
// pure functions of the (pair, size bucket, scale bucket) key, so
// sharing cannot leak state between runs — provided the table is not
// mutated after its first engine runs. Callers that edit table entries
// mid-process (table.Set after a replay) must install a fresh
// NewSimService on the engine themselves; the shared cache
// deliberately never invalidates.
var sharedServices sync.Map // *profiler.Table -> *SimService

// SharedSimService returns the process-wide SimService for the table.
// The table is treated as immutable from the first call on.
func SharedSimService(table *profiler.Table) *SimService {
	if s, ok := sharedServices.Load(table); ok {
		return s.(*SimService)
	}
	s, _ := sharedServices.LoadOrStore(table, NewSimService(table))
	return s.(*SimService)
}

// pair returns (building lazily) the simulator for one pair.
func (s *SimService) pair(serverType, modelName string) (*pairSim, error) {
	k := pairKey{serverType, modelName}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ps, ok := s.pairs[k]; ok {
		return ps, nil
	}
	m, err := model.ByName(modelName, model.Prod)
	if err != nil {
		return nil, err
	}
	srv, err := serverByType(serverType)
	if err != nil {
		return nil, err
	}
	cfg := DefaultServingConfig(srv)
	if e, ok := s.table.Get(serverType, modelName); ok && e.QPS > 0 {
		if e.Cfg.Validate(srv) == nil {
			cfg = e.Cfg
		}
	}
	ps := &pairSim{
		srv:   sim.New(srv, m),
		cfg:   cfg,
		vals:  make([]float64, ladderLen*scaleCells),
		ready: make([]atomic.Bool, ladderLen*scaleCells),
	}
	s.pairs[k] = ps
	return ps, nil
}

// ServiceS implements ServiceSource.
func (s *SimService) ServiceS(serverType, modelName string, size int, scale float64) float64 {
	ps, err := s.pair(serverType, modelName)
	if err != nil {
		// Unknown pair: infinite service so the caller drops the query
		// rather than inventing a latency.
		return math.Inf(1)
	}
	return ps.serviceS(size, scale)
}

// PairService implements PairSource.
func (s *SimService) PairService(serverType, modelName string) func(size int, scale float64) float64 {
	ps, err := s.pair(serverType, modelName)
	if err != nil {
		return nil
	}
	return ps.serviceS
}

// PairBatchEff implements BatchSource: the batching-efficiency curve
// is measured by evaluating internal/sim at representative batch
// sizes for the pair — a batch of n queries is simulated as one merged
// query of n × the median query size on a single-channel reduction of
// the pair's serving configuration — and interpolating between the
// measured points.
func (s *SimService) PairBatchEff(serverType, modelName string, maxBatch int) []float64 {
	if maxBatch < 2 {
		return nil
	}
	ps, err := s.pair(serverType, modelName)
	if err != nil {
		return nil
	}
	return ps.batchEffCurve(maxBatch)
}

func (p *pairSim) serviceS(size int, scale float64) float64 {
	sb := scaleBucket(scale)
	if size < 0 || size > ladderMaxSize {
		return p.overflowServiceS(size, sb)
	}
	cell := int(sizeIdxTab[size])*scaleCells + sb
	if p.ready[cell].Load() {
		return p.vals[cell]
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.ready[cell].Load() {
		p.vals[cell] = p.simulate(sizeRepTab[sizeIdxTab[size]], sb)
		p.ready[cell].Store(true)
	}
	return p.vals[cell]
}

// overflowServiceS serves sizes beyond the precomputed ladder from a
// mutex-guarded memo (cold path; production workloads never reach it).
func (p *pairSim) overflowServiceS(size, sb int) float64 {
	rep := sizeBucket(size)
	key := int64(rep)<<8 | int64(sb)
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.overflow[key]; ok {
		return v
	}
	if p.overflow == nil {
		p.overflow = make(map[int64]float64)
	}
	v := p.simulate(rep, sb)
	p.overflow[key] = v
	return v
}

// simulate measures one idle-server query at the bucket representative.
func (p *pairSim) simulate(repSize, sb int) float64 {
	q := workload.Query{ID: 1, ArrivalS: 0, Size: repSize, SparseScale: float64(sb) / 8}
	res, err := p.srv.Simulate(p.cfg, []workload.Query{q}, 1)
	if err == nil && res.MeanMS > 0 {
		return res.MeanMS / 1e3
	}
	return math.Inf(1)
}

// repBatchItems is the per-query item count the batch grid is
// evaluated at: the default query-size distribution's median.
const repBatchItems = 110

// batchEffCurve measures (and memoizes) the pair's batching-efficiency
// curve up to maxBatch: representative batch sizes (powers of two plus
// the cap) are simulated as that many simultaneous median-size queries
// on the pair's full serving configuration, the whole-server batch
// makespan is normalized by n × the solo makespan, and the curve is
// linearly interpolated in between. Returns nil when the simulator
// cannot price the pair.
//
// The curve is whole-server by construction — a batch of n fills the
// thread pool / accelerator occupancy that a solo query leaves idle —
// which is why a batching Instance serves as a single server-wide
// channel: eff[n] × (n solo times) IS the server's batch makespan, and
// n / makespan its batched saturation throughput.
func (p *pairSim) batchEffCurve(maxBatch int) []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if eff, ok := p.effs[maxBatch]; ok {
		return eff
	}
	if p.effs == nil {
		p.effs = make(map[int][]float64)
	}
	eff := p.measureEffCurve(maxBatch)
	p.effs[maxBatch] = eff
	return eff
}

func (p *pairSim) measureEffCurve(maxBatch int) []float64 {
	solo := p.batchMakespan(1)
	if math.IsInf(solo, 0) || solo <= 0 {
		return nil
	}
	pts := []int{1}
	for b := 2; b < maxBatch; b *= 2 {
		pts = append(pts, b)
	}
	pts = append(pts, maxBatch)
	effAt := make([]float64, len(pts))
	effAt[0] = 1
	for i := 1; i < len(pts); i++ {
		t := p.batchMakespan(pts[i])
		if math.IsInf(t, 0) || t <= 0 {
			return nil
		}
		effAt[i] = t / (float64(pts[i]) * solo)
	}
	eff := make([]float64, maxBatch+1)
	eff[0] = 1
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		for n := lo; n <= hi; n++ {
			frac := 0.0
			if hi > lo {
				frac = float64(n-lo) / float64(hi-lo)
			}
			eff[n] = effAt[i-1] + frac*(effAt[i]-effAt[i-1])
		}
	}
	// Sanity rails: a batch is never faster than its longest member
	// (eff ≥ 1/n) and never slower than draining the members through
	// the server one at a time (eff ≤ 1).
	for n := 1; n <= maxBatch; n++ {
		eff[n] = math.Min(math.Max(eff[n], 1/float64(n)), 1)
	}
	return eff
}

// batchMakespan measures an idle server of the pair's full serving
// configuration clearing b simultaneous median-size queries: the
// whole-server batch makespan (CompletedQPS is queries over the true
// makespan when the nominal window is shorter).
func (p *pairSim) batchMakespan(b int) float64 {
	qs := make([]workload.Query, b)
	for i := range qs {
		qs[i] = workload.Query{ID: int64(i + 1), ArrivalS: 0, Size: repBatchItems, SparseScale: 1}
	}
	res, err := p.srv.Simulate(p.cfg, qs, 1e-3)
	if err == nil && res.CompletedQPS > 0 {
		return float64(b) / res.CompletedQPS
	}
	return math.Inf(1)
}

// meanServiceS estimates the expected per-query service time of a pair
// under the default query-size distribution by averaging the source
// over a fixed deterministic sample. The engine uses it to calibrate
// per-instance concurrency against the profiled capacity.
func meanServiceS(src ServiceSource, serverType, modelName string, seed int64) float64 {
	const draws = 128
	r := stats.NewRand(seed)
	d := workload.DefaultQuerySizes()
	var sum float64
	n := 0
	for i := 0; i < draws; i++ {
		size := d.Draw(r)
		scale := stats.Lognormal(r, -0.045, 0.3) // mean-1 pooling multiplier
		v := src.ServiceS(serverType, modelName, size, scale)
		if math.IsInf(v, 0) || v <= 0 {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// DefaultServingConfig returns a conservative task-scheduling
// configuration for serving on the given server when no profiled
// configuration is available: half the cores as two-worker inference
// threads on CPUs, and an S-D split with query fusion on accelerated
// servers. NMP DIMMs are used whenever present.
func DefaultServingConfig(srv hw.Server) sim.Config {
	if srv.HasGPU() {
		threads := min(8, max(1, srv.CPU.PhysicalCores/2))
		return sim.Config{
			Place:         sim.PlaceAccelSD,
			SparseThreads: threads,
			SparseWorkers: 2,
			Batch:         256,
			AccelThreads:  2,
			FusionLimit:   2000,
			UseNMP:        srv.HasNMP(),
		}
	}
	threads := max(1, srv.CPU.PhysicalCores/2)
	return sim.Config{
		Place:     sim.PlaceCPUModel,
		Threads:   threads,
		OpWorkers: 2,
		Batch:     256,
		UseNMP:    srv.HasNMP(),
	}
}

// ServingConfigCandidates returns a small ladder of serving
// configurations for quick calibration (profiler.CalibratePair over
// each, keep the best) when the full Algorithm 1 search is too slow.
// The ladder spans the placements that matter: plain co-location,
// tight-SLA small batches, the S-D pipeline that rescues the big
// memory-bound models, and fusion variants on accelerated servers.
func ServingConfigCandidates(srv hw.Server) []sim.Config {
	cands := []sim.Config{DefaultServingConfig(srv)}
	cores := srv.CPU.PhysicalCores
	if srv.HasGPU() {
		base := cands[0]
		small := base
		small.Batch = 64
		one := base
		one.AccelThreads = 1
		return append(cands, small, one)
	}
	half := max(1, cores/2)
	return append(cands,
		sim.Config{Place: sim.PlaceCPUModel, Threads: cores, OpWorkers: 1, Batch: 64, UseNMP: srv.HasNMP()},
		sim.Config{Place: sim.PlaceCPUSD, Threads: half, OpWorkers: 1,
			SparseThreads: half, SparseWorkers: 1, Batch: 64, UseNMP: srv.HasNMP()},
	)
}
