package fleet

import (
	"fmt"
	"math"
	"sync"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/sim"
	"hercules/internal/stats"
	"hercules/internal/workload"
)

// serverByType is hw.ServerType without the panic: the fleet layer
// consumes allocations that may name types outside T1–T10 (tests build
// synthetic fleets), and an unknown type must surface as an error, not
// a crash.
func serverByType(label string) (srv hw.Server, err error) {
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("fleet: unknown server type %q", label)
		}
	}()
	return hw.ServerType(label), nil
}

// ServiceSource supplies per-query service times for the fleet engine:
// the time one server of the given type needs to serve one query of the
// given model with the server otherwise idle. Implementations must be
// safe for concurrent use (the parallel replay path calls from many
// shard workers).
type ServiceSource interface {
	ServiceS(serverType, modelName string, size int, scale float64) float64
}

// SimService derives service times from the existing per-server
// simulator (internal/sim): each (server type, model) pair is served
// under the task-scheduling configuration recorded in the profiler
// efficiency table, and a query's service time is the latency the
// simulator reports for that single query on an idle server. Results
// are memoized on quantized (size, scale) buckets, so a full day of
// millions of queries costs only a few hundred cost-model evaluations
// per pair.
type SimService struct {
	table *profiler.Table

	mu    sync.Mutex
	pairs map[pairKey]*pairSim
}

type pairKey struct {
	server string
	model  string
}

// pairSim is the per-(server type, model) simulator with its memo.
type pairSim struct {
	srv *sim.Server
	cfg sim.Config

	mu   sync.Mutex
	memo map[int64]float64
}

// NewSimService builds a service source over the given efficiency
// table. The table's entries must carry the task-scheduling Config the
// profiler found (entries hand-built without a Config fall back to a
// conservative default serving configuration).
func NewSimService(table *profiler.Table) *SimService {
	return &SimService{table: table, pairs: make(map[pairKey]*pairSim)}
}

// pair returns (building lazily) the simulator for one pair.
func (s *SimService) pair(serverType, modelName string) (*pairSim, error) {
	k := pairKey{serverType, modelName}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ps, ok := s.pairs[k]; ok {
		return ps, nil
	}
	m, err := model.ByName(modelName, model.Prod)
	if err != nil {
		return nil, err
	}
	srv, err := serverByType(serverType)
	if err != nil {
		return nil, err
	}
	cfg := DefaultServingConfig(srv)
	if e, ok := s.table.Get(serverType, modelName); ok && e.QPS > 0 {
		if e.Cfg.Validate(srv) == nil {
			cfg = e.Cfg
		}
	}
	ps := &pairSim{srv: sim.New(srv, m), cfg: cfg, memo: make(map[int64]float64)}
	s.pairs[k] = ps
	return ps, nil
}

// ServiceS implements ServiceSource.
func (s *SimService) ServiceS(serverType, modelName string, size int, scale float64) float64 {
	ps, err := s.pair(serverType, modelName)
	if err != nil {
		// Unknown pair: infinite service so the caller drops the query
		// rather than inventing a latency.
		return math.Inf(1)
	}
	return ps.serviceS(size, scale)
}

// Geometric size-bucket ladder: ~12%-wide bins keep the memo small
// (≈45 bins over [10, 1000]) while staying within the cost model's
// accuracy.
const sizeLadder = 1.12

func sizeBucket(size int) int {
	if size <= 1 {
		return 1
	}
	b := math.Round(math.Log(float64(size)) / math.Log(sizeLadder))
	rep := int(math.Round(math.Pow(sizeLadder, b)))
	return max(rep, 1)
}

// scaleBucket quantizes sparse scales to eighths, like internal/sim's
// cost memo.
func scaleBucket(scale float64) int {
	return stats.ClampInt(int(math.Round(scale*8)), 1, 32)
}

func (p *pairSim) serviceS(size int, scale float64) float64 {
	repSize := sizeBucket(size)
	sb := scaleBucket(scale)
	key := int64(repSize)<<8 | int64(sb)
	p.mu.Lock()
	if v, ok := p.memo[key]; ok {
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()

	q := workload.Query{ID: 1, ArrivalS: 0, Size: repSize, SparseScale: float64(sb) / 8}
	res, err := p.srv.Simulate(p.cfg, []workload.Query{q}, 1)
	v := math.Inf(1)
	if err == nil && res.MeanMS > 0 {
		v = res.MeanMS / 1e3
	}
	p.mu.Lock()
	p.memo[key] = v
	p.mu.Unlock()
	return v
}

// meanServiceS estimates the expected per-query service time of a pair
// under the default query-size distribution by averaging the source
// over a fixed deterministic sample. The engine uses it to calibrate
// per-instance concurrency against the profiled capacity.
func meanServiceS(src ServiceSource, serverType, modelName string, seed int64) float64 {
	const draws = 128
	r := stats.NewRand(seed)
	d := workload.DefaultQuerySizes()
	var sum float64
	n := 0
	for i := 0; i < draws; i++ {
		size := d.Draw(r)
		scale := stats.Lognormal(r, -0.045, 0.3) // mean-1 pooling multiplier
		v := src.ServiceS(serverType, modelName, size, scale)
		if math.IsInf(v, 0) || v <= 0 {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// DefaultServingConfig returns a conservative task-scheduling
// configuration for serving on the given server when no profiled
// configuration is available: half the cores as two-worker inference
// threads on CPUs, and an S-D split with query fusion on accelerated
// servers. NMP DIMMs are used whenever present.
func DefaultServingConfig(srv hw.Server) sim.Config {
	if srv.HasGPU() {
		threads := min(8, max(1, srv.CPU.PhysicalCores/2))
		return sim.Config{
			Place:         sim.PlaceAccelSD,
			SparseThreads: threads,
			SparseWorkers: 2,
			Batch:         256,
			AccelThreads:  2,
			FusionLimit:   2000,
			UseNMP:        srv.HasNMP(),
		}
	}
	threads := max(1, srv.CPU.PhysicalCores/2)
	return sim.Config{
		Place:     sim.PlaceCPUModel,
		Threads:   threads,
		OpWorkers: 2,
		Batch:     256,
		UseNMP:    srv.HasNMP(),
	}
}

// ServingConfigCandidates returns a small ladder of serving
// configurations for quick calibration (profiler.CalibratePair over
// each, keep the best) when the full Algorithm 1 search is too slow.
// The ladder spans the placements that matter: plain co-location,
// tight-SLA small batches, the S-D pipeline that rescues the big
// memory-bound models, and fusion variants on accelerated servers.
func ServingConfigCandidates(srv hw.Server) []sim.Config {
	cands := []sim.Config{DefaultServingConfig(srv)}
	cores := srv.CPU.PhysicalCores
	if srv.HasGPU() {
		base := cands[0]
		small := base
		small.Batch = 64
		one := base
		one.AccelThreads = 1
		return append(cands, small, one)
	}
	half := max(1, cores/2)
	return append(cands,
		sim.Config{Place: sim.PlaceCPUModel, Threads: cores, OpWorkers: 1, Batch: 64, UseNMP: srv.HasNMP()},
		sim.Config{Place: sim.PlaceCPUSD, Threads: half, OpWorkers: 1,
			SparseThreads: half, SparseWorkers: 1, Batch: 64, UseNMP: srv.HasNMP()},
	)
}
