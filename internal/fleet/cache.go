package fleet

import (
	"math"

	"hercules/internal/scenario"
)

// CacheSpec configures the request cache tier in front of routing —
// the piece recommendation serving lives and dies on: a warm cache
// absorbs most of the offered load, so the backends are provisioned
// net of the hit rate, and a cache incident (flush, mix rotation,
// cold start) turns into a miss storm against a fleet sized for the
// warm state. The zero value disables the tier and replays
// bit-identically to the cache-less engine.
//
// The model: each workload tracks a warmth state in [0, 1]. The
// interval's hit rate is HitRate × warmth^Curve — an asymptotic
// maximum scaled by how much of the working set the cache currently
// holds. Hits complete at LatencyMS and never reach a router; misses
// route exactly as without a cache, and every backend-served miss
// refills warmth (1 − e^(−misses/FillQueries) of the remaining gap per
// interval). Scenario events move the state: a Flush event invalidates
// warmth directly, and a MixShift rotates the key population so only
// MixRetention of the warmth survives.
type CacheSpec struct {
	// HitRate is the asymptotic (fully warm) hit rate in [0, 1);
	// 0 disables the cache tier entirely.
	HitRate float64 `json:"hit_rate,omitempty"`
	// LatencyMS is the hit-path latency (default 0.3 ms — an in-memory
	// cache lookup, far below any model's serving SLA).
	LatencyMS float64 `json:"latency_ms,omitempty"`
	// FillQueries is the warm-up constant: the number of backend-served
	// misses (extrapolated to the full interval) that closes 63% of the
	// remaining warmth gap (default 2000).
	FillQueries float64 `json:"fill_queries,omitempty"`
	// Curve is the exponent mapping warmth to hit rate (default 1:
	// linear; > 1 models caches that need most of the working set
	// resident before hits materialize).
	Curve float64 `json:"curve,omitempty"`
	// MixRetention is the warmth fraction surviving a query-mix shift
	// (scenario MixShift: the key population rotates under the cache;
	// default 0.3).
	MixRetention float64 `json:"mix_retention,omitempty"`
	// ColdStart starts the day with empty caches (warmth 0) instead of
	// the fully warm steady state — the cold-start-storm experiment.
	ColdStart bool `json:"cold_start,omitempty"`
	// PerModel overrides the asymptotic hit rate per workload.
	PerModel map[string]float64 `json:"per_model,omitempty"`
}

// Enabled reports whether the spec turns the cache tier on.
func (c CacheSpec) Enabled() bool {
	if c.HitRate > 0 {
		return true
	}
	for _, r := range c.PerModel {
		if r > 0 {
			return true
		}
	}
	return false
}

// maxRate returns the model's asymptotic hit rate, clamped to [0, 0.99]
// (a cache that hits 100% would starve the backends of the miss stream
// that keeps it warm — and divide provisioning by zero).
func (c CacheSpec) maxRate(model string) float64 {
	r := c.HitRate
	if pr, ok := c.PerModel[model]; ok {
		r = pr
	}
	return math.Min(math.Max(r, 0), 0.99)
}

// rateFor maps a model's tracked warmth to this interval's hit rate.
func (c CacheSpec) rateFor(model string, warmth float64) float64 {
	curve := c.Curve
	if curve <= 0 {
		curve = 1
	}
	w := math.Min(math.Max(warmth, 0), 1)
	return c.maxRate(model) * math.Pow(w, curve)
}

// latencyS returns the hit-path latency in seconds.
func (c CacheSpec) latencyS() float64 {
	if c.LatencyMS <= 0 {
		return 0.3e-3
	}
	return c.LatencyMS / 1e3
}

// fillQueries returns the warm-up constant.
func (c CacheSpec) fillQueries() float64 {
	if c.FillQueries <= 0 {
		return 2000
	}
	return c.FillQueries
}

// mixRetention returns the warmth fraction surviving a mix shift.
func (c CacheSpec) mixRetention() float64 {
	if c.MixRetention <= 0 {
		return 0.3
	}
	return math.Min(c.MixRetention, 1)
}

// initialWarmth is the day-start warmth state.
func (c CacheSpec) initialWarmth() float64 {
	if c.ColdStart {
		return 0
	}
	return 1
}

// cacheInit seeds the per-model cache state for one RunDay: warmth at
// the configured day-start value, the provisioner's lagged hit-rate
// estimate at the steady-state expectation (the capacity plan an SRE
// would write down), and the mix-shift detector at the unshifted size
// scale.
func (e *Engine) cacheInit(names []string) {
	e.cacheWarmth = make(map[string]float64, len(names))
	e.cachePrevSize = make(map[string]float64, len(names))
	e.cacheHitPrev = make(map[string]float64, len(names))
	for _, m := range names {
		w := e.Cache.initialWarmth()
		e.cacheWarmth[m] = w
		e.cachePrevSize[m] = 1
		e.cacheHitPrev[m] = e.Cache.rateFor(m, w)
	}
}

// cacheAdvance applies the interval's scenario effects to one model's
// warmth (flush events invalidate warmth directly; a query-mix change
// rotates the key population, keeping only MixRetention of it) and
// returns the hit rate the interval replays at. Called exactly once
// per (interval, model), on the replay goroutine.
func (e *Engine) cacheAdvance(m string, eff scenario.Effects) float64 {
	w := e.cacheWarmth[m]
	if f := eff.Flush(m); f > 0 {
		w *= 1 - f
	}
	if sz := eff.Size(m); sz != e.cachePrevSize[m] {
		w *= e.Cache.mixRetention()
		e.cachePrevSize[m] = sz
	}
	e.cacheWarmth[m] = w
	return e.Cache.rateFor(m, w)
}

// cacheFill refills one model's warmth from the interval's
// backend-served misses, extrapolated from the replayed slice to the
// full interval, and records the realized hit rate as the lagged
// signal the next re-provision sizes against.
func (e *Engine) cacheFill(m string, servedMisses, hits, queries int, extrapolate float64) {
	if eff := float64(servedMisses) * math.Max(extrapolate, 1); eff > 0 {
		w := e.cacheWarmth[m]
		e.cacheWarmth[m] = w + (1-w)*(1-math.Exp(-eff/e.Cache.fillQueries()))
	}
	rate := 0.0
	if queries > 0 {
		rate = float64(hits) / float64(queries)
	}
	e.cacheHitPrev[m] = rate
}

// cacheMissLoads returns the loads the control plane provisions for: the
// offered loads net of each model's lagged measured hit rate. The lag is
// the point — a flush mid-window sends the full offered load against a
// fleet sized for the warm-cache miss rate until the next re-provision
// learns the new hit rate.
func (e *Engine) cacheMissLoads(loads map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(loads))
	for m, l := range loads {
		out[m] = l * (1 - e.cacheHitPrev[m])
	}
	return out
}

// splitmix64 is the avalanche mixer behind the cache-hit hash (the
// same construction the telemetry tracer samples with, on an
// independent stream).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// cacheStreamSeed derives the per-(interval, model) hit-decision
// stream. Membership is a pure function of (seed, interval, model,
// query ID) — like trace sampling, no shard layout or scheduling order
// can change which queries hit.
func cacheStreamSeed(seed int64, interval int, modelHash int64) uint64 {
	return splitmix64(splitmix64(uint64(seed)^0xCAC4EDA7^uint64(interval)) ^ uint64(modelHash))
}

// cacheHit decides one query's fate at the cache tier: a deterministic
// Bernoulli draw at the interval's hit rate, hashed from the query's
// identity.
func cacheHit(stream uint64, queryID int64, hitRate float64) bool {
	return float64(splitmix64(stream^uint64(queryID))>>11)/(1<<53) < hitRate
}
