package fleet

import (
	"math"
	"strings"
	"testing"
)

// threeRegions is the spill-policy unit fixture: a hot source, a near
// small survivor and a far large one.
func threeRegions(hotBlackout bool) GeoSignal {
	return GeoSignal{
		Regions: []RegionSignal{
			{Name: "hot", OfferedQPS: 1000, CapacityQPS: 800, Blackout: hotBlackout},
			{Name: "near", OfferedQPS: 100, CapacityQPS: 400},
			{Name: "far", OfferedQPS: 100, CapacityQPS: 4000},
		},
		RTTS: [][]float64{
			{0, 0.010, 0.080},
			{0.010, 0, 0.080},
			{0.080, 0.080, 0},
		},
	}
}

func TestGeoRegistry(t *testing.T) {
	// Both built-ins resolve and report their registered names — the
	// shared semantics every registry in the package guarantees.
	for _, name := range []string{GeoLocal, GeoSpill} {
		g, err := NewGeoPolicy(name)
		if err != nil {
			t.Fatalf("built-in geo policy %q not registered: %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("geo policy %q reports name %q", name, g.Name())
		}
	}
	names := GeoPolicyNames()
	if len(names) < 2 {
		t.Errorf("GeoPolicyNames() = %v, want at least local and spill", names)
	}
	if _, err := NewGeoPolicy("no-such-geo"); err == nil ||
		!strings.Contains(err.Error(), GeoLocal) || !strings.Contains(err.Error(), GeoSpill) {
		t.Errorf("unknown geo policy error must list registrations, got %v", err)
	}
	t.Run("duplicate panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("duplicate geo registration must panic")
			}
		}()
		RegisterGeoPolicy("geo-test-dup", func() GeoPolicy { return localGeo{} })
		RegisterGeoPolicy("geo-test-dup", func() GeoPolicy { return localGeo{} })
	})
}

func TestGeoLocalRoutesNothing(t *testing.T) {
	out := localGeo{}.Route(threeRegions(false))
	for src, row := range out {
		for dst, f := range row {
			if f != 0 {
				t.Errorf("local policy routed %g from %d to %d", f, src, dst)
			}
		}
	}
}

// TestGeoSpillOverflow: an overloaded (not blacked-out) region spills
// only its excess over the trigger, to the nearest survivor with
// headroom first.
func TestGeoSpillOverflow(t *testing.T) {
	out := spillGeo{}.Route(threeRegions(false))
	// hot: offered 1000, trigger 0.9*800 = 720 → excess 280.
	// near headroom: 0.85*400-100 = 240 → takes 240 (nearest).
	// far takes the remaining 40.
	if got, want := out[0][1]*1000, 240.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("near received %g QPS, want %g", got, want)
	}
	if got, want := out[0][2]*1000, 40.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("far received %g QPS, want %g", got, want)
	}
	// The comfortable regions spill nothing.
	for src := 1; src < 3; src++ {
		for dst := range out[src] {
			if out[src][dst] != 0 {
				t.Errorf("region %d spilled despite headroom", src)
			}
		}
	}
}

// TestGeoSpillBlackout: a blacked-out region evacuates everything and
// accepts nothing.
func TestGeoSpillBlackout(t *testing.T) {
	out := spillGeo{}.Route(threeRegions(true))
	total := out[0][1] + out[0][2]
	if math.Abs(total-1.0) > 1e-9 {
		t.Errorf("blacked-out region kept %g of its load, want full evacuation", 1-total)
	}
	// near takes its headroom (0.85*400-100 = 240 QPS = 0.24), far the rest.
	if math.Abs(out[0][1]-0.24) > 1e-9 {
		t.Errorf("near fraction %g, want 0.24 (headroom-capped, nearest-first)", out[0][1])
	}
	// Nothing routes to the dead region, even from an overloaded peer.
	sig := threeRegions(true)
	sig.Regions[1].OfferedQPS = 500 // near now over its own 360 trigger
	out = spillGeo{}.Route(sig)
	if out[1][0] != 0 {
		t.Error("spill routed load into a blacked-out region")
	}
	if out[1][2] == 0 {
		t.Error("overloaded survivor found no live destination")
	}
}

// TestRemoteStreamSeedIndependence: the remote-origin membership
// stream must differ from the cache stream and across intervals and
// models, so the two Bernoulli draws cannot correlate.
func TestRemoteStreamSeedIndependence(t *testing.T) {
	mh := hashString("DLRM-RMC1")
	if remoteStreamSeed(1, 3, mh) == cacheStreamSeed(1, 3, mh) {
		t.Error("remote and cache streams collide for the same (seed, interval, model)")
	}
	if remoteStreamSeed(1, 3, mh) == remoteStreamSeed(1, 4, mh) {
		t.Error("remote stream does not vary with the interval")
	}
	if remoteStreamSeed(1, 3, mh) == remoteStreamSeed(2, 3, mh) {
		t.Error("remote stream does not vary with the seed")
	}
}
