package fleet

import (
	"math"

	"hercules/internal/grid"
)

// GridObserver is an optional Scaler extension: when a grid timeline
// is configured, the engine feeds the next interval's carbon intensity
// (the day-ahead forecast — Timeline.At wraps at the day boundary) and
// the day's mean once per interval, just before IntervalEnd. Carbon-
// aware policies implement it; latency-driven policies ignore it.
type GridObserver interface {
	ObserveGrid(nextGPerKWh, dayMeanGPerKWh float64)
}

func init() {
	RegisterScaler("carbon", func() Scaler { return NewCarbonScaler() })
	RegisterAdmission("carbon", func() Admission { return NewCarbonAdmission() })
}

// CarbonScaler is the carbon-aware headroom policy (registered as
// "carbon"): it shapes the over-provision rate to the grid, holding
// extra headroom through low-carbon hours (capacity is cheap in gCO2
// then, and the slack absorbs the deferred work a carbon admission
// policy pushes there) and running lean through high-carbon hours so
// the fleet sheds idle watts exactly when each watt is dirtiest. The
// two regimes are judged against the day's mean intensity, with a dead
// band between them where the base headroom applies untouched.
//
// Latency remains the backstop: a breach streak (same Patience idea as
// the breach scaler) forces an early re-provision at full BoostR no
// matter how dirty the hour — the policy trades carbon for slack, not
// for SLA violations. Without a grid timeline the scaler never
// observes an intensity and degrades to that breach backstop alone.
type CarbonScaler struct {
	// CleanFrac is the fraction of the day's mean intensity at or
	// below which an hour counts as clean (default 0.85): clean hours
	// run with BoostR extra headroom.
	CleanFrac float64
	// DirtyFrac is the fraction of the mean at or above which an hour
	// counts as dirty (default 1.10): dirty hours run with LeanR less
	// headroom (clamped at zero total by the engine).
	DirtyFrac float64
	// BoostR is the extra over-provision headroom in clean hours
	// (default 0.25, matching the breach scaler's boost).
	BoostR float64
	// LeanR is the headroom given back in dirty hours (default 0.10).
	LeanR float64
	// Patience is the consecutive-breach streak that triggers the
	// latency backstop (default 2).
	Patience int
	// HoldIntervals is how long a backstop boost stays in force
	// (default 4, counting the triggered re-provision).
	HoldIntervals int

	nextG   float64
	meanG   float64
	applied float64
	streak  int
	pending bool
	holding int
	events  int
}

// NewCarbonScaler returns a carbon-aware scaler with the default
// tuning.
func NewCarbonScaler() *CarbonScaler {
	return &CarbonScaler{
		CleanFrac: 0.85, DirtyFrac: 1.10,
		BoostR: 0.25, LeanR: 0.10,
		Patience: 2, HoldIntervals: 4,
	}
}

// Name implements Scaler.
func (c *CarbonScaler) Name() string { return "carbon" }

// Thresholds implements Scaler: default breach verdicts (the backstop
// and the SLA-violation accounting share them).
func (c *CarbonScaler) Thresholds() (tailPct, slaFactor float64) { return 95, 1.0 }

// TriggerCount implements Scaler.
func (c *CarbonScaler) TriggerCount() int { return c.events }

// ObserveGrid implements GridObserver.
func (c *CarbonScaler) ObserveGrid(nextGPerKWh, dayMeanGPerKWh float64) {
	c.nextG, c.meanG = nextGPerKWh, dayMeanGPerKWh
}

// ObserveWindow implements Scaler: the latency backstop's breach
// streak.
func (c *CarbonScaler) ObserveWindow(breached bool) {
	if !breached {
		c.streak = 0
		return
	}
	c.streak++
	if c.streak >= max(c.Patience, 1) && !c.pending {
		c.pending = true
		c.events++
	}
}

// IntervalEnd implements Scaler: pick the next interval's headroom
// from its forecast intensity regime, unless the latency backstop is
// in force.
func (c *CarbonScaler) IntervalEnd() (early bool, extraR float64) {
	if c.pending {
		c.pending = false
		c.streak = 0
		c.holding = max(c.HoldIntervals-1, 0)
		c.applied = c.BoostR
		return true, c.BoostR
	}
	if c.holding > 0 {
		c.holding--
		return false, c.applied
	}
	want := 0.0
	if c.meanG > 0 {
		switch rel := c.nextG / c.meanG; {
		case rel <= c.CleanFrac:
			want = c.BoostR
		case rel >= c.DirtyFrac:
			want = -c.LeanR
		}
	}
	if want == c.applied {
		return false, c.applied
	}
	c.applied = want
	c.events++
	return true, want
}

// CarbonAdmission is the carbon-aware deferral policy (registered as
// "carbon"): in hours dirtier than the day's mean it defers a ramp of
// the *deferrable* query class — embedding-refresh and precompute
// style work that tolerates hours of delay — never exceeding the
// stream's deferrable share, so the realtime class is never touched.
// The deferred work's later replay is not modeled; what the metric
// sees is the deferrable load vanishing from the dirtiest hours, which
// is precisely the carbon-aware scheduling lever of the HPCA line of
// work. On top of the deferral ramp it keeps DeadlineAdmission's
// overload term (scaled to the deferrable class) so a melting fleet
// still sheds. Without a grid the signal's intensities are zero and
// the policy admits everything but that overload term.
type CarbonAdmission struct {
	// RampFrac is the relative overshoot of the day's mean intensity
	// at which the entire deferrable class is deferred (default 0.30:
	// at mean×1.30 every deferrable query waits for a cleaner hour;
	// halfway up the ramp, half do).
	RampFrac float64
	// Gain converts relative p99 overshoot into extra shedding inside
	// the deferrable class (default 0.5, as DeadlineAdmission).
	Gain float64
}

// NewCarbonAdmission returns a carbon-aware deferral policy with the
// default tuning.
func NewCarbonAdmission() *CarbonAdmission {
	return &CarbonAdmission{RampFrac: 0.30, Gain: 0.5}
}

// Name implements Admission.
func (c *CarbonAdmission) Name() string { return "carbon" }

// ShedFrac implements Admission.
func (c *CarbonAdmission) ShedFrac(sig AdmissionSignal) float64 {
	defFrac := sig.DeferrableFrac
	if defFrac <= 0 {
		defFrac = grid.DefaultDeferrableFrac
	}
	var frac float64
	if sig.GridMeanGPerKWh > 0 && sig.GridGPerKWh > sig.GridMeanGPerKWh {
		over := sig.GridGPerKWh/sig.GridMeanGPerKWh - 1
		ramp := c.RampFrac
		if ramp <= 0 {
			ramp = 0.30
		}
		frac = defFrac * math.Min(over/ramp, 1)
	}
	if sig.SLATargetMS > 0 && sig.PrevP99MS > sig.SLATargetMS {
		over := (sig.PrevP99MS - sig.SLATargetMS) / sig.SLATargetMS
		frac += defFrac * math.Min(c.Gain*over, 1)
	}
	return math.Min(frac, defFrac)
}
