package fleet

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"hercules/internal/cluster"
	"hercules/internal/grid"
)

func TestCarbonScalerRegimes(t *testing.T) {
	c := NewCarbonScaler()
	mean := 300.0

	// Clean hour: boost headroom (a regime change is an early trigger).
	c.ObserveGrid(mean*0.5, mean)
	early, extra := c.IntervalEnd()
	if !early || extra != c.BoostR {
		t.Errorf("clean hour: early=%v extra=%g, want true/%g", early, extra, c.BoostR)
	}
	// Same regime next interval: no new trigger.
	c.ObserveGrid(mean*0.6, mean)
	if early, extra = c.IntervalEnd(); early || extra != c.BoostR {
		t.Errorf("steady clean hour: early=%v extra=%g, want false/%g", early, extra, c.BoostR)
	}
	// Dirty hour: lean (negative headroom, clamped by the engine).
	c.ObserveGrid(mean*1.5, mean)
	if early, extra = c.IntervalEnd(); !early || extra != -c.LeanR {
		t.Errorf("dirty hour: early=%v extra=%g, want true/%g", early, extra, -c.LeanR)
	}
	// Dead band: base headroom.
	c.ObserveGrid(mean, mean)
	if early, extra = c.IntervalEnd(); !early || extra != 0 {
		t.Errorf("dead band: early=%v extra=%g, want true/0", early, extra)
	}
}

func TestCarbonScalerBreachBackstop(t *testing.T) {
	c := NewCarbonScaler()
	mean := 300.0
	// Dirtiest possible hour, but the fleet is breaching: latency wins.
	c.ObserveGrid(mean*2, mean)
	for i := 0; i < c.Patience; i++ {
		c.ObserveWindow(true)
	}
	early, extra := c.IntervalEnd()
	if !early || extra != c.BoostR {
		t.Fatalf("backstop: early=%v extra=%g, want true/%g", early, extra, c.BoostR)
	}
	// The boost holds for HoldIntervals total despite the dirty grid.
	held := 1
	for i := 0; i < c.HoldIntervals+2; i++ {
		c.ObserveGrid(mean*2, mean)
		if _, extra := c.IntervalEnd(); extra == c.BoostR {
			held++
		}
	}
	if held != c.HoldIntervals {
		t.Errorf("boost held %d intervals, want %d", held, c.HoldIntervals)
	}
	if c.TriggerCount() == 0 {
		t.Error("backstop trigger not counted")
	}
}

func TestCarbonAdmissionDeferralRamp(t *testing.T) {
	a := NewCarbonAdmission()
	base := AdmissionSignal{Model: "m", SLATargetMS: 20, GridMeanGPerKWh: 300, DeferrableFrac: 0.25}

	sig := base
	sig.GridGPerKWh = 300 // at the mean: nothing deferred
	if got := a.ShedFrac(sig); got != 0 {
		t.Errorf("at mean: shed %g, want 0", got)
	}
	sig.GridGPerKWh = 300 * 1.15 // halfway up the 0.30 ramp
	if got, want := a.ShedFrac(sig), 0.25*0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("half ramp: shed %g, want %g", got, want)
	}
	sig.GridGPerKWh = 300 * 2 // far past the ramp: the whole class, no more
	if got := a.ShedFrac(sig); got != 0.25 {
		t.Errorf("deep overshoot: shed %g, want the deferrable cap 0.25", got)
	}
	// Overload on top of a dirty hour still may not touch realtime.
	sig.PrevP99MS = 200
	if got := a.ShedFrac(sig); got != 0.25 {
		t.Errorf("overload + dirty: shed %g, want capped at 0.25", got)
	}
	// No grid configured: only the overload term, scaled to the class.
	overload := AdmissionSignal{Model: "m", SLATargetMS: 20, PrevP99MS: 30, DeferrableFrac: 0.25}
	got := a.ShedFrac(overload)
	if got <= 0 || got > 0.25 {
		t.Errorf("gridless overload: shed %g, want in (0, 0.25]", got)
	}
	// Zero DeferrableFrac falls back to the package default.
	fallback := AdmissionSignal{Model: "m", GridGPerKWh: 900, GridMeanGPerKWh: 300}
	if got := a.ShedFrac(fallback); got != grid.DefaultDeferrableFrac {
		t.Errorf("default class share: shed %g, want %g", got, grid.DefaultDeferrableFrac)
	}
}

// TestMergeDaysCarbonAlgebra pins the carbon half of the merge
// algebra: total grams sum, gCO2/query is recomputed query-weighted
// from the merged totals, and folding orders agree.
func TestMergeDaysCarbonAlgebra(t *testing.T) {
	a := DayResult{Router: "p2c", Policy: "greedy", Scenario: "s",
		TotalQueries: 1000, TotalDrops: 100, EnergyKJ: 50, TotalCarbonG: 900, CarbonPerQueryG: 1}
	b := DayResult{Router: "p2c", Policy: "greedy", Scenario: "s",
		TotalQueries: 3000, TotalDrops: 0, EnergyKJ: 150, TotalCarbonG: 300, CarbonPerQueryG: 0.1}
	c := DayResult{Router: "p2c", Policy: "greedy", Scenario: "s",
		TotalQueries: 600, TotalDrops: 0, EnergyKJ: 30, TotalCarbonG: 0}

	flat := MergeDays(a, b, c)
	if flat.TotalCarbonG != 1200 {
		t.Errorf("TotalCarbonG = %g, want the sum 1200", flat.TotalCarbonG)
	}
	served := float64(1000 - 100 + 3000 + 600)
	if want := 1200 / served; math.Abs(flat.CarbonPerQueryG-want) > 1e-12 {
		t.Errorf("CarbonPerQueryG = %g, want the served-weighted %g", flat.CarbonPerQueryG, want)
	}
	for name, fold := range map[string]DayResult{
		"left":  MergeDays(MergeDays(a, b), c),
		"right": MergeDays(a, MergeDays(b, c)),
	} {
		if math.Abs(fold.TotalCarbonG-flat.TotalCarbonG) > 1e-9 {
			t.Errorf("%s fold TotalCarbonG = %g, want %g", name, fold.TotalCarbonG, flat.TotalCarbonG)
		}
		if math.Abs(fold.CarbonPerQueryG-flat.CarbonPerQueryG) > 1e-12 {
			t.Errorf("%s fold CarbonPerQueryG = %g, want %g", name, fold.CarbonPerQueryG, flat.CarbonPerQueryG)
		}
	}
	// All-dropped merge must not divide by zero.
	dead := MergeDays(DayResult{TotalQueries: 10, TotalDrops: 10, TotalCarbonG: 5})
	if dead.CarbonPerQueryG != 0 {
		t.Errorf("zero served: CarbonPerQueryG = %g, want 0", dead.CarbonPerQueryG)
	}
}

// stripCarbon zeroes every grid-derived field so a grid-priced replay
// can be compared against its grid-less twin.
func stripCarbon(res DayResult) DayResult {
	res.TotalCarbonG, res.CarbonPerQueryG = 0, 0
	for i := range res.Steps {
		res.Steps[i].GridGPerKWh, res.Steps[i].CarbonG = 0, 0
	}
	return res
}

// TestGridIsPureObservation: with a latency-only scaler and no
// carbon admission, attaching a grid timeline must change nothing but
// the carbon accounting — pricing is observation, never control.
func TestGridIsPureObservation(t *testing.T) {
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(800, 1200, 1600, 2000, 1600, 1200, 800, 600),
	}}
	run := func(g grid.Spec) DayResult {
		t.Helper()
		e, err := NewEngine(Spec{Router: PowerOfTwo, Policy: "greedy", Models: []string{"DLRM-RMC1"},
			HeadroomR: 0.05, Grid: g, Options: testOpts()},
			WithFleet(testFleet()), WithTable(testTable()),
			WithService(svcFunc(func(st, m string, size int, scale float64) float64 { return 0.005 })))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunDay(ws)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(grid.Spec{})
	priced := run(grid.Spec{Curve: "duck"})
	if priced.TotalCarbonG <= 0 || priced.CarbonPerQueryG <= 0 {
		t.Fatalf("grid run priced nothing: %g g total", priced.TotalCarbonG)
	}
	var intervalG float64
	for _, s := range priced.Steps {
		if s.GridGPerKWh <= 0 {
			t.Errorf("interval %d: no grid intensity", s.Index)
		}
		intervalG += s.CarbonG
	}
	if math.Abs(intervalG-priced.TotalCarbonG) > 1e-9 {
		t.Errorf("interval carbon sums to %g, day total %g", intervalG, priced.TotalCarbonG)
	}
	if plain.TotalCarbonG != 0 || plain.CarbonPerQueryG != 0 {
		t.Errorf("grid-less run priced carbon: %g g", plain.TotalCarbonG)
	}
	if !reflect.DeepEqual(stripCarbon(priced), plain) {
		t.Error("grid pricing changed the replay beyond the carbon fields")
	}
}

// TestZeroGridOmitsCarbonJSON pins the byte-identity guarantee for
// serialized results: a run with no grid must emit exactly the
// pre-grid JSON — no carbon, intensity or powercap keys anywhere.
func TestZeroGridOmitsCarbonJSON(t *testing.T) {
	e := testEngine(PowerOfTwo, testOpts())
	res, err := e.RunDay(goldenWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"carbon", "grid", "power_capped"} {
		if strings.Contains(string(data), key) {
			t.Errorf("zero-grid DayResult JSON leaks %q keys", key)
		}
	}
}

// gridRecorder is a Scaler + GridObserver stub recording what the
// engine feeds it.
type gridRecorder struct {
	nextG []float64
	meanG float64
}

func (g *gridRecorder) Name() string                   { return "rec" }
func (g *gridRecorder) Thresholds() (float64, float64) { return 95, 1.0 }
func (g *gridRecorder) ObserveWindow(bool)             {}
func (g *gridRecorder) IntervalEnd() (bool, float64)   { return false, 0 }
func (g *gridRecorder) TriggerCount() int              { return 0 }
func (g *gridRecorder) ObserveGrid(next, mean float64) {
	g.nextG = append(g.nextG, next)
	g.meanG = mean
}

// TestGridObserverFeed: a scaler implementing GridObserver receives
// the next interval's forecast intensity (wrapping at the day
// boundary) and the day mean, once per interval.
func TestGridObserverFeed(t *testing.T) {
	ws := []cluster.Workload{{Model: "DLRM-RMC1", Trace: stepTrace(800, 1200, 1600, 2000)}}
	rec := &gridRecorder{}
	e, err := NewEngine(Spec{Router: PowerOfTwo, Policy: "greedy", Models: []string{"DLRM-RMC1"},
		HeadroomR: 0.05, Grid: grid.Spec{Curve: "duck"}, Options: testOpts()},
		WithFleet(testFleet()), WithTable(testTable()), WithScaler(rec),
		WithService(svcFunc(func(st, m string, size int, scale float64) float64 { return 0.005 })))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunDay(ws); err != nil {
		t.Fatal(err)
	}
	if len(rec.nextG) != 4 {
		t.Fatalf("ObserveGrid called %d times, want one per interval (4)", len(rec.nextG))
	}
	if rec.meanG <= 0 {
		t.Error("day mean intensity not fed")
	}
	tl, err := (grid.Spec{Curve: "duck"}).Compile("local", 4, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range rec.nextG {
		if want := tl.At(i + 1); math.Abs(got-want) > 1e-9 {
			t.Errorf("interval %d: forecast %g, want next interval's %g", i, got, want)
		}
	}
}

// TestPowerCapThrottlesAndCapsEnergy: a powercap window must mark its
// intervals, hold the type's measured power under the budget, and
// surface only as degraded service the control plane reacts to
// through its ordinary latency signals.
func TestPowerCapThrottlesAndCapsEnergy(t *testing.T) {
	// 8 intervals of 600 s; cap T2 (60 servers, 175 W TDP each) to half
	// its aggregate TDP across intervals 2-5 (0.33h-0.83h).
	const budgetW = 5250.0
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(800, 1200, 1600, 2000, 1600, 1200, 800, 600),
	}}
	run := func(scen string) DayResult {
		t.Helper()
		e, err := NewEngine(Spec{Router: PowerOfTwo, Policy: "greedy", Models: []string{"DLRM-RMC1"},
			HeadroomR: 0.05, Scenario: scen, Options: testOpts()},
			WithFleet(testFleet()), WithTable(testTable()),
			WithService(svcFunc(func(st, m string, size int, scale float64) float64 { return 0.005 })))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunDay(ws)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	capped := run(`{"name":"cap","events":[{"kind":"powercap","type":"T2","watts":5250,"start_h":0.33,"end_h":0.84}]}`)
	base := run("")
	for _, s := range capped.Steps {
		inWindow := s.Index >= 2 && s.Index <= 4
		if inWindow != (s.PowerCappedTypes == 1) {
			t.Errorf("interval %d: PowerCappedTypes = %d (window=%v)", s.Index, s.PowerCappedTypes, inWindow)
		}
		if inWindow {
			if maxKJ := budgetW * 600 / 1e3; s.EnergyKJ > maxKJ+1e-9 {
				t.Errorf("interval %d: %g kJ exceeds the %g kJ budget", s.Index, s.EnergyKJ, maxKJ)
			}
		}
	}
	// The throttle shows up as latency, and the control plane may only
	// react through its normal signals — never see the cap directly.
	if capped.MeanP95MS < base.MeanP95MS {
		t.Errorf("capped day p95 %.2f ms below baseline %.2f ms — throttle had no effect",
			capped.MeanP95MS, base.MeanP95MS)
	}
	if capped.EnergyKJ >= base.EnergyKJ {
		t.Errorf("capped day used %g kJ, baseline %g — the cap must cut energy", capped.EnergyKJ, base.EnergyKJ)
	}
}
