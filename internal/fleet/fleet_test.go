package fleet

import (
	"math"
	"reflect"
	"testing"

	"hercules/internal/cluster"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/sim"
	"hercules/internal/stats"
	"hercules/internal/workload"
)

// svcFunc adapts a function to ServiceSource for stubbed tests.
type svcFunc func(serverType, modelName string, size int, scale float64) float64

func (f svcFunc) ServiceS(st, m string, size int, scale float64) float64 {
	return f(st, m, size, scale)
}

// constInstances builds n instances of one type with a constant service
// time and unit concurrency.
func constInstances(n int, serverType string, svcS, weight float64, queueCap int) []*Instance {
	out := make([]*Instance, n)
	for i := range out {
		out[i] = NewInstance(i, serverType, "DLRM-RMC1", weight, 1, queueCap,
			func(size int, scale float64) float64 { return svcS })
	}
	return out
}

func poissonQueries(rateQPS, horizonS float64, seed int64) []workload.Query {
	m := model.DLRMRMC1(model.Prod)
	return workload.NewGenerator(m, rateQPS, seed).Until(horizonS)
}

func p95ms(lats []float64) float64 {
	s := stats.NewSample(len(lats))
	for _, l := range lats {
		s.Add(l * 1e3)
	}
	return s.P95()
}

func TestRouterParseRoundTrip(t *testing.T) {
	for _, k := range AllRouters {
		got, err := ParseRouter(k)
		if err != nil || got != k {
			t.Errorf("ParseRouter(%q) = %v, %v", k, got, err)
		}
	}
	// Long aliases normalize to canonical registered names.
	if got, err := ParseRouter(" Round-Robin "); err != nil || got != RoundRobin {
		t.Errorf("ParseRouter(alias) = %q, %v", got, err)
	}
	if _, err := ParseRouter("nope"); err == nil {
		t.Error("ParseRouter must reject unknown names")
	}
}

func TestQueueOverflowDropsAndAccounting(t *testing.T) {
	// One channel, two waiting slots, 10 ms service: a burst of 10
	// simultaneous arrivals admits exactly 3.
	in := NewInstance(0, "T2", "DLRM-RMC1", 100, 1, 2,
		func(int, float64) float64 { return 0.010 })
	queries := make([]workload.Query, 10)
	for i := range queries {
		queries[i] = workload.Query{ID: int64(i), ArrivalS: 0, Size: 100, SparseScale: 1}
	}
	res := ReplaySlice(RoundRobin, []*Instance{in}, queries, 1)
	if res.Served != 3 || res.Dropped != 7 {
		t.Fatalf("served=%d dropped=%d, want 3/7", res.Served, res.Dropped)
	}
	if res.Served+res.Dropped != len(queries) {
		t.Fatalf("accounting leak: %d+%d != %d", res.Served, res.Dropped, len(queries))
	}
	if in.Served != 3 || in.Dropped != 7 {
		t.Fatalf("instance counters %d/%d disagree", in.Served, in.Dropped)
	}
	// FCFS latencies: 10, 20, 30 ms.
	want := []float64{0.010, 0.020, 0.030}
	for i, l := range res.LatS {
		if math.Abs(l-want[i]) > 1e-9 {
			t.Errorf("latency[%d] = %v, want %v", i, l, want[i])
		}
	}
}

func TestP2CBeatsRoundRobinOnImbalance(t *testing.T) {
	// Four fast servers (2 ms) and one 20x slower straggler. Round
	// robin blindly sends 20% of traffic to the straggler, which can
	// only absorb ~1.2% — its queue saturates and the fleet p95
	// explodes. State-aware policies route around it.
	build := func() []*Instance {
		insts := constInstances(4, "fast", 0.002, 500, 64)
		slow := NewInstance(4, "slow", "DLRM-RMC1", 25, 1, 64,
			func(int, float64) float64 { return 0.040 })
		return append(insts, slow)
	}
	queries := poissonQueries(1200, 5, 7)
	// A query violates when it is dropped or exceeds the 20 ms SLA;
	// judging served-only tails would reward round robin for hiding
	// the straggler's backlog behind queue drops.
	violFrac := func(res SliceResult) float64 {
		bad := res.Dropped
		for _, l := range res.LatS {
			if l > 0.020 {
				bad++
			}
		}
		return float64(bad) / float64(len(queries))
	}
	viol := make(map[string]float64, len(AllRouters))
	drops := make(map[string]int, len(AllRouters))
	for _, k := range AllRouters {
		res := ReplaySlice(k, build(), queries, 11)
		if res.Served == 0 {
			t.Fatalf("%v served nothing", k)
		}
		viol[k] = violFrac(res)
		drops[k] = res.Dropped
	}
	if drops[RoundRobin] == 0 {
		t.Error("round robin must overflow the straggler's queue")
	}
	for _, k := range []string{LeastOutstanding, PowerOfTwo, WeightedHetero} {
		if viol[k] >= viol[RoundRobin] {
			t.Errorf("%v violation rate %.3f must beat round-robin %.3f",
				k, viol[k], viol[RoundRobin])
		}
	}
	if viol[PowerOfTwo] > 0.5*viol[RoundRobin] {
		t.Errorf("p2c (%.3f) should roughly halve or better round-robin's violations (%.3f)",
			viol[PowerOfTwo], viol[RoundRobin])
	}
}

func TestReplayDeterministic(t *testing.T) {
	queries := poissonQueries(800, 3, 3)
	a := ReplaySlice(PowerOfTwo, constInstances(6, "T2", 0.004, 250, 32), queries, 5)
	b := ReplaySlice(PowerOfTwo, constInstances(6, "T2", 0.004, 250, 32), queries, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce the same replay")
	}
}

func TestAutoscalerWindowLogic(t *testing.T) {
	a := NewAutoscaler()
	a.Patience = 3
	a.ObserveWindow(true)
	a.ObserveWindow(true)
	a.ObserveWindow(false) // streak reset
	a.ObserveWindow(true)
	if early, _ := a.IntervalEnd(); early {
		t.Fatal("must not trigger below patience")
	}
	a.ObserveWindow(true)
	a.ObserveWindow(true)
	a.ObserveWindow(true)
	early, extra := a.IntervalEnd()
	if !early || extra != a.BoostR {
		t.Fatalf("trigger expected: early=%v extra=%v", early, extra)
	}
	if a.Events != 1 {
		t.Fatalf("events = %d", a.Events)
	}
	// The boost is in force for HoldIntervals intervals total: the
	// triggered re-provision plus HoldIntervals-1 quiet ones.
	for i := 0; i < a.HoldIntervals-1; i++ {
		if early, extra = a.IntervalEnd(); early || extra != a.BoostR {
			t.Fatalf("hold interval %d: early=%v extra=%v", i, early, extra)
		}
	}
	if _, extra = a.IntervalEnd(); extra != 0 {
		t.Fatalf("boost must decay, extra=%v", extra)
	}
}

// TestAutoscalerBoostWindowExact pins the documented boost window: a
// trigger puts BoostR in force for exactly HoldIntervals consecutive
// IntervalEnd returns (the triggering one included), never
// HoldIntervals+1.
func TestAutoscalerBoostWindowExact(t *testing.T) {
	for _, hold := range []int{1, 2, 4} {
		a := NewAutoscaler()
		a.HoldIntervals = hold
		for i := 0; i < a.Patience; i++ {
			a.ObserveWindow(true)
		}
		boosted := 0
		for i := 0; i < hold+3; i++ {
			if _, extra := a.IntervalEnd(); extra > 0 {
				boosted++
			}
		}
		if boosted != hold {
			t.Errorf("HoldIntervals=%d: boost in force for %d intervals", hold, boosted)
		}
	}
}

// testTable builds a one-pair synthetic efficiency table: T2 serves
// RMC1 at 200 QPS for 300 W provisioned.
func testTable() *profiler.Table {
	tb := &profiler.Table{}
	tb.Set(profiler.Entry{
		Model: "DLRM-RMC1", Server: "T2",
		QPS: 200, PowerW: 300, QPSPerWatt: 200.0 / 300,
	})
	return tb
}

func testFleet() hw.Fleet {
	return hw.Fleet{Types: []hw.Server{hw.ServerType("T2")}, Counts: []int{60}}
}

// stepTrace is a hand-built trace with the given loads at 10-minute
// intervals.
func stepTrace(loads ...float64) workload.DiurnalTrace {
	return workload.DiurnalTrace{Service: "test", StepS: 600, LoadsQPS: loads}
}

func testEngine(router string, opts Options) *Engine {
	// 5 ms constant service — well inside RMC1's 20 ms SLA, so a
	// provisioned fleet has real headroom and does not breach; with the
	// 200-QPS profiled capacity the engine calibrates concurrency 1, so
	// each server tops out at 200 QPS and only genuine overload shows
	// up as queueing, breach and drops.
	// HeadroomR 0.05 pins the cluster layer's interval headroom the
	// pre-redesign test engine ran with (the goldens were recorded at
	// it); production specs default to 0.15 serving headroom.
	e, err := NewEngine(Spec{Router: router, Policy: "greedy", Models: []string{"DLRM-RMC1"},
		HeadroomR: 0.05, Options: opts},
		WithFleet(testFleet()), WithTable(testTable()),
		WithService(svcFunc(func(st, m string, size int, scale float64) float64 { return 0.005 })))
	if err != nil {
		panic(err)
	}
	return e
}

func testOpts() Options {
	opts := DefaultOptions()
	opts.SliceS = 4
	opts.QueueCap = 16
	opts.Seed = 1
	return opts
}

func TestAutoscalerTriggersEarlyReprovision(t *testing.T) {
	// Load provisioned at interval 0 (400 QPS), then a 6x surge the
	// scheduled re-provisioning (every 4 intervals) would leave
	// unanswered for 30 minutes. The autoscaler must observe the
	// breached windows and re-provision at the next interval boundary.
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(200, 2400, 2400, 2400, 2400, 2400, 2400, 2400),
	}}
	e := testEngine(PowerOfTwo, testOpts())
	res, err := e.RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoscaleEvents == 0 {
		t.Fatal("surge must trigger the autoscaler")
	}
	if res.EarlyReprovisions == 0 {
		t.Fatal("trigger must cause an early (unscheduled) re-provision")
	}
	var earlyIdx = -1
	for _, s := range res.Steps {
		if s.EarlyReprovision {
			if s.Index%e.Opts.ReprovisionEvery == 0 {
				t.Errorf("interval %d is a scheduled boundary, not early", s.Index)
			}
			earlyIdx = s.Index
			break
		}
	}
	if earlyIdx < 0 {
		t.Fatal("no early re-provision interval recorded")
	}
	// The surge interval itself must have hurt: violations and drops.
	surge := res.Steps[1]
	if surge.ViolationMin == 0 {
		t.Error("surge interval must record SLA-violation minutes")
	}
	if surge.Drops == 0 {
		t.Error("a 6x overload against 16-slot queues must drop queries")
	}
	// After re-provisioning for the surge the fleet must be bigger.
	if res.Steps[earlyIdx].ActiveServers <= res.Steps[1].ActiveServers {
		t.Errorf("re-provision must grow the fleet: %d -> %d servers",
			res.Steps[1].ActiveServers, res.Steps[earlyIdx].ActiveServers)
	}
	// And the boost must be recorded.
	if !res.Steps[earlyIdx].Boosted {
		t.Error("early re-provision must carry the autoscaler boost")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(800, 1200, 1600, 2000, 1600, 1200, 800, 600),
	}}
	optsSeq := testOpts()
	optsSeq.Shards = 4
	optsSeq.Sequential = true
	optsPar := optsSeq
	optsPar.Sequential = false

	seq, err := testEngine(LeastOutstanding, optsSeq).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	par, err := testEngine(LeastOutstanding, optsPar).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel replay must be bit-identical to sequential:\nseq: %+v\npar: %+v",
			seq, par)
	}
	if seq.TotalQueries == 0 {
		t.Fatal("replay served nothing")
	}
}

func TestRunDayAccounting(t *testing.T) {
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(500, 1000, 1500, 1000, 500, 250),
	}}
	res, err := testEngine(WeightedHetero, testOpts()).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 6 {
		t.Fatalf("intervals = %d, want 6", len(res.Steps))
	}
	if res.TotalQueries <= 0 {
		t.Fatal("no queries replayed")
	}
	if res.DropFrac < 0 || res.DropFrac > 1 {
		t.Fatalf("drop fraction %v out of range", res.DropFrac)
	}
	if res.EnergyKJ <= 0 || res.ProvisionedEnergyKJ <= 0 {
		t.Fatalf("energy must be positive: measured %v provisioned %v",
			res.EnergyKJ, res.ProvisionedEnergyKJ)
	}
	if res.EnergyKJ > res.ProvisionedEnergyKJ*1.01 {
		t.Errorf("measured energy %v exceeds provisioned budget %v",
			res.EnergyKJ, res.ProvisionedEnergyKJ)
	}
	if res.Reprovisions == 0 {
		t.Fatal("interval 0 must provision")
	}
	var qsum, dsum int
	for _, s := range res.Steps {
		qsum += s.Queries
		dsum += s.Drops
		if s.Windows > 0 && s.WindowsBreached > s.Windows {
			t.Errorf("interval %d: breached %d > windows %d", s.Index, s.WindowsBreached, s.Windows)
		}
	}
	if qsum != res.TotalQueries || dsum != res.TotalDrops {
		t.Fatalf("per-interval sums (%d, %d) disagree with totals (%d, %d)",
			qsum, dsum, res.TotalQueries, res.TotalDrops)
	}
}

// TestBusyTimeClippedToSlice is the regression test for the busy-time
// over-accounting bug: a long query admitted near the slice boundary
// must contribute only the channel-seconds it serves inside the slice,
// not its full service time (which Utilization's clamp at 1 used to
// hide for saturated instances).
func TestBusyTimeClippedToSlice(t *testing.T) {
	in := NewInstance(0, "T2", "DLRM-RMC1", 100, 1, 4,
		func(int, float64) float64 { return 10.0 }) // 10 s service
	in.ResetSlice(1.0)
	if _, drop := in.Arrive(0.5, 100, 1); drop {
		t.Fatal("query must be admitted")
	}
	// The query occupies the channel from 0.5 s to 10.5 s; only 0.5 s
	// falls inside the 1 s slice.
	if got := in.Utilization(1.0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("utilization = %v, want 0.5 (busy clipped to the slice)", got)
	}
	// Reset() keeps the legacy unbounded horizon for raw ReplaySlice use.
	in.Reset()
	in.Arrive(0.5, 100, 1)
	if got := in.Utilization(1.0); got != 1 {
		t.Fatalf("unclipped utilization = %v, want the saturated clamp 1", got)
	}
}

// TestBatchingCoalesces checks the batcher's dispatch arithmetic: a
// full batch dispatches immediately and is priced by the efficiency
// curve; a partial batch dispatches at its wait-window deadline.
func TestBatchingCoalesces(t *testing.T) {
	eff := []float64{1, 1, 0.75, 0.6, 0.5} // eff[4] = 0.5
	mk := func() *Instance {
		in := NewInstance(0, "T2", "DLRM-RMC1", 100, 1, 16,
			func(int, float64) float64 { return 0.010 })
		in.EnableBatching(4, 0.005, eff)
		in.Reset()
		return in
	}
	// Four simultaneous arrivals fill the batch: one dispatch at t=0,
	// service 0.5 * 4 * 10ms = 20 ms, every member done at 20 ms.
	in := mk()
	var out []Completion
	for i := 0; i < 4; i++ {
		var drop bool
		out, drop = in.ArriveBatched(int64(i)+1, 0, 100, 1, out)
		if drop {
			t.Fatalf("arrival %d dropped", i)
		}
	}
	if len(out) != 4 {
		t.Fatalf("full batch emitted %d completions, want 4", len(out))
	}
	for _, c := range out {
		if math.Abs(c.DoneS-0.020) > 1e-12 {
			t.Errorf("completion at %v, want 0.020", c.DoneS)
		}
	}
	if in.Served != 4 || in.Dropped != 0 {
		t.Fatalf("served/dropped = %d/%d", in.Served, in.Dropped)
	}
	// Two arrivals then a long gap: the window expires at 5 ms, so the
	// next arrival first flushes the pair (dispatch at 0.005, service
	// 0.75 * 20ms = 15 ms -> done at 0.020).
	in = mk()
	out = out[:0]
	out, _ = in.ArriveBatched(1, 0, 100, 1, out)
	out, _ = in.ArriveBatched(2, 0.001, 100, 1, out)
	if len(out) != 0 {
		t.Fatalf("forming batch must not emit completions, got %d", len(out))
	}
	out, _ = in.ArriveBatched(3, 0.1, 100, 1, out)
	if len(out) != 2 {
		t.Fatalf("window expiry must flush the pair, got %d completions", len(out))
	}
	if math.Abs(out[0].DoneS-0.020) > 1e-12 || out[0].ArrivalS != 0 {
		t.Errorf("flushed completion %+v, want dispatch at deadline 0.005 + 15ms", out[0])
	}
	// The third query is still forming; FlushPending drains it at its
	// own deadline (0.1 + 0.005), service 10 ms.
	out = in.FlushPending(out[:0])
	if len(out) != 1 || math.Abs(out[0].DoneS-0.115) > 1e-12 {
		t.Fatalf("end-of-slice flush: %+v, want done at 0.115", out)
	}
}

// TestOutstandingFlushesDueBatches: a forming batch whose launch
// instant has passed must stop counting as outstanding load the
// moment any router inspects the instance — phantom pending members
// would make state-aware routers route around a genuinely idle server
// — and the launched batch's completions must still surface through
// the next drain.
func TestOutstandingFlushesDueBatches(t *testing.T) {
	in := NewInstance(0, "T2", "DLRM-RMC1", 100, 1, 8,
		func(int, float64) float64 { return 0.010 })
	in.EnableBatching(4, 0.002, nil)
	in.Reset()
	if _, drop := in.ArriveBatched(1, 0, 100, 1, nil); drop {
		t.Fatal("query dropped")
	}
	// Before the window expires the member is pending.
	if got := in.Outstanding(0.001); got != 1 {
		t.Fatalf("outstanding before launch = %d, want 1", got)
	}
	// After launch (0.002) the batch is in service until 0.012.
	if got := in.Outstanding(0.005); got != 1 {
		t.Fatalf("outstanding in service = %d, want 1", got)
	}
	if got := in.Outstanding(0.020); got != 0 {
		t.Fatalf("outstanding after completion = %d, want 0 (due batch must have launched)", got)
	}
	// The completion emitted by the inspection-triggered launch must
	// surface at the next drain, with the launch-instant timing.
	out := in.FlushPending(nil)
	if len(out) != 1 || math.Abs(out[0].DoneS-0.012) > 1e-12 {
		t.Fatalf("buffered completion %+v, want done at 0.012", out)
	}
	if in.Served != 1 || in.Dropped != 0 {
		t.Fatalf("served/dropped = %d/%d", in.Served, in.Dropped)
	}
}

// TestBatchedCapacityRule checks the batched admission bound: a
// batching instance holds up to Concurrency*MaxBatch in service plus
// QueueCap forming/waiting, and drops beyond that.
func TestBatchedCapacityRule(t *testing.T) {
	in := NewInstance(0, "T2", "DLRM-RMC1", 100, 1, 2,
		func(int, float64) float64 { return 0.010 })
	in.EnableBatching(4, 0.005, nil)
	in.Reset()
	var out []Completion
	admitted, dropped := 0, 0
	for i := 0; i < 10; i++ {
		var drop bool
		out, drop = in.ArriveBatched(int64(i)+1, 0, 100, 1, out[:0])
		if drop {
			dropped++
		} else {
			admitted++
		}
	}
	// Capacity is 1*4 in service + 2 waiting = 6.
	if admitted != 6 || dropped != 4 {
		t.Fatalf("admitted/dropped = %d/%d, want 6/4", admitted, dropped)
	}
	if in.Served+len(in.pendArr) != admitted || in.Dropped != dropped {
		t.Fatalf("instance counters disagree: served=%d pending=%d dropped=%d",
			in.Served, len(in.pendArr), in.Dropped)
	}
}

// TestBatchedParallelMatchesSequential extends the determinism claim
// to the dynamic-batching replay loop: with MaxBatch > 1 the parallel
// worker-pool replay must stay bit-identical to the sequential one.
func TestBatchedParallelMatchesSequential(t *testing.T) {
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(800, 1600, 2400, 1600, 800, 400),
	}}
	run := func(sequential bool) DayResult {
		opts := testOpts()
		opts.Shards = 4
		opts.MaxBatch = 4
		opts.BatchWaitS = 0.004
		opts.Sequential = sequential
		res, err := testEngine(WeightedHetero, opts).RunDay(ws)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par1, par2 := run(true), run(false), run(false)
	if !reflect.DeepEqual(par1, par2) {
		t.Fatal("two batched parallel replays with the same seed diverged")
	}
	if !reflect.DeepEqual(seq, par1) {
		t.Fatalf("batched parallel replay must match sequential:\nseq: %+v\npar: %+v", seq, par1)
	}
	if seq.TotalQueries == 0 {
		t.Fatal("batched replay served nothing")
	}
}

// TestMaxBatchOneMatchesUnbatched: MaxBatch=1 must take the original
// per-query path and reproduce the unbatched replay exactly.
func TestMaxBatchOneMatchesUnbatched(t *testing.T) {
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(500, 1000, 1500, 1000),
	}}
	base, err := testEngine(PowerOfTwo, testOpts()).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	opts.MaxBatch = 1
	opts.BatchWaitS = 0.010 // must be inert at MaxBatch 1
	one, err := testEngine(PowerOfTwo, opts).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, one) {
		t.Fatalf("MaxBatch=1 replay diverged from the unbatched replay:\nbase: %+v\none: %+v", base, one)
	}
}

func TestSimServiceMemoizesAndIsSane(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the per-server simulator")
	}
	tb := &profiler.Table{}
	tb.Set(profiler.Entry{Model: "DLRM-RMC1", Server: "T2", QPS: 400, PowerW: 200})
	svc := NewSimService(tb)
	a := svc.ServiceS("T2", "DLRM-RMC1", 100, 1.0)
	if a <= 0 || math.IsInf(a, 0) {
		t.Fatalf("service time %v not positive-finite", a)
	}
	if b := svc.ServiceS("T2", "DLRM-RMC1", 100, 1.0); b != a {
		t.Fatalf("memo miss: %v != %v", a, b)
	}
	// Bigger queries cost more.
	big := svc.ServiceS("T2", "DLRM-RMC1", 900, 1.0)
	if big <= a {
		t.Errorf("900-item query (%v s) must cost more than 100-item (%v s)", big, a)
	}
	// Unknown pairs are infinite (dropped), not invented.
	if v := svc.ServiceS("T9", "nope", 100, 1.0); !math.IsInf(v, 1) {
		t.Errorf("unknown pair service = %v, want +Inf", v)
	}
}

// TestScaleZeroHasOwnBucket is the regression test for the scale-0
// clamp: a query with no pooled work (sparse scale 0) must be priced
// at scale 0, not silently sampled at the 0.125 bucket, and the grid
// value must match the simulator evaluated directly at scale 0.
func TestScaleZeroHasOwnBucket(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the per-server simulator")
	}
	tb := &profiler.Table{}
	tb.Set(profiler.Entry{Model: "DLRM-RMC1", Server: "T2", QPS: 400, PowerW: 200})
	svc := NewSimService(tb)
	zero := svc.ServiceS("T2", "DLRM-RMC1", 100, 0)
	eighth := svc.ServiceS("T2", "DLRM-RMC1", 100, 0.125)
	if math.IsInf(zero, 0) || zero <= 0 {
		t.Fatalf("scale-0 service = %v, want positive-finite", zero)
	}
	if zero >= eighth {
		t.Errorf("a dense query (%v s) must be cheaper than one pooling at scale 0.125 (%v s)",
			zero, eighth)
	}
	// The grid must agree with the simulator evaluated directly at the
	// same bucket representative and scale 0.
	m, err := model.ByName("DLRM-RMC1", model.Prod)
	if err != nil {
		t.Fatal(err)
	}
	srv := sim.New(hw.ServerType("T2"), m)
	q := workload.Query{ID: 1, ArrivalS: 0, Size: sizeBucket(100), SparseScale: 0}
	res, err := srv.Simulate(DefaultServingConfig(hw.ServerType("T2")), []workload.Query{q}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if direct := res.MeanMS / 1e3; math.Abs(zero-direct) > 1e-12*math.Abs(direct) {
		t.Errorf("grid scale-0 value %v disagrees with direct simulation %v", zero, direct)
	}
}

// TestPairBatchEffCurve sanity-checks the batching-efficiency curves
// the sim-backed source measures: eff[1] is 1, larger batches are
// never priced worse than back-to-back solo service nor better than
// their longest member, and a real pair shows a genuine economy.
func TestPairBatchEffCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the per-server simulator")
	}
	tb := &profiler.Table{}
	tb.Set(profiler.Entry{Model: "DLRM-RMC1", Server: "T2", QPS: 400, PowerW: 200})
	svc := NewSimService(tb)
	const maxBatch = 16
	eff := svc.PairBatchEff("T2", "DLRM-RMC1", maxBatch)
	if len(eff) != maxBatch+1 {
		t.Fatalf("curve length %d, want %d", len(eff), maxBatch+1)
	}
	if eff[1] != 1 {
		t.Fatalf("eff[1] = %v, want 1", eff[1])
	}
	for n := 2; n <= maxBatch; n++ {
		if eff[n] > 1 || eff[n] < 1/float64(n) {
			t.Errorf("eff[%d] = %v outside [1/n, 1]", n, eff[n])
		}
	}
	if eff[maxBatch] >= 1 {
		t.Errorf("a full batch must amortize per-batch overheads: eff[%d] = %v", maxBatch, eff[maxBatch])
	}
	// Unknown pairs cannot be priced.
	if got := svc.PairBatchEff("T9", "nope", maxBatch); got != nil {
		t.Errorf("unknown pair curve = %v, want nil", got)
	}
	// MaxBatch 1 needs no curve.
	if got := svc.PairBatchEff("T2", "DLRM-RMC1", 1); got != nil {
		t.Errorf("maxBatch 1 curve = %v, want nil", got)
	}
}
