package fleet

import (
	"math"
	"reflect"
	"testing"

	"hercules/internal/cluster"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/stats"
	"hercules/internal/workload"
)

// svcFunc adapts a function to ServiceSource for stubbed tests.
type svcFunc func(serverType, modelName string, size int, scale float64) float64

func (f svcFunc) ServiceS(st, m string, size int, scale float64) float64 {
	return f(st, m, size, scale)
}

// constInstances builds n instances of one type with a constant service
// time and unit concurrency.
func constInstances(n int, serverType string, svcS, weight float64, queueCap int) []*Instance {
	out := make([]*Instance, n)
	for i := range out {
		out[i] = NewInstance(i, serverType, "DLRM-RMC1", weight, 1, queueCap,
			func(size int, scale float64) float64 { return svcS })
	}
	return out
}

func poissonQueries(rateQPS, horizonS float64, seed int64) []workload.Query {
	m := model.DLRMRMC1(model.Prod)
	return workload.NewGenerator(m, rateQPS, seed).Until(horizonS)
}

func p95ms(lats []float64) float64 {
	s := stats.NewSample(len(lats))
	for _, l := range lats {
		s.Add(l * 1e3)
	}
	return s.P95()
}

func TestRouterParseRoundTrip(t *testing.T) {
	for _, k := range AllRouters {
		got, err := ParseRouter(k.String())
		if err != nil || got != k {
			t.Errorf("ParseRouter(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseRouter("nope"); err == nil {
		t.Error("ParseRouter must reject unknown names")
	}
}

func TestQueueOverflowDropsAndAccounting(t *testing.T) {
	// One channel, two waiting slots, 10 ms service: a burst of 10
	// simultaneous arrivals admits exactly 3.
	in := NewInstance(0, "T2", "DLRM-RMC1", 100, 1, 2,
		func(int, float64) float64 { return 0.010 })
	queries := make([]workload.Query, 10)
	for i := range queries {
		queries[i] = workload.Query{ID: int64(i), ArrivalS: 0, Size: 100, SparseScale: 1}
	}
	res := ReplaySlice(RoundRobin, []*Instance{in}, queries, 1)
	if res.Served != 3 || res.Dropped != 7 {
		t.Fatalf("served=%d dropped=%d, want 3/7", res.Served, res.Dropped)
	}
	if res.Served+res.Dropped != len(queries) {
		t.Fatalf("accounting leak: %d+%d != %d", res.Served, res.Dropped, len(queries))
	}
	if in.Served != 3 || in.Dropped != 7 {
		t.Fatalf("instance counters %d/%d disagree", in.Served, in.Dropped)
	}
	// FCFS latencies: 10, 20, 30 ms.
	want := []float64{0.010, 0.020, 0.030}
	for i, l := range res.LatS {
		if math.Abs(l-want[i]) > 1e-9 {
			t.Errorf("latency[%d] = %v, want %v", i, l, want[i])
		}
	}
}

func TestP2CBeatsRoundRobinOnImbalance(t *testing.T) {
	// Four fast servers (2 ms) and one 20x slower straggler. Round
	// robin blindly sends 20% of traffic to the straggler, which can
	// only absorb ~1.2% — its queue saturates and the fleet p95
	// explodes. State-aware policies route around it.
	build := func() []*Instance {
		insts := constInstances(4, "fast", 0.002, 500, 64)
		slow := NewInstance(4, "slow", "DLRM-RMC1", 25, 1, 64,
			func(int, float64) float64 { return 0.040 })
		return append(insts, slow)
	}
	queries := poissonQueries(1200, 5, 7)
	// A query violates when it is dropped or exceeds the 20 ms SLA;
	// judging served-only tails would reward round robin for hiding
	// the straggler's backlog behind queue drops.
	violFrac := func(res SliceResult) float64 {
		bad := res.Dropped
		for _, l := range res.LatS {
			if l > 0.020 {
				bad++
			}
		}
		return float64(bad) / float64(len(queries))
	}
	viol := make(map[RouterKind]float64, len(AllRouters))
	drops := make(map[RouterKind]int, len(AllRouters))
	for _, k := range AllRouters {
		res := ReplaySlice(k, build(), queries, 11)
		if res.Served == 0 {
			t.Fatalf("%v served nothing", k)
		}
		viol[k] = violFrac(res)
		drops[k] = res.Dropped
	}
	if drops[RoundRobin] == 0 {
		t.Error("round robin must overflow the straggler's queue")
	}
	for _, k := range []RouterKind{LeastOutstanding, PowerOfTwo, WeightedHetero} {
		if viol[k] >= viol[RoundRobin] {
			t.Errorf("%v violation rate %.3f must beat round-robin %.3f",
				k, viol[k], viol[RoundRobin])
		}
	}
	if viol[PowerOfTwo] > 0.5*viol[RoundRobin] {
		t.Errorf("p2c (%.3f) should roughly halve or better round-robin's violations (%.3f)",
			viol[PowerOfTwo], viol[RoundRobin])
	}
}

func TestReplayDeterministic(t *testing.T) {
	queries := poissonQueries(800, 3, 3)
	a := ReplaySlice(PowerOfTwo, constInstances(6, "T2", 0.004, 250, 32), queries, 5)
	b := ReplaySlice(PowerOfTwo, constInstances(6, "T2", 0.004, 250, 32), queries, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce the same replay")
	}
}

func TestAutoscalerWindowLogic(t *testing.T) {
	a := NewAutoscaler()
	a.Patience = 3
	a.ObserveWindow(true)
	a.ObserveWindow(true)
	a.ObserveWindow(false) // streak reset
	a.ObserveWindow(true)
	if early, _ := a.IntervalEnd(); early {
		t.Fatal("must not trigger below patience")
	}
	a.ObserveWindow(true)
	a.ObserveWindow(true)
	a.ObserveWindow(true)
	early, extra := a.IntervalEnd()
	if !early || extra != a.BoostR {
		t.Fatalf("trigger expected: early=%v extra=%v", early, extra)
	}
	if a.Events != 1 {
		t.Fatalf("events = %d", a.Events)
	}
	// Boost holds for HoldIntervals quiet intervals, then decays.
	for i := 0; i < a.HoldIntervals; i++ {
		if early, extra = a.IntervalEnd(); early || extra != a.BoostR {
			t.Fatalf("hold interval %d: early=%v extra=%v", i, early, extra)
		}
	}
	if _, extra = a.IntervalEnd(); extra != 0 {
		t.Fatalf("boost must decay, extra=%v", extra)
	}
}

// testTable builds a one-pair synthetic efficiency table: T2 serves
// RMC1 at 200 QPS for 300 W provisioned.
func testTable() *profiler.Table {
	tb := &profiler.Table{}
	tb.Set(profiler.Entry{
		Model: "DLRM-RMC1", Server: "T2",
		QPS: 200, PowerW: 300, QPSPerWatt: 200.0 / 300,
	})
	return tb
}

func testFleet() hw.Fleet {
	return hw.Fleet{Types: []hw.Server{hw.ServerType("T2")}, Counts: []int{60}}
}

// stepTrace is a hand-built trace with the given loads at 10-minute
// intervals.
func stepTrace(loads ...float64) workload.DiurnalTrace {
	return workload.DiurnalTrace{Service: "test", StepS: 600, LoadsQPS: loads}
}

func testEngine(router RouterKind, opts Options) *Engine {
	e := NewEngine(testFleet(), testTable(), cluster.Greedy, router, opts)
	// 5 ms constant service — well inside RMC1's 20 ms SLA, so a
	// provisioned fleet has real headroom and does not breach; with the
	// 200-QPS profiled capacity the engine calibrates concurrency 1, so
	// each server tops out at 200 QPS and only genuine overload shows
	// up as queueing, breach and drops.
	e.Service = svcFunc(func(st, m string, size int, scale float64) float64 { return 0.005 })
	return e
}

func testOpts() Options {
	opts := DefaultOptions()
	opts.SliceS = 4
	opts.QueueCap = 16
	opts.Seed = 1
	return opts
}

func TestAutoscalerTriggersEarlyReprovision(t *testing.T) {
	// Load provisioned at interval 0 (400 QPS), then a 6x surge the
	// scheduled re-provisioning (every 4 intervals) would leave
	// unanswered for 30 minutes. The autoscaler must observe the
	// breached windows and re-provision at the next interval boundary.
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(200, 2400, 2400, 2400, 2400, 2400, 2400, 2400),
	}}
	e := testEngine(PowerOfTwo, testOpts())
	res, err := e.RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoscaleEvents == 0 {
		t.Fatal("surge must trigger the autoscaler")
	}
	if res.EarlyReprovisions == 0 {
		t.Fatal("trigger must cause an early (unscheduled) re-provision")
	}
	var earlyIdx = -1
	for _, s := range res.Steps {
		if s.EarlyReprovision {
			if s.Index%e.Opts.ReprovisionEvery == 0 {
				t.Errorf("interval %d is a scheduled boundary, not early", s.Index)
			}
			earlyIdx = s.Index
			break
		}
	}
	if earlyIdx < 0 {
		t.Fatal("no early re-provision interval recorded")
	}
	// The surge interval itself must have hurt: violations and drops.
	surge := res.Steps[1]
	if surge.ViolationMin == 0 {
		t.Error("surge interval must record SLA-violation minutes")
	}
	if surge.Drops == 0 {
		t.Error("a 6x overload against 16-slot queues must drop queries")
	}
	// After re-provisioning for the surge the fleet must be bigger.
	if res.Steps[earlyIdx].ActiveServers <= res.Steps[1].ActiveServers {
		t.Errorf("re-provision must grow the fleet: %d -> %d servers",
			res.Steps[1].ActiveServers, res.Steps[earlyIdx].ActiveServers)
	}
	// And the boost must be recorded.
	if !res.Steps[earlyIdx].Boosted {
		t.Error("early re-provision must carry the autoscaler boost")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(800, 1200, 1600, 2000, 1600, 1200, 800, 600),
	}}
	optsSeq := testOpts()
	optsSeq.Shards = 4
	optsSeq.Sequential = true
	optsPar := optsSeq
	optsPar.Sequential = false

	seq, err := testEngine(LeastOutstanding, optsSeq).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	par, err := testEngine(LeastOutstanding, optsPar).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel replay must be bit-identical to sequential:\nseq: %+v\npar: %+v",
			seq, par)
	}
	if seq.TotalQueries == 0 {
		t.Fatal("replay served nothing")
	}
}

func TestRunDayAccounting(t *testing.T) {
	ws := []cluster.Workload{{
		Model: "DLRM-RMC1",
		Trace: stepTrace(500, 1000, 1500, 1000, 500, 250),
	}}
	res, err := testEngine(WeightedHetero, testOpts()).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 6 {
		t.Fatalf("intervals = %d, want 6", len(res.Steps))
	}
	if res.TotalQueries <= 0 {
		t.Fatal("no queries replayed")
	}
	if res.DropFrac < 0 || res.DropFrac > 1 {
		t.Fatalf("drop fraction %v out of range", res.DropFrac)
	}
	if res.EnergyKJ <= 0 || res.ProvisionedEnergyKJ <= 0 {
		t.Fatalf("energy must be positive: measured %v provisioned %v",
			res.EnergyKJ, res.ProvisionedEnergyKJ)
	}
	if res.EnergyKJ > res.ProvisionedEnergyKJ*1.01 {
		t.Errorf("measured energy %v exceeds provisioned budget %v",
			res.EnergyKJ, res.ProvisionedEnergyKJ)
	}
	if res.Reprovisions == 0 {
		t.Fatal("interval 0 must provision")
	}
	var qsum, dsum int
	for _, s := range res.Steps {
		qsum += s.Queries
		dsum += s.Drops
		if s.Windows > 0 && s.WindowsBreached > s.Windows {
			t.Errorf("interval %d: breached %d > windows %d", s.Index, s.WindowsBreached, s.Windows)
		}
	}
	if qsum != res.TotalQueries || dsum != res.TotalDrops {
		t.Fatalf("per-interval sums (%d, %d) disagree with totals (%d, %d)",
			qsum, dsum, res.TotalQueries, res.TotalDrops)
	}
}

func TestSimServiceMemoizesAndIsSane(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the per-server simulator")
	}
	tb := &profiler.Table{}
	tb.Set(profiler.Entry{Model: "DLRM-RMC1", Server: "T2", QPS: 400, PowerW: 200})
	svc := NewSimService(tb)
	a := svc.ServiceS("T2", "DLRM-RMC1", 100, 1.0)
	if a <= 0 || math.IsInf(a, 0) {
		t.Fatalf("service time %v not positive-finite", a)
	}
	if b := svc.ServiceS("T2", "DLRM-RMC1", 100, 1.0); b != a {
		t.Fatalf("memo miss: %v != %v", a, b)
	}
	// Bigger queries cost more.
	big := svc.ServiceS("T2", "DLRM-RMC1", 900, 1.0)
	if big <= a {
		t.Errorf("900-item query (%v s) must cost more than 100-item (%v s)", big, a)
	}
	// Unknown pairs are infinite (dropped), not invented.
	if v := svc.ServiceS("T9", "nope", 100, 1.0); !math.IsInf(v, 1) {
		t.Errorf("unknown pair service = %v, want +Inf", v)
	}
}
