package fleet

import (
	"testing"

	"hercules/internal/stats"
)

// The replay hot path — route decision plus queue admission — must not
// allocate: instance state lives in preallocated index-based float64
// heaps (no container/heap interface boxing) and the per-pair
// service-time samplers are resolved before the loop. At ~1M routed
// queries per simulated day, even one allocation per decision puts the
// garbage collector back on the critical path.

func TestRouterPickZeroAlloc(t *testing.T) {
	for _, kind := range AllRouters {
		insts := constInstances(8, "T2", 0.010, 100, 32)
		for _, in := range insts {
			in.Reset()
			in.Arrive(0, 100, 1) // outstanding work so state-aware routers scan heaps
		}
		router, err := NewRouter(kind)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRand(7)
		now := 0.0
		avg := testing.AllocsPerRun(200, func() {
			router.Pick(insts, now, rng)
			now += 1e-4
		})
		if avg != 0 {
			t.Errorf("%s: %.2f allocs per route decision, want 0", kind, avg)
		}
	}
}

// TestBatchedArriveZeroAlloc extends the zero-alloc guarantee to the
// dynamic-batching path: batch formation, window-expiry flushes and
// full-batch dispatches all run on buffers preallocated by
// EnableBatching and the shard's reusable completions scratch.
func TestBatchedArriveZeroAlloc(t *testing.T) {
	const maxBatch = 8
	eff := make([]float64, maxBatch+1)
	for i := range eff {
		eff[i] = 1 - 0.04*float64(i)
	}
	for _, kind := range AllRouters {
		insts := constInstances(4, "T2", 0.010, 100, 32)
		for _, in := range insts {
			in.EnableBatching(maxBatch, 0.002, eff)
			in.Reset()
		}
		router, err := NewRouter(kind)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRand(13)
		out := make([]Completion, 0, 2*maxBatch)
		now := 0.0
		id := int64(0)
		avg := testing.AllocsPerRun(500, func() {
			pick := router.Pick(insts, now, rng)
			id++
			out, _ = insts[pick].ArriveBatched(id, now, 100, 1, out[:0])
			now += 1e-3
		})
		if avg != 0 {
			t.Errorf("%s: %.2f allocs per batched admission, want 0", kind, avg)
		}
	}
}

func TestRouteAndArriveZeroAlloc(t *testing.T) {
	for _, kind := range AllRouters {
		insts := constInstances(4, "T2", 0.010, 100, 32)
		router, err := NewRouter(kind)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRand(11)
		now := 0.0
		for _, in := range insts {
			in.Reset()
		}
		avg := testing.AllocsPerRun(500, func() {
			pick := router.Pick(insts, now, rng)
			insts[pick].Arrive(now, 100, 1)
			now += 2e-3
		})
		if avg != 0 {
			t.Errorf("%s: %.2f allocs per routed admission, want 0", kind, avg)
		}
	}
}
