package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hercules/internal/cluster"
	"hercules/internal/telemetry"
)

// The record→replay tests pin the tentpole claim of the trace-ingestion
// layer: a day recorded as an arrival trace (-record: arrival + offer
// NDJSON at sample 1) and re-ingested through fleet.TraceSource
// reproduces the original DayResult byte for byte — same provisioning,
// same shedding, same routing, same tails — and re-recording the
// replayed day reproduces the trace bytes themselves. Identity is
// pinned at shard caps 1, 4 and 8, sequential and parallel.

// replaySpec is the testEngine spec as a value the replay tests can
// vary (scenario, admission, cache) before construction.
func replaySpec(router string, opts Options) Spec {
	return Spec{Router: router, Policy: "greedy", Models: []string{"DLRM-RMC1"},
		HeadroomR: 0.05, Options: opts}
}

// newReplayEngine builds the test engine from an explicit spec plus
// extra options — testEngine with the spec opened up.
func newReplayEngine(t *testing.T, spec Spec, extra ...Option) *Engine {
	t.Helper()
	opts := append([]Option{
		WithFleet(testFleet()), WithTable(testTable()),
		WithService(svcFunc(func(st, m string, size int, scale float64) float64 { return 0.005 })),
	}, extra...)
	e, err := NewEngine(spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// arrivalSink is the -record sink: NDJSON restricted to the replayable
// kinds (arrival + offer).
func arrivalSink(buf *bytes.Buffer) *telemetry.NDJSONWriter {
	return telemetry.NewNDJSONWriter(buf).Restrict(telemetry.KindArrival, telemetry.KindOffer)
}

// recordDay replays ws at full trace sampling and returns the recorded
// arrival trace plus the DayResult it must pin.
func recordDay(t *testing.T, spec Spec, ws []cluster.Workload) ([]byte, DayResult) {
	t.Helper()
	spec.Options.TraceSample = 1
	e := newReplayEngine(t, spec)
	var buf bytes.Buffer
	e.Tracer.AddSink(arrivalSink(&buf))
	res, err := e.RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// replayDay re-ingests a recorded trace, replays it with the same spec,
// and re-records it: returns the re-exported trace and the DayResult.
func replayDay(t *testing.T, spec Spec, rec []byte, stepS float64) ([]byte, DayResult) {
	t.Helper()
	ts, err := ReadTrace(bytes.NewReader(rec))
	if err != nil {
		t.Fatal(err)
	}
	spec.Options.TraceSample = 1
	e := newReplayEngine(t, spec, WithTraceSource(ts))
	var buf bytes.Buffer
	e.Tracer.AddSink(arrivalSink(&buf))
	res, err := e.RunDay(ts.Workloads(stepS, spec.Options.SliceS))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// tinyDay is a day small enough that the greedy provisioner allocates a
// single server every interval: the shard decomposition (n = min(cap,
// pool) = 1) coincides at every shard cap, so ONE committed golden
// arrival trace pins record bytes at shards 1, 4 and 8 simultaneously.
func tinyDay() []cluster.Workload {
	return []cluster.Workload{{Model: "DLRM-RMC1", Trace: stepTrace(50, 100, 150)}}
}

func tinyOpts() Options {
	opts := testOpts()
	opts.SliceS = 2
	return opts
}

// TestGoldenArrivalTrace: the recorded arrival trace of tinyDay must be
// byte-identical across shard caps 1/4/8 (sequential and parallel) and
// match the committed golden — and re-ingesting the golden must
// re-record it byte for byte. Regenerate with REGEN_GOLDEN_ARRIVALS=1.
func TestGoldenArrivalTrace(t *testing.T) {
	record := func(shards int, sequential bool) []byte {
		opts := tinyOpts()
		opts.Shards = shards
		opts.Sequential = sequential
		rec, _ := recordDay(t, replaySpec(PowerOfTwo, opts), tinyDay())
		return rec
	}
	const golden = "testdata/golden_arrivals.ndjson"
	if os.Getenv("REGEN_GOLDEN_ARRIVALS") != "" {
		got := record(1, true)
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated golden arrivals: %d bytes", len(got))
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		name       string
		shards     int
		sequential bool
	}{
		{"seq-1", 1, true},
		{"seq-4", 4, true},
		{"par-4", 4, false},
		{"par-8", 8, false},
	} {
		if got := record(cfg.shards, cfg.sequential); !bytes.Equal(got, want) {
			t.Errorf("%s: recorded trace diverged from golden (%d vs %d bytes)",
				cfg.name, len(got), len(want))
		}
	}
	// Round trip: re-ingesting the golden re-records it byte for byte.
	reRec, _ := replayDay(t, replaySpec(PowerOfTwo, tinyOpts()), want, 600)
	if !bytes.Equal(reRec, want) {
		t.Errorf("replayed golden re-recorded %d bytes, want %d", len(reRec), len(want))
	}
}

// TestRecordReplayRoundTrip: for every variant — baseline, a spike+shed
// scenario (the spike baked into the recorded arrivals, the shed
// re-applied as live policy), admission shedding under overload, and a
// cache tier under a flush storm — record → replay must reproduce the
// DayResult exactly (DeepEqual and JSON bytes) and re-record the trace
// byte-identically, at shard caps 1, 4 and 8.
func TestRecordReplayRoundTrip(t *testing.T) {
	// Events span the tiny days' 30-minute horizon (hours 0–0.5).
	const stormScenario = `{"name":"storm","events":[
		{"kind":"spike","start_h":0.15,"end_h":0.5,"factor":1.8},
		{"kind":"shed","start_h":0.3,"end_h":0.5,"factor":0.25}]}`
	const flushScenario = `{"name":"flushstorm","events":[
		{"kind":"flush","start_h":0.15,"end_h":0.5,"frac":0.9}]}`
	variants := []struct {
		name string
		prep func(*Spec)
		ws   []cluster.Workload
	}{
		{"baseline", func(*Spec) {}, goldenTraceWorkloads()},
		{"scenario", func(s *Spec) { s.Scenario = stormScenario }, goldenTraceWorkloads()},
		{"admission", func(s *Spec) { s.Admission = "deadline" },
			[]cluster.Workload{{Model: "DLRM-RMC1", Trace: stepTrace(200, 1200, 1200)}}},
		{"cache-flush", func(s *Spec) {
			s.Cache = CacheSpec{HitRate: 0.8}
			s.Scenario = flushScenario
		}, goldenTraceWorkloads()},
	}
	for _, v := range variants {
		for _, shards := range []int{1, 4, 8} {
			opts := testOpts()
			opts.Shards = shards
			spec := replaySpec(PowerOfTwo, opts)
			v.prep(&spec)
			rec, recRes := recordDay(t, spec, v.ws)
			reRec, repRes := replayDay(t, spec, rec, 600)
			if !reflect.DeepEqual(recRes, repRes) {
				t.Errorf("%s/shards-%d: replayed DayResult diverged", v.name, shards)
				continue
			}
			a, _ := json.Marshal(recRes)
			b, _ := json.Marshal(repRes)
			if !bytes.Equal(a, b) {
				t.Errorf("%s/shards-%d: DayResult JSON diverged", v.name, shards)
			}
			if !bytes.Equal(rec, reRec) {
				t.Errorf("%s/shards-%d: re-recorded trace diverged (%d vs %d bytes)",
					v.name, shards, len(reRec), len(rec))
			}
		}
	}
	// Sanity: the variants exercised what they claim to.
	opts := testOpts()
	spec := replaySpec(PowerOfTwo, opts)
	spec.Admission = "deadline"
	_, res := recordDay(t, spec,
		[]cluster.Workload{{Model: "DLRM-RMC1", Trace: stepTrace(200, 1200, 1200)}})
	if res.TotalShed == 0 {
		t.Error("admission variant shed nothing — overload day too light to exercise the policy")
	}
	spec = replaySpec(PowerOfTwo, opts)
	spec.Cache = CacheSpec{HitRate: 0.8}
	_, res = recordDay(t, spec, goldenTraceWorkloads())
	if res.TotalCacheHits == 0 {
		t.Error("cache variant recorded no hits")
	}
}

// TestSpecTraceFile: Spec.Trace loads the recorded file through
// LoadTrace, adopts the trace's models when the spec names none, and
// Engine.Workloads() reconstructs the recorded day (offered loads
// verbatim from the offer records).
func TestSpecTraceFile(t *testing.T) {
	rec, recRes := recordDay(t, replaySpec(PowerOfTwo, tinyOpts()), tinyDay())
	path := filepath.Join(t.TempDir(), "day.ndjson")
	if err := os.WriteFile(path, rec, 0o644); err != nil {
		t.Fatal(err)
	}
	opts := tinyOpts()
	opts.TraceSample = 1
	spec := Spec{Router: PowerOfTwo, Policy: "greedy", HeadroomR: 0.05,
		StepMin: 10, Trace: path, Options: opts}
	e := newReplayEngine(t, spec)
	if e.TraceSrc == nil {
		t.Fatal("Spec.Trace did not install a TraceSource")
	}
	if got := e.Spec.Models; !reflect.DeepEqual(got, []string{"DLRM-RMC1"}) {
		t.Fatalf("trace models not adopted: %v", got)
	}
	var buf bytes.Buffer
	e.Tracer.AddSink(arrivalSink(&buf))
	res, err := e.RunDay(e.Workloads())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, recRes) {
		t.Error("spec-driven replay diverged from the recording run")
	}
	if !bytes.Equal(buf.Bytes(), rec) {
		t.Error("spec-driven replay re-recorded different trace bytes")
	}
	if _, err := NewEngine(Spec{Trace: filepath.Join(t.TempDir(), "absent.ndjson")}); err == nil {
		t.Error("missing trace file must error")
	}
}

// TestTraceSourceValidation: malformed traces error with context —
// never panic, never silently skip — and a full lifecycle trace
// re-ingests (non-arrival kinds skipped by design).
func TestTraceSourceValidation(t *testing.T) {
	arrival := `{"i":0,"k":"arrival","m":"M","q":1,"t":0.5,"v":100,"aux":1}`
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty trace"},
		{"not json", "nope\n", "line 1"},
		{"missing field", `{"i":0,"k":"arrival","m":"M"}`, "missing required field"},
		{"unknown kind", `{"i":0,"k":"bogus","m":"M","q":1,"t":0,"v":1,"aux":1}`, "unknown event kind"},
		{"negative interval", `{"i":-1,"k":"arrival","m":"M","q":1,"t":0,"v":1,"aux":1}`, "out of range"},
		{"huge interval", `{"i":999999999,"k":"arrival","m":"M","q":1,"t":0,"v":1,"aux":1}`, "out of range"},
		{"empty model", `{"i":0,"k":"arrival","m":"","q":1,"t":0,"v":1,"aux":1}`, "empty model"},
		{"zero id", `{"i":0,"k":"arrival","m":"M","q":0,"t":0,"v":1,"aux":1}`, "must be >= 1"},
		{"negative time", `{"i":0,"k":"arrival","m":"M","q":1,"t":-1,"v":1,"aux":1}`, "finite and >= 0"},
		{"nan size", `{"i":0,"k":"arrival","m":"M","q":1,"t":0,"v":1e999,"aux":1}`, "line 1"},
		{"fractional size", `{"i":0,"k":"arrival","m":"M","q":1,"t":0,"v":1.5,"aux":1}`, "integer"},
		{"zero scale", `{"i":0,"k":"arrival","m":"M","q":1,"t":0,"v":1,"aux":0}`, "sparse scale"},
		{"bad offer qps", `{"i":0,"k":"offer","m":"M","q":-1,"t":0,"v":-3,"aux":8}`, "offer qps"},
		{"bad offer slice", `{"i":0,"k":"offer","m":"M","q":-1,"t":0,"v":10,"aux":0}`, "offer slice"},
		{"duplicate offer", `{"i":0,"k":"offer","m":"M","q":-1,"t":0,"v":10,"aux":8}` + "\n" +
			`{"i":0,"k":"offer","m":"M","q":-1,"t":0,"v":11,"aux":8}`, "duplicate offer"},
		{"duplicate id", arrival + "\n" + arrival, "duplicate query id"},
		{"out of order", `{"i":0,"k":"arrival","m":"M","q":1,"t":0.9,"v":100,"aux":1}` + "\n" +
			`{"i":0,"k":"arrival","m":"M","q":2,"t":0.1,"v":100,"aux":1}`, "out-of-order"},
	}
	for _, c := range cases {
		_, err := ReadTrace(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: want error containing %q, got nil", c.name, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}

	// A full lifecycle trace (routes, completions, hits) re-ingests:
	// only arrivals and offers carry replay state.
	full := arrival + "\n" +
		`{"i":0,"k":"route","m":"M","q":1,"t":0.5,"inst":3,"cand":[1,3],"n":2}` + "\n" +
		`{"i":0,"k":"complete","m":"M","q":1,"t":0.51,"inst":3,"v":0.01}` + "\n" +
		`{"i":0,"k":"hit","m":"M","q":2,"t":0.6,"v":0.0003}` + "\n" +
		`{"i":0,"k":"offer","m":"M","q":-1,"t":0,"v":25,"aux":4}`
	ts, err := ReadTrace(strings.NewReader(full))
	if err != nil {
		t.Fatalf("full lifecycle trace rejected: %v", err)
	}
	if got := ts.Models(); !reflect.DeepEqual(got, []string{"M"}) {
		t.Errorf("models = %v", got)
	}
	if n := len(ts.Queries(0, "M")); n != 1 {
		t.Errorf("arrivals = %d, want 1 (lifecycle events must be skipped)", n)
	}
	if got := ts.Slice(0); got != 4 {
		t.Errorf("recorded slice = %g, want 4", got)
	}
	ws := ts.Workloads(600, 8)
	if len(ws) != 1 || ws[0].Trace.LoadsQPS[0] != 25 {
		t.Errorf("offer load not adopted: %+v", ws)
	}

	// Arrival ordering is canonical (by ID), not file order: shuffled
	// lines parse to the same source.
	shuffled := `{"i":0,"k":"arrival","m":"M","q":2,"t":0.6,"v":50,"aux":1}` + "\n" +
		`{"i":0,"k":"arrival","m":"M","q":1,"t":0.5,"v":100,"aux":1}`
	ts, err = ReadTrace(strings.NewReader(shuffled))
	if err != nil {
		t.Fatal(err)
	}
	qs := ts.Queries(0, "M")
	if len(qs) != 2 || qs[0].ID != 1 || qs[1].ID != 2 {
		t.Errorf("arrivals not canonically ordered: %+v", qs)
	}

	// A trace without offers falls back to arrivals ÷ slice for loads.
	ws = ts.Workloads(600, 8)
	if got := ws[0].Trace.LoadsQPS[0]; got != 2.0/8 {
		t.Errorf("fallback load = %g, want %g", got, 2.0/8)
	}
}
