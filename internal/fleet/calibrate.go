package fleet

import (
	"fmt"
	"runtime"
	"sync"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
)

// CalibrateTable builds a serving efficiency table in seconds: every
// (model, server type) pair is measured with profiler.CalibratePair
// over the ServingConfigCandidates ladder and the highest-capacity
// configuration wins. This replaces the full Fig. 9b profiling run
// (minutes of Algorithm 1 search) for fleet-replay tools that need a
// usable table, not an optimal one. Pairs are measured concurrently.
func CalibrateTable(models []*model.Model, servers []hw.Server, seed int64) (*profiler.Table, error) {
	type job struct {
		m   *model.Model
		srv hw.Server
	}
	jobs := make([]job, 0, len(models)*len(servers))
	for _, srv := range servers {
		for _, m := range models {
			jobs = append(jobs, job{m, srv})
		}
	}
	entries := make([]profiler.Entry, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var best profiler.Entry
			for _, cfg := range ServingConfigCandidates(j.srv) {
				e, err := profiler.CalibratePair(j.m, j.srv, cfg, seed)
				if err != nil {
					continue
				}
				if best.Server == "" || e.QPS > best.QPS {
					best = e
				}
			}
			if best.Server == "" {
				errs[i] = fmt.Errorf("fleet: no serving config found for %s on %s",
					j.m.Name, j.srv.Type)
				return
			}
			entries[i] = best
		}(i, j)
	}
	wg.Wait()
	t := &profiler.Table{}
	for i, e := range entries {
		if errs[i] != nil {
			return nil, errs[i]
		}
		t.Set(e)
	}
	return t, nil
}
