package fleet

import (
	"encoding/json"
	"math"
	"os"
	"reflect"
	"testing"

	"hercules/internal/cluster"
)

// regionsTestSpec is the two-region drill the multi-region tests and
// the committed golden replay: east (RTT 12 ms to west) suffers a
// full blackout from 0.5h to 1.0h of the replayed day, west runs six
// hours phase-shifted and absorbs the 1.5x survivor flash crowd.
func regionsTestSpec(geo string) Spec {
	opts := testOpts()
	opts.Shards = 4
	return Spec{
		Router: PowerOfTwo, Policy: "greedy", Models: []string{"DLRM-RMC1"},
		HeadroomR: 0.05,
		Scenario:  `{"name":"east-blackout","events":[{"kind":"blackout","region":"east","start_h":0.5,"end_h":1.0}]}`,
		Geo:       geo,
		Regions: []RegionSpec{
			{Name: "east", RTTMS: map[string]float64{"west": 12}},
			{Name: "west", PhaseH: -6},
		},
		Options: opts,
	}
}

// regionsWorkloads: east runs hot enough that losing its fleet
// matters; west has the headroom a spill policy needs.
func regionsWorkloads() [][]cluster.Workload {
	return [][]cluster.Workload{
		{{Model: "DLRM-RMC1", Trace: stepTrace(2000, 2400, 2800, 2800, 2400, 2000, 1600, 1200)}},
		{{Model: "DLRM-RMC1", Trace: stepTrace(1000, 1200, 1400, 1400, 1200, 1000, 800, 600)}},
	}
}

func newRegionsEngine(t *testing.T, spec Spec) *MultiEngine {
	t.Helper()
	me, err := NewMultiEngine(spec, WithFleet(testFleet()), WithTable(testTable()),
		WithService(svcFunc(func(st, m string, size int, scale float64) float64 { return 0.005 })))
	if err != nil {
		t.Fatal(err)
	}
	return me
}

func runRegions(t *testing.T, geo string, shards int, sequential bool) DayResult {
	t.Helper()
	spec := regionsTestSpec(geo)
	spec.Options.Shards = shards
	spec.Options.Sequential = sequential
	res, err := newRegionsEngine(t, spec).RunDay(regionsWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRegionsGoldenReplay pins the two-region blackout replay with
// cross-region spill against the committed golden: the multi-region
// outage path must stay byte-identical across refactors, exactly as
// the single-region goldens pin the core replay. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/fleet -run TestRegionsGoldenReplay
// only when the replay semantics change deliberately.
func TestRegionsGoldenReplay(t *testing.T) {
	got := runRegions(t, GeoSpill, 4, true)
	const path = "testdata/golden_regions.json"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want := loadGolden(t, path)
	if !reflect.DeepEqual(got, want) {
		t.Error("two-region spill replay diverged from the committed golden (UPDATE_GOLDEN=1 to regenerate after a deliberate change)")
	}
}

// TestRegionsParallelDeterminism: the lockstep multi-region replay
// must keep the engine's core guarantee — parallel equals sequential
// bit for bit — at every shard count, including through a blackout
// with cross-region spill in force.
func TestRegionsParallelDeterminism(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		seq := runRegions(t, GeoSpill, shards, true)
		par := runRegions(t, GeoSpill, shards, false)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("shards=%d: parallel multi-region replay diverged from sequential", shards)
		}
	}
}

// TestRegionsSpillBeatsLocal is the failover claim itself: during a
// full-region blackout, spilling to the survivor must serve traffic
// the local-only policy can only drop.
func TestRegionsSpillBeatsLocal(t *testing.T) {
	local := runRegions(t, GeoLocal, 4, true)
	spill := runRegions(t, GeoSpill, 4, true)
	if local.SpillInServed != 0 || local.SpillInDropped != 0 {
		t.Errorf("local-only geo must never spill (served %d, dropped %d)",
			local.SpillInServed, local.SpillInDropped)
	}
	if spill.SpillInServed == 0 {
		t.Error("spill geo served no remote queries through the blackout")
	}
	if spill.DropFrac >= local.DropFrac {
		t.Errorf("spill must strictly reduce the global drop fraction: spill %.4f vs local %.4f",
			spill.DropFrac, local.DropFrac)
	}
	if len(spill.Regions) != 2 {
		t.Fatalf("global result carries %d region results, want 2", len(spill.Regions))
	}
	east, west := spill.Regions[0], spill.Regions[1]
	if east.Region != "east" || west.Region != "west" {
		t.Fatalf("region labels %q/%q, want east/west", east.Region, west.Region)
	}
	if west.SpillInServed == 0 {
		t.Error("west (the survivor) must have served east's spilled queries")
	}
	if got := east.TotalQueries + west.TotalQueries; got != spill.TotalQueries {
		t.Errorf("global queries %d != sum of regions %d", spill.TotalQueries, got)
	}
}

// TestMultiEngineSingleRegionDelegates: a one-region MultiEngine must
// reproduce the plain Engine's replay byte for byte — the guarantee
// that wrapping a legacy spec in the multi-region API changes labels,
// never results.
func TestMultiEngineSingleRegionDelegates(t *testing.T) {
	opts := testOpts()
	opts.Shards = 4
	spec := Spec{Router: PowerOfTwo, Policy: "greedy", Models: []string{"DLRM-RMC1"},
		HeadroomR: 0.05, Options: opts}
	ws := goldenWorkloads()
	plain, err := testEngine(PowerOfTwo, opts).RunDay(ws)
	if err != nil {
		t.Fatal(err)
	}
	me := newRegionsEngine(t, spec)
	if len(me.Engines) != 1 {
		t.Fatalf("legacy spec built %d engines, want 1", len(me.Engines))
	}
	res, err := me.RunDay([][]cluster.Workload{ws})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 1 {
		t.Fatalf("single-region result carries %d regions, want 1", len(res.Regions))
	}
	regional := res.Regions[0]
	if regional.Region != "local" || regional.Geo != GeoLocal {
		t.Errorf("implicit region labelled %q/%q, want local/local", regional.Region, regional.Geo)
	}
	regional.Region, regional.Geo = "", ""
	if !reflect.DeepEqual(regional, plain) {
		t.Error("single-region MultiEngine replay diverged from the plain Engine")
	}
}

// TestSpecNormalizeLegacy: a legacy region-less spec canonicalizes to
// one implicit region named "local" on its fleet, gets the current
// spec version stamped, and normalizing again is the identity.
func TestSpecNormalizeLegacy(t *testing.T) {
	n, err := (Spec{Fleet: "small"}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.SpecVersion != SpecVersionCurrent {
		t.Errorf("SpecVersion = %d, want %d", n.SpecVersion, SpecVersionCurrent)
	}
	if len(n.Regions) != 1 || n.Regions[0].Name != "local" || n.Regions[0].Fleet != "small" {
		t.Errorf("legacy spec normalized to regions %+v, want one implicit local region on the spec's fleet", n.Regions)
	}
	if n.Geo != GeoLocal {
		t.Errorf("Geo defaulted to %q, want %q", n.Geo, GeoLocal)
	}
	again, err := n.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, n) {
		t.Error("Normalize is not idempotent")
	}
}

func TestSpecNormalizeErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"future version", Spec{SpecVersion: SpecVersionCurrent + 1}},
		{"unnamed region", Spec{Regions: []RegionSpec{{}}}},
		{"duplicate region", Spec{Regions: []RegionSpec{{Name: "a"}, {Name: "a"}}}},
		{"rtt to unknown region", Spec{Regions: []RegionSpec{{Name: "a", RTTMS: map[string]float64{"nope": 5}}}}},
	} {
		if _, err := tc.spec.Normalize(); err == nil {
			t.Errorf("%s: Normalize accepted an invalid spec", tc.name)
		}
	}
}

// TestSpecNormalizeDoesNotMutate: Normalize must copy the regions
// slice before filling per-region defaults — a value-receiver Spec
// still shares slice backing arrays with the caller's.
func TestSpecNormalizeDoesNotMutate(t *testing.T) {
	regions := []RegionSpec{{Name: "east"}}
	spec := Spec{Fleet: "small", Regions: regions}
	if _, err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	if regions[0].Fleet != "" {
		t.Error("Normalize mutated the caller's regions slice")
	}
}

// TestCommittedSpecNormalizeRoundTrip: the committed testdata spec
// (the CLI smoke spec) must decode, normalize as a legacy document,
// and replay byte-identically whether the engine is built from the
// raw or the normalized form — the backwards-compatibility contract
// for every spec file written before regions existed.
func TestCommittedSpecNormalizeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full smoke-spec replay")
	}
	data, err := os.ReadFile("../../testdata/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	var raw Spec
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw.SpecVersion != 0 || len(raw.Regions) != 0 {
		t.Fatalf("smoke.json is expected to be a legacy (pre-regions) spec, got version %d with %d regions",
			raw.SpecVersion, len(raw.Regions))
	}
	norm, err := raw.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	run := func(s Spec) DayResult {
		e, err := NewEngine(s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunDay(e.Workloads())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if got, want := run(norm), run(raw); !reflect.DeepEqual(got, want) {
		t.Error("normalized smoke spec replays differently from the raw legacy spec")
	}
}

// TestRegionsSpecJSONRoundTrip extends the spec-file guarantee to the
// multi-region form: marshal, decode, rebuild, replay — identical.
func TestRegionsSpecJSONRoundTrip(t *testing.T) {
	spec := regionsTestSpec(GeoSpill)
	direct, err := newRegionsEngine(t, spec).RunDay(regionsWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Spec
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := newRegionsEngine(t, decoded).RunDay(regionsWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, rebuilt) {
		t.Fatal("multi-region spec JSON round trip changed the replay")
	}
}

// TestMultiEngineRejects: the construction-time error contract.
func TestMultiEngineRejects(t *testing.T) {
	trace := regionsTestSpec(GeoSpill)
	trace.Trace = "testdata/golden_arrivals.ndjson"
	unknownGeo := regionsTestSpec("warp")
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"recorded trace with regions", trace},
		{"unknown geo policy", unknownGeo},
	} {
		if _, err := NewMultiEngine(tc.spec, WithFleet(testFleet()), WithTable(testTable())); err == nil {
			t.Errorf("%s: NewMultiEngine accepted the spec", tc.name)
		}
	}
	multiSpec := regionsTestSpec(GeoSpill)
	if _, err := NewEngine(multiSpec, WithFleet(testFleet()), WithTable(testTable())); err == nil {
		t.Error("NewEngine accepted a multi-region spec (want a pointer to NewMultiEngine)")
	}
}

// approxDay compares the numeric fields two merge orders may round
// differently, within tolerance, and everything else exactly.
func approxDay(t *testing.T, a, b DayResult) {
	t.Helper()
	near := func(name string, x, y float64) {
		t.Helper()
		if math.Abs(x-y) > 1e-9*math.Max(1, math.Max(math.Abs(x), math.Abs(y))) {
			t.Errorf("%s: %g vs %g", name, x, y)
		}
	}
	near("MeanP95MS", a.MeanP95MS, b.MeanP95MS)
	near("MeanP99MS", a.MeanP99MS, b.MeanP99MS)
	near("DropFrac", a.DropFrac, b.DropFrac)
	near("CacheHitRate", a.CacheHitRate, b.CacheHitRate)
	near("SLAViolationMin", a.SLAViolationMin, b.SLAViolationMin)
	near("EnergyKJ", a.EnergyKJ, b.EnergyKJ)
	near("ProvisionedEnergyKJ", a.ProvisionedEnergyKJ, b.ProvisionedEnergyKJ)
	a.MeanP95MS, a.MeanP99MS, a.DropFrac, a.CacheHitRate = 0, 0, 0, 0
	b.MeanP95MS, b.MeanP99MS, b.DropFrac, b.CacheHitRate = 0, 0, 0, 0
	a.SLAViolationMin, a.EnergyKJ, a.ProvisionedEnergyKJ = 0, 0, 0
	b.SLAViolationMin, b.EnergyKJ, b.ProvisionedEnergyKJ = 0, 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("merge orders disagree beyond float rounding:\n%+v\nvs\n%+v", a, b)
	}
}

// TestMergeDaysAssociativity pins the merge algebra: folding regions
// pairwise must agree with merging them all at once (up to float
// rounding), so partial aggregation — streaming regions in, merging
// hierarchically — is sound.
func TestMergeDaysAssociativity(t *testing.T) {
	a := DayResult{Router: "p2c", Policy: "greedy", Scenario: "s",
		TotalQueries: 1000, TotalDrops: 10, TotalShed: 5, TotalCacheHits: 100,
		MeanP95MS: 8, MeanP99MS: 12, MaxP95MS: 20, MaxP99MS: 30,
		SLAViolationMin: 3, EnergyKJ: 50, ProvisionedEnergyKJ: 80,
		Reprovisions: 4, EarlyReprovisions: 1, AutoscaleEvents: 2,
		BoostedIntervals: 3, SpillInServed: 40, SpillInDropped: 2, Region: "a"}
	b := DayResult{Router: "p2c", Policy: "greedy", Scenario: "s",
		TotalQueries: 4000, TotalDrops: 400, TotalShed: 0, TotalCacheHits: 50,
		MeanP95MS: 15, MeanP99MS: 22, MaxP95MS: 45, MaxP99MS: 60,
		SLAViolationMin: 12, EnergyKJ: 200, ProvisionedEnergyKJ: 260,
		Reprovisions: 4, EarlyReprovisions: 2, AutoscaleEvents: 5,
		BoostedIntervals: 6, SpillInServed: 0, SpillInDropped: 0, Region: "b"}
	c := DayResult{Router: "p2c", Policy: "greedy", Scenario: "s",
		TotalQueries: 200, TotalDrops: 1, TotalShed: 2, TotalCacheHits: 20,
		MeanP95MS: 5, MeanP99MS: 7, MaxP95MS: 9, MaxP99MS: 11,
		SLAViolationMin: 0, EnergyKJ: 10, ProvisionedEnergyKJ: 18,
		Reprovisions: 4, EarlyReprovisions: 0, AutoscaleEvents: 0,
		BoostedIntervals: 0, SpillInServed: 3, SpillInDropped: 1, Region: "c"}

	flat := MergeDays(a, b, c)
	leftFold := MergeDays(MergeDays(a, b), c)
	rightFold := MergeDays(a, MergeDays(b, c))
	approxDay(t, flat, leftFold)
	approxDay(t, flat, rightFold)

	if flat.TotalQueries != 5200 || flat.TotalDrops != 411 {
		t.Errorf("merged totals wrong: %d queries, %d drops", flat.TotalQueries, flat.TotalDrops)
	}
	if flat.MaxP99MS != 60 {
		t.Errorf("MaxP99MS = %g, want the max of maxes 60", flat.MaxP99MS)
	}
	wantMean := (8*1000.0 + 15*4000 + 5*200) / 5200.0
	if math.Abs(flat.MeanP95MS-wantMean) > 1e-12 {
		t.Errorf("MeanP95MS = %g, want the query-weighted %g", flat.MeanP95MS, wantMean)
	}
	if flat.Region != "" {
		t.Errorf("merged result kept region label %q", flat.Region)
	}
	if MergeDays(a).Region != "" {
		t.Error("single-part merge kept its region label")
	}
}
