package lp

import (
	"math"
	"testing"
	"testing/quick"

	"hercules/internal/stats"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestSimpleLE(t *testing.T) {
	// max x+y s.t. x≤2, y≤3  →  min -(x+y); optimum (2,3).
	s := solveOK(t, Problem{
		C:   []float64{-1, -1},
		A:   [][]float64{{1, 0}, {0, 1}},
		B:   []float64{2, 3},
		Rel: []Relation{LE, LE},
	})
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-3) > 1e-6 {
		t.Fatalf("x = %v, want (2,3)", s.X)
	}
	if math.Abs(s.Objective+5) > 1e-6 {
		t.Fatalf("objective = %v, want -5", s.Objective)
	}
}

func TestGEConstraints(t *testing.T) {
	// min 2x+3y s.t. x+y ≥ 10, x ≤ 4  →  x=4, y=6, obj=26.
	s := solveOK(t, Problem{
		C:   []float64{2, 3},
		A:   [][]float64{{1, 1}, {1, 0}},
		B:   []float64{10, 4},
		Rel: []Relation{GE, LE},
	})
	if math.Abs(s.Objective-26) > 1e-6 {
		t.Fatalf("objective = %v, want 26 (x=%v)", s.Objective, s.X)
	}
}

func TestEquality(t *testing.T) {
	// min x+y s.t. x+2y = 4, x ≥ 0, y ≥ 0 → y=2, x=0, obj=2.
	s := solveOK(t, Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 2}},
		B:   []float64{4},
		Rel: []Relation{EQ},
	})
	if math.Abs(s.Objective-2) > 1e-6 {
		t.Fatalf("objective = %v, want 2", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2 cannot hold.
	s, err := Solve(Problem{
		C:   []float64{1},
		A:   [][]float64{{1}, {1}},
		B:   []float64{1, 2},
		Rel: []Relation{LE, GE},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x unconstrained above.
	s, err := Solve(Problem{
		C:   []float64{-1},
		A:   [][]float64{{1}},
		B:   []float64{1},
		Rel: []Relation{GE},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x ≤ -3  ⇔  x ≥ 3; min x → 3.
	s := solveOK(t, Problem{
		C:   []float64{1},
		A:   [][]float64{{-1}},
		B:   []float64{-3},
		Rel: []Relation{LE},
	})
	if math.Abs(s.X[0]-3) > 1e-6 {
		t.Fatalf("x = %v, want 3", s.X[0])
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Problem{
		{},
		{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, Rel: []Relation{LE}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}, Rel: []Relation{LE}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("problem %d must fail validation", i)
		}
	}
}

func TestDegenerateTies(t *testing.T) {
	// Degenerate vertex: multiple constraints meet; Bland's rule must
	// still terminate.
	s := solveOK(t, Problem{
		C: []float64{-1, -1, -1},
		A: [][]float64{
			{1, 1, 0},
			{1, 1, 0},
			{0, 0, 1},
		},
		B:   []float64{5, 5, 2},
		Rel: []Relation{LE, LE, LE},
	})
	if math.Abs(s.Objective+7) > 1e-6 {
		t.Fatalf("objective = %v, want -7", s.Objective)
	}
}

func TestProvisioningShape(t *testing.T) {
	// A miniature of the Hercules provisioning LP: 2 server types × 2
	// workloads. QPS: T1 serves A at 100, B at 50; T2 serves A at 300,
	// B at 400. Power: T1 150 W, T2 500 W. Loads: A 1000, B 800.
	// Availability: 20 T1, 4 T2.
	// Variables: N[t1,a], N[t1,b], N[t2,a], N[t2,b].
	p := Problem{
		C: []float64{150, 150, 500, 500},
		A: [][]float64{
			{100, 0, 300, 0}, // QPS for A
			{0, 50, 0, 400},  // QPS for B
			{1, 1, 0, 0},     // T1 availability
			{0, 0, 1, 1},     // T2 availability
		},
		B:   []float64{1000, 800, 20, 4},
		Rel: []Relation{GE, GE, LE, LE},
	}
	s := solveOK(t, p)
	// Check feasibility of the returned plan.
	if s.X[0]*100+s.X[2]*300 < 1000-1e-6 {
		t.Errorf("load A unmet: %v", s.X)
	}
	if s.X[1]*50+s.X[3]*400 < 800-1e-6 {
		t.Errorf("load B unmet: %v", s.X)
	}
	if s.X[0]+s.X[1] > 20+1e-6 || s.X[2]+s.X[3] > 4+1e-6 {
		t.Errorf("availability violated: %v", s.X)
	}
	// B is far more power-efficient on T2 (400 QPS / 500 W vs 50/150):
	// the optimum must give T2 capacity to B first.
	if s.X[3] < 1 {
		t.Errorf("expected T2 prioritized for workload B: %v", s.X)
	}
}

func TestRandomProblemsFeasibleSolutions(t *testing.T) {
	// Property: when the solver reports Optimal, the solution satisfies
	// every constraint and is non-negative.
	r := stats.NewRand(99)
	f := func(seed uint32) bool {
		n := 2 + int(seed%4)
		m := 1 + int(seed%3)
		p := Problem{
			C:   make([]float64, n),
			A:   make([][]float64, m),
			B:   make([]float64, m),
			Rel: make([]Relation, m),
		}
		for j := 0; j < n; j++ {
			p.C[j] = r.Float64() * 10
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				p.A[i][j] = r.Float64() * 5
			}
			p.B[i] = r.Float64() * 20
			if r.Intn(2) == 0 {
				p.Rel[i] = LE
			} else {
				p.Rel[i] = GE
			}
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		if s.Status != Optimal {
			return true // infeasible/unbounded is acceptable for random problems
		}
		for j := 0; j < n; j++ {
			if s.X[j] < -1e-7 {
				return false
			}
		}
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := 0; j < n; j++ {
				dot += p.A[i][j] * s.X[j]
			}
			switch p.Rel[i] {
			case LE:
				if dot > p.B[i]+1e-6 {
					return false
				}
			case GE:
				if dot < p.B[i]-1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(9).String() == "" {
		t.Fatal("status strings wrong")
	}
}

func TestHerculesScaleProblem(t *testing.T) {
	// The production-size provisioning LP: 10 server types × 6 workloads
	// = 60 variables, 16 constraints. Simplex must solve it instantly
	// and produce a feasible, integral-repairable plan.
	const H, M = 10, 6
	nv := H * M
	p := Problem{C: make([]float64, nv)}
	qps := make([]float64, nv)
	r := stats.NewRand(7)
	for h := 0; h < H; h++ {
		for m := 0; m < M; m++ {
			j := h*M + m
			qps[j] = 100 + r.Float64()*5000
			p.C[j] = 100 + r.Float64()*500
		}
	}
	for m := 0; m < M; m++ {
		row := make([]float64, nv)
		for h := 0; h < H; h++ {
			row[h*M+m] = qps[h*M+m]
		}
		p.A = append(p.A, row)
		p.B = append(p.B, 20000+r.Float64()*30000)
		p.Rel = append(p.Rel, GE)
	}
	for h := 0; h < H; h++ {
		row := make([]float64, nv)
		for m := 0; m < M; m++ {
			row[h*M+m] = 1
		}
		p.A = append(p.A, row)
		p.B = append(p.B, 40)
		p.Rel = append(p.Rel, LE)
	}
	s := solveOK(t, p)
	// Every load constraint satisfied.
	for m := 0; m < M; m++ {
		var dot float64
		for h := 0; h < H; h++ {
			dot += qps[h*M+m] * s.X[h*M+m]
		}
		if dot < p.B[m]-1e-6 {
			t.Fatalf("load %d unmet: %v < %v", m, dot, p.B[m])
		}
	}
	// Objective must be strictly cheaper than a naive all-on-one-type plan.
	naive := 0.0
	for m := 0; m < M; m++ {
		naive += p.B[m] / qps[m] * p.C[m] // serve everything on type 0
	}
	if s.Objective >= naive {
		t.Fatalf("LP (%v) no better than naive single-type plan (%v)", s.Objective, naive)
	}
}

func TestDualityGapSpotCheck(t *testing.T) {
	// Weak-duality sanity: the reported objective equals c·x recomputed
	// from the returned solution (no tableau drift).
	p := Problem{
		C:   []float64{3, 5, 4},
		A:   [][]float64{{2, 3, 0}, {0, 2, 4}, {3, 2, 5}},
		B:   []float64{8, 10, 15},
		Rel: []Relation{LE, LE, LE},
	}
	p.C = []float64{-3, -5, -4} // maximize 3x+5y+4z
	s := solveOK(t, p)
	var dot float64
	for j := range s.X {
		dot += p.C[j] * s.X[j]
	}
	if math.Abs(dot-s.Objective) > 1e-9 {
		t.Fatalf("objective drift: %v vs %v", dot, s.Objective)
	}
}
