// Package lp provides a dense two-phase primal simplex solver for the
// small linear programs the Hercules cluster provisioner solves every
// re-provisioning interval (§IV-C, Equations 1–3). The paper uses an
// interior-point solver; at our problem sizes (H×M ≤ a few hundred
// variables) simplex reaches the same optimum exactly.
//
// Problems are stated in the natural form
//
//	minimize    c·x
//	subject to  A_i·x (≤ | = | ≥) b_i,   x ≥ 0
//
// and converted internally to standard form with slack, surplus and
// artificial variables. Bland's rule guarantees termination.
//
// The surface: fill a Problem (objective C, rows A/B with a Relation
// each), call Solve, and inspect the Solution's Status (Optimal,
// Infeasible, Unbounded) and primal point X. internal/cluster's
// Hercules policy is the only production consumer; it repairs the
// relaxed solution to integers itself.
package lp
