package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is a constraint comparator.
type Relation int

// Constraint relations.
const (
	LE Relation = iota // ≤
	GE                 // ≥
	EQ                 // =
)

// Problem is a linear program in natural form.
type Problem struct {
	C   []float64   // objective coefficients (length n)
	A   [][]float64 // constraint matrix (m rows × n cols)
	B   []float64   // right-hand sides (length m)
	Rel []Relation  // row relations (length m)
}

// Status reports the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the solver result.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// Validate checks problem dimensions.
func (p Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: empty objective")
	}
	if len(p.A) != len(p.B) || len(p.A) != len(p.Rel) {
		return errors.New("lp: inconsistent constraint dimensions")
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d cols, want %d", i, len(row), n)
		}
	}
	return nil
}

// tableau is the standard-form simplex tableau.
type tableau struct {
	rows, cols int // constraint rows, total variables (excl. RHS)
	a          [][]float64
	basis      []int
	nOrig      int
	artStart   int // first artificial-variable column
}

// Solve runs two-phase primal simplex.
func Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	m, n := len(p.A), len(p.C)

	// Normalize to non-negative RHS.
	a := make([][]float64, m)
	b := make([]float64, m)
	rel := make([]Relation, m)
	for i := range p.A {
		a[i] = append([]float64(nil), p.A[i]...)
		b[i] = p.B[i]
		rel[i] = p.Rel[i]
		if b[i] < 0 {
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
			switch rel[i] {
			case LE:
				rel[i] = GE
			case GE:
				rel[i] = LE
			}
		}
	}

	// Count extra columns: one slack/surplus per inequality, one
	// artificial per GE/EQ row.
	nSlack, nArt := 0, 0
	for _, r := range rel {
		if r != EQ {
			nSlack++
		}
		if r != LE {
			nArt++
		}
	}
	cols := n + nSlack + nArt
	t := &tableau{rows: m, cols: cols, nOrig: n, artStart: n + nSlack}
	t.a = make([][]float64, m+1)
	for i := range t.a {
		t.a[i] = make([]float64, cols+1)
	}
	t.basis = make([]int, m)

	slack := n
	art := n + nSlack
	for i := 0; i < m; i++ {
		copy(t.a[i], a[i])
		t.a[i][cols] = b[i]
		switch rel[i] {
		case LE:
			t.a[i][slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			t.a[i][slack] = -1
			slack++
			t.a[i][art] = 1
			t.basis[i] = art
			art++
		case EQ:
			t.a[i][art] = 1
			t.basis[i] = art
			art++
		}
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		obj := t.a[m]
		for j := range obj {
			obj[j] = 0
		}
		for j := t.artStart; j < cols; j++ {
			obj[j] = 1
		}
		// Price out the basic artificials.
		for i := 0; i < m; i++ {
			if t.basis[i] >= t.artStart {
				for j := 0; j <= cols; j++ {
					obj[j] -= t.a[i][j]
				}
			}
		}
		if !t.iterate() {
			return Solution{Status: Unbounded}, nil // cannot happen in phase 1
		}
		if t.a[m][cols] < -eps {
			return Solution{Status: Infeasible}, nil
		}
		// Drive any remaining artificial out of the basis.
		for i := 0; i < m; i++ {
			if t.basis[i] >= t.artStart {
				pivoted := false
				for j := 0; j < t.artStart; j++ {
					if math.Abs(t.a[i][j]) > eps {
						t.pivot(i, j)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Redundant row; leave the artificial at zero.
					continue
				}
			}
		}
	}

	// Phase 2: minimize the real objective with artificials pinned out.
	obj := t.a[m]
	for j := range obj {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = p.C[j]
	}
	// Price out basic variables.
	for i := 0; i < m; i++ {
		bj := t.basis[i]
		if math.Abs(obj[bj]) > eps {
			f := obj[bj]
			for j := 0; j <= cols; j++ {
				obj[j] -= f * t.a[i][j]
			}
		}
	}
	if !t.iteratePhase2() {
		return Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if t.basis[i] < n {
			x[t.basis[i]] = t.a[i][cols]
		}
	}
	var objV float64
	for j := 0; j < n; j++ {
		objV += p.C[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: objV}, nil
}

// iterate runs simplex iterations (phase 1: artificials allowed as
// entering columns). Returns false on unboundedness.
func (t *tableau) iterate() bool { return t.run(t.cols) }

// iteratePhase2 excludes artificial columns from entering.
func (t *tableau) iteratePhase2() bool { return t.run(t.artStart) }

// run performs simplex pivots with Bland's rule over columns [0, jMax).
func (t *tableau) run(jMax int) bool {
	m, cols := t.rows, t.cols
	for iter := 0; iter < 10000*(m+cols); iter++ {
		// Bland: smallest-index column with negative reduced cost.
		enter := -1
		for j := 0; j < jMax; j++ {
			if t.a[m][j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return true // optimal
		}
		// Ratio test, Bland tie-break on basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.a[i][cols] / t.a[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return false // unbounded
		}
		t.pivot(leave, enter)
	}
	return true // iteration guard; practically unreachable
}

// pivot performs a Gauss–Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	cols := t.cols
	pv := t.a[row][col]
	inv := 1 / pv
	for j := 0; j <= cols; j++ {
		t.a[row][j] *= inv
	}
	t.a[row][col] = 1 // exactness
	for i := 0; i <= t.rows; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if math.Abs(f) < eps {
			continue
		}
		for j := 0; j <= cols; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.a[i][col] = 0
	}
	if row < t.rows {
		t.basis[row] = col
	}
}
