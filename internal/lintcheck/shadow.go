package lintcheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShadowAnalyzer is a local reimplementation of the stock
// golang.org/x/tools shadow pass (this module takes no dependencies,
// so the upstream multichecker passes cannot be imported; the
// behaviour is kept deliberately close). It reports a := or var
// declaration inside a function that shadows an earlier same-typed
// variable from an enclosing function scope, when the shadowed
// variable is still used after the inner scope ends — the case where
// reading the wrong variable is both likely and silent (the classic
// `err := ...` inside a block that leaves the outer err unchecked).
// Package-level shadowing is not reported.
var ShadowAnalyzer = &Analyzer{
	Name: "shadow",
	Doc: "report declarations that shadow a same-typed variable from an enclosing function " +
		"scope when the shadowed variable is used after the inner scope ends",
	Run: runShadow,
}

func runShadow(pass *Pass) error {
	// Index uses by object once: the "outer variable used later" test
	// needs the position of every use.
	lastUse := make(map[types.Object]token.Pos)
	for ident, obj := range pass.TypesInfo.Uses {
		if p, ok := lastUse[obj]; !ok || ident.Pos() > p {
			lastUse[obj] = ident.Pos()
		}
	}
	pkgScope := pass.Pkg.Scope()
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if x.Tok != token.DEFINE {
					return true
				}
				// The scoped-error idiom `if err := f(); err != nil`
				// (and its for/switch siblings) confines the shadow to
				// the statement by construction: exempt init clauses.
				if len(stack) > 0 {
					switch parent := stack[len(stack)-1].(type) {
					case *ast.IfStmt:
						if parent.Init == n {
							return true
						}
					case *ast.ForStmt:
						if parent.Init == n {
							return true
						}
					case *ast.SwitchStmt:
						if parent.Init == n {
							return true
						}
					case *ast.TypeSwitchStmt:
						if parent.Init == n {
							return true
						}
					}
				}
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						checkShadow(pass, pkgScope, lastUse, id)
					}
				}
			case *ast.GenDecl:
				if x.Tok != token.VAR {
					return true
				}
				for _, spec := range x.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, id := range vs.Names {
						checkShadow(pass, pkgScope, lastUse, id)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkShadow reports ident if it shadows an outer function-scope
// variable that outlives (and is used after) ident's scope.
func checkShadow(pass *Pass, pkgScope *types.Scope, lastUse map[types.Object]token.Pos, ident *ast.Ident) {
	if ident.Name == "_" {
		return
	}
	obj, ok := pass.TypesInfo.Defs[ident].(*types.Var)
	if !ok || obj.Parent() == nil {
		return
	}
	inner := obj.Parent()
	if inner == pkgScope {
		return // package-level declarations cannot shadow
	}
	for sc := inner.Parent(); sc != nil && sc != pkgScope; sc = sc.Parent() {
		prev, ok := sc.Lookup(ident.Name).(*types.Var)
		if !ok {
			continue
		}
		if prev.Parent() == pkgScope || prev.Pos() == token.NoPos || prev.Pos() >= obj.Pos() {
			return // package var, or declared later: not a shadow hazard
		}
		if !types.Identical(prev.Type(), obj.Type()) {
			return // different types: a use of the wrong one won't compile silently
		}
		if use, ok := lastUse[prev]; ok && use > inner.End() {
			pass.Reportf(ident.Pos(),
				"declaration of %q shadows declaration at %s; the outer variable is used after this scope ends",
				ident.Name, pass.Fset.Position(prev.Pos()))
		}
		return
	}
}
