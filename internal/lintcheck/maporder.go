package lintcheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MaporderAnalyzer enforces the map-iteration-order contract: ranging
// over a map is fine for commutative aggregation (sums, counters, map
// writes), but the moment the body appends to a slice, writes an
// exported result field, emits telemetry or writes output, the map's
// random iteration order leaks into observable state — the classic
// silent killer of replay byte-identity. The loop is accepted when a
// deterministic sort follows it in the same block (the collect-then-
// sort idiom); otherwise iterate over sorted keys.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "forbid ranging over a map when the body appends, writes exported fields or emits " +
		"output/telemetry, unless a deterministic sort follows in the same block",
	Run: runMaporder,
}

// fmtPrintFuncs are the fmt functions whose call inside a map range
// emits output in iteration order.
var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writerMethods are method names treated as emission sinks: once
// bytes or events leave through one of these in map order, the output
// is nondeterministic.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteEvents": true,
	"Encode": true, "Emit": true, "Export": true,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			sinkPos, sinkDesc := mapOrderSink(pass, rs.Body)
			if sinkPos == token.NoPos {
				return true
			}
			if sortFollows(pass, rs, stack) {
				return true
			}
			pass.Reportf(rs.For,
				"map iteration order reaches an order-sensitive sink (%s, line %d) with no deterministic sort afterwards; range over sorted keys or sort the result",
				sinkDesc, pass.Fset.Position(sinkPos).Line)
			return true
		})
	}
	return nil
}

// mapOrderSink scans a map-range body for the first statement whose
// effect depends on iteration order.
func mapOrderSink(pass *Pass, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var desc string
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					// Appending to a slice declared inside the loop
					// body is per-iteration accumulation (typically
					// stored back under the loop key) and carries no
					// cross-iteration order; only slices that outlive
					// the body observe iteration order.
					if len(x.Args) > 0 && declaredOutside(pass, x.Args[0], body) {
						pos, desc = x.Pos(), "append to a slice"
						return false
					}
				}
			}
			if fn := calleeFunc(pass, x); fn != nil && fn.Pkg() != nil {
				sig, _ := fn.Type().(*types.Signature)
				isMethod := sig != nil && sig.Recv() != nil
				switch {
				case fn.Pkg().Path() == "fmt" && !isMethod && fmtPrintFuncs[fn.Name()]:
					pos, desc = x.Pos(), "fmt."+fn.Name()+" output"
					return false
				case isMethod && writerMethods[fn.Name()]:
					pos, desc = x.Pos(), "writer/emitter call ("+fn.Name()+")"
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !ast.IsExported(sel.Sel.Name) {
					continue
				}
				// Writing a constant (res.Satisfied = false) is an
				// order-insensitive fold; map index writes
				// (snap.Counters[k] = v) are keyed and unflagged. Only
				// a loop-dependent value written through a selector
				// observes iteration order.
				if i < len(x.Rhs) {
					if tv, ok := pass.TypesInfo.Types[x.Rhs[i]]; ok && tv.Value != nil {
						continue
					}
				}
				// Compound integer folds (res.N += n) are exactly
				// commutative; float and string folds are not.
				if x.Tok != token.ASSIGN {
					if b, ok := pass.TypesInfo.TypeOf(sel).Underlying().(*types.Basic); ok &&
						b.Info()&(types.IsInteger|types.IsBoolean) != 0 {
						continue
					}
				}
				if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
					pos, desc = lhs.Pos(), "exported field write ("+sel.Sel.Name+")"
					return false
				}
			}
		}
		return true
	})
	return pos, desc
}

// declaredOutside reports whether the expression's root variable was
// declared outside the given body (true also when the root cannot be
// resolved — unknown targets are assumed to escape).
func declaredOutside(pass *Pass, e ast.Expr, body *ast.BlockStmt) bool {
	root := rootIdent(ast.Unparen(e))
	if root == nil {
		return true
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = pass.TypesInfo.Defs[root]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < body.Pos() || obj.Pos() >= body.End()
}

// sortFollows reports whether a deterministic sort (package sort or
// slices, or a Sort method) appears after the range statement in its
// enclosing block — the collect-then-sort idiom.
func sortFollows(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	// Find the statement list holding rs (possibly via a LabeledStmt).
	var in ast.Stmt = rs
	for i := len(stack) - 1; i >= 0; i-- {
		var stmts []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.LabeledStmt:
			in = b
			continue
		case *ast.BlockStmt:
			stmts = b.List
		case *ast.CaseClause:
			stmts = b.Body
		case *ast.CommClause:
			stmts = b.Body
		default:
			return false
		}
		idx := -1
		for j, s := range stmts {
			if s == in {
				idx = j
				break
			}
		}
		if idx < 0 {
			return false
		}
		for _, s := range stmts[idx+1:] {
			if callsSort(pass, s) {
				return true
			}
		}
		return false
	}
	return false
}

// callsSort reports whether the statement (or anything inside it)
// calls into package sort or slices, or a method named Sort.
func callsSort(pass *Pass, s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p == "sort" || p == "slices" || fn.Name() == "Sort" {
			found = true
			return false
		}
		return true
	})
	return found
}
