package lintcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
// Only the package's non-test GoFiles are loaded: the determinism and
// registry contracts bind production code; tests are exempt (they pin
// the contracts dynamically and may construct policies directly).
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList enumerates the packages matched by patterns plus their full
// dependency closure, with compiled export data for every dependency —
// the stdlib-only substitute for go/packages: type-checking imports
// from export data needs no network and no module dependencies.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files go list
// reported, via the standard gc importer.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load lists, parses and type-checks the packages matched by patterns
// (go list syntax, e.g. "./..."), rooted at dir ("" = cwd).
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, lp := range listed {
		if lp.Standard || lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// typecheck parses the named files and type-checks them as one package.
func typecheck(fset *token.FileSet, imp types.Importer, importPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: type-checking: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
