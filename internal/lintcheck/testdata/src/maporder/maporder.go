// Package maporder is the map-iteration-order fixture: order-sensitive
// sinks inside a map range are flagged unless a deterministic sort
// follows; commutative folds and keyed writes stay legal.
package maporder

import (
	"fmt"
	"sort"
)

type result struct {
	Names []string
	Total int
	Mean  float64
}

type emitter struct{}

func (emitter) Emit(s string) {}

func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "append to a slice"
		out = append(out, k)
	}
	return out
}

func collectSorted(m map[string]int) []string {
	var out []string
	for k := range m { // collect-then-sort: legal
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative local fold: legal
		total += v
	}
	return total
}

func exportedWrite(m map[string]float64, res *result) {
	for _, v := range m { // want "exported field write"
		res.Mean = v * 0.5
	}
}

func exportedIntFold(m map[string]int, res *result) {
	for _, v := range m { // integer += is commutative: legal
		res.Total += v
	}
}

func printAll(m map[string]int) {
	for k := range m { // want "fmt\\.Println output"
		fmt.Println(k)
	}
}

func emitAll(m map[string]int, e emitter) {
	for k := range m { // want "writer/emitter call"
		e.Emit(k)
	}
}

func perKey(m map[string][]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, vs := range m { // keyed write + loop-local append: legal
		var doubled []int
		doubled = append(doubled, vs...)
		out[k] = len(doubled)
	}
	return out
}

func allowed(m map[string]int) []string {
	var out []string
	//lint:allow maporder fixture: order is irrelevant downstream
	for k := range m {
		out = append(out, k)
	}
	return out
}
