// Package nilness is the nilness fixture: uses that certainly panic
// inside a branch where the variable is known to be nil.
package nilness

type node struct {
	next *node
	val  int
}

type closer interface{ Close() error }

func fieldThroughNil(p *node) int {
	if p == nil {
		return p.val // want "field access through p"
	}
	return p.val
}

func derefNil(p *int) int {
	if p == nil {
		return *p // want "dereference of p"
	}
	return *p
}

func nilInterface(c closer) {
	if c == nil {
		_ = c.Close() // want "method call on c"
	}
}

func nilSlice(s []int) int {
	if s == nil {
		return s[0] // want "index of s"
	}
	return s[0]
}

func nilMapWrite(m map[string]int) {
	if m == nil {
		m["k"] = 1 // want "write to m"
	}
}

func nilFunc(f func() int) int {
	if f == nil {
		return f() // want "call of f"
	}
	return f()
}

func reassignedFirst(p *node) int {
	if p == nil {
		p = &node{}
		return p.val // reassigned above: legal
	}
	return p.val
}

func negatedElse(p *node) int {
	if p != nil {
		return p.val
	} else {
		return p.val // want "field access through p"
	}
}
