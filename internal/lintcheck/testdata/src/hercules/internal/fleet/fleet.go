// Package fleet is the fixture stub of hercules/internal/fleet: just
// enough of the policy/registry/observer surface for the registryuse
// and obscontract fixtures to type-check against the real import path.
package fleet

// The four registered policy axes.

type Router interface{ Pick(n int) int }

type Scaler interface{ Target(load float64) int }

type Admission interface{ Admit(load float64) bool }

type GeoPolicy interface{ Route(region string) string }

// IntervalStats mirrors the real snapshot's shape: scalars plus a
// reference-carrying per-model map.
type IntervalStats struct {
	Queries     int
	P99MS       float64
	CacheWarmth map[string]float64
}

// Observer receives the per-interval stream synchronously.
type Observer interface{ ObserveInterval(ist IntervalStats) }

// ObserverFunc adapts a function to Observer.
type ObserverFunc func(ist IntervalStats)

// ObserveInterval implements Observer.
func (f ObserverFunc) ObserveInterval(ist IntervalStats) { f(ist) }

// RoundRobin names the built-in round-robin router.
const RoundRobin = "round-robin"

// StaticRouter always picks the same replica — a concrete policy the
// consumer fixtures try (illegally) to construct directly.
type StaticRouter struct{ Fixed int }

// Pick implements Router.
func (s StaticRouter) Pick(n int) int { return s.Fixed % n }

type rrRouter struct{ next int }

func (r *rrRouter) Pick(n int) int {
	r.next = (r.next + 1) % n
	return r.next
}

// RegisterRouter installs a router constructor under name.
func RegisterRouter(name string, ctor func() Router) {}

// RegisterScaler installs a scaler constructor under name.
func RegisterScaler(name string, ctor func() Scaler) {}

// RegisterAdmission installs an admission constructor under name.
func RegisterAdmission(name string, ctor func() Admission) {}

// RegisterGeoPolicy installs a geo policy constructor under name.
func RegisterGeoPolicy(name string, ctor func() GeoPolicy) {}

// NewRouter resolves a registered router by name.
func NewRouter(name string) (Router, error) { return &rrRouter{}, nil }

// NewStatic builds the concrete type directly — legal here (its own
// package), a registry bypass anywhere else.
func NewStatic(fixed int) StaticRouter { return StaticRouter{Fixed: fixed} }

func init() {
	RegisterRouter(RoundRobin, func() Router { return &rrRouter{} })
}
