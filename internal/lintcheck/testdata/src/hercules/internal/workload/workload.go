// Package workload is the directive-scoping fixture: //lint:allow
// covers exactly the next statement (or its own line when trailing),
// silences only the analyzer it names, and is itself diagnosed when
// malformed.
package workload

import "time"

func nextStatementOnly() (time.Time, time.Time) {
	//lint:allow wallclock fixture: covers only the next statement
	a := time.Now()
	b := time.Now() // want "time\\.Now reads the wall clock"
	return a, b
}

func wrongAnalyzerName() time.Time {
	//lint:allow maporder fixture: names a different analyzer
	return time.Now() // want "time\\.Now reads the wall clock"
}

func malformedDirectives() time.Time {
	//lint:allow // want "bare //lint:allow"
	//lint:allow wallclock // want "has no reason"
	//lint:allow clockcheck because // want "unknown analyzer"
	return time.Now() // want "time\\.Now reads the wall clock"
}
