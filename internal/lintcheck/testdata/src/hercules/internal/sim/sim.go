// Package sim is the wallclock fixture: it sits on a replay-path
// import path, so wall-clock reads and global RNG draws are flagged
// while explicit seeded sources stay legal.
package sim

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func step() time.Duration {
	start := time.Now()      // want "time\\.Now reads the wall clock"
	_ = rand.Intn(10)        // want "math/rand\\.Intn draws from the process-global RNG"
	_ = randv2.IntN(10)      // want "math/rand/v2\\.IntN draws from the process-global RNG"
	return time.Since(start) // want "time\\.Since reads the wall clock"
}

func seeded() float64 {
	r := rand.New(rand.NewSource(42)) // explicit seeded source: legal
	return r.Float64()
}

func seededV2() uint64 {
	r := randv2.New(randv2.NewPCG(1, 2)) // explicit seeded source: legal
	return r.Uint64()
}

func virtual(interval int, sliceS float64) float64 {
	return float64(interval) * sliceS // virtual time: legal
}

func provenance() time.Time {
	return time.Now() //lint:allow wallclock fixture: provenance stamp outside the replay
}
