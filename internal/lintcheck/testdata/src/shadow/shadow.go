// Package shadow is the shadow fixture: an inner same-typed
// redeclaration is flagged only when the outer variable is still used
// after the inner scope ends.
package shadow

func work() error { return nil }

func flagged() error {
	err := work()
	for i := 0; i < 3; i++ {
		err := work() // want "declaration of .err. shadows declaration"
		_ = err
	}
	return err
}

func viaVar() error {
	err := work()
	{
		var err error // want "declaration of .err. shadows declaration"
		_ = err
	}
	return err
}

func initClause() error {
	err := work()
	if err := work(); err != nil { // init-clause scope is the idiom: legal
		return err
	}
	return err
}

func outerDoneFirst() {
	err := work()
	_ = err
	{
		err := work() // outer err never used again: legal
		_ = err
	}
}

func differentType() error {
	err := work()
	{
		err := 7 // different type, misuse will not compile: legal
		_ = err
	}
	return err
}

func allowed() error {
	err := work()
	{
		err := work() //lint:allow shadow fixture: the inner scope is deliberate
		_ = err
	}
	return err
}
