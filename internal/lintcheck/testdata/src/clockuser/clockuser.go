// Package clockuser is not a replay-path package: the wallclock
// analyzer must stay silent here.
package clockuser

import (
	"math/rand"
	"time"
)

func stamp() time.Time { return time.Now() }

func roll() int { return rand.Intn(6) }
