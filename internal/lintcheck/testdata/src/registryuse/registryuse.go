// Package registryuse is the policy-registry fixture: policies are
// reached through the fleet registry, never constructed directly, and
// Register* calls stay top-level with statically-known names.
package registryuse

import "hercules/internal/fleet"

const customName = "custom"

func init() {
	fleet.RegisterRouter("literal", nil)                          // literal name at init: legal
	fleet.RegisterRouter(customName, nil)                         // constant name at init: legal
	fleet.RegisterRouter(fleet.RoundRobin, nil)                   // imported constant: legal
	fleet.RegisterRouter(pickName(), nil)                         // want "name must be a string literal or constant"
	fleet.RegisterScaler("s", func() fleet.Scaler { return nil }) // ctor literal: legal
}

func pickName() string { return "computed" }

func registerLate() {
	fleet.RegisterRouter("late", nil) // want "RegisterRouter called from function registerLate"
}

func viaRegistry() (fleet.Router, error) {
	return fleet.NewRouter(fleet.RoundRobin) // registry lookup returns the interface: legal
}

func direct() fleet.Router {
	return fleet.StaticRouter{Fixed: 1} // want "Router implementation .* constructed directly"
}

func viaConcreteCtor() fleet.Router {
	return fleet.NewStatic(3) // want "call returns concrete Router implementation"
}

func allowedDirect() fleet.Router {
	//lint:allow registryuse fixture: a benchmark pins this router deliberately
	return fleet.StaticRouter{Fixed: 2}
}
