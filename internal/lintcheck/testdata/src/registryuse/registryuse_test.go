// Test files are exempt from the registry contract: the loader feeds
// analyzers only non-test GoFiles, so a test may construct policies
// directly. Nothing in this file produces a finding.
package registryuse

import "hercules/internal/fleet"

func helperForTests() fleet.Router {
	return fleet.StaticRouter{Fixed: 9}
}
