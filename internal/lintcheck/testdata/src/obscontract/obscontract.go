// Package obscontract is the Observer-contract fixture: callbacks run
// synchronously on the replay goroutine and must not retain the
// per-interval snapshot (IntervalStats carries maps) past the call.
package obscontract

import "hercules/internal/fleet"

var lastGlobal fleet.IntervalStats

type collector struct {
	last   fleet.IntervalStats
	warmth map[string]float64
	p99s   []float64
}

// ObserveInterval implements fleet.Observer.
func (c *collector) ObserveInterval(ist fleet.IntervalStats) {
	c.p99s = append(c.p99s, ist.P99MS) // scalar copy: legal
	go flush(ist)                      // want "observer spawns a goroutine"
	c.last = ist                       // want "stores the interval snapshot"
	c.warmth = ist.CacheWarmth         // want "stores the interval snapshot"
	p := &ist                          // want "takes the address of the interval snapshot"
	_ = p
}

func flush(ist fleet.IntervalStats) {}

type streamer struct{ ch chan fleet.IntervalStats }

// ObserveInterval implements fleet.Observer.
func (s *streamer) ObserveInterval(ist fleet.IntervalStats) {
	s.ch <- ist // want "sends the interval snapshot to a channel"
}

type tally struct{ queries int }

// ObserveInterval implements fleet.Observer.
func (t *tally) ObserveInterval(ist fleet.IntervalStats) {
	t.queries += ist.Queries // scalar fold: legal
}

func adapter() fleet.Observer {
	return fleet.ObserverFunc(func(ist fleet.IntervalStats) {
		lastGlobal = ist // want "stores the interval snapshot"
	})
}

func safeAdapter() fleet.Observer {
	total := 0
	return fleet.ObserverFunc(func(ist fleet.IntervalStats) {
		queries := ist.Queries // local scalar: legal
		total += queries
	})
}

type aggregate struct{ Steps []fleet.IntervalStats }

// ObserveInterval implements fleet.Observer.
func (a *aggregate) ObserveInterval(ist fleet.IntervalStats) {
	//lint:allow obscontract fixture: the aggregate owns the interval stream by contract
	a.Steps = append(a.Steps, ist)
}
