// Package lintcheck is the hercules-lint analyzer suite: static
// enforcement of the invariants every reported result rests on.
//
// The repo's headline guarantee — sequential and parallel replays are
// byte-identical, record→replay round trips are exact, FigRegions and
// the BENCH_fleet.json gate are trustworthy — is a determinism
// contract. Until now it was enforced only dynamically, by golden
// tests that catch a violation long after it is written. This package
// encodes the contracts as analyzers that fail CI the moment a
// violating line is typed:
//
//   - wallclock: no time.Now/Since/Until and no global math/rand draws
//     in replay-path packages (fleet, scenario, sim, telemetry, stats,
//     workload, cluster, perfbench); randomness must flow from an
//     explicit seeded source or a query-identity hash.
//   - maporder: no ranging over a map whose body appends to a slice,
//     writes an exported result field, or emits output/telemetry,
//     unless a deterministic sort follows in the same block.
//   - registryuse: policy implementations (Router / Scaler /
//     Admission / GeoPolicy) are resolved through the fleet registry,
//     never constructed directly outside their own package; Register*
//     calls are top-level with string-literal names.
//   - obscontract: Observer implementations neither spawn goroutines
//     nor retain the per-interval snapshot past the callback.
//
// plus local equivalents of the stock shadow and nilness passes. (The
// module is deliberately dependency-free and the upstream passes live
// in golang.org/x/tools, so the go/analysis framework shape is
// reimplemented here on go/ast + go/types, and packages are loaded
// with `go list -export` + the standard gc importer instead of
// go/packages. Porting an analyzer to the upstream framework is
// mechanical: Analyzer/Pass/Reportf have the same shape.)
//
// A legitimate violation is suppressed with a directive on the line
// itself or the line above the offending statement:
//
//	//lint:allow wallclock report provenance timestamp, not replay state
//
// The directive silences exactly the named analyzer on exactly that
// statement, and the reason is mandatory: a bare //lint:allow, a
// missing reason or an unknown analyzer name are themselves reported
// (as "lintdirective" diagnostics, which cannot be suppressed).
//
// Analyzers run over production code only; _test.go files are exempt
// (tests pin the same contracts dynamically and may construct policies
// directly). cmd/hercules-lint is the multichecker binary; CI runs it
// as a blocking job next to gofmt and go vet. Fixture packages under
// testdata/src/ give every analyzer analysistest-style coverage with
// both flagged and allowed cases.
package lintcheck
