package lintcheck

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// RegistryuseAnalyzer enforces the policy-registry contract from the
// PR 5/8 API redesign: Router, Scaler, Admission and GeoPolicy
// implementations are reached through the generic registry[T] —
// constructed by registered name, never instantiated directly outside
// the package that defines them (tests are exempt; the loader skips
// test files). Register* calls must be top-level (init or package
// var initializer) with string-literal names, so the registered set is
// statically known to specs, CLIs and sweeps.
var RegistryuseAnalyzer = &Analyzer{
	Name: "registryuse",
	Doc: "policy implementations must be resolved through the fleet registry, not constructed " +
		"directly outside their own package; Register* calls must be top-level with literal names",
	Run: runRegistryuse,
}

// fleetPkgPath is the package owning the policy interfaces and the
// registry (the analysistest fixtures stub it under the same import
// path).
const fleetPkgPath = "hercules/internal/fleet"

// policyInterfaceNames are the four registered policy axes.
var policyInterfaceNames = []string{"Router", "Scaler", "Admission", "GeoPolicy"}

// registerFuncNames are the registry installation entry points.
var registerFuncNames = map[string]bool{
	"RegisterRouter":    true,
	"RegisterScaler":    true,
	"RegisterAdmission": true,
	"RegisterGeoPolicy": true,
}

// fleetPackage returns the fleet package visible to this pass: the
// package itself when analyzing fleet, otherwise the direct import.
func fleetPackage(pass *Pass) *types.Package {
	if pass.Pkg.Path() == fleetPkgPath {
		return pass.Pkg
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == fleetPkgPath {
			return imp
		}
	}
	return nil
}

// policyInterfaces resolves the four policy interface types from the
// fleet package scope.
func policyInterfaces(fleet *types.Package) map[string]*types.Interface {
	out := make(map[string]*types.Interface, len(policyInterfaceNames))
	for _, name := range policyInterfaceNames {
		tn, ok := fleet.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
			out[name] = iface
		}
	}
	return out
}

func runRegistryuse(pass *Pass) error {
	fleet := fleetPackage(pass)
	if fleet == nil {
		return nil // package neither is nor uses fleet: nothing to check
	}
	ifaces := policyInterfaces(fleet)
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if pass.Pkg == fleet {
					return true // a package may build its own policies
				}
				if axis, typ := policyType(pass, ifaces, pass.TypesInfo.TypeOf(x)); axis != "" {
					pass.Reportf(x.Pos(),
						"%s implementation %s constructed directly outside %s; resolve it through the registry (fleet.New%s / Spec)",
						axis, typ, typ.Obj().Pkg().Path(), axis)
				}
			case *ast.CallExpr:
				checkRegisterCall(pass, fleet, x, stack)
				if pass.Pkg == fleet {
					return true
				}
				if _, isLit := ast.Unparen(x.Fun).(*ast.FuncLit); isLit {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
					return true // conversions handled via their operand
				}
				if axis, typ := policyType(pass, ifaces, singleResult(pass, x)); axis != "" {
					pass.Reportf(x.Pos(),
						"call returns concrete %s implementation %s outside %s; resolve it through the registry (fleet.New%s / Spec)",
						axis, typ, typ.Obj().Pkg().Path(), axis)
				}
			}
			return true
		})
	}
	return nil
}

// singleResult returns the call's sole result type, or nil.
func singleResult(pass *Pass, call *ast.CallExpr) types.Type {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return nil
	}
	if _, isTuple := t.(*types.Tuple); isTuple {
		return nil
	}
	return t
}

// policyType reports which policy axis (if any) the concrete named
// type t implements, when t is defined outside the current package.
func policyType(pass *Pass, ifaces map[string]*types.Interface, t types.Type) (string, *types.Named) {
	named := namedOrDeref(t)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg() == pass.Pkg {
		return "", nil
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return "", nil // registry lookups return interfaces: fine
	}
	for _, axis := range policyInterfaceNames {
		iface := ifaces[axis]
		if iface == nil {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			return axis, named
		}
	}
	return "", nil
}

// checkRegisterCall enforces that Register* runs at package init with
// a string-literal name.
func checkRegisterCall(pass *Pass, fleet *types.Package, call *ast.CallExpr, stack []ast.Node) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() != fleet || !registerFuncNames[fn.Name()] {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	topLevel := true
	where := ""
	for _, anc := range stack {
		switch d := anc.(type) {
		case *ast.FuncLit:
			topLevel = false
			where = "a function literal"
		case *ast.FuncDecl:
			if d.Recv != nil || d.Name.Name != "init" {
				topLevel = false
				where = "function " + d.Name.Name
			}
		}
	}
	if !topLevel {
		pass.Reportf(call.Pos(),
			"%s called from %s; registrations must be top-level (init or package var) so the registered set is statically known",
			fn.Name(), where)
	}
	if len(call.Args) >= 1 {
		// A string literal or a string constant (the built-ins register
		// under exported consts like fleet.RoundRobin) keeps the
		// registered set statically known; anything computed does not.
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(call.Args[0].Pos(),
				"%s name must be a string literal or constant so the registered set is statically known",
				fn.Name())
		}
	}
}
