package lintcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check over a type-checked package — the local
// analogue of golang.org/x/tools/go/analysis.Analyzer. This module is
// deliberately dependency-free, so the framework is reimplemented here
// on the standard library's go/ast + go/types instead of importing
// x/tools; the Analyzer/Pass shape is kept close enough that porting
// an analyzer onto the upstream framework is mechanical.
type Analyzer struct {
	// Name is the analyzer's identifier: what diagnostics are tagged
	// with and what a //lint:allow directive names.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	findings *[]Finding
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		pos:      pos,
	})
}

// Finding is one diagnostic from one analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string

	pos token.Pos
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// DirectiveName is the pseudo-analyzer that malformed //lint:allow
// directives are reported under. Directive findings cannot themselves
// be suppressed.
const DirectiveName = "lintdirective"

// All returns the full hercules-lint suite: the four repo-contract
// analyzers plus the local shadow and nilness passes.
func All() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		MaporderAnalyzer,
		RegistryuseAnalyzer,
		ObscontractAnalyzer,
		ShadowAnalyzer,
		NilnessAnalyzer,
	}
}

// Run executes the analyzers over one loaded package, applies
// //lint:allow suppression, appends directive-misuse findings, and
// returns everything sorted by source position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			findings:  &findings,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
	}
	dirs, bad := scanDirectives(pkg)
	findings = suppress(findings, dirs)
	findings = append(findings, bad...)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// directive is one parsed, well-formed //lint:allow comment.
type directive struct {
	analyzer string
	file     string // position filename
	line     int    // directive's own line
	trailing bool   // shares its line with code: suppresses that line
	lo, hi   token.Pos
}

// knownAnalyzerNames is the set a directive may name — the full suite,
// independent of which analyzers a particular run enables, so a
// fixture running one analyzer does not misreport directives aimed at
// another.
func knownAnalyzerNames() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

const directivePrefix = "//lint:allow"

// scanDirectives parses every //lint:allow comment in the package. It
// returns the well-formed directives plus findings for malformed ones:
// a bare directive, a missing reason, and an unknown analyzer name are
// each themselves diagnostics — a suppression that does not say what
// it allows or why is exactly the silent drift the suite exists to
// prevent.
func scanDirectives(pkg *Package) ([]directive, []Finding) {
	known := knownAnalyzerNames()
	var dirs []directive
	var bad []Finding
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Finding{
			Analyzer: DirectiveName,
			Pos:      pkg.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
			pos:      pos,
		})
	}
	for _, f := range pkg.Files {
		lines := codeLines(pkg.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := c.Text[len(directivePrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowfoo — not this directive
				}
				// A trailing "// ..." inside the directive text is a
				// comment-in-comment (fixtures use it for // want).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					report(c.Pos(), "bare %s: name the analyzer and give a reason, e.g. %s wallclock report timestamp", directivePrefix, directivePrefix)
					continue
				case !known[fields[0]]:
					report(c.Pos(), "%s names unknown analyzer %q (known: %s)", directivePrefix, fields[0], strings.Join(sortedKeys(known), ", "))
					continue
				case len(fields) == 1:
					report(c.Pos(), "%s %s has no reason; say why the violation is legitimate", directivePrefix, fields[0])
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := directive{
					analyzer: fields[0],
					file:     pos.Filename,
					line:     pos.Line,
				}
				if first, ok := lines[pos.Line]; ok && first < c.Pos() {
					// Code precedes the directive on its line: it
					// suppresses that line only.
					d.trailing = true
				} else if lo, hi, ok := nextStatementRange(pkg.Fset, f, pos.Line); ok {
					// Own-line directive: it covers exactly the next
					// statement (or declaration / composite-literal
					// element) and nothing beyond it.
					d.lo, d.hi = lo, hi
				} else {
					continue // nothing follows; inert
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, bad
}

// codeLines maps each source line to the earliest non-comment token
// position on it.
func codeLines(fset *token.FileSet, f *ast.File) map[int]token.Pos {
	lines := make(map[int]token.Pos)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		line := fset.Position(n.Pos()).Line
		if p, ok := lines[line]; !ok || n.Pos() < p {
			lines[line] = n.Pos()
		}
		return true
	})
	return lines
}

// nextStatementRange finds the widest statement-like node that starts
// on the first code line after afterLine — the span an own-line
// //lint:allow directive covers.
func nextStatementRange(fset *token.FileSet, f *ast.File, afterLine int) (lo, hi token.Pos, ok bool) {
	targetLine := 0
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		line := fset.Position(n.Pos()).Line
		if line > afterLine && (targetLine == 0 || line < targetLine) {
			targetLine = line
		}
		return true
	})
	if targetLine == 0 {
		return 0, 0, false
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch n.(type) {
		case ast.Stmt, ast.Decl, *ast.KeyValueExpr:
			if fset.Position(n.Pos()).Line == targetLine {
				if !ok || n.Pos() < lo {
					lo = n.Pos()
				}
				if !ok || n.End() > hi {
					hi = n.End()
				}
				ok = true
			}
		}
		return true
	})
	return lo, hi, ok
}

// suppress drops findings covered by a matching directive.
func suppress(findings []Finding, dirs []directive) []Finding {
	if len(dirs) == 0 {
		return findings
	}
	out := findings[:0]
	for _, f := range findings {
		allowed := false
		for _, d := range dirs {
			if d.analyzer != f.Analyzer || d.file != f.Pos.Filename {
				continue
			}
			if d.trailing && d.line == f.Pos.Line {
				allowed = true
				break
			}
			if !d.trailing && d.lo <= f.pos && f.pos < d.hi {
				allowed = true
				break
			}
		}
		if !allowed {
			out = append(out, f)
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// inspectStack is ast.Inspect with the path of ancestors (outermost
// first, excluding n itself) passed to the callback.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
