package lintcheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObscontractAnalyzer enforces the Observer synchronous-delivery
// contract pinned by the PR 5/6 observer tests: ObserveInterval runs
// on the replay goroutine, so an implementation must not spawn
// goroutines, and must not retain the per-interval snapshot (or any
// reference-carrying field of it — IntervalStats holds per-model maps)
// past the callback by storing it into fields, globals or channels.
// Scalar fields (counts, tail milliseconds) may be folded anywhere:
// copying a float64 cannot alias engine state.
var ObscontractAnalyzer = &Analyzer{
	Name: "obscontract",
	Doc: "Observer.ObserveInterval bodies must not spawn goroutines, take the snapshot's " +
		"address, or store the snapshot (or a reference-carrying field) into fields, globals or channels",
	Run: runObscontract,
}

// intervalStatsType resolves fleet.IntervalStats as seen by this pass.
func intervalStatsType(pass *Pass) types.Object {
	fleet := fleetPackage(pass)
	if fleet == nil {
		return nil
	}
	return fleet.Scope().Lookup("IntervalStats")
}

func runObscontract(pass *Pass) error {
	statsObj := intervalStatsType(pass)
	if statsObj == nil {
		return nil
	}
	for _, f := range pass.Files {
		// Declared methods: func (x T) ObserveInterval(ist IntervalStats).
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "ObserveInterval" || fd.Body == nil {
				continue
			}
			if param := observerParam(pass, statsObj, fd.Type); param != nil {
				checkObserverBody(pass, fd.Body, param)
			}
		}
		// ObserverFunc(func(ist IntervalStats) { ... }) adapters.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if !isObserverFuncConversion(pass, call) {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit)
			if !ok || lit.Body == nil {
				return true
			}
			if param := observerParam(pass, statsObj, lit.Type); param != nil {
				checkObserverBody(pass, lit.Body, param)
			}
			return true
		})
	}
	return nil
}

// observerParam returns the *types.Var of the single IntervalStats
// parameter, or nil when the signature does not match the Observer
// shape.
func observerParam(pass *Pass, statsObj types.Object, ft *ast.FuncType) *types.Var {
	if ft.Params == nil || len(ft.Params.List) != 1 || len(ft.Params.List[0].Names) != 1 {
		return nil
	}
	ident := ft.Params.List[0].Names[0]
	v, ok := pass.TypesInfo.Defs[ident].(*types.Var)
	if !ok {
		return nil
	}
	named := namedOrDeref(v.Type())
	if named == nil || named.Obj() != statsObj {
		return nil
	}
	return v
}

// isObserverFuncConversion reports whether the call converts its
// argument to fleet.ObserverFunc.
func isObserverFuncConversion(pass *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	tn, ok := pass.TypesInfo.Uses[id].(*types.TypeName)
	if !ok || tn.Name() != "ObserverFunc" || tn.Pkg() == nil {
		return false
	}
	return tn.Pkg().Path() == fleetPkgPath
}

// checkObserverBody flags the contract violations inside one observer
// callback body.
func checkObserverBody(pass *Pass, body *ast.BlockStmt, param *types.Var) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(x.Pos(),
				"observer spawns a goroutine; ObserveInterval delivery is synchronous on the replay goroutine — buffer internally instead")
		case *ast.UnaryExpr:
			if x.Op == token.AND && mentionsParamRef(pass, x.X, param) {
				pass.Reportf(x.Pos(),
					"observer takes the address of the interval snapshot; the snapshot must not be retained past the callback")
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if !lhsIsLocal(pass, x.Lhs[i]) && mentionsParamRef(pass, x.Rhs[i], param) {
						pass.Reportf(x.Rhs[i].Pos(),
							"observer stores the interval snapshot (or a reference-carrying field) past the callback; copy the scalars you need instead")
					}
				}
			}
		case *ast.SendStmt:
			if mentionsParamRef(pass, x.Value, param) {
				pass.Reportf(x.Value.Pos(),
					"observer sends the interval snapshot to a channel; the snapshot (IntervalStats holds maps) must not escape the callback")
			}
		}
		return true
	})
}

// lhsIsLocal reports whether an assignment target is a plain local
// variable (or blank) — a store that dies with the callback. Field
// selectors, globals, indexes and dereferences are treated as escaping.
func lhsIsLocal(pass *Pass, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() != nil && v.Parent() != pass.Pkg.Scope()
}

// mentionsParamRef reports whether evaluating e can yield a value that
// aliases the snapshot param: the param itself, or a selector/index
// chain rooted at it whose type carries references. Calls are judged
// by their result type (a float64 derived from the snapshot is safe).
func mentionsParamRef(pass *Pass, e ast.Expr, param *types.Var) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		return pass.TypesInfo.Uses[x] == param && typeHasRefs(param.Type())
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr:
		if root := rootIdent(e); root != nil && pass.TypesInfo.Uses[root] == param {
			return typeHasRefs(pass.TypesInfo.TypeOf(e))
		}
	case *ast.CallExpr:
		if !typeHasRefs(pass.TypesInfo.TypeOf(x)) {
			return false
		}
		for _, arg := range x.Args {
			if mentionsParamRef(pass, arg, param) {
				return true
			}
		}
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found || n == nil || n == e {
			return !found
		}
		if sub, ok := n.(ast.Expr); ok {
			if mentionsParamRef(pass, sub, param) {
				found = true
				return false
			}
			// Chains and calls were judged as a whole; do not descend
			// into their components again.
			switch n.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr, *ast.CallExpr:
				return false
			}
			_ = sub
		}
		return true
	})
	return found
}
