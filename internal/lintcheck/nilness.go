package lintcheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilnessAnalyzer is a local, deliberately conservative stand-in for
// the stock golang.org/x/tools nilness pass (the module takes no
// dependencies, and the upstream pass needs go/ssa). It flags uses
// that certainly panic inside a branch where a variable is known to be
// nil: `if x == nil { x.Field ... }` — dereferences and field reads
// through nil pointers, method calls on nil interfaces, nil slice
// indexing, nil map writes and nil function calls. Uses after the
// variable is reassigned inside the branch are not reported.
var NilnessAnalyzer = &Analyzer{
	Name: "nilness",
	Doc: "report dereference, indexing, method call or invocation of a variable inside a " +
		"branch where it is known to be nil",
	Run: runNilness,
}

func runNilness(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			cond, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			obj := nilComparedVar(pass, cond)
			if obj == nil {
				return true
			}
			var branch *ast.BlockStmt
			switch cond.Op {
			case token.EQL:
				branch = ifs.Body
			case token.NEQ:
				branch, _ = ifs.Else.(*ast.BlockStmt)
			}
			if branch != nil {
				checkNilBranch(pass, branch, obj)
			}
			return true
		})
	}
	return nil
}

// nilComparedVar returns the variable compared against nil, or nil.
func nilComparedVar(pass *Pass, cond *ast.BinaryExpr) *types.Var {
	if cond.Op != token.EQL && cond.Op != token.NEQ {
		return nil
	}
	x, y := ast.Unparen(cond.X), ast.Unparen(cond.Y)
	if isNilIdent(pass, x) {
		x, y = y, x
	}
	if !isNilIdent(pass, y) {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Slice, *types.Signature:
		return v
	}
	return nil
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// checkNilBranch reports certainly-panicking uses of obj inside the
// branch, up to the first reassignment of obj.
func checkNilBranch(pass *Pass, branch *ast.BlockStmt, obj *types.Var) {
	// Find where (if at all) obj is reassigned inside the branch; uses
	// past that point are no longer known-nil.
	reassigned := token.Pos(-1)
	ast.Inspect(branch, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj {
					if reassigned == token.Pos(-1) || asg.Pos() < reassigned {
						reassigned = asg.Pos()
					}
				}
			}
		}
		return true
	})
	knownNil := func(pos token.Pos) bool {
		return reassigned == token.Pos(-1) || pos < reassigned
	}
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	ast.Inspect(branch, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.StarExpr:
			if usesObj(x.X) && knownNil(x.Pos()) {
				pass.Reportf(x.Pos(), "dereference of %s, which is nil on this branch", obj.Name())
			}
		case *ast.SelectorExpr:
			if !usesObj(x.X) || !knownNil(x.Pos()) {
				return true
			}
			sel, ok := pass.TypesInfo.Selections[x]
			if !ok {
				return true
			}
			switch {
			case sel.Kind() == types.FieldVal && isPointer(obj.Type()):
				pass.Reportf(x.Pos(), "field access through %s, which is nil on this branch", obj.Name())
			case sel.Kind() == types.MethodVal && isInterface(obj.Type()):
				pass.Reportf(x.Pos(), "method call on %s, which is a nil interface on this branch", obj.Name())
			}
		case *ast.IndexExpr:
			if !usesObj(x.X) || !knownNil(x.Pos()) {
				return true
			}
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				pass.Reportf(x.Pos(), "index of %s, which is a nil slice on this branch", obj.Name())
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok || !usesObj(ix.X) || !knownNil(ix.Pos()) {
					continue
				}
				if _, isMap := obj.Type().Underlying().(*types.Map); isMap {
					pass.Reportf(ix.Pos(), "write to %s, which is a nil map on this branch", obj.Name())
				}
			}
		case *ast.CallExpr:
			if usesObj(x.Fun) && knownNil(x.Pos()) {
				if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
					pass.Reportf(x.Pos(), "call of %s, which is a nil function on this branch", obj.Name())
				}
			}
		}
		return true
	})
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}
