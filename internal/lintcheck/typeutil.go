package lintcheck

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call expression's static callee, or nil for
// dynamic calls, builtins and conversions.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// rootIdent walks selector/index/star/slice/paren/assert chains down
// to their base identifier, or nil when the base is not an identifier
// (a call result, a literal, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// namedOrDeref returns the named type of t, looking through one
// pointer, or nil.
func namedOrDeref(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// typeHasRefs reports whether values of t carry references (pointers,
// slices, maps, channels, funcs, interfaces) — i.e. whether retaining
// a copy of such a value can alias state owned by someone else.
func typeHasRefs(t types.Type) bool {
	return typeHasRefs1(t, make(map[types.Type]bool))
}

func typeHasRefs1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasRefs1(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return typeHasRefs1(u.Elem(), seen)
	}
	return false
}
