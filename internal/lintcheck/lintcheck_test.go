package lintcheck

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: packages under
// testdata/src are type-checked against their fixture imports (the
// hercules/internal/fleet stub lives at the real import path) with
// stdlib resolved from compiler export data, analyzers run through the
// same Run entry point as the CLI (so //lint:allow suppression and
// directive diagnostics are exercised), and findings are matched
// line-by-line against `// want "regexp"` comments.

// fixtureLoader type-checks fixture packages rooted at testdata/src,
// resolving fixture imports recursively and everything else through
// the standard gc importer.
type fixtureLoader struct {
	root string
	fset *token.FileSet
	memo map[string]*Package
	std  types.Importer
}

func newFixtureLoader() *fixtureLoader {
	return &fixtureLoader{
		root: filepath.Join("testdata", "src"),
		fset: token.NewFileSet(),
		memo: make(map[string]*Package),
		std:  importer.Default(),
	}
}

// Import implements types.Importer for the fixture tree.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *fixtureLoader) load(importPath string) (*Package, error) {
	if pkg, ok := l.memo[importPath]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		// Mirror the production loader: only non-test GoFiles reach the
		// analyzers (tests are exempt from the contracts).
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			names = append(names, name)
		}
	}
	pkg, err := typecheck(l.fset, l, importPath, dir, names)
	if err != nil {
		return nil, err
	}
	l.memo[importPath] = pkg
	return pkg, nil
}

// loadFixture loads testdata/src/<importPath> or fails the test.
func loadFixture(t *testing.T, importPath string) *Package {
	t.Helper()
	pkg, err := newFixtureLoader().load(importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	return pkg
}

// want is one expectation parsed from a `// want "regexp"` comment.
type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantsFor extracts the want expectations per file:line. The marker
// may sit anywhere in a comment's text, so a malformed-directive line
// can carry its own expectation (//lint:allow // want "bare ...").
func wantsFor(t *testing.T, pkg *Package) map[string][]*want {
	t.Helper()
	const marker = "// want "
	out := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, marker)
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				rest := strings.TrimSpace(c.Text[idx+len(marker):])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment %q: %v", key, c.Text, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: unquoting %q: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: want pattern %q: %v", key, pat, err)
					}
					out[key] = append(out[key], &want{re: re, raw: pat})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return out
}

// checkFixture runs the analyzers over the fixture package (through
// Run, so suppression and directive checks apply) and matches every
// finding against the want comments, both ways.
func checkFixture(t *testing.T, pkg *Package, analyzers ...*Analyzer) {
	t.Helper()
	findings, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := wantsFor(t, pkg)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		text := f.Analyzer + ": " + f.Message
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: %s", key, text)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no finding matched want %q", key, w.raw)
			}
		}
	}
}

func TestWallclockFixture(t *testing.T) {
	checkFixture(t, loadFixture(t, "hercules/internal/sim"), WallclockAnalyzer)
}

func TestWallclockIgnoresNonReplayPackages(t *testing.T) {
	// clockuser has no want comments: any finding fails the test.
	checkFixture(t, loadFixture(t, "clockuser"), WallclockAnalyzer)
}

func TestMaporderFixture(t *testing.T) {
	checkFixture(t, loadFixture(t, "maporder"), MaporderAnalyzer)
}

func TestRegistryuseFixture(t *testing.T) {
	// The fixture directory also holds registryuse_test.go with a
	// direct construction; the loader must never feed it to analyzers.
	checkFixture(t, loadFixture(t, "registryuse"), RegistryuseAnalyzer)
}

func TestObscontractFixture(t *testing.T) {
	checkFixture(t, loadFixture(t, "obscontract"), ObscontractAnalyzer)
}

func TestShadowFixture(t *testing.T) {
	checkFixture(t, loadFixture(t, "shadow"), ShadowAnalyzer)
}

func TestNilnessFixture(t *testing.T) {
	checkFixture(t, loadFixture(t, "nilness"), NilnessAnalyzer)
}

// TestAllowDirectiveScope pins the suppression contract (the wallclock
// analyzer is the probe): an own-line directive covers exactly the
// next statement, a directive naming another analyzer suppresses
// nothing, and bare/reasonless/unknown-analyzer directives are
// themselves reported under lintdirective.
func TestAllowDirectiveScope(t *testing.T) {
	checkFixture(t, loadFixture(t, "hercules/internal/workload"), WallclockAnalyzer)
}

// TestRepoIsClean runs the full suite over the real module: the tree
// must stay lint-clean, with every legitimate violation carrying a
// reasoned //lint:allow.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint pass skipped in -short mode")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load matched no packages")
	}
	for _, pkg := range pkgs {
		findings, err := Run(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
