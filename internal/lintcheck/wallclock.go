package lintcheck

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallclockAnalyzer enforces the replay-determinism clock/RNG
// contract: code in a replay-path package must not read wall-clock
// time or draw from the process-global math/rand source. Every result
// the repo reports rests on sequential and parallel replays being
// byte-identical, which requires all time to be virtual (interval
// index × slice length) and all randomness to flow from an explicit
// seeded source or a query-identity hash.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Until and global math/rand draws in replay-path packages; " +
		"randomness must come from an explicit seeded *rand.Rand or a query-identity hash",
	Run: runWallclock,
}

// replayPackages are the packages whose code is (or feeds) the replay
// hot path, named relative to the module root. internal/perfbench is
// included because benchmark measurement shares the reproducibility
// contract: its one legitimate wall-clock read (report provenance)
// carries a //lint:allow.
var replayPackages = map[string]bool{
	"internal/fleet":     true,
	"internal/scenario":  true,
	"internal/sim":       true,
	"internal/telemetry": true,
	"internal/stats":     true,
	"internal/workload":  true,
	"internal/cluster":   true,
	"internal/grid":      true,
	"internal/perfbench": true,
}

// isReplayPath matches both the real module path (hercules/internal/…)
// and the analysistest fixtures (loaded under the bare internal/…
// import path).
func isReplayPath(pkgPath string) bool {
	return replayPackages[strings.TrimPrefix(pkgPath, "hercules/")]
}

// wallclockTimeFuncs are the package time functions that read the
// wall clock.
var wallclockTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// globalRandFuncs are the math/rand and math/rand/v2 package-level
// functions that draw from (or reseed) the shared global source.
// rand.New/NewSource/NewPCG/NewChaCha8 stay legal: they build the
// explicit seeded sources the replay is supposed to use.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Read": true,
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "N": true,
}

func runWallclock(pass *Pass) error {
	if !isReplayPath(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallclockTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in replay-path package %s; replay time must be virtual (interval index, slice offset)",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the process-global RNG in replay-path package %s; use an explicit seeded source or a query-identity hash",
						fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
