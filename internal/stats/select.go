package stats

// PercentileSelect returns exactly what PercentileSorted would return
// on a sorted copy of xs — same closest-rank linear interpolation —
// but finds the two needed order statistics by in-place quickselect
// instead of a full sort: O(n) expected instead of O(n log n). The
// slice is partially reordered. Hot loops that read only a few
// percentile points per buffer (the fleet replay merge) use this; code
// that reads many points should sort once and use PercentileSorted.
func PercentileSelect(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	rank := p / 100 * float64(n-1)
	if p <= 0 {
		rank = 0
	}
	if p >= 100 {
		rank = float64(n - 1)
	}
	lo := int(rank)
	quickSelect(xs, lo)
	vlo := xs[lo]
	frac := rank - float64(lo)
	if frac == 0 {
		return vlo
	}
	// The (lo+1)-th order statistic is the minimum of the right
	// partition quickSelect leaves behind.
	vhi := xs[lo+1]
	for _, x := range xs[lo+2:] {
		if x < vhi {
			vhi = x
		}
	}
	return vlo*(1-frac) + vhi*frac
}

// quickSelect reorders xs so xs[k] holds its sorted-order value, every
// element before it is ≤ xs[k] and every element after is ≥ xs[k].
// Median-of-three pivoting with an insertion-sort tail keeps the
// expected cost linear and deterministic (no RNG: replays must be
// reproducible).
func quickSelect(xs []float64, k int) {
	lo, hi := 0, len(xs)-1
	for hi-lo > 12 {
		// Median-of-three pivot, moved to xs[lo].
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		// Hoare partition.
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if xs[i] >= pivot {
					break
				}
			}
			for {
				j--
				if xs[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	// Insertion-sort the remaining window.
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
