package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Mean() != 0 || s.P99() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty sample should answer zeros")
	}
	if s.Len() != 0 {
		t.Fatalf("empty sample Len = %d", s.Len())
	}
}

func TestSamplePercentiles(t *testing.T) {
	s := NewSample(100)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v, want 100", got)
	}
	if got := s.P50(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("P50 = %v, want 50.5", got)
	}
	if got := s.P99(); got < 99 || got > 100 {
		t.Errorf("P99 = %v, want in [99,100]", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
}

func TestSampleSingle(t *testing.T) {
	s := NewSample(1)
	s.Add(42)
	for _, p := range []float64{0, 50, 95, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Errorf("P%v = %v, want 42", p, got)
		}
	}
}

func TestSampleReset(t *testing.T) {
	s := NewSample(4)
	s.Add(1)
	s.Add(2)
	s.Reset()
	if s.Len() != 0 || s.Sum() != 0 {
		t.Fatalf("reset did not clear sample")
	}
	s.Add(7)
	if s.Mean() != 7 {
		t.Fatalf("sample unusable after reset")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		pp := math.Mod(math.Abs(p), 100)
		v := s.Percentile(pp)
		return v >= s.Min()-1e-12 && v <= s.Max()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Observe(-5)  // clamps to bin 0
	h.Observe(100) // clamps to last bin
	h.Observe(5)
	if h.Total() != 3 {
		t.Fatalf("total = %d, want 3", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[9] != 1 || h.Counts[5] != 1 {
		t.Fatalf("unexpected bins: %v", h.Counts)
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	h := NewHistogram(0, 1, 7)
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		h.Observe(r.Float64())
	}
	var sum float64
	for i := range h.Counts {
		sum += h.Fraction(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
	if h.Table() == "" {
		t.Fatal("Table() should render rows")
	}
}

func TestHistogramDegenerateConstruction(t *testing.T) {
	h := NewHistogram(5, 5, 0) // hi<=lo and bins<=0 are repaired
	h.Observe(5)
	if h.Total() != 1 {
		t.Fatal("degenerate histogram must still count")
	}
}

func TestWelfordMatchesSample(t *testing.T) {
	r := NewRand(2)
	s := NewSample(500)
	var w Welford
	for i := 0; i < 500; i++ {
		x := r.NormFloat64()*3 + 10
		s.Add(x)
		w.Add(x)
	}
	if math.Abs(w.Mean()-s.Mean()) > 1e-9 {
		t.Errorf("welford mean %v vs sample %v", w.Mean(), s.Mean())
	}
	if math.Abs(w.StdDev()-s.StdDev()) > 1e-9 {
		t.Errorf("welford std %v vs sample %v", w.StdDev(), s.StdDev())
	}
	if w.N() != 500 {
		t.Errorf("welford N = %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty welford must report zero variance")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp wrong")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Fatal("ClampInt wrong")
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRand(3)
	for _, lambda := range []float64{0.5, 4, 30, 200} {
		var w Welford
		for i := 0; i < 4000; i++ {
			w.Add(float64(Poisson(r, lambda)))
		}
		if math.Abs(w.Mean()-lambda) > 0.15*lambda+0.2 {
			t.Errorf("poisson(%v) mean = %v", lambda, w.Mean())
		}
	}
	if Poisson(r, 0) != 0 || Poisson(r, -1) != 0 {
		t.Error("nonpositive lambda must yield 0")
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(4)
	var w Welford
	for i := 0; i < 20000; i++ {
		w.Add(Exponential(r, 5))
	}
	if math.Abs(w.Mean()-0.2) > 0.02 {
		t.Errorf("exp(rate=5) mean = %v, want 0.2", w.Mean())
	}
	if !math.IsInf(Exponential(r, 0), 1) {
		t.Error("rate 0 must give +Inf gap")
	}
}

func TestLognormalPositive(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		if Lognormal(r, 1, 0.5) <= 0 {
			t.Fatal("lognormal must be positive")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.1)
	r := NewRand(6)
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if z.Draw(r) < 100 {
			hot++
		}
	}
	frac := float64(hot) / draws
	// With s=1.1 the first 10% of items should absorb well over half
	// of all accesses — that is the skew the hot-embedding partition uses.
	if frac < 0.55 {
		t.Errorf("hot fraction = %v, want > 0.55", frac)
	}
	if cm := z.CumulativeMass(100); math.Abs(cm-frac) > 0.05 {
		t.Errorf("cumulative mass %v disagrees with empirical %v", cm, frac)
	}
}

func TestZipfMassBounds(t *testing.T) {
	z := NewZipf(50, 0.9)
	if z.CumulativeMass(0) != 0 {
		t.Error("mass(0) must be 0")
	}
	if m := z.CumulativeMass(50); math.Abs(m-1) > 1e-9 {
		t.Errorf("mass(n) = %v, want 1", m)
	}
	if m := z.CumulativeMass(100); math.Abs(m-1) > 1e-9 {
		t.Errorf("mass(>n) = %v, want 1", m)
	}
}

func TestZipfCDFMonotone(t *testing.T) {
	f := func(n uint8, s float64) bool {
		nn := int(n%200) + 1
		ss := math.Mod(math.Abs(s), 2) + 0.1
		z := NewZipf(nn, ss)
		prev := 0.0
		for k := 1; k <= nn; k++ {
			m := z.CumulativeMass(k)
			if m < prev-1e-12 {
				return false
			}
			prev = m
		}
		return math.Abs(prev-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
}
