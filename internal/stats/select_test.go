package stats

import (
	"sort"
	"testing"
)

// PercentileSelect must return bit-identical values to PercentileSorted
// on a sorted copy — the fleet replay's golden determinism depends on
// the two paths being interchangeable.
func TestPercentileSelectMatchesSorted(t *testing.T) {
	r := NewRand(3)
	points := []float64{0, 1, 42.5, 50, 95, 99, 99.9, 100}
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			if trial%3 == 0 {
				// Duplicate-heavy inputs stress the Hoare partition.
				xs[i] = float64(r.Intn(4))
			} else {
				xs[i] = Lognormal(r, 0, 1)
			}
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, p := range points {
			work := append([]float64(nil), xs...)
			got := PercentileSelect(work, p)
			want := PercentileSorted(sorted, p)
			if got != want {
				t.Fatalf("n=%d p=%v: select %v != sorted %v", n, p, got, want)
			}
		}
	}
	if PercentileSelect(nil, 50) != 0 {
		t.Fatal("empty slice must yield 0")
	}
}
