// Package stats provides small statistical utilities used throughout the
// Hercules simulator: percentile estimation over sample sets, fixed-bin
// histograms, running means, and deterministic RNG construction.
//
// All simulator randomness flows through rand.Rand instances created by
// NewRand so that every experiment is reproducible given its seed.
//
// The surface: Sample collects values and answers percentile queries
// (the tail-latency plumbing of every layer); PercentileSorted and
// PercentileSelect serve hot loops that manage their own buffers — the
// latter via in-place quickselect, O(n) for a few percentile points;
// Histogram and Welford
// cover binned distributions and running moments; NewZipf/ZipfMass back
// the hot-embedding skew of internal/partition; Lognormal, Poisson and
// Exponential are the seeded draws the workload generators use; Clamp
// and ClampInt are shared bounds helpers.
package stats
