package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// NewRand returns a deterministic PRNG for the given seed. Seeds are
// namespaced by experiment so that sub-experiments do not share streams.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Sample accumulates float64 observations and answers order-statistic
// queries. It keeps all samples; simulations here are small enough
// (≤ a few million observations) that exact percentiles are affordable
// and avoid estimator bias in the tail, which matters for SLA checks.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
}

// NewSample returns an empty sample with the given capacity hint.
func NewSample(capacity int) *Sample {
	return &Sample{xs: make([]float64, 0, capacity)}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.sum += x
}

// Len reports the number of recorded observations.
func (s *Sample) Len() int { return len(s.xs) }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	s.ensureSorted()
	return PercentileSorted(s.xs, p)
}

// PercentileSorted returns the p-th percentile (p in [0,100]) of an
// already-sorted slice, using the same closest-rank interpolation as
// Sample.Percentile. Hot loops that manage their own buffers (the fleet
// replay merge) sort once and read several percentiles without paying
// Sample's bookkeeping.
func PercentileSorted(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// P50, P75, P95 and P99 are convenience accessors for common tail points.
func (s *Sample) P50() float64 { return s.Percentile(50) }

// P75 returns the 75th percentile.
func (s *Sample) P75() float64 { return s.Percentile(75) }

// P95 returns the 95th percentile.
func (s *Sample) P95() float64 { return s.Percentile(95) }

// P99 returns the 99th percentile.
func (s *Sample) P99() float64 { return s.Percentile(99) }

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all observations but keeps the backing array.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = true
	s.sum = 0
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bin so mass is never lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Observe adds one observation to the histogram.
func (h *Histogram) Observe(x float64) {
	bin := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Table renders writable rows for reproducing paper figures on stdout.
// Each row is "center<TAB>count<TAB>fraction".
func (h *Histogram) Table() string {
	var sb strings.Builder
	for i := range h.Counts {
		fmt.Fprintf(&sb, "%.4g\t%d\t%.4f\n", h.BinCenter(i), h.Counts[i], h.Fraction(i))
	}
	return sb.String()
}

// Welford implements an online mean/variance accumulator (Welford's
// algorithm) for streams where storing samples is unnecessary.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt restricts x to [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lognormal draws a lognormal variate with the given location mu and
// scale sigma of the underlying normal.
func Lognormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Poisson draws a Poisson-distributed count with mean lambda. It uses
// Knuth's product method for small lambda and a normal approximation for
// large lambda, which is ample for arrival-count generation.
func Poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		// Normal approximation with continuity correction.
		k := int(math.Round(r.NormFloat64()*math.Sqrt(lambda) + lambda))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Exponential draws an exponential variate with the given rate (events
// per unit time). Used for Poisson inter-arrival gaps.
func Exponential(r *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return r.ExpFloat64() / rate
}

// Zipf draws integers in [0, n) following a Zipfian distribution with
// exponent s > 0. Used for hot-embedding access skew.
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf precomputes the CDF for a Zipf(s) distribution over n items.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		n = 1
	}
	z := &Zipf{n: n, cdf: make([]float64, n)}
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Draw samples one index.
func (z *Zipf) Draw(r *rand.Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.n {
		i = z.n - 1
	}
	return i
}

// CumulativeMass returns the probability mass of the first k items —
// i.e. the fraction of accesses a hot set of size k absorbs.
func (z *Zipf) CumulativeMass(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > z.n {
		k = z.n
	}
	return z.cdf[k-1]
}
