package stats

import "math"

// Sketch is a mergeable streaming quantile sketch with a guaranteed
// relative-error bound (DDSketch-style: logarithmically-spaced buckets
// of width controlled by the accuracy parameter alpha). Adding a value
// is O(1), memory is proportional to the dynamic range of the observed
// values (not the sample count), and two sketches built from disjoint
// streams merge by bucket-wise addition into exactly the sketch of the
// concatenated stream — merge order cannot change the answer, which is
// what lets the fleet replay's parallel shards keep their byte-identity
// guarantee while tracking tails without buffering samples.
//
// Quantile(p) returns a value within relative error Alpha of an exact
// sample quantile: if x is the true p-th percentile of the observed
// stream, the estimate q satisfies |q - x| <= Alpha * x. Values below
// sketchMinValue (including zero and negatives, which latencies never
// produce but defensive callers might) collapse into a dedicated zero
// bucket that reports as 0.
//
// The zero value is not usable; construct with NewSketch. A Sketch is
// not safe for concurrent use.
type Sketch struct {
	// Alpha is the relative-error bound of Quantile (read-only after
	// construction).
	Alpha float64

	gamma   float64 // (1+alpha)/(1-alpha)
	lnGamma float64
	offset  int      // bucket index of counts[0]
	counts  []uint32 // log-spaced bucket counts
	zero    uint64   // observations below sketchMinValue
	n       uint64
	sum     float64
}

// sketchMinValue is the smallest trackable positive value; anything
// smaller is indistinguishable from zero. 1e-9 covers sub-nanosecond
// latencies in any unit this repo uses (seconds or milliseconds).
const sketchMinValue = 1e-9

// DefaultSketchAlpha is the relative accuracy the fleet engine's tail
// sketches use: 1% error on any quantile, ~600 buckets across the full
// nanosecond-to-kilosecond latency range.
const DefaultSketchAlpha = 0.01

// NewSketch returns an empty sketch with the given relative accuracy
// (0 < alpha < 1; out-of-range values fall back to
// DefaultSketchAlpha).
func NewSketch(alpha float64) *Sketch {
	s := &Sketch{}
	s.Init(alpha)
	return s
}

// Init (re)initializes a sketch in place with the given accuracy,
// releasing any buckets. It exists so pools of sketches (one per
// observation window per shard in the fleet replay) can be embedded by
// value and armed without allocation churn.
func (s *Sketch) Init(alpha float64) {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultSketchAlpha
	}
	s.Alpha = alpha
	s.gamma = (1 + alpha) / (1 - alpha)
	s.lnGamma = math.Log(s.gamma)
	s.Reset()
}

// Reset discards all observations but keeps the bucket array (and the
// configured accuracy) for reuse.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.counts = s.counts[:0]
	s.offset = 0
	s.zero, s.n, s.sum = 0, 0, 0
}

// bucketIdx maps a positive value to its log-spaced bucket.
func (s *Sketch) bucketIdx(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lnGamma))
}

// Add records one observation.
func (s *Sketch) Add(x float64) { s.AddN(x, 1) }

// AddN records n identical observations.
func (s *Sketch) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	s.n += n
	s.sum += x * float64(n)
	if x < sketchMinValue {
		s.zero += n
		return
	}
	s.bump(s.bucketIdx(x), n)
}

// bump adds n to the bucket with absolute index idx, growing the
// bucket window as needed.
func (s *Sketch) bump(idx int, n uint64) {
	if len(s.counts) == 0 {
		s.offset = idx
		s.counts = append(s.counts, 0)
	}
	for idx < s.offset {
		// Grow downward: shift is rare (only when a new minimum extends
		// the range) and the window stays as tight as the data.
		grow := s.offset - idx
		if cap(s.counts)-len(s.counts) < grow {
			nc := make([]uint32, len(s.counts)+grow, 2*(len(s.counts)+grow))
			copy(nc[grow:], s.counts)
			s.counts = nc
		} else {
			s.counts = s.counts[:len(s.counts)+grow]
			copy(s.counts[grow:], s.counts[:len(s.counts)-grow])
			for i := 0; i < grow; i++ {
				s.counts[i] = 0
			}
		}
		s.offset = idx
	}
	for idx >= s.offset+len(s.counts) {
		s.counts = append(s.counts, 0)
	}
	c := &s.counts[idx-s.offset]
	if *c == math.MaxUint32 {
		// Saturate rather than wrap; 4G observations in one bucket is
		// beyond any replay this repo runs.
		return
	}
	if n > uint64(math.MaxUint32-*c) {
		*c = math.MaxUint32
		return
	}
	*c += uint32(n)
}

// Merge folds another sketch (of the same accuracy) into s: the result
// is exactly the sketch of both streams concatenated, regardless of
// merge order. Merging sketches of different accuracies re-buckets the
// other sketch's representative values into s's grid, which keeps
// correctness but degrades the bound to the coarser alpha.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	s.n += o.n
	s.sum += o.sum
	s.zero += o.zero
	sameGrid := o.gamma == s.gamma
	for i, c := range o.counts {
		if c == 0 {
			continue
		}
		idx := o.offset + i
		if !sameGrid {
			idx = s.bucketIdx(o.value(idx))
		}
		s.bump(idx, uint64(c))
	}
}

// value returns the representative value of the bucket with absolute
// index idx: the geometric midpoint 2·gamma^idx/(gamma+1), which is
// within Alpha of every value the bucket can hold.
func (s *Sketch) value(idx int) float64 {
	return 2 * math.Exp(float64(idx)*s.lnGamma) / (s.gamma + 1)
}

// Count returns the number of observations.
func (s *Sketch) Count() int { return int(s.n) }

// Sum returns the sum of all observations (exact, not bucketed).
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty sketch.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Quantile returns the p-th percentile (p in [0, 100], matching
// Sample.Percentile and PercentileSelect) within relative error Alpha.
// Returns 0 for an empty sketch.
func (s *Sketch) Quantile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(Clamp(p, 0, 100) / 100 * float64(s.n-1)))
	if rank < s.zero {
		return 0
	}
	cum := s.zero
	for i, c := range s.counts {
		cum += uint64(c)
		if cum > rank {
			return s.value(s.offset + i)
		}
	}
	// Unreachable when counts are consistent; fall back to the largest
	// occupied bucket.
	for i := len(s.counts) - 1; i >= 0; i-- {
		if s.counts[i] > 0 {
			return s.value(s.offset + i)
		}
	}
	return 0
}

// Buckets returns the number of occupied log-spaced buckets — the
// sketch's memory footprint in 4-byte units, useful for asserting the
// "memory scales with dynamic range, not samples" property.
func (s *Sketch) Buckets() int {
	n := 0
	for _, c := range s.counts {
		if c > 0 {
			n++
		}
	}
	return n
}
