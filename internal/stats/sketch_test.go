package stats

import (
	"math"
	"sort"
	"testing"
)

// exactRank returns the order statistic the sketch's Quantile guarantee
// is stated against: the sample at rank ceil(p/100·(n-1)) of the sorted
// stream.
func exactRank(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	r := int(math.Ceil(p / 100 * float64(len(sorted)-1)))
	return sorted[r]
}

// checkParity asserts the sketch answer for each tail point is within
// the documented relative-error bound of the exact order statistic, and
// within the bound of the PercentileSelect oracle wherever adjacent
// order statistics are close enough that interpolation cannot widen the
// gap (PercentileSelect interpolates between ranks; the sketch bound is
// stated against actual samples).
func checkParity(t *testing.T, name string, xs []float64, alpha float64) {
	t.Helper()
	sk := NewSketch(alpha)
	for _, x := range xs {
		sk.Add(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		want := exactRank(sorted, p)
		got := sk.Quantile(p)
		if want <= 0 {
			continue
		}
		if rel := math.Abs(got-want) / want; rel > alpha+1e-12 {
			t.Errorf("%s p%.1f: sketch %.6g vs exact-rank %.6g, relative error %.4f > alpha %.4f",
				name, p, got, want, rel, alpha)
		}
		// Oracle cross-check: quickselect's interpolated percentile must
		// bracket the sketch answer within alpha once the interpolation
		// span itself is accounted for.
		buf := append([]float64(nil), xs...)
		oracle := PercentileSelect(buf, p)
		lo := int(p / 100 * float64(len(sorted)-1))
		hi := min(lo+1, len(sorted)-1)
		span := sorted[hi] - sorted[lo]
		if math.Abs(got-oracle) > alpha*oracle+span+1e-12 {
			t.Errorf("%s p%.1f: sketch %.6g vs PercentileSelect %.6g exceeds alpha+interpolation slack",
				name, p, got, oracle)
		}
	}
}

// TestSketchParityAdversarial pins the sketch's error bound on the
// distributions that break naive fixed-bin histograms: a bimodal mix
// with a 1000x gap between modes, a Pareto-style heavy tail spanning
// five decades, and a lognormal latency-like stream.
func TestSketchParityAdversarial(t *testing.T) {
	r := NewRand(42)
	const n = 200000

	bimodal := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if r.Float64() < 0.7 {
			bimodal = append(bimodal, 1+r.Float64()) // fast mode ~1ms
		} else {
			bimodal = append(bimodal, 1000+1000*r.Float64()) // stuck mode ~1s
		}
	}
	heavy := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Pareto(alpha=1.2): p99/p50 ratio in the hundreds.
		heavy = append(heavy, math.Pow(1-r.Float64(), -1/1.2))
	}
	logn := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		logn = append(logn, Lognormal(r, math.Log(10), 1.5))
	}

	for _, alpha := range []float64{0.01, 0.02} {
		checkParity(t, "bimodal", bimodal, alpha)
		checkParity(t, "heavy-tail", heavy, alpha)
		checkParity(t, "lognormal", logn, alpha)
	}
}

// TestSketchMergeEqualsWhole: merging per-shard sketches must equal the
// sketch of the concatenated stream exactly (same buckets, same
// quantiles), independent of merge order — the property the parallel
// replay's byte-identity rests on.
func TestSketchMergeEqualsWhole(t *testing.T) {
	r := NewRand(7)
	const n = 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Lognormal(r, 2, 1)
	}
	whole := NewSketch(0.01)
	shards := []*Sketch{NewSketch(0.01), NewSketch(0.01), NewSketch(0.01), NewSketch(0.01)}
	for i, x := range xs {
		whole.Add(x)
		shards[i%len(shards)].Add(x)
	}
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 1, 0, 2}} {
		merged := NewSketch(0.01)
		for _, i := range order {
			merged.Merge(shards[i])
		}
		if merged.Count() != whole.Count() {
			t.Fatalf("merged count %d != whole %d", merged.Count(), whole.Count())
		}
		for _, p := range []float64{0, 25, 50, 95, 99, 100} {
			if got, want := merged.Quantile(p), whole.Quantile(p); got != want {
				t.Errorf("order %v p%g: merged %.9g != whole %.9g", order, p, got, want)
			}
		}
	}
}

// TestSketchZeroAndNegative: values below the trackable minimum
// (defensive callers may feed zeros) collapse into the zero bucket and
// report as 0 from the low quantiles.
func TestSketchZeroAndNegative(t *testing.T) {
	sk := NewSketch(0.01)
	sk.Add(0)
	sk.Add(-5)
	sk.Add(10)
	sk.Add(10)
	if sk.Count() != 4 {
		t.Fatalf("count = %d, want 4", sk.Count())
	}
	if got := sk.Quantile(0); got != 0 {
		t.Errorf("p0 = %g, want 0", got)
	}
	if got := sk.Quantile(99); math.Abs(got-10) > 0.2 {
		t.Errorf("p99 = %g, want ~10", got)
	}
}

// TestSketchReuse: Reset must clear the observations but keep accuracy,
// and an Init'd value sketch must behave like NewSketch — the pooling
// contract the fleet's per-window sketches rely on.
func TestSketchReuse(t *testing.T) {
	var sk Sketch
	sk.Init(0.02)
	for i := 1; i <= 1000; i++ {
		sk.Add(float64(i))
	}
	sk.Reset()
	if sk.Count() != 0 || sk.Sum() != 0 || sk.Quantile(50) != 0 {
		t.Fatal("Reset left observations behind")
	}
	sk.Add(100)
	if got := sk.Quantile(50); math.Abs(got-100) > 0.02*100 {
		t.Errorf("post-reset p50 = %g, want ~100", got)
	}
}

// TestSketchMemoryScalesWithRange: a million observations spanning
// three decades must occupy only a few hundred buckets — the property
// that unblocks week-scale replays.
func TestSketchMemoryScalesWithRange(t *testing.T) {
	r := NewRand(3)
	sk := NewSketch(0.01)
	for i := 0; i < 1_000_000; i++ {
		sk.Add(1 + 999*r.Float64())
	}
	if b := sk.Buckets(); b > 800 {
		t.Errorf("%d buckets for a 3-decade range at alpha 1%%, want <= 800", b)
	}
}
