package costmodel

import (
	"testing"
	"testing/quick"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/nmpsim"
	"hercules/internal/partition"
)

var lut = nmpsim.Default()

func cpuCost(m *model.Model, items, co, workers int, srvLabel string, useNMP bool) CPUBatchCost {
	srv := hw.ServerType(srvLabel)
	g := model.BuildGraph(m)
	all := make([]int, len(g.Ops))
	for i := range all {
		all[i] = i
	}
	return CPUBatch(DefaultParams(), srv, g, all, items, 1.0, co, workers, useNMP, lut)
}

func TestCPUBatchPositive(t *testing.T) {
	for _, m := range model.Zoo(model.Prod) {
		c := cpuCost(m, 64, 10, 2, "T2", false)
		if c.ServiceS <= 0 || c.SparseS < 0 || c.DenseS <= 0 {
			t.Errorf("%s: non-positive cost %+v", m.Name, c)
		}
		if c.CoreBusyS <= 0 || c.HostBytes <= 0 {
			t.Errorf("%s: missing accounting %+v", m.Name, c)
		}
	}
}

func TestCPUBatchScalesWithItems(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	small := cpuCost(m, 16, 10, 2, "T2", false)
	big := cpuCost(m, 256, 10, 2, "T2", false)
	if big.ServiceS <= small.ServiceS {
		t.Fatal("bigger batches must take longer")
	}
	// Per-item cost must *fall* with batch size (overhead amortization) —
	// the data-parallelism benefit the schedulers exploit.
	if big.ServiceS/256 >= small.ServiceS/16 {
		t.Errorf("per-item cost did not amortize: %.3g vs %.3g",
			big.ServiceS/256, small.ServiceS/16)
	}
}

func TestCPUCoLocationContention(t *testing.T) {
	// More co-located threads → less memory bandwidth each → slower
	// sparse phase for memory-bound models.
	m := model.DLRMRMC1(model.Prod)
	solo := cpuCost(m, 128, 1, 1, "T2", false)
	crowded := cpuCost(m, 128, 20, 1, "T2", false)
	if crowded.SparseS <= solo.SparseS {
		t.Fatalf("contention must slow sparse: %.4g vs %.4g", crowded.SparseS, solo.SparseS)
	}
}

func TestOpWorkersSpeedDenseUntilChainBound(t *testing.T) {
	m := model.MTWnD(model.Prod) // 5 parallel towers: real op-parallelism
	c1 := cpuCost(m, 256, 4, 1, "T2", false)
	c2 := cpuCost(m, 256, 4, 2, "T2", false)
	c4 := cpuCost(m, 256, 4, 4, "T2", false)
	if !(c2.DenseS < c1.DenseS && c4.DenseS < c2.DenseS) {
		t.Fatalf("parallel towers must speed up: %.4g %.4g %.4g", c1.DenseS, c2.DenseS, c4.DenseS)
	}
	// DLRM-RMC1 is one chain: speedup from workers must be marginal.
	r := model.DLRMRMC1(model.Prod)
	r1 := cpuCost(r, 256, 4, 1, "T2", false)
	r4 := cpuCost(r, 256, 4, 4, "T2", false)
	if r1.DenseS/r4.DenseS > 1.5 {
		t.Errorf("RMC1 dense chain gained %.2f× from 4 workers, want <1.5×", r1.DenseS/r4.DenseS)
	}
}

func TestFig5IdleFractionGrowsWithWorkers(t *testing.T) {
	p := DefaultParams()
	srv := hw.ServerType("T2")
	for _, m := range model.Zoo(model.Prod) {
		g := model.BuildGraph(m)
		prev := -1.0
		for _, w := range []int{1, 2, 3, 4} {
			idle := OpWorkerIdleFraction(p, srv, g, 256, w)
			if idle < 0 || idle > 1 {
				t.Fatalf("%s: idle fraction %v outside [0,1]", m.Name, idle)
			}
			if idle < prev-1e-9 {
				t.Errorf("%s: idle fraction not monotone in workers", m.Name)
			}
			prev = idle
		}
		if one := OpWorkerIdleFraction(p, srv, g, 256, 1); one > 1e-9 {
			t.Errorf("%s: single worker must have zero idle, got %v", m.Name, one)
		}
	}
}

func TestFig5IdleRange(t *testing.T) {
	// Paper: idle cycles range from 25% to 74% with 2 to 4 workers.
	p := DefaultParams()
	srv := hw.ServerType("T2")
	minIdle, maxIdle := 1.0, 0.0
	for _, m := range model.Zoo(model.Prod) {
		g := model.BuildGraph(m)
		for _, w := range []int{2, 3, 4} {
			idle := OpWorkerIdleFraction(p, srv, g, 256, w)
			if idle < minIdle {
				minIdle = idle
			}
			if idle > maxIdle {
				maxIdle = idle
			}
		}
	}
	if maxIdle < 0.5 {
		t.Errorf("max idle %.2f, want deep idling for chain-bound models", maxIdle)
	}
	if minIdle > 0.45 {
		t.Errorf("min idle %.2f, want parallel models to stay busy", minIdle)
	}
}

func TestNMPAcceleratesPooledModels(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	ddr := cpuCost(m, 128, 8, 2, "T3", false)
	nmp := cpuCost(m, 128, 8, 2, "T3", true)
	if nmp.SparseS >= ddr.SparseS {
		t.Fatalf("NMP must speed pooled gathers: %.4g vs %.4g", nmp.SparseS, ddr.SparseS)
	}
	if nmp.NMPBytes <= 0 {
		t.Error("NMP bytes must be accounted")
	}
	if nmp.HostBytes >= ddr.HostBytes {
		t.Error("NMP must relieve host channel traffic")
	}
}

func TestNMPUselessForOneHot(t *testing.T) {
	// Fig. 15: NMP behaves like plain DRAM for MT-WnD/DIN/DIEN
	// (lookup-only, no Gather-Reduce).
	for _, name := range []string{"MT-WnD", "DIN", "DIEN"} {
		m, _ := model.ByName(name, model.Prod)
		ddr := cpuCost(m, 128, 8, 2, "T3", false)
		nmp := cpuCost(m, 128, 8, 2, "T3", true)
		if nmp.ServiceS != ddr.ServiceS {
			t.Errorf("%s: NMP changed service time (%.4g vs %.4g) despite no pooling",
				name, nmp.ServiceS, ddr.ServiceS)
		}
		if nmp.NMPBytes != 0 {
			t.Errorf("%s: NMP bytes %v for a lookup-only model", name, nmp.NMPBytes)
		}
	}
}

func TestNMPIgnoredWithoutHardware(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	plain := cpuCost(m, 128, 8, 2, "T2", false)
	asked := cpuCost(m, 128, 8, 2, "T2", true) // T2 has no NMP DIMMs
	if plain.ServiceS != asked.ServiceS || asked.NMPBytes != 0 {
		t.Fatal("useNMP on a non-NMP server must be a no-op")
	}
}

// gpuCost computes a full-model-resident GPU batch cost: all indices
// cross PCIe and all gathers hit HBM.
func gpuCost(m *model.Model, items int) GPUBatchCost {
	g := model.BuildGraph(m)
	pl := partition.FullModelAccel(partition.BuildPlan(m, 1<<62))
	return GPUBatch(DefaultParams(), hw.V100(), g, g.DenseOps(), items, 1.0,
		pl.PCIeBytesPerItem, pl.GPUGatherBytesPerItem, len(m.Tables))
}

func TestGPUBatchPositive(t *testing.T) {
	for _, m := range model.Zoo(model.Small) {
		c := gpuCost(m, 512)
		if c.LoadS <= 0 || c.ComputeS <= 0 || c.PCIeBytes <= 0 {
			t.Errorf("%s: bad GPU cost %+v", m.Name, c)
		}
	}
}

func TestFig7LoadFractionByModel(t *testing.T) {
	// RMC3 is data-loading dominated (65–83%); MT-WnD and DIN keep the
	// GPU busier.
	frac := func(name string) float64 {
		m, _ := model.ByName(name, model.Small)
		c := gpuCost(m, 1000)
		return c.LoadS / (c.LoadS + c.ComputeS)
	}
	rmc3, wnd, din := frac("DLRM-RMC3"), frac("MT-WnD"), frac("DIN")
	if rmc3 < 0.55 {
		t.Errorf("RMC3 load fraction %.2f, want ≥0.55 (paper: 65–83%%)", rmc3)
	}
	if wnd > 0.35 {
		t.Errorf("MT-WnD load fraction %.2f, want small", wnd)
	}
	if din > 0.5 {
		t.Errorf("DIN load fraction %.2f, want mitigated by compute", din)
	}
}

func TestGPUFusionAmortizesLaunches(t *testing.T) {
	// DIEN's per-step GRU kernels make small batches launch-bound; per
	// item cost must fall steeply with fusion.
	m := model.DIEN(model.Small)
	small := gpuCost(m, 64)
	big := gpuCost(m, 4096)
	perItemSmall := (small.LoadS + small.ComputeS) / 64
	perItemBig := (big.LoadS + big.ComputeS) / 4096
	if perItemBig >= perItemSmall/3 {
		t.Errorf("fusion gain only %.1f×, want ≥3× for DIEN",
			perItemSmall/perItemBig)
	}
}

func TestGPUKernelCounts(t *testing.T) {
	dien := gpuCost(model.DIEN(model.Small), 256)
	rmc1 := gpuCost(model.DLRMRMC1(model.Small), 256)
	if dien.Kernels < 100 {
		t.Errorf("DIEN kernels = %v, want per-step launches", dien.Kernels)
	}
	if rmc1.Kernels > 30 {
		t.Errorf("RMC1 kernels = %v, want one per op", rmc1.Kernels)
	}
}

func TestGPUComputeMonotoneInItems(t *testing.T) {
	m := model.MTWnD(model.Small)
	f := func(a, b uint16) bool {
		x, y := int(a%4096)+1, int(b%4096)+1
		if x > y {
			x, y = y, x
		}
		cx, cy := gpuCost(m, x), gpuCost(m, y)
		return cx.ComputeS <= cy.ComputeS+1e-12 && cx.LoadS <= cy.LoadS+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCPUServiceMonotoneInItems(t *testing.T) {
	m := model.DLRMRMC2(model.Prod)
	f := func(a, b uint16) bool {
		x, y := int(a%1024)+1, int(b%1024)+1
		if x > y {
			x, y = y, x
		}
		cx := cpuCost(m, x, 10, 2, "T2", false)
		cy := cpuCost(m, y, 10, 2, "T2", false)
		return cx.ServiceS <= cy.ServiceS+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSparseScaleScalesSparsePhase(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	srv := hw.ServerType("T2")
	g := model.BuildGraph(m)
	all := make([]int, len(g.Ops))
	for i := range all {
		all[i] = i
	}
	lo := CPUBatch(DefaultParams(), srv, g, all, 128, 0.5, 10, 2, false, lut)
	hi := CPUBatch(DefaultParams(), srv, g, all, 128, 2.0, 10, 2, false, lut)
	if hi.SparseS <= lo.SparseS {
		t.Fatal("sparse scale must scale the sparse phase")
	}
	if hi.DenseS != lo.DenseS {
		t.Fatal("sparse scale must not affect the dense phase")
	}
}

func TestSubgraphCostsAdditive(t *testing.T) {
	// Sparse-only + dense-only phases should roughly compose to the
	// full-graph cost (modulo the per-batch dispatch overhead).
	p := DefaultParams()
	srv := hw.ServerType("T2")
	m := model.DLRMRMC1(model.Prod)
	g := model.BuildGraph(m)
	all := make([]int, len(g.Ops))
	for i := range all {
		all[i] = i
	}
	full := CPUBatch(p, srv, g, all, 128, 1, 10, 2, false, lut)
	sparse := CPUBatch(p, srv, g, g.SparseOps(), 128, 1, 10, 2, false, lut)
	dense := CPUBatch(p, srv, g, g.DenseOps(), 128, 1, 10, 2, false, lut)
	sum := sparse.SparseS + dense.DenseS
	whole := full.SparseS + full.DenseS
	if diff := sum - whole; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("phases not additive: %.6g vs %.6g", sum, whole)
	}
}

func TestDefaultsHaveSaneMagnitudes(t *testing.T) {
	// Guard against calibration drift: RMC1 batch-128 on 10×2 T2 threads
	// should serve in single-digit milliseconds (the paper's SLA targets
	// are 20–100 ms and per-server QPS in the hundreds).
	c := cpuCost(model.DLRMRMC1(model.Prod), 128, 10, 2, "T2", false)
	if c.ServiceS < 500e-6 || c.ServiceS > 50e-3 {
		t.Errorf("RMC1 batch service %.4g s outside plausible band", c.ServiceS)
	}
}
