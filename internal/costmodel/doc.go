// Package costmodel turns operator graphs into batch service times on
// concrete hardware. It is the analytical substitute for the paper's
// real-system measurement (§V): a roofline model with co-location
// contention on CPUs, a kernel/PCIe pipeline model for GPUs, and the
// NMP LUT (internal/nmpsim) for near-memory SLS operators.
//
// The server simulator (internal/sim) composes these batch costs into
// query latencies and throughput; the model is deliberately simple but
// reproduces the paper's first-order behaviours:
//
//   - sparse embedding gathers are memory-bandwidth bound and contend
//     across co-located threads (convexity of Fig. 11a–c);
//   - dense op chains limit op-parallel speedup, idling extra operator
//     workers (Fig. 5);
//   - GPU batches pay kernel-launch and PCIe data-loading overheads that
//     query fusion amortizes (Figs. 6, 7);
//   - NMP executes Gather-Reduce near memory at rank-parallel bandwidth,
//     but does nothing for one-hot lookups (Fig. 15).
//
// The surface: CPUBatch, GPUBatch and HostGather price one batch of one
// graph stage on one server under a given co-location level (Params,
// tuned in DefaultParams, holds the calibration constants);
// OpWorkerIdleFraction reproduces the Fig. 5 idle accounting.
package costmodel
