package costmodel

import (
	"math"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/nmpsim"
)

// Params collects the calibration constants of the cost model. The
// defaults were tuned so that absolute magnitudes land in the ranges the
// paper reports; the *shapes* (who wins, where crossovers fall) are
// robust to moderate changes, which BenchmarkAblation_NoContention and
// friends probe.
type Params struct {
	// GatherBWPerCore is the random-gather bandwidth one CPU core can
	// generate (pointer-chasing embedding reads), bytes/sec.
	GatherBWPerCore float64
	// HostRandomEff derates channel bandwidth for random 64 B gathers
	// (row-buffer misses, channel overhead).
	HostRandomEff float64
	// StreamEff derates channel bandwidth for streaming (weight) reads.
	StreamEff float64
	// OpOverheadS is the per-operator framework dispatch overhead per
	// batch on the CPU.
	OpOverheadS float64
	// DispatchOverheadS is the per-batch scheduling overhead (queue
	// handoff, sub-query assembly).
	DispatchOverheadS float64
	// CommOverheadS is the sparse→dense pipeline handoff cost (pooled
	// output transfer through the intermediate queue, Fig. 10b).
	CommOverheadS float64
	// InterferenceKappa is the per-extra-co-located-thread slowdown of
	// dense compute (cache/scheduler interference).
	InterferenceKappa float64
	// GatherKappa is the per-extra-co-located-thread degradation of
	// aggregate random-gather bandwidth (TLB/prefetcher/LLC conflicts) —
	// the interference that makes fewer, fatter threads win at tight SLA
	// (Fig. 4).
	GatherKappa float64
	// CPUEff is the achieved fraction of peak per-core FLOP/s.
	CPUEff float64
	// GPUNHalfItems is the batch size at which a GPU kernel reaches half
	// of peak utilization (occupancy ramp).
	GPUNHalfItems float64
	// GPUFixedLoadS is the fixed per-transfer PCIe/driver setup time.
	GPUFixedLoadS float64
	// GRUKernelsPerStep is the number of kernel launches per recurrence
	// step (gates are fused).
	GRUKernelsPerStep float64
}

// DefaultParams returns the calibrated constants.
func DefaultParams() Params {
	return Params{
		GatherBWPerCore:   6e9,
		HostRandomEff:     0.55,
		StreamEff:         0.80,
		OpOverheadS:       3e-6,
		DispatchOverheadS: 30e-6,
		CommOverheadS:     15e-6,
		InterferenceKappa: 0.008,
		GatherKappa:       0.022,
		CPUEff:            0.80,
		GPUNHalfItems:     192,
		GPUFixedLoadS:     12e-6,
		GRUKernelsPerStep: 1,
	}
}

// CPUBatchCost is the cost of serving one batch on one CPU inference
// thread.
type CPUBatchCost struct {
	ServiceS float64 // total service time (sparse + dense + overheads)
	SparseS  float64 // embedding phase (host gathers or NMP wait)
	DenseS   float64 // dense makespan over the thread's op workers
	// CoreBusyS is the core-seconds of occupancy this batch generates
	// (for CPU-utilization and power accounting).
	CoreBusyS float64
	// HostBytes is the main-memory traffic over the CPU channels.
	HostBytes float64
	// NMPBytes is the traffic served inside NMP DIMMs (0 without NMP).
	NMPBytes float64
	FLOPs    float64
}

// CPUBatch computes the service time of one batch of `items` ranked
// items executing the sub-graph `ids` on a CPU inference thread.
//
//	coThreads  — number of co-located inference threads on this CPU (m)
//	opWorkers  — physical cores assigned to this thread (o)
//	sparseScale — per-query pooling multiplier (workload.Query.SparseScale)
//	useNMP     — dispatch pooled Gather-Reduce ops to the NMP DIMMs
//
// The sparse phase runs first (embedding ops have no dependencies), then
// the dense phase is list-scheduled over the op workers.
func CPUBatch(p Params, srv hw.Server, g *model.Graph, ids []int, items int,
	sparseScale float64, coThreads, opWorkers int, useNMP bool, lut *nmpsim.LUT) CPUBatchCost {

	if coThreads < 1 {
		coThreads = 1
	}
	if opWorkers < 1 {
		opWorkers = 1
	}
	n := float64(items)
	var c CPUBatchCost

	// --- Sparse phase -------------------------------------------------
	var hostGatherBytes, nmpBytes, pooledOutBytes float64
	nSparse := 0
	for _, id := range ids {
		op := &g.Ops[id]
		if !op.Kind.IsSparse() {
			continue
		}
		nSparse++
		bytes := op.BytesPerItem * n * sparseScale
		if useNMP && srv.HasNMP() && op.Kind == model.OpEmbedPool {
			nmpBytes += bytes
			// Only the pooled vector crosses the channel to the host.
			if op.Table >= 0 {
				pooledOutBytes += float64(g.Model.Tables[op.Table].Dim) * 4 * n
			}
		} else {
			hostGatherBytes += bytes
		}
	}
	if hostGatherBytes > 0 {
		c.SparseS += hostGatherBytes / hostGatherBW(p, srv, coThreads, opWorkers)
	}
	if nmpBytes > 0 {
		ways := srv.Memory.NMPWays
		effBW := lut.AggregateBandwidth(ways) / float64(coThreads)
		c.SparseS += lut.FixedLaunchS + nmpBytes/effBW
		// Host-side: receive the pooled outputs.
		c.SparseS += pooledOutBytes / (srv.Memory.BandwidthBps * p.StreamEff / float64(coThreads))
	}
	if nSparse > 0 {
		c.SparseS += float64(nSparse) * p.OpOverheadS / float64(opWorkers)
	}
	c.HostBytes = hostGatherBytes + pooledOutBytes
	c.NMPBytes = nmpBytes

	// --- Dense phase ----------------------------------------------------
	dense := denseDurations(p, srv, g, ids, n, coThreads)
	if len(dense.ids) > 0 {
		c.DenseS = listSchedule(g, dense, opWorkers)
		c.FLOPs = dense.totalFLOPs
		c.HostBytes += dense.totalBytes
	}

	// --- Totals ---------------------------------------------------------
	c.ServiceS = p.DispatchOverheadS + c.SparseS + c.DenseS
	// Core occupancy: during the sparse phase all op workers participate
	// in (or spin on) gathers; during the dense phase only the working
	// time counts (idle workers show as low utilization, Fig. 4c/5).
	c.CoreBusyS = float64(opWorkers)*c.SparseS + dense.totalDur
	return c
}

// hostGatherBW returns one thread's share of random-gather bandwidth:
// the channel's random-access bandwidth degrades with each co-located
// gathering thread (GatherKappa), is split fairly, and is capped by what
// the thread's own cores can generate.
func hostGatherBW(p Params, srv hw.Server, coThreads, opWorkers int) float64 {
	aggregate := srv.Memory.BandwidthBps * p.HostRandomEff /
		(1 + p.GatherKappa*float64(coThreads-1))
	return math.Min(float64(opWorkers)*p.GatherBWPerCore, aggregate/float64(coThreads))
}

// denseWork carries the dense-phase durations for list scheduling.
type denseWork struct {
	ids        []int
	dur        []float64 // indexed by op ID (IDs index g.Ops)
	totalDur   float64
	totalFLOPs float64
	totalBytes float64
}

// denseDurations computes per-op durations for the dense ops of `ids`.
func denseDurations(p Params, srv hw.Server, g *model.Graph, ids []int, n float64, coThreads int) denseWork {
	w := denseWork{dur: make([]float64, len(g.Ops))}
	eta := 1 / (1 + p.InterferenceKappa*float64(coThreads-1))
	coreFLOPS := srv.CPU.PeakCoreFLOPS() * p.CPUEff * eta
	// Weight streams come from DRAM only when the thread's working set
	// exceeds its LLC share.
	llcShare := float64(srv.CPU.LLCBytes) / float64(coThreads)
	var weightSum float64
	for _, id := range ids {
		if !g.Ops[id].Kind.IsSparse() {
			weightSum += g.Ops[id].WeightBytes
		}
	}
	weightsInLLC := weightSum <= llcShare
	streamBW := srv.Memory.BandwidthBps * p.StreamEff / float64(coThreads)
	for _, id := range ids {
		op := &g.Ops[id]
		if op.Kind.IsSparse() {
			continue
		}
		flopsT := op.FLOPsPerItem * n / coreFLOPS
		memBytes := op.BytesPerItem * n
		if !weightsInLLC {
			memBytes += op.WeightBytes
		}
		memT := memBytes / streamBW
		d := math.Max(flopsT, memT) + p.OpOverheadS
		w.ids = append(w.ids, id)
		w.dur[id] = d
		w.totalDur += d
		w.totalFLOPs += op.FLOPsPerItem * n
		if !weightsInLLC {
			w.totalBytes += op.WeightBytes + op.BytesPerItem*n
		}
	}
	return w
}

// listSchedule performs greedy list scheduling of the dense ops onto
// `workers` parallel operator workers, respecting dependencies, and
// returns the makespan. Ready ops are started in topological order on
// the earliest-free worker — the same policy a DL-framework's inter-op
// thread pool uses.
func listSchedule(g *model.Graph, w denseWork, workers int) float64 {
	order := g.TopoOrder(w.ids)
	in := make([]bool, len(g.Ops))
	for _, id := range w.ids {
		in[id] = true
	}
	finish := make([]float64, len(g.Ops))
	free := make([]float64, workers)
	var makespan float64
	for _, id := range order {
		ready := 0.0
		for _, dep := range g.Ops[id].DependsOn {
			if in[dep] && finish[dep] > ready {
				ready = finish[dep]
			}
		}
		// Earliest-free worker.
		wi := 0
		for i := 1; i < workers; i++ {
			if free[i] < free[wi] {
				wi = i
			}
		}
		start := math.Max(ready, free[wi])
		end := start + w.dur[id]
		free[wi] = end
		finish[id] = end
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}

// OpWorkerIdleFraction reports the idle fraction of `workers` parallel
// operator workers executing the model's dense graph at the given batch
// size (Fig. 5c): idle = 1 − busy/(workers × makespan).
func OpWorkerIdleFraction(p Params, srv hw.Server, g *model.Graph, items, workers int) float64 {
	w := denseDurations(p, srv, g, g.DenseOps(), float64(items), 1)
	if len(w.ids) == 0 || workers < 1 {
		return 0
	}
	makespan := listSchedule(g, w, workers)
	if makespan <= 0 {
		return 0
	}
	busy := w.totalDur
	return 1 - busy/(float64(workers)*makespan)
}

// GPUBatchCost is the cost of one fused batch on an accelerator thread.
type GPUBatchCost struct {
	LoadS    float64 // PCIe data-loading stage
	ComputeS float64 // kernel execution stage
	// PCIeBytes is the host→device transfer volume.
	PCIeBytes float64
	// HBMBytes is the device-memory traffic.
	HBMBytes float64
	FLOPs    float64
	Kernels  float64
}

// GPUBatch computes the two pipeline stages (Fig. 7) of one batch of
// `items` executing the dense sub-graph `denseIDs` on the accelerator.
//
//	pcieBytesPerItem      — partition payload crossing PCIe per item
//	                        (sparse indices, partial sums, pooled outputs)
//	                        on top of the dense features;
//	hbmGatherBytesPerItem — accelerator-resident embedding traffic per
//	                        item (hot gathers), scaled by sparseScale;
//	gatherKernels         — number of embedding-gather kernel launches.
//
// Use partition.FullModelAccel / ModelBasedAccel / SDAccel to derive the
// payload values for the three placements of Fig. 10.
func GPUBatch(p Params, gpu *hw.GPU, g *model.Graph, denseIDs []int, items int,
	sparseScale, pcieBytesPerItem, hbmGatherBytesPerItem float64, gatherKernels int) GPUBatchCost {

	n := float64(items)
	var c GPUBatchCost

	// --- Data loading ---------------------------------------------------
	loadBytes := (float64(g.Model.DenseInDim)*4 + pcieBytesPerItem) * n
	c.PCIeBytes = loadBytes
	c.LoadS = p.GPUFixedLoadS + loadBytes/gpu.PCIeBps

	// --- Kernel execution -----------------------------------------------
	eff := n / (n + p.GPUNHalfItems)
	if hbmGatherBytesPerItem > 0 && gatherKernels > 0 {
		bytes := hbmGatherBytesPerItem * n * sparseScale
		c.HBMBytes += bytes
		c.ComputeS += float64(gatherKernels)*gpu.KernelLaunchS + bytes/gpu.HBMBps
		c.Kernels += float64(gatherKernels)
	}
	for _, id := range denseIDs {
		op := &g.Ops[id]
		if op.Kind.IsSparse() {
			continue // sparse work is covered by the gather payload above
		}
		launches := 1.0
		if op.Sequential {
			// Recurrent steps launch kernels per timestep.
			seq := g.Model.Tables[seqTableIndex(g.Model)].MeanPooling()
			launches = seq * p.GRUKernelsPerStep
		}
		flopsT := op.FLOPsPerItem * n / (gpu.FLOPSPeak * eff)
		bytes := op.WeightBytes + op.BytesPerItem*n
		memT := bytes / gpu.HBMBps
		c.HBMBytes += bytes
		c.FLOPs += op.FLOPsPerItem * n
		c.ComputeS += launches*gpu.KernelLaunchS + math.Max(flopsT, memT)
		c.Kernels += launches
	}
	return c
}

// HostGather returns the service time and core occupancy of gathering
// `bytes` of embedding rows host-side with `opWorkers` cores, contending
// with `coThreads` co-located gathering threads (used by the partitioned
// accelerator placements where the host serves cold entries).
func HostGather(p Params, srv hw.Server, bytes float64, coThreads, opWorkers, nOps int) (serviceS, coreBusyS float64) {
	if coThreads < 1 {
		coThreads = 1
	}
	if opWorkers < 1 {
		opWorkers = 1
	}
	bw := hostGatherBW(p, srv, coThreads, opWorkers)
	serviceS = bytes/bw + float64(nOps)*p.OpOverheadS/float64(opWorkers)
	return serviceS, serviceS * float64(opWorkers)
}

// seqTableIndex returns the behaviour-sequence table index, or 0.
func seqTableIndex(m *model.Model) int {
	for i, t := range m.Tables {
		if !t.Pooled && t.PoolingMax > 1 {
			return i
		}
	}
	return 0
}
