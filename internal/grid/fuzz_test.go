package grid

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzGridParse hammers the grid spec decoder with arbitrary bytes.
// Contract: never panic; any spec it accepts must validate cleanly,
// carry only finite non-negative intensities, and compile against a
// standard replay geometry for every region it names.
func FuzzGridParse(f *testing.F) {
	f.Add([]byte(`{"curve": "duck"}`))
	f.Add([]byte(`{"curve": "coal", "deferrable_frac": 0.4}`))
	f.Add([]byte(`{"hourly_g": [300,295,290,290,295,310,330,300,240,180,140,120,110,110,120,150,210,300,390,440,460,430,380,330]}`))
	f.Add([]byte(`{"regions": {"east": {"curve": "coal"}, "west": {"phase_h": -8}}}`))
	f.Add([]byte(`{"curve": "duck", "regions": {"west": {"hourly_g": [1,2,3]}}}`))
	f.Add([]byte(`{"hourly_g": [-5]}`))
	f.Add([]byte(`{"hourly_g": [1e999]}`))
	f.Add([]byte(`{"curve": "fusion"}`))
	f.Add([]byte(`{"curve": 17}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"regions": {"": {"curve": "duck"}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		// Accepted specs must be internally consistent: re-validation
		// agrees, and every declared region compiles.
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted spec fails Validate: %v", verr)
		}
		if d := s.Deferrable(); d < 0 || d >= 1 || math.IsNaN(d) {
			t.Fatalf("Deferrable() = %g out of range", d)
		}
		regions := []string{"r0"}
		for n := range s.Regions {
			regions = append(regions, n)
		}
		for _, r := range regions {
			tl, cerr := s.Compile(r, 288, 300, 0)
			if cerr != nil {
				t.Fatalf("accepted spec fails Compile(%q): %v", r, cerr)
			}
			for i := 0; i < tl.Steps(); i++ {
				if v := tl.At(i); v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("compiled intensity At(%d) = %g from accepted spec", i, v)
				}
			}
		}
	})
}

// TestFuzzGridSeedsAreCommitted pins the committed corpus: CI's
// fuzz-smoke job replays testdata/fuzz/FuzzGridParse first, so every
// known-bad shape must stay on disk as a regression test.
func TestFuzzGridSeedsAreCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzGridParse")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed fuzz corpus missing: %v", err)
	}
	var n int
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "go test fuzz v1\n") {
			t.Errorf("%s: not in 'go test fuzz v1' format", e.Name())
		}
		n++
	}
	if n == 0 {
		t.Fatalf("no corpus files committed under %s", dir)
	}
}
