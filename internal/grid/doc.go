// Package grid models the electricity grid a serving fleet draws
// from: per-region carbon-intensity timelines (gCO2/kWh) that the
// fleet engine prices its measured energy against, turning joules per
// query into grams of CO2 per query.
//
// The core type is Curve — a 24-hour intensity profile in grid-local
// time, either a named preset (a solar "duck" curve, a coal-heavy
// flat curve, a hydro-dominated flat curve) or 24 custom hourly
// values. A Spec binds curves to regions (with an optional per-region
// phase offset on top of the region's own diurnal phase) and declares
// the deferrable share of the query stream — the class a carbon-aware
// admission policy may defer to cleaner hours, while the realtime
// class is never touched. Compile samples a curve at the replay's
// interval midpoints into a Timeline, the flat per-interval view the
// engine reads; Timeline.At wraps modulo the day, so "next interval"
// reads at the day boundary behave like the day-ahead forecast every
// grid operator publishes.
//
// Everything here is deterministic and pure: a Timeline is a function
// of (spec, geometry, phase) only, so replays with a grid configured
// stay byte-identical run to run, and replays without one are
// untouched entirely.
package grid
