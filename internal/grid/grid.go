package grid

import (
	"fmt"
	"math"
	"sort"
)

// Curve is a 24-hour carbon-intensity profile in grid-local time:
// HourlyG[h] is the intensity in gCO2/kWh at hour h. Between hour
// points the intensity interpolates linearly, wrapping hour 23 back
// into hour 0 — a smooth diurnal profile from 24 samples.
type Curve struct {
	// Name labels the curve in results and summaries.
	Name string
	// HourlyG holds the intensity in gCO2/kWh at each hour of day.
	HourlyG [24]float64
}

// At evaluates the curve at a (fractional) hour of day, wrapping
// modulo 24 so any real-valued hour — including phase-shifted and
// next-day reads — lands on the profile.
func (c Curve) At(hour float64) float64 {
	h := math.Mod(hour, 24)
	if h < 0 {
		h += 24
	}
	i := int(h)
	if i > 23 {
		i = 23 // h == 24-ε rounding
	}
	f := h - float64(i)
	return c.HourlyG[i]*(1-f) + c.HourlyG[(i+1)%24]*f
}

// Mean returns the curve's unweighted daily mean intensity.
func (c Curve) Mean() float64 {
	var sum float64
	for _, v := range c.HourlyG {
		sum += v
	}
	return sum / 24
}

// presets are the named built-in curves. "duck" is a solar-heavy
// grid's duck curve: moderate overnight, a deep midday solar belly,
// and a steep evening ramp that peaks right where the reference
// diurnal traffic peak (hour 20) sits — the adversarial alignment the
// carbon-aware policies exist for. "coal" is a coal-dominated grid's
// flat high intensity and "hydro" a hydro-dominated grid's flat low
// one (both near their IPCC lifecycle medians); on a flat curve every
// hour costs the same, so carbon-aware scheduling has nothing to
// move — the control pair of every carbon experiment.
var presets = map[string]Curve{
	"duck": {Name: "duck", HourlyG: [24]float64{
		300, 295, 290, 290, 295, 310, 330, 300,
		240, 180, 140, 120, 110, 110, 120, 150,
		210, 300, 390, 440, 460, 430, 380, 330,
	}},
	"coal":  {Name: "coal", HourlyG: flat24(820)},
	"hydro": {Name: "hydro", HourlyG: flat24(24)},
}

func flat24(g float64) [24]float64 {
	var h [24]float64
	for i := range h {
		h[i] = g
	}
	return h
}

// Named resolves a preset curve by name; unknown names error listing
// what is registered.
func Named(name string) (Curve, error) {
	if c, ok := presets[name]; ok {
		return c, nil
	}
	return Curve{}, fmt.Errorf("grid: unknown curve %q (presets: %s)", name, presetList())
}

// Presets returns the built-in curve names, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func presetList() string {
	s := ""
	for i, n := range Presets() {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// Timeline is a curve compiled against a concrete replay geometry:
// one intensity value per trace interval, evaluated at the interval
// midpoint in grid-local time. A nil Timeline reads as zero intensity
// everywhere — the no-grid replay.
type Timeline struct {
	name string
	vals []float64
	mean float64
}

// CompileCurve samples a curve over steps intervals of stepS seconds,
// shifted by phaseH hours: an interval at replay-hour H reads the
// curve at local hour H − phaseH, matching how a region's diurnal
// traffic peak shifts (a region at PhaseH −8 peaks eight replay-hours
// early, when its local clock reads the reference evening).
func CompileCurve(c Curve, steps int, stepS, phaseH float64) (*Timeline, error) {
	if steps <= 0 || stepS <= 0 {
		return nil, fmt.Errorf("grid: bad geometry (%d steps of %gs)", steps, stepS)
	}
	t := &Timeline{name: c.Name, vals: make([]float64, steps)}
	var sum float64
	for i := range t.vals {
		midH := (float64(i) + 0.5) * stepS / 3600
		v := c.At(midH - phaseH)
		t.vals[i] = v
		sum += v
	}
	t.mean = sum / float64(steps)
	return t, nil
}

// At returns the intensity of interval i in gCO2/kWh, wrapping modulo
// the compiled day — reading one interval past the end yields the
// next day's first interval, the way a day-ahead forecast would.
func (t *Timeline) At(i int) float64 {
	if t == nil || len(t.vals) == 0 {
		return 0
	}
	i %= len(t.vals)
	if i < 0 {
		i += len(t.vals)
	}
	return t.vals[i]
}

// MeanG returns the timeline's mean intensity over the compiled day —
// the reference the carbon policies judge "low-carbon" and
// "high-carbon" hours against.
func (t *Timeline) MeanG() float64 {
	if t == nil {
		return 0
	}
	return t.mean
}

// Steps returns the number of compiled intervals.
func (t *Timeline) Steps() int {
	if t == nil {
		return 0
	}
	return len(t.vals)
}

// CurveName returns the name of the curve the timeline was compiled
// from.
func (t *Timeline) CurveName() string {
	if t == nil {
		return ""
	}
	return t.name
}
