package grid

import (
	"math"
	"strings"
	"testing"
)

func TestCurveAtInterpolatesAndWraps(t *testing.T) {
	c, err := Named("duck")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0); got != c.HourlyG[0] {
		t.Fatalf("At(0) = %g, want %g", got, c.HourlyG[0])
	}
	// Midpoint between two hour samples interpolates linearly.
	want := (c.HourlyG[8] + c.HourlyG[9]) / 2
	if got := c.At(8.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("At(8.5) = %g, want %g", got, want)
	}
	// Hour 23.5 wraps toward hour 0.
	want = (c.HourlyG[23] + c.HourlyG[0]) / 2
	if got := c.At(23.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("At(23.5) = %g, want %g", got, want)
	}
	// Negative and >24 hours land on the same profile.
	if a, b := c.At(-4), c.At(20); math.Abs(a-b) > 1e-12 {
		t.Fatalf("At(-4) = %g, At(20) = %g; want equal", a, b)
	}
	if a, b := c.At(30.25), c.At(6.25); math.Abs(a-b) > 1e-12 {
		t.Fatalf("At(30.25) = %g, At(6.25) = %g; want equal", a, b)
	}
}

func TestDuckCurveShape(t *testing.T) {
	c, _ := Named("duck")
	// Solar belly: midday must be the cheapest stretch, evening ramp
	// the dirtiest, with the peak on the reference traffic peak hour.
	if c.At(12) >= c.At(2) {
		t.Fatalf("midday %g not below overnight %g", c.At(12), c.At(2))
	}
	peak, peakH := 0.0, 0
	for h := 0; h < 24; h++ {
		if c.HourlyG[h] > peak {
			peak, peakH = c.HourlyG[h], h
		}
	}
	if peakH != 20 {
		t.Fatalf("duck peak at hour %d, want 20 (the reference diurnal traffic peak)", peakH)
	}
}

func TestNamedUnknownListsPresets(t *testing.T) {
	_, err := Named("fusion")
	if err == nil {
		t.Fatal("want error for unknown curve")
	}
	for _, p := range Presets() {
		if !strings.Contains(err.Error(), p) {
			t.Fatalf("error %q does not list preset %q", err, p)
		}
	}
}

func TestCompileCurveGeometry(t *testing.T) {
	c, _ := Named("coal")
	tl, err := CompileCurve(c, 288, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Steps() != 288 {
		t.Fatalf("Steps = %d, want 288", tl.Steps())
	}
	// Flat curve: every interval reads the same value, mean included.
	for i := 0; i < 288; i++ {
		if tl.At(i) != 820 {
			t.Fatalf("At(%d) = %g, want 820", i, tl.At(i))
		}
	}
	if tl.MeanG() != 820 {
		t.Fatalf("MeanG = %g, want 820", tl.MeanG())
	}
	if tl.CurveName() != "coal" {
		t.Fatalf("CurveName = %q, want coal", tl.CurveName())
	}
	for _, bad := range [][2]float64{{0, 300}, {-1, 300}, {10, 0}, {10, -5}} {
		if _, err := CompileCurve(c, int(bad[0]), bad[1], 0); err == nil {
			t.Fatalf("CompileCurve(%v) accepted bad geometry", bad)
		}
	}
}

func TestCompilePhaseShiftsCurve(t *testing.T) {
	c, _ := Named("duck")
	base, err := CompileCurve(c, 288, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	// PhaseH −6: the region's local clock runs six hours behind the
	// replay clock, so replay interval i reads what the unshifted
	// timeline reads six hours (72 intervals) later.
	shifted, err := CompileCurve(c, 288, 300, -6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 288; i++ {
		if a, b := shifted.At(i), base.At(i+72); math.Abs(a-b) > 1e-9 {
			t.Fatalf("interval %d: shifted %g != base+72 %g", i, a, b)
		}
	}
}

func TestTimelineAtWraps(t *testing.T) {
	c, _ := Named("duck")
	tl, _ := CompileCurve(c, 288, 300, 0)
	if a, b := tl.At(288), tl.At(0); a != b {
		t.Fatalf("At(288) = %g, want wrap to At(0) = %g", a, b)
	}
	if a, b := tl.At(-1), tl.At(287); a != b {
		t.Fatalf("At(-1) = %g, want wrap to At(287) = %g", a, b)
	}
	var nilTL *Timeline
	if nilTL.At(3) != 0 || nilTL.MeanG() != 0 || nilTL.Steps() != 0 || nilTL.CurveName() != "" {
		t.Fatal("nil Timeline must read as the no-grid zero")
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Spec
		want string // substring of the error, "" = valid
	}{
		{"zero", Spec{}, ""},
		{"preset", Spec{Curve: "duck"}, ""},
		{"custom", Spec{HourlyG: flatSlice(100)}, ""},
		{"both", Spec{Curve: "duck", HourlyG: flatSlice(100)}, "mutually exclusive"},
		{"unknown curve", Spec{Curve: "fusion"}, "unknown curve"},
		{"short hourly", Spec{HourlyG: []float64{1, 2, 3}}, "exactly 24"},
		{"negative", Spec{HourlyG: flatAt(flatSlice(100), 3, -1)}, "hourly_g[3]: negative"},
		{"nan", Spec{HourlyG: flatAt(flatSlice(100), 7, math.NaN())}, "hourly_g[7]"},
		{"inf", Spec{HourlyG: flatAt(flatSlice(100), 0, math.Inf(1))}, "hourly_g[0]"},
		{"bad frac", Spec{Curve: "duck", DeferrableFrac: 1.5}, "deferrable_frac"},
		{"neg frac", Spec{Curve: "duck", DeferrableFrac: -0.1}, "deferrable_frac"},
		{"region bad curve", Spec{Regions: map[string]Region{"east": {Curve: "fusion"}}}, `regions[east]`},
		{"region short", Spec{Regions: map[string]Region{"west": {HourlyG: []float64{1}}}}, `regions[west]`},
		{"region inf phase", Spec{Regions: map[string]Region{"west": {PhaseH: math.Inf(-1)}}}, "phase_h"},
		{"empty region", Spec{Regions: map[string]Region{"": {Curve: "duck"}}}, "empty region name"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func flatSlice(g float64) []float64 {
	s := make([]float64, 24)
	for i := range s {
		s[i] = g
	}
	return s
}

func flatAt(s []float64, i int, v float64) []float64 {
	s[i] = v
	return s
}

func TestSpecDeferrable(t *testing.T) {
	if got := (Spec{}).Deferrable(); got != DefaultDeferrableFrac {
		t.Fatalf("default Deferrable = %g, want %g", got, DefaultDeferrableFrac)
	}
	if got := (Spec{DeferrableFrac: 0.4}).Deferrable(); got != 0.4 {
		t.Fatalf("Deferrable = %g, want 0.4", got)
	}
}

func TestSpecCheckRegions(t *testing.T) {
	s := Spec{Curve: "duck", Regions: map[string]Region{"east": {PhaseH: 1}}}
	if err := s.CheckRegions([]string{"east", "west"}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	s.Regions["mars"] = Region{Curve: "coal"}
	err := s.CheckRegions([]string{"east", "west"})
	if err == nil || !strings.Contains(err.Error(), `"mars"`) ||
		!strings.Contains(err.Error(), "east, west") {
		t.Fatalf("error %v, want unknown region %q against the known list", err, "mars")
	}
}

func TestSpecForRegion(t *testing.T) {
	s := Spec{
		Curve:          "duck",
		DeferrableFrac: 0.3,
		Regions: map[string]Region{
			"east": {Curve: "coal"},
			"west": {PhaseH: -8},
		},
	}
	e := s.ForRegion("east")
	if e.Curve != "duck" || e.DeferrableFrac != 0.3 {
		t.Fatalf("ForRegion dropped spec-level fields: %+v", e)
	}
	if len(e.Regions) != 1 || e.Regions["east"].Curve != "coal" {
		t.Fatalf("ForRegion(east) regions = %+v, want only east", e.Regions)
	}
	if o := s.ForRegion("other"); len(o.Regions) != 0 {
		t.Fatalf("ForRegion(other) regions = %+v, want none", o.Regions)
	}
}

func TestSpecCompile(t *testing.T) {
	s := Spec{
		Curve: "duck",
		Regions: map[string]Region{
			"east":  {Curve: "coal"},
			"west":  {PhaseH: -6},
			"south": {HourlyG: flatSlice(55)},
		},
	}
	// Region with its own preset.
	tl, err := s.Compile("east", 288, 300, 0)
	if err != nil || tl.CurveName() != "coal" || tl.At(0) != 820 {
		t.Fatalf("east: tl=%v err=%v, want coal preset", tl, err)
	}
	// Region with custom hourly values.
	tl, err = s.Compile("south", 288, 300, 0)
	if err != nil || tl.At(100) != 55 {
		t.Fatalf("south: tl=%v err=%v, want flat 55 custom curve", tl, err)
	}
	// Unlisted region inherits the default curve, unshifted.
	def, err := s.Compile("other", 288, 300, 0)
	if err != nil || def.CurveName() != "duck" {
		t.Fatalf("other: tl=%v err=%v, want default duck", def, err)
	}
	// Phase-only override composes the grid phase on top of the
	// region's diurnal phase.
	shifted, err := s.Compile("west", 288, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := shifted.At(0), def.At(72); math.Abs(a-b) > 1e-9 {
		t.Fatalf("west At(0) = %g, want default At(72) = %g", a, b)
	}
	// Same phase again via the engine-supplied diurnal phase argument.
	viaArg, err := s.Compile("other", 288, 300, -6)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := viaArg.At(0), shifted.At(0); math.Abs(a-b) > 1e-9 {
		t.Fatalf("phase via arg %g != phase via override %g", a, b)
	}
	// No default curve, region not listed: no grid there.
	bare := Spec{Regions: map[string]Region{"east": {Curve: "coal"}}}
	tl, err = bare.Compile("west", 288, 300, 0)
	if err != nil || tl != nil {
		t.Fatalf("west under bare spec: tl=%v err=%v, want nil timeline", tl, err)
	}
}

func TestParseSpecErrorsCarryLineContext(t *testing.T) {
	// Syntax error: line:col of the offending byte.
	_, err := ParseSpec([]byte("{\n  \"curve\": \"duck\",\n  !\n}"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("syntax error %v, want line 3 context", err)
	}
	// Type error: line:col too.
	_, err = ParseSpec([]byte("{\n  \"curve\": 17\n}"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("type error %v, want line 2 context", err)
	}
	// Semantic region error: the region key's line.
	doc := "{\n  \"curve\": \"duck\",\n  \"regions\": {\n    \"east\": {\"phase_h\": 1},\n    \"west\": {\"curve\": \"fusion\"}\n  }\n}"
	_, err = ParseSpec([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "regions[west] (line 5)") {
		t.Fatalf("region error %v, want regions[west] (line 5)", err)
	}
	// Unknown-region errors reuse the same located keys.
	s, err := ParseSpec([]byte(doc[:strings.Index(doc, ",\n    \"west\"")] + "\n  }\n}"))
	if err != nil {
		t.Fatal(err)
	}
	err = s.CheckRegions([]string{"west"})
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("unknown-region error %v, want line 4 context", err)
	}
}

func TestParseForms(t *testing.T) {
	if s, err := Parse(""); err != nil || s.Enabled() {
		t.Fatalf("Parse(\"\") = %+v, %v; want disabled zero spec", s, err)
	}
	s, err := Parse("duck")
	if err != nil || s.Curve != "duck" {
		t.Fatalf("Parse(duck) = %+v, %v", s, err)
	}
	if _, err := Parse("fusion"); err == nil {
		t.Fatal("Parse(fusion) must error")
	}
	s, err = Parse(`{"curve": "coal", "deferrable_frac": 0.4}`)
	if err != nil || s.Curve != "coal" || s.DeferrableFrac != 0.4 {
		t.Fatalf("inline Parse = %+v, %v", s, err)
	}
	if _, err := Parse("@/nonexistent/grid.json"); err == nil {
		t.Fatal("Parse(@missing) must error")
	}
}
