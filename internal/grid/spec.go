package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Spec is the JSON description of a run's grid: a default intensity
// curve (a preset name or 24 custom hourly values — never both),
// optional per-region overrides, and the deferrable share of the
// query stream. The zero value means "no grid": carbon accounting is
// off and the replay is byte-identical to a grid-less run.
type Spec struct {
	// Curve names a preset intensity curve (Presets) every region
	// defaults to.
	Curve string `json:"curve,omitempty"`
	// HourlyG supplies a custom default curve as exactly 24 hourly
	// gCO2/kWh values (mutually exclusive with Curve).
	HourlyG []float64 `json:"hourly_g,omitempty"`
	// Regions overrides the curve per region name. A region listed
	// with only a phase offset inherits the default curve shifted; a
	// region not listed uses the default curve unshifted. With no
	// default curve at all, unlisted regions replay with zero
	// intensity (their grid is simply not modeled).
	Regions map[string]Region `json:"regions,omitempty"`
	// DeferrableFrac is the share of every workload's stream in the
	// deferrable query class — the only fraction a carbon-aware
	// admission policy may defer to cleaner hours (realtime queries
	// are never deferred). 0 defers to the default (0.25); must stay
	// below 1.
	DeferrableFrac float64 `json:"deferrable_frac,omitempty"`

	// regionLine maps region keys to their 1-based line in the parsed
	// document (ParseSpec sets it; specs decoded as part of a larger
	// document leave it nil) — validation errors carry it as context.
	regionLine map[string]int
}

// Region is one region's grid override: its own curve (preset name or
// 24 hourly values), or just a phase offset on the spec's default
// curve. PhaseH shifts the region's grid-local clock on top of the
// region's own diurnal phase — for regions whose grid peaks offset
// from their traffic.
type Region struct {
	Curve   string    `json:"curve,omitempty"`
	HourlyG []float64 `json:"hourly_g,omitempty"`
	PhaseH  float64   `json:"phase_h,omitempty"`
}

// DefaultDeferrableFrac is the deferrable-class share assumed when a
// grid spec declares none.
const DefaultDeferrableFrac = 0.25

// Enabled reports whether the spec turns carbon accounting on.
func (s Spec) Enabled() bool {
	return s.Curve != "" || len(s.HourlyG) > 0 || len(s.Regions) > 0
}

// Deferrable returns the deferrable-class share, defaulted and
// clamped to [0, 0.95].
func (s Spec) Deferrable() float64 {
	f := s.DeferrableFrac
	if f == 0 {
		f = DefaultDeferrableFrac
	}
	return math.Min(math.Max(f, 0), 0.95)
}

// Validate checks the spec: curve names must resolve, custom curves
// must be exactly 24 finite non-negative values, curve and hourly_g
// are mutually exclusive, and the deferrable fraction must sit in
// [0, 1). Region errors carry the region's line when the spec came
// through ParseSpec.
func (s Spec) Validate() error {
	if err := validateCurve(s.Curve, s.HourlyG); err != nil {
		return err
	}
	if s.DeferrableFrac < 0 || s.DeferrableFrac >= 1 {
		return fmt.Errorf("grid: deferrable_frac must be in [0, 1), got %g", s.DeferrableFrac)
	}
	names := make([]string, 0, len(s.Regions))
	for n := range s.Regions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if n == "" {
			return fmt.Errorf("grid: regions%s: empty region name", s.lineCtx(n))
		}
		r := s.Regions[n]
		if err := validateCurve(r.Curve, r.HourlyG); err != nil {
			return fmt.Errorf("grid: regions[%s]%s: %w", n, s.lineCtx(n), err)
		}
		if math.IsNaN(r.PhaseH) || math.IsInf(r.PhaseH, 0) {
			return fmt.Errorf("grid: regions[%s]%s: phase_h must be finite", n, s.lineCtx(n))
		}
	}
	return nil
}

// validateCurve checks one curve selection (shared by the spec level
// and each region). The "grid: " prefix is the caller's.
func validateCurve(name string, hourly []float64) error {
	if name != "" && len(hourly) > 0 {
		return fmt.Errorf("curve %q and hourly_g are mutually exclusive; pick one", name)
	}
	if name != "" {
		if _, err := Named(name); err != nil {
			return fmt.Errorf("unknown curve %q (presets: %s)", name, presetList())
		}
	}
	if len(hourly) > 0 && len(hourly) != 24 {
		return fmt.Errorf("hourly_g needs exactly 24 values, got %d", len(hourly))
	}
	for i, v := range hourly {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("hourly_g[%d]: intensity must be finite, got %g", i, v)
		}
		if v < 0 {
			return fmt.Errorf("hourly_g[%d]: negative intensity %g gCO2/kWh", i, v)
		}
	}
	return nil
}

// CheckRegions validates that every region override names a region of
// the replay, erroring — with the offending key's line when known —
// against the sorted known-region list otherwise.
func (s Spec) CheckRegions(known []string) error {
	if len(s.Regions) == 0 {
		return nil
	}
	ok := make(map[string]bool, len(known))
	for _, r := range known {
		ok[r] = true
	}
	names := make([]string, 0, len(s.Regions))
	for n := range s.Regions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !ok[n] {
			sorted := append([]string(nil), known...)
			sort.Strings(sorted)
			return fmt.Errorf("grid: regions%s names unknown region %q (replay regions: %s)",
				s.lineCtx(n), n, strings.Join(sorted, ", "))
		}
	}
	return nil
}

// lineCtx renders " (line N)" for a region key ParseSpec located, or
// nothing.
func (s Spec) lineCtx(region string) string {
	if ln := s.regionLine[region]; ln > 0 {
		return fmt.Sprintf(" (line %d)", ln)
	}
	return ""
}

// ForRegion returns the spec narrowed to one region of a multi-region
// replay: the default curve and class split survive, and only the
// named region's override is kept — what each regional engine
// compiles against.
func (s Spec) ForRegion(name string) Spec {
	out := s
	out.Regions = nil
	out.regionLine = nil
	if r, ok := s.Regions[name]; ok {
		out.Regions = map[string]Region{name: r}
	}
	return out
}

// Compile resolves the region's curve and samples it over the replay
// geometry, folding the region's diurnal phase (phaseH) together with
// the region's own grid phase offset. It returns nil — zero intensity
// everywhere — when the spec models no grid for this region.
func (s Spec) Compile(region string, steps int, stepS, phaseH float64) (*Timeline, error) {
	c, extraPhase, ok, err := s.curveFor(region)
	if err != nil || !ok {
		return nil, err
	}
	return CompileCurve(c, steps, stepS, phaseH+extraPhase)
}

// curveFor resolves the curve and extra grid-phase offset one region
// replays under; ok is false when the spec models no grid there.
func (s Spec) curveFor(region string) (c Curve, extraPhase float64, ok bool, err error) {
	if r, found := s.Regions[region]; found {
		if r.Curve != "" || len(r.HourlyG) > 0 {
			c, err = resolveCurve(r.Curve, r.HourlyG)
			return c, r.PhaseH, err == nil, err
		}
		// Phase-only override: inherit the default curve, shifted.
		extraPhase = r.PhaseH
	}
	if s.Curve == "" && len(s.HourlyG) == 0 {
		return Curve{}, 0, false, nil
	}
	c, err = resolveCurve(s.Curve, s.HourlyG)
	return c, extraPhase, err == nil, err
}

// resolveCurve turns a (preset name, custom hourly values) selection
// into a Curve.
func resolveCurve(name string, hourly []float64) (Curve, error) {
	if len(hourly) > 0 {
		if len(hourly) != 24 {
			return Curve{}, fmt.Errorf("grid: hourly_g needs exactly 24 values, got %d", len(hourly))
		}
		c := Curve{Name: "custom"}
		copy(c.HourlyG[:], hourly)
		return c, nil
	}
	return Named(name)
}

// ParseSpec decodes a standalone grid spec document. Decode errors
// carry the line:column of the offending byte; semantic errors (an
// unknown curve, a negative or non-finite intensity, a malformed
// region entry) name the JSON path, with the region key's line where
// one is to blame. It never panics on any input.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if len(bytes.TrimSpace(data)) == 0 {
		return s, fmt.Errorf("grid: empty grid spec (want {\"curve\":...} or {\"regions\":{...}})")
	}
	if err := json.Unmarshal(data, &s); err != nil {
		var syn *json.SyntaxError
		var typ *json.UnmarshalTypeError
		switch {
		case errAs(err, &syn):
			ln, col := lineCol(data, syn.Offset)
			return Spec{}, fmt.Errorf("grid: line %d:%d: %v", ln, col, syn)
		case errAs(err, &typ):
			ln, col := lineCol(data, typ.Offset)
			return Spec{}, fmt.Errorf("grid: line %d:%d: %v", ln, col, typ)
		}
		return Spec{}, fmt.Errorf("grid: %w", err)
	}
	s.regionLine = regionKeyLines(data)
	return s, s.Validate()
}

// errAs is errors.As without the reflective fallback cost on the hot
// no-error path (decode errors here are one of two concrete types).
func errAs[T error](err error, target *T) bool {
	e, ok := err.(T)
	if ok {
		*target = e
	}
	return ok
}

// Parse resolves the string form a run spec or -grid flag carries: a
// preset curve name ("duck"), a JSON spec file reference
// ("@grid.json"), or inline JSON. An empty string means no grid.
func Parse(arg string) (Spec, error) {
	arg = strings.TrimSpace(arg)
	switch {
	case arg == "":
		return Spec{}, nil
	case strings.HasPrefix(arg, "@"):
		path := strings.TrimPrefix(arg, "@")
		data, err := os.ReadFile(path)
		if err != nil {
			return Spec{}, fmt.Errorf("grid: %w", err)
		}
		return ParseSpec(data)
	case strings.HasPrefix(arg, "{"):
		return ParseSpec([]byte(arg))
	default:
		if _, err := Named(arg); err != nil {
			return Spec{}, err
		}
		return Spec{Curve: arg}, nil
	}
}

// lineCol converts a byte offset into 1-based line and column.
func lineCol(data []byte, off int64) (line, col int) {
	if off < 0 {
		off = 0
	}
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	pre := data[:off]
	line = 1 + bytes.Count(pre, []byte("\n"))
	if i := bytes.LastIndexByte(pre, '\n'); i >= 0 {
		col = int(off) - i
	} else {
		col = int(off) + 1
	}
	return line, col
}

// regionKeyLines walks the document's tokens and records the line of
// every key directly inside the top-level "regions" object — the
// context validation errors cite. Best-effort: any token error just
// stops the walk (the unmarshal above already accepted the document).
func regionKeyLines(data []byte) map[string]int {
	dec := json.NewDecoder(bytes.NewReader(data))
	type frame struct {
		obj       bool
		key       string
		expectKey bool
	}
	var stack []frame
	var lines map[string]int
	for {
		tok, err := dec.Token()
		if err != nil {
			return lines
		}
		off := dec.InputOffset() // end of the token: same line as the key
		switch t := tok.(type) {
		case json.Delim:
			switch t {
			case '{':
				stack = append(stack, frame{obj: true, expectKey: true})
			case '[':
				stack = append(stack, frame{})
			default: // '}' or ']'
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
				if len(stack) > 0 && stack[len(stack)-1].obj {
					stack[len(stack)-1].expectKey = true
				}
			}
		case string:
			if len(stack) == 0 {
				continue
			}
			top := &stack[len(stack)-1]
			if top.obj && top.expectKey {
				top.key = t
				top.expectKey = false
				if len(stack) == 2 && stack[0].key == "regions" {
					if lines == nil {
						lines = make(map[string]int)
					}
					lines[t] = 1 + bytes.Count(data[:off], []byte("\n"))
				}
			} else if top.obj {
				top.expectKey = true
			}
		default:
			if len(stack) > 0 && stack[len(stack)-1].obj {
				stack[len(stack)-1].expectKey = true
			}
		}
	}
}
