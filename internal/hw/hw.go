package hw

import (
	"fmt"
	"strings"
)

// CPU describes a server-grade multi-core processor.
type CPU struct {
	Name          string
	FrequencyHz   float64 // base clock
	PhysicalCores int     // hyperthreading is not used by the task scheduler
	L1Bytes       int64
	L2Bytes       int64
	LLCBytes      int64
	TDPWatts      float64
	IdleWatts     float64 // package idle power
	// FLOPsPerCycle is the per-core sustained FP32 throughput in
	// FLOP/cycle for dense GEMM-like kernels (AVX-512 FMA on these parts,
	// derated for real DL-framework efficiency).
	FLOPsPerCycle float64
}

// PeakCoreFLOPS returns one core's sustained FLOP/s.
func (c CPU) PeakCoreFLOPS() float64 { return c.FrequencyHz * c.FLOPsPerCycle }

// Memory describes a memory subsystem: plain DDR4 or an NMP DIMM
// configuration with N-way rank-level parallelism.
type Memory struct {
	Name            string
	Channels        int
	DIMMsPerChannel int
	RanksPerDIMM    int
	CapacityBytes   int64
	BandwidthBps    float64 // aggregate CPU-visible read bandwidth
	TDPWatts        float64
	IdleWatts       float64
	// NMPWays is the rank-level parallelism factor for near-memory SLS
	// execution (0 for plain DDR4: no near-memory compute).
	NMPWays int
}

// IsNMP reports whether this memory configuration can execute pooled
// embedding (Gather-Reduce) operations near memory.
func (m Memory) IsNMP() bool { return m.NMPWays > 0 }

// GPU describes a PCIe-attached DL accelerator.
type GPU struct {
	Name          string
	BoostClockHz  float64
	SMs           int
	MemoryBytes   int64
	HBMBps        float64 // device memory bandwidth
	PCIeBps       float64 // host<->device transfer bandwidth
	TDPWatts      float64
	IdleWatts     float64 // leakage + fixed power while powered on
	FLOPSPeak     float64 // sustained FP32 FLOP/s for GEMM-like kernels
	KernelLaunchS float64 // fixed per-kernel launch overhead in seconds
}

// Server is one physical server type Th: a CPU, a memory configuration
// and optionally a GPU accelerator.
type Server struct {
	Type   string // "T1".."T10"
	CPU    CPU
	Memory Memory
	GPU    *GPU // nil when the server has no accelerator
}

// HasGPU reports whether the server carries an accelerator.
func (s Server) HasGPU() bool { return s.GPU != nil }

// HasNMP reports whether the server's memory supports near-memory SLS.
func (s Server) HasNMP() bool { return s.Memory.IsNMP() }

// String renders the paper's composition label, e.g. "CPU-T2+NMPx2+V100".
func (s Server) String() string {
	label := s.CPU.Name
	if s.Memory.IsNMP() {
		label += fmt.Sprintf("+NMPx%d", s.Memory.NMPWays)
	}
	if s.GPU != nil {
		label += "+" + s.GPU.Name
	}
	return label
}

// TDPWatts returns the aggregate component TDP used as an absolute cap on
// provisioned power for this server type.
func (s Server) TDPWatts() float64 {
	w := s.CPU.TDPWatts + s.Memory.TDPWatts
	if s.GPU != nil {
		w += s.GPU.TDPWatts
	}
	return w
}

// IdleWatts returns the power drawn by a powered-on but idle server.
func (s Server) IdleWatts() float64 {
	w := s.CPU.IdleWatts + s.Memory.IdleWatts
	if s.GPU != nil {
		w += s.GPU.IdleWatts
	}
	return w
}

// CPUT1 is the Intel Xeon D-2191 (Table II, CPU-T1): 18 cores @ 1.6 GHz.
func CPUT1() CPU {
	return CPU{
		Name:          "CPU-T1",
		FrequencyHz:   1.6e9,
		PhysicalCores: 18,
		L1Bytes:       32 << 10,
		L2Bytes:       1 << 20,
		LLCBytes:      int64(24.75 * (1 << 20)),
		TDPWatts:      86,
		IdleWatts:     26,
		FLOPsPerCycle: 16, // AVX-512 FMA derated to framework efficiency
	}
}

// CPUT2 is the Intel Xeon Gold 6138 (Table II, CPU-T2): 20 cores @ 2.0 GHz.
func CPUT2() CPU {
	return CPU{
		Name:          "CPU-T2",
		FrequencyHz:   2.0e9,
		PhysicalCores: 20,
		L1Bytes:       32 << 10,
		L2Bytes:       1 << 20,
		LLCBytes:      int64(27.5 * (1 << 20)),
		TDPWatts:      125,
		IdleWatts:     38,
		FLOPsPerCycle: 16,
	}
}

// DDR4T1 is the 64 GB single-rank DDR4 configuration paired with CPU-T1.
func DDR4T1() Memory {
	return Memory{
		Name:            "DDR4",
		Channels:        4,
		DIMMsPerChannel: 1,
		RanksPerDIMM:    1,
		CapacityBytes:   64 << 30,
		BandwidthBps:    60e9, // 4 channels of DDR4-2400, derated
		TDPWatts:        28,
		IdleWatts:       8,
	}
}

// DDR4T2 is the 128 GB dual-rank DDR4 configuration paired with CPU-T2.
func DDR4T2() Memory {
	return Memory{
		Name:            "DDR4",
		Channels:        4,
		DIMMsPerChannel: 1,
		RanksPerDIMM:    2,
		CapacityBytes:   128 << 30,
		BandwidthBps:    68e9,
		TDPWatts:        50,
		IdleWatts:       14,
	}
}

// NMP returns the DIMM-based near-memory configuration with the given
// rank-parallelism ways (2, 4 or 8 per Table II). Effective SLS bandwidth
// scales with ways; CPU-visible bandwidth matches the DDR4 baseline.
func NMP(ways int) Memory {
	base := DDR4T2()
	m := Memory{
		Name:            fmt.Sprintf("NMPx%d", ways),
		Channels:        4,
		DIMMsPerChannel: ways / 2,
		RanksPerDIMM:    2,
		CapacityBytes:   int64(ways/2) * (128 << 30),
		BandwidthBps:    base.BandwidthBps,
		TDPWatts:        float64(ways/2) * 50,
		IdleWatts:       float64(ways/2)*14 + float64(ways)*2.5, // + NMP unit idle
		NMPWays:         ways,
	}
	return m
}

// P100 is the NVIDIA P100 descriptor (Table II).
func P100() *GPU {
	return &GPU{
		Name:          "P100",
		BoostClockHz:  1.480e9,
		SMs:           56,
		MemoryBytes:   16 << 30,
		HBMBps:        720e9,
		PCIeBps:       16e9,
		TDPWatts:      300,
		IdleWatts:     52,
		FLOPSPeak:     8.0e12, // ~9.3 TF peak FP32, derated
		KernelLaunchS: 8e-6,
	}
}

// V100 is the NVIDIA V100 descriptor (Table II).
func V100() *GPU {
	return &GPU{
		Name:          "V100",
		BoostClockHz:  1.530e9,
		SMs:           80,
		MemoryBytes:   16 << 30,
		HBMBps:        900e9,
		PCIeBps:       16e9,
		TDPWatts:      300,
		IdleWatts:     55,
		FLOPSPeak:     12.5e12, // ~14 TF peak FP32, derated
		KernelLaunchS: 7e-6,
	}
}

// ServerType constructs the Table II server type with the given label
// ("T1".."T10"). It panics on unknown labels; server types are static
// configuration, so a typo is a programming error.
func ServerType(label string) Server {
	switch label {
	case "T1":
		return Server{Type: "T1", CPU: CPUT1(), Memory: DDR4T1()}
	case "T2":
		return Server{Type: "T2", CPU: CPUT2(), Memory: DDR4T2()}
	case "T3":
		return Server{Type: "T3", CPU: CPUT2(), Memory: NMP(2)}
	case "T4":
		return Server{Type: "T4", CPU: CPUT2(), Memory: NMP(4)}
	case "T5":
		return Server{Type: "T5", CPU: CPUT2(), Memory: NMP(8)}
	case "T6":
		return Server{Type: "T6", CPU: CPUT1(), Memory: DDR4T1(), GPU: P100()}
	case "T7":
		return Server{Type: "T7", CPU: CPUT2(), Memory: DDR4T2(), GPU: V100()}
	case "T8":
		return Server{Type: "T8", CPU: CPUT2(), Memory: NMP(2), GPU: V100()}
	case "T9":
		return Server{Type: "T9", CPU: CPUT2(), Memory: NMP(4), GPU: V100()}
	case "T10":
		return Server{Type: "T10", CPU: CPUT2(), Memory: NMP(8), GPU: V100()}
	}
	panic("hw: unknown server type " + label)
}

// AllServerTypes returns T1..T10 in order.
func AllServerTypes() []Server {
	out := make([]Server, 0, 10)
	for i := 1; i <= 10; i++ {
		out = append(out, ServerType(fmt.Sprintf("T%d", i)))
	}
	return out
}

// Fleet describes the availability of each server type in the prototype
// cluster (Table II: N1–N10).
type Fleet struct {
	Types  []Server
	Counts []int
}

// DefaultFleet returns the paper's prototype fleet:
// N1..N10 = 100, 100, 15, 10, 5, 10, 5, 6, 4, 2.
func DefaultFleet() Fleet {
	counts := []int{100, 100, 15, 10, 5, 10, 5, 6, 4, 2}
	return Fleet{Types: AllServerTypes(), Counts: counts}
}

// CPUOnlyFleet returns the Day-D1 CPU-only cluster (T1 and T2 only).
func CPUOnlyFleet() Fleet {
	return Fleet{
		Types:  []Server{ServerType("T1"), ServerType("T2")},
		Counts: []int{100, 100},
	}
}

// AcceleratedFleet returns the Day-D2 fleet from §VI-C: T1 retired from
// counting as "accelerated", the cluster is T1–T10 with availabilities
// (100, 70, 15, 10, 5, 10, 5, 6, 4, 2) per Figure 17.
func AcceleratedFleet() Fleet {
	counts := []int{100, 70, 15, 10, 5, 10, 5, 6, 4, 2}
	return Fleet{Types: AllServerTypes(), Counts: counts}
}

// SmallFleet returns the Fig. 8 characterization trio at a 76-server
// scale — plain DDR4 CPU (T2), NMP (T3) and GPU (T7) servers — the
// replay cluster of the fleet experiments and the default of
// spec-driven fleet runs.
func SmallFleet() Fleet {
	return Fleet{
		Types:  []Server{ServerType("T2"), ServerType("T3"), ServerType("T7")},
		Counts: []int{60, 12, 4},
	}
}

// FleetNames lists the named fleets NamedFleet resolves.
var FleetNames = []string{"small", "cpu", "default", "accelerated"}

// NamedFleet resolves a fleet by name — the serializable fleet
// reference run specs and CLI -fleet flags share.
func NamedFleet(name string) (Fleet, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "small":
		return SmallFleet(), nil
	case "cpu":
		return CPUOnlyFleet(), nil
	case "default":
		return DefaultFleet(), nil
	case "accelerated":
		return AcceleratedFleet(), nil
	}
	return Fleet{}, fmt.Errorf("hw: unknown fleet %q (named fleets: %s)",
		name, strings.Join(FleetNames, ", "))
}

// Count returns the availability of the given type label, or 0.
func (f Fleet) Count(label string) int {
	for i, t := range f.Types {
		if t.Type == label {
			return f.Counts[i]
		}
	}
	return 0
}

// Total returns the total number of servers in the fleet.
func (f Fleet) Total() int {
	sum := 0
	for _, c := range f.Counts {
		sum += c
	}
	return sum
}
