// Package hw describes the heterogeneous server hardware of the Hercules
// paper (Table II): two Intel Xeon CPU generations, DDR4 and DIMM-based
// near-memory-processing (NMP) memory configurations, and two NVIDIA GPU
// generations, composed into the ten server types T1–T10 with their fleet
// availabilities N1–N10.
//
// All quantities are plain SI: bytes, bytes/second, FLOP/second, watts,
// hertz. The cost model (internal/costmodel) consumes these descriptors;
// nothing here performs simulation.
//
// The surface: Server (built by ServerType("T1").."T10") bundles a CPU,
// a memory configuration and an optional GPU; Fleet pairs server types
// with availability counts. DefaultFleet is the paper's N1–N10 mix;
// CPUOnlyFleet and AcceleratedFleet are the evaluation's restricted
// fleets, and the fleet-replay experiments compose their own small
// fleets from individual types.
package hw
