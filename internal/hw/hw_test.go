package hw

import (
	"strings"
	"testing"
)

func TestServerTypeLabels(t *testing.T) {
	for i, want := range []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10"} {
		s := AllServerTypes()[i]
		if s.Type != want {
			t.Errorf("type %d = %s, want %s", i, s.Type, want)
		}
	}
}

func TestServerTypeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ServerType(bogus) must panic")
		}
	}()
	ServerType("T99")
}

func TestTableIICPUParams(t *testing.T) {
	t1, t2 := CPUT1(), CPUT2()
	if t1.PhysicalCores != 18 || t2.PhysicalCores != 20 {
		t.Errorf("core counts: %d, %d", t1.PhysicalCores, t2.PhysicalCores)
	}
	if t1.FrequencyHz != 1.6e9 || t2.FrequencyHz != 2.0e9 {
		t.Errorf("frequencies wrong")
	}
	if t1.TDPWatts != 86 || t2.TDPWatts != 125 {
		t.Errorf("TDPs wrong")
	}
	if t2.PeakCoreFLOPS() <= t1.PeakCoreFLOPS() {
		t.Errorf("CPU-T2 core must be faster than CPU-T1")
	}
}

func TestTableIIMemoryParams(t *testing.T) {
	cases := []struct {
		m        Memory
		capacity int64
		tdp      float64
		nmp      bool
	}{
		{DDR4T1(), 64 << 30, 28, false},
		{DDR4T2(), 128 << 30, 50, false},
		{NMP(2), 128 << 30, 50, true},
		{NMP(4), 256 << 30, 100, true},
		{NMP(8), 512 << 30, 200, true},
	}
	for _, c := range cases {
		if c.m.CapacityBytes != c.capacity {
			t.Errorf("%s capacity = %d, want %d", c.m.Name, c.m.CapacityBytes, c.capacity)
		}
		if c.m.TDPWatts != c.tdp {
			t.Errorf("%s TDP = %v, want %v", c.m.Name, c.m.TDPWatts, c.tdp)
		}
		if c.m.IsNMP() != c.nmp {
			t.Errorf("%s IsNMP = %v", c.m.Name, c.m.IsNMP())
		}
	}
}

func TestNMPIdleExceedsDDR4(t *testing.T) {
	// Section VI-B: NMP configurations dissipate extra idle power vs DDR4.
	if NMP(2).IdleWatts <= DDR4T2().IdleWatts {
		t.Error("NMPx2 idle power must exceed DDR4")
	}
	if NMP(8).IdleWatts <= NMP(2).IdleWatts {
		t.Error("NMPx8 idle power must exceed NMPx2")
	}
}

func TestGPUParams(t *testing.T) {
	p, v := P100(), V100()
	if p.SMs != 56 || v.SMs != 80 {
		t.Errorf("SMs: %d, %d", p.SMs, v.SMs)
	}
	if p.MemoryBytes != 16<<30 || v.MemoryBytes != 16<<30 {
		t.Error("GPU memory must be 16 GB")
	}
	if p.PCIeBps != 16e9 || v.PCIeBps != 16e9 {
		t.Error("PCIe Gen3 must be 16 GB/s")
	}
	if v.FLOPSPeak <= p.FLOPSPeak {
		t.Error("V100 must outperform P100")
	}
	if p.TDPWatts != 300 || v.TDPWatts != 300 {
		t.Error("GPU TDP must be 300 W")
	}
}

func TestServerComposition(t *testing.T) {
	t7 := ServerType("T7")
	if !t7.HasGPU() || t7.HasNMP() {
		t.Error("T7 is CPU+GPU")
	}
	t3 := ServerType("T3")
	if t3.HasGPU() || !t3.HasNMP() {
		t.Error("T3 is CPU+NMP")
	}
	t10 := ServerType("T10")
	if !t10.HasGPU() || !t10.HasNMP() {
		t.Error("T10 is CPU+NMP+GPU")
	}
	if got := t10.String(); !strings.Contains(got, "NMPx8") || !strings.Contains(got, "V100") {
		t.Errorf("T10 label = %s", got)
	}
}

func TestServerPowerAggregation(t *testing.T) {
	t2 := ServerType("T2")
	if t2.TDPWatts() != 125+50 {
		t.Errorf("T2 TDP = %v", t2.TDPWatts())
	}
	t7 := ServerType("T7")
	if t7.TDPWatts() != 125+50+300 {
		t.Errorf("T7 TDP = %v", t7.TDPWatts())
	}
	if t7.IdleWatts() <= t2.IdleWatts() {
		t.Error("GPU server idle must exceed CPU-only idle (leakage)")
	}
	for _, s := range AllServerTypes() {
		if s.IdleWatts() >= s.TDPWatts() {
			t.Errorf("%s idle %v >= TDP %v", s.Type, s.IdleWatts(), s.TDPWatts())
		}
	}
}

func TestDefaultFleet(t *testing.T) {
	f := DefaultFleet()
	if len(f.Types) != 10 || len(f.Counts) != 10 {
		t.Fatal("fleet must have 10 types")
	}
	want := []int{100, 100, 15, 10, 5, 10, 5, 6, 4, 2}
	for i, c := range want {
		if f.Counts[i] != c {
			t.Errorf("N%d = %d, want %d", i+1, f.Counts[i], c)
		}
	}
	if f.Count("T3") != 15 || f.Count("T42") != 0 {
		t.Error("Count lookup wrong")
	}
	if f.Total() != 257 {
		t.Errorf("total = %d", f.Total())
	}
}

func TestCPUOnlyAndAcceleratedFleets(t *testing.T) {
	cf := CPUOnlyFleet()
	if len(cf.Types) != 2 || cf.Total() != 200 {
		t.Error("CPU-only fleet must be 100×T1 + 100×T2")
	}
	af := AcceleratedFleet()
	if af.Count("T2") != 70 {
		t.Errorf("accelerated fleet T2 = %d, want 70 (Fig. 17)", af.Count("T2"))
	}
}
