package perfbench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Schema is the report format version; bump on incompatible changes.
const Schema = 1

// Stat summarizes one metric across a benchmark's repetitions.
type Stat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// add folds one observation into the stat (n is the prior count).
func (s Stat) add(x float64, n int) Stat {
	if n == 0 {
		return Stat{Mean: x, Min: x, Max: x}
	}
	s.Mean = (s.Mean*float64(n) + x) / float64(n+1)
	if x < s.Min {
		s.Min = x
	}
	if x > s.Max {
		s.Max = x
	}
	return s
}

// Bench is one benchmark aggregated over its repetitions. Metrics is
// keyed by unit exactly as `go test` prints it ("ns/op", "B/op",
// "allocs/op", plus every b.ReportMetric counter), and by derived
// throughput names such as "queries_per_sec".
type Bench struct {
	Name    string          `json:"name"`
	Reps    int             `json:"reps"`
	Metrics map[string]Stat `json:"metrics"`
}

// Report is the machine-readable result of one harness run.
type Report struct {
	Schema      int     `json:"schema"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	CPUs        int     `json:"cpus"`
	GeneratedAt string  `json:"generated_at,omitempty"`
	Command     string  `json:"command,omitempty"`
	Benchmarks  []Bench `json:"benchmarks"`
}

// Find returns the named benchmark, or nil.
func (r *Report) Find(name string) *Bench {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// rawResult is one parsed benchmark output line (one repetition).
type rawResult struct {
	Name    string
	Iters   int
	Metrics map[string]float64
}

// Parse reads `go test -bench` output and returns every benchmark
// result in order (one entry per repetition when -count > 1).
//
// Two line shapes occur in real output. A quiet benchmark puts name and
// metrics on one line:
//
//	BenchmarkFleetDay-8  3  699349304 ns/op  960277 queries  ...
//
// A benchmark that prints (ours render their experiment tables) splits
// them — go test emits the name, the benchmark's own output interleaves,
// and the metrics arrive on a later line of their own:
//
//	BenchmarkFleetDay 	fleet day: 960277 queries, 0.0 violation min
//	       3	 699349304 ns/op	 960277 queries	 ...
//
// so a bare "Benchmark..." prefix arms a pending name that the next
// parsable metrics line resolves. Everything else (experiment tables,
// PASS/ok trailers) is ignored.
func Parse(r io.Reader) ([]rawResult, error) {
	var out []rawResult
	pending := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) > 0 && strings.HasPrefix(f[0], "Benchmark") && len(f[0]) > len("Benchmark") {
			if raw, ok := parseResult(f[0], f[1:]); ok {
				out = append(out, raw)
				pending = ""
			} else {
				pending = f[0]
			}
			continue
		}
		if pending == "" {
			continue
		}
		if raw, ok := parseResult(pending, f); ok {
			out = append(out, raw)
			pending = ""
		}
	}
	return out, sc.Err()
}

// parseResult parses the metrics fields of one result — the iteration
// count followed by value/unit pairs — for the named benchmark. The -N
// GOMAXPROCS suffix is stripped from the name so reports compare across
// machines.
func parseResult(name string, f []string) (rawResult, bool) {
	if len(f) < 3 || len(f)%2 == 0 {
		return rawResult{}, false
	}
	iters, err := strconv.Atoi(f[0])
	if err != nil {
		return rawResult{}, false
	}
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	raw := rawResult{Name: name, Iters: iters, Metrics: make(map[string]float64, (len(f)-1)/2)}
	for i := 1; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return rawResult{}, false
		}
		raw.Metrics[f[i+1]] = v
	}
	if _, ok := raw.Metrics["ns/op"]; !ok {
		// Every genuine result line carries ns/op; this rejects
		// numeric-looking rows inside a benchmark's printed tables.
		return rawResult{}, false
	}
	return raw, true
}

// Aggregate groups repetitions by benchmark name (first-seen order)
// and summarizes every metric. When a repetition carries both "ns/op"
// and a "queries" counter, the derived "queries_per_sec" throughput is
// recorded alongside — the domain metric the fleet replay's perf
// trajectory is tracked by.
func Aggregate(raws []rawResult) []Bench {
	var order []string
	byName := make(map[string]*Bench)
	for _, raw := range raws {
		b := byName[raw.Name]
		if b == nil {
			b = &Bench{Name: raw.Name, Metrics: make(map[string]Stat)}
			byName[raw.Name] = b
			order = append(order, raw.Name)
		}
		if ns, ok := raw.Metrics["ns/op"]; ok && ns > 0 {
			if q, ok := raw.Metrics["queries"]; ok {
				raw.Metrics["queries_per_sec"] = q / (ns / 1e9)
			}
		}
		for unit, v := range raw.Metrics {
			b.Metrics[unit] = b.Metrics[unit].add(v, b.Reps)
		}
		b.Reps++
	}
	out := make([]Bench, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

// NewReport wraps aggregated benchmarks with run provenance, stamped
// with the current wall clock. Code that needs a reproducible report
// (tests, replayed tooling) should call ReportAt with an explicit
// timestamp instead.
func NewReport(benches []Bench, command string) *Report {
	return ReportAt(time.Now(), benches, command) //lint:allow wallclock report provenance timestamp, not replay state
}

// ReportAt is NewReport with the generation time injected by the
// caller — the deterministic entry point.
func ReportAt(t time.Time, benches []Bench, command string) *Report {
	return &Report{
		Schema:      Schema,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GeneratedAt: t.UTC().Format(time.RFC3339),
		Command:     command,
		Benchmarks:  benches,
	}
}

// RunConfig describes one harness invocation of the benchmark suite.
type RunConfig struct {
	Pkg       string // package to bench (default ".")
	Bench     string // -bench regexp (default "BenchmarkFleetDay")
	BenchTime string // -benchtime (default "1x")
	Count     int    // -count repetitions (default 3)
	Timeout   string // go test -timeout (default "30m")
	Stdout    io.Writer
}

func (c *RunConfig) defaults() {
	if c.Pkg == "" {
		c.Pkg = "."
	}
	if c.Bench == "" {
		c.Bench = "BenchmarkFleetDay"
	}
	if c.BenchTime == "" {
		c.BenchTime = "1x"
	}
	if c.Count <= 0 {
		c.Count = 3
	}
	if c.Timeout == "" {
		c.Timeout = "30m"
	}
}

// Run executes the configured `go test -bench` subprocess, streams its
// output to cfg.Stdout (when set), and returns the aggregated report.
func Run(cfg RunConfig) (*Report, error) {
	cfg.defaults()
	args := []string{"test", "-run", "^$",
		"-bench", cfg.Bench,
		"-benchtime", cfg.BenchTime,
		"-count", strconv.Itoa(cfg.Count),
		"-benchmem",
		"-timeout", cfg.Timeout,
		cfg.Pkg,
	}
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if cfg.Stdout != nil {
		cfg.Stdout.Write(out)
	}
	if err != nil {
		return nil, fmt.Errorf("perfbench: go %s: %w", strings.Join(args, " "), err)
	}
	raws, err := Parse(strings.NewReader(string(out)))
	if err != nil {
		return nil, fmt.Errorf("perfbench: parse: %w", err)
	}
	if len(raws) == 0 {
		return nil, fmt.Errorf("perfbench: no benchmark results matched -bench %s", cfg.Bench)
	}
	return NewReport(Aggregate(raws), "go "+strings.Join(args, " ")), nil
}

// WriteFile serializes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a report written by WriteFile.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	if r.Schema > Schema {
		return nil, fmt.Errorf("perfbench: %s: schema %d newer than supported %d", path, r.Schema, Schema)
	}
	return &r, nil
}
