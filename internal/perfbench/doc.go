// Package perfbench turns `go test -bench` runs into machine-readable
// performance reports and gates regressions against committed
// baselines.
//
// The repo's benchmark suite (bench_test.go) reports both runtime costs
// (ns/op, B/op, allocs/op) and domain counters (queries replayed,
// SLA-violation minutes). perfbench executes a named subset of that
// suite for several repetitions, parses the standard benchmark output,
// aggregates each metric's mean/min/max across repetitions, derives
// throughput counters (queries_per_sec), and serializes the result as
// JSON (BENCH_fleet.json at the repo root is the committed baseline for
// the fleet replay hot path).
//
// Compare checks a fresh report against a baseline: both wall-clock
// and allocation metrics are compared on their per-repetition minima
// (the least noisy point estimate of a benchmark's steady-state cost —
// first repetitions additionally pay one-time cache fills), each family
// against its own threshold. cmd/hercules-bench wraps this
// into the CI gate:
//
//	hercules-bench -bench BenchmarkFleetDay -count 3 \
//	    -out fresh.json -compare BENCH_fleet.json -threshold 15%
//
// exits non-zero when the fresh run regresses past the threshold. The
// methodology follows the disciplined-harness lesson of low-level
// benchmarking studies (RZBENCH, arXiv:0712.3389; the Broadwell/Cascade
// Lake characterization, arXiv:2002.03344): performance claims are only
// durable when the measurement procedure and its baselines are recorded
// and repeatable.
package perfbench
