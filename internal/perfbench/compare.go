package perfbench

import (
	"fmt"
	"strconv"
	"strings"
)

// Thresholds sets the allowed growth per metric family, as fractions
// (0.15 = +15%). A negative fraction disables that family's gate.
type Thresholds struct {
	// Time gates "ns/op", compared on per-repetition minima: the
	// fastest repetition is the least noisy estimate of a benchmark's
	// true cost, so scheduler hiccups in other repetitions cannot fail
	// the build.
	Time float64
	// Alloc gates "allocs/op" and "B/op", also on per-repetition
	// minima: steady-state allocations are near-deterministic, but the
	// first repetition in a process additionally pays one-time cache
	// fills (the fleet service-time grids), which must not trip the
	// gate.
	Alloc float64
}

// Delta is one gated comparison between baseline and fresh.
type Delta struct {
	Bench   string  `json:"bench"`
	Metric  string  `json:"metric"`
	Base    float64 `json:"base"`
	Fresh   float64 `json:"fresh"`
	Ratio   float64 `json:"ratio"` // fresh / base (0 when base is 0)
	Limit   float64 `json:"limit"` // max allowed ratio
	Regress bool    `json:"regress"`
	// Missing marks a baseline benchmark absent from the fresh run —
	// a silently vanished guard counts as a regression.
	Missing bool `json:"missing,omitempty"`
}

// Compare gates every baseline benchmark against the fresh report.
// Benchmarks only present in the fresh report pass silently (new
// benchmarks need no baseline); benchmarks only present in the
// baseline regress (the guard must not vanish unnoticed).
func Compare(base, fresh *Report, th Thresholds) []Delta {
	var out []Delta
	for _, bb := range base.Benchmarks {
		fb := fresh.Find(bb.Name)
		if fb == nil {
			out = append(out, Delta{Bench: bb.Name, Missing: true, Regress: true})
			continue
		}
		out = append(out, compareMetric(&bb, fb, "ns/op", th.Time, minOf)...)
		out = append(out, compareMetric(&bb, fb, "allocs/op", th.Alloc, minOf)...)
		out = append(out, compareMetric(&bb, fb, "B/op", th.Alloc, minOf)...)
	}
	return out
}

func minOf(s Stat) float64 { return s.Min }

func compareMetric(base, fresh *Bench, unit string, frac float64, point func(Stat) float64) []Delta {
	if frac < 0 {
		return nil
	}
	bs, ok := base.Metrics[unit]
	if !ok {
		return nil
	}
	d := Delta{Bench: base.Name, Metric: unit, Base: point(bs), Limit: 1 + frac}
	fs, ok := fresh.Metrics[unit]
	if !ok {
		// A gated metric that vanished from the fresh report (say, a
		// run without -benchmem) is a disappeared guard, not a pass.
		d.Missing = true
		d.Regress = true
		return []Delta{d}
	}
	d.Fresh = point(fs)
	if d.Base > 0 {
		d.Ratio = d.Fresh / d.Base
		d.Regress = d.Ratio > d.Limit
	} else {
		// A zero baseline (e.g. zero allocs) regresses on any growth.
		d.Regress = d.Fresh > 0
	}
	return []Delta{d}
}

// Regressions filters the deltas that failed their gate.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regress {
			out = append(out, d)
		}
	}
	return out
}

// FormatDeltas renders a comparison table for terminal output.
func FormatDeltas(deltas []Delta) string {
	var sb strings.Builder
	sb.WriteString("benchmark\tmetric\tbase\tfresh\tratio\tlimit\tverdict\n")
	for _, d := range deltas {
		if d.Missing {
			metric := d.Metric
			if metric == "" {
				metric = "-"
			}
			fmt.Fprintf(&sb, "%s\t%s\t-\t-\t-\t-\tMISSING (regression)\n", d.Bench, metric)
			continue
		}
		verdict := "ok"
		if d.Regress {
			verdict = "REGRESSION"
		} else if d.Ratio > 0 && d.Ratio < 1 {
			verdict = fmt.Sprintf("ok (%.0f%% faster)", (1-d.Ratio)*100)
		}
		fmt.Fprintf(&sb, "%s\t%s\t%s\t%s\t%.3f\t%.2f\t%s\n",
			d.Bench, d.Metric, formatVal(d.Base), formatVal(d.Fresh), d.Ratio, d.Limit, verdict)
	}
	return sb.String()
}

func formatVal(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// ParseFraction reads a threshold flag: "15%", "0.15" and "15" (values
// above 1 read as percentages) all mean +15%; "off" disables the gate.
func ParseFraction(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if strings.EqualFold(s, "off") {
		return -1, nil
	}
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("perfbench: bad threshold %q", s)
	}
	if pct || v > 1 {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("perfbench: negative threshold %q (use \"off\" to disable)", s)
	}
	return v, nil
}
