package perfbench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fixedStamp is the injected generation time: tests build reports via
// ReportAt so their output is reproducible run to run.
var fixedStamp = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// cannedOutput mimics real -count 3 output: printing benchmarks split
// the name from the metrics line (their own output interleaves, here
// including a numeric-looking table row that must not parse), quiet
// ones keep both on one line with the -N GOMAXPROCS suffix.
const cannedOutput = `goos: linux
goarch: amd64
pkg: hercules
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFleetDay 	fleet day: 960277 queries, 0.0 violation min
center	count	frac
110	42	0.0400
       1	 200000000 ns/op	         0 drop_pct	    960277 queries	         0 sla_violation_min	15837386 B/op	    2342 allocs/op
BenchmarkFleetDay 	fleet day: 960277 queries, 0.0 violation min
       1	 100000000 ns/op	         0 drop_pct	    960277 queries	         0 sla_violation_min	15837386 B/op	    2342 allocs/op
BenchmarkFleetDay-8 	       1	 300000000 ns/op	         0 drop_pct	    960277 queries	         0 sla_violation_min	15837386 B/op	    2346 allocs/op
BenchmarkFig13Online_FleetReplay-8 	       1	1500000000 ns/op	         8 router_policy_combos
PASS
ok  	hercules	3.755s
`

func parseCanned(t *testing.T) []Bench {
	t.Helper()
	raws, err := Parse(strings.NewReader(cannedOutput))
	if err != nil {
		t.Fatal(err)
	}
	return Aggregate(raws)
}

func TestParseAndAggregate(t *testing.T) {
	benches := parseCanned(t)
	if len(benches) != 2 {
		t.Fatalf("benches = %d, want 2 (got %+v)", len(benches), benches)
	}
	fd := benches[0]
	if fd.Name != "BenchmarkFleetDay" || fd.Reps != 3 {
		t.Fatalf("first bench %q reps %d, want BenchmarkFleetDay x3", fd.Name, fd.Reps)
	}
	ns := fd.Metrics["ns/op"]
	if ns.Min != 1e8 || ns.Max != 3e8 || ns.Mean != 2e8 {
		t.Fatalf("ns/op stat = %+v", ns)
	}
	if got := fd.Metrics["allocs/op"]; got.Min != 2342 || got.Max != 2346 {
		t.Fatalf("allocs/op stat = %+v", got)
	}
	// Derived throughput: 960277 queries at 1e8 ns/op best rep.
	qps := fd.Metrics["queries_per_sec"]
	if qps.Max < 9.6e6 || qps.Max > 9.7e6 {
		t.Fatalf("queries_per_sec max = %v, want ~9.6M", qps.Max)
	}
	if benches[1].Name != "BenchmarkFig13Online_FleetReplay" {
		t.Fatalf("second bench %q", benches[1].Name)
	}
	if _, ok := benches[1].Metrics["router_policy_combos"]; !ok {
		t.Fatal("custom ReportMetric counter lost in parsing")
	}
}

func TestParseRejectsNoise(t *testing.T) {
	raws, err := Parse(strings.NewReader("fleet day: 12 queries, 3 drops\nBenchmarkX notanint 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raws) != 0 {
		t.Fatalf("parsed noise as results: %+v", raws)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := ReportAt(fixedStamp, parseCanned(t), "go test -bench X")
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Benchmarks) != 2 {
		t.Fatalf("roundtrip lost data: %+v", got)
	}
	if got.GeneratedAt != "2026-01-02T03:04:05Z" {
		t.Fatalf("GeneratedAt = %q, want the injected stamp", got.GeneratedAt)
	}
	if got.Find("BenchmarkFleetDay") == nil || got.Find("BenchmarkNope") != nil {
		t.Fatal("Find broken after roundtrip")
	}
	if got.Find("BenchmarkFleetDay").Metrics["ns/op"].Mean != 2e8 {
		t.Fatal("metrics lost precision in roundtrip")
	}
}

func report(nsMin, allocsMean float64) *Report {
	return ReportAt(fixedStamp, []Bench{{
		Name: "BenchmarkFleetDay",
		Reps: 3,
		Metrics: map[string]Stat{
			"ns/op":     {Mean: nsMin * 1.2, Min: nsMin, Max: nsMin * 1.5},
			"allocs/op": {Mean: allocsMean, Min: allocsMean, Max: allocsMean},
		},
	}}, "test")
}

func TestCompareGates(t *testing.T) {
	th := Thresholds{Time: 0.15, Alloc: 0.10}
	base := report(1e8, 2342)

	// Within threshold: +10% time, same allocs.
	if regs := Regressions(Compare(base, report(1.1e8, 2342), th)); len(regs) != 0 {
		t.Fatalf("within-threshold run regressed: %+v", regs)
	}
	// Past the time threshold.
	regs := Regressions(Compare(base, report(1.2e8, 2342), th))
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("want one ns/op regression, got %+v", regs)
	}
	// Past the alloc threshold only.
	regs = Regressions(Compare(base, report(1e8, 3000), th))
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("want one allocs/op regression, got %+v", regs)
	}
	// Time gate disabled: the slow run passes.
	if regs := Regressions(Compare(base, report(5e8, 2342), Thresholds{Time: -1, Alloc: 0.10})); len(regs) != 0 {
		t.Fatalf("disabled time gate still fired: %+v", regs)
	}
	// Improvements never regress.
	if regs := Regressions(Compare(base, report(0.5e8, 100), th)); len(regs) != 0 {
		t.Fatalf("improvement regressed: %+v", regs)
	}
}

func TestCompareMissingBenchRegresses(t *testing.T) {
	base := report(1e8, 2342)
	fresh := ReportAt(fixedStamp, []Bench{{Name: "BenchmarkOther", Reps: 1, Metrics: map[string]Stat{}}}, "test")
	regs := Regressions(Compare(base, fresh, Thresholds{Time: 0.15, Alloc: 0.10}))
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("vanished baseline benchmark must regress, got %+v", regs)
	}
	out := FormatDeltas(regs)
	if !strings.Contains(out, "MISSING") {
		t.Fatalf("missing bench not surfaced:\n%s", out)
	}
}

func TestCompareMissingMetricRegresses(t *testing.T) {
	base := report(1e8, 2342)
	fresh := ReportAt(fixedStamp, []Bench{{
		Name:    "BenchmarkFleetDay",
		Reps:    3,
		Metrics: map[string]Stat{"ns/op": {Mean: 1e8, Min: 1e8, Max: 1e8}},
	}}, "test") // no allocs/op: e.g. a run without -benchmem
	regs := Regressions(Compare(base, fresh, Thresholds{Time: 0.15, Alloc: 0.10}))
	if len(regs) != 1 || !regs[0].Missing || regs[0].Metric != "allocs/op" {
		t.Fatalf("vanished gated metric must regress, got %+v", regs)
	}
	if out := FormatDeltas(regs); !strings.Contains(out, "allocs/op") || !strings.Contains(out, "MISSING") {
		t.Fatalf("missing metric not surfaced:\n%s", out)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := ReportAt(fixedStamp, []Bench{{Name: "B", Reps: 1, Metrics: map[string]Stat{"allocs/op": {}}}}, "t")
	fresh := ReportAt(fixedStamp, []Bench{{Name: "B", Reps: 1, Metrics: map[string]Stat{"allocs/op": {Mean: 1, Min: 1, Max: 1}}}}, "t")
	regs := Regressions(Compare(base, fresh, Thresholds{Time: 0.15, Alloc: 0.10}))
	if len(regs) != 1 {
		t.Fatalf("zero-alloc baseline must regress on any alloc, got %+v", regs)
	}
}

func TestParseFraction(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"15%", 0.15}, {"0.15", 0.15}, {"15", 0.15}, {"150%", 1.5}, {"off", -1}, {"0", 0},
	} {
		got, err := ParseFraction(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFraction(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "abc", "-5%"} {
		if _, err := ParseFraction(bad); err == nil {
			t.Errorf("ParseFraction(%q) must fail", bad)
		}
	}
}
