package partition

import (
	"math"

	"hercules/internal/model"
)

// zipfHarmonic approximates the generalized harmonic number
// H(n, s) = Σ_{i=1..n} i^-s via the Euler–Maclaurin integral form, which
// is accurate enough for mass ratios at n up to hundreds of millions.
func zipfHarmonic(n float64, s float64) float64 {
	if n < 1 {
		return 0
	}
	if n <= 64 {
		var h float64
		for i := 1.0; i <= n; i++ {
			h += math.Pow(i, -s)
		}
		return h
	}
	var integral float64
	if math.Abs(s-1) < 1e-9 {
		integral = math.Log(n)
	} else {
		integral = (math.Pow(n, 1-s) - 1) / (1 - s)
	}
	// Euler–Maclaurin correction terms.
	return integral + 0.5*(1+math.Pow(n, -s)) + s/12*(1-math.Pow(n, -s-1))
}

// ZipfMass returns the fraction of accesses absorbed by the k most
// popular rows of an n-row table under Zipf(s) access skew.
func ZipfMass(k, n int64, s float64) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	return zipfHarmonic(float64(k), s) / zipfHarmonic(float64(n), s)
}

// TablePlan is the hot-set decision for one embedding table.
type TablePlan struct {
	HotRows int64   // rows resident on the accelerator
	HotMass float64 // fraction of accesses the hot rows absorb
}

// Plan is a locality-aware partition of one model under a capacity budget.
type Plan struct {
	Model       *model.Model
	BudgetBytes int64
	Tables      []TablePlan
	HotBytes    int64 // accelerator-resident embedding bytes
	// DenseBytes is the DenseNet parameter footprint (always resident).
	DenseBytes int64
	// WholeModelFits reports whether every table fits entirely.
	WholeModelFits bool
}

// BuildPlan sizes hot embedding sets under the given accelerator
// capacity budget (bytes). The budget is spent proportionally to table
// footprint after reserving the dense parameters; tables that fit
// entirely are taken whole, releasing budget for the rest.
func BuildPlan(m *model.Model, budgetBytes int64) Plan {
	p := Plan{
		Model:       m,
		BudgetBytes: budgetBytes,
		Tables:      make([]TablePlan, len(m.Tables)),
		DenseBytes:  m.DenseParamBytes(),
	}
	remaining := budgetBytes - p.DenseBytes
	if remaining < 0 {
		remaining = 0
	}
	// Spread the budget as an equal row-fraction across tables. Zipf
	// access mass is concave in the hot-set size, so the marginal mass
	// per byte is highest for the first rows of *every* table: spreading
	// dominates packing whole tables (which would spend budget on deep,
	// rarely-touched tails while other tables get nothing).
	total := m.EmbeddingBytes()
	frac := 0.0
	if total > 0 {
		frac = float64(remaining) / float64(total)
	}
	if frac > 1 {
		frac = 1
	}
	for i, t := range m.Tables {
		hot := int64(frac * float64(t.Rows))
		if frac >= 1 {
			hot = t.Rows
		}
		p.Tables[i] = TablePlan{
			HotRows: hot,
			HotMass: ZipfMass(hot, t.Rows, t.ZipfSkew),
		}
		p.HotBytes += hot * int64(t.Dim) * 4
	}
	p.WholeModelFits = frac >= 1
	return p
}

// Payload captures the per-item data movement of an accelerator
// placement (excluding the dense-feature input, which the cost model
// adds itself).
type Payload struct {
	// PCIeBytesPerItem crosses the host→device link per ranked item.
	PCIeBytesPerItem float64
	// HostGatherBytesPerItem is cold embedding traffic gathered host-side.
	HostGatherBytesPerItem float64
	// GPUGatherBytesPerItem is hot embedding traffic gathered from HBM.
	GPUGatherBytesPerItem float64
}

// ModelBasedAccel computes the Fig. 10(d) payload: the accelerator holds
// Gs.hot+Gd; the host gathers cold entries of pooled tables into partial
// sums (one Dim-vector per table) and forwards hot indices; for unpooled
// tables the host ships cold rows verbatim.
func ModelBasedAccel(p Plan) Payload {
	var out Payload
	for i, t := range p.Model.Tables {
		tp := p.Tables[i]
		pool := t.MeanPooling()
		rowBytes := float64(t.Dim) * 4
		hotLookups := pool * tp.HotMass
		coldLookups := pool - hotLookups
		out.GPUGatherBytesPerItem += hotLookups * rowBytes
		out.PCIeBytesPerItem += hotLookups * model.IndexBytes // hot indices
		out.HostGatherBytesPerItem += coldLookups * rowBytes
		if t.Pooled {
			if coldLookups > 0 {
				out.PCIeBytesPerItem += rowBytes // partial sum vector
			}
		} else {
			// No reduction possible: cold rows ship verbatim.
			out.PCIeBytesPerItem += coldLookups * rowBytes
		}
	}
	return out
}

// SDAccel computes the Fig. 10(c) payload: the host runs all of Gs; the
// accelerator receives pooled outputs (one vector per pooled table) and
// the gathered sequences of unpooled tables.
func SDAccel(p Plan) Payload {
	var out Payload
	for _, t := range p.Model.Tables {
		pool := t.MeanPooling()
		rowBytes := float64(t.Dim) * 4
		out.HostGatherBytesPerItem += pool * rowBytes
		if t.Pooled {
			out.PCIeBytesPerItem += rowBytes
		} else {
			out.PCIeBytesPerItem += pool * rowBytes
		}
	}
	return out
}

// FullModelAccel computes the payload when the whole model is
// accelerator-resident (small variants, or plans that fit): only indices
// cross PCIe and all gathers hit HBM.
func FullModelAccel(p Plan) Payload {
	var out Payload
	for _, t := range p.Model.Tables {
		pool := t.MeanPooling()
		out.PCIeBytesPerItem += pool * model.IndexBytes
		out.GPUGatherBytesPerItem += pool * float64(t.Dim) * 4
	}
	return out
}
