// Package partition implements Hercules' HW-aware model partitioning
// (§IV-B, Fig. 10): locality-aware hot-embedding extraction under an
// accelerator capacity budget, and the per-item data-movement payloads
// of the resulting placements.
//
// Production embedding accesses are Zipf-skewed, so a small "hot" prefix
// of rows (ranked by access frequency) absorbs most lookups. Given a
// per-thread capacity budget (GPU memory / co-location degree), the
// partitioner sizes per-table hot sets and reports the covered access
// mass, from which the simulator derives host-side cold work and PCIe
// payloads for the two accelerator placements:
//
//   - Model-based (Fig. 10d): Gs.hot+Gd on the accelerator; the host
//     gathers cold entries, sending partial sums and hot indices.
//   - S-D pipeline (Fig. 10c): all of Gs on the host; only pooled
//     outputs / gathered sequences cross PCIe.
//
// The surface: BuildPlan produces the hot-set plan for one model and
// budget; ModelBasedAccel, SDAccel and FullModelAccel price the
// per-item PCIe payloads of each placement for the cost model.
package partition
