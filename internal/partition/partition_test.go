package partition

import (
	"math"
	"testing"
	"testing/quick"

	"hercules/internal/model"
)

func TestZipfMassBasics(t *testing.T) {
	if ZipfMass(0, 100, 0.9) != 0 {
		t.Error("mass(0) must be 0")
	}
	if ZipfMass(100, 100, 0.9) != 1 {
		t.Error("mass(n) must be 1")
	}
	if ZipfMass(200, 100, 0.9) != 1 {
		t.Error("mass(>n) must be 1")
	}
	if ZipfMass(10, 0, 0.9) != 0 {
		t.Error("empty table has no mass")
	}
}

func TestZipfMassSkewConcentrates(t *testing.T) {
	// 1% of a 10M-row table under production-like skew must absorb far
	// more than 1% of accesses — the fact hot partitioning exploits.
	m := ZipfMass(100_000, 10_000_000, 0.95)
	if m < 0.4 {
		t.Errorf("1%% hot rows cover %.2f of accesses, want ≥0.4", m)
	}
	flat := ZipfMass(100_000, 10_000_000, 0.05)
	if flat > 0.1 {
		t.Errorf("near-uniform skew should not concentrate (got %.3f)", flat)
	}
}

func TestZipfMassMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		k1, k2 := int64(a%1_000_000), int64(b%1_000_000)
		if k1 > k2 {
			k1, k2 = k2, k1
		}
		const n = 1_000_000
		return ZipfMass(k1, n, 0.9) <= ZipfMass(k2, n, 0.9)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZipfHarmonicMatchesExact(t *testing.T) {
	// The Euler–Maclaurin approximation must agree with direct summation.
	for _, s := range []float64{0.5, 0.9, 0.95, 1.2} {
		var exact float64
		for i := 1; i <= 5000; i++ {
			exact += math.Pow(float64(i), -s)
		}
		approx := zipfHarmonic(5000, s)
		if math.Abs(approx-exact)/exact > 0.01 {
			t.Errorf("s=%v: approx %v vs exact %v", s, approx, exact)
		}
	}
}

func TestBuildPlanSmallModelFits(t *testing.T) {
	m := model.DLRMRMC1(model.Small) // 2.56 GB
	p := BuildPlan(m, 16<<30)
	if !p.WholeModelFits {
		t.Fatal("small RMC1 must fit 16 GB whole")
	}
	for i, tp := range p.Tables {
		if tp.HotMass != 1 || tp.HotRows != m.Tables[i].Rows {
			t.Fatalf("table %d not whole: %+v", i, tp)
		}
	}
}

func TestBuildPlanLargeModelPartitions(t *testing.T) {
	m := model.DLRMRMC2(model.Prod) // 64 GB
	budget := int64(8 << 30)
	p := BuildPlan(m, budget)
	if p.WholeModelFits {
		t.Fatal("prod RMC2 cannot fit 8 GB")
	}
	if p.HotBytes > budget {
		t.Fatalf("hot bytes %d exceed budget %d", p.HotBytes, budget)
	}
	// Skew must buy super-proportional coverage: ~12% of capacity should
	// cover well over 12% of accesses.
	capFrac := float64(p.HotBytes) / float64(m.EmbeddingBytes())
	var mass float64
	for _, tp := range p.Tables {
		mass += tp.HotMass
	}
	mass /= float64(len(p.Tables))
	if mass < 2*capFrac {
		t.Errorf("hot mass %.3f vs capacity fraction %.3f: want ≥2× leverage", mass, capFrac)
	}
}

func TestBuildPlanRespectsBudgetProperty(t *testing.T) {
	m := model.DLRMRMC3(model.Prod)
	f := func(gb uint8) bool {
		budget := int64(gb%32) << 30
		p := BuildPlan(m, budget)
		return p.HotBytes <= budget || budget < p.DenseBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBuildPlanZeroBudget(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	p := BuildPlan(m, 0)
	if p.HotBytes != 0 || p.WholeModelFits {
		t.Fatalf("zero budget must produce empty plan: %+v", p)
	}
	for _, tp := range p.Tables {
		if tp.HotMass != 0 {
			t.Fatal("zero budget must give zero mass")
		}
	}
}

func TestPayloadFullModel(t *testing.T) {
	m := model.DLRMRMC1(model.Small)
	p := BuildPlan(m, 16<<30)
	pl := FullModelAccel(p)
	// Only indices cross PCIe: 90 pooled lookups × 10 tables × 16 B
	// (index + CSR offset).
	want := 90.0 * 10 * model.IndexBytes
	if math.Abs(pl.PCIeBytesPerItem-want) > 1e-9 {
		t.Errorf("index payload = %v, want %v", pl.PCIeBytesPerItem, want)
	}
	if pl.HostGatherBytesPerItem != 0 {
		t.Error("full-model placement must not gather host-side")
	}
	if pl.GPUGatherBytesPerItem <= 0 {
		t.Error("gathers must hit HBM")
	}
}

func TestPayloadSDAccelShipsPooledOutputsOnly(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	p := BuildPlan(m, 4<<30)
	sd := SDAccel(p)
	// Pooled outputs: 10 tables × 64 dim × 4 B = 2560 B per item —
	// far less than the 7200 B of raw indices.
	if sd.PCIeBytesPerItem != 10*64*4 {
		t.Errorf("SD payload = %v, want 2560", sd.PCIeBytesPerItem)
	}
	full := FullModelAccel(p)
	if sd.PCIeBytesPerItem >= full.PCIeBytesPerItem {
		t.Error("SD pipeline must reduce PCIe vs raw indices for pooled models")
	}
	if sd.HostGatherBytesPerItem <= 0 {
		t.Error("host must do the gathers under SD placement")
	}
}

func TestPayloadSDAccelSequenceModelsExpensive(t *testing.T) {
	// For DIN the gathered behaviour sequence must ship verbatim (no
	// reduction), so SD placement is PCIe-heavy — the reason DIN prefers
	// model-based accel placement.
	m := model.DIN(model.Prod)
	p := BuildPlan(m, 8<<30)
	sd := SDAccel(p)
	want := 550.0*32*4 + 2*32*4 // behaviour rows + two one-hot rows
	if math.Abs(sd.PCIeBytesPerItem-want) > 1 {
		t.Errorf("DIN SD payload = %v, want %v", sd.PCIeBytesPerItem, want)
	}
}

func TestPayloadModelBasedSplitsByMass(t *testing.T) {
	m := model.DLRMRMC2(model.Prod)
	p := BuildPlan(m, 8<<30)
	mb := ModelBasedAccel(p)
	if mb.HostGatherBytesPerItem <= 0 {
		t.Error("cold gathers must stay on host")
	}
	if mb.GPUGatherBytesPerItem <= 0 {
		t.Error("hot gathers must hit HBM")
	}
	// Host + GPU gathers must cover all sparse traffic.
	var total float64
	for _, tb := range m.Tables {
		total += tb.MeanPooling() * float64(tb.Dim) * 4
	}
	sum := mb.HostGatherBytesPerItem + mb.GPUGatherBytesPerItem
	if math.Abs(sum-total)/total > 1e-9 {
		t.Errorf("gather split %v ≠ total %v", sum, total)
	}
}

func TestPayloadModelBasedFitsEqualsFullModel(t *testing.T) {
	m := model.DLRMRMC1(model.Small)
	p := BuildPlan(m, 16<<30)
	mb := ModelBasedAccel(p)
	full := FullModelAccel(p)
	if math.Abs(mb.PCIeBytesPerItem-full.PCIeBytesPerItem) > 1e-9 {
		t.Errorf("whole-model plan must degenerate to index-only payload: %v vs %v",
			mb.PCIeBytesPerItem, full.PCIeBytesPerItem)
	}
	if mb.HostGatherBytesPerItem != 0 {
		t.Error("no cold work when the model fits")
	}
}

func TestHotPartitionReducesPCIe(t *testing.T) {
	// The headline partitioning effect for big pooled models: with a hot
	// partition, PCIe payload (psum + hot indices) beats shipping every
	// index when pooling is large... and host cold work shrinks as the
	// budget grows.
	m := model.DLRMRMC2(model.Prod)
	small := ModelBasedAccel(BuildPlan(m, 4<<30))
	big := ModelBasedAccel(BuildPlan(m, 12<<30))
	if big.HostGatherBytesPerItem >= small.HostGatherBytesPerItem {
		t.Error("bigger budget must shrink host cold work")
	}
	if big.GPUGatherBytesPerItem <= small.GPUGatherBytesPerItem {
		t.Error("bigger budget must grow HBM gathers")
	}
}
