package nmpsim

import (
	"math"
	"sync"

	"hercules/internal/stats"
)

// DRAMTiming holds the DDR4-2400 device timings used by the rank model.
// All values are in nanoseconds.
type DRAMTiming struct {
	TRCD   float64 // activate to column command
	TCAS   float64 // column command to data
	TRP    float64 // precharge
	TRC    float64 // activate-to-activate, same bank
	TBurst float64 // burst transfer of one 64 B line (BL8)
	TFAW   float64 // four-activate window
	Banks  int     // banks per rank
}

// DDR42400 returns standard DDR4-2400 timings.
func DDR42400() DRAMTiming {
	return DRAMTiming{
		TRCD:   14.16,
		TCAS:   14.16,
		TRP:    14.16,
		TRC:    45.5,
		TBurst: 3.33, // 8 beats at 1200 MHz DDR
		TFAW:   21.0,
		Banks:  16,
	}
}

// RankConfig describes one NMP rank engine.
type RankConfig struct {
	Timing DRAMTiming
	// RowBufferHitRate is the fraction of embedding-row reads that hit an
	// open row. Production pooled accesses show temporal locality
	// (Fig. 10a cites hot-entry reuse); 0.2 is a conservative default for
	// the cold stream the NMP engine sees.
	RowBufferHitRate float64
	// LineBytes is the DRAM access granularity (one embedding row read
	// issues ceil(rowBytes/LineBytes) line reads).
	LineBytes int
}

// DefaultRank returns the rank configuration used by Table II's NMP DIMMs.
func DefaultRank() RankConfig {
	return RankConfig{Timing: DDR42400(), RowBufferHitRate: 0.2, LineBytes: 64}
}

// SimulateRankGather runs the bank-level command simulation: nAccesses
// random 64 B line reads spread across the rank's banks, with the given
// row-buffer hit rate, returning the elapsed nanoseconds.
//
// The model tracks per-bank availability: a row miss pays tRP+tRCD+tCAS,
// a hit pays tCAS, and every access occupies the shared data bus for
// tBurst. The four-activate window throttles activate bursts. This is a
// deliberate simplification of a full DRAM controller but reproduces the
// sustained random-gather bandwidth that sizing studies report for
// rank-level SLS engines (~10–14 GB/s per rank).
func SimulateRankGather(cfg RankConfig, nAccesses int, seed int64) float64 {
	if nAccesses <= 0 {
		return 0
	}
	t := cfg.Timing
	r := stats.NewRand(seed)
	bankReady := make([]float64, t.Banks)
	var busReady float64
	var actWindow []float64 // recent activate times for tFAW
	// Command-issue pipeline: one column/activate command per half burst.
	cmdIssue := t.TBurst / 4
	now := 0.0
	for i := 0; i < nAccesses; i++ {
		now += cmdIssue
		bank := r.Intn(t.Banks)
		start := math.Max(now, bankReady[bank])
		var dataAt float64
		if r.Float64() < cfg.RowBufferHitRate {
			dataAt = start + t.TCAS
		} else {
			// Respect the four-activate window.
			if len(actWindow) >= 4 {
				windowStart := actWindow[len(actWindow)-4]
				if start < windowStart+t.TFAW {
					start = windowStart + t.TFAW
				}
			}
			actWindow = append(actWindow, start)
			if len(actWindow) > 8 {
				actWindow = actWindow[len(actWindow)-8:]
			}
			dataAt = start + t.TRP + t.TRCD + t.TCAS
			bankReady[bank] = start + t.TRC
			// Activates gate command issue through the FAW window.
			if now < start {
				now = start
			}
		}
		// Serialize data returns on the shared DQ bus. Accesses to
		// different banks overlap their activate/CAS phases; only the
		// burst transfer is exclusive.
		if dataAt < busReady {
			dataAt = busReady
		}
		busReady = dataAt + t.TBurst
	}
	return busReady
}

// LUT caches per-way-count effective bandwidths, mirroring the paper's
// precomputed latency/energy table.
type LUT struct {
	mu        sync.Mutex
	rank      RankConfig
	perRankBW float64 // sustained bytes/sec of one rank engine
	// EnergyPerByte is the near-memory access energy (no channel
	// transfer): activate+read energy amortized per byte.
	EnergyPerByte float64
	// FixedLaunchS is the host-side cost of dispatching one SLS-NMP
	// operator (command packet over the channel).
	FixedLaunchS float64
}

// NewLUT builds the lookup table by running the rank simulation once.
func NewLUT(rank RankConfig) *LUT {
	const accesses = 20000
	elapsedNS := SimulateRankGather(rank, accesses, 12345)
	bw := float64(accesses*rank.LineBytes) / (elapsedNS * 1e-9)
	return &LUT{
		rank:          rank,
		perRankBW:     bw,
		EnergyPerByte: 0.25e-9, // J/B: ~2 pJ/bit near-memory read path
		FixedLaunchS:  2e-6,
	}
}

var (
	defaultLUTOnce sync.Once
	defaultLUT     *LUT
)

// Default returns a process-wide LUT for the Table II NMP configuration.
func Default() *LUT {
	defaultLUTOnce.Do(func() { defaultLUT = NewLUT(DefaultRank()) })
	return defaultLUT
}

// PerRankBandwidth returns the sustained random-gather bytes/sec of one
// rank-level engine.
func (l *LUT) PerRankBandwidth() float64 { return l.perRankBW }

// AggregateBandwidth returns the fleet-visible SLS bandwidth of an NMP
// configuration with the given rank-parallelism ways across 4 channels.
// Rank engines operate independently inside the DIMMs, so bandwidth
// scales near-linearly with ways, derated 7% per doubling for command
// bus sharing.
func (l *LUT) AggregateBandwidth(ways int) float64 {
	if ways <= 0 {
		return 0
	}
	const channels = 4
	derate := math.Pow(0.93, math.Log2(float64(ways)))
	return l.perRankBW * float64(ways) * channels * derate
}

// Latency returns the SLS-NMP operator latency for gathering the given
// bytes on a ways-way NMP configuration — the value the online "dummy
// SLS-NMP operator" taxes.
func (l *LUT) Latency(ways int, bytes float64) float64 {
	if bytes <= 0 {
		return l.FixedLaunchS
	}
	bw := l.AggregateBandwidth(ways)
	return l.FixedLaunchS + bytes/bw
}

// Energy returns the joules consumed by gathering the given bytes near
// memory (the value forwarded to the power-measurement module).
func (l *LUT) Energy(bytes float64) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return bytes * l.EnergyPerByte
}
