package nmpsim

import "testing"

func TestPrintBandwidths(t *testing.T) {
	l := Default()
	t.Logf("per-rank %.2f GB/s", l.PerRankBandwidth()/1e9)
	for _, w := range []int{2, 4, 8} {
		t.Logf("x%d: %.1f GB/s", w, l.AggregateBandwidth(w)/1e9)
	}
}
