// Package nmpsim models the DIMM-based near-memory-processing (NMP)
// substrate of the Hercules paper (RecNMP-style rank-level SLS engines).
//
// The paper's methodology (§V, Fig. 13) runs a cycle-level NMP simulator
// offline over sampled queries and records embedding-operator latency and
// energy in a lookup table (LUT); online, a "dummy SLS-NMP operator"
// taxes the LUT latency. This package reproduces exactly that: a
// bank-level DRAM command simulator estimates the sustained random
// gather-reduce throughput of one rank (SimulateRankGather over the
// DDR42400 timing parameters), a LUT (NewLUT / Default) caches
// per-configuration effective bandwidths, and Latency/Energy answer the
// online queries the cost model issues for every NMP-placed embedding
// operator.
package nmpsim
