package nmpsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimulateRankGatherMonotone(t *testing.T) {
	cfg := DefaultRank()
	t1k := SimulateRankGather(cfg, 1000, 1)
	t2k := SimulateRankGather(cfg, 2000, 1)
	t4k := SimulateRankGather(cfg, 4000, 1)
	if !(t1k < t2k && t2k < t4k) {
		t.Fatalf("elapsed must grow with accesses: %v %v %v", t1k, t2k, t4k)
	}
	// Throughput should be roughly scale-invariant at steady state.
	bw2 := 2000.0 * 64 / t2k
	bw4 := 4000.0 * 64 / t4k
	if math.Abs(bw2-bw4)/bw4 > 0.1 {
		t.Errorf("bandwidth not steady: %v vs %v B/ns", bw2, bw4)
	}
}

func TestSimulateRankGatherZero(t *testing.T) {
	if SimulateRankGather(DefaultRank(), 0, 1) != 0 {
		t.Fatal("zero accesses must take zero time")
	}
}

func TestPerRankBandwidthPlausible(t *testing.T) {
	l := NewLUT(DefaultRank())
	bw := l.PerRankBandwidth()
	// Rank-level random SLS engines sustain on the order of 5–20 GB/s.
	if bw < 4e9 || bw > 25e9 {
		t.Fatalf("per-rank bandwidth %.3g B/s implausible", bw)
	}
}

func TestRowBufferHitsHelp(t *testing.T) {
	cold := DefaultRank()
	cold.RowBufferHitRate = 0
	hot := DefaultRank()
	hot.RowBufferHitRate = 0.9
	tc := SimulateRankGather(cold, 5000, 7)
	th := SimulateRankGather(hot, 5000, 7)
	if th >= tc {
		t.Fatalf("hot rows must be faster: hit=%v miss=%v", th, tc)
	}
}

func TestAggregateBandwidthScales(t *testing.T) {
	l := Default()
	b2, b4, b8 := l.AggregateBandwidth(2), l.AggregateBandwidth(4), l.AggregateBandwidth(8)
	if !(b2 < b4 && b4 < b8) {
		t.Fatalf("aggregate BW must grow with ways: %v %v %v", b2, b4, b8)
	}
	// Near-linear scaling with mild derating: ×4 ways gains ≥3×.
	if b8/b2 < 3 {
		t.Errorf("ways 2→8 speedup %.2f, want ≥3", b8/b2)
	}
	if l.AggregateBandwidth(0) != 0 {
		t.Error("0 ways must have 0 bandwidth")
	}
}

func TestNMPBeatsChannelBandwidth(t *testing.T) {
	// The whole point of NMP: aggregate internal gather bandwidth of
	// NMPx4/x8 must exceed the ~68 GB/s CPU-visible channel bandwidth.
	l := Default()
	if l.AggregateBandwidth(4) < 68e9 {
		t.Errorf("NMPx4 aggregate %.3g < channel 68 GB/s", l.AggregateBandwidth(4))
	}
	if l.AggregateBandwidth(8) < 1.5*68e9 {
		t.Errorf("NMPx8 aggregate %.3g should far exceed the channel", l.AggregateBandwidth(8))
	}
}

func TestLatencyMonotoneInBytes(t *testing.T) {
	l := Default()
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return l.Latency(4, x) <= l.Latency(4, y)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLatencyFixedFloor(t *testing.T) {
	l := Default()
	if l.Latency(4, 0) != l.FixedLaunchS {
		t.Error("zero bytes must cost the launch overhead only")
	}
	if l.Latency(8, 1<<20) >= l.Latency(2, 1<<20) {
		t.Error("more ways must reduce latency for the same bytes")
	}
}

func TestEnergyLinear(t *testing.T) {
	l := Default()
	e1 := l.Energy(1 << 20)
	e2 := l.Energy(2 << 20)
	if math.Abs(e2-2*e1) > 1e-15 {
		t.Errorf("energy not linear: %v vs %v", e1, e2)
	}
	if l.Energy(-5) != 0 {
		t.Error("negative bytes must clamp to zero energy")
	}
}

func TestDefaultSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return the same LUT")
	}
}

func TestDeterministicSimulation(t *testing.T) {
	cfg := DefaultRank()
	if SimulateRankGather(cfg, 3000, 9) != SimulateRankGather(cfg, 3000, 9) {
		t.Fatal("simulation must be deterministic for the same seed")
	}
}
