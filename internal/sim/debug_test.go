package sim

import (
	"testing"

	"hercules/internal/hw"
	"hercules/internal/model"
)

func mustModel() *model.Model { return model.DLRMRMC1(model.Prod) }
func mustServer() hw.Server   { return hw.ServerType("T7") }

func TestDebugAccelSD(t *testing.T) {
	m := mustModel()
	s := New(mustServer(), m)
	for _, st := range []int{4, 8, 12} {
		cfg := Config{Place: PlaceAccelSD, SparseThreads: st, SparseWorkers: 1,
			AccelThreads: 2, Batch: 1024, FusionLimit: 2000}
		r, err := s.Evaluate(cfg, 50, 42)
		if err != nil {
			t.Fatalf("st=%d: %v", st, err)
		}
		t.Logf("st=%d rate=50: p95=%.1fms queue=%.1f load=%.1f compute=%.1f gpuUtil=%.2f",
			st, r.P95MS, r.QueueMS, r.LoadMS, r.ComputeMS, r.GPUUtil)
	}
}
