// Package sim simulates recommendation inference serving on one server:
// the query dispatcher, batching queues, co-located inference threads,
// sparse–dense pipelines, and accelerator offload of Fig. 3 and Fig. 10.
//
// The simulator advances virtual time with a deterministic FCFS
// "waterfall": queries are processed in arrival order, each stage
// reserves its resources (CPU threads, the PCIe link, the GPU engine)
// at the earliest feasible instant, and batch service times come from
// internal/costmodel. This is equivalent to a discrete-event simulation
// of a non-preemptive FCFS system and costs O(Q·log) per run, fast
// enough for the thousands of runs the schedulers' searches need.
//
// The surface:
//
//   - Config — one point in the task-scheduling space Psp(M+D+O):
//     placement (CPU model/SD-pipeline, accelerator model/SD), thread
//     and operator-worker counts, batch split size, co-location degree,
//     fusion limit, NMP use. DeepRecSysCPU and the scheduler searches
//     (internal/sched) produce Configs; Validate checks one against a
//     server's resources;
//   - Server (New) / Simulate — replay a query stream under a Config
//     and return latency percentiles, stage accounting and power
//     activity;
//   - FindCapacity — the latency-bounded throughput search (the SLA
//     capacity metric every profiling and scheduling stage optimizes).
package sim
