package sim

import (
	"math"

	"hercules/internal/workload"
)

// Capacity is the latency-bounded throughput of one configuration: the
// highest sustained arrival rate whose tail latency meets the SLA.
type Capacity struct {
	QPS float64
	// At is the measurement at the capacity operating point.
	At Result
}

// capacitySearch tuning: the bracket doubles from minRate until the SLA
// breaks, then bisects. Windows adapt so every evaluation sees enough
// queries for a stable tail estimate.
const (
	minRate       = 4.0
	maxRate       = 4 << 20
	bisectRounds  = 7
	targetQueries = 1400
	minWindowS    = 3.0
	maxWindowS    = 60.0
)

// evalWindow returns the simulation window for a given offered rate.
func evalWindow(rate float64) float64 {
	w := targetQueries / rate
	if w < minWindowS {
		return minWindowS
	}
	if w > maxWindowS {
		return maxWindowS
	}
	return w
}

// Evaluate runs one simulation at the given offered QPS and reports the
// result (seeded deterministically).
func (s *Server) Evaluate(cfg Config, rateQPS float64, seed int64) (Result, error) {
	window := evalWindow(rateQPS)
	gen := workload.NewGenerator(s.Model, rateQPS, seed)
	queries := gen.Until(window)
	if len(queries) == 0 {
		return Result{}, nil
	}
	return s.Simulate(cfg, queries, window)
}

// FindCapacity measures the latency-bounded throughput of the
// configuration under the SLA tail-latency target (milliseconds). The
// returned capacity is 0 when even trivial load violates the SLA.
func (s *Server) FindCapacity(cfg Config, slaMS float64, seed int64) (Capacity, error) {
	return s.FindCapacityHint(cfg, slaMS, seed, 0)
}

// FindCapacityHint is FindCapacity with a warm-start bracket around
// hintQPS (e.g. a neighbouring configuration's capacity), which saves
// most of the doubling phase during scheduler searches. hintQPS ≤ 0
// falls back to the cold bracket.
func (s *Server) FindCapacityHint(cfg Config, slaMS float64, seed int64, hintQPS float64) (Capacity, error) {
	if err := cfg.Validate(s.HW); err != nil {
		return Capacity{}, err
	}
	feasible := func(rate float64) (bool, Result) {
		res, err := s.Evaluate(cfg, rate, seed)
		if err != nil || res.Queries == 0 {
			return false, res
		}
		return res.TailMS <= slaMS && !math.IsInf(res.TailMS, 0), res
	}

	lo := minRate
	if hintQPS > minRate {
		// Walk down from the hint until feasible (usually 0–2 steps).
		start := hintQPS / 2
		for start > minRate {
			if ok, _ := feasible(start); ok {
				lo = start
				break
			}
			start /= 4
		}
	}
	ok, lowRes := feasible(lo)
	if !ok {
		if lo == minRate {
			return Capacity{}, nil
		}
		ok, lowRes = feasible(minRate)
		if !ok {
			return Capacity{}, nil
		}
		lo = minRate
	}
	hi := lo * 2
	for hi <= maxRate {
		good, res := feasible(hi)
		if !good {
			break
		}
		lo, lowRes = hi, res
		hi *= 2
	}
	if hi > maxRate {
		return Capacity{QPS: lo, At: lowRes}, nil
	}
	for i := 0; i < bisectRounds; i++ {
		mid := (lo + hi) / 2
		good, res := feasible(mid)
		if good {
			lo, lowRes = mid, res
		} else {
			hi = mid
		}
	}
	return Capacity{QPS: lo, At: lowRes}, nil
}
