package sim_test

import (
	"fmt"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/sim"
	"hercules/internal/workload"
)

// ExampleDeepRecSysCPU simulates a short Poisson stream on one T2
// server under the DeepRecSys baseline task-scheduling configuration
// and checks the serving outcome against the model's SLA.
func ExampleDeepRecSysCPU() {
	m := model.DLRMRMC1(model.Prod)
	srv := hw.ServerType("T2")
	cfg := sim.DeepRecSysCPU(srv, 128)

	queries := workload.NewGenerator(m, 300, 42).Until(2) // 2 s at 300 QPS
	s := sim.New(srv, m)
	res, err := s.Simulate(cfg, queries, 2)
	if err != nil {
		fmt.Println("simulate:", err)
		return
	}
	fmt.Printf("queries: %d\n", len(queries))
	fmt.Printf("p95 under 2x SLA: %v\n", res.P95MS < 2*m.SLATargetMS)
	fmt.Printf("tail ordering sane: %v\n", res.P50MS <= res.P95MS && res.P95MS <= res.P99MS)
	// Output:
	// queries: 621
	// p95 under 2x SLA: true
	// tail ordering sane: true
}

// ExampleServer_FindCapacity measures the latency-bounded throughput of
// the same pair — the capacity metric every profiling and provisioning
// stage optimizes.
func ExampleServer_FindCapacity() {
	m := model.DLRMRMC1(model.Prod)
	srv := hw.ServerType("T2")
	s := sim.New(srv, m)
	c, err := s.FindCapacity(sim.DeepRecSysCPU(srv, 128), m.SLATargetMS, 42)
	if err != nil {
		fmt.Println("capacity:", err)
		return
	}
	fmt.Printf("capacity positive: %v\n", c.QPS > 0)
	fmt.Printf("tail within SLA at capacity: %v\n", c.At.TailMS <= m.SLATargetMS)
	// Output:
	// capacity positive: true
	// tail within SLA at capacity: true
}
