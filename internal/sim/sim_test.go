package sim

import (
	"math"
	"testing"

	"hercules/internal/costmodel"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/workload"
)

func mkQueries(m *model.Model, rate float64, windowS float64, seed int64) []workload.Query {
	return workload.NewGenerator(m, rate, seed).Until(windowS)
}

func TestSimulateCPUModelBasic(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	s := New(hw.ServerType("T2"), m)
	cfg := Config{Place: PlaceCPUModel, Threads: 10, OpWorkers: 2, Batch: 128}
	qs := mkQueries(m, 50, 10, 1)
	res, err := s.Simulate(cfg, qs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != len(qs) {
		t.Fatalf("queries = %d", res.Queries)
	}
	if res.MeanMS <= 0 || res.P99MS < res.P95MS || res.P95MS < res.P50MS {
		t.Fatalf("latency stats inconsistent: %+v", res)
	}
	if res.CPUUtil <= 0 || res.CPUUtil > 1 {
		t.Fatalf("cpu util %v", res.CPUUtil)
	}
	if res.AvgPowerW <= s.HW.IdleWatts() {
		t.Fatalf("power %v must exceed idle", res.AvgPowerW)
	}
	if res.GPUUtil != 0 {
		t.Fatal("no GPU on T2")
	}
}

func TestSimulateEmptyStream(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	s := New(hw.ServerType("T2"), m)
	cfg := Config{Place: PlaceCPUModel, Threads: 4, OpWorkers: 1, Batch: 64}
	if _, err := s.Simulate(cfg, nil, 5); err == nil {
		t.Fatal("empty stream must error")
	}
}

func TestSimulateInvalidConfig(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	s := New(hw.ServerType("T2"), m)
	bad := []Config{
		{Place: PlaceCPUModel, Threads: 0, OpWorkers: 1, Batch: 64},
		{Place: PlaceCPUModel, Threads: 21, OpWorkers: 1, Batch: 64}, // >20 cores
		{Place: PlaceCPUModel, Threads: 10, OpWorkers: 3, Batch: 64}, // 30 cores
		{Place: PlaceCPUModel, Threads: 10, OpWorkers: 2, Batch: 0},
		{Place: PlaceAccelModel, AccelThreads: 1, Batch: 64},     // no GPU on T2
		{Place: PlaceCPUSD, Threads: 4, OpWorkers: 1, Batch: 64}, // no sparse stage
		{Place: Placement(42), Threads: 1, OpWorkers: 1, Batch: 1},
	}
	qs := mkQueries(m, 10, 2, 2)
	for i, cfg := range bad {
		if _, err := s.Simulate(cfg, qs, 2); err == nil {
			t.Errorf("config %d must be rejected: %+v", i, cfg)
		}
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	s := New(hw.ServerType("T2"), m)
	cfg := Config{Place: PlaceCPUModel, Threads: 10, OpWorkers: 2, Batch: 128}
	light, err := s.Evaluate(cfg, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := s.Evaluate(cfg, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.TailMS <= light.TailMS {
		t.Fatalf("overload must inflate tail: light %.2f heavy %.2f", light.TailMS, heavy.TailMS)
	}
	if heavy.CPUUtil <= light.CPUUtil {
		t.Fatal("overload must raise utilization")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := model.DLRMRMC2(model.Prod)
	s := New(hw.ServerType("T2"), m)
	cfg := Config{Place: PlaceCPUModel, Threads: 20, OpWorkers: 1, Batch: 64}
	a, _ := s.Evaluate(cfg, 60, 7)
	b, _ := s.Evaluate(cfg, 60, 7)
	if a != b {
		t.Fatalf("same seed must reproduce: %+v vs %+v", a, b)
	}
}

func TestSDPipelineRuns(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	s := New(hw.ServerType("T2"), m)
	cfg := Config{Place: PlaceCPUSD, SparseThreads: 8, SparseWorkers: 2,
		Threads: 4, OpWorkers: 1, Batch: 128}
	res, err := s.Evaluate(cfg, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanMS <= 0 {
		t.Fatalf("SD pipeline produced no latency: %+v", res)
	}
}

func TestAccelPlacementRuns(t *testing.T) {
	m := model.DLRMRMC3(model.Small)
	s := New(hw.ServerType("T7"), m)
	cfg := Config{Place: PlaceAccelModel, AccelThreads: 2, Batch: 256,
		FusionLimit: 2000, SparseThreads: 1, SparseWorkers: 1}
	res, err := s.Evaluate(cfg, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUUtil <= 0 {
		t.Fatalf("accel placement must busy the GPU: %+v", res)
	}
	if res.LoadMS <= 0 || res.ComputeMS <= 0 {
		t.Fatalf("stage breakdown missing: %+v", res)
	}
}

func TestNMPImprovesMemoryBoundCapacity(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	sDDR := New(hw.ServerType("T2"), m)
	sNMP := New(hw.ServerType("T4"), m)
	cfg := Config{Place: PlaceCPUModel, Threads: 10, OpWorkers: 2, Batch: 128}
	cfgNMP := cfg
	cfgNMP.UseNMP = true
	capDDR, err := sDDR.FindCapacity(cfg, m.SLATargetMS, 11)
	if err != nil {
		t.Fatal(err)
	}
	capNMP, err := sNMP.FindCapacity(cfgNMP, m.SLATargetMS, 11)
	if err != nil {
		t.Fatal(err)
	}
	if capNMP.QPS <= capDDR.QPS {
		t.Fatalf("NMPx4 must beat DDR4 for RMC1: %.0f vs %.0f QPS", capNMP.QPS, capDDR.QPS)
	}
}

func TestFindCapacityPositive(t *testing.T) {
	m := model.DLRMRMC1(model.Prod)
	s := New(hw.ServerType("T2"), m)
	cfg := Config{Place: PlaceCPUModel, Threads: 10, OpWorkers: 2, Batch: 128}
	cap1, err := s.FindCapacity(cfg, m.SLATargetMS, 13)
	if err != nil {
		t.Fatal(err)
	}
	if cap1.QPS < minRate {
		t.Fatalf("capacity = %v, want sustained load", cap1.QPS)
	}
	if cap1.At.TailMS > m.SLATargetMS {
		t.Fatalf("capacity point violates SLA: %.2f > %.2f", cap1.At.TailMS, m.SLATargetMS)
	}
}

func TestCapacityGrowsWithSLA(t *testing.T) {
	// Latency-bounded throughput must be monotone in the SLA target
	// (Figs. 4, 14 x-axis behaviour).
	m := model.DLRMRMC1(model.Prod)
	s := New(hw.ServerType("T2"), m)
	cfg := Config{Place: PlaceCPUModel, Threads: 20, OpWorkers: 1, Batch: 64}
	prev := -1.0
	for _, sla := range []float64{10, 20, 40, 80} {
		c, err := s.FindCapacity(cfg, sla, 17)
		if err != nil {
			t.Fatal(err)
		}
		if c.QPS < prev*0.9 { // tolerate small search noise
			t.Errorf("capacity fell from %.0f to %.0f when SLA relaxed to %v", prev, c.QPS, sla)
		}
		if c.QPS > prev {
			prev = c.QPS
		}
	}
}

func TestFig4HostParallelismTradeoff(t *testing.T) {
	// Fig. 4: at tight SLA, 10 threads × 2 cores beats DeepRecSys'
	// 20 × 1 for DLRM-RMC1 (up to ~35%); at loose SLA they converge.
	m := model.DLRMRMC1(model.Prod)
	s := New(hw.ServerType("T2"), m)
	tight := 15.0
	best := func(threads, workers int) float64 {
		bestQPS := 0.0
		for _, batch := range []int{32, 64, 128, 256} {
			cfg := Config{Place: PlaceCPUModel, Threads: threads, OpWorkers: workers, Batch: batch}
			c, err := s.FindCapacity(cfg, tight, 19)
			if err != nil {
				t.Fatal(err)
			}
			if c.QPS > bestQPS {
				bestQPS = c.QPS
			}
		}
		return bestQPS
	}
	a, b := best(20, 1), best(10, 2)
	if b <= a {
		t.Errorf("10×2 (%.0f QPS) must beat 20×1 (%.0f QPS) at tight SLA", b, a)
	}
	// The paper reports up to ~35%% improvement — ours should land in a
	// broadly similar band, not a 5× artifact.
	if b/a > 2.5 {
		t.Errorf("10×2 advantage %.2f× implausibly large", b/a)
	}
}

func TestFusionImprovesAccelThroughput(t *testing.T) {
	// Fig. 6: model co-location + query fusion beats no-fusion on GPU.
	m := model.MTWnD(model.Small)
	s := New(hw.ServerType("T7"), m)
	noFusion := Config{Place: PlaceAccelModel, AccelThreads: 2, Batch: 1024,
		SparseThreads: 1, SparseWorkers: 1, FusionLimit: 0}
	fusion := noFusion
	fusion.FusionLimit = 4000
	a, err := s.FindCapacity(noFusion, m.SLATargetMS, 23)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.FindCapacity(fusion, m.SLATargetMS, 23)
	if err != nil {
		t.Fatal(err)
	}
	if b.QPS <= a.QPS {
		t.Errorf("fusion (%.0f QPS) must beat no-fusion (%.0f QPS)", b.QPS, a.QPS)
	}
}

func TestConfigValidateAccelSD(t *testing.T) {
	srv := hw.ServerType("T7")
	cfg := Config{Place: PlaceAccelSD, AccelThreads: 1, Batch: 128}
	if err := cfg.Validate(srv); err == nil {
		t.Fatal("accel-sd without host sparse stage must be rejected")
	}
	cfg.SparseThreads, cfg.SparseWorkers = 4, 2
	if err := cfg.Validate(srv); err != nil {
		t.Fatalf("valid accel-sd rejected: %v", err)
	}
}

func TestPlacementString(t *testing.T) {
	for _, p := range []Placement{PlaceCPUModel, PlaceCPUSD, PlaceAccelModel, PlaceAccelSD} {
		if p.String() == "" {
			t.Error("placement must render")
		}
	}
	if Placement(9).String() == "" {
		t.Error("unknown placement must render")
	}
	if !PlaceAccelModel.OnAccel() || PlaceCPUModel.OnAccel() {
		t.Error("OnAccel wrong")
	}
}

func TestSubBatches(t *testing.T) {
	cases := []struct {
		size, batch int
		want        []int
	}{
		{100, 64, []int{64, 36}},
		{64, 64, []int{64}},
		{10, 64, []int{10}},
		{200, 64, []int{64, 64, 64, 8}},
	}
	for _, c := range cases {
		got := subBatches(c.size, c.batch)
		if len(got) != len(c.want) {
			t.Errorf("subBatches(%d,%d) = %v", c.size, c.batch, got)
			continue
		}
		sum := 0
		for i, g := range got {
			if g != c.want[i] {
				t.Errorf("subBatches(%d,%d) = %v, want %v", c.size, c.batch, got, c.want)
			}
			sum += g
		}
		if sum != c.size {
			t.Errorf("subBatches lost items: %v", got)
		}
	}
}

func TestDeepRecSysBaselineShape(t *testing.T) {
	srv := hw.ServerType("T2")
	cfg := DeepRecSysCPU(srv, 128)
	if cfg.Threads != 20 || cfg.OpWorkers != 1 {
		t.Fatalf("DeepRecSys baseline must be one thread per core: %+v", cfg)
	}
	if err := cfg.Validate(srv); err != nil {
		t.Fatal(err)
	}
	bm := BaymaxAccel(3, 512)
	if bm.FusionLimit != 0 || bm.AccelThreads != 3 {
		t.Fatalf("Baymax baseline wrong: %+v", bm)
	}
}

func TestCapacityZeroWhenImpossible(t *testing.T) {
	// Sub-millisecond SLA cannot be met by a batch-128 config on RMC2.
	m := model.DLRMRMC2(model.Prod)
	s := New(hw.ServerType("T2"), m)
	cfg := Config{Place: PlaceCPUModel, Threads: 10, OpWorkers: 2, Batch: 128}
	c, err := s.FindCapacity(cfg, 0.5, 29)
	if err != nil {
		t.Fatal(err)
	}
	if c.QPS != 0 {
		t.Fatalf("impossible SLA must give zero capacity, got %.1f", c.QPS)
	}
}

func TestUtilizationBounded(t *testing.T) {
	m := model.DIEN(model.Prod)
	s := New(hw.ServerType("T7"), m)
	cfg := Config{Place: PlaceAccelModel, AccelThreads: 3, Batch: 512,
		SparseThreads: 2, SparseWorkers: 1, FusionLimit: 3000}
	res, err := s.Evaluate(cfg, 500, 31)
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUUtil < 0 || res.GPUUtil > 1 || res.CPUUtil < 0 || res.CPUUtil > 1 {
		t.Fatalf("utilizations out of range: %+v", res)
	}
	if math.IsNaN(res.QPSPerWatt) || res.QPSPerWatt <= 0 {
		t.Fatalf("bad QPS/W: %v", res.QPSPerWatt)
	}
}

func TestEveryQueryCompletesProperty(t *testing.T) {
	// Property: whatever the (valid) configuration and load, every query
	// completes no earlier than its arrival, and completions are finite.
	m := model.DLRMRMC1(model.Prod)
	s := New(hw.ServerType("T7"), m)
	cases := []Config{
		{Place: PlaceCPUModel, Threads: 5, OpWorkers: 4, Batch: 64},
		{Place: PlaceCPUSD, SparseThreads: 6, SparseWorkers: 2, Threads: 8, OpWorkers: 1, Batch: 128},
		{Place: PlaceAccelModel, AccelThreads: 3, Batch: 256, SparseThreads: 4, SparseWorkers: 1, FusionLimit: 1500},
		{Place: PlaceAccelSD, AccelThreads: 2, Batch: 256, SparseThreads: 8, SparseWorkers: 2, FusionLimit: 0},
	}
	for ci, cfg := range cases {
		for _, rate := range []float64{20, 400} {
			qs := mkQueries(m, rate, 4, int64(100+ci))
			res, err := s.Simulate(cfg, qs, 4)
			if err != nil {
				t.Fatalf("case %d: %v", ci, err)
			}
			if res.Queries != len(qs) {
				t.Fatalf("case %d: lost queries (%d of %d)", ci, res.Queries, len(qs))
			}
			if res.MeanMS <= 0 || math.IsNaN(res.P99MS) || math.IsInf(res.P99MS, 0) {
				t.Fatalf("case %d: bad latencies %+v", ci, res)
			}
			if res.P99MS < res.P50MS {
				t.Fatalf("case %d: tail below median", ci)
			}
		}
	}
}

func TestLatencyAboveServiceFloor(t *testing.T) {
	// No query can finish faster than its minimal batch service time.
	m := model.DLRMRMC2(model.Prod)
	s := New(hw.ServerType("T2"), m)
	cfg := Config{Place: PlaceCPUModel, Threads: 10, OpWorkers: 2, Batch: 64}
	res, err := s.Evaluate(cfg, 10, 55)
	if err != nil {
		t.Fatal(err)
	}
	// One 10-item batch at zero contention is the absolute floor.
	floor := costmodel.CPUBatch(s.Params, s.HW, s.Graph, allOps(s.Graph), 10, 0.5, 1, 2, false, s.LUT)
	if res.P50MS*1e-3 < floor.ServiceS {
		t.Fatalf("median latency %.4f s below single-batch floor %.4f s",
			res.P50MS*1e-3, floor.ServiceS)
	}
}
