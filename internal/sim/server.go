package sim

import (
	"fmt"
	"math"
	"sort"

	"hercules/internal/costmodel"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/nmpsim"
	"hercules/internal/partition"
	"hercules/internal/power"
	"hercules/internal/stats"
	"hercules/internal/workload"
)

// Server simulates one physical server serving one recommendation model.
type Server struct {
	HW     hw.Server
	Model  *model.Model
	Graph  *model.Graph
	Params costmodel.Params
	Power  power.Model
	LUT    *nmpsim.LUT
	// TailPercentile is the SLA tail point (the paper's latency-bounded
	// throughput uses the p95 tail, following DeepRecSys).
	TailPercentile float64
}

// New builds a server simulator with default calibration.
func New(srv hw.Server, m *model.Model) *Server {
	return &Server{
		HW:             srv,
		Model:          m,
		Graph:          model.BuildGraph(m),
		Params:         costmodel.DefaultParams(),
		Power:          power.Default(),
		LUT:            nmpsim.Default(),
		TailPercentile: 95,
	}
}

// Result summarizes one simulation run.
type Result struct {
	OfferedQPS   float64
	CompletedQPS float64
	MeanMS       float64
	P50MS        float64
	P95MS        float64
	P99MS        float64
	TailMS       float64 // latency at Server.TailPercentile
	CPUUtil      float64
	GPUUtil      float64
	AvgPowerW    float64
	ProvisionedW float64
	QPSPerWatt   float64
	// Per-query mean stage breakdown for accelerator placements (Fig. 7).
	QueueMS, LoadMS, ComputeMS float64
	Queries                    int
}

// Simulate serves the query stream under the given configuration and
// returns measured metrics. wallS is the nominal window length (the
// arrival span); utilization uses the true makespan when overloaded.
func (s *Server) Simulate(cfg Config, queries []workload.Query, wallS float64) (Result, error) {
	if err := cfg.Validate(s.HW); err != nil {
		return Result{}, err
	}
	if len(queries) == 0 {
		return Result{}, fmt.Errorf("sim: empty query stream")
	}
	run := newRun(s, cfg)
	switch cfg.Place {
	case PlaceCPUModel:
		run.cpuModelBased(queries)
	case PlaceCPUSD:
		run.cpuSDPipeline(queries)
	case PlaceAccelModel, PlaceAccelSD:
		run.accel(queries)
	}
	return run.finish(queries, wallS), nil
}

// run carries per-simulation state.
type run struct {
	s   *Server
	cfg Config

	// Partition products for accelerator placements.
	plan    partition.Plan
	payload partition.Payload

	// Resource free times.
	gpuFree, pcieFree float64

	// Completion and breakdown records per query.
	done    []float64
	queueS  []float64
	loadS   []float64
	computS []float64

	// Activity accounting.
	act power.Activity

	// Cost memo for CPU batches, keyed on (items, active threads,
	// scale bucket, phase).
	cpuMemo map[int64]costmodel.CPUBatchCost
}

func newRun(s *Server, cfg Config) *run {
	r := &run{s: s, cfg: cfg, cpuMemo: make(map[int64]costmodel.CPUBatchCost)}
	if cfg.Place.OnAccel() {
		budget := s.HW.GPU.MemoryBytes / int64(max(cfg.AccelThreads, 1))
		r.plan = partition.BuildPlan(s.Model, budget)
		switch cfg.Place {
		case PlaceAccelModel:
			r.payload = partition.ModelBasedAccel(r.plan)
		case PlaceAccelSD:
			r.payload = partition.SDAccel(r.plan)
		}
	}
	return r
}

// scaleBucket quantizes the per-query sparse scale for cost memoization.
// Zero keeps its own bucket (a dense query has no pooled work and must
// not be costed as if it pooled at scale 0.125).
func scaleBucket(scale float64) int {
	b := int(math.Round(scale * 8))
	return stats.ClampInt(b, 0, 32)
}

func bucketScale(b int) float64 { return float64(b) / 8 }

// cpuCost returns the (memoized) CPU batch cost for the given phase ops.
// phase: 0 = full graph, 1 = sparse only, 2 = dense only.
func (r *run) cpuCost(phase, items int, scale float64, coThreads, workers int) costmodel.CPUBatchCost {
	// coThreads is the instantaneous co-active thread count, so it joins
	// (items, scale bucket, phase) in the memo key.
	sb := scaleBucket(scale)
	key := int64(items)<<24 | int64(coThreads)<<16 | int64(sb)<<8 | int64(phase)
	if c, ok := r.cpuMemo[key]; ok {
		return c
	}
	var ids []int
	switch phase {
	case 0:
		ids = allOps(r.s.Graph)
	case 1:
		ids = r.s.Graph.SparseOps()
	default:
		ids = r.s.Graph.DenseOps()
	}
	c := costmodel.CPUBatch(r.s.Params, r.s.HW, r.s.Graph, ids, items,
		bucketScale(sb), coThreads, workers, r.cfg.UseNMP, r.s.LUT)
	r.cpuMemo[key] = c
	return c
}

func allOps(g *model.Graph) []int {
	ids := make([]int, len(g.Ops))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// subBatches splits a query into sub-query item counts of at most batch.
func subBatches(size, batch int) []int {
	if batch >= size {
		return []int{size}
	}
	n := (size + batch - 1) / batch
	out := make([]int, 0, n)
	for size > 0 {
		b := batch
		if size < b {
			b = size
		}
		out = append(out, b)
		size -= b
	}
	return out
}

// activeAt counts the threads still busy at `start`, plus the one about
// to start: the instantaneous co-location degree that drives memory
// contention. Using the configured thread count instead would charge an
// idle server full contention (threads that have nothing to do cannot
// interfere).
func activeAt(free []float64, start float64) int {
	n := 1
	for _, f := range free {
		if f > start {
			n++
		}
	}
	if n > len(free) {
		n = len(free)
	}
	return n
}

// earliest returns the index of the smallest element.
func earliest(free []float64) int {
	best := 0
	for i := 1; i < len(free); i++ {
		if free[i] < free[best] {
			best = i
		}
	}
	return best
}

// cpuModelBased simulates Fig. 3's model-based scheduling: m co-located
// threads each executing the whole graph on sub-query batches.
func (r *run) cpuModelBased(queries []workload.Query) {
	cfg := r.cfg
	free := make([]float64, cfg.Threads)
	r.done = make([]float64, len(queries))
	for qi, q := range queries {
		var qDone float64
		for _, items := range subBatches(q.Size, cfg.Batch) {
			ti := earliest(free)
			start := math.Max(q.ArrivalS, free[ti])
			c := r.cpuCost(0, items, q.SparseScale, activeAt(free, start), cfg.OpWorkers)
			free[ti] = start + c.ServiceS
			if free[ti] > qDone {
				qDone = free[ti]
			}
			r.account(c)
		}
		r.done[qi] = qDone
	}
}

// cpuSDPipeline simulates Fig. 10(b): SparseNet threads feeding DenseNet
// threads through an intermediate queue.
func (r *run) cpuSDPipeline(queries []workload.Query) {
	cfg := r.cfg
	sparseFree := make([]float64, cfg.SparseThreads)
	r.done = make([]float64, len(queries))

	type handoff struct {
		qi    int
		items int
		scale float64
		ready float64
	}
	var hs []handoff
	for qi, q := range queries {
		for _, items := range subBatches(q.Size, cfg.Batch) {
			ti := earliest(sparseFree)
			start := math.Max(q.ArrivalS, sparseFree[ti])
			c := r.cpuCost(1, items, q.SparseScale, activeAt(sparseFree, start), cfg.SparseWorkers)
			sparseFree[ti] = start + c.ServiceS
			r.account(c)
			hs = append(hs, handoff{qi, items, q.SparseScale,
				sparseFree[ti] + r.s.Params.CommOverheadS})
		}
	}
	// Dense stage consumes in completion order.
	sort.SliceStable(hs, func(i, j int) bool { return hs[i].ready < hs[j].ready })
	denseFree := make([]float64, cfg.Threads)
	for _, h := range hs {
		ti := earliest(denseFree)
		start := math.Max(h.ready, denseFree[ti])
		c := r.cpuCost(2, h.items, h.scale, activeAt(denseFree, start), cfg.OpWorkers)
		denseFree[ti] = start + c.ServiceS
		r.account(c)
		if denseFree[ti] > r.done[h.qi] {
			r.done[h.qi] = denseFree[ti]
		}
	}
}

// accel simulates the accelerator placements of Fig. 10(c)/(d): an
// optional host SparseNet stage, then fused batches flowing through the
// PCIe link and the GPU engine.
func (r *run) accel(queries []workload.Query) {
	cfg := r.cfg
	r.done = make([]float64, len(queries))
	r.queueS = make([]float64, len(queries))
	r.loadS = make([]float64, len(queries))
	r.computS = make([]float64, len(queries))

	// Stage 1: host sparse (cold entries under model-based placement,
	// everything under S-D). Whole-query granularity.
	ready := make([]float64, len(queries))
	hostWork := r.payload.HostGatherBytesPerItem
	if hostWork > 0 && cfg.SparseThreads > 0 {
		free := make([]float64, cfg.SparseThreads)
		for qi, q := range queries {
			ti := earliest(free)
			start := math.Max(q.ArrivalS, free[ti])
			bytes := hostWork * q.Items() * q.SparseScale
			svc, busy := costmodel.HostGather(r.s.Params, r.s.HW, bytes,
				activeAt(free, start), cfg.SparseWorkers, len(r.s.Model.Tables))
			svc += r.s.Params.DispatchOverheadS
			free[ti] = start + svc
			ready[qi] = free[ti] + r.s.Params.CommOverheadS
			r.act.CoreBusyS += busy
			r.act.HostBytes += bytes
		}
	} else {
		for qi, q := range queries {
			ready[qi] = q.ArrivalS
		}
	}

	// Stage 2: fusion + PCIe + GPU engine across co-located threads.
	type pend struct {
		qi    int
		ready float64
	}
	pending := make([]pend, len(queries))
	for qi := range queries {
		pending[qi] = pend{qi, ready[qi]}
	}
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].ready < pending[j].ready })

	threadFree := make([]float64, cfg.AccelThreads)
	denseIDs := r.s.Graph.DenseOps()
	gatherKernels := len(r.s.Model.Tables)
	pos := 0
	for pos < len(pending) {
		ti := earliest(threadFree)
		head := pending[pos]
		t := math.Max(threadFree[ti], head.ready)

		// Fuse queries that are ready by t, up to the fusion limit.
		batch := []pend{head}
		items := queries[head.qi].Size
		scaleSum := queries[head.qi].SparseScale * queries[head.qi].Items()
		next := pos + 1
		if cfg.FusionLimit > 0 {
			for next < len(pending) && pending[next].ready <= t {
				sz := queries[pending[next].qi].Size
				if items+sz > cfg.FusionLimit {
					break
				}
				batch = append(batch, pending[next])
				items += sz
				scaleSum += queries[pending[next].qi].SparseScale * float64(sz)
				next++
			}
		}
		pos = next
		scale := scaleSum / float64(items)

		c := costmodel.GPUBatch(r.s.Params, r.s.HW.GPU, r.s.Graph, denseIDs,
			items, scale, r.payload.PCIeBytesPerItem, r.payload.GPUGatherBytesPerItem,
			gatherKernels)
		loadStart := math.Max(t, r.pcieFree)
		r.pcieFree = loadStart + c.LoadS
		compStart := math.Max(r.pcieFree, r.gpuFree)
		r.gpuFree = compStart + c.ComputeS
		doneAt := r.gpuFree
		threadFree[ti] = doneAt

		r.act.PCIeBusyS += c.LoadS
		r.act.GPUBusyS += c.ComputeS
		r.act.HostBytes += c.PCIeBytes // staged through host memory

		for _, b := range batch {
			r.done[b.qi] = doneAt
			r.queueS[b.qi] = loadStart - b.ready
			r.loadS[b.qi] = c.LoadS
			r.computS[b.qi] = c.ComputeS + (compStart - r.pcieFree)
		}
	}
}

// account records a CPU batch's resource usage.
func (r *run) account(c costmodel.CPUBatchCost) {
	r.act.CoreBusyS += c.CoreBusyS
	r.act.HostBytes += c.HostBytes
	r.act.NMPBytes += c.NMPBytes
}

// finish computes the result metrics.
func (r *run) finish(queries []workload.Query, wallS float64) Result {
	var lastDone float64
	for _, d := range r.done {
		if d > lastDone {
			lastDone = d
		}
	}
	wall := math.Max(wallS, lastDone)
	r.act.WallS = wall

	// Latency sample, discarding the first 10% as warm-up.
	warm := len(queries) / 10
	lat := stats.NewSample(len(queries) - warm)
	var qSum, lSum, cSum float64
	for qi := warm; qi < len(queries); qi++ {
		lat.Add((r.done[qi] - queries[qi].ArrivalS) * 1e3)
		if r.queueS != nil {
			qSum += r.queueS[qi]
			lSum += r.loadS[qi]
			cSum += r.computS[qi]
		}
	}
	n := float64(len(queries) - warm)

	res := Result{
		OfferedQPS:   float64(len(queries)) / wallS,
		CompletedQPS: float64(len(queries)) / wall,
		MeanMS:       lat.Mean(),
		P50MS:        lat.P50(),
		P95MS:        lat.P95(),
		P99MS:        lat.P99(),
		TailMS:       lat.Percentile(r.s.TailPercentile),
		CPUUtil:      r.act.CPUUtilization(r.s.HW.CPU),
		GPUUtil:      r.act.GPUUtilization(),
		Queries:      len(queries),
	}
	if r.queueS != nil && n > 0 {
		res.QueueMS = qSum / n * 1e3
		res.LoadMS = lSum / n * 1e3
		res.ComputeMS = cSum / n * 1e3
	}
	res.AvgPowerW = r.s.Power.Average(r.s.HW, r.act)
	res.ProvisionedW = r.s.Power.Provisioned(r.s.HW, r.act)
	if res.AvgPowerW > 0 {
		res.QPSPerWatt = res.CompletedQPS / res.AvgPowerW
	}
	return res
}
