package sim

import (
	"fmt"

	"hercules/internal/hw"
)

// Placement selects the model-partition mapping of §IV-B (Fig. 10).
type Placement int

// Placements. CPU placements ignore the accelerator; accelerator
// placements use host sparse threads where the partition requires them.
const (
	// PlaceCPUModel launches the whole graph Gm on co-located CPU
	// inference threads (model-based scheduling).
	PlaceCPUModel Placement = iota
	// PlaceCPUSD pipelines SparseNet threads into DenseNet threads on
	// the CPU (Fig. 10b).
	PlaceCPUSD
	// PlaceAccelModel puts Gs.hot+Gd on the accelerator; the host serves
	// cold embeddings as partial sums (Fig. 10d). Degenerates to
	// whole-model-on-GPU when the partition fits.
	PlaceAccelModel
	// PlaceAccelSD runs all of SparseNet on host threads and DenseNet on
	// the accelerator (Fig. 10c).
	PlaceAccelSD
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case PlaceCPUModel:
		return "cpu-model"
	case PlaceCPUSD:
		return "cpu-sd"
	case PlaceAccelModel:
		return "accel-model"
	case PlaceAccelSD:
		return "accel-sd"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// OnAccel reports whether the placement uses the accelerator.
func (p Placement) OnAccel() bool { return p == PlaceAccelModel || p == PlaceAccelSD }

// Config is one point in the task-scheduling space Psp(M+D+O): the
// parallelism configuration the schedulers search over.
type Config struct {
	Place Placement
	// Threads is the model-thread count m (PlaceCPUModel) or the
	// DenseNet thread count (PlaceCPUSD).
	Threads int
	// OpWorkers is the per-thread operator-worker (core) count o.
	OpWorkers int
	// SparseThreads/SparseWorkers describe the host SparseNet stage for
	// pipeline placements (PlaceCPUSD, and host cold-serving for accel
	// placements).
	SparseThreads, SparseWorkers int
	// Batch is the CPU sub-query split size d in items.
	Batch int
	// AccelThreads is the model co-location degree on the accelerator.
	AccelThreads int
	// FusionLimit caps fused batch size in items on the accelerator;
	// 0 disables query fusion (one query per accelerator batch).
	FusionLimit int
	// UseNMP dispatches pooled embedding ops to NMP DIMMs when present.
	UseNMP bool
}

// CPUCoresUsed returns the number of physical cores the config occupies.
func (c Config) CPUCoresUsed() int {
	switch c.Place {
	case PlaceCPUModel:
		return c.Threads * c.OpWorkers
	case PlaceCPUSD:
		return c.Threads*c.OpWorkers + c.SparseThreads*c.SparseWorkers
	default:
		return c.SparseThreads * c.SparseWorkers
	}
}

// Validate checks the configuration against the server's resources.
func (c Config) Validate(srv hw.Server) error {
	if c.Batch < 1 {
		return fmt.Errorf("sim: batch %d < 1", c.Batch)
	}
	switch c.Place {
	case PlaceCPUModel:
		if c.Threads < 1 || c.OpWorkers < 1 {
			return fmt.Errorf("sim: cpu-model needs threads ≥1 and workers ≥1")
		}
	case PlaceCPUSD:
		if c.Threads < 1 || c.SparseThreads < 1 {
			return fmt.Errorf("sim: cpu-sd needs both sparse and dense threads")
		}
		if c.OpWorkers < 1 || c.SparseWorkers < 1 {
			return fmt.Errorf("sim: cpu-sd needs positive worker counts")
		}
	case PlaceAccelModel, PlaceAccelSD:
		if srv.GPU == nil {
			return fmt.Errorf("sim: %v placement on GPU-less server %s", c.Place, srv.Type)
		}
		if c.AccelThreads < 1 {
			return fmt.Errorf("sim: accel placement needs accel threads ≥1")
		}
		if c.Place == PlaceAccelSD && (c.SparseThreads < 1 || c.SparseWorkers < 1) {
			return fmt.Errorf("sim: accel-sd needs a host sparse stage")
		}
	default:
		return fmt.Errorf("sim: unknown placement %d", int(c.Place))
	}
	if used := c.CPUCoresUsed(); used > srv.CPU.PhysicalCores {
		return fmt.Errorf("sim: config uses %d cores, server %s has %d",
			used, srv.Type, srv.CPU.PhysicalCores)
	}
	if c.FusionLimit < 0 {
		return fmt.Errorf("sim: negative fusion limit")
	}
	return nil
}

// DeepRecSysCPU returns the baseline task-scheduler configuration of
// [37] on CPUs: one inference thread per physical core, single operator
// worker, batch size d (the only dimension the baseline sweeps).
func DeepRecSysCPU(srv hw.Server, batch int) Config {
	return Config{
		Place:     PlaceCPUModel,
		Threads:   srv.CPU.PhysicalCores,
		OpWorkers: 1,
		Batch:     batch,
	}
}

// BaymaxAccel returns the baseline accelerator configuration of [32]:
// model co-location without query fusion.
func BaymaxAccel(coLocated, batch int) Config {
	return Config{
		Place:         PlaceAccelModel,
		SparseThreads: 1, // host stage sized minimally; large models need it
		SparseWorkers: 1,
		Batch:         batch,
		AccelThreads:  coLocated,
		FusionLimit:   0,
	}
}
