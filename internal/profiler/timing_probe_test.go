package profiler

import (
	"testing"
	"time"

	"hercules/internal/hw"
	"hercules/internal/model"
)

func TestTimingProbe(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, pair := range []struct{ m, srv string }{
		{"DLRM-RMC1", "T2"}, {"DLRM-RMC2", "T2"}, {"MT-WnD", "T7"}, {"DIEN", "T7"}, {"DLRM-RMC1", "T4"},
	} {
		m, _ := model.ByName(pair.m, model.Prod)
		start := time.Now()
		e := ProfilePair(m, hw.ServerType(pair.srv), Options{Sched: Hercules, Seed: 42})
		t.Logf("%s on %s: %.0f QPS %.0f W cfg=%+v in %v", pair.m, pair.srv, e.QPS, e.PowerW, e.Cfg, time.Since(start))
	}
}
