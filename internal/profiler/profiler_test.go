package profiler

import (
	"encoding/json"
	"strings"
	"testing"

	"hercules/internal/hw"
	"hercules/internal/model"
)

func syntheticTable() *Table {
	t := &Table{}
	t.Set(Entry{Model: "A", Server: "T1", QPS: 100, PowerW: 100, QPSPerWatt: 1.0})
	t.Set(Entry{Model: "A", Server: "T2", QPS: 300, PowerW: 150, QPSPerWatt: 2.0})
	t.Set(Entry{Model: "A", Server: "T3", QPS: 200, PowerW: 400, QPSPerWatt: 0.5})
	t.Set(Entry{Model: "B", Server: "T1", QPS: 50, PowerW: 100, QPSPerWatt: 0.5})
	return t
}

func TestTableSetGet(t *testing.T) {
	tb := syntheticTable()
	e, ok := tb.Get("T2", "A")
	if !ok || e.QPS != 300 {
		t.Fatalf("Get(T2,A) = %+v, %v", e, ok)
	}
	if _, ok := tb.Get("T9", "A"); ok {
		t.Fatal("missing server must miss")
	}
	if _, ok := tb.Get("T1", "Z"); ok {
		t.Fatal("missing model must miss")
	}
}

func TestMustGetPanics(t *testing.T) {
	tb := syntheticTable()
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on a missing entry must panic")
		}
	}()
	tb.MustGet("T9", "A")
}

func TestRankServersByEfficiency(t *testing.T) {
	tb := syntheticTable()
	rank := tb.RankServers("A")
	want := []string{"T2", "T1", "T3"}
	if len(rank) != 3 {
		t.Fatalf("rank = %v", rank)
	}
	for i := range want {
		if rank[i] != want[i] {
			t.Fatalf("rank = %v, want %v", rank, want)
		}
	}
	if got := tb.RankServers("B"); len(got) != 1 || got[0] != "T1" {
		t.Fatalf("rank(B) = %v", got)
	}
	if got := tb.RankServers("Z"); len(got) != 0 {
		t.Fatalf("rank of unknown model = %v", got)
	}
}

func TestServersSorted(t *testing.T) {
	tb := syntheticTable()
	got := tb.Servers()
	if len(got) != 3 || got[0] != "T1" || got[1] != "T2" || got[2] != "T3" {
		t.Fatalf("servers = %v", got)
	}
}

func TestFormatRendersMatrix(t *testing.T) {
	tb := syntheticTable()
	out := tb.Format([]string{"A", "B"})
	if !strings.Contains(out, "T2") || !strings.Contains(out, "300") {
		t.Fatalf("format missing cells:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatal("missing entries must render as '-'")
	}
}

func TestSchedulerString(t *testing.T) {
	if Hercules.String() != "hercules" || Baseline.String() != "baseline" {
		t.Fatal("scheduler strings wrong")
	}
}

func TestProfilePairBaselineCPU(t *testing.T) {
	t.Parallel()
	m := model.DLRMRMC1(model.Prod)
	e := ProfilePair(m, hw.ServerType("T2"), Options{Sched: Baseline, Seed: 42})
	if e.QPS <= 0 {
		t.Fatalf("baseline profiling found no capacity: %+v", e)
	}
	if e.PowerW <= hw.ServerType("T2").IdleWatts() {
		t.Fatalf("provisioned power %v implausibly low", e.PowerW)
	}
	if e.QPSPerWatt <= 0 {
		t.Fatal("efficiency must be positive")
	}
	if e.Model != "DLRM-RMC1" || e.Server != "T2" {
		t.Fatalf("labels wrong: %+v", e)
	}
}

func TestBuildTableSmall(t *testing.T) {
	t.Parallel()
	models := []*model.Model{model.DLRMRMC1(model.Prod)}
	servers := []hw.Server{hw.ServerType("T1"), hw.ServerType("T2")}
	tb := BuildTable(models, servers, Options{Sched: Baseline, Seed: 42, Parallelism: 2})
	for _, srv := range servers {
		e, ok := tb.Get(srv.Type, "DLRM-RMC1")
		if !ok || e.QPS <= 0 {
			t.Fatalf("missing/empty entry for %s: %+v ok=%v", srv.Type, e, ok)
		}
	}
	// CPU-T2 has more, faster cores than CPU-T1: higher QPS (Fig. 15).
	t1 := tb.MustGet("T1", "DLRM-RMC1")
	t2 := tb.MustGet("T2", "DLRM-RMC1")
	if t2.QPS <= t1.QPS {
		t.Errorf("T2 (%.0f QPS) must outrun T1 (%.0f QPS)", t2.QPS, t1.QPS)
	}
	if t2.PowerW <= t1.PowerW {
		t.Errorf("T2 (%.0f W) must cost more power than T1 (%.0f W)", t2.PowerW, t1.PowerW)
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	tb := syntheticTable()
	entries := tb.Entries()
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Must be sorted by (server, model).
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if a.Server > b.Server || (a.Server == b.Server && a.Model > b.Model) {
			t.Fatalf("entries unsorted at %d: %+v after %+v", i, b, a)
		}
	}
	data, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	var back []Entry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	tb2 := FromEntries(Hercules, back)
	for _, e := range entries {
		got := tb2.MustGet(e.Server, e.Model)
		if got != e {
			t.Fatalf("round trip changed %+v to %+v", e, got)
		}
	}
	if tb2.Sched != Hercules {
		t.Fatal("scheduler label lost")
	}
}
