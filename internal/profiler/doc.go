// Package profiler implements Hercules' offline profiling stage
// (§IV-A, Fig. 9): for every workload/server-type pair it runs the
// task-scheduling exploration and records the efficiency tuple
// (QPS[h,m], Power[h,m]) that classifies workloads for the online
// cluster scheduler.
//
// The surface:
//
//   - BuildTable / ProfilePair — the full Fig. 9b profiling run: the
//     Algorithm 1 search (internal/sched, Scheduler selects Hercules or
//     the baseline) over every pair, minutes of work, memoized by the
//     experiments layer;
//   - CalibratePair — the seconds-scale alternative: measure one pair
//     under one given serving configuration (fleet.CalibrateTable
//     sweeps a small candidate ladder with it, which is what the CLIs
//     use when no -table is supplied);
//   - Entry / Table — the efficiency tuples (QPS, watts, QPS/W, the
//     winning sim.Config) with JSON round-tripping, lookup, per-model
//     server ranking (RankServers) and the rendered Fig. 9b matrix.
//
// Everything downstream — the cluster policies of internal/cluster,
// the fleet engine's instance weights and concurrency calibration —
// consumes these tables; no online component re-measures capacity.
package profiler
