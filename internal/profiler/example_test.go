package profiler_test

import (
	"fmt"

	"hercules/internal/fleet"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
)

// ExampleCalibratePair measures one (model, server type) pair under one
// serving configuration — the seconds-scale quick-calibration path the
// CLIs use when no profiled table is supplied (the full Fig. 9b run
// searches the whole configuration space instead).
func ExampleCalibratePair() {
	m := model.DLRMRMC1(model.Prod)
	srv := hw.ServerType("T2")
	cfg := fleet.DefaultServingConfig(srv)

	e, err := profiler.CalibratePair(m, srv, cfg, 42)
	if err != nil {
		fmt.Println("calibrate:", err)
		return
	}
	fmt.Printf("pair: %s on %s\n", e.Model, e.Server)
	fmt.Printf("capacity positive: %v\n", e.QPS > 0)
	fmt.Printf("efficiency consistent: %v\n", e.QPSPerWatt > 0 && e.PowerW > 0)
	// Output:
	// pair: DLRM-RMC1 on T2
	// capacity positive: true
	// efficiency consistent: true
}
