package profiler

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/sched"
	"hercules/internal/sim"
)

// Scheduler selects which task scheduler profiles the pair.
type Scheduler int

// Task schedulers available for profiling.
const (
	// Hercules explores the full parallelism space (Algorithm 1 over all
	// placements).
	Hercules Scheduler = iota
	// Baseline is DeepRecSys on the CPU / Baymax on the accelerator.
	Baseline
)

// String implements fmt.Stringer.
func (s Scheduler) String() string {
	if s == Baseline {
		return "baseline"
	}
	return "hercules"
}

// Entry is one efficiency tuple: the classification record for workload
// Gm on server type Th (one cell of Fig. 9b).
type Entry struct {
	Model  string
	Server string
	// QPS is the latency-bounded throughput under the model's SLA.
	QPS float64
	// PowerW is the offline-measured provisioned power budget.
	PowerW float64
	// QPSPerWatt is the energy-efficiency classification metric.
	QPSPerWatt float64
	// Cfg is the optimal task-scheduling configuration found.
	Cfg sim.Config
}

// Table is the workload classification table of Fig. 9(b).
type Table struct {
	Sched   Scheduler
	entries map[string]map[string]Entry // server → model → entry
}

// Options configures profiling.
type Options struct {
	Sched Scheduler
	Seed  int64
	// Parallelism bounds concurrent pair profiling (0 = 8).
	Parallelism int
	// PowerBudgetW constrains every pair's search (0 = TDP-bounded only).
	PowerBudgetW float64
}

// BuildTable profiles every model × server pair and assembles the table.
func BuildTable(models []*model.Model, servers []hw.Server, opt Options) *Table {
	t := &Table{Sched: opt.Sched, entries: make(map[string]map[string]Entry)}
	par := opt.Parallelism
	if par <= 0 {
		par = 8
	}
	type job struct {
		m   *model.Model
		srv hw.Server
	}
	jobs := make(chan job)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				e := ProfilePair(j.m, j.srv, opt)
				mu.Lock()
				if t.entries[j.srv.Type] == nil {
					t.entries[j.srv.Type] = make(map[string]Entry)
				}
				t.entries[j.srv.Type][j.m.Name] = e
				mu.Unlock()
			}
		}()
	}
	for _, srv := range servers {
		for _, m := range models {
			jobs <- job{m, srv}
		}
	}
	close(jobs)
	wg.Wait()
	return t
}

// ProfilePair profiles one workload/server pair.
func ProfilePair(m *model.Model, srv hw.Server, opt Options) Entry {
	s := sim.New(srv, m)
	sr := sched.NewSearcher(s, sched.Objective{
		SLAMS:        m.SLATargetMS,
		PowerBudgetW: opt.PowerBudgetW,
		Seed:         opt.Seed,
	})
	var best sched.Eval
	if opt.Sched == Baseline {
		best = sr.SearchBaseline()
	} else {
		best = sr.SearchHercules()
	}
	e := Entry{
		Model:  m.Name,
		Server: srv.Type,
		QPS:    best.QPS(),
		Cfg:    best.Cfg,
	}
	if best.QPS() > 0 {
		e.PowerW = best.Cap.At.ProvisionedW
		e.QPSPerWatt = best.QPS() / best.Cap.At.AvgPowerW
	} else {
		// Unservable pair: provision at idle so the cluster layer never
		// divides by zero.
		e.PowerW = srv.IdleWatts()
	}
	return e
}

// CalibratePair measures the efficiency tuple of one *fixed*
// task-scheduling configuration: a single latency-bounded capacity
// search instead of ProfilePair's full Algorithm 1 exploration. The
// fleet-replay tools use it to build serving tables in seconds when
// the full Fig. 9b table (minutes) is not needed; the recorded Config
// lets the fleet layer derive per-query service times.
func CalibratePair(m *model.Model, srv hw.Server, cfg sim.Config, seed int64) (Entry, error) {
	s := sim.New(srv, m)
	c, err := s.FindCapacity(cfg, m.SLATargetMS, seed)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{Model: m.Name, Server: srv.Type, QPS: c.QPS, Cfg: cfg}
	if c.QPS > 0 {
		e.PowerW = c.At.ProvisionedW
		e.QPSPerWatt = c.QPS / c.At.AvgPowerW
	} else {
		e.PowerW = srv.IdleWatts()
	}
	return e, nil
}

// Get returns the entry for (serverType, model).
func (t *Table) Get(serverType, modelName string) (Entry, bool) {
	row, ok := t.entries[serverType]
	if !ok {
		return Entry{}, false
	}
	e, ok := row[modelName]
	return e, ok
}

// MustGet returns the entry or panics (profiling is expected complete).
func (t *Table) MustGet(serverType, modelName string) Entry {
	e, ok := t.Get(serverType, modelName)
	if !ok {
		panic(fmt.Sprintf("profiler: missing entry %s/%s", serverType, modelName))
	}
	return e
}

// Set inserts an entry (used by tests and by table deserialization).
func (t *Table) Set(e Entry) {
	if t.entries == nil {
		t.entries = make(map[string]map[string]Entry)
	}
	if t.entries[e.Server] == nil {
		t.entries[e.Server] = make(map[string]Entry)
	}
	t.entries[e.Server][e.Model] = e
}

// Servers returns the profiled server types, sorted.
func (t *Table) Servers() []string {
	out := make([]string, 0, len(t.entries))
	for s := range t.entries {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// RankServers orders server types by descending QPS-per-Watt for the
// given model — the greedy scheduler's classification ranking (§II-C).
func (t *Table) RankServers(modelName string) []string {
	type se struct {
		srv string
		eff float64
	}
	var ses []se
	for srv, row := range t.entries {
		if e, ok := row[modelName]; ok {
			ses = append(ses, se{srv, e.QPSPerWatt})
		}
	}
	sort.Slice(ses, func(i, j int) bool {
		if ses[i].eff != ses[j].eff {
			return ses[i].eff > ses[j].eff
		}
		return ses[i].srv < ses[j].srv
	})
	out := make([]string, len(ses))
	for i, s := range ses {
		out[i] = s.srv
	}
	return out
}

// Entries returns all entries sorted by (server, model) for
// serialization and inspection.
func (t *Table) Entries() []Entry {
	var out []Entry
	for _, srv := range t.Servers() {
		row := t.entries[srv]
		models := make([]string, 0, len(row))
		for m := range row {
			models = append(models, m)
		}
		sort.Strings(models)
		for _, m := range models {
			out = append(out, row[m])
		}
	}
	return out
}

// FromEntries reconstructs a table (e.g. from a JSON cache).
func FromEntries(sched Scheduler, entries []Entry) *Table {
	t := &Table{Sched: sched}
	for _, e := range entries {
		t.Set(e)
	}
	return t
}

// Format renders the table as aligned text (the Fig. 9b matrix).
func (t *Table) Format(models []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s", "server")
	for _, m := range models {
		fmt.Fprintf(&sb, " %22s", m)
	}
	sb.WriteByte('\n')
	for _, srv := range t.Servers() {
		fmt.Fprintf(&sb, "%-6s", srv)
		for _, m := range models {
			if e, ok := t.Get(srv, m); ok {
				fmt.Fprintf(&sb, " %9.0fq %8.0fW ", e.QPS, e.PowerW)
			} else {
				fmt.Fprintf(&sb, " %22s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
