// Package model defines the recommendation-model intermediate
// representation used throughout Hercules and the six industry
// model configurations of Table I (DLRM-RMC1/2/3, MT-WnD, DIN, DIEN).
//
// A Model is a static description: embedding tables (SparseNet), dense
// layers, optional attention (FC or GRU), and multi-task heads. From it,
// BuildGraph derives an operator graph whose nodes carry per-item FLOP
// and byte costs; the cost model (internal/costmodel) turns those into
// latencies on concrete hardware, and the partitioner (internal/partition)
// splits the graph into Gs / Gs.hot / Gd sub-graphs.
//
// "Per item" means per ranked candidate: a query of size q ranks q items,
// so batch cost scales with the number of items in the batch.
//
// The surface: ByName and the Zoo constructors (DLRMRMC1 … DIEN) build
// the Table I configurations at Toy or Prod scale; each Model carries
// its SLA latency target (SLATargetMS), which every capacity search,
// provisioning decision and fleet-replay breach verdict downstream is
// scored against.
package model
