package model

import (
	"fmt"
	"sort"
)

// OpKind enumerates operator types in a computation graph.
type OpKind int

// Operator kinds. Embedding ops form the SparseNet; everything else is
// DenseNet.
const (
	OpEmbedPool   OpKind = iota // multi-hot Gather-and-Reduce (SLS)
	OpEmbedLookup               // one-hot / unpooled Gather
	OpFC                        // fully-connected layer (GEMM)
	OpAttention                 // DIN MLP attention over a sequence
	OpGRU                       // DIEN recurrent unit over a sequence
	OpInteraction               // DLRM pairwise dot-product interaction
	OpConcat                    // feature concatenation
	OpActivation                // element-wise ReLU / sigmoid
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpEmbedPool:
		return "EmbedPool"
	case OpEmbedLookup:
		return "EmbedLookup"
	case OpFC:
		return "FC"
	case OpAttention:
		return "Attention"
	case OpGRU:
		return "GRU"
	case OpInteraction:
		return "Interaction"
	case OpConcat:
		return "Concat"
	case OpActivation:
		return "Activation"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// IndexBytes is the per-lookup sparse-index payload: an int64 row index
// plus an int64 CSR offset entry — what crosses PCIe per embedding
// lookup when gathers run on an accelerator.
const IndexBytes = 16

// IsSparse reports whether the kind belongs to the SparseNet Gs.
func (k OpKind) IsSparse() bool { return k == OpEmbedPool || k == OpEmbedLookup }

// Op is one node in a computation graph. Costs are per ranked item; the
// cost model multiplies by the batch's item count.
type Op struct {
	ID        int
	Kind      OpKind
	Name      string
	DependsOn []int // op IDs that must complete first
	// FLOPsPerItem is the dense arithmetic cost.
	FLOPsPerItem float64
	// BytesPerItem is the main-memory traffic (dominant for embeddings:
	// pooling × dim × 4 bytes of gathered rows).
	BytesPerItem float64
	// IndexBytesPerItem is the sparse-index input volume — what must
	// cross PCIe when the op runs on an accelerator.
	IndexBytesPerItem float64
	// WeightBytes is the parameter traffic per batch (read once per
	// batch, not per item): FC weight matrices, GRU gate matrices.
	// Small batches pay this cost per item; large batches amortize it.
	WeightBytes float64
	// Table indexes Model.Tables for embedding ops, else -1.
	Table int
	// Sequential ops (GRU) cannot be batched across the sequence
	// dimension; their latency has a serial component.
	Sequential bool
}

// Graph is an operator DAG for one model.
type Graph struct {
	Model *Model
	Ops   []Op
}

// BuildGraph lowers a Model into its operator graph Gm. The layout
// mirrors Fig. 2(a): per-table embedding ops (independent), bottom MLP
// chain, optional attention, interaction/concat, predict MLP chain(s),
// with element-wise activations fused into the FC ops (the paper's
// operator-fusion step).
func BuildGraph(m *Model) *Graph {
	g := &Graph{Model: m}
	add := func(op Op) int {
		op.ID = len(g.Ops)
		g.Ops = append(g.Ops, op)
		return op.ID
	}

	// SparseNet: one op per table. Pooled tables reduce; unpooled gather.
	sparseIDs := make([]int, 0, len(m.Tables))
	var seqGatherID = -1
	for i, t := range m.Tables {
		kind := OpEmbedLookup
		if t.Pooled {
			kind = OpEmbedPool
		}
		pool := t.MeanPooling()
		op := Op{
			Kind:              kind,
			Name:              t.Name,
			FLOPsPerItem:      pool * float64(t.Dim), // reduction adds
			BytesPerItem:      pool * float64(t.Dim) * 4,
			IndexBytesPerItem: pool * IndexBytes,
			Table:             i,
		}
		id := add(op)
		sparseIDs = append(sparseIDs, id)
		if !t.Pooled && t.PoolingMax > 1 {
			seqGatherID = id
		}
	}

	// Bottom MLP chain.
	lastBottom := -1
	in := m.DenseInDim
	for li, out := range m.BottomMLP {
		op := Op{
			Kind:         OpFC,
			Name:         fmt.Sprintf("bottom-fc%d", li),
			FLOPsPerItem: 2 * float64(in) * float64(out),
			BytesPerItem: float64(in+out) * 4,
			WeightBytes:  float64(in) * float64(out) * 4,
		}
		if lastBottom >= 0 {
			op.DependsOn = []int{lastBottom}
		}
		lastBottom = add(op)
		in = out
	}

	// Attention over the behaviour sequence (depends on its gather).
	attnID := -1
	if m.Attention != AttentionNone && seqGatherID >= 0 {
		seq := m.meanSeqLen()
		d, h := m.seqFeatureDim(), m.AttentionHidden
		var op Op
		switch m.Attention {
		case AttentionFC:
			op = Op{
				Kind:         OpAttention,
				Name:         "attention-fc",
				FLOPsPerItem: seq * (2*float64(4*d)*float64(h) + 2*float64(h)),
				BytesPerItem: seq * float64(d) * 4,
				WeightBytes:  float64(4*d*h+h) * 4,
				DependsOn:    []int{seqGatherID},
			}
		case AttentionGRU:
			op = Op{
				Kind:         OpGRU,
				Name:         "gru",
				FLOPsPerItem: seq * 2 * 3 * float64(h) * float64(h+d),
				BytesPerItem: seq * float64(d+h) * 4,
				WeightBytes:  float64(3*h*(h+d)) * 4,
				DependsOn:    []int{seqGatherID},
				Sequential:   true,
			}
		}
		attnID = add(op)
	}

	// Feature combination: interaction (DLRM) or concat.
	deps := make([]int, 0, len(sparseIDs)+2)
	deps = append(deps, sparseIDs...)
	if lastBottom >= 0 {
		deps = append(deps, lastBottom)
	}
	if attnID >= 0 {
		deps = append(deps, attnID)
	}
	var combineID int
	if m.Interaction {
		n := len(m.Tables) + 1
		d := m.Tables[0].Dim
		combineID = add(Op{
			Kind:         OpInteraction,
			Name:         "interaction",
			FLOPsPerItem: float64(n*(n-1)/2) * 2 * float64(d),
			BytesPerItem: float64(n*d) * 4,
			DependsOn:    deps,
		})
	} else {
		combineID = add(Op{
			Kind:         OpConcat,
			Name:         "concat",
			FLOPsPerItem: 0,
			BytesPerItem: float64(m.predictInDim()) * 4,
			DependsOn:    deps,
		})
	}

	// Predict MLP chain(s): Tasks parallel towers.
	for task := 0; task < m.Tasks; task++ {
		prev := combineID
		in := m.predictInDim()
		for li, out := range m.PredictMLP {
			op := Op{
				Kind:         OpFC,
				Name:         fmt.Sprintf("predict-t%d-fc%d", task, li),
				FLOPsPerItem: 2 * float64(in) * float64(out),
				BytesPerItem: float64(in+out) * 4,
				WeightBytes:  float64(in) * float64(out) * 4,
				DependsOn:    []int{prev},
			}
			prev = add(op)
			in = out
		}
	}
	for i := range g.Ops {
		if !g.Ops[i].Kind.IsSparse() && g.Ops[i].Table == 0 {
			g.Ops[i].Table = -1
		}
	}
	return g
}

// SparseOps returns the SparseNet (Gs) operator IDs.
func (g *Graph) SparseOps() []int {
	var ids []int
	for _, op := range g.Ops {
		if op.Kind.IsSparse() {
			ids = append(ids, op.ID)
		}
	}
	return ids
}

// DenseOps returns the DenseNet (Gd) operator IDs.
func (g *Graph) DenseOps() []int {
	var ids []int
	for _, op := range g.Ops {
		if !op.Kind.IsSparse() {
			ids = append(ids, op.ID)
		}
	}
	return ids
}

// TotalWork sums the per-item FLOPs and bytes of the given op set.
func (g *Graph) TotalWork(ids []int) (flops, bytes float64) {
	for _, id := range ids {
		flops += g.Ops[id].FLOPsPerItem
		bytes += g.Ops[id].BytesPerItem
	}
	return flops, bytes
}

// CriticalPathFLOPs returns the longest dependency-chain FLOPs within
// the given op subset: the serial floor that limits op-parallel speedup
// (the source of the idle time in Fig. 5).
func (g *Graph) CriticalPathFLOPs(ids []int) float64 {
	in := make(map[int]bool, len(ids))
	for _, id := range ids {
		in[id] = true
	}
	memo := make(map[int]float64, len(ids))
	var longest func(id int) float64
	longest = func(id int) float64 {
		if v, ok := memo[id]; ok {
			return v
		}
		best := 0.0
		for _, dep := range g.Ops[id].DependsOn {
			if in[dep] {
				if l := longest(dep); l > best {
					best = l
				}
			}
		}
		v := best + g.Ops[id].FLOPsPerItem
		memo[id] = v
		return v
	}
	var max float64
	for _, id := range ids {
		if l := longest(id); l > max {
			max = l
		}
	}
	return max
}

// TopoOrder returns op IDs in a deterministic topological order.
// BuildGraph already emits ops topologically, but partitioned sub-graphs
// re-derive order after filtering.
func (g *Graph) TopoOrder(ids []int) []int {
	// Op IDs index g.Ops, so the bookkeeping lives in flat slices with a
	// CSR successor table instead of maps — this runs once per cost-model
	// evaluation, thousands of times during a serving-table calibration
	// or a fleet service-grid fill, and hashing dominated it.
	n := len(g.Ops)
	in := make([]bool, n)
	for _, id := range ids {
		in[id] = true
	}
	indeg := make([]int, n)
	off := make([]int, n+1)
	for _, id := range ids {
		for _, dep := range g.Ops[id].DependsOn {
			if in[dep] {
				indeg[id]++
				off[dep+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	succ := make([]int, off[n])
	fill := make([]int, n)
	copy(fill, off[:n])
	for _, id := range ids {
		for _, dep := range g.Ops[id].DependsOn {
			if in[dep] {
				succ[fill[dep]] = id
				fill[dep]++
			}
		}
	}
	ready := make([]int, 0, len(ids))
	for _, id := range ids {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, len(ids))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		next := succ[off[id]:fill[id]]
		sort.Ints(next)
		for _, s := range next {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}
