package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZooValidates(t *testing.T) {
	for _, v := range []Variant{Prod, Small} {
		for _, m := range Zoo(v) {
			if err := m.Validate(); err != nil {
				t.Errorf("%s (%s): %v", m.Name, v, err)
			}
		}
	}
}

func TestZooNamesRoundTrip(t *testing.T) {
	for _, n := range ZooNames {
		m, err := ByName(n, Prod)
		if err != nil {
			t.Fatalf("ByName(%s): %v", n, err)
		}
		if m.Name != n {
			t.Errorf("name mismatch: %s vs %s", m.Name, n)
		}
	}
	if _, err := ByName("nope", Prod); err == nil {
		t.Error("unknown model must error")
	}
}

func TestTableIStructure(t *testing.T) {
	rmc1 := DLRMRMC1(Prod)
	if len(rmc1.Tables) != 10 {
		t.Errorf("RMC1 tables = %d, want ~10", len(rmc1.Tables))
	}
	rmc2 := DLRMRMC2(Prod)
	if len(rmc2.Tables) != 100 {
		t.Errorf("RMC2 tables = %d, want ~100", len(rmc2.Tables))
	}
	wnd := MTWnD(Prod)
	if len(wnd.Tables) != 26 {
		t.Errorf("MT-WnD tables = %d, want 26", len(wnd.Tables))
	}
	if wnd.Tasks != 5 {
		t.Errorf("MT-WnD tasks = %d, want multi-task", wnd.Tasks)
	}
	for _, tb := range wnd.Tables {
		if tb.Pooled || tb.PoolingMax != 1 {
			t.Error("MT-WnD must be one-hot, unpooled")
		}
	}
	din := DIN(Prod)
	if len(din.Tables) != 3 {
		t.Errorf("DIN tables = %d, want 3", len(din.Tables))
	}
	if din.Attention != AttentionFC || DIEN(Prod).Attention != AttentionGRU {
		t.Error("DIN uses FC attention, DIEN uses GRU")
	}
}

func TestSLATargets(t *testing.T) {
	// Fig. 15 caption: 20/50/50/50/100/100 ms.
	want := map[string]float64{
		"DLRM-RMC1": 20, "DLRM-RMC2": 50, "DLRM-RMC3": 50,
		"MT-WnD": 50, "DIN": 100, "DIEN": 100,
	}
	for _, m := range Zoo(Prod) {
		if m.SLATargetMS != want[m.Name] {
			t.Errorf("%s SLA = %v, want %v", m.Name, m.SLATargetMS, want[m.Name])
		}
	}
}

func TestFig1FootprintRegions(t *testing.T) {
	// Fig. 1 left: RMC1/RMC2 are memory dominated; RMC3, MT-WnD, DIN,
	// DIEN are compute dominated.
	memDominated := map[string]bool{
		"DLRM-RMC1": true, "DLRM-RMC2": true,
		"DLRM-RMC3": false, "MT-WnD": false, "DIN": false, "DIEN": false,
	}
	for _, m := range Zoo(Prod) {
		s := m.Summarize()
		if s.MemoryDominated != memDominated[m.Name] {
			t.Errorf("%s memory-dominated = %v, want %v (flops=%.3g bytes=%.3g)",
				m.Name, s.MemoryDominated, memDominated[m.Name], s.FLOPsPerItem, s.SparseBytes)
		}
	}
}

func TestFootprintOrdersOfMagnitude(t *testing.T) {
	// Fig. 1: intensities vary by one to two orders of magnitude.
	zoo := Zoo(Prod)
	minF, maxF := math.Inf(1), 0.0
	minB, maxB := math.Inf(1), 0.0
	for _, m := range zoo {
		s := m.Summarize()
		minF = math.Min(minF, s.FLOPsPerItem)
		maxF = math.Max(maxF, s.FLOPsPerItem)
		minB = math.Min(minB, s.SparseBytes)
		maxB = math.Max(maxB, s.SparseBytes)
	}
	if maxF/minF < 10 {
		t.Errorf("FLOP spread %.1f×, want ≥10×", maxF/minF)
	}
	if maxB/minB < 10 {
		t.Errorf("byte spread %.1f×, want ≥10×", maxB/minB)
	}
}

func TestEmbeddingDominatesFootprint(t *testing.T) {
	// §IV-B: >95% of model bytes are embeddings.
	for _, m := range Zoo(Prod) {
		emb := float64(m.EmbeddingBytes())
		dense := float64(m.DenseParamBytes())
		if emb/(emb+dense) < 0.95 {
			t.Errorf("%s embedding fraction %.3f < 0.95", m.Name, emb/(emb+dense))
		}
	}
}

func TestSmallVariantFitsGPU(t *testing.T) {
	const gpuMem = 16 << 30
	for _, m := range Zoo(Small) {
		if m.EmbeddingBytes() > gpuMem {
			t.Errorf("%s small = %d bytes, exceeds 16 GB", m.Name, m.EmbeddingBytes())
		}
	}
}

func TestProdVariantsExceedGPU(t *testing.T) {
	// §III-B: model-based scheduling does not scale to large models on a
	// 16 GB V100 — prod variants must require partitioning.
	const gpuMem = 16 << 30
	overflow := 0
	for _, m := range Zoo(Prod) {
		if m.EmbeddingBytes() > gpuMem {
			overflow++
		}
	}
	if overflow < 4 {
		t.Errorf("only %d prod models exceed GPU memory; paper needs partitioning to matter", overflow)
	}
}

func TestSparseFractionHint(t *testing.T) {
	// §VI-A: SparseNet is <5%–ish of latency for MT-WnD/DIN/DIEN, large
	// for RMC1/RMC2.
	for _, name := range []string{"MT-WnD", "DIN", "DIEN"} {
		m, _ := ByName(name, Prod)
		if f := m.SparseFractionHint(); f > 0.25 {
			t.Errorf("%s sparse fraction = %.2f, want small", name, f)
		}
	}
	rmc1 := DLRMRMC1(Prod)
	if f := rmc1.SparseFractionHint(); f < 0.4 {
		t.Errorf("RMC1 sparse fraction = %.2f, want large", f)
	}
	// RMC2's wide interaction stage adds dense work, but it must remain
	// clearly more sparse-bound than the attention models.
	rmc2 := DLRMRMC2(Prod)
	din := DIN(Prod)
	if rmc2.SparseFractionHint() <= 2*din.SparseFractionHint() {
		t.Errorf("RMC2 sparse fraction %.2f not clearly above DIN %.2f",
			rmc2.SparseFractionHint(), din.SparseFractionHint())
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	good := DLRMRMC1(Prod)
	cases := []func(m *Model){
		func(m *Model) { m.Name = "" },
		func(m *Model) { m.Tables = nil },
		func(m *Model) { m.Tables[0].Rows = 0 },
		func(m *Model) { m.Tables[0].PoolingMin = 0 },
		func(m *Model) { m.Tables[0].PoolingMax = m.Tables[0].PoolingMin - 1 },
		func(m *Model) { m.Tables[0].ZipfSkew = 0 },
		func(m *Model) { m.PredictMLP = nil },
		func(m *Model) { m.Tasks = 0 },
		func(m *Model) { m.SLATargetMS = 0 },
	}
	for i, mutate := range cases {
		m := DLRMRMC1(Prod)
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: mutated model must fail validation", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("pristine model must validate: %v", err)
	}
	bad := DIN(Prod)
	bad.AttentionHidden = 0
	if err := bad.Validate(); err == nil {
		t.Error("attention without hidden width must fail")
	}
}

func TestMeanPooling(t *testing.T) {
	tb := EmbTable{PoolingMin: 20, PoolingMax: 160}
	if got := tb.MeanPooling(); got != 90 {
		t.Errorf("mean pooling = %v, want 90", got)
	}
}

func TestVariantString(t *testing.T) {
	if Prod.String() != "prod" || Small.String() != "small" {
		t.Error("variant strings wrong")
	}
}

func TestAttentionKindString(t *testing.T) {
	if AttentionNone.String() != "none" || AttentionFC.String() != "FC" || AttentionGRU.String() != "GRU" {
		t.Error("attention strings wrong")
	}
	if AttentionKind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestQuickPoolingMeanWithinBounds(t *testing.T) {
	f := func(lo, span uint8) bool {
		min := int(lo%100) + 1
		max := min + int(span%200)
		tb := EmbTable{PoolingMin: min, PoolingMax: max}
		mp := tb.MeanPooling()
		return mp >= float64(min) && mp <= float64(max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
