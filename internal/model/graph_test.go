package model

import (
	"testing"
	"testing/quick"
)

func TestBuildGraphAllModels(t *testing.T) {
	for _, m := range Zoo(Prod) {
		g := BuildGraph(m)
		if len(g.Ops) == 0 {
			t.Fatalf("%s: empty graph", m.Name)
		}
		// IDs must be dense and self-consistent.
		for i, op := range g.Ops {
			if op.ID != i {
				t.Errorf("%s: op %d has ID %d", m.Name, i, op.ID)
			}
			for _, dep := range op.DependsOn {
				if dep < 0 || dep >= i {
					t.Errorf("%s: op %d depends on %d (must be earlier)", m.Name, i, dep)
				}
			}
		}
	}
}

func TestGraphSparseDenseSplit(t *testing.T) {
	for _, m := range Zoo(Prod) {
		g := BuildGraph(m)
		sparse, dense := g.SparseOps(), g.DenseOps()
		if len(sparse) != len(m.Tables) {
			t.Errorf("%s: sparse ops %d != tables %d", m.Name, len(sparse), len(m.Tables))
		}
		if len(sparse)+len(dense) != len(g.Ops) {
			t.Errorf("%s: partition does not cover graph", m.Name)
		}
		for _, id := range sparse {
			if !g.Ops[id].Kind.IsSparse() {
				t.Errorf("%s: op %d in sparse set is %v", m.Name, id, g.Ops[id].Kind)
			}
			if len(g.Ops[id].DependsOn) != 0 {
				t.Errorf("%s: sparse ops must be independent (no deps)", m.Name)
			}
		}
	}
}

func TestGraphCostsPositive(t *testing.T) {
	for _, m := range Zoo(Prod) {
		g := BuildGraph(m)
		for _, op := range g.Ops {
			if op.BytesPerItem < 0 || op.FLOPsPerItem < 0 {
				t.Errorf("%s/%s: negative cost", m.Name, op.Name)
			}
			if op.Kind.IsSparse() && op.IndexBytesPerItem <= 0 {
				t.Errorf("%s/%s: sparse op without index bytes", m.Name, op.Name)
			}
			if op.Kind == OpFC && op.FLOPsPerItem <= 0 {
				t.Errorf("%s/%s: FC without FLOPs", m.Name, op.Name)
			}
		}
	}
}

func TestGraphTotalsMatchSummary(t *testing.T) {
	// Graph dense FLOPs should be within a small factor of the analytic
	// summary (graph includes reduction adds that the summary folds in).
	for _, m := range Zoo(Prod) {
		g := BuildGraph(m)
		flops, _ := g.TotalWork(g.DenseOps())
		s := m.Summarize()
		ratio := flops / s.FLOPsPerItem
		if ratio < 0.8 || ratio > 1.3 {
			t.Errorf("%s: graph dense FLOPs %.3g vs summary %.3g (ratio %.2f)",
				m.Name, flops, s.FLOPsPerItem, ratio)
		}
	}
}

func TestCriticalPathBoundsTotals(t *testing.T) {
	for _, m := range Zoo(Prod) {
		g := BuildGraph(m)
		dense := g.DenseOps()
		total, _ := g.TotalWork(dense)
		crit := g.CriticalPathFLOPs(dense)
		if crit <= 0 {
			t.Errorf("%s: zero critical path", m.Name)
		}
		if crit > total+1e-9 {
			t.Errorf("%s: critical path %.3g exceeds total %.3g", m.Name, crit, total)
		}
	}
}

func TestCriticalPathDominatedByChain(t *testing.T) {
	// DLRM-RMC1 dense net is essentially one chain (bottom → interaction
	// → predict): the critical path should be ≥90% of total dense work,
	// which is exactly why extra op-workers idle (Fig. 5).
	m := DLRMRMC1(Prod)
	g := BuildGraph(m)
	dense := g.DenseOps()
	total, _ := g.TotalWork(dense)
	crit := g.CriticalPathFLOPs(dense)
	if crit/total < 0.9 {
		t.Errorf("RMC1 chain fraction = %.2f, want ≥0.9", crit/total)
	}
}

func TestMultiTaskWidensGraph(t *testing.T) {
	// MT-WnD's 5 towers should make its critical path a small fraction of
	// total dense work (towers run in parallel).
	m := MTWnD(Prod)
	g := BuildGraph(m)
	dense := g.DenseOps()
	total, _ := g.TotalWork(dense)
	crit := g.CriticalPathFLOPs(dense)
	if crit/total > 0.5 {
		t.Errorf("MT-WnD chain fraction = %.2f, want <0.5 (parallel towers)", crit/total)
	}
}

func TestTopoOrderValid(t *testing.T) {
	for _, m := range Zoo(Prod) {
		g := BuildGraph(m)
		all := make([]int, len(g.Ops))
		for i := range all {
			all[i] = i
		}
		order := g.TopoOrder(all)
		if len(order) != len(all) {
			t.Fatalf("%s: topo order dropped ops (%d of %d)", m.Name, len(order), len(all))
		}
		pos := make(map[int]int, len(order))
		for i, id := range order {
			pos[id] = i
		}
		for _, id := range order {
			for _, dep := range g.Ops[id].DependsOn {
				if pos[dep] >= pos[id] {
					t.Errorf("%s: dep %d not before op %d", m.Name, dep, id)
				}
			}
		}
	}
}

func TestTopoOrderSubset(t *testing.T) {
	g := BuildGraph(DLRMRMC1(Prod))
	dense := g.DenseOps()
	order := g.TopoOrder(dense)
	if len(order) != len(dense) {
		t.Fatalf("subset topo order wrong length")
	}
}

func TestGRUIsSequential(t *testing.T) {
	g := BuildGraph(DIEN(Prod))
	found := false
	for _, op := range g.Ops {
		if op.Kind == OpGRU {
			found = true
			if !op.Sequential {
				t.Error("GRU op must be marked sequential")
			}
		}
	}
	if !found {
		t.Fatal("DIEN graph must contain a GRU op")
	}
}

func TestDINHasAttention(t *testing.T) {
	g := BuildGraph(DIN(Prod))
	found := false
	for _, op := range g.Ops {
		if op.Kind == OpAttention {
			found = true
			if len(op.DependsOn) == 0 {
				t.Error("attention must depend on the behaviour gather")
			}
		}
	}
	if !found {
		t.Fatal("DIN graph must contain an attention op")
	}
}

func TestInteractionOnlyForDLRM(t *testing.T) {
	for _, m := range Zoo(Prod) {
		g := BuildGraph(m)
		has := false
		for _, op := range g.Ops {
			if op.Kind == OpInteraction {
				has = true
			}
		}
		wantInteraction := m.Interaction
		if has != wantInteraction {
			t.Errorf("%s: interaction op = %v, want %v", m.Name, has, wantInteraction)
		}
	}
}

func TestOpKindString(t *testing.T) {
	kinds := []OpKind{OpEmbedPool, OpEmbedLookup, OpFC, OpAttention, OpGRU, OpInteraction, OpConcat, OpActivation}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
	if OpKind(99).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestQuickCriticalPathSubadditive(t *testing.T) {
	// Property: for any subset of dense ops of RMC2's graph, the critical
	// path never exceeds total work and is never negative.
	g := BuildGraph(DLRMRMC2(Prod))
	dense := g.DenseOps()
	f := func(mask uint16) bool {
		var ids []int
		for i, id := range dense {
			if mask&(1<<(i%16)) != 0 {
				ids = append(ids, id)
			}
		}
		total, _ := g.TotalWork(ids)
		crit := g.CriticalPathFLOPs(ids)
		return crit >= 0 && crit <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
