package model

import (
	"errors"
	"fmt"
)

// AttentionKind describes the attention unit of sequence models.
type AttentionKind int

// Attention unit variants used by the Table I models.
const (
	AttentionNone AttentionKind = iota // DLRM family, MT-WnD
	AttentionFC                        // DIN: MLP attention over the behaviour sequence
	AttentionGRU                       // DIEN: GRU interest-evolution layer
)

// String implements fmt.Stringer.
func (a AttentionKind) String() string {
	switch a {
	case AttentionNone:
		return "none"
	case AttentionFC:
		return "FC"
	case AttentionGRU:
		return "GRU"
	}
	return fmt.Sprintf("AttentionKind(%d)", int(a))
}

// EmbTable describes one embedding table.
type EmbTable struct {
	Name string
	Rows int64 // number of embedding entries
	Dim  int   // embedding vector width (float32 elements)
	// PoolingMin/PoolingMax bound the per-query pooling factor (number of
	// lookups that are gathered — and, when Pooled, reduced — per item).
	// One-hot tables have PoolingMin = PoolingMax = 1.
	PoolingMin, PoolingMax int
	// Pooled indicates a Gather-Reduce (SLS) table: the looked-up rows are
	// summed into one vector. Unpooled multi-hot tables (DIN/DIEN behaviour
	// sequences) gather rows without reduction, feeding attention.
	Pooled bool
	// ZipfSkew is the exponent of the Zipfian row-access distribution,
	// which the locality-aware partitioner exploits (>0; larger = hotter).
	ZipfSkew float64
}

// Bytes returns the table's storage footprint (float32 entries).
func (t EmbTable) Bytes() int64 { return t.Rows * int64(t.Dim) * 4 }

// MeanPooling returns the expected pooling factor.
func (t EmbTable) MeanPooling() float64 {
	return (float64(t.PoolingMin) + float64(t.PoolingMax)) / 2
}

// Model is a static recommendation-model description (one Table I row).
type Model struct {
	Name    string
	Service string
	// Tables is the SparseNet: all embedding tables.
	Tables []EmbTable
	// DenseInDim is the width of the dense (continuous) input features.
	DenseInDim int
	// BottomMLP lists Bottom-FC layer output widths (input = DenseInDim).
	// Empty for models without a bottom MLP (MT-WnD, DIN, DIEN).
	BottomMLP []int
	// PredictMLP lists Predict-FC layer output widths. The input width is
	// derived from the feature-interaction / concat stage.
	PredictMLP []int
	// Tasks is the number of prediction heads (multi-task, MT-WnD). Each
	// task replicates the PredictMLP. 1 for single-task models.
	Tasks int
	// Attention selects the sequence-processing unit and its hidden width.
	Attention       AttentionKind
	AttentionHidden int
	// Interaction enables the DLRM pairwise dot-product feature
	// interaction between bottom output and pooled embeddings.
	Interaction bool
	// SLATargetMS is the default SLA tail-latency target used in the
	// paper's evaluation (Fig. 15): 20/50/50/50/100/100 ms.
	SLATargetMS float64
}

// Validate checks structural invariants of the model description.
func (m *Model) Validate() error {
	if m.Name == "" {
		return errors.New("model: empty name")
	}
	if len(m.Tables) == 0 {
		return fmt.Errorf("model %s: no embedding tables", m.Name)
	}
	for i, t := range m.Tables {
		if t.Rows <= 0 || t.Dim <= 0 {
			return fmt.Errorf("model %s: table %d has non-positive shape", m.Name, i)
		}
		if t.PoolingMin <= 0 || t.PoolingMax < t.PoolingMin {
			return fmt.Errorf("model %s: table %d pooling range [%d,%d] invalid",
				m.Name, i, t.PoolingMin, t.PoolingMax)
		}
		if t.ZipfSkew <= 0 {
			return fmt.Errorf("model %s: table %d needs positive zipf skew", m.Name, i)
		}
	}
	if len(m.PredictMLP) == 0 {
		return fmt.Errorf("model %s: no predict MLP", m.Name)
	}
	if m.Tasks < 1 {
		return fmt.Errorf("model %s: tasks = %d", m.Name, m.Tasks)
	}
	if m.Attention != AttentionNone && m.AttentionHidden <= 0 {
		return fmt.Errorf("model %s: attention without hidden width", m.Name)
	}
	if m.SLATargetMS <= 0 {
		return fmt.Errorf("model %s: missing SLA target", m.Name)
	}
	return nil
}

// EmbeddingBytes returns the total SparseNet storage footprint.
func (m *Model) EmbeddingBytes() int64 {
	var sum int64
	for _, t := range m.Tables {
		sum += t.Bytes()
	}
	return sum
}

// DenseParamBytes returns the DenseNet parameter footprint (a few MB —
// the paper notes >95% of model bytes live in the embeddings).
func (m *Model) DenseParamBytes() int64 {
	var params int64
	in := m.DenseInDim
	for _, out := range m.BottomMLP {
		params += int64(in)*int64(out) + int64(out)
		in = out
	}
	in = m.predictInDim()
	for _, out := range m.PredictMLP {
		params += (int64(in)*int64(out) + int64(out)) * int64(m.Tasks)
		in = out
	}
	if m.Attention == AttentionGRU {
		h, d := m.AttentionHidden, m.seqFeatureDim()
		params += int64(3 * h * (h + d))
	}
	if m.Attention == AttentionFC {
		params += int64(4*m.seqFeatureDim()*m.AttentionHidden + m.AttentionHidden)
	}
	return params * 4
}

// seqFeatureDim returns the embedding width of the behaviour-sequence
// table (the widest unpooled multi-hot table), or 0 if none.
func (m *Model) seqFeatureDim() int {
	dim := 0
	for _, t := range m.Tables {
		if !t.Pooled && t.PoolingMax > 1 && t.Dim > dim {
			dim = t.Dim
		}
	}
	return dim
}

// embOutWidth returns the total width of concatenated embedding outputs
// after pooling / attention (each table contributes one Dim-wide vector).
func (m *Model) embOutWidth() int {
	w := 0
	for _, t := range m.Tables {
		w += t.Dim
	}
	return w
}

// predictInDim derives the Predict-FC input width from the feature
// combination stage.
func (m *Model) predictInDim() int {
	botOut := 0
	if len(m.BottomMLP) > 0 {
		botOut = m.BottomMLP[len(m.BottomMLP)-1]
	}
	if m.Interaction {
		// DLRM: pairwise dot products among (tables + bottom) vectors of
		// equal width, concatenated with the bottom output.
		n := len(m.Tables) + 1
		return n*(n-1)/2 + botOut
	}
	return m.embOutWidth() + botOut + m.DenseInDim
}

// mlpFLOPs returns the per-item FLOPs of an MLP given input width and
// layer widths (2·in·out multiply-accumulates per layer).
func mlpFLOPs(in int, layers []int) float64 {
	var f float64
	for _, out := range layers {
		f += 2 * float64(in) * float64(out)
		in = out
	}
	return f
}

// Summary holds the per-item average compute and memory intensity used
// for the Fig. 1 footprint chart and for quick classification.
type Summary struct {
	FLOPsPerItem     float64 // dense compute per ranked item
	SparseBytes      float64 // embedding bytes moved per ranked item
	EmbeddingGB      float64 // model storage footprint
	MemoryDominated  bool    // SparseBytes-heavy (RMC1/RMC2 style)
	ComputeDominated bool
}

// Summarize computes average per-item cost intensities.
func (m *Model) Summarize() Summary {
	var sparse float64
	for _, t := range m.Tables {
		sparse += t.MeanPooling() * float64(t.Dim) * 4
	}
	flops := mlpFLOPs(m.DenseInDim, m.BottomMLP)
	flops += float64(m.Tasks) * mlpFLOPs(m.predictInDim(), m.PredictMLP)
	if m.Interaction {
		n := len(m.Tables) + 1
		d := 0
		if len(m.Tables) > 0 {
			d = m.Tables[0].Dim
		}
		flops += float64(n*(n-1)/2) * 2 * float64(d)
	}
	switch m.Attention {
	case AttentionFC:
		seq := m.meanSeqLen()
		d, h := m.seqFeatureDim(), m.AttentionHidden
		// DIN attention MLP per behaviour step: concat(4d) -> h -> 1.
		flops += seq * (2*float64(4*d)*float64(h) + 2*float64(h))
	case AttentionGRU:
		seq := m.meanSeqLen()
		d, h := m.seqFeatureDim(), m.AttentionHidden
		// GRU per step: 3 gates of h×(h+d) GEMV.
		flops += seq * 2 * 3 * float64(h) * float64(h+d)
	}
	s := Summary{
		FLOPsPerItem: flops,
		SparseBytes:  sparse,
		EmbeddingGB:  float64(m.EmbeddingBytes()) / (1 << 30),
	}
	// Operational-intensity split used in Fig. 1's two regions.
	s.MemoryDominated = flops/sparse < 20
	s.ComputeDominated = !s.MemoryDominated
	return s
}

// meanSeqLen returns the mean behaviour-sequence length.
func (m *Model) meanSeqLen() float64 {
	for _, t := range m.Tables {
		if !t.Pooled && t.PoolingMax > 1 {
			return t.MeanPooling()
		}
	}
	return 0
}

// SparseFractionHint estimates the fraction of end-to-end host latency
// contributed by SparseNet, used for quick classification (the paper
// notes <5% for MT-WnD/DIN/DIEN).
func (m *Model) SparseFractionHint() float64 {
	s := m.Summarize()
	// Convert to rough time on a reference core: 25 GFLOP/s dense,
	// 10 GB/s per-thread memory streams.
	dense := s.FLOPsPerItem / 25e9
	sparse := s.SparseBytes / 10e9
	return sparse / (sparse + dense)
}
