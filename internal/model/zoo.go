package model

import "fmt"

// Variant selects the model scale per Table I: Prod is the full
// production footprint; Small is the reduced version that fits a 16 GB
// accelerator without partitioning (used for the §III-B characterization).
type Variant int

// Model scale variants.
const (
	Prod Variant = iota
	Small
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == Small {
		return "small"
	}
	return "prod"
}

// tables builds n homogeneous pooled tables.
func tables(n int, rows int64, dim, poolMin, poolMax int, pooled bool, skew float64) []EmbTable {
	out := make([]EmbTable, n)
	for i := range out {
		out[i] = EmbTable{
			Name:       fmt.Sprintf("emb%d", i),
			Rows:       rows,
			Dim:        dim,
			PoolingMin: poolMin,
			PoolingMax: poolMax,
			Pooled:     pooled,
			ZipfSkew:   skew,
		}
	}
	return out
}

// DLRMRMC1 is Facebook's social-media ranking model RMC1: ~10 pooled
// tables of 1–5M rows, 20–160 lookups, small MLPs. Memory dominated.
func DLRMRMC1(v Variant) *Model {
	rows := int64(2_500_000)
	if v == Small {
		rows = 1_000_000
	}
	return &Model{
		Name:        "DLRM-RMC1",
		Service:     "Social Media",
		Tables:      tables(10, rows, 64, 20, 160, true, 0.95),
		DenseInDim:  256,
		BottomMLP:   []int{128, 32},
		PredictMLP:  []int{256, 64, 1},
		Tasks:       1,
		Interaction: true,
		SLATargetMS: 20,
	}
}

// DLRMRMC2 is RMC2: ~100 pooled tables — an order of magnitude more
// sparse capacity and bandwidth demand than RMC1. Per-table pooling is
// heterogeneous as in production (Fig. 2c): a minority of hot-path
// tables pool 20–160 rows, the rest only a handful.
func DLRMRMC2(v Variant) *Model {
	rows := int64(2_500_000)
	n := 100
	if v == Small {
		rows = 1_000_000
		n = 40 // small variant keeps the table count GPU-resident
	}
	tbs := make([]EmbTable, n)
	for i := range tbs {
		poolMin, poolMax := 2, 20
		if i%5 == 0 {
			poolMin, poolMax = 20, 160
		}
		tbs[i] = EmbTable{
			Name:       fmt.Sprintf("emb%d", i),
			Rows:       rows,
			Dim:        64,
			PoolingMin: poolMin,
			PoolingMax: poolMax,
			Pooled:     true,
			ZipfSkew:   0.95,
		}
	}
	return &Model{
		Name:        "DLRM-RMC2",
		Service:     "Social Media",
		Tables:      tbs,
		DenseInDim:  256,
		BottomMLP:   []int{128, 32},
		PredictMLP:  []int{512, 128, 1},
		Tasks:       1,
		Interaction: true,
		SLATargetMS: 50,
	}
}

// DLRMRMC3 is RMC3: ~10 tables of 10–20M rows with a wide 2560-512-32
// bottom MLP — dense-feature dominated.
func DLRMRMC3(v Variant) *Model {
	rows := int64(15_000_000)
	if v == Small {
		rows = 1_000_000
	}
	return &Model{
		Name:        "DLRM-RMC3",
		Service:     "Social Media",
		Tables:      tables(10, rows, 64, 20, 50, true, 0.95),
		DenseInDim:  2560,
		BottomMLP:   []int{512, 32},
		PredictMLP:  []int{512, 128, 1},
		Tasks:       1,
		Interaction: true,
		SLATargetMS: 50,
	}
}

// MTWnD is Google's multi-task Wide & Deep video model: 26 one-hot
// tables and N parallel 1024-512-256 prediction towers.
func MTWnD(v Variant) *Model {
	rows := int64(20_000_000)
	if v == Small {
		rows = 1_000_000
	}
	return &Model{
		Name:        "MT-WnD",
		Service:     "Video",
		Tables:      tables(26, rows, 32, 1, 1, false, 0.9),
		DenseInDim:  256,
		BottomMLP:   nil,
		PredictMLP:  []int{1024, 512, 256, 1},
		Tasks:       5,
		Interaction: false,
		SLATargetMS: 50,
	}
}

// dinTables builds the 3-table DIN/DIEN SparseNet: two one-hot profile
// tables plus one unpooled behaviour-sequence table with 100–1000
// gathered rows feeding attention.
func dinTables(rows int64) []EmbTable {
	return []EmbTable{
		{Name: "user", Rows: rows, Dim: 32, PoolingMin: 1, PoolingMax: 1, Pooled: false, ZipfSkew: 0.9},
		{Name: "item", Rows: rows, Dim: 32, PoolingMin: 1, PoolingMax: 1, Pooled: false, ZipfSkew: 0.9},
		{Name: "behavior", Rows: rows, Dim: 32, PoolingMin: 100, PoolingMax: 1000, Pooled: false, ZipfSkew: 0.9},
	}
}

// DIN is Alibaba's Deep Interest Network: FC attention over the user
// behaviour sequence. Compute dominated.
func DIN(v Variant) *Model {
	rows := int64(100_000_000)
	if v == Small {
		rows = 1_000_000
	}
	return &Model{
		Name:            "DIN",
		Service:         "E-commerce",
		Tables:          dinTables(rows),
		DenseInDim:      64,
		BottomMLP:       nil,
		PredictMLP:      []int{200, 80, 2},
		Tasks:           1,
		Attention:       AttentionFC,
		AttentionHidden: 36,
		Interaction:     false,
		SLATargetMS:     100,
	}
}

// DIEN is Alibaba's Deep Interest Evolution Network: GRU interest
// extraction over the behaviour sequence. The most compute-intensive
// model in the zoo.
func DIEN(v Variant) *Model {
	rows := int64(100_000_000)
	if v == Small {
		rows = 1_000_000
	}
	return &Model{
		Name:            "DIEN",
		Service:         "E-commerce",
		Tables:          dinTables(rows),
		DenseInDim:      64,
		BottomMLP:       nil,
		PredictMLP:      []int{200, 80, 2},
		Tasks:           1,
		Attention:       AttentionGRU,
		AttentionHidden: 64,
		Interaction:     false,
		SLATargetMS:     100,
	}
}

// ZooNames lists the six Table I models in paper order.
var ZooNames = []string{"DLRM-RMC1", "DLRM-RMC2", "DLRM-RMC3", "MT-WnD", "DIN", "DIEN"}

// ByName constructs a zoo model by its Table I name.
func ByName(name string, v Variant) (*Model, error) {
	switch name {
	case "DLRM-RMC1":
		return DLRMRMC1(v), nil
	case "DLRM-RMC2":
		return DLRMRMC2(v), nil
	case "DLRM-RMC3":
		return DLRMRMC3(v), nil
	case "MT-WnD":
		return MTWnD(v), nil
	case "DIN":
		return DIN(v), nil
	case "DIEN":
		return DIEN(v), nil
	}
	return nil, fmt.Errorf("model: unknown zoo model %q", name)
}

// Zoo returns all six Table I models at the given variant, in order.
func Zoo(v Variant) []*Model {
	out := make([]*Model, 0, len(ZooNames))
	for _, n := range ZooNames {
		m, err := ByName(n, v)
		if err != nil {
			panic(err) // unreachable: ZooNames is static
		}
		out = append(out, m)
	}
	return out
}
