// Package power models server power consumption, substituting for the
// paper's RAPL and nvidia-smi measurements (§V). It converts the
// activity accounting produced by the server simulator — core busy
// seconds, memory traffic, NMP traffic, GPU busy time — into average and
// provisioned (peak) watts, and derives the QPS-per-Watt efficiency
// metric used for workload classification.
//
// The surface: Activity is the accounting struct internal/sim fills in
// during a run; Model (Default) turns one Activity on one server into
// average/provisioned watts; Efficiency computes the QPS-per-Watt
// metric the profiler records and every cluster policy ranks servers
// by (§III-B, Fig. 8).
package power
