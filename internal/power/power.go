package power

import (
	"math"

	"hercules/internal/hw"
	"hercules/internal/nmpsim"
)

// Activity summarizes a simulation window's resource usage on one server.
type Activity struct {
	WallS float64 // window length (virtual seconds)
	// CoreBusyS is total core-seconds of CPU occupancy.
	CoreBusyS float64
	// HostBytes is main-memory channel traffic in bytes.
	HostBytes float64
	// NMPBytes is traffic served inside the NMP DIMMs.
	NMPBytes float64
	// GPUBusyS is accelerator kernel-execution seconds.
	GPUBusyS float64
	// PCIeBusyS is host↔device transfer seconds (drawn by the GPU board).
	PCIeBusyS float64
}

// CPUUtilization returns the average fraction of busy cores.
func (a Activity) CPUUtilization(c hw.CPU) float64 {
	if a.WallS <= 0 {
		return 0
	}
	u := a.CoreBusyS / (float64(c.PhysicalCores) * a.WallS)
	return math.Min(u, 1)
}

// GPUUtilization returns the average fraction of busy accelerator time.
func (a Activity) GPUUtilization() float64 {
	if a.WallS <= 0 {
		return 0
	}
	return math.Min(a.GPUBusyS/a.WallS, 1)
}

// Model holds the power-conversion coefficients.
type Model struct {
	// DRAMEnergyPerByte is the channel access energy (J/B).
	DRAMEnergyPerByte float64
	// CPUDynamicExponent shapes the utilization→power curve (sub-linear:
	// shared uncore power amortizes at high utilization).
	CPUDynamicExponent float64
	// GPUTransferWattsFrac is the fraction of GPU dynamic power drawn
	// during PCIe transfers (DMA engines, not SMs).
	GPUTransferWattsFrac float64
	// NMP is the LUT supplying near-memory access energy.
	NMP *nmpsim.LUT
}

// Default returns the calibrated power model.
func Default() Model {
	return Model{
		DRAMEnergyPerByte:    0.5e-9,
		CPUDynamicExponent:   0.9,
		GPUTransferWattsFrac: 0.25,
		NMP:                  nmpsim.Default(),
	}
}

// Average returns the mean power (watts) of the server over the window.
func (m Model) Average(srv hw.Server, a Activity) float64 {
	if a.WallS <= 0 {
		return srv.IdleWatts()
	}
	w := srv.CPU.IdleWatts
	// CPU dynamic power.
	util := a.CPUUtilization(srv.CPU)
	w += (srv.CPU.TDPWatts - srv.CPU.IdleWatts) * math.Pow(util, m.CPUDynamicExponent)

	// Memory: idle plus channel access energy, capped at TDP.
	memDyn := a.HostBytes * m.DRAMEnergyPerByte / a.WallS
	if a.NMPBytes > 0 && m.NMP != nil {
		memDyn += m.NMP.Energy(a.NMPBytes) / a.WallS
	}
	w += srv.Memory.IdleWatts + math.Min(memDyn, srv.Memory.TDPWatts-srv.Memory.IdleWatts)

	// GPU: leakage plus utilization-proportional dynamic power.
	if srv.GPU != nil {
		g := srv.GPU
		dyn := (g.TDPWatts - g.IdleWatts) * a.GPUUtilization()
		dyn += (g.TDPWatts - g.IdleWatts) * m.GPUTransferWattsFrac *
			math.Min(a.PCIeBusyS/a.WallS, 1)
		w += g.IdleWatts + math.Min(dyn, g.TDPWatts-g.IdleWatts)
	}
	return w
}

// Provisioned returns the provisioned power budget for the server under
// the given activity: the paper records offline-measured peak power as
// the budget (Fig. 9b). We approximate peak as average power with a
// headroom factor for transient bursts, capped at component TDP.
func (m Model) Provisioned(srv hw.Server, a Activity) float64 {
	const headroom = 1.10
	return math.Min(m.Average(srv, a)*headroom, srv.TDPWatts())
}

// Efficiency returns latency-bounded QPS-per-Watt, the workload
// classification metric of Fig. 8(a) and Fig. 15(b).
func Efficiency(qps, watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return qps / watts
}

// EnergyJ returns the window's total energy in joules.
func (m Model) EnergyJ(srv hw.Server, a Activity) float64 {
	return m.Average(srv, a) * a.WallS
}

// CarbonG prices energy against a grid carbon intensity: energyKJ
// kilojoules drawn at gPerKWh gCO2/kWh emit this many grams of CO2
// (1 kWh = 3600 kJ).
func CarbonG(energyKJ, gPerKWh float64) float64 {
	return energyKJ / 3600 * gPerKWh
}
