package power

import (
	"math"
	"testing"
	"testing/quick"

	"hercules/internal/hw"
)

func idleActivity(wall float64) Activity { return Activity{WallS: wall} }

func TestIdlePower(t *testing.T) {
	m := Default()
	for _, srv := range hw.AllServerTypes() {
		got := m.Average(srv, idleActivity(10))
		if math.Abs(got-srv.IdleWatts()) > 1e-9 {
			t.Errorf("%s idle power = %v, want %v", srv.Type, got, srv.IdleWatts())
		}
	}
}

func TestZeroWallFallsBackToIdle(t *testing.T) {
	m := Default()
	srv := hw.ServerType("T2")
	if got := m.Average(srv, Activity{}); got != srv.IdleWatts() {
		t.Fatalf("zero wall = %v, want idle", got)
	}
}

func TestPowerMonotoneInUtilization(t *testing.T) {
	m := Default()
	srv := hw.ServerType("T2")
	prev := 0.0
	for u := 0.0; u <= 1.01; u += 0.1 {
		a := Activity{WallS: 1, CoreBusyS: u * 20}
		w := m.Average(srv, a)
		if w < prev {
			t.Fatalf("power decreased at util %.1f", u)
		}
		prev = w
	}
}

func TestPowerNeverExceedsTDP(t *testing.T) {
	m := Default()
	f := func(core, host, nmp, gpu, pcie float64) bool {
		a := Activity{
			WallS:     1,
			CoreBusyS: math.Abs(core),
			HostBytes: math.Abs(host) * 1e9,
			NMPBytes:  math.Abs(nmp) * 1e9,
			GPUBusyS:  math.Abs(gpu),
			PCIeBusyS: math.Abs(pcie),
		}
		for _, srv := range hw.AllServerTypes() {
			if m.Average(srv, a) > srv.TDPWatts()+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGPUServerIdleCost(t *testing.T) {
	// §VI-B: GPU servers pay high leakage; idle T7 must burn more than
	// idle T2.
	m := Default()
	t2 := m.Average(hw.ServerType("T2"), idleActivity(1))
	t7 := m.Average(hw.ServerType("T7"), idleActivity(1))
	if t7-t2 < 40 {
		t.Errorf("GPU leakage adds only %v W", t7-t2)
	}
}

func TestNMPEnergyCheaperThanChannel(t *testing.T) {
	// Moving bytes near-memory must cost less energy than over the
	// channel — the root of the NMP efficiency win.
	m := Default()
	bytes := 100e9
	chanJ := bytes * m.DRAMEnergyPerByte
	nmpJ := m.NMP.Energy(bytes)
	if nmpJ >= chanJ {
		t.Fatalf("NMP energy %v J ≥ channel %v J", nmpJ, chanJ)
	}
}

func TestCPUUtilizationClamped(t *testing.T) {
	a := Activity{WallS: 1, CoreBusyS: 500}
	if u := a.CPUUtilization(hw.CPUT2()); u != 1 {
		t.Fatalf("util = %v, want clamped to 1", u)
	}
	var empty Activity
	if empty.CPUUtilization(hw.CPUT2()) != 0 || empty.GPUUtilization() != 0 {
		t.Fatal("zero activity must have zero utilization")
	}
}

func TestProvisionedAboveAverageBelowTDP(t *testing.T) {
	m := Default()
	srv := hw.ServerType("T7")
	a := Activity{WallS: 1, CoreBusyS: 15, HostBytes: 30e9, GPUBusyS: 0.7, PCIeBusyS: 0.5}
	avg := m.Average(srv, a)
	prov := m.Provisioned(srv, a)
	if prov < avg {
		t.Errorf("provisioned %v < average %v", prov, avg)
	}
	if prov > srv.TDPWatts() {
		t.Errorf("provisioned %v exceeds TDP %v", prov, srv.TDPWatts())
	}
}

func TestEfficiency(t *testing.T) {
	if Efficiency(1000, 250) != 4 {
		t.Fatal("QPS/W wrong")
	}
	if Efficiency(1000, 0) != 0 {
		t.Fatal("zero watts must yield zero efficiency")
	}
}

func TestEnergyIntegration(t *testing.T) {
	m := Default()
	srv := hw.ServerType("T2")
	a := Activity{WallS: 10, CoreBusyS: 100, HostBytes: 500e9}
	if e := m.EnergyJ(srv, a); math.Abs(e-10*m.Average(srv, a)) > 1e-9 {
		t.Fatalf("energy %v ≠ avg power × wall", e)
	}
}

func TestPCIeTransferDrawsGPUPower(t *testing.T) {
	m := Default()
	srv := hw.ServerType("T7")
	quiet := m.Average(srv, Activity{WallS: 1})
	loading := m.Average(srv, Activity{WallS: 1, PCIeBusyS: 1})
	if loading <= quiet {
		t.Fatal("PCIe activity must draw power")
	}
	computing := m.Average(srv, Activity{WallS: 1, GPUBusyS: 1})
	if computing <= loading {
		t.Fatal("full compute must draw more than transfer-only")
	}
}
