// Package scenario turns the smooth diurnal replay into the
// non-stationary traffic that dominates real at-scale serving: flash
// crowds, regional failover, capacity loss and load-shedding drills.
// It is deliberately beyond the Hercules paper, whose evaluation
// (§VI) assumes the synchronized diurnal day of Fig. 2d; the HPC
// characterization literature shows steady-state numbers mislead
// exactly when these regimes hit.
//
// A Scenario is a named list of Events, each active on an [StartH,
// EndH) window of the replayed day:
//
//   - Spike — multiplicative arrival-rate surge with linear ramps
//     (flash crowd);
//   - MixShift — rotates a workload's query-size distribution, so the
//     same QPS carries heavier queries (regional failover);
//   - Kill — takes servers of a type out of the fleet (rack/region
//     failure), by count or by fraction;
//   - Derate — slows a type's service rate without telling the control
//     plane (thermal throttling, sick hardware);
//   - Shed — drops a fraction of arrivals at admission (load-shedding
//     drill), accounted separately from queue-full drops;
//   - Flush / MixShift warmth effects — knock down the fleet engine's
//     per-model cache warmth (see internal/fleet's CacheSpec);
//   - Blackout — takes an entire named region offline: the victim's
//     fleet drops to zero for the window and every surviving region
//     absorbs a flash crowd of displaced retries (1.5x by default,
//     Factor overrides). Only meaningful under CompileRegions.
//
// Any event may name a Region to scope itself to one region of a
// multi-region replay; unscoped events apply everywhere. Compile
// rejects region-scoped events (they need the region geometry);
// CompileRegions evaluates one scenario against every region's fleet
// at once and returns one Timeline per region, validating that named
// regions exist, that blackouts never overlap in a region, and that
// at least one region survives every instant of the day.
//
// Scenarios are data: Named returns the built-ins (baseline,
// flashcrowd, regionshift, failure, degrade, shed) and FromJSON parses
// user specs, so `hercules-fleet -scenario @events.json` replays
// arbitrary drills. Compile evaluates the events against a concrete
// replay geometry (interval count, interval length, fleet composition)
// into a Timeline of per-interval Effects, which is what the fleet
// engine consumes: internal/fleet applies traffic effects when
// generating each interval's queries, removes or slows instances for
// fleet effects, and reports kills to internal/cluster (with one
// interval of detection lag) so re-provisioning happens against the
// degraded availability.
//
// Everything is deterministic: a compiled timeline is a pure function
// of the scenario and geometry, and all stochastic thinning downstream
// draws from the engine's seeded streams, so a (scenario, seed) pair
// replays bit-identically.
package scenario
