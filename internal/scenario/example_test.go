package scenario_test

import (
	"fmt"

	"hercules/internal/scenario"
)

// ExampleNamed lists the built-in scenarios and prints the flash
// crowd's event timeline.
func ExampleNamed() {
	fmt.Println(scenario.Names())
	sc, _ := scenario.Named("flashcrowd")
	fmt.Print(sc.Summary())
	// Output:
	// [baseline cachestorm degrade failure flashcrowd regionshift shed]
	// flashcrowd: 1 event(s)
	//   12.50h-15.50h load x2.50 on all (0.50h ramps)
}

// ExampleCompile evaluates a custom scenario against an hourly
// one-day replay geometry and reads the per-interval effects the fleet
// engine consumes.
func ExampleCompile() {
	sc, err := scenario.FromJSON([]byte(`{"name":"drill","events":[
		{"kind":"spike","start_h":12,"end_h":16,"ramp_h":1,"factor":3},
		{"kind":"kill","start_h":9,"end_h":12,"type":"T2","frac":0.5}]}`))
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	tl, err := scenario.Compile(sc, 24, 3600, map[string]int{"T2": 60, "T7": 4})
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	for _, i := range []int{8, 10, 12, 14} {
		eff := tl.At(i)
		fmt.Printf("hour %d: load x%.1f, %d dead T2 servers\n",
			i, eff.Load("DLRM-RMC1"), eff.KilledOf("T2"))
	}
	// Output:
	// hour 8: load x1.0, 0 dead T2 servers
	// hour 10: load x1.0, 30 dead T2 servers
	// hour 12: load x2.0, 0 dead T2 servers
	// hour 14: load x3.0, 0 dead T2 servers
}
