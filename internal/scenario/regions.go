package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// CompileRegions compiles one scenario against a multi-region replay
// geometry: steps intervals of stepS seconds over the named regions,
// each with its own fleet composition. It returns one Timeline per
// region.
//
// Region-scoped events (Event.Region naming a region) compile into
// that region's timeline only; unscoped events compile into every
// region's. A Blackout event expands per region: the victim gets a
// wildcard full-fleet Kill over the window (so the control plane
// re-provisions against zero availability with the usual detection
// lag) plus the Blackout flag on its intervals, and every survivor
// gets a Spike at the event's Factor (default
// BlackoutSurvivorFactor) — the displaced flash crowd.
//
// Validation beyond Compile's: an event naming an unknown region
// errors listing the registered regions, two blackouts of the same
// region must not overlap, and at least one region must survive every
// instant (blacking out the only region — or all of them at once —
// is rejected).
func CompileRegions(s Scenario, steps int, stepS float64, regions []string, fleetCounts map[string]map[string]int) (map[string]*Timeline, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if steps <= 0 || stepS <= 0 {
		return nil, fmt.Errorf("scenario: bad geometry (%d steps of %gs)", steps, stepS)
	}
	if len(regions) == 0 {
		return nil, fmt.Errorf("scenario: CompileRegions needs at least one region")
	}
	known := make(map[string]bool, len(regions))
	for _, r := range regions {
		if known[r] {
			return nil, fmt.Errorf("scenario: duplicate region %q", r)
		}
		known[r] = true
	}
	registered := append([]string(nil), regions...)
	sort.Strings(registered)
	for i, ev := range s.Events {
		if ev.Region != "" && !known[ev.Region] {
			return nil, fmt.Errorf("scenario: event %d: unknown region %q (registered: %s)",
				i, ev.Region, strings.Join(registered, ", "))
		}
	}
	// Same-region blackouts must not overlap: the expansion would
	// double-kill the victim and double-spike the survivors, which is
	// never what a drill means.
	blackouts := make(map[string][]Event)
	for _, ev := range s.Events {
		if ev.Kind == Blackout {
			blackouts[ev.Region] = append(blackouts[ev.Region], ev)
		}
	}
	for r, evs := range blackouts {
		sort.Slice(evs, func(i, j int) bool { return evs[i].StartH < evs[j].StartH })
		for i := 1; i < len(evs); i++ {
			if evs[i].StartH < evs[i-1].EndH {
				return nil, fmt.Errorf("scenario: overlapping blackouts of region %q (%.2fh-%.2fh and %.2fh-%.2fh)",
					r, evs[i-1].StartH, evs[i-1].EndH, evs[i].StartH, evs[i].EndH)
			}
		}
	}
	// Every interval needs a surviving region; evaluate at the same
	// midpoints Compile uses so the check agrees with the timelines.
	if len(blackouts) > 0 {
		for i := 0; i < steps; i++ {
			midH := (float64(i) + 0.5) * stepS / 3600
			survivors := len(regions)
			for _, evs := range blackouts {
				for _, ev := range evs {
					if midH >= ev.StartH && midH < ev.EndH {
						survivors--
						break
					}
				}
			}
			if survivors <= 0 {
				if len(regions) == 1 {
					return nil, fmt.Errorf("scenario: blackout of the only region %q leaves no survivors at %.2fh", regions[0], midH)
				}
				return nil, fmt.Errorf("scenario: blackouts leave no surviving region at %.2fh", midH)
			}
		}
	}

	out := make(map[string]*Timeline, len(regions))
	for _, r := range regions {
		derived := Scenario{Name: s.Name}
		for _, ev := range s.Events {
			switch {
			case ev.Kind == Blackout && ev.Region == r:
				derived.Events = append(derived.Events, Event{
					Kind: Kill, StartH: ev.StartH, EndH: ev.EndH, Frac: 1,
				})
			case ev.Kind == Blackout:
				f := ev.Factor
				if f == 0 {
					f = BlackoutSurvivorFactor
				}
				derived.Events = append(derived.Events, Event{
					Kind: Spike, StartH: ev.StartH, EndH: ev.EndH,
					RampH: ev.RampH, Model: ev.Model, Factor: f,
				})
			case ev.Region == "" || ev.Region == r:
				ev.Region = ""
				derived.Events = append(derived.Events, ev)
			}
		}
		tl, err := Compile(derived, steps, stepS, fleetCounts[r])
		if err != nil {
			return nil, fmt.Errorf("scenario: region %q: %w", r, err)
		}
		for _, ev := range blackouts[r] {
			for i := range tl.effects {
				midH := (float64(i) + 0.5) * stepS / 3600
				if midH >= ev.StartH && midH < ev.EndH {
					tl.effects[i].Blackout = true
				}
			}
		}
		out[r] = tl
	}
	return out, nil
}
