package scenario

import (
	"strings"
	"testing"
)

var regionsFleets = map[string]map[string]int{
	"east": {"T2": 60},
	"west": {"T2": 60},
}

// blackoutAt is the drill the expansion tests compile: east dark from
// 0.5h to 1.0h.
func blackoutAt(factor float64) Scenario {
	return Scenario{Name: "drill", Events: []Event{
		{Kind: Blackout, Region: "east", StartH: 0.5, EndH: 1.0, Factor: factor},
	}}
}

func TestBlackoutEventValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		ev   Event
		want string
	}{
		{"no region", Event{Kind: Blackout, StartH: 0, EndH: 1}, "needs a region"},
		{"factor below 1", Event{Kind: Blackout, Region: "east", StartH: 0, EndH: 1, Factor: 0.5}, "survivor factor"},
	} {
		err := tc.ev.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	ok := Event{Kind: Blackout, Region: "east", StartH: 0, EndH: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("default-factor blackout rejected: %v", err)
	}
}

// TestCompileRejectsRegionScopedEvents: the single-region Compile must
// refuse what only CompileRegions can honor, rather than silently
// dropping or misapplying the scope.
func TestCompileRejectsRegionScopedEvents(t *testing.T) {
	if _, err := Compile(blackoutAt(0), 12, 600, map[string]int{"T2": 60}); err == nil ||
		!strings.Contains(err.Error(), "multi-region") {
		t.Errorf("Compile accepted a blackout event: %v", err)
	}
	scoped := Scenario{Name: "s", Events: []Event{
		{Kind: Spike, Region: "east", StartH: 0, EndH: 1, Factor: 2},
	}}
	if _, err := Compile(scoped, 12, 600, nil); err == nil ||
		!strings.Contains(err.Error(), "multi-region") {
		t.Errorf("Compile accepted a region-scoped spike: %v", err)
	}
}

func TestCompileRegionsUnknownRegion(t *testing.T) {
	s := Scenario{Name: "s", Events: []Event{
		{Kind: Blackout, Region: "mars", StartH: 0.5, EndH: 1.0},
	}}
	_, err := CompileRegions(s, 12, 600, []string{"west", "east"}, regionsFleets)
	if err == nil {
		t.Fatal("unknown region accepted")
	}
	// The message must list the registered regions, sorted, so a typo
	// is self-diagnosing.
	if !strings.Contains(err.Error(), `"mars"`) || !strings.Contains(err.Error(), "east, west") {
		t.Errorf("error %v does not name the unknown region and the sorted registered set", err)
	}
}

func TestCompileRegionsOverlappingBlackouts(t *testing.T) {
	s := Scenario{Name: "s", Events: []Event{
		{Kind: Blackout, Region: "east", StartH: 0.5, EndH: 1.0},
		{Kind: Blackout, Region: "east", StartH: 0.8, EndH: 1.5},
	}}
	if _, err := CompileRegions(s, 12, 600, []string{"east", "west"}, regionsFleets); err == nil ||
		!strings.Contains(err.Error(), "overlapping") {
		t.Errorf("overlapping same-region blackouts accepted: %v", err)
	}
	// The same windows on different regions are legal only while
	// someone survives: staggered is fine, simultaneous is not.
	staggered := Scenario{Name: "s", Events: []Event{
		{Kind: Blackout, Region: "east", StartH: 0.5, EndH: 1.0},
		{Kind: Blackout, Region: "west", StartH: 1.0, EndH: 1.5},
	}}
	if _, err := CompileRegions(staggered, 12, 600, []string{"east", "west"}, regionsFleets); err != nil {
		t.Errorf("staggered blackouts rejected: %v", err)
	}
	simultaneous := Scenario{Name: "s", Events: []Event{
		{Kind: Blackout, Region: "east", StartH: 0.5, EndH: 1.0},
		{Kind: Blackout, Region: "west", StartH: 0.5, EndH: 1.0},
	}}
	if _, err := CompileRegions(simultaneous, 12, 600, []string{"east", "west"}, regionsFleets); err == nil ||
		!strings.Contains(err.Error(), "no surviving region") {
		t.Errorf("total blackout accepted: %v", err)
	}
}

func TestCompileRegionsBlackoutOfOnlyRegion(t *testing.T) {
	s := Scenario{Name: "s", Events: []Event{
		{Kind: Blackout, Region: "solo", StartH: 0.5, EndH: 1.0},
	}}
	_, err := CompileRegions(s, 12, 600, []string{"solo"}, map[string]map[string]int{"solo": {"T2": 60}})
	if err == nil || !strings.Contains(err.Error(), "only region") {
		t.Errorf("blackout of the only region accepted: %v", err)
	}
}

// TestCompileRegionsBlackoutExpansion checks the per-region timelines
// a blackout compiles into: the victim loses its whole fleet and
// carries the Blackout flag; survivors see the flash-crowd spike and
// no flag; outside the window everyone is untouched.
func TestCompileRegionsBlackoutExpansion(t *testing.T) {
	// 12 steps of 600 s: midpoints at (i+0.5)/6 h, so 0.5h-1.0h covers
	// intervals 3, 4 and 5.
	tls, err := CompileRegions(blackoutAt(0), 12, 600, []string{"east", "west"}, regionsFleets)
	if err != nil {
		t.Fatal(err)
	}
	east, west := tls["east"], tls["west"]
	for i := 0; i < 12; i++ {
		dark := i >= 3 && i <= 5
		ee, we := east.At(i), west.At(i)
		if ee.Blackout != dark {
			t.Errorf("interval %d: east Blackout=%v, want %v", i, ee.Blackout, dark)
		}
		if we.Blackout {
			t.Errorf("interval %d: survivor west carries the Blackout flag", i)
		}
		wantKilled := 0
		if dark {
			wantKilled = 60
		}
		if got := ee.KilledOf("T2"); got != wantKilled {
			t.Errorf("interval %d: east killed %d, want %d", i, got, wantKilled)
		}
		wantLoad := 1.0
		if dark {
			wantLoad = BlackoutSurvivorFactor
		}
		if got := we.Load("any-model"); got != wantLoad {
			t.Errorf("interval %d: west load factor %g, want %g", i, got, wantLoad)
		}
		if got := ee.Load("any-model"); got != 1.0 {
			t.Errorf("interval %d: victim east load factor %g, want 1 (its traffic reroutes, it does not spike)", i, got)
		}
	}

	// An explicit survivor factor overrides the 1.5x default.
	tls, err = CompileRegions(blackoutAt(2.0), 12, 600, []string{"east", "west"}, regionsFleets)
	if err != nil {
		t.Fatal(err)
	}
	if got := tls["west"].At(4).Load("m"); got != 2.0 {
		t.Errorf("explicit survivor factor: west load %g, want 2", got)
	}
}

// TestCompileRegionsScopedEvents: a region-scoped non-blackout event
// lands only in its region; an unscoped one lands everywhere.
func TestCompileRegionsScopedEvents(t *testing.T) {
	s := Scenario{Name: "s", Events: []Event{
		{Kind: Spike, Region: "east", StartH: 0, EndH: 1, Factor: 3},
		{Kind: Derate, StartH: 0, EndH: 1, Factor: 0.5},
	}}
	tls, err := CompileRegions(s, 6, 600, []string{"east", "west"}, regionsFleets)
	if err != nil {
		t.Fatal(err)
	}
	if got := tls["east"].At(0).Load("m"); got != 3.0 {
		t.Errorf("east-scoped spike: east load %g, want 3", got)
	}
	if got := tls["west"].At(0).Load("m"); got != 1.0 {
		t.Errorf("east-scoped spike leaked into west (load %g)", got)
	}
	for _, r := range []string{"east", "west"} {
		if got := tls[r].At(0).DerateOf("T2"); got != 0.5 {
			t.Errorf("unscoped derate missing from %s (got %g)", r, got)
		}
	}
}

func TestCompileRegionsGeometryErrors(t *testing.T) {
	base := Scenario{Name: "s"}
	if _, err := CompileRegions(base, 0, 600, []string{"a"}, nil); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := CompileRegions(base, 6, 600, nil, nil); err == nil {
		t.Error("no regions accepted")
	}
	if _, err := CompileRegions(base, 6, 600, []string{"a", "a"}, nil); err == nil {
		t.Error("duplicate regions accepted")
	}
}
