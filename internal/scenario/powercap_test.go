package scenario

import (
	"strings"
	"testing"
)

func capEvent(typ string, watts, startH, endH float64) Event {
	return Event{Kind: PowerCap, Type: typ, Watts: watts, StartH: startH, EndH: endH}
}

func TestPowerCapEventValidate(t *testing.T) {
	if err := capEvent("T2", 7000, 17, 22).Validate(); err != nil {
		t.Errorf("valid powercap rejected: %v", err)
	}
	bad := []Event{
		capEvent("T2", 0, 17, 22),  // no budget
		capEvent("T2", -1, 17, 22), // negative budget
		capEvent("", 7000, 17, 22), // wildcard type is ambiguous
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad powercap %d (%+v) accepted", i, e)
		}
	}
}

// TestPowerCapConflictValidation pins the cross-event rule: a powercap
// window may not overlap another powercap or a derate on the same
// server type — and the error must name both events.
func TestPowerCapConflictValidation(t *testing.T) {
	derate := func(typ string, startH, endH float64) Event {
		return Event{Kind: Derate, Type: typ, Factor: 0.5, StartH: startH, EndH: endH}
	}
	cases := []struct {
		name    string
		events  []Event
		wantErr bool
	}{
		{"two caps same type overlapping",
			[]Event{capEvent("T2", 7000, 17, 22), capEvent("T2", 5000, 20, 23)}, true},
		{"two caps same type disjoint",
			[]Event{capEvent("T2", 7000, 17, 20), capEvent("T2", 5000, 20, 23)}, false},
		{"two caps different types overlapping",
			[]Event{capEvent("T2", 7000, 17, 22), capEvent("T3", 2000, 17, 22)}, false},
		{"cap overlapping typed derate",
			[]Event{capEvent("T2", 7000, 17, 22), derate("T2", 18, 19)}, true},
		{"cap overlapping wildcard derate",
			[]Event{capEvent("T2", 7000, 17, 22), derate("", 18, 19)}, true},
		{"cap overlapping other-type derate",
			[]Event{capEvent("T2", 7000, 17, 22), derate("T3", 18, 19)}, false},
		{"cap with derate before it",
			[]Event{capEvent("T2", 7000, 17, 22), derate("T2", 10, 17)}, false},
		{"derates overlapping each other stay legal",
			[]Event{derate("T2", 10, 14), derate("T2", 12, 16)}, false},
	}
	for _, tc := range cases {
		err := Scenario{Name: "t", Events: tc.events}.Validate()
		if tc.wantErr && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if !tc.wantErr && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if tc.wantErr && err != nil {
			// Both events must be identified by index for the operator.
			for _, want := range []string{"event 0", "event 1", "overlaps"} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("%s: error %q missing %q", tc.name, err, want)
				}
			}
		}
	}

	// Region scoping: different regions never conflict; an unscoped
	// event conflicts with any region.
	east := capEvent("T2", 7000, 17, 22)
	east.Region = "east"
	west := Event{Kind: Derate, Type: "T2", Factor: 0.5, StartH: 18, EndH: 19, Region: "west"}
	if err := (Scenario{Name: "t", Events: []Event{east, west}}).Validate(); err != nil {
		t.Errorf("different-region cap/derate rejected: %v", err)
	}
	anywhere := Event{Kind: Derate, Type: "T2", Factor: 0.5, StartH: 18, EndH: 19}
	if err := (Scenario{Name: "t", Events: []Event{east, anywhere}}).Validate(); err == nil {
		t.Error("unscoped derate overlapping a regional cap accepted")
	}
}

func TestPowerCapCompileAndSummary(t *testing.T) {
	s := Scenario{Name: "cap", Events: []Event{capEvent("T2", 7000, 2, 5)}}
	tl, err := Compile(s, 8, 3600, map[string]int{"T2": 60, "T3": 12})
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Active() {
		t.Error("powercap timeline reports inactive")
	}
	for i := 0; i < 8; i++ {
		want := 0.0
		if i >= 2 && i < 5 {
			want = 7000
		}
		if got := tl.At(i).PowerCapOf("T2"); got != want {
			t.Errorf("interval %d: PowerCapOf(T2) = %g, want %g", i, got, want)
		}
		if got := tl.At(i).PowerCapOf("T3"); got != 0 {
			t.Errorf("interval %d: uncapped T3 reports %g W", i, got)
		}
	}
	sum := s.Summary()
	if !strings.Contains(sum, "cap T2 servers at 7000W total") {
		t.Errorf("Summary missing the cap line:\n%s", sum)
	}
}
