package scenario

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNamedScenariosValidate(t *testing.T) {
	for _, name := range Names() {
		s, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("Named(%q).Name = %q", name, s.Name)
		}
		if _, err := Compile(s, 96, 900, map[string]int{"T2": 60, "T3": 12}); err != nil {
			t.Errorf("compile %s: %v", name, err)
		}
	}
	if _, err := Named("no-such"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	bad := []Event{
		{Kind: Spike, StartH: 2, EndH: 1, Factor: 2},
		{Kind: Spike, StartH: 0, EndH: 1, Factor: 0},
		{Kind: Spike, StartH: 0, EndH: 1, RampH: 0.6, Factor: 2},
		{Kind: Kill, StartH: 0, EndH: 1},
		{Kind: Kill, StartH: 0, EndH: 1, Frac: 1.5},
		{Kind: Kill, StartH: 0, EndH: 1, Count: 5}, // count needs an explicit type
		{Kind: Derate, StartH: 0, EndH: 1, Factor: 1.2},
		{Kind: Shed, StartH: 0, EndH: 1, Factor: 1},
		{Kind: "bogus", StartH: 0, EndH: 1},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("event %d (%+v) accepted", i, e)
		}
	}
}

func TestSpikeRampInterpolation(t *testing.T) {
	s := Scenario{Name: "t", Events: []Event{
		{Kind: Spike, StartH: 2, EndH: 6, RampH: 1, Factor: 3},
	}}
	// Hourly intervals: midpoints at 0.5h, 1.5h, ...
	tl, err := Compile(s, 8, 3600, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		i    int
		want float64
	}{
		{1, 1}, // before the event
		{2, 2}, // 2.5h: halfway up the ramp → 1 + (3-1)*0.5
		{3, 3}, // plateau
		{4, 3}, // plateau
		{5, 2}, // 5.5h: halfway down
		{6, 1}, // after
	}
	for _, c := range cases {
		if got := tl.At(c.i).Load("DLRM-RMC1"); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("interval %d: load scale %.3f, want %.3f", c.i, got, c.want)
		}
	}
	if tl.At(-1).Load("x") != 1 || tl.At(99).Load("x") != 1 {
		t.Error("out-of-range At must be a no-op")
	}
}

func TestKillFracAndWildcardExpansion(t *testing.T) {
	s := Scenario{Events: []Event{
		{Kind: Kill, StartH: 0, EndH: 1, Frac: 0.25},
		{Kind: Kill, StartH: 0, EndH: 1, Type: "T3", Count: 2},
	}}
	tl, err := Compile(s, 1, 3600, map[string]int{"T2": 8, "T3": 4})
	if err != nil {
		t.Fatal(err)
	}
	eff := tl.At(0)
	if got := eff.KilledOf("T2"); got != 2 {
		t.Errorf("T2 killed = %d, want 2 (25%% of 8)", got)
	}
	if got := eff.KilledOf("T3"); got != 3 {
		t.Errorf("T3 killed = %d, want 3 (25%% of 4 = 1, plus 2)", got)
	}
	if got := eff.TotalKilled(); got != 5 {
		t.Errorf("TotalKilled = %d, want 5", got)
	}
	// Kills cap at the fleet size.
	s.Events[1].Count = 99
	tl, _ = Compile(s, 1, 3600, map[string]int{"T2": 8, "T3": 4})
	if got := tl.At(0).KilledOf("T3"); got != 4 {
		t.Errorf("capped T3 killed = %d, want 4", got)
	}
}

func TestEffectComposition(t *testing.T) {
	s := Scenario{Events: []Event{
		{Kind: Spike, StartH: 0, EndH: 1, Factor: 2},                     // all models
		{Kind: Spike, StartH: 0, EndH: 1, Model: "DLRM-RMC1", Factor: 3}, // one model
		{Kind: Shed, StartH: 0, EndH: 1, Factor: 0.5},
		{Kind: Shed, StartH: 0, EndH: 1, Model: "DLRM-RMC1", Factor: 0.5},
		{Kind: Derate, StartH: 0, EndH: 1, Type: "T2", Factor: 0.5},
		{Kind: Derate, StartH: 0, EndH: 1, Type: "T2", Factor: 0.5},
	}}
	tl, err := Compile(s, 1, 3600, map[string]int{"T2": 1})
	if err != nil {
		t.Fatal(err)
	}
	eff := tl.At(0)
	if got := eff.Load("DLRM-RMC1"); got != 6 {
		t.Errorf("RMC1 load scale = %g, want 6 (2*3)", got)
	}
	if got := eff.Load("DLRM-RMC2"); got != 2 {
		t.Errorf("RMC2 load scale = %g, want 2", got)
	}
	if got := eff.Shed("DLRM-RMC1"); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("RMC1 shed = %g, want 0.75", got)
	}
	if got := eff.Shed("DLRM-RMC2"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("RMC2 shed = %g, want 0.5", got)
	}
	if got := eff.DerateOf("T2"); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("T2 derate = %g, want 0.25", got)
	}
	if got := eff.DerateOf("T9"); got != 1 {
		t.Errorf("unmentioned type derate = %g, want 1", got)
	}
}

func TestFromJSON(t *testing.T) {
	s, err := FromJSON([]byte(`{"name":"drill","events":[
		{"kind":"spike","start_h":1,"end_h":2,"factor":2},
		{"kind":"kill","start_h":1,"end_h":2,"type":"T2","count":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "drill" || len(s.Events) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	s, err = FromJSON([]byte(`[{"kind":"shed","start_h":0,"end_h":1,"factor":0.1}]`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "custom" || len(s.Events) != 1 {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := FromJSON([]byte(`{"events":[{"kind":"spike","start_h":2,"end_h":1}]}`)); err == nil {
		t.Error("invalid event accepted")
	}
	if _, err := FromJSON([]byte(`{nope`)); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestTimelineActive(t *testing.T) {
	base, _ := Named("baseline")
	tl, err := Compile(base, 24, 3600, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Active() {
		t.Error("baseline timeline reports active")
	}
	fc, _ := Named("flashcrowd")
	tl, err = Compile(fc, 24, 3600, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Active() {
		t.Error("flashcrowd timeline reports inactive")
	}
	var nilTL *Timeline
	if nilTL.Active() || nilTL.Steps() != 0 || nilTL.At(0).Load("x") != 1 {
		t.Error("nil timeline must behave as a no-op")
	}
}

// TestFlushEventValidation: the cache-flush event takes a fraction in
// (0, 1] — a full flush (frac 1) is legal, a no-op or overfull one is
// not.
func TestFlushEventValidation(t *testing.T) {
	good := Event{Kind: Flush, StartH: 0, EndH: 1, Frac: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("full flush rejected: %v", err)
	}
	for _, frac := range []float64{0, -0.5, 1.01} {
		e := Event{Kind: Flush, StartH: 0, EndH: 1, Frac: frac}
		if err := e.Validate(); err == nil {
			t.Errorf("flush frac %g accepted", frac)
		}
	}
}

// TestFlushComposition: overlapping flushes compose like independent
// invalidations — the surviving warmth is the product of what each
// leaves — and the accessor folds the wildcard entry into the per-model
// one.
func TestFlushComposition(t *testing.T) {
	s := Scenario{Events: []Event{
		{Kind: Flush, StartH: 0, EndH: 1, Frac: 0.5},                     // all models
		{Kind: Flush, StartH: 0, EndH: 1, Model: "DLRM-RMC1", Frac: 0.5}, // one model
	}}
	tl, err := Compile(s, 1, 3600, nil)
	if err != nil {
		t.Fatal(err)
	}
	eff := tl.At(0)
	if got := eff.Flush("DLRM-RMC1"); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("RMC1 flush = %g, want 0.75 (1 - 0.5*0.5 kept)", got)
	}
	if got := eff.Flush("DLRM-RMC2"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("RMC2 flush = %g, want 0.5 (wildcard only)", got)
	}
	if got := (Effects{}).Flush("DLRM-RMC1"); got != 0 {
		t.Errorf("zero Effects flush = %g, want 0", got)
	}
	// A flush alone perturbs nothing the provisioner sees, but the
	// timeline must still report active so the cache tier reacts.
	if !tl.Active() {
		t.Error("flush-only timeline reports inactive")
	}
	if !(Effects{}).SameFleetState(eff) {
		t.Error("flushes must be invisible to the fleet-state comparison")
	}
}

// TestCachestormScenario: the built-in cache-stampede drill resolves,
// carries a flush event, and summarizes it legibly.
func TestCachestormScenario(t *testing.T) {
	s, err := Named("cachestorm")
	if err != nil {
		t.Fatal(err)
	}
	hasFlush := false
	for _, e := range s.Events {
		if e.Kind == Flush {
			hasFlush = true
		}
	}
	if !hasFlush {
		t.Fatal("cachestorm has no flush event")
	}
	if sum := s.Summary(); !strings.Contains(sum, "flush") || !strings.Contains(sum, "cache warmth") {
		t.Errorf("summary does not describe the flush:\n%s", sum)
	}
}

// TestParseEmptyScenarioFile: a present-but-zero-byte @file must fail
// with a message naming the real problem, not the JSON decoder's
// "unexpected end of JSON input".
func TestParseEmptyScenarioFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Parse("@" + path)
	if err == nil {
		t.Fatal("empty scenario file accepted")
	}
	if !strings.Contains(err.Error(), "empty scenario file") || !strings.Contains(err.Error(), path) {
		t.Errorf("unhelpful error for empty file: %v", err)
	}
	// Whitespace-only counts as empty too.
	if err := os.WriteFile(path, []byte(" \n\t\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("@" + path); err == nil || !strings.Contains(err.Error(), "empty scenario file") {
		t.Errorf("whitespace-only file: %v", err)
	}
	// A missing file still reports the OS error.
	if _, err := Parse("@" + filepath.Join(dir, "nope.json")); err == nil || strings.Contains(err.Error(), "empty scenario file") {
		t.Errorf("missing file: %v", err)
	}
	// And a valid file round-trips through the same path.
	if err := os.WriteFile(path, []byte(`[{"kind":"flush","start_h":1,"end_h":2,"frac":0.9}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Parse("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 1 || s.Events[0].Kind != Flush {
		t.Errorf("parsed %+v", s)
	}
}

func TestSameFleetState(t *testing.T) {
	a := Effects{Killed: map[string]int{"T2": 3}}
	b := Effects{Killed: map[string]int{"T2": 3}}
	c := Effects{Killed: map[string]int{"T2": 4}}
	if !a.SameFleetState(b) || a.SameFleetState(c) || a.SameFleetState(Effects{}) {
		t.Error("SameFleetState comparisons wrong")
	}
	if !(Effects{}).SameFleetState(Effects{DerateFrac: map[string]float64{"T2": 0.5}}) {
		t.Error("derates must be invisible to the fleet-state comparison")
	}
}
