package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Kind names an event type.
type Kind string

// Event kinds.
const (
	// Spike multiplies a workload's arrival rate by Factor between
	// StartH and EndH, ramping linearly over RampH on each edge (flash
	// crowd). Factor > 1 adds load; Factor < 1 models a regional drain.
	Spike Kind = "spike"
	// MixShift multiplies a workload's query-size distribution median
	// by Factor (regional failover rotates the arrival mix: the same
	// QPS suddenly carries heavier queries, so effective capacity drops
	// without the load signal moving).
	MixShift Kind = "mixshift"
	// Kill takes servers out of the fleet between StartH and EndH:
	// Count servers of an explicitly named Type, or Frac of each
	// selected type's fleet (Frac composes with the empty wildcard
	// Type; Count requires a concrete Type so the casualty total is
	// unambiguous). Killed servers vanish from serving immediately and
	// from the provisioner's availability once the control plane
	// notices.
	Kill Kind = "kill"
	// Derate slows servers of a type to Factor of their service rate
	// (thermal throttling, a noisy neighbour, a failing NIC). The
	// control plane does not see derates; only tails reveal them.
	Derate Kind = "derate"
	// Shed drops Factor of a workload's arrivals at admission (a
	// load-shedding drill): shed queries never reach a server and are
	// accounted separately from queue-full drops.
	Shed Kind = "shed"
	// Flush invalidates Frac of a workload's cache-tier warmth per
	// active interval (a cache node restart, a deploy that rotates key
	// encodings, a poisoning purge). With the fleet engine's cache tier
	// enabled the hit rate collapses and misses flood the backends —
	// the cold-start storm. Without a cache tier the event is a no-op.
	Flush Kind = "flush"
	// PowerCap derates every server of an explicitly named Type to a
	// shared watt budget between StartH and EndH (a grid operator's
	// demand-response call, a failing cooling plant, a contractual
	// power ceiling): the engine splits Watts across the type's
	// surviving servers, slows them to the fraction of their TDP the
	// per-server share allows, and caps their measured power draw at
	// that share. Like a derate, the control plane never sees it —
	// only tails (and the energy meter) do.
	PowerCap Kind = "powercap"
	// Blackout takes the named Region offline for the window: every
	// server in the region's fleet is killed (with the same detection
	// lag as a Kill event) and the surviving regions absorb a flash
	// crowd of Factor (default BlackoutSurvivorFactor) on their
	// arrivals — the displaced users retrying against whatever is
	// still up. Blackout events only compile under CompileRegions; a
	// single-pool Compile rejects them.
	Blackout Kind = "blackout"
)

// BlackoutSurvivorFactor is the default surviving-region load
// multiplier during a blackout (the displaced traffic plus the retry
// amplification the survivors actually see).
const BlackoutSurvivorFactor = 1.5

// Event is one timeline entry of a scenario: an effect of the given
// kind active on [StartH, EndH) hours into the replay. Model restricts
// traffic effects to one workload (empty = all workloads); Type
// restricts fleet effects to one server type (empty = all types).
type Event struct {
	Kind   Kind    `json:"kind"`
	StartH float64 `json:"start_h"`
	EndH   float64 `json:"end_h"`
	// RampH linearly interpolates a Spike's factor from 1 over the
	// leading and trailing RampH hours inside the active window.
	RampH  float64 `json:"ramp_h,omitempty"`
	Model  string  `json:"model,omitempty"`
	Type   string  `json:"type,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	Count  int     `json:"count,omitempty"`
	Frac   float64 `json:"frac,omitempty"`
	// Watts is a PowerCap event's budget: the total power the named
	// server type may draw while the event is active.
	Watts float64 `json:"watts,omitempty"`
	// Region scopes the event to one region of a multi-region replay
	// (required for Blackout, where it names the victim; optional for
	// every other kind). Region-scoped events only compile under
	// CompileRegions.
	Region string `json:"region,omitempty"`
}

// Validate checks one event's fields.
func (e Event) Validate() error {
	if e.EndH <= e.StartH {
		return fmt.Errorf("scenario: %s event ends (%.2fh) before it starts (%.2fh)", e.Kind, e.EndH, e.StartH)
	}
	if e.StartH < 0 {
		return fmt.Errorf("scenario: %s event starts before hour 0", e.Kind)
	}
	switch e.Kind {
	case Spike, MixShift:
		if e.Factor <= 0 {
			return fmt.Errorf("scenario: %s event needs factor > 0", e.Kind)
		}
		if e.RampH < 0 || 2*e.RampH > e.EndH-e.StartH {
			return fmt.Errorf("scenario: %s ramp %.2fh does not fit the %.2fh window", e.Kind, e.RampH, e.EndH-e.StartH)
		}
	case Kill:
		if e.Count <= 0 && (e.Frac <= 0 || e.Frac > 1) {
			return fmt.Errorf("scenario: kill event needs count > 0 or frac in (0,1]")
		}
		if e.Count > 0 && e.Type == "" {
			return fmt.Errorf("scenario: kill event with count needs an explicit server type (use frac for fleet-wide kills)")
		}
	case Derate:
		if e.Factor <= 0 || e.Factor >= 1 {
			return fmt.Errorf("scenario: derate factor must be in (0,1), got %g", e.Factor)
		}
	case PowerCap:
		if e.Watts <= 0 {
			return fmt.Errorf("scenario: powercap event needs watts > 0")
		}
		if e.Type == "" {
			return fmt.Errorf("scenario: powercap event needs an explicit server type (a budget across unknown types is ambiguous)")
		}
	case Shed:
		if e.Factor <= 0 || e.Factor >= 1 {
			return fmt.Errorf("scenario: shed fraction must be in (0,1), got %g", e.Factor)
		}
	case Flush:
		if e.Frac <= 0 || e.Frac > 1 {
			return fmt.Errorf("scenario: flush fraction must be in (0,1], got %g", e.Frac)
		}
	case Blackout:
		if e.Region == "" {
			return fmt.Errorf("scenario: blackout event needs a region")
		}
		if e.Factor != 0 && e.Factor < 1 {
			return fmt.Errorf("scenario: blackout survivor factor must be >= 1 (or 0 for the default %.1fx), got %g", BlackoutSurvivorFactor, e.Factor)
		}
	default:
		return fmt.Errorf("scenario: unknown event kind %q", e.Kind)
	}
	return nil
}

// Scenario is a named list of events.
type Scenario struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
}

// Validate checks every event, then the cross-event constraints: a
// powercap window may not overlap another powercap or a derate window
// on the same server type (two mechanisms throttling one type at once
// have no defined composition — a watt budget is absolute where a
// derate is relative).
func (s Scenario) Validate() error {
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return s.validateCapConflicts()
}

// validateCapConflicts rejects overlapping powercap/derate windows
// that target the same server type (in the same region scope), naming
// both offending events. Mirrors the overlapping-blackout check in
// CompileRegions; derate-on-derate overlaps remain legal — they
// compose multiplicatively.
func (s Scenario) validateCapConflicts() error {
	for i, a := range s.Events {
		if a.Kind != PowerCap {
			continue
		}
		for j, b := range s.Events {
			if i == j || (b.Kind != PowerCap && b.Kind != Derate) {
				continue
			}
			if j < i && b.Kind == PowerCap {
				continue // that pair was already checked as (j, i)
			}
			if a.StartH >= b.EndH || b.StartH >= a.EndH {
				continue
			}
			// A wildcard derate throttles every type, the powercap's
			// included; region scopes conflict when equal or when
			// either event is unscoped (applies everywhere).
			if b.Type != "" && b.Type != a.Type {
				continue
			}
			if a.Region != "" && b.Region != "" && a.Region != b.Region {
				continue
			}
			return fmt.Errorf(
				"scenario: event %d (powercap %s %.0fW %.2fh-%.2fh) overlaps event %d (%s %s %.2fh-%.2fh) on server type %q; split the windows or drop one",
				i, a.Type, a.Watts, a.StartH, a.EndH,
				j, b.Kind, typeScope(b.Type), b.StartH, b.EndH, a.Type)
		}
	}
	return nil
}

// typeScope renders an event's server-type selector for error text.
func typeScope(t string) string {
	if t == "" {
		return "all types"
	}
	return t
}

// Active reports whether the scenario perturbs the replay at all.
func (s Scenario) Active() bool { return len(s.Events) > 0 }

// FromJSON parses a scenario spec: either a {"name":..., "events":[...]}
// object or a bare [...] event array (named "custom").
func FromJSON(data []byte) (Scenario, error) {
	trimmed := strings.TrimSpace(string(data))
	var s Scenario
	if strings.HasPrefix(trimmed, "[") {
		s.Name = "custom"
		if err := json.Unmarshal(data, &s.Events); err != nil {
			return s, fmt.Errorf("scenario: %w", err)
		}
	} else if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("scenario: %w", err)
	}
	if s.Name == "" {
		s.Name = "custom"
	}
	return s, s.Validate()
}

// Parse resolves the string form a run spec or -scenario flag carries:
// a built-in name ("flashcrowd"), a JSON spec file reference
// ("@events.json"), or inline JSON (an event array or a
// {"name":...,"events":[...]} object). An empty string is the
// baseline.
func Parse(s string) (Scenario, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Scenario{Name: "baseline"}, nil
	case strings.HasPrefix(s, "@"):
		path := strings.TrimPrefix(s, "@")
		data, err := os.ReadFile(path)
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario: %w", err)
		}
		if len(strings.TrimSpace(string(data))) == 0 {
			// Report the real problem, not the JSON decoder's confusing
			// "unexpected end of JSON input" for a zero-byte spec.
			return Scenario{}, fmt.Errorf("scenario: empty scenario file %s (want an event array or a {\"name\",\"events\"} object)", path)
		}
		return FromJSON(data)
	case strings.HasPrefix(s, "[") || strings.HasPrefix(s, "{"):
		return FromJSON([]byte(s))
	default:
		return Named(s)
	}
}

// Summary renders a one-line-per-event description.
func (s Scenario) Summary() string {
	if !s.Active() {
		return s.Name + ": steady diurnal baseline (no events)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d event(s)\n", s.Name, len(s.Events))
	for _, e := range s.Events {
		scope := e.Model
		if e.Kind == Kill || e.Kind == Derate || e.Kind == PowerCap {
			scope = e.Type
		}
		if e.Kind == Blackout {
			scope = e.Region
		}
		if scope == "" {
			scope = "all"
		}
		switch e.Kind {
		case Blackout:
			f := e.Factor
			if f == 0 {
				f = BlackoutSurvivorFactor
			}
			fmt.Fprintf(&sb, "  %5.2fh-%5.2fh blackout region %s (survivors x%.2f)\n", e.StartH, e.EndH, scope, f)
		case Kill:
			if e.Count > 0 {
				fmt.Fprintf(&sb, "  %5.2fh-%5.2fh kill %d %s server(s)\n", e.StartH, e.EndH, e.Count, scope)
			} else {
				fmt.Fprintf(&sb, "  %5.2fh-%5.2fh kill %.0f%% of %s servers\n", e.StartH, e.EndH, e.Frac*100, scope)
			}
		case Derate:
			fmt.Fprintf(&sb, "  %5.2fh-%5.2fh derate %s servers to %.0f%% rate\n", e.StartH, e.EndH, scope, e.Factor*100)
		case PowerCap:
			fmt.Fprintf(&sb, "  %5.2fh-%5.2fh cap %s servers at %.0fW total\n", e.StartH, e.EndH, scope, e.Watts)
		case Shed:
			fmt.Fprintf(&sb, "  %5.2fh-%5.2fh shed %.0f%% of %s arrivals\n", e.StartH, e.EndH, e.Factor*100, scope)
		case Flush:
			fmt.Fprintf(&sb, "  %5.2fh-%5.2fh flush %.0f%% of %s cache warmth per interval\n", e.StartH, e.EndH, e.Frac*100, scope)
		case MixShift:
			fmt.Fprintf(&sb, "  %5.2fh-%5.2fh shift %s query-size mix x%.2f\n", e.StartH, e.EndH, scope, e.Factor)
		default:
			ramp := ""
			if e.RampH > 0 {
				ramp = fmt.Sprintf(" (%.2fh ramps)", e.RampH)
			}
			fmt.Fprintf(&sb, "  %5.2fh-%5.2fh load x%.2f on %s%s\n", e.StartH, e.EndH, e.Factor, scope, ramp)
		}
	}
	return sb.String()
}

// Effects is the compiled per-interval view of a scenario: what the
// fleet engine must apply while replaying one trace interval. The zero
// value is a no-op. Traffic maps are keyed by model name with "" for
// "every workload"; fleet maps are keyed by concrete server type ("" is
// expanded against the fleet at compile time). Use the accessors — they
// compose the wildcard and the named entry.
type Effects struct {
	LoadScale  map[string]float64
	SizeScale  map[string]float64
	ShedFrac   map[string]float64
	FlushFrac  map[string]float64
	Killed     map[string]int
	DerateFrac map[string]float64
	// PowerCapW maps a server type to the total watt budget a powercap
	// event holds it under this interval (absent = uncapped). The
	// engine converts the budget into a service-rate derate against
	// the type's TDP and a per-server ceiling on measured power.
	PowerCapW map[string]float64
	// Blackout marks an interval whose whole region is offline (only
	// CompileRegions sets it; the geo-router uses it to stop spilling
	// into — and start evacuating — the dead region). The fleet effect
	// itself arrives as a wildcard full-fleet kill in Killed.
	Blackout bool
}

// Load returns the arrival-rate multiplier for one model (default 1).
func (e Effects) Load(model string) float64 { return scaleOf(e.LoadScale, model) }

// Size returns the query-size-distribution multiplier for one model
// (default 1).
func (e Effects) Size(model string) float64 { return scaleOf(e.SizeScale, model) }

// Shed returns the admission-drop fraction for one model (default 0).
func (e Effects) Shed(model string) float64 {
	if e.ShedFrac == nil {
		return 0
	}
	// Independent sheds compose: surviving fraction is the product.
	keep := (1 - e.ShedFrac[""]) * (1 - e.ShedFrac[model])
	return 1 - keep
}

// Flush returns the cache-warmth fraction invalidated per interval for
// one model (default 0). Independent flushes compose: the surviving
// warmth fraction is the product of what each flush leaves standing.
func (e Effects) Flush(model string) float64 {
	if e.FlushFrac == nil {
		return 0
	}
	keep := (1 - e.FlushFrac[""]) * (1 - e.FlushFrac[model])
	return 1 - keep
}

// KilledOf returns how many servers of the type are down.
func (e Effects) KilledOf(serverType string) int { return e.Killed[serverType] }

// DerateOf returns the service-rate multiplier of the type (default 1).
func (e Effects) DerateOf(serverType string) float64 {
	if e.DerateFrac == nil {
		return 1
	}
	if f, ok := e.DerateFrac[serverType]; ok {
		return f
	}
	return 1
}

// PowerCapOf returns the total watt budget the type is held under
// this interval (0 = uncapped).
func (e Effects) PowerCapOf(serverType string) float64 { return e.PowerCapW[serverType] }

// TotalKilled sums the killed servers across types.
func (e Effects) TotalKilled() int {
	sum := 0
	for _, n := range e.Killed {
		sum += n
	}
	return sum
}

// SameFleetState reports whether two effects agree on everything the
// control plane can observe about the fleet (the killed-server map).
// The engine re-provisions early when this changes between intervals —
// health checks notice dead servers; they do not notice derates.
func (e Effects) SameFleetState(o Effects) bool {
	if len(e.Killed) != len(o.Killed) {
		return false
	}
	for t, n := range e.Killed {
		if o.Killed[t] != n {
			return false
		}
	}
	return true
}

func scaleOf(m map[string]float64, key string) float64 {
	if m == nil {
		return 1
	}
	s := 1.0
	if v, ok := m[""]; ok {
		s *= v
	}
	if v, ok := m[key]; ok {
		s *= v
	}
	return s
}

// Timeline is a scenario compiled against a concrete replay geometry:
// one Effects per trace interval, evaluated at the interval midpoint.
type Timeline struct {
	Name    string
	effects []Effects
}

// Compile evaluates the scenario's events over steps intervals of stepS
// seconds. fleetCounts (server type → fleet size) resolves fractional
// and wildcard Kill/Derate events; pass the counts of the fleet the
// replay provisions from.
func Compile(s Scenario, steps int, stepS float64, fleetCounts map[string]int) (*Timeline, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for i, ev := range s.Events {
		if ev.Kind == Blackout {
			return nil, fmt.Errorf("scenario: event %d: blackout events need a multi-region replay (CompileRegions)", i)
		}
		if ev.Region != "" {
			return nil, fmt.Errorf("scenario: event %d: region-scoped %s event needs a multi-region replay (CompileRegions)", i, ev.Kind)
		}
	}
	if steps <= 0 || stepS <= 0 {
		return nil, fmt.Errorf("scenario: bad geometry (%d steps of %gs)", steps, stepS)
	}
	types := make([]string, 0, len(fleetCounts))
	for t := range fleetCounts {
		types = append(types, t)
	}
	sort.Strings(types)

	tl := &Timeline{Name: s.Name, effects: make([]Effects, steps)}
	for i := range tl.effects {
		midH := (float64(i) + 0.5) * stepS / 3600
		eff := &tl.effects[i]
		for _, ev := range s.Events {
			if midH < ev.StartH || midH >= ev.EndH {
				continue
			}
			switch ev.Kind {
			case Spike:
				mulScale(&eff.LoadScale, ev.Model, rampFactor(ev, midH))
			case MixShift:
				mulScale(&eff.SizeScale, ev.Model, ev.Factor)
			case Shed:
				if eff.ShedFrac == nil {
					eff.ShedFrac = make(map[string]float64)
				}
				keep := (1 - eff.ShedFrac[ev.Model]) * (1 - ev.Factor)
				eff.ShedFrac[ev.Model] = 1 - keep
			case Flush:
				if eff.FlushFrac == nil {
					eff.FlushFrac = make(map[string]float64)
				}
				keep := (1 - eff.FlushFrac[ev.Model]) * (1 - ev.Frac)
				eff.FlushFrac[ev.Model] = 1 - keep
			case Kill:
				for _, t := range expandTypes(ev.Type, types) {
					n := ev.Count
					if n <= 0 {
						n = int(math.Round(ev.Frac * float64(fleetCounts[t])))
					}
					if n <= 0 {
						continue
					}
					if eff.Killed == nil {
						eff.Killed = make(map[string]int)
					}
					eff.Killed[t] = min(eff.Killed[t]+n, fleetCounts[t])
				}
			case Derate:
				for _, t := range expandTypes(ev.Type, types) {
					if eff.DerateFrac == nil {
						eff.DerateFrac = make(map[string]float64)
					}
					f := ev.Factor
					if prev, ok := eff.DerateFrac[t]; ok {
						f *= prev
					}
					eff.DerateFrac[t] = f
				}
			case PowerCap:
				// Validation guarantees at most one active cap per type
				// per instant, so a plain store is exact.
				if eff.PowerCapW == nil {
					eff.PowerCapW = make(map[string]float64)
				}
				eff.PowerCapW[ev.Type] = ev.Watts
			}
		}
	}
	return tl, nil
}

// rampFactor interpolates a spike's factor linearly across its edges.
func rampFactor(ev Event, h float64) float64 {
	f := ev.Factor
	if ev.RampH <= 0 {
		return f
	}
	if d := h - ev.StartH; d < ev.RampH {
		return 1 + (f-1)*d/ev.RampH
	}
	if d := ev.EndH - h; d < ev.RampH {
		return 1 + (f-1)*d/ev.RampH
	}
	return f
}

func mulScale(m *map[string]float64, key string, f float64) {
	if *m == nil {
		*m = make(map[string]float64)
	}
	if prev, ok := (*m)[key]; ok {
		f *= prev
	}
	(*m)[key] = f
}

func expandTypes(sel string, all []string) []string {
	if sel == "" {
		return all
	}
	return []string{sel}
}

// At returns the effects for interval i (a no-op Effects outside the
// compiled range, so callers need not bounds-check).
func (t *Timeline) At(i int) Effects {
	if t == nil || i < 0 || i >= len(t.effects) {
		return Effects{}
	}
	return t.effects[i]
}

// Steps returns the number of compiled intervals.
func (t *Timeline) Steps() int {
	if t == nil {
		return 0
	}
	return len(t.effects)
}

// Active reports whether any interval carries a non-trivial effect.
func (t *Timeline) Active() bool {
	if t == nil {
		return false
	}
	for _, e := range t.effects {
		if len(e.LoadScale) > 0 || len(e.SizeScale) > 0 || len(e.ShedFrac) > 0 ||
			len(e.FlushFrac) > 0 || len(e.Killed) > 0 || len(e.DerateFrac) > 0 ||
			len(e.PowerCapW) > 0 {
			return true
		}
	}
	return false
}
