package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// Built-in scenarios, designed against the default diurnal day (peak at
// hour 20, valley near hour 8): each one stresses the serving stack at
// a time when interval provisioning is lean, so the divergence from the
// baseline replay is attributable to the scenario, not to raw fleet
// exhaustion.
var named = map[string]Scenario{
	// baseline is the unperturbed diurnal replay.
	"baseline": {Name: "baseline"},

	// flashcrowd: a mid-day ×2.5 arrival spike with half-hour ramps —
	// load that outruns the provisioner's headroom between scheduled
	// re-provisioning intervals (a viral item, a push notification).
	"flashcrowd": {Name: "flashcrowd", Events: []Event{
		{Kind: Spike, StartH: 12.5, EndH: 15.5, RampH: 0.5, Factor: 2.5},
	}},

	// regionshift: a regional failover rotates the arrival mix — +25%
	// load carrying 1.5× heavier queries for six hours, so effective
	// capacity drops even where the QPS signal barely moves.
	"regionshift": {Name: "regionshift", Events: []Event{
		{Kind: Spike, StartH: 10, EndH: 16, Factor: 1.25},
		{Kind: MixShift, StartH: 10, EndH: 16, Factor: 1.5},
	}},

	// failure: 30% of every server type dies at hour 9 and comes back
	// at hour 15 (a rack power event spanning the climb toward peak).
	"failure": {Name: "failure", Events: []Event{
		{Kind: Kill, StartH: 9, EndH: 15, Frac: 0.3},
	}},

	// degrade: every server throttles to 60% service rate for the busy
	// half of the day — invisible to the control plane, which keeps
	// provisioning against healthy-server capacities.
	"degrade": {Name: "degrade", Events: []Event{
		{Kind: Derate, StartH: 8, EndH: 18, Factor: 0.6},
	}},

	// shed: a load-shedding drill drops 20% of arrivals across the
	// evening peak, measuring how much tail relief admission control
	// buys at a known sacrifice.
	"shed": {Name: "shed", Events: []Event{
		{Kind: Shed, StartH: 18, EndH: 22, Factor: 0.2},
	}},

	// cachestorm: 75% of the cache tier's warmth is invalidated every
	// interval across the climb to peak (a rolling cache-node restart at
	// the worst possible time). With a cache tier enabled the backends
	// — provisioned net of the measured hit rate — absorb the miss
	// flood; without one the scenario is a no-op, making the cache's
	// contribution directly measurable.
	"cachestorm": {Name: "cachestorm", Events: []Event{
		{Kind: Flush, StartH: 18, EndH: 21, Frac: 0.75},
	}},
}

// Names lists the built-in scenarios in sorted order.
func Names() []string {
	out := make([]string, 0, len(named))
	for n := range named {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Named returns a built-in scenario by name.
func Named(name string) (Scenario, error) {
	s, ok := named[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return s, nil
}
