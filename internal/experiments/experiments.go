package experiments

import (
	"fmt"
	"strings"
	"sync"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/sim"
)

// Seed is the default deterministic seed for all experiments.
const Seed = 42

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render() string
}

var (
	herculesTableOnce sync.Once
	herculesTable     *profiler.Table
	baselineTableOnce sync.Once
	baselineTable     *profiler.Table
)

// HerculesTable returns the process-wide efficiency table profiled with
// the Hercules task scheduler over all six prod models × T1–T10
// (Fig. 9b). Building it is expensive (minutes); it is memoized.
func HerculesTable() *profiler.Table {
	herculesTableOnce.Do(func() {
		herculesTable = profiler.BuildTable(model.Zoo(model.Prod), hw.AllServerTypes(),
			profiler.Options{Sched: profiler.Hercules, Seed: Seed})
	})
	return herculesTable
}

// BaselineTable returns the efficiency table profiled with the
// DeepRecSys/Baymax baseline scheduler.
func BaselineTable() *profiler.Table {
	baselineTableOnce.Do(func() {
		baselineTable = profiler.BuildTable(model.Zoo(model.Prod), hw.AllServerTypes(),
			profiler.Options{Sched: profiler.Baseline, Seed: Seed})
	})
	return baselineTable
}

// SetHerculesTable injects a prebuilt table (e.g. loaded from a JSON
// cache by the CLIs) so subsequent experiments skip profiling.
func SetHerculesTable(t *profiler.Table) {
	herculesTableOnce.Do(func() {})
	herculesTable = t
}

// SetBaselineTable injects a prebuilt baseline table.
func SetBaselineTable(t *profiler.Table) {
	baselineTableOnce.Do(func() {})
	baselineTable = t
}

// header renders a figure banner.
func header(sb *strings.Builder, title string) {
	fmt.Fprintf(sb, "=== %s ===\n", title)
}

// bestBatchCapacity evaluates the configuration over the batch ladder
// and returns the best capacity point — the per-SLA batch sweep that the
// characterization figures use.
func bestBatchCapacity(s *sim.Server, mk func(batch int) sim.Config, slaMS float64, seed int64) (sim.Capacity, sim.Config) {
	var best sim.Capacity
	var bestCfg sim.Config
	hint := 0.0
	for _, b := range []int{32, 64, 128, 256, 512} {
		cfg := mk(b)
		c, err := s.FindCapacityHint(cfg, slaMS, seed, hint)
		if err != nil {
			continue
		}
		if c.QPS > best.QPS {
			best, bestCfg = c, cfg
		}
		if c.QPS > 0 {
			hint = c.QPS
		}
	}
	return best, bestCfg
}
