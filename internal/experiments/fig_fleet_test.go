package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hercules/internal/fleet"
)

func TestFig13Online(t *testing.T) {
	if testing.Short() {
		t.Skip("replays eight full days of traffic")
	}
	t.Parallel()
	r, err := Fig13Online(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(fleet.AllRouters)*2 {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(fleet.AllRouters)*2)
	}
	byKey := map[string]fleet.DayResult{}
	for _, row := range r.Rows {
		byKey[row.Policy+"/"+row.Router] = row
		if row.TotalQueries <= 0 {
			t.Fatalf("%s/%s replayed nothing", row.Policy, row.Router)
		}
		if row.DropFrac < 0 || row.DropFrac > 1 {
			t.Fatalf("%s/%s drop fraction %v", row.Policy, row.Router, row.DropFrac)
		}
		if row.EnergyKJ <= 0 {
			t.Fatalf("%s/%s no energy recorded", row.Policy, row.Router)
		}
		if len(row.Steps) < 24 {
			t.Fatalf("%s/%s replayed %d intervals, want a full day (>=24)",
				row.Policy, row.Router, len(row.Steps))
		}
	}
	// The load-oblivious baseline must lose to every state-aware router
	// on SLA-violation minutes under both provisioning policies — the
	// imbalance the aggregate-capacity model cannot see.
	for _, pol := range []string{"greedy", "hercules"} {
		rr := byKey[pol+"/rr"]
		for _, router := range []string{"least", "p2c", "hetero"} {
			if byKey[pol+"/"+router].SLAViolationMin >= rr.SLAViolationMin {
				t.Errorf("%s: %s (%.0f viol min) must beat rr (%.0f)",
					pol, router, byKey[pol+"/"+router].SLAViolationMin, rr.SLAViolationMin)
			}
		}
	}
	// Hercules provisioning must not cost more energy than greedy for
	// the same router (it activates the efficient subset of the fleet).
	for _, router := range []string{"least", "p2c", "hetero"} {
		g, h := byKey["greedy/"+router], byKey["hercules/"+router]
		if h.EnergyKJ > g.EnergyKJ*1.02 {
			t.Errorf("%s: hercules energy %.0f kJ exceeds greedy %.0f kJ",
				router, h.EnergyKJ, g.EnergyKJ)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "Fig. 13-online") || !strings.Contains(out, "best:") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestFleetTableCalibrates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs capacity searches")
	}
	t.Parallel()
	table, err := FleetTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, srv := range FleetFleet().Types {
		for _, m := range FleetModels {
			e, ok := table.Get(srv.Type, m)
			if !ok || e.QPS <= 0 {
				t.Errorf("pair %s/%s missing or zero-capacity: %+v", srv.Type, m, e)
			}
			if e.PowerW <= 0 {
				t.Errorf("pair %s/%s has no power budget", srv.Type, m)
			}
		}
	}
	// The NMP type must beat plain DDR4 for the memory-bound RMC1
	// (the Fig. 15 ordering the router's weights rely on).
	if table.MustGet("T3", "DLRM-RMC1").QPS <= table.MustGet("T2", "DLRM-RMC1").QPS {
		t.Error("NMP (T3) must outrun DDR4 (T2) on DLRM-RMC1")
	}
}

// TestFleetDayDeterminism is the golden determinism guard for the
// parallel replay: two BenchmarkFleetDay-configuration runs with the
// same seed — worker pool enabled — must produce byte-identical
// summary reports, and the parallel replay must be byte-identical to
// the sequential one (shard RNG streams are seeded per (interval,
// model, shard), so scheduling order must never leak into results).
// Deliberately not skipped in -short mode: this is the CI witness that
// the hot-path optimizations keep seeded replays reproducible.
func TestFleetDayDeterminism(t *testing.T) {
	table, err := FleetTable()
	if err != nil {
		t.Fatal(err)
	}
	run := func(sequential bool) []byte {
		t.Helper()
		spec := FleetSpec(fleet.PowerOfTwo, "hercules", Seed)
		// Eight shards per model regardless of host core count: the
		// byte-identity claim must hold for genuinely sharded replays,
		// not just the single-shard experiment configuration.
		spec.Options.Shards = 8
		spec.Options.Sequential = sequential
		eng, err := fleet.NewEngine(spec, fleet.WithTable(table))
		if err != nil {
			t.Fatal(err)
		}
		day, err := eng.RunDay(FleetWorkloads(table, Seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(day)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	par1, par2, seq := run(false), run(false), run(true)
	if !bytes.Equal(par1, par2) {
		t.Error("two parallel replays with the same seed diverged")
	}
	if !bytes.Equal(par1, seq) {
		t.Error("parallel replay diverged from sequential replay")
	}
	var day fleet.DayResult
	if err := json.Unmarshal(par1, &day); err != nil || day.TotalQueries == 0 {
		t.Fatalf("replay produced no traffic: %v (queries=%d)", err, day.TotalQueries)
	}
}
