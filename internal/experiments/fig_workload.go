package experiments

import (
	"fmt"
	"strings"

	"hercules/internal/costmodel"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/stats"
	"hercules/internal/workload"
)

// TableIResult reproduces Table I: the model-zoo configuration summary.
type TableIResult struct {
	Rows []TableIRow
}

// TableIRow is one model's configuration line.
type TableIRow struct {
	Model       string
	Service     string
	NumTables   int
	EmbRows     int64
	Lookups     string
	Pooled      bool
	Attention   string
	BottomFC    string
	PredictFC   string
	Tasks       int
	EmbeddingGB float64
}

// TableI builds the model-zoo summary.
func TableI() TableIResult {
	var res TableIResult
	for _, m := range model.Zoo(model.Prod) {
		t0 := m.Tables[len(m.Tables)-1] // behaviour/representative table
		row := TableIRow{
			Model:       m.Name,
			Service:     m.Service,
			NumTables:   len(m.Tables),
			EmbRows:     t0.Rows,
			Lookups:     fmt.Sprintf("%d-%d", t0.PoolingMin, t0.PoolingMax),
			Pooled:      t0.Pooled,
			Attention:   m.Attention.String(),
			BottomFC:    fmt.Sprint(m.BottomMLP),
			PredictFC:   fmt.Sprint(m.PredictMLP),
			Tasks:       m.Tasks,
			EmbeddingGB: float64(m.EmbeddingBytes()) / (1 << 30),
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render implements Renderer.
func (r TableIResult) Render() string {
	var sb strings.Builder
	header(&sb, "Table I: production-scale recommendation model configurations")
	fmt.Fprintf(&sb, "%-10s %-12s %6s %10s %9s %6s %5s %6s %8s\n",
		"model", "service", "tables", "rows", "lookups", "pooled", "attn", "tasks", "emb(GB)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %-12s %6d %10d %9s %6v %5s %6d %8.1f\n",
			row.Model, row.Service, row.NumTables, row.EmbRows, row.Lookups,
			row.Pooled, row.Attention, row.Tasks, row.EmbeddingGB)
	}
	return sb.String()
}

// TableIIResult reproduces Table II: the server-type inventory.
type TableIIResult struct {
	Rows []TableIIRow
}

// TableIIRow is one server type's line.
type TableIIRow struct {
	Type      string
	Avail     int
	Label     string
	Cores     int
	MemoryGB  int64
	NMPWays   int
	GPU       string
	TDPWatts  float64
	IdleWatts float64
}

// TableII builds the server-type inventory with default availabilities.
func TableII() TableIIResult {
	fleet := hw.DefaultFleet()
	var res TableIIResult
	for i, srv := range fleet.Types {
		row := TableIIRow{
			Type:      srv.Type,
			Avail:     fleet.Counts[i],
			Label:     srv.String(),
			Cores:     srv.CPU.PhysicalCores,
			MemoryGB:  srv.Memory.CapacityBytes >> 30,
			NMPWays:   srv.Memory.NMPWays,
			TDPWatts:  srv.TDPWatts(),
			IdleWatts: srv.IdleWatts(),
		}
		if srv.GPU != nil {
			row.GPU = srv.GPU.Name
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render implements Renderer.
func (r TableIIResult) Render() string {
	var sb strings.Builder
	header(&sb, "Table II: system parameters and configurations (T1-T10)")
	fmt.Fprintf(&sb, "%-4s %5s %-22s %5s %7s %4s %6s %8s %8s\n",
		"type", "avail", "composition", "cores", "mem(GB)", "nmp", "gpu", "TDP(W)", "idle(W)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-4s %5d %-22s %5d %7d %4d %6s %8.0f %8.0f\n",
			row.Type, row.Avail, row.Label, row.Cores, row.MemoryGB, row.NMPWays,
			row.GPU, row.TDPWatts, row.IdleWatts)
	}
	return sb.String()
}

// Fig1Result reproduces Fig. 1(left): per-model compute and memory
// intensity.
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1Row is one model's footprint point.
type Fig1Row struct {
	Model           string
	FLOPsPerItem    float64
	BytesPerItem    float64
	Region          string // "memory-dominated" | "compute-dominated"
	EmbeddingGB     float64
	SparseLatencyFr float64
}

// Fig1ModelFootprint computes the footprint chart data.
func Fig1ModelFootprint() Fig1Result {
	var res Fig1Result
	for _, m := range model.Zoo(model.Prod) {
		s := m.Summarize()
		region := "compute-dominated"
		if s.MemoryDominated {
			region = "memory-dominated"
		}
		res.Rows = append(res.Rows, Fig1Row{
			Model:           m.Name,
			FLOPsPerItem:    s.FLOPsPerItem,
			BytesPerItem:    s.SparseBytes,
			Region:          region,
			EmbeddingGB:     s.EmbeddingGB,
			SparseLatencyFr: m.SparseFractionHint(),
		})
	}
	return res
}

// Render implements Renderer.
func (r Fig1Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 1: avg compute FLOPs vs memory bytes per query item")
	fmt.Fprintf(&sb, "%-10s %14s %14s %10s %-18s\n", "model", "flops/item", "bytes/item", "emb(GB)", "region")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %14.3g %14.3g %10.1f %-18s\n",
			row.Model, row.FLOPsPerItem, row.BytesPerItem, row.EmbeddingGB, row.Region)
	}
	return sb.String()
}

// Fig2bResult reproduces Fig. 2(b): the query-size histogram.
type Fig2bResult struct {
	Hist           *stats.Histogram
	P50, P75       float64
	P95, P99       float64
	Mean           float64
	TailHeavyRatio float64 // p99/p50
}

// Fig2bQuerySizes samples the production-like query-size distribution.
func Fig2bQuerySizes(seed int64) Fig2bResult {
	d := workload.DefaultQuerySizes()
	r := stats.NewRand(seed)
	s := stats.NewSample(30000)
	h := stats.NewHistogram(0, 1000, 25)
	for i := 0; i < 30000; i++ {
		x := float64(d.Draw(r))
		s.Add(x)
		h.Observe(x)
	}
	return Fig2bResult{
		Hist: h,
		P50:  s.P50(), P75: s.P75(), P95: s.P95(), P99: s.P99(),
		Mean:           s.Mean(),
		TailHeavyRatio: s.P99() / s.P50(),
	}
}

// Render implements Renderer.
func (r Fig2bResult) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 2b: query-size distribution (heavy tail)")
	fmt.Fprintf(&sb, "mean=%.0f p50=%.0f p75=%.0f p95=%.0f p99=%.0f (p99/p50=%.1fx)\n",
		r.Mean, r.P50, r.P75, r.P95, r.P99, r.TailHeavyRatio)
	sb.WriteString("size_bin\tcount\tfraction\n")
	sb.WriteString(r.Hist.Table())
	return sb.String()
}

// Fig2cResult reproduces Fig. 2(c): pooling factors across embedding
// tables over production queries.
type Fig2cResult struct {
	Rows []Fig2cRow
}

// Fig2cRow summarizes one table's pooling-factor distribution.
type Fig2cRow struct {
	EmbID         int
	P10, P50, P90 float64
}

// Fig2cPoolingFactors draws 500 queries over 15 tables (paper setup).
func Fig2cPoolingFactors(seed int64) Fig2cResult {
	m := model.DLRMRMC2(model.Prod)
	r := stats.NewRand(seed)
	const tables = 15
	samples := make([]*stats.Sample, tables)
	for i := range samples {
		samples[i] = stats.NewSample(500)
	}
	for q := 0; q < 500; q++ {
		scale := stats.Lognormal(r, -0.045, 0.3)
		pf := workload.PoolingFactors(r, m, scale)
		for i := 0; i < tables; i++ {
			samples[i].Add(float64(pf[i]))
		}
	}
	var res Fig2cResult
	for i := 0; i < tables; i++ {
		res.Rows = append(res.Rows, Fig2cRow{
			EmbID: i,
			P10:   samples[i].Percentile(10),
			P50:   samples[i].P50(),
			P90:   samples[i].Percentile(90),
		})
	}
	return res
}

// Render implements Renderer.
func (r Fig2cResult) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 2c: pooling-factor distribution, 15 tables x 500 queries")
	sb.WriteString("emb_id\tp10\tp50\tp90\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%d\t%.0f\t%.0f\t%.0f\n", row.EmbID, row.P10, row.P50, row.P90)
	}
	return sb.String()
}

// Fig2dResult reproduces Fig. 2(d): synchronous diurnal loads of two
// services across datacenters over one week.
type Fig2dResult struct {
	Traces      []workload.DiurnalTrace
	Fluctuation float64 // aggregated (peak-valley)/peak
}

// Fig2dDiurnalLoad synthesizes 2 services × 4 datacenters for one week.
func Fig2dDiurnalLoad(seed int64) Fig2dResult {
	var res Fig2dResult
	for svc := 0; svc < 2; svc++ {
		for dc := 0; dc < 4; dc++ {
			cfg := workload.DefaultDiurnal(
				fmt.Sprintf("service%d-dc%d", svc+1, dc+1),
				50000*(1+0.2*float64(svc)), 7, seed+int64(svc*4+dc))
			res.Traces = append(res.Traces, workload.Synthesize(cfg))
		}
	}
	// Aggregate fluctuation across all traces.
	steps := res.Traces[0].Steps()
	agg := make([]float64, steps)
	for _, tr := range res.Traces {
		for i := 0; i < steps; i++ {
			agg[i] += tr.LoadsQPS[i]
		}
	}
	peak, valley := agg[0], agg[0]
	for _, v := range agg {
		if v > peak {
			peak = v
		}
		if v < valley {
			valley = v
		}
	}
	res.Fluctuation = (peak - valley) / peak
	return res
}

// Render implements Renderer.
func (r Fig2dResult) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 2d: diurnal loads, 2 services x 4 datacenters, 1 week")
	fmt.Fprintf(&sb, "aggregate peak-to-valley fluctuation: %.0f%%\n", r.Fluctuation*100)
	sb.WriteString("hour")
	for _, tr := range r.Traces {
		fmt.Fprintf(&sb, "\t%s", tr.Service)
	}
	sb.WriteByte('\n')
	// Hourly samples of day 1 for brevity.
	for h := 0; h < 24; h++ {
		fmt.Fprintf(&sb, "%d", h)
		for _, tr := range r.Traces {
			fmt.Fprintf(&sb, "\t%.0f", tr.At(float64(h)*3600))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fig5Result reproduces Fig. 5(c): operator-worker idle fraction.
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5Row is the idle fraction of one model at one worker count.
type Fig5Row struct {
	Model    string
	Workers  int
	IdleFrac float64
}

// Fig5OpWorkerIdle measures dense-graph idle fractions at batch 256.
func Fig5OpWorkerIdle() Fig5Result {
	p := costmodel.DefaultParams()
	srv := hw.ServerType("T2")
	var res Fig5Result
	for _, m := range model.Zoo(model.Prod) {
		g := model.BuildGraph(m)
		for _, w := range []int{1, 2, 3, 4} {
			res.Rows = append(res.Rows, Fig5Row{
				Model:    m.Name,
				Workers:  w,
				IdleFrac: costmodel.OpWorkerIdleFraction(p, srv, g, 256, w),
			})
		}
	}
	return res
}

// Render implements Renderer.
func (r Fig5Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 5: op-worker idle fraction vs parallel workers (batch 256)")
	sb.WriteString("model\tworkers\tidle_frac\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s\t%d\t%.2f\n", row.Model, row.Workers, row.IdleFrac)
	}
	return sb.String()
}
