package experiments

import (
	"strings"
	"testing"

	"hercules/internal/fleet"
)

func TestFigRegions(t *testing.T) {
	if testing.Short() {
		t.Skip("replays four region-days of traffic")
	}
	t.Parallel()
	r, err := FigRegions(Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, day := range []struct {
		name string
		d    fleet.DayResult
	}{{"local", r.Local}, {"spill", r.Spill}} {
		if day.d.TotalQueries <= 0 {
			t.Fatalf("%s: no queries replayed", day.name)
		}
		if len(day.d.Regions) != 2 {
			t.Fatalf("%s: %d region results, want 2", day.name, len(day.d.Regions))
		}
	}
	// The headline claim: during the blackout, spill serves traffic the
	// local-only policy drops — strictly fewer drops, remote serving
	// actually happened, and the outage hurts less in violation
	// minutes.
	if r.Local.SpillInServed != 0 {
		t.Errorf("local-only day spilled %d queries", r.Local.SpillInServed)
	}
	if r.Spill.SpillInServed == 0 {
		t.Error("spill day served no remote queries")
	}
	if r.Spill.DropFrac >= r.Local.DropFrac {
		t.Errorf("spill must strictly reduce the drop fraction: %.4f vs local %.4f",
			r.Spill.DropFrac, r.Local.DropFrac)
	}
	if r.Spill.SLAViolationMin > r.Local.SLAViolationMin {
		t.Errorf("spill worsened SLA violation minutes: %.1f vs local %.1f",
			r.Spill.SLAViolationMin, r.Local.SLAViolationMin)
	}
	// The blackout must actually bite in the local-only world: east
	// drops a visible share of its day.
	var localEast fleet.DayResult
	for _, reg := range r.Local.Regions {
		if reg.Region == "east" {
			localEast = reg
		}
	}
	if localEast.DropFrac < 0.01 {
		t.Errorf("local-only east drop fraction %.4f — the outage left no mark", localEast.DropFrac)
	}
	out := r.Render()
	for _, want := range []string{"Multi-region blackout failover", "GLOBAL", "east", "west", "spill vs local"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
