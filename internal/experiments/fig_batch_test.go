package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hercules/internal/fleet"
)

func TestFigBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("replays pool ladders and full days")
	}
	t.Parallel()
	r, err := FigBatch(Seed)
	if err != nil {
		t.Fatal(err)
	}
	wantCap := len(BatchServers) * len(BatchRouters) * len(BatchSizes)
	if len(r.Capacity) != wantCap {
		t.Fatalf("capacity rows = %d, want %d", len(r.Capacity), wantCap)
	}
	wantDays := len(BatchSpikes) * len(BatchRouters) * 2
	if len(r.Days) != wantDays {
		t.Fatalf("day rows = %d, want %d", len(r.Days), wantDays)
	}

	// Part 1: every pool must have a measurable capacity, batch-1 rows
	// anchor gain 1, and the headline — the T2 pair's measured batch
	// amortization must buy >10% latency-bounded throughput at equal
	// pool size under every router.
	for _, row := range r.Capacity {
		if row.LBTQPS <= 0 {
			t.Errorf("%s/%s batch %d: no latency-bounded capacity found", row.Server, row.Router, row.Batch)
		}
		if row.Batch == 1 && row.GainX != 1 {
			t.Errorf("%s/%s batch 1: gain %v, want 1", row.Server, row.Router, row.GainX)
		}
		if row.GainX < 0.7 || row.GainX > 1.7 {
			t.Errorf("%s/%s batch %d: gain %.2f outside the plausible envelope", row.Server, row.Router, row.Batch, row.GainX)
		}
		if row.Server == "T2" && row.Batch == BatchSizes[len(BatchSizes)-1] && row.GainX < 1.1 {
			t.Errorf("T2/%s batch %d: gain %.2f, want >= 1.1 (the measured amortization must show)",
				row.Router, row.Batch, row.GainX)
		}
	}

	// Part 2: the smooth day must stay clean under batching (adaptive
	// caps), with the formation wait visible in the tail; the saturated
	// spike must show batching's goodput rescue — strictly fewer drops
	// at equal fleet size and no extra violation minutes.
	for _, row := range r.Days {
		base, ok := r.Unbatched(row)
		if !ok {
			t.Fatalf("no batch-1 reference for %s/%s", row.Day.Scenario, row.Day.Router)
		}
		if row.Day.Scenario == "baseline" {
			if row.Day.SLAViolationMin != 0 || row.Day.TotalDrops != 0 {
				t.Errorf("baseline/%s batch %d: viol %.0f drops %d, want clean",
					row.Day.Router, row.Batch, row.Day.SLAViolationMin, row.Day.TotalDrops)
			}
			if row.Batch > 1 && row.Day.MeanP95MS <= base.Day.MeanP95MS {
				t.Errorf("baseline/%s: batched p95 %.1f must show the formation wait over %.1f",
					row.Day.Router, row.Day.MeanP95MS, base.Day.MeanP95MS)
			}
			continue
		}
		if row.Batch > 1 {
			if row.Day.SLAViolationMin > base.Day.SLAViolationMin {
				t.Errorf("%s/%s: batched violations %.0f exceed unbatched %.0f",
					row.Day.Scenario, row.Day.Router, row.Day.SLAViolationMin, base.Day.SLAViolationMin)
			}
			if row.Day.TotalDrops >= base.Day.TotalDrops {
				t.Errorf("%s/%s: batching must cut drops at equal fleet size: %d vs %d",
					row.Day.Scenario, row.Day.Router, row.Day.TotalDrops, base.Day.TotalDrops)
			}
		}
	}

	out := r.Render()
	if !strings.Contains(out, "Batching 1") || !strings.Contains(out, "Batching 2") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

// TestFleetDayBatchedDeterminism extends the golden determinism guard
// to the dynamic-batching replay: for each shard count, the parallel
// worker-pool replay must be byte-identical to the sequential one, and
// repeat runs must reproduce. Deliberately not skipped in -short mode,
// like TestFleetDayDeterminism: this is the CI witness that batch
// formation, dispatch and the end-of-slice drain stay deterministic
// under concurrency.
func TestFleetDayBatchedDeterminism(t *testing.T) {
	table, err := FleetTable()
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards int, sequential bool) []byte {
		t.Helper()
		spec := FleetSpec(fleet.PowerOfTwo, "hercules", Seed)
		spec.Options.Shards = shards
		spec.Options.Sequential = sequential
		spec.Options.MaxBatch = 16
		spec.Options.BatchWaitS = batchWaitS
		eng, err := fleet.NewEngine(spec, fleet.WithTable(table))
		if err != nil {
			t.Fatal(err)
		}
		day, err := eng.RunDay(FleetWorkloads(table, Seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(day)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, shards := range []int{4, 8} {
		par1, par2, seq := run(shards, false), run(shards, false), run(shards, true)
		if !bytes.Equal(par1, par2) {
			t.Errorf("shards=%d: two batched parallel replays diverged", shards)
		}
		if !bytes.Equal(par1, seq) {
			t.Errorf("shards=%d: batched parallel replay diverged from sequential", shards)
		}
		var day fleet.DayResult
		if err := json.Unmarshal(par1, &day); err != nil || day.TotalQueries == 0 {
			t.Fatalf("shards=%d: batched replay produced no traffic: %v", shards, err)
		}
	}
}
