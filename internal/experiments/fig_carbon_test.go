package experiments

import (
	"strings"
	"testing"
)

func TestFigCarbon(t *testing.T) {
	if testing.Short() {
		t.Skip("carbon sweep replays 12 full days")
	}
	t.Parallel()
	r, err := FigCarbon(Seed)
	if err != nil {
		t.Fatal(err)
	}
	want := len(CarbonPolicies) * len(CarbonCurves) * len(CarbonCaps)
	if len(r.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(r.Rows), want)
	}
	for _, row := range r.Rows {
		if row.Day.TotalCarbonG <= 0 {
			t.Errorf("%s/%s/%s: TotalCarbonG = %v, want > 0",
				row.Curve, row.Cap, row.Scaler, row.Day.TotalCarbonG)
		}
		if row.Day.CarbonPerQueryG <= 0 {
			t.Errorf("%s/%s/%s: CarbonPerQueryG = %v, want > 0",
				row.Curve, row.Cap, row.Scaler, row.Day.CarbonPerQueryG)
		}
	}

	// The acceptance headline: every carbon cell must sit on the
	// carbon-vs-SLA pareto frontier relative to latency-only "prop"
	// provisioning — never more SLA minutes, and either less CO2
	// outright or CO2 within a small tolerance bought back as SLA
	// minutes (the flat coal grid under a power cap is the one cell
	// where deferral buys SLA headroom rather than carbon).
	const co2Tolerance = 1.03
	for _, curve := range CarbonCurves {
		for _, cap := range CarbonCaps {
			ref, okR := r.Cell("prop", curve, cap.Name)
			car, okC := r.Cell("carbon", curve, cap.Name)
			if !okR || !okC {
				t.Fatalf("missing prop/carbon cells for %s/%s", curve, cap.Name)
			}
			if car.Day.SLAViolationMin > ref.Day.SLAViolationMin {
				t.Errorf("%s/%s: carbon pair pays %.1f SLA minutes vs prop's %.1f",
					curve, cap.Name, car.Day.SLAViolationMin, ref.Day.SLAViolationMin)
			}
			lessCO2 := car.Day.TotalCarbonG < ref.Day.TotalCarbonG
			lessSLA := car.Day.SLAViolationMin < ref.Day.SLAViolationMin
			withinTol := car.Day.TotalCarbonG <= ref.Day.TotalCarbonG*co2Tolerance
			if !lessCO2 && !(lessSLA && withinTol) {
				t.Errorf("%s/%s: carbon pair dominated: %.1f g / %.1f min vs prop %.1f g / %.1f min",
					curve, cap.Name, car.Day.TotalCarbonG, car.Day.SLAViolationMin,
					ref.Day.TotalCarbonG, ref.Day.SLAViolationMin)
			}
		}
	}

	// The duck curve's midday valley is where time-shifting pays: the
	// saving there must be material, not a rounding artifact.
	duck, _ := r.Cell("carbon", "duck", "nocap")
	duckRef, _ := r.Cell("prop", "duck", "nocap")
	if saving := 1 - duck.Day.TotalCarbonG/duckRef.Day.TotalCarbonG; saving < 0.05 {
		t.Errorf("duck/nocap: carbon saving %.2f%%, want >= 5%%", saving*100)
	}

	out := r.Render()
	for _, want := range []string{"Carbon pareto", "duck", "coal", "cap7kW", "co2_kg", "vs prop"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}
