package experiments

import (
	"fmt"
	"strings"

	"hercules/internal/fleet"
)

// The regions experiment scores geo-routing during a full-region
// outage: two regions (east, west) run the small fleet six diurnal
// hours apart, east blacks out for three hours mid-day, and the
// survivors absorb the 1.5x displaced flash crowd. The comparison is
// the local-only policy (east's traffic has nowhere to go) against
// overflow spill (east evacuates to west, paying the inter-region
// RTT) — SLA violation minutes and drop fraction during the outage
// are the paper-style claim: failover turns a regional outage from
// dropped traffic into a latency tax.

// RegionsScenario is the outage drill: east dark from hour 9 to 12.
const RegionsScenario = `{"name":"east-blackout","events":[{"kind":"blackout","region":"east","start_h":9,"end_h":12}]}`

// RegionsSpec is the experiment's two-region run spec: DefaultSpec
// per region, west phase-shifted six hours (its peak lands while east
// is in its valley, which is what gives spill its headroom), 60 ms
// RTT between them.
func RegionsSpec(geo string, seed int64) fleet.Spec {
	spec := fleet.DefaultSpec()
	spec.Router = fleet.PowerOfTwo
	spec.Models = append([]string(nil), FleetModels...)
	spec.Scenario = RegionsScenario
	spec.Geo = geo
	spec.Regions = []fleet.RegionSpec{
		{Name: "east", RTTMS: map[string]float64{"west": 60}},
		{Name: "west", PhaseH: -6},
	}
	spec.Options.MaxQueriesPerInterval = 25000
	spec.Options.Shards = 1
	spec.Options.Seed = seed
	return spec
}

// FigRegionsResult holds the local-only and spill replays of the same
// outage day.
type FigRegionsResult struct {
	Local fleet.DayResult
	Spill fleet.DayResult
}

// FigRegions replays the two-region blackout day under both geo
// policies.
func FigRegions(seed int64) (FigRegionsResult, error) {
	var res FigRegionsResult
	table, err := FleetTable()
	if err != nil {
		return res, err
	}
	run := func(geo string) (fleet.DayResult, error) {
		me, meErr := fleet.NewMultiEngine(RegionsSpec(geo, seed), fleet.WithTable(table))
		if meErr != nil {
			return fleet.DayResult{}, meErr
		}
		return me.RunDay(me.Workloads())
	}
	if res.Local, err = run(fleet.GeoLocal); err != nil {
		return res, err
	}
	if res.Spill, err = run(fleet.GeoSpill); err != nil {
		return res, err
	}
	return res, nil
}

// Render implements Renderer.
func (r FigRegionsResult) Render() string {
	var sb strings.Builder
	header(&sb, "Multi-region blackout failover: local-only vs cross-region spill (east dark 9h-12h, 1.5x survivor crowd)")
	sb.WriteString("geo\tregion\tqueries\tdrop_pct\tsla_viol_min\tspill_served\tmax_p99_ms\tenergy_MJ\n")
	row := func(geo string, d fleet.DayResult) {
		name := d.Region
		if name == "" {
			name = "GLOBAL"
		}
		fmt.Fprintf(&sb, "%s\t%s\t%d\t%.2f\t%.1f\t%d\t%.1f\t%.1f\n",
			geo, name, d.TotalQueries, d.DropFrac*100, d.SLAViolationMin,
			d.SpillInServed, d.MaxP99MS, d.EnergyKJ/1e3)
	}
	for _, day := range []fleet.DayResult{r.Local, r.Spill} {
		for _, reg := range day.Regions {
			row(day.Geo, reg)
		}
		row(day.Geo, day)
	}
	fmt.Fprintf(&sb, "spill vs local: drops %.2f%% -> %.2f%%, SLA violation %.1f -> %.1f min, %d queries served remotely\n",
		r.Local.DropFrac*100, r.Spill.DropFrac*100,
		r.Local.SLAViolationMin, r.Spill.SLAViolationMin,
		r.Spill.SpillInServed)
	return sb.String()
}
