package experiments

import (
	"fmt"
	"strings"

	"hercules/internal/fleet"
)

// The cache experiment puts the fleet.Cache tier in front of the online
// replay and scores the failure mode the tier introduces: the fleet is
// provisioned against the cache's *miss* load, so the steady-state
// rows get leaner (and cheaper) as the hit rate climbs — and the
// cachestorm scenario then invalidates the warmth mid-day, landing the
// full offered load on a fleet sized for a fraction of it. The sweep
// reports both sides of that trade: energy saved at steady state, and
// drops/tail damage taken during the stampede, per configured hit rate.

// CacheHitRates are the asymptotic hit rates the sweep scores; 0 is the
// cache-less reference row.
var CacheHitRates = []float64{0, 0.5, 0.8}

// CacheScenarios are the scenarios each hit rate is scored under:
// steady state and the built-in cache-stampede drill.
var CacheScenarios = []string{"baseline", "cachestorm"}

// CacheSpec is the sweep's run spec for one hit-rate × scenario cell:
// the Fig. 13-online configuration (p2c router, hercules provisioning)
// with the cache tier enabled at the given asymptotic rate.
func CacheSpec(hitRate float64, scenarioName string, seed int64) fleet.Spec {
	spec := fleet.DefaultSpec()
	spec.Router = fleet.PowerOfTwo
	spec.Models = append([]string(nil), FleetModels...)
	spec.Scenario = scenarioName
	spec.Cache = fleet.CacheSpec{HitRate: hitRate}
	spec.Options.MaxQueriesPerInterval = 25000
	spec.Options.Seed = seed
	return spec
}

// CacheRow is one cell of the sweep.
type CacheRow struct {
	ConfiguredHitRate float64
	Day               fleet.DayResult
}

// FigCacheResult holds the hit-rate × scenario sweep.
type FigCacheResult struct {
	Rows []CacheRow
}

// FigCache replays the diurnal day for every configured hit rate under
// every cache scenario.
func FigCache(seed int64) (FigCacheResult, error) {
	var res FigCacheResult
	for _, name := range CacheScenarios {
		for _, hr := range CacheHitRates {
			day, err := runFleetSpec(CacheSpec(hr, name, seed), seed)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, CacheRow{ConfiguredHitRate: hr, Day: day})
		}
	}
	return res, nil
}

// Cell returns the row for one hit rate × scenario pair.
func (r FigCacheResult) Cell(hitRate float64, scenarioName string) (CacheRow, bool) {
	for _, row := range r.Rows {
		if row.ConfiguredHitRate == hitRate && row.Day.Scenario == scenarioName {
			return row, true
		}
	}
	return CacheRow{}, false
}

// Render implements Renderer.
func (r FigCacheResult) Render() string {
	var sb strings.Builder
	header(&sb, "Cache tier: hit rate x scenario (p2c router, hercules provisioning, miss-adjusted sizing)")
	sb.WriteString("scenario\tcfg_hit\trealized_hit\tdrop_pct\tsla_viol_min\tmax_p99_ms\tenergy_MJ\n")
	for _, row := range r.Rows {
		d := row.Day
		fmt.Fprintf(&sb, "%s\t%.2f\t%.3f\t%.2f\t%.1f\t%.1f\t%.1f\n",
			d.Scenario, row.ConfiguredHitRate, d.CacheHitRate, d.DropFrac*100,
			d.SLAViolationMin, d.MaxP99MS, d.EnergyKJ/1e3)
	}
	// Divergence summary: what the stampede costs at each hit rate over
	// the matching steady-state row. The damage should grow with the
	// configured hit rate — the leaner the miss-sized fleet, the harder
	// the invalidated load lands.
	for _, hr := range CacheHitRates {
		if hr == 0 {
			continue
		}
		base, okB := r.Cell(hr, "baseline")
		storm, okS := r.Cell(hr, "cachestorm")
		if !okB || !okS {
			continue
		}
		fmt.Fprintf(&sb, "hit %.2f: storm hit-rate %.3f vs %.3f steady, +%.2f%% drops, +%.1f p99 ms\n",
			hr, storm.Day.CacheHitRate, base.Day.CacheHitRate,
			(storm.Day.DropFrac-base.Day.DropFrac)*100,
			storm.Day.MaxP99MS-base.Day.MaxP99MS)
	}
	return sb.String()
}
