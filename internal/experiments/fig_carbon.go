package experiments

import (
	"fmt"
	"strings"

	"hercules/internal/fleet"
	"hercules/internal/grid"
)

// The carbon experiment prices the online replay's measured energy
// against a grid carbon-intensity timeline and sweeps the carbon-aware
// control pair — the "carbon" autoscaler (headroom follows the grid)
// plus the "carbon" admission policy (deferrable-class work waits out
// the dirtiest hours) — against the latency-only scalers on two grids
// and under a power-cap drill. The question the sweep answers is the
// carbon-vs-SLA pareto: how many grams of CO2 per day the carbon pair
// saves over latency-only provisioning, and how many SLA-violation
// minutes it pays for them.

// CarbonPolicies are the scaler × admission pairs the sweep scores.
// "prop" is the latency-only reference the headline compares against.
var CarbonPolicies = []struct {
	Scaler    string
	Admission string
}{
	{"prop", "none"},
	{"breach", "none"},
	{"carbon", "carbon"},
}

// CarbonCurves are the grid presets each policy pair is priced on: the
// solar duck curve (deep midday valley, steep evening ramp — exactly
// out of phase with the diurnal traffic peak) and the coal-heavy flat
// grid, where time-shifting buys nothing and the carbon policies
// should degrade gracefully to their latency backstops.
var CarbonCurves = []string{"duck", "coal"}

// CarbonCaps are the power envelopes each cell runs under: uncapped,
// and an evening power-cap drill holding the 60-server T2 pool to
// 7 kW total (two thirds of its 10.5 kW aggregate TDP) across the
// dirty evening ramp.
var CarbonCaps = []struct {
	Name     string
	Scenario string
}{
	{"nocap", ""},
	{"cap7kW", `{"name":"powercap-evening","events":[` +
		`{"kind":"powercap","type":"T2","watts":7000,"start_h":17,"end_h":22}]}`},
}

// CarbonSpec is the sweep's run spec for one policy × curve × cap
// cell: the Fig. 13-online configuration with the grid timeline
// attached and the carbon (or reference) control pair selected.
func CarbonSpec(scaler, admission, curve, capScenario string, seed int64) fleet.Spec {
	spec := fleet.DefaultSpec()
	spec.Scaler = scaler
	spec.Admission = admission
	spec.Scenario = capScenario
	spec.Models = append([]string(nil), FleetModels...)
	spec.Grid = grid.Spec{Curve: curve}
	spec.Options.MaxQueriesPerInterval = 25000
	spec.Options.Shards = 1
	spec.Options.Seed = seed
	return spec
}

// CarbonDay replays one diurnal day under the duck-curve grid with the
// carbon scaler + admission pair and no power cap — the
// BenchmarkFleetDayCarbon subject.
func CarbonDay(seed int64) (fleet.DayResult, error) {
	return runFleetSpec(CarbonSpec("carbon", "carbon", "duck", "", seed), seed)
}

// CarbonRow is one cell of the sweep.
type CarbonRow struct {
	Scaler    string
	Admission string
	Curve     string
	Cap       string
	Day       fleet.DayResult
}

// FigCarbonResult holds the policy × curve × cap sweep.
type FigCarbonResult struct {
	Rows []CarbonRow
}

// FigCarbon replays the diurnal day for every policy pair on every
// grid curve under every power envelope.
func FigCarbon(seed int64) (FigCarbonResult, error) {
	var res FigCarbonResult
	for _, curve := range CarbonCurves {
		for _, cap := range CarbonCaps {
			for _, pol := range CarbonPolicies {
				day, err := runFleetSpec(
					CarbonSpec(pol.Scaler, pol.Admission, curve, cap.Scenario, seed), seed)
				if err != nil {
					return res, err
				}
				res.Rows = append(res.Rows, CarbonRow{
					Scaler: pol.Scaler, Admission: pol.Admission,
					Curve: curve, Cap: cap.Name, Day: day,
				})
			}
		}
	}
	return res, nil
}

// Cell returns the row for one scaler × curve × cap combination.
func (r FigCarbonResult) Cell(scaler, curve, cap string) (CarbonRow, bool) {
	for _, row := range r.Rows {
		if row.Scaler == scaler && row.Curve == curve && row.Cap == cap {
			return row, true
		}
	}
	return CarbonRow{}, false
}

// Render implements Renderer.
func (r FigCarbonResult) Render() string {
	var sb strings.Builder
	header(&sb, "Carbon pareto: scaler+admission x grid curve x power cap (gCO2 vs SLA)")
	sb.WriteString("curve\tcap\tscaler\tadmission\tco2_kg\tg_per_query\tsla_viol_min\tdrop_pct\tshed_pct\tenergy_MJ\n")
	for _, row := range r.Rows {
		d := row.Day
		shedPct := 0.0
		if d.TotalQueries > 0 {
			shedPct = float64(d.TotalShed) / float64(d.TotalQueries) * 100
		}
		fmt.Fprintf(&sb, "%s\t%s\t%s\t%s\t%.2f\t%.3f\t%.1f\t%.2f\t%.2f\t%.1f\n",
			row.Curve, row.Cap, row.Scaler, row.Admission,
			d.TotalCarbonG/1e3, d.CarbonPerQueryG, d.SLAViolationMin,
			d.DropFrac*100, shedPct, d.EnergyKJ/1e3)
	}
	// Headline: what the carbon pair saves over latency-only
	// provisioning per curve and envelope, and the SLA minutes it pays.
	for _, curve := range CarbonCurves {
		for _, cap := range CarbonCaps {
			ref, okR := r.Cell("prop", curve, cap.Name)
			car, okC := r.Cell("carbon", curve, cap.Name)
			if !okR || !okC || ref.Day.TotalCarbonG <= 0 {
				continue
			}
			save := (1 - car.Day.TotalCarbonG/ref.Day.TotalCarbonG) * 100
			fmt.Fprintf(&sb, "%s/%s: carbon pair %.2f kg (%.1f%% vs prop's %.2f kg), sla %.1f vs %.1f min\n",
				curve, cap.Name, car.Day.TotalCarbonG/1e3, save,
				ref.Day.TotalCarbonG/1e3, car.Day.SLAViolationMin, ref.Day.SLAViolationMin)
		}
	}
	sb.WriteString("(beyond-paper experiment: prices the replay's measured joules on a grid\n")
	sb.WriteString(" intensity timeline; deferrable-class work waits out the dirtiest hours)\n")
	return sb.String()
}
