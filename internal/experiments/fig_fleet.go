package experiments

import (
	"fmt"
	"strings"
	"sync"

	"hercules/internal/cluster"
	"hercules/internal/fleet"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/telemetry"
	"hercules/internal/workload"
)

// The Fig. 13-online experiment extends the paper's Fig. 13 cluster
// comparison below the provisioning interval: instead of scoring
// policies on aggregate provisioned capacity, it replays every query
// of a diurnal day through internal/fleet and scores router × policy
// combinations on what users experience — SLA-violation minutes,
// drops, tail latency and energy. This is deliberately beyond the
// paper: related HPC characterization work (RZBENCH; Broadwell/Cascade
// Lake analyses) shows aggregate-capacity models hide contention that
// only request-level load exposes.

var (
	fleetTableOnce sync.Once
	fleetTable     *profiler.Table
	fleetTableErr  error
)

// FleetModels are the workloads of the online replay experiment.
var FleetModels = []string{"DLRM-RMC1", "DLRM-RMC2"}

// FleetFleet is the replay cluster: plain CPU, NMP and GPU server
// types at a 76-server scale (the Fig. 8 characterization trio) — the
// fleet registered as "small" (hw.NamedFleet).
func FleetFleet() hw.Fleet { return hw.SmallFleet() }

// FleetTable returns the process-wide calibrated efficiency table for
// the replay experiment: each pair measured once under its default
// serving configuration (seconds) rather than the full Algorithm 1
// search (minutes).
func FleetTable() (*profiler.Table, error) {
	fleetTableOnce.Do(func() {
		models := make([]*model.Model, 0, len(FleetModels))
		for _, name := range FleetModels {
			m, err := model.ByName(name, model.Prod)
			if err != nil {
				fleetTableErr = err
				return
			}
			models = append(models, m)
		}
		fleetTable, fleetTableErr = fleet.CalibrateTable(models, FleetFleet().Types, Seed)
	})
	return fleetTable, fleetTableErr
}

// FleetWorkloads builds the replay day: 24 hourly intervals of diurnal
// load per model, with peaks sized to the fleet so the comparison
// exercises allocation choices rather than raw exhaustion.
func FleetWorkloads(table *profiler.Table, seed int64) []cluster.Workload {
	ws := make([]cluster.Workload, 0, len(FleetModels))
	for i, name := range FleetModels {
		peak := table.MustGet("T2", name).QPS * 18
		cfg := workload.DiurnalConfig{
			Service:    name,
			PeakQPS:    peak,
			ValleyFrac: 0.4,
			PeakHour:   20,
			Days:       1,
			StepMin:    60,
			NoiseStd:   0.02,
			Seed:       seed + int64(i),
		}
		ws = append(ws, cluster.Workload{Model: name, Trace: workload.Synthesize(cfg)})
	}
	return ws
}

// FleetSpec is the experiment's run spec for one router × policy
// cell: DefaultSpec (small fleet, RMC1+RMC2, 15% serving headroom)
// with the per-interval query budget lowered so the full sweep stays
// fast, and Shards pinned to 1 (instead of the runtime.NumCPU()
// default): sharding statically partitions each model's instances and
// traffic, so routing quality degrades with shard count — the recorded
// tables score routers on whole-pool routing — and pinning makes
// replay results and BenchmarkFleetDay's allocation profile (which the
// CI gate bounds within 10%) identical on every machine. The replay
// still flows through the worker pool; TestFleetDayDeterminism covers
// the many-shard parallel path.
func FleetSpec(router, policy string, seed int64) fleet.Spec {
	spec := fleet.DefaultSpec()
	spec.Router = router
	spec.Policy = policy
	spec.Models = append([]string(nil), FleetModels...)
	spec.Options.MaxQueriesPerInterval = 40000
	spec.Options.Shards = 1
	spec.Options.Seed = seed
	return spec
}

// runFleetSpec builds an engine for the spec over the shared memoized
// calibration table and replays the experiments' common diurnal day.
func runFleetSpec(spec fleet.Spec, seed int64) (fleet.DayResult, error) {
	table, err := FleetTable()
	if err != nil {
		return fleet.DayResult{}, err
	}
	eng, err := fleet.NewEngine(spec, fleet.WithTable(table))
	if err != nil {
		return fleet.DayResult{}, err
	}
	return eng.RunDay(FleetWorkloads(table, seed))
}

// FleetDay replays one full diurnal day for a single router ×
// provisioning policy combination (the BenchmarkFleetDay subject).
func FleetDay(router, policy string, seed int64) (fleet.DayResult, error) {
	return runFleetSpec(FleetSpec(router, policy, seed), seed)
}

// FleetDayTraced is FleetDay with the per-query tracer sampling 1 in
// sampleN queries into a counting sink (no I/O, so measured overhead
// is tracing itself) — the BenchmarkFleetDayTraced subject, whose CI
// gate bounds the sampled tracer's cost over the untraced replay. It
// returns the day alongside the number of events emitted.
func FleetDayTraced(router, policy string, sampleN int, seed int64) (fleet.DayResult, uint64, error) {
	spec := FleetSpec(router, policy, seed)
	spec.Options.TraceSample = sampleN
	table, err := FleetTable()
	if err != nil {
		return fleet.DayResult{}, 0, err
	}
	eng, err := fleet.NewEngine(spec, fleet.WithTable(table))
	if err != nil {
		return fleet.DayResult{}, 0, err
	}
	sink := &telemetry.CountSink{}
	eng.Tracer.AddSink(sink)
	day, err := eng.RunDay(FleetWorkloads(table, seed))
	if err != nil {
		return fleet.DayResult{}, 0, err
	}
	if err := eng.Tracer.Close(); err != nil {
		return fleet.DayResult{}, 0, err
	}
	return day, sink.Total, nil
}

// Fig13OnlineResult compares routers × provisioning policies on
// request-level serving quality over one replayed day.
type Fig13OnlineResult struct {
	Rows []fleet.DayResult
}

// Fig13Online replays the day for all four routers under the greedy
// and Hercules provisioning policies.
func Fig13Online(seed int64) (Fig13OnlineResult, error) {
	var res Fig13OnlineResult
	for _, pol := range []string{"greedy", "hercules"} {
		for _, r := range fleet.AllRouters {
			day, err := FleetDay(r, pol, seed)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, day)
		}
	}
	return res, nil
}

// Best returns the row with the fewest SLA-violation minutes (ties
// broken by drops, then energy).
func (r Fig13OnlineResult) Best() fleet.DayResult {
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.SLAViolationMin < best.SLAViolationMin ||
			(row.SLAViolationMin == best.SLAViolationMin && row.TotalDrops < best.TotalDrops) ||
			(row.SLAViolationMin == best.SLAViolationMin && row.TotalDrops == best.TotalDrops &&
				row.EnergyKJ < best.EnergyKJ) {
			best = row
		}
	}
	return best
}

// Render implements Renderer.
func (r Fig13OnlineResult) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 13-online: request-level day replay, routers x provisioning policies")
	sb.WriteString("policy\trouter\tsla_viol_min\tdrop_pct\tmean_p95_ms\tmax_p99_ms\tenergy_MJ\treprov\tearly\tautoscale\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s\t%s\t%.1f\t%.2f\t%.1f\t%.1f\t%.1f\t%d\t%d\t%d\n",
			row.Policy, row.Router, row.SLAViolationMin, row.DropFrac*100,
			row.MeanP95MS, row.MaxP99MS, row.EnergyKJ/1e3,
			row.Reprovisions, row.EarlyReprovisions, row.AutoscaleEvents)
	}
	best := r.Best()
	fmt.Fprintf(&sb, "best: %s router under %s provisioning (%.1f violation minutes, %.2f%% drops)\n",
		best.Router, best.Policy, best.SLAViolationMin, best.DropFrac*100)
	sb.WriteString("(beyond-paper experiment: the paper scores provisioning on aggregate capacity;\n")
	sb.WriteString(" this replay scores what queries experience between re-provisioning intervals)\n")
	return sb.String()
}
