package experiments

import (
	"fmt"
	"strings"

	"hercules/internal/cluster"
	"hercules/internal/costmodel"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/partition"
	"hercules/internal/sched"
	"hercules/internal/sim"
)

// AblationContentionResult probes DESIGN.md ablation #1: with memory
// contention disabled, co-location scales freely and the Fig. 4
// fat-thread advantage disappears.
type AblationContentionResult struct {
	With20x1, With10x2       float64 // QPS with contention modelled
	Without20x1, Without10x2 float64 // QPS with contention disabled
}

// AblationNoContention runs DLRM-RMC1 on T2 at a tight SLA with and
// without the contention terms.
func AblationNoContention(seed int64) AblationContentionResult {
	m := model.DLRMRMC1(model.Prod)
	run := func(params costmodel.Params, threads, workers int) float64 {
		s := sim.New(hw.ServerType("T2"), m)
		s.Params = params
		cap0, _ := bestBatchCapacity(s, func(b int) sim.Config {
			return sim.Config{Place: sim.PlaceCPUModel, Threads: threads, OpWorkers: workers, Batch: b}
		}, 15, seed)
		return cap0.QPS
	}
	with := costmodel.DefaultParams()
	without := with
	without.GatherKappa = 0
	without.InterferenceKappa = 0
	return AblationContentionResult{
		With20x1:    run(with, 20, 1),
		With10x2:    run(with, 10, 2),
		Without20x1: run(without, 20, 1),
		Without10x2: run(without, 10, 2),
	}
}

// Render implements Renderer.
func (r AblationContentionResult) Render() string {
	var sb strings.Builder
	header(&sb, "Ablation: co-location contention model (DLRM-RMC1, T2, 15 ms SLA)")
	fmt.Fprintf(&sb, "with contention:    20x1=%.0f QPS, 10x2=%.0f QPS (10x2 gain %.2fx)\n",
		r.With20x1, r.With10x2, r.With10x2/r.With20x1)
	fmt.Fprintf(&sb, "without contention: 20x1=%.0f QPS, 10x2=%.0f QPS (10x2 gain %.2fx)\n",
		r.Without20x1, r.Without10x2, r.Without10x2/r.Without20x1)
	return sb.String()
}

// AblationSearchResult probes ablation #2: gradient search vs exhaustive
// sweep (optimality and evaluation count).
type AblationSearchResult struct {
	GradientQPS, ExhaustiveQPS     float64
	GradientEvals, ExhaustiveEvals int
}

// AblationSearchVsExhaustive compares the two on DLRM-RMC1/T2.
func AblationSearchVsExhaustive(seed int64) AblationSearchResult {
	m := model.DLRMRMC1(model.Prod)
	mk := func() *sched.Searcher {
		return sched.NewSearcher(sim.New(hw.ServerType("T2"), m),
			sched.Objective{SLAMS: m.SLATargetMS, Seed: seed})
	}
	g := mk()
	grad := g.SearchCPUModel(false)
	e := mk()
	exh := e.ExhaustiveCPUModel(false)
	return AblationSearchResult{
		GradientQPS:     grad.QPS(),
		ExhaustiveQPS:   exh.QPS(),
		GradientEvals:   g.Evals,
		ExhaustiveEvals: e.Evals,
	}
}

// Render implements Renderer.
func (r AblationSearchResult) Render() string {
	var sb strings.Builder
	header(&sb, "Ablation: gradient search vs exhaustive sweep (DLRM-RMC1, T2)")
	fmt.Fprintf(&sb, "gradient:   %.0f QPS in %d evals\n", r.GradientQPS, r.GradientEvals)
	fmt.Fprintf(&sb, "exhaustive: %.0f QPS in %d evals\n", r.ExhaustiveQPS, r.ExhaustiveEvals)
	fmt.Fprintf(&sb, "optimality: %.1f%% with %.1fx fewer evaluations\n",
		r.GradientQPS/r.ExhaustiveQPS*100, float64(r.ExhaustiveEvals)/float64(r.GradientEvals))
	return sb.String()
}

// AblationHotPartitionResult probes ablation #4: accelerator serving of
// a large pooled model with and without the locality-aware hot
// partition.
type AblationHotPartitionResult struct {
	HotMass     float64 // access mass covered by the hot set
	WithQPS     float64
	WithoutQPS  float64 // hot partition disabled: all gathers host-side
	PCIeWith    float64 // bytes/item
	PCIeWithout float64
}

// AblationNoHotPartition compares DLRM-RMC2 (64 GB prod) on T7 with the
// model-based accel placement vs the S-D placement that keeps all
// embeddings host-side.
func AblationNoHotPartition(seed int64) AblationHotPartitionResult {
	m := model.DLRMRMC2(model.Prod)
	s := sim.New(hw.ServerType("T7"), m)
	plan := partition.BuildPlan(m, s.HW.GPU.MemoryBytes/2)
	var mass float64
	for _, tp := range plan.Tables {
		mass += tp.HotMass
	}
	mass /= float64(len(plan.Tables))

	hot := sim.Config{Place: sim.PlaceAccelModel, AccelThreads: 2, Batch: 1024,
		SparseThreads: 8, SparseWorkers: 1, FusionLimit: 2000}
	cold := sim.Config{Place: sim.PlaceAccelSD, AccelThreads: 2, Batch: 1024,
		SparseThreads: 8, SparseWorkers: 1, FusionLimit: 2000}
	hc, _ := s.FindCapacity(hot, m.SLATargetMS, seed)
	cc, _ := s.FindCapacity(cold, m.SLATargetMS, seed)
	return AblationHotPartitionResult{
		HotMass:     mass,
		WithQPS:     hc.QPS,
		WithoutQPS:  cc.QPS,
		PCIeWith:    partition.ModelBasedAccel(plan).PCIeBytesPerItem,
		PCIeWithout: partition.SDAccel(plan).PCIeBytesPerItem,
	}
}

// Render implements Renderer.
func (r AblationHotPartitionResult) Render() string {
	var sb strings.Builder
	header(&sb, "Ablation: locality-aware hot-embedding partition (DLRM-RMC2, T7)")
	fmt.Fprintf(&sb, "hot set covers %.0f%% of accesses\n", r.HotMass*100)
	fmt.Fprintf(&sb, "with hot partition (accel-model): %.0f QPS, %.0f PCIe B/item\n",
		r.WithQPS, r.PCIeWith)
	fmt.Fprintf(&sb, "without (host-side sparse, accel-sd): %.0f QPS, %.0f PCIe B/item\n",
		r.WithoutQPS, r.PCIeWithout)
	return sb.String()
}

// AblationLPRoundingResult probes ablation #3: LP with greedy integral
// repair vs naive per-variable ceiling.
type AblationLPRoundingResult struct {
	RepairPowerKW float64
	CeilPowerKW   float64
	RepairServers int
	CeilServers   int
}

// AblationLPRounding compares the two integerization strategies on the
// Fig. 17 Day-D2 scenario at peak load.
func AblationLPRounding(seed int64) AblationLPRoundingResult {
	table := HerculesTable()
	fleet := hw.AcceleratedFleet()
	totalPeak := sizeFleetLoad(table, fleet)
	ws := evolutionWorkloads(2, totalPeak, seed)

	// Peak loads.
	loads := make(map[string]float64, len(ws))
	for _, w := range ws {
		loads[w.Model] = w.Trace.Peak()
	}
	prov := cluster.NewProvisioner(fleet, table, cluster.Hercules, seed)
	repair := prov.Step(loads)

	// Naive ceiling: every fractional LP variable rounds up, activating
	// an extra server per (type, workload) pair the relaxation touched.
	naive := cluster.NewProvisioner(fleet, table, cluster.Hercules, seed)
	naive.NaiveCeil = true
	ceil := naive.Step(loads)
	return AblationLPRoundingResult{
		RepairPowerKW: repair.ProvisionedPowerW / 1e3,
		CeilPowerKW:   ceil.ProvisionedPowerW / 1e3,
		RepairServers: repair.ActiveServers,
		CeilServers:   ceil.ActiveServers,
	}
}

// Render implements Renderer.
func (r AblationLPRoundingResult) Render() string {
	var sb strings.Builder
	header(&sb, "Ablation: LP integral repair vs naive ceiling (Day-D2 peak)")
	fmt.Fprintf(&sb, "greedy repair: %d servers, %.1f kW\n", r.RepairServers, r.RepairPowerKW)
	fmt.Fprintf(&sb, "naive ceiling: %d servers, %.1f kW (+%.1f%%)\n",
		r.CeilServers, r.CeilPowerKW, (r.CeilPowerKW/r.RepairPowerKW-1)*100)
	return sb.String()
}
