package experiments

import (
	"strings"
	"testing"
)

func TestFigCache(t *testing.T) {
	if testing.Short() {
		t.Skip("replays several full days of traffic")
	}
	t.Parallel()
	r, err := FigCache(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(CacheScenarios) * len(CacheHitRates); len(r.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(r.Rows), want)
	}
	for _, row := range r.Rows {
		d := row.Day
		if d.TotalQueries <= 0 {
			t.Fatalf("hit %.2f %s: no queries replayed", row.ConfiguredHitRate, d.Scenario)
		}
		if row.ConfiguredHitRate == 0 && d.TotalCacheHits != 0 {
			t.Errorf("cache-less row recorded %d hits", d.TotalCacheHits)
		}
	}
	// Steady state: the realized hit rate tracks the configured
	// asymptote, and the miss-sized fleet burns less energy than the
	// cache-less reference.
	ref, _ := r.Cell(0, "baseline")
	for _, hr := range CacheHitRates[1:] {
		row, ok := r.Cell(hr, "baseline")
		if !ok {
			t.Fatalf("missing baseline cell for hit %.2f", hr)
		}
		if got := row.Day.CacheHitRate; got < hr-0.05 || got > hr+0.05 {
			t.Errorf("hit %.2f baseline: realized %.3f", hr, got)
		}
		if row.Day.EnergyKJ >= ref.Day.EnergyKJ {
			t.Errorf("hit %.2f baseline: energy %.0f kJ, cache-less ref %.0f kJ — misses should provision leaner",
				hr, row.Day.EnergyKJ, ref.Day.EnergyKJ)
		}
	}
	// The stampede must measurably move hit rate and damage at the high
	// hit rate: the fleet was sized for 20% of the load.
	base, _ := r.Cell(0.8, "baseline")
	storm, ok := r.Cell(0.8, "cachestorm")
	if !ok {
		t.Fatal("missing cachestorm cell")
	}
	if storm.Day.CacheHitRate > base.Day.CacheHitRate-0.05 {
		t.Errorf("storm hit rate %.3f vs steady %.3f — flush did not move it",
			storm.Day.CacheHitRate, base.Day.CacheHitRate)
	}
	if storm.Day.TotalDrops <= base.Day.TotalDrops && storm.Day.MaxP99MS <= base.Day.MaxP99MS {
		t.Errorf("storm left no mark: drops %d vs %d, max p99 %.1f vs %.1f",
			storm.Day.TotalDrops, base.Day.TotalDrops, storm.Day.MaxP99MS, base.Day.MaxP99MS)
	}
	// The cache-less row must not care about the cache storm (its only
	// events are flushes — fleet state is untouched).
	refStorm, _ := r.Cell(0, "cachestorm")
	if refStorm.Day.TotalDrops != ref.Day.TotalDrops {
		t.Errorf("cache-less storm drops %d vs baseline %d — flush must be invisible without the tier",
			refStorm.Day.TotalDrops, ref.Day.TotalDrops)
	}
	out := r.Render()
	for _, want := range []string{"Cache tier", "cachestorm", "realized_hit", "storm hit-rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
